//===- bench/ablation_parallel.cpp - Parallel driver thread sweep ---------===//
//
// Measures the speculative parallel worklist driver against the
// sequential one across a 1/2/4/8-thread sweep on every Table 1 program,
// plus the parallel warm drains of the persistent store.
//
// The parallel driver's contract is that parallelism is *observationally
// free*: the extension table, entry creation order, and every
// committed-work counter are byte-identical at every thread count. The
// bench verifies that (diffing the full formatted analysis report)
// before timing and exits nonzero on any divergence — the same check the
// CI determinism gate performs via examples/analyze_file.
//
// Wall-clock honesty: a speedup column is only meaningful when the host
// actually has that many CPUs. Every timing point carries a
// "wallclock_valid" flag (host_cpus >= n); invalid points are printed
// with a '*' and excluded from the wall-clock geomean. The regression
// gates below never look at wall-clock — they are machine-independent by
// construction, so a 1-CPU CI container gates the same facts a 32-core
// workstation would:
//
//   gate 1  byte-identity of the report across {1,2,4,8} threads;
//   gate 2  speculation discard fraction at 4 threads no worse than
//           PR 3's recorded values anywhere and strictly lower on >= 8
//           of the 11 programs (the adaptive-batch payoff);
//   gate 3  overlay pages copied <= base entries touched at every
//           thread count (the COW bound: a page is privatized only by a
//           write to some touched entry);
//   gate 4  warm drains: >1 geomean speedup at 4 threads in validated-
//           replay *work units* (sequential units over critical-path
//           units), with the warm answers byte-identical to the
//           1-thread warm drain.
//
// Timing protocol: per thread count, the session (and its thread pool)
// is created once and reused across analyze() calls — pool spawn costs
// ~100us+ which would otherwise dwarf these sub-millisecond analyses —
// and the fastest of several alternating rounds is kept, as in the other
// ablations.
//
// Output: a human-readable table on stdout and BENCH_parallel.json in
// the current directory. Exit status is nonzero if any gate fails.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace awam;
using namespace awam::bench;

namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

/// PR 3's recorded 4-thread speculation discard fractions (discarded /
/// speculated, from the BENCH_parallel.json this bench replaces) — the
/// baseline gate 2 compares against. Stored as exact rationals so the
/// comparison is integer arithmetic.
struct Pr3Baseline {
  std::string_view Name;
  uint64_t Discarded, Speculated;
};
constexpr Pr3Baseline kPr3Discards[] = {
    {"log10", 1, 4},    {"ops8", 1, 4},      {"times10", 1, 4},
    {"divide10", 1, 4}, {"tak", 0, 2},       {"nreverse", 1, 10},
    {"qsort", 9, 13},   {"query", 0, 1},     {"zebra", 4, 22},
    {"serialise", 3, 13}, {"queens_8", 1, 5},
};

const Pr3Baseline *pr3Row(std::string_view Name) {
  for (const Pr3Baseline &B : kPr3Discards)
    if (B.Name == Name)
      return &B;
  return nullptr;
}

struct SweepPoint {
  double Ms = 0;
  double SpeedUp = 0;       ///< 1-thread ms / this ms
  bool WallclockValid = false; ///< host_cpus >= n
  uint64_t Batches = 0, Speculated = 0, Committed = 0, Discarded = 0;
  uint64_t Bypassed = 0, PagesCopied = 0, BaseTouches = 0;
};

/// Warm-drain measurement: the store's warm batch queries (entry spec +
/// every defined predicate) at 1 and 4 warm threads.
struct WarmOut {
  uint64_t SeqUnits = 0;  ///< replayed + executed pops (thread-invariant)
  uint64_t ParUnits = 0;  ///< critical-path units + non-committed pops
  uint64_t SpecReplays = 0, SpecCommitted = 0, SpecDiscarded = 0;
  uint64_t Batches = 0;
  double UnitSpeedUp = 0; ///< SeqUnits / ParUnits
  bool Identical = false; ///< 4-thread warm answers == 1-thread's
};

struct RowOut {
  std::string Name;
  SweepPoint Points[4];
  WarmOut Warm;
  int Sweeps = 0;
  uint64_t Runs = 0; ///< scheduler replays (identical at every N)
  size_t Entries = 0;
};

/// Entry specs that drive the warm sweep: the benchmark entry first (the
/// cold query that banks journals), then every defined predicate as a
/// name/arity spec (each drains warm off the banked journals).
std::vector<std::string> warmSpecs(const PreparedBenchmark &P) {
  std::vector<std::string> Specs{std::string(P.Program->EntrySpec)};
  for (int32_t I = 0; I != P.Compiled->Module->numPredicates(); ++I) {
    const PredicateInfo &PI = P.Compiled->Module->predicate(I);
    if (PI.Clauses.empty())
      continue;
    std::string Name(P.Syms->name(PI.Name));
    std::string Spec =
        PI.Arity == 0 ? Name : Name + "/" + std::to_string(PI.Arity);
    if (Spec != Specs.front())
      Specs.push_back(std::move(Spec));
  }
  return Specs;
}

/// Runs the warm batch at \p WarmThreads and returns the store stats plus
/// the concatenated formatted answers (for the identity check).
bool runWarmBatch(const PreparedBenchmark &P, int WarmThreads,
                  AnalysisStore::Stats &StatsOut, std::string &AnswersOut) {
  AnalyzerOptions O;
  O.Persistent = true;
  O.NumThreads = 1;
  O.WarmThreads = WarmThreads;
  AnalysisSession S(*P.Compiled, O);
  AnswersOut.clear();
  for (const std::string &Spec : warmSpecs(P)) {
    Result<AnalysisResult> R = S.analyze(Spec);
    if (!R) {
      std::fprintf(stderr, "%s: warm query '%s' failed: %s\n",
                   std::string(P.Program->Name).c_str(), Spec.c_str(),
                   R.diag().str().c_str());
      return false;
    }
    AnswersOut += "== " + Spec + " ==\n" + formatAnalysis(*R, *P.Syms);
  }
  StatsOut = S.store()->stats();
  return true;
}

} // namespace

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 400.0;
  unsigned HostCpus = std::thread::hardware_concurrency();

  std::printf("Ablation A5: speculative parallel worklist driver\n");
  std::printf("host cpus: %u  (wall-clock speedups marked '*' where "
              "host_cpus < n; the\nregression gates are machine-independent "
              "and ignore wall-clock entirely)\n\n",
              HostCpus);

  TextTable T({"Benchmark", "1t(ms)", "4t(ms)", "speedup 2/4/8",
               "disc% pr3->4t", "byp@4", "pages/touch@4", "warm xU@4",
               "runs", "entries"});

  std::vector<RowOut> Rows;
  int Divergences = 0;
  double LogSumWall4 = 0;
  int WallValid4 = 0;

  // Gate accumulators.
  int DiscStrictlyLower = 0, DiscWorse = 0;
  bool PagesBoundOk = true;
  double LogSumWarm = 0;
  int WarmCounted = 0;
  bool WarmIdentityOk = true, WarmEngaged = false;

  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    PreparedBenchmark P = prepare(B);

    RowOut Row;
    Row.Name = std::string(B.Name);

    // Gate 1 first: the full formatted report (table in creation order +
    // iteration/instruction counters) must be byte-identical across the
    // whole sweep.
    std::string Reference;
    bool Diverged = false;
    for (int TI = 0; TI != 4; ++TI) {
      AnalyzerOptions O;
      O.NumThreads = kThreadCounts[TI];
      AnalysisSession A(*P.Compiled, O);
      Result<AnalysisResult> R = A.analyze(B.EntrySpec);
      if (!R) {
        std::fprintf(stderr, "%s: analysis error at %d threads: %s\n",
                     Row.Name.c_str(), kThreadCounts[TI],
                     R.diag().str().c_str());
        return 1;
      }
      std::string Report = formatAnalysis(*R, *P.Syms);
      if (TI == 0) {
        Reference = Report;
        Row.Sweeps = R->Iterations;
        Row.Runs = R->Counters.SchedulerRuns;
        Row.Entries = R->Items.size();
      } else if (Report != Reference) {
        std::fprintf(stderr,
                     "%s: TABLE DIVERGENCE at %d threads vs 1 thread\n",
                     Row.Name.c_str(), kThreadCounts[TI]);
        Diverged = true;
      }
      SweepPoint &Pt = Row.Points[TI];
      Pt.WallclockValid = HostCpus >= (unsigned)kThreadCounts[TI];
      Pt.Batches = R->Counters.SpecBatches;
      Pt.Speculated = R->Counters.SpecRuns;
      Pt.Committed = R->Counters.SpecCommitted;
      Pt.Discarded = R->Counters.SpecDiscarded;
      Pt.Bypassed = R->Counters.SpecBypassed;
      Pt.PagesCopied = R->Counters.SpecPagesCopied;
      Pt.BaseTouches = R->Counters.SpecBaseTouches;
      // Gate 3: COW bound at every thread count.
      if (Pt.PagesCopied > Pt.BaseTouches) {
        std::fprintf(stderr,
                     "%s: GATE 3 VIOLATION at %d threads: %llu pages "
                     "copied > %llu entries touched\n",
                     Row.Name.c_str(), kThreadCounts[TI],
                     (unsigned long long)Pt.PagesCopied,
                     (unsigned long long)Pt.BaseTouches);
        PagesBoundOk = false;
      }
    }
    if (Diverged) {
      ++Divergences;
      continue;
    }

    // Gate 2: 4-thread discard fraction vs PR 3, compared as cross
    // products (NewD/NewS < OldD/OldS ⟺ NewD*OldS < OldD*NewS; a sweep
    // with no speculations at all counts as fraction 0).
    const SweepPoint &P4 = Row.Points[2];
    if (const Pr3Baseline *Old = pr3Row(Row.Name)) {
      uint64_t NewD = P4.Discarded, NewS = std::max(P4.Speculated, NewD);
      bool Lower = NewD * Old->Speculated < Old->Discarded * NewS ||
                   (NewD == 0 && Old->Discarded > 0);
      bool Worse = NewD * Old->Speculated > Old->Discarded * NewS;
      if (Lower)
        ++DiscStrictlyLower;
      if (Worse) {
        ++DiscWorse;
        std::fprintf(stderr,
                     "%s: GATE 2 REGRESSION: discard fraction %llu/%llu "
                     "worse than PR 3's %llu/%llu\n",
                     Row.Name.c_str(), (unsigned long long)NewD,
                     (unsigned long long)NewS,
                     (unsigned long long)Old->Discarded,
                     (unsigned long long)Old->Speculated);
      }
    }

    // Gate 4: warm drains at 1 vs 4 warm threads. The replay/execute
    // split is thread-count invariant, so SeqUnits is read off either
    // run; ParUnits charges each fan-out batch its critical path
    // (ceil(jobs/threads)) plus every pop that was not answered by a
    // committed speculation.
    {
      AnalysisStore::Stats S1, S4;
      std::string A1, A4;
      if (!runWarmBatch(P, 1, S1, A1) || !runWarmBatch(P, 4, S4, A4))
        return 1;
      WarmOut &W = Row.Warm;
      W.Identical = A1 == A4 && S1.ReplayedRuns == S4.ReplayedRuns &&
                    S1.ExecutedRuns == S4.ExecutedRuns;
      if (!W.Identical) {
        std::fprintf(stderr,
                     "%s: GATE 4 VIOLATION: warm drain at 4 threads "
                     "differs from 1 thread\n",
                     Row.Name.c_str());
        WarmIdentityOk = false;
      }
      W.SeqUnits = S4.ReplayedRuns + S4.ExecutedRuns;
      W.ParUnits = S4.WarmCriticalUnits +
                   (W.SeqUnits - std::min(W.SeqUnits, S4.WarmSpecCommitted));
      W.SpecReplays = S4.WarmSpecReplays;
      W.SpecCommitted = S4.WarmSpecCommitted;
      W.SpecDiscarded = S4.WarmSpecDiscarded;
      W.Batches = S4.WarmReplayBatches;
      if (W.SeqUnits > 0 && W.ParUnits > 0) {
        W.UnitSpeedUp = (double)W.SeqUnits / (double)W.ParUnits;
        LogSumWarm += std::log(W.UnitSpeedUp);
        ++WarmCounted;
        if (W.Batches > 0)
          WarmEngaged = true;
      }
    }

    // Paired-min timing: alternate thread counts within each round so
    // machine noise hits all configurations alike; keep the fastest
    // round per configuration. One session per configuration keeps the
    // pool warm across analyze() calls.
    const int Rounds = 7;
    AnalysisSession *Sessions[4];
    std::vector<std::unique_ptr<AnalysisSession>> Owned;
    for (int TI = 0; TI != 4; ++TI) {
      AnalyzerOptions O;
      O.NumThreads = kThreadCounts[TI];
      Owned.push_back(std::make_unique<AnalysisSession>(*P.Compiled, O));
      Sessions[TI] = Owned.back().get();
      Row.Points[TI].Ms = 1e300;
    }
    for (int R = 0; R != Rounds; ++R)
      for (int TI = 0; TI != 4; ++TI)
        Row.Points[TI].Ms = std::min(
            Row.Points[TI].Ms,
            measureMs([&] { (void)Sessions[TI]->analyze(B.EntrySpec); },
                      MinTotalMs / (Rounds * 4)));
    for (int TI = 0; TI != 4; ++TI)
      Row.Points[TI].SpeedUp =
          Row.Points[TI].Ms > 0 ? Row.Points[0].Ms / Row.Points[TI].Ms : 0;
    if (Row.Points[2].WallclockValid && Row.Points[2].SpeedUp > 0) {
      LogSumWall4 += std::log(Row.Points[2].SpeedUp);
      ++WallValid4;
    }

    auto Spd = [](const SweepPoint &Pt) {
      return formatDouble(Pt.SpeedUp, 2) + (Pt.WallclockValid ? "" : "*");
    };
    auto DiscPct = [](uint64_t D, uint64_t S) {
      return S ? formatDouble(100.0 * D / S, 0) : std::string("0");
    };
    const Pr3Baseline *Old = pr3Row(Row.Name);
    T.addRow(
        {Row.Name, formatDouble(Row.Points[0].Ms, 3),
         formatDouble(Row.Points[2].Ms, 3),
         Spd(Row.Points[1]) + "/" + Spd(Row.Points[2]) + "/" +
             Spd(Row.Points[3]),
         (Old ? DiscPct(Old->Discarded, Old->Speculated) : std::string("-")) +
             "->" + DiscPct(P4.Discarded, P4.Speculated),
         std::to_string(Row.Points[2].Bypassed),
         std::to_string(Row.Points[2].PagesCopied) + "/" +
             std::to_string(Row.Points[2].BaseTouches),
         Row.Warm.UnitSpeedUp > 0 ? formatDouble(Row.Warm.UnitSpeedUp, 2)
                                  : std::string("-"),
         std::to_string(Row.Runs), std::to_string(Row.Entries)});
    Rows.push_back(Row);
  }

  double GeoWall4 = WallValid4 ? std::exp(LogSumWall4 / WallValid4) : 0;
  double GeoWarm = WarmCounted ? std::exp(LogSumWarm / WarmCounted) : 0;
  T.addSeparator();
  T.addRow({"geomean", "", "",
            WallValid4 ? "-/" + formatDouble(GeoWall4, 2) + "/-"
                       : std::string("(wall invalid)"),
            "", "", "", formatDouble(GeoWarm, 2), "", ""});
  std::fputs(T.str().c_str(), stdout);

  // Gate verdicts.
  bool Gate1 = Divergences == 0;
  bool Gate2 = DiscWorse == 0 && DiscStrictlyLower >= 8;
  bool Gate3 = PagesBoundOk;
  bool Gate4 = WarmIdentityOk && WarmEngaged && GeoWarm > 1.0;
  std::printf("\ngate 1 (byte-identity across {1,2,4,8} threads): %s\n",
              Gate1 ? "PASS" : "FAIL");
  std::printf("gate 2 (discard fraction vs PR 3: %d/11 strictly lower, "
              "%d worse): %s\n",
              DiscStrictlyLower, DiscWorse, Gate2 ? "PASS" : "FAIL");
  std::printf("gate 3 (pages copied <= entries touched everywhere): %s\n",
              Gate3 ? "PASS" : "FAIL");
  std::printf("gate 4 (warm-drain unit speedup geomean %.2f > 1, "
              "byte-identical): %s\n",
              GeoWarm, Gate4 ? "PASS" : "FAIL");

  FILE *J = std::fopen("BENCH_parallel.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"bench\": \"ablation_parallel\",\n");
  std::fprintf(J, "  \"host_cpus\": %u,\n", HostCpus);
  std::fprintf(J,
               "  \"note\": \"wall-clock numbers carry wallclock_valid = "
               "(host_cpus >= n) and are excluded from the geomean when "
               "invalid; the gates are machine-independent\",\n");
  std::fprintf(J, "  \"geomean_wallclock_speedup_4t\": %.3f,\n", GeoWall4);
  std::fprintf(J, "  \"geomean_wallclock_valid\": %s,\n",
               WallValid4 ? "true" : "false");
  std::fprintf(J, "  \"geomean_warm_unit_speedup_4t\": %.3f,\n", GeoWarm);
  std::fprintf(J,
               "  \"gates\": {\"identity\": %s, \"discard_fraction\": %s, "
               "\"discard_strictly_lower\": %d, \"pages_bound\": %s, "
               "\"warm_drain\": %s},\n",
               Gate1 ? "true" : "false", Gate2 ? "true" : "false",
               DiscStrictlyLower, Gate3 ? "true" : "false",
               Gate4 ? "true" : "false");
  std::fprintf(J, "  \"programs\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RowOut &R = Rows[I];
    std::fprintf(J,
                 "    {\"name\": \"%s\", \"sweeps\": %d, "
                 "\"scheduler_runs\": %llu, \"et_entries\": %zu,\n",
                 R.Name.c_str(), R.Sweeps,
                 static_cast<unsigned long long>(R.Runs), R.Entries);
    std::fprintf(
        J,
        "     \"warm\": {\"seq_units\": %llu, \"par_units_4t\": %llu, "
        "\"unit_speedup_4t\": %.3f, \"spec_replays\": %llu, "
        "\"spec_committed\": %llu, \"spec_discarded\": %llu, "
        "\"batches\": %llu, \"identical\": %s},\n",
        static_cast<unsigned long long>(R.Warm.SeqUnits),
        static_cast<unsigned long long>(R.Warm.ParUnits),
        R.Warm.UnitSpeedUp,
        static_cast<unsigned long long>(R.Warm.SpecReplays),
        static_cast<unsigned long long>(R.Warm.SpecCommitted),
        static_cast<unsigned long long>(R.Warm.SpecDiscarded),
        static_cast<unsigned long long>(R.Warm.Batches),
        R.Warm.Identical ? "true" : "false");
    std::fprintf(J, "     \"threads\": [\n");
    for (int TI = 0; TI != 4; ++TI) {
      const SweepPoint &Pt = R.Points[TI];
      std::fprintf(
          J,
          "      {\"n\": %d, \"ms\": %.4f, \"speedup\": %.3f, "
          "\"wallclock_valid\": %s, \"spec_batches\": %llu, "
          "\"spec_runs\": %llu, \"spec_committed\": %llu, "
          "\"spec_discarded\": %llu, \"spec_bypassed\": %llu, "
          "\"pages_copied\": %llu, \"entries_touched\": %llu}%s\n",
          kThreadCounts[TI], Pt.Ms, Pt.SpeedUp,
          Pt.WallclockValid ? "true" : "false",
          static_cast<unsigned long long>(Pt.Batches),
          static_cast<unsigned long long>(Pt.Speculated),
          static_cast<unsigned long long>(Pt.Committed),
          static_cast<unsigned long long>(Pt.Discarded),
          static_cast<unsigned long long>(Pt.Bypassed),
          static_cast<unsigned long long>(Pt.PagesCopied),
          static_cast<unsigned long long>(Pt.BaseTouches),
          TI == 3 ? "" : ",");
    }
    std::fprintf(J, "     ]}%s\n", I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(J, "  ]\n}\n");
  std::fclose(J);
  std::printf("wrote BENCH_parallel.json\n");

  return Gate1 && Gate2 && Gate3 && Gate4 ? 0 : 1;
}
