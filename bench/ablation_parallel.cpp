//===- bench/ablation_parallel.cpp - Parallel driver thread sweep ---------===//
//
// Measures the speculative parallel worklist driver against the
// sequential one across a 1/2/4/8-thread sweep on every Table 1 program.
//
// The parallel driver's contract is that parallelism is *observationally
// free*: the extension table, entry creation order, and every
// committed-work counter are byte-identical at every thread count. The
// bench verifies that (diffing the full formatted analysis report)
// before timing and exits nonzero on any divergence — the same check the
// CI determinism gate performs via examples/analyze_file.
//
// Timing protocol: per thread count, the session (and its thread pool)
// is created once and reused across analyze() calls — pool spawn costs
// ~100us+ which would otherwise dwarf these sub-millisecond analyses —
// and the fastest of several alternating rounds is kept, as in the other
// ablations. Speedup is wall-clock of 1 thread over N threads.
//
// NOTE on hosts: speedup columns are only meaningful on multi-core
// machines. The JSON records "host_cpus" so a 1-CPU container run (where
// speculation adds overhead and speedup <= 1 is expected) is not misread
// as a regression. The speculation columns (batches, commit rate) are
// machine-independent evidence that the driver actually overlaps work.
//
// Output: a human-readable table on stdout and BENCH_parallel.json in
// the current directory.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace awam;
using namespace awam::bench;

namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct SweepPoint {
  double Ms = 0;
  double SpeedUp = 0; ///< 1-thread ms / this ms
  uint64_t Batches = 0, Speculated = 0, Committed = 0, Discarded = 0;
};

struct RowOut {
  std::string Name;
  SweepPoint Points[4];
  int Sweeps = 0;
  uint64_t Runs = 0; ///< scheduler replays (identical at every N)
  size_t Entries = 0;
};

} // namespace

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 400.0;
  unsigned HostCpus = std::thread::hardware_concurrency();

  std::printf("Ablation A5: speculative parallel worklist driver\n");
  std::printf("host cpus: %u  (speedups need >1; the table is "
              "byte-identical at every thread count regardless)\n\n",
              HostCpus);

  TextTable T({"Benchmark", "1t(ms)", "2t(ms)", "4t(ms)", "8t(ms)",
               "speedup 2/4/8", "commit% 2/4/8", "batches@4", "runs",
               "entries"});

  std::vector<RowOut> Rows;
  int Divergences = 0;
  double LogSum4 = 0;

  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    PreparedBenchmark P = prepare(B);

    RowOut Row;
    Row.Name = std::string(B.Name);

    // Determinism gate first: the full formatted report (table in
    // creation order + iteration/instruction counters) must be
    // byte-identical across the whole sweep.
    std::string Reference;
    bool Diverged = false;
    for (int TI = 0; TI != 4; ++TI) {
      AnalyzerOptions O;
      O.NumThreads = kThreadCounts[TI];
      AnalysisSession A(*P.Compiled, O);
      Result<AnalysisResult> R = A.analyze(B.EntrySpec);
      if (!R) {
        std::fprintf(stderr, "%s: analysis error at %d threads: %s\n",
                     Row.Name.c_str(), kThreadCounts[TI],
                     R.diag().str().c_str());
        return 1;
      }
      std::string Report = formatAnalysis(*R, *P.Syms);
      if (TI == 0) {
        Reference = Report;
        Row.Sweeps = R->Iterations;
        Row.Runs = R->Counters.SchedulerRuns;
        Row.Entries = R->Items.size();
      } else if (Report != Reference) {
        std::fprintf(stderr,
                     "%s: TABLE DIVERGENCE at %d threads vs 1 thread\n",
                     Row.Name.c_str(), kThreadCounts[TI]);
        Diverged = true;
      }
      Row.Points[TI].Batches = R->Counters.SpecBatches;
      Row.Points[TI].Speculated = R->Counters.SpecRuns;
      Row.Points[TI].Committed = R->Counters.SpecCommitted;
      Row.Points[TI].Discarded = R->Counters.SpecDiscarded;
    }
    if (Diverged) {
      ++Divergences;
      continue;
    }

    // Paired-min timing: alternate thread counts within each round so
    // machine noise hits all configurations alike; keep the fastest
    // round per configuration. One session per configuration keeps the
    // pool warm across analyze() calls.
    const int Rounds = 7;
    AnalysisSession *Sessions[4];
    std::vector<std::unique_ptr<AnalysisSession>> Owned;
    for (int TI = 0; TI != 4; ++TI) {
      AnalyzerOptions O;
      O.NumThreads = kThreadCounts[TI];
      Owned.push_back(std::make_unique<AnalysisSession>(*P.Compiled, O));
      Sessions[TI] = Owned.back().get();
      Row.Points[TI].Ms = 1e300;
    }
    for (int R = 0; R != Rounds; ++R)
      for (int TI = 0; TI != 4; ++TI)
        Row.Points[TI].Ms = std::min(
            Row.Points[TI].Ms,
            measureMs([&] { (void)Sessions[TI]->analyze(B.EntrySpec); },
                      MinTotalMs / (Rounds * 4)));
    for (int TI = 0; TI != 4; ++TI)
      Row.Points[TI].SpeedUp =
          Row.Points[TI].Ms > 0 ? Row.Points[0].Ms / Row.Points[TI].Ms : 0;
    LogSum4 += std::log(Row.Points[2].SpeedUp);

    auto CommitPct = [](const SweepPoint &Pt) {
      return Pt.Speculated
                 ? formatDouble(100.0 * Pt.Committed / Pt.Speculated, 0)
                 : std::string("-");
    };
    T.addRow({Row.Name, formatDouble(Row.Points[0].Ms, 3),
              formatDouble(Row.Points[1].Ms, 3),
              formatDouble(Row.Points[2].Ms, 3),
              formatDouble(Row.Points[3].Ms, 3),
              formatDouble(Row.Points[1].SpeedUp, 2) + "/" +
                  formatDouble(Row.Points[2].SpeedUp, 2) + "/" +
                  formatDouble(Row.Points[3].SpeedUp, 2),
              CommitPct(Row.Points[1]) + "/" + CommitPct(Row.Points[2]) +
                  "/" + CommitPct(Row.Points[3]),
              std::to_string(Row.Points[2].Batches),
              std::to_string(Row.Runs), std::to_string(Row.Entries)});
    Rows.push_back(Row);
  }

  double GeoMean4 = Rows.empty() ? 0 : std::exp(LogSum4 / Rows.size());
  T.addSeparator();
  T.addRow({"geomean", "", "", "", "", "-/" + formatDouble(GeoMean4, 2) +
                                          "/-",
            "", "", "", ""});
  std::fputs(T.str().c_str(), stdout);
  std::printf("\ntables byte-identical across {1,2,4,8} threads on all "
              "%zu measured programs.\n",
              Rows.size());

  FILE *J = std::fopen("BENCH_parallel.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"bench\": \"ablation_parallel\",\n");
  std::fprintf(J, "  \"host_cpus\": %u,\n", HostCpus);
  std::fprintf(J, "  \"note\": \"speedups are wall-clock and only "
                  "meaningful when host_cpus > threads; commit rates and "
                  "batch counts are machine-independent\",\n");
  std::fprintf(J, "  \"geomean_speedup_4t\": %.3f,\n", GeoMean4);
  std::fprintf(J, "  \"programs\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RowOut &R = Rows[I];
    std::fprintf(J,
                 "    {\"name\": \"%s\", \"sweeps\": %d, "
                 "\"scheduler_runs\": %llu, \"et_entries\": %zu,\n",
                 R.Name.c_str(), R.Sweeps,
                 static_cast<unsigned long long>(R.Runs), R.Entries);
    std::fprintf(J, "     \"threads\": [\n");
    for (int TI = 0; TI != 4; ++TI) {
      const SweepPoint &Pt = R.Points[TI];
      std::fprintf(
          J,
          "      {\"n\": %d, \"ms\": %.4f, \"speedup\": %.3f, "
          "\"spec_batches\": %llu, \"spec_runs\": %llu, "
          "\"spec_committed\": %llu, \"spec_discarded\": %llu}%s\n",
          kThreadCounts[TI], Pt.Ms, Pt.SpeedUp,
          static_cast<unsigned long long>(Pt.Batches),
          static_cast<unsigned long long>(Pt.Speculated),
          static_cast<unsigned long long>(Pt.Committed),
          static_cast<unsigned long long>(Pt.Discarded),
          TI == 3 ? "" : ",");
    }
    std::fprintf(J, "     ]}%s\n", I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(J, "  ]\n}\n");
  std::fclose(J);
  std::printf("wrote BENCH_parallel.json\n");

  return Divergences ? 1 : 0;
}
