//===- bench/ablation_batch.cpp - Persistent-store batch query ablation ---===//
//
// Measures warm-start batch queries through one persistent AnalysisStore
// against from-scratch analyses on every Table 1 program.
//
// The store's contract is that warmth is observationally free: every
// query's report through a warm store is byte-identical to a fresh
// scratch analyze() of that entry alone, at every thread count. The bench
// verifies that before timing — entry spec plus every defined predicate
// of every benchmark, sequentially and at 4 threads — and exits nonzero
// on any divergence (the same property the CI batch gate checks via
// examples/analyze_file's repeated --entry).
//
// The timed comparison is the store's headline number: ColdMs is a fresh
// persistent session answering the benchmark's entry spec from nothing;
// WarmMs re-asks the same spec of the now-warm session, which the
// per-root result cache answers without draining. "replay acts" vs
// "exec acts" report how much of the *other* specs' table work the warm
// drains satisfied from banked journals rather than re-running the
// abstract machine.
//
// Output: a human-readable table on stdout and BENCH_batch.json in the
// current directory.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/StringUtil.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace awam;
using namespace awam::bench;

namespace {

struct RowOut {
  std::string Name;
  size_t Specs = 0;        ///< queries pushed through the warm store
  size_t Entries = 0;      ///< final multi-root store table size
  uint64_t ReplayActs = 0; ///< activations replayed from banked journals
  uint64_t ExecActs = 0;   ///< activations the warm drains still executed
  uint64_t CacheHits = 0;
  double ColdMs = 0;
  double WarmMs = 0;
  double SpeedUp = 0;
};

/// One spec per defined predicate, most-general calling pattern.
std::vector<std::string> definedPredSpecs(const CompiledProgram &P,
                                          const SymbolTable &Syms) {
  std::vector<std::string> Specs;
  for (int32_t I = 0; I != P.Module->numPredicates(); ++I) {
    const PredicateInfo &PI = P.Module->predicate(I);
    if (PI.Clauses.empty())
      continue;
    std::string Name(Syms.name(PI.Name));
    Specs.push_back(PI.Arity == 0 ? Name
                                  : Name + "/" + std::to_string(PI.Arity));
  }
  return Specs;
}

} // namespace

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 400.0;

  std::printf("Ablation A7: persistent-store batch queries (entry spec + "
              "every defined predicate per program)\n\n");

  TextTable T({"Benchmark", "specs", "entries", "replay acts", "exec acts",
               "cold(ms)", "warm(ms)", "speedup"});

  std::vector<RowOut> Rows;
  int Divergences = 0, FastCount = 0;

  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    PreparedBenchmark P = prepare(B);

    RowOut Row;
    Row.Name = std::string(B.Name);

    // The query list: the benchmark's entry spec first (the realistic
    // root), then the most-general pattern of every defined predicate.
    std::vector<std::string> Specs;
    Specs.emplace_back(B.EntrySpec);
    for (std::string &S : definedPredSpecs(*P.Compiled, *P.Syms))
      if (S != B.EntrySpec)
        Specs.push_back(std::move(S));
    Row.Specs = Specs.size();

    // Identity gate first, sequentially and at 4 threads: every answer
    // through the warm store must match a from-scratch session on that
    // spec byte-for-byte.
    bool Diverged = false;
    for (int Threads : {1, 4}) {
      AnalyzerOptions O;
      O.Persistent = true;
      O.NumThreads = Threads;

      AnalysisSession Warm(*P.Compiled, O);
      for (const std::string &Spec : Specs) {
        Result<AnalysisResult> RW = Warm.analyze(Spec);
        AnalysisSession Scratch(*P.Compiled, O);
        Result<AnalysisResult> RS = Scratch.analyze(Spec);
        if (!RW || !RS) {
          std::fprintf(stderr, "%s: analysis error on '%s' at %d threads: "
                               "%s\n",
                       Row.Name.c_str(), Spec.c_str(), Threads,
                       (RW ? RS : RW).diag().str().c_str());
          return 1;
        }
        if (formatAnalysis(*RW, *P.Syms) != formatAnalysis(*RS, *P.Syms)) {
          std::fprintf(stderr,
                       "%s: WARM DIVERGENCE vs scratch on '%s' at %d "
                       "threads\n",
                       Row.Name.c_str(), Spec.c_str(), Threads);
          Diverged = true;
        }
      }
      if (Threads == 1 && Warm.store()) {
        const AnalysisStore::Stats &St = Warm.store()->stats();
        Row.Entries = Warm.store()->table().size();
        Row.ReplayActs = St.ReplayedActivations;
        Row.ExecActs = St.ExecutedActivations;
        Row.CacheHits = St.CacheHits;
      }
    }
    if (Diverged) {
      ++Divergences;
      continue;
    }

    // Timing (sequential). Cold: a fresh persistent session answers the
    // entry spec from nothing. Warm: the same session re-asked — the
    // per-root result cache answers without draining.
    AnalyzerOptions O;
    O.Persistent = true;
    Row.ColdMs = measureMs(
        [&] {
          AnalysisSession S(*P.Compiled, O);
          (void)S.analyze(B.EntrySpec);
        },
        MinTotalMs / 2);
    AnalysisSession S(*P.Compiled, O);
    (void)S.analyze(B.EntrySpec);
    Row.WarmMs =
        measureMs([&] { (void)S.analyze(B.EntrySpec); }, MinTotalMs / 2);
    Row.SpeedUp = Row.WarmMs > 0 ? Row.ColdMs / Row.WarmMs : 0;
    if (Row.SpeedUp >= 5.0)
      ++FastCount;

    T.addRow({Row.Name, std::to_string(Row.Specs),
              std::to_string(Row.Entries), std::to_string(Row.ReplayActs),
              std::to_string(Row.ExecActs), formatDouble(Row.ColdMs, 3),
              formatDouble(Row.WarmMs, 4), formatDouble(Row.SpeedUp, 2)});
    Rows.push_back(Row);
  }

  std::fputs(T.str().c_str(), stdout);
  std::printf("\nwarm queries byte-identical to scratch on %zu/%zu "
              "programs; warm repeat >= 5x faster than cold on %d/%zu "
              "(target: 8/11).\n",
              Rows.size(), Rows.size() + Divergences, FastCount,
              Rows.size());

  FILE *J = std::fopen("BENCH_batch.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_batch.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"bench\": \"ablation_batch\",\n");
  std::fprintf(J, "  \"queries\": \"entry spec + every defined predicate, "
                  "one warm store per program\",\n");
  std::fprintf(J, "  \"fast_count\": %d,\n", FastCount);
  std::fprintf(J, "  \"programs\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RowOut &R = Rows[I];
    std::fprintf(
        J,
        "    {\"name\": \"%s\", \"specs\": %zu, \"et_entries\": %zu, "
        "\"replay_activations\": %llu, \"exec_activations\": %llu, "
        "\"cache_hits\": %llu, \"cold_ms\": %.4f, \"warm_ms\": %.5f, "
        "\"speedup\": %.3f}%s\n",
        R.Name.c_str(), R.Specs, R.Entries,
        static_cast<unsigned long long>(R.ReplayActs),
        static_cast<unsigned long long>(R.ExecActs),
        static_cast<unsigned long long>(R.CacheHits), R.ColdMs, R.WarmMs,
        R.SpeedUp, I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(J, "  ]\n}\n");
  std::fclose(J);
  std::printf("wrote BENCH_batch.json\n");

  return Divergences ? 1 : 0;
}
