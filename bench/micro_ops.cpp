//===- bench/micro_ops.cpp - Microbenchmarks (google-benchmark) -----------===//
//
// Ablation A3: microbenchmarks of the primitive operations the analysis
// is built from: concrete unification, abstract meets, pattern
// canonicalization / instantiation / lub, extension-table lookup, whole
// compilation, and end-to-end concrete execution vs abstract analysis of
// nreverse.
//
//===----------------------------------------------------------------------===//

#include "absdom/AbsOps.h"
#include "analyzer/Session.h"
#include "baseline/MetaAnalyzer.h"
#include "programs/Benchmarks.h"
#include "wam/Machine.h"

#include <benchmark/benchmark.h>

using namespace awam;

namespace {

/// Builds [0, 1, ..., N-1] on the heap.
int64_t buildIntList(Store &St, int N) {
  int64_t Tail = St.push(Cell::atom(SymbolTable::SymNil));
  for (int I = N - 1; I >= 0; --I) {
    int64_t Base = St.push(Cell::integer(I));
    St.push(Cell::ref(Tail));
    Tail = St.push(Cell::lis(Base));
  }
  return Tail;
}

void BM_AbsMeetKinds(benchmark::State &State) {
  Store St;
  for (auto _ : State) {
    int64_t Mark = St.trailMark();
    int64_t H = St.heapTop();
    int64_t A = St.push(Cell::abs(AbsKind::Any));
    int64_t B = St.push(Cell::abs(AbsKind::Ground));
    benchmark::DoNotOptimize(absUnify(St, Cell::ref(A), Cell::ref(B)));
    St.unwind(Mark);
    St.truncate(H);
  }
}
BENCHMARK(BM_AbsMeetKinds);

void BM_AbsUnifyGroundList(benchmark::State &State) {
  Store St;
  int64_t List = buildIntList(St, 30);
  for (auto _ : State) {
    int64_t Mark = St.trailMark();
    int64_t H = St.heapTop();
    int64_t Elem = St.push(Cell::abs(AbsKind::Ground));
    int64_t GL = St.push(Cell::abs(AbsKind::List, Elem));
    benchmark::DoNotOptimize(
        absUnify(St, Cell::ref(GL), Cell::ref(List)));
    St.unwind(Mark);
    St.truncate(H);
  }
}
BENCHMARK(BM_AbsUnifyGroundList);

void BM_Canonicalize(benchmark::State &State) {
  Store St;
  int64_t List = buildIntList(St, 30);
  std::vector<Cell> Args = {Cell::ref(List), Cell::ref(St.pushVar())};
  for (auto _ : State)
    benchmark::DoNotOptimize(canonicalize(St, Args));
}
BENCHMARK(BM_Canonicalize);

void BM_InstantiatePattern(benchmark::State &State) {
  Store St;
  int64_t List = buildIntList(St, 30);
  std::vector<Cell> Args = {Cell::ref(List), Cell::ref(St.pushVar())};
  Pattern P = canonicalize(St, Args);
  Store Scratch;
  for (auto _ : State) {
    Scratch.reset();
    benchmark::DoNotOptimize(instantiate(Scratch, P));
  }
}
BENCHMARK(BM_InstantiatePattern);

void BM_LubPatterns(benchmark::State &State) {
  Store St;
  SymbolTable Syms;
  int64_t List = buildIntList(St, 8);
  int64_t Elem = St.push(Cell::abs(AbsKind::AtomT));
  int64_t AL = St.push(Cell::abs(AbsKind::List, Elem));
  Pattern A = canonicalize(St, {Cell::ref(List)});
  Pattern B = canonicalize(St, {Cell::ref(AL)});
  for (auto _ : State)
    benchmark::DoNotOptimize(lubPatterns(A, B));
}
BENCHMARK(BM_LubPatterns);

void BM_ETLookup(benchmark::State &State) {
  auto Impl = static_cast<ExtensionTable::Impl>(State.range(0));
  ExtensionTable Table(Impl);
  Store St;
  // Populate with 64 distinct patterns.
  std::vector<Pattern> Pats;
  for (int I = 0; I != 64; ++I) {
    int64_t L = buildIntList(St, I % 5);
    Pattern P = canonicalize(St, {Cell::ref(L), Cell::ref(St.pushVar())});
    bool Created = false;
    Table.findOrCreate(I % 8, P, Created);
    Pats.push_back(std::move(P));
  }
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        Table.find(static_cast<int32_t>(I % 8), Pats[I % Pats.size()]));
    ++I;
  }
}
BENCHMARK(BM_ETLookup)
    ->Arg(static_cast<int>(ExtensionTable::Impl::LinearList))
    ->Arg(static_cast<int>(ExtensionTable::Impl::HashMap));

void BM_CompileQsort(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("qsort");
  for (auto _ : State) {
    SymbolTable Syms;
    TermArena Arena;
    benchmark::DoNotOptimize(compileSource(B->Source, Syms, Arena));
  }
}
BENCHMARK(BM_CompileQsort);

void BM_ConcreteNreverse(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("nreverse");
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource(B->Source, Syms, Arena);
  Machine M(*P);
  Parser GoalParser("main", Syms, Arena);
  Result<const Term *> Goal = GoalParser.readTerm();
  for (auto _ : State)
    benchmark::DoNotOptimize(M.proves(*Goal, 0));
}
BENCHMARK(BM_ConcreteNreverse);

void BM_AnalyzeNreverse(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("nreverse");
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource(B->Source, Syms, Arena);
  for (auto _ : State) {
    AnalysisSession A(*P);
    benchmark::DoNotOptimize(A.analyze("main"));
  }
}
BENCHMARK(BM_AnalyzeNreverse);

void BM_MetaAnalyzeNreverse(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("nreverse");
  SymbolTable Syms;
  TermArena Arena;
  Result<ParsedProgram> P = parseProgram(B->Source, Syms, Arena);
  for (auto _ : State) {
    MetaAnalyzer A(*P, Syms);
    benchmark::DoNotOptimize(A.analyze("main"));
  }
}
BENCHMARK(BM_MetaAnalyzeNreverse);

} // namespace

BENCHMARK_MAIN();
