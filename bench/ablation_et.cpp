//===- bench/ablation_et.cpp - Extension-table structure ablation ---------===//
//
// Section 6: "The extension table is implemented as a linear list of
// (calling-pattern, success-pattern) pairs." This ablation compares that
// implementation with a hashed table: per benchmark, analysis time and
// pattern-comparison probes for both.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/StringUtil.h"

#include <cstdio>

using namespace awam;
using namespace awam::bench;

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 50.0;
  std::printf("Ablation A2: extension-table lookup structure\n\n");

  TextTable T({"Benchmark", "linear(ms)", "hash(ms)", "linear probes",
               "hash probes", "entries"});

  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    PreparedBenchmark P = prepare(B);

    AnalyzerOptions Linear;
    Linear.TableImpl = ExtensionTable::Impl::LinearList;
    AnalyzerOptions Hash;
    Hash.TableImpl = ExtensionTable::Impl::HashMap;

    AnalysisSession AL(*P.Compiled, Linear);
    Result<AnalysisResult> RL = AL.analyze(B.EntrySpec);
    AnalysisSession AH(*P.Compiled, Hash);
    Result<AnalysisResult> RH = AH.analyze(B.EntrySpec);
    if (!RL || !RH) {
      std::fprintf(stderr, "%s: analysis error\n",
                   std::string(B.Name).c_str());
      continue;
    }

    double LinMs = measureMs(
        [&] {
          AnalysisSession A(*P.Compiled, Linear);
          (void)A.analyze(B.EntrySpec);
        },
        MinTotalMs);
    double HashMs = measureMs(
        [&] {
          AnalysisSession A(*P.Compiled, Hash);
          (void)A.analyze(B.EntrySpec);
        },
        MinTotalMs);

    T.addRow({std::string(B.Name), formatDouble(LinMs, 3),
              formatDouble(HashMs, 3), std::to_string(RL->TableProbes),
              std::to_string(RH->TableProbes),
              std::to_string(RL->Items.size())});
  }
  std::fputs(T.str().c_str(), stdout);
  std::printf("\nThe tables are small on this suite, which is why the "
              "paper's linear list is\nadequate; the hashed variant wins "
              "only as the number of calling patterns grows.\n");
  return 0;
}
