//===- bench/ablation_interning.cpp - Hash-consing / memoization ablation -===//
//
// Measures the tentpole optimization of the analyzer hot path: hash-consed
// patterns (dense PatternId), the id-keyed O(1) extension table, memoized
// lub/leq, and pooled scratch buffers — against the seed configuration
// (the paper's linear-list table, no interning, per-call stores).
//
// Also compares the two fixpoint drivers on the fast configuration: the
// naive restart loop replays every activation per iteration, while the
// dependency-driven worklist scheduler replays only activations whose
// read-set changed. The driver columns record that ablation.
//
// For every Table 1 program all configurations must compute the exact
// same fixpoint (extension table); the bench verifies that before timing
// and exits nonzero on any divergence.
//
// Output: a human-readable table on stdout and machine-readable JSON in
// BENCH_interning.json (written to the current directory) so the repo's
// perf trajectory is recorded per PR.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace awam;
using namespace awam::bench;

namespace {

/// Sorted "pred call -> success" lines of a result (fixpoint fingerprint).
std::vector<std::string> fingerprint(const AnalysisResult &R,
                                    const SymbolTable &Syms) {
  std::vector<std::string> Lines;
  for (const AnalysisResult::Item &I : R.Items)
    Lines.push_back(I.PredLabel + " " + I.Call.str(Syms) + " -> " +
                    (I.Success ? I.Success->str(Syms) : "(fails)"));
  std::sort(Lines.begin(), Lines.end());
  return Lines;
}

struct RowOut {
  std::string Name;
  double BaseMs = 0, FastMs = 0, SpeedUp = 0;
  int NaiveIterations = 0; ///< naive driver restart iterations
  int Sweeps = 0;          ///< worklist driver sweeps
  size_t Entries = 0;
  uint64_t BaseProbes = 0, FastProbes = 0;
  uint64_t NaiveReplays = 0; ///< activation replays, naive driver
  uint64_t WorkReplays = 0;  ///< activation replays, worklist driver
  uint64_t DepEdges = 0;     ///< dependency edges the scheduler recorded
  PerfCounters Counters;
};

} // namespace

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 400.0;

  std::printf("Ablation A3: hash-consed patterns + memoized lattice ops\n");
  std::printf("base = seed configuration (LinearList table, no interning, "
              "uncached lub);\nfast = interning + id-keyed HashMap + "
              "lub/leq memo + pooled scratch (the default).\n\n");

  // base: the seed configuration (paper setup, naive restart driver).
  // fast: all analyzer defaults, including the worklist driver.
  // naive-fast: the fast data structures on the naive driver, isolating
  // the scheduler's replay savings in the driver columns.
  AnalyzerOptions Base = seedAnalyzerOptions();
  AnalyzerOptions Fast;
  AnalyzerOptions NaiveFast;
  NaiveFast.Driver = DriverKind::Naive;

  TextTable T({"Benchmark", "base(ms)", "fast(ms)", "speedup",
               "iters/sweeps", "replays n/w", "dep edges", "entries",
               "patterns", "lub hit/miss", "intern hit/miss",
               "probes base/fast"});

  std::vector<RowOut> Rows;
  int Divergences = 0;
  double LogSum = 0;
  int AtLeast2x = 0;

  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    PreparedBenchmark P = prepare(B);

    AnalysisSession ABase(*P.Compiled, Base);
    Result<AnalysisResult> RBase = ABase.analyze(B.EntrySpec);
    AnalysisSession AFast(*P.Compiled, Fast);
    Result<AnalysisResult> RFast = AFast.analyze(B.EntrySpec);
    AnalysisSession ANaive(*P.Compiled, NaiveFast);
    Result<AnalysisResult> RNaive = ANaive.analyze(B.EntrySpec);
    if (!RBase || !RFast || !RNaive) {
      std::fprintf(stderr, "%s: analysis error\n",
                   std::string(B.Name).c_str());
      return 1;
    }

    // Cross-validation gate: all three configurations compute the same
    // fixpoint. (Iteration counts are comparable only between the naive
    // configurations — the worklist driver converges in fewer sweeps.)
    if (fingerprint(*RBase, *P.Syms) != fingerprint(*RFast, *P.Syms) ||
        fingerprint(*RBase, *P.Syms) != fingerprint(*RNaive, *P.Syms) ||
        RBase->Iterations != RNaive->Iterations) {
      std::fprintf(stderr, "%s: FIXPOINT DIVERGENCE between "
                           "configurations\n",
                   std::string(B.Name).c_str());
      ++Divergences;
      continue;
    }

    RowOut Row;
    Row.Name = std::string(B.Name);
    Row.NaiveIterations = RNaive->Iterations;
    Row.Sweeps = RFast->Iterations;
    Row.Entries = RFast->Items.size();
    Row.BaseProbes = RBase->TableProbes;
    Row.FastProbes = RFast->TableProbes;
    Row.NaiveReplays = RNaive->Counters.ActivationRuns;
    Row.WorkReplays = RFast->Counters.ActivationRuns;
    Row.DepEdges = RFast->Counters.DepEdges;
    Row.Counters = RFast->Counters;
    // Noise-robust paired measurement: alternate base/fast rounds and keep
    // the fastest round of each mode. CPU frequency and scheduler noise
    // hits both configurations alike within a round, and the min filters
    // transient interference out of the ratio.
    const int Rounds = 7;
    Row.BaseMs = Row.FastMs = 1e300;
    for (int R = 0; R != Rounds; ++R) {
      Row.BaseMs = std::min(Row.BaseMs, measureMs(
                                            [&] {
                                              AnalysisSession A(*P.Compiled, Base);
                                              (void)A.analyze(B.EntrySpec);
                                            },
                                            MinTotalMs / Rounds));
      Row.FastMs = std::min(Row.FastMs, measureMs(
                                            [&] {
                                              AnalysisSession A(*P.Compiled, Fast);
                                              (void)A.analyze(B.EntrySpec);
                                            },
                                            MinTotalMs / Rounds));
    }
    Row.SpeedUp = Row.FastMs > 0 ? Row.BaseMs / Row.FastMs : 0;
    LogSum += std::log(Row.SpeedUp);
    if (Row.SpeedUp >= 2.0)
      ++AtLeast2x;

    T.addRow({Row.Name, formatDouble(Row.BaseMs, 3),
              formatDouble(Row.FastMs, 3), formatDouble(Row.SpeedUp, 2),
              std::to_string(Row.NaiveIterations) + "/" +
                  std::to_string(Row.Sweeps),
              std::to_string(Row.NaiveReplays) + "/" +
                  std::to_string(Row.WorkReplays),
              std::to_string(Row.DepEdges), std::to_string(Row.Entries),
              std::to_string(Row.Counters.DistinctPatterns),
              std::to_string(Row.Counters.LubCacheHits) + "/" +
                  std::to_string(Row.Counters.LubCacheMisses),
              std::to_string(Row.Counters.InternHits) + "/" +
                  std::to_string(Row.Counters.InternMisses),
              std::to_string(Row.BaseProbes) + "/" +
                  std::to_string(Row.FastProbes)});
    Rows.push_back(Row);
  }

  double GeoMean = Rows.empty() ? 0 : std::exp(LogSum / Rows.size());
  T.addSeparator();
  T.addRow({"geomean", "", "", formatDouble(GeoMean, 2), "", "", "", "", "",
            "", "", ""});
  std::fputs(T.str().c_str(), stdout);
  std::printf("\n%d/%zu programs at >= 2x; fixpoints identical on all "
              "measured programs.\n",
              AtLeast2x, Rows.size());

  // Machine-readable trajectory record.
  FILE *J = std::fopen("BENCH_interning.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_interning.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"bench\": \"ablation_interning\",\n");
  std::fprintf(J, "  \"base\": \"LinearList, no interning, uncached lub, "
                  "naive driver\",\n");
  std::fprintf(J,
               "  \"fast\": \"HashMap id-keyed, interning, memoized "
               "lub/leq, pooled scratch, worklist driver\",\n");
  std::fprintf(J, "  \"driver_comparison\": \"activation_runs_naive vs "
                  "activation_runs_worklist on the fast data "
                  "structures\",\n");
  std::fprintf(J, "  \"geomean_speedup\": %.3f,\n", GeoMean);
  std::fprintf(J, "  \"programs_at_2x\": %d,\n", AtLeast2x);
  std::fprintf(J, "  \"programs\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RowOut &R = Rows[I];
    std::fprintf(
        J,
        "    {\"name\": \"%s\", \"base_ms\": %.4f, \"fast_ms\": %.4f, "
        "\"speedup\": %.3f, \"iterations\": %d, \"sweeps\": %d, "
        "\"activation_runs_naive\": %llu, \"activation_runs_worklist\": "
        "%llu, \"dep_edges\": %llu, \"et_entries\": %zu, "
        "\"distinct_patterns\": %llu, \"intern_hits\": %llu, "
        "\"intern_misses\": %llu, \"lub_hits\": %llu, \"lub_misses\": "
        "%llu, \"et_probes_base\": %llu, \"et_probes_fast\": %llu}%s\n",
        R.Name.c_str(), R.BaseMs, R.FastMs, R.SpeedUp, R.NaiveIterations,
        R.Sweeps, static_cast<unsigned long long>(R.NaiveReplays),
        static_cast<unsigned long long>(R.WorkReplays),
        static_cast<unsigned long long>(R.DepEdges), R.Entries,
        static_cast<unsigned long long>(R.Counters.DistinctPatterns),
        static_cast<unsigned long long>(R.Counters.InternHits),
        static_cast<unsigned long long>(R.Counters.InternMisses),
        static_cast<unsigned long long>(R.Counters.LubCacheHits),
        static_cast<unsigned long long>(R.Counters.LubCacheMisses),
        static_cast<unsigned long long>(R.BaseProbes),
        static_cast<unsigned long long>(R.FastProbes),
        I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(J, "  ]\n}\n");
  std::fclose(J);
  std::printf("wrote BENCH_interning.json\n");

  return Divergences ? 1 : 0;
}
