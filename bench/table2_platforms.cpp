//===- bench/table2_platforms.cpp - Reproduces Table 2 / Appendix A -------===//
//
// Regenerates the paper's Table 2 ("The Speed Ratios on Various
// Platforms"). The paper normalizes every benchmark to the Aquarius
// analyzer on a Sun 3/60 (= 1) and reports the analyzer's speed ratio on
// eight 1990s machines.
//
// Substitution (DESIGN.md, substitution 3): the 1990s hardware is
// unavailable. The "this host" column is the real measured ratio
// (hosted-baseline time / compiled-analyzer time on this machine); the
// remaining platform columns are *projections* obtained by scaling the
// measured ratio with the paper's own per-platform speed indexes (its
// "Index" row), and are clearly labelled as modelled.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/StringUtil.h"

#include <cstdio>

using namespace awam;
using namespace awam::bench;

namespace {

struct Platform {
  std::string_view Name;
  double Index; // the paper's relative analyzer speed (3/60 = 1)
};

// Paper Table 2, "Index" row.
constexpr Platform Platforms[] = {
    {"3/60", 1.0},      {"MacIIx", 0.50},  {"uVax3100", 0.58},
    {"Vax8530", 1.2},   {"DecS3100", 3.7}, {"SS1+", 5.21},
    {"DecS5000", 6.8},  {"SS2", 9.0},
};

} // namespace

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 100.0;

  std::printf("Table 2: The Speed Ratios on Various Platforms "
              "(reproduction)\n");
  std::printf("Baseline (hosted analyzer) = 1. \"this-host\" is measured; "
              "platform columns are\nprojections using the paper's Index "
              "row (modelled, see DESIGN.md).\n\n");

  std::vector<std::string> Headers = {"Benchmarks", "Baseline",
                                      "this-host"};
  for (const Platform &P : Platforms)
    Headers.push_back(std::string(P.Name) + "*");
  TextTable T(Headers);

  double RatioSum = 0;
  int N = 0;
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    PreparedBenchmark P = prepare(B);
    Table1Row Row = measureBenchmark(P, {}, MinTotalMs);
    double Measured = Row.SpeedUp;
    std::vector<std::string> Cells = {Row.Name, "1",
                                      formatDouble(Measured, 1)};
    for (const Platform &Pl : Platforms)
      Cells.push_back(formatDouble(Measured * Pl.Index, 1));
    T.addRow(Cells);
    RatioSum += Measured;
    ++N;
  }
  T.addSeparator();
  std::vector<std::string> Avg = {"average", "1",
                                  formatDouble(RatioSum / N, 1)};
  for (const Platform &Pl : Platforms)
    Avg.push_back(formatDouble((RatioSum / N) * Pl.Index, 1));
  T.addRow(Avg);
  std::fputs(T.str().c_str(), stdout);

  std::printf("\n(*) projected with the paper's per-platform Index "
              "(.50/.58/1.2/3.7/5.21/6.8/9.0);\nthe paper's own Table 2 "
              "average row was 152/76/89/177/564/794/1035/1376.\n");
  return 0;
}
