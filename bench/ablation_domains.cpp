//===- bench/ablation_domains.cpp - Abstract-domain cost ablation ---------===//
//
// Measures what each registered abstract domain costs on the shared
// engine: the paper's mode/type/aliasing domain ("modes", the default),
// the Pos-style groundness-dependency domain ("pos") and the determinism
// domain ("det"), all through the same compiled abstract WAM, interner,
// extension table and worklist driver.
//
// Identity gates (the bench exits nonzero on any violation):
//
//  * the default domain selected by name is byte-identical — report and
//    facts — to a session with default options, at every thread count
//    (the domain interface costs the paper's analysis nothing);
//  * every domain is byte-identical between 1 and 4 threads (the
//    parallel determinism contract extends to new domains);
//  * the det domain's pattern table equals the modes table (det only
//    derives facts on top of the default fixpoint).
//
// The modes(ms) column is measured with the same protocol as the "fast"
// column of ablation_interning, so the two files cross-check within
// noise.
//
// Output: a human-readable table on stdout and machine-readable JSON in
// BENCH_domains.json (written to the current directory).
//
//===----------------------------------------------------------------------===//

#include "analyzer/Domain.h"
#include "bench/BenchUtil.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace awam;
using namespace awam::bench;

namespace {

/// Everything a domain run answers: the report table plus derived facts.
std::string reportOf(const AnalysisResult &R, const PreparedBenchmark &P) {
  std::string Out = formatAnalysis(R, *P.Syms);
  if (R.Dom)
    Out += R.Dom->formatFacts(R, *P.Compiled);
  return Out;
}

struct DomainCell {
  double Ms = 0;
  size_t Entries = 0;
};

struct RowOut {
  std::string Name;
  std::vector<DomainCell> Cells; ///< one per registered domain
};

} // namespace

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 400.0;

  const std::vector<const Domain *> &Domains = registeredDomains();
  std::printf("Ablation A7: abstract-domain cost on the shared engine\n");
  for (const Domain *D : Domains)
    std::printf("  %-6s %s\n", std::string(D->name()).c_str(),
                std::string(D->description()).c_str());
  std::printf("\n");

  std::vector<std::string> Header = {"Benchmark"};
  for (const Domain *D : Domains)
    Header.push_back(std::string(D->name()) + "(ms)");
  for (size_t I = 1; I != Domains.size(); ++I)
    Header.push_back(std::string(Domains[I]->name()) + "/" +
                     std::string(Domains[0]->name()));
  Header.push_back("entries m/p/d");
  TextTable T(Header);

  std::vector<RowOut> Rows;
  int Violations = 0;
  std::vector<double> LogSum(Domains.size(), 0.0);

  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    PreparedBenchmark P = prepare(B);
    RowOut Row;
    Row.Name = std::string(B.Name);

    std::vector<std::string> Reports;
    for (const Domain *D : Domains) {
      AnalyzerOptions O1, O4;
      O1.DomainName = O4.DomainName = std::string(D->name());
      O4.NumThreads = 4;

      AnalysisSession A1(*P.Compiled, O1);
      Result<AnalysisResult> R1 = A1.analyze(B.EntrySpec);
      AnalysisSession A4(*P.Compiled, O4);
      Result<AnalysisResult> R4 = A4.analyze(B.EntrySpec);
      if (!R1 || !R4) {
        std::fprintf(stderr, "%s/%s: analysis error\n", Row.Name.c_str(),
                     std::string(D->name()).c_str());
        return 1;
      }
      std::string Rep1 = reportOf(*R1, P);
      if (Rep1 != reportOf(*R4, P)) {
        std::fprintf(stderr,
                     "%s/%s: THREAD DIVERGENCE between 1 and 4 threads\n",
                     Row.Name.c_str(), std::string(D->name()).c_str());
        ++Violations;
      }
      Reports.push_back(Rep1);

      DomainCell Cell;
      Cell.Entries = R1->Items.size();
      Cell.Ms = measureMs(
          [&] {
            AnalysisSession A(*P.Compiled, O1);
            (void)A.analyze(B.EntrySpec);
          },
          MinTotalMs / static_cast<double>(Domains.size()));
      Row.Cells.push_back(Cell);
    }

    // Gate: the default domain selected by name answers exactly what a
    // default-options session answers (the pre-refactor output).
    {
      AnalysisSession APlain(*P.Compiled, AnalyzerOptions{});
      Result<AnalysisResult> RPlain = APlain.analyze(B.EntrySpec);
      if (!RPlain || Reports[0] != reportOf(*RPlain, P)) {
        std::fprintf(stderr, "%s: DEFAULT-DOMAIN DIVERGENCE from plain "
                             "options\n",
                     Row.Name.c_str());
        ++Violations;
      }
    }

    // Gate: det's pattern table is the modes table plus facts.
    for (size_t I = 1; I != Domains.size(); ++I) {
      if (Domains[I]->name() != "det")
        continue;
      AnalyzerOptions O;
      O.DomainName = "det";
      AnalysisSession A(*P.Compiled, O);
      Result<AnalysisResult> R = A.analyze(B.EntrySpec);
      AnalysisSession AM(*P.Compiled, AnalyzerOptions{});
      Result<AnalysisResult> RM = AM.analyze(B.EntrySpec);
      if (!R || !RM ||
          formatAnalysis(*R, *P.Syms) != formatAnalysis(*RM, *P.Syms)) {
        std::fprintf(stderr, "%s: DET TABLE DIVERGES from modes table\n",
                     Row.Name.c_str());
        ++Violations;
      }
    }

    std::vector<std::string> Cols = {Row.Name};
    for (const DomainCell &C : Row.Cells)
      Cols.push_back(formatDouble(C.Ms, 3));
    std::string Entries;
    for (size_t I = 1; I != Domains.size(); ++I) {
      double Rel = Row.Cells[0].Ms > 0 ? Row.Cells[I].Ms / Row.Cells[0].Ms
                                       : 0;
      LogSum[I] += std::log(std::max(Rel, 1e-9));
      Cols.push_back(formatDouble(Rel, 2));
    }
    for (size_t I = 0; I != Row.Cells.size(); ++I)
      Entries += (I ? "/" : "") + std::to_string(Row.Cells[I].Entries);
    Cols.push_back(Entries);
    T.addRow(Cols);
    Rows.push_back(std::move(Row));
  }

  std::vector<std::string> Tail = {"geomean"};
  for (size_t I = 0; I != Domains.size(); ++I)
    Tail.push_back("");
  for (size_t I = 1; I != Domains.size(); ++I)
    Tail.push_back(formatDouble(
        Rows.empty() ? 0 : std::exp(LogSum[I] / Rows.size()), 2));
  Tail.push_back("");
  T.addSeparator();
  T.addRow(Tail);
  std::fputs(T.str().c_str(), stdout);
  std::printf("\n%d identity violations across %zu programs x %zu "
              "domains.\n",
              Violations, Rows.size(), Domains.size());

  FILE *J = std::fopen("BENCH_domains.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_domains.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"bench\": \"ablation_domains\",\n");
  std::fprintf(J, "  \"domains\": [");
  for (size_t I = 0; I != Domains.size(); ++I)
    std::fprintf(J, "%s\"%s\"", I ? ", " : "",
                 std::string(Domains[I]->name()).c_str());
  std::fprintf(J, "],\n");
  for (size_t I = 1; I != Domains.size(); ++I)
    std::fprintf(J, "  \"geomean_rel_%s\": %.3f,\n",
                 std::string(Domains[I]->name()).c_str(),
                 Rows.empty() ? 0 : std::exp(LogSum[I] / Rows.size()));
  std::fprintf(J, "  \"identity_violations\": %d,\n", Violations);
  std::fprintf(J, "  \"programs\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RowOut &R = Rows[I];
    std::fprintf(J, "    {\"name\": \"%s\"", R.Name.c_str());
    for (size_t D = 0; D != Domains.size(); ++D)
      std::fprintf(J, ", \"%s_ms\": %.4f, \"%s_entries\": %zu",
                   std::string(Domains[D]->name()).c_str(), R.Cells[D].Ms,
                   std::string(Domains[D]->name()).c_str(),
                   R.Cells[D].Entries);
    std::fprintf(J, "}%s\n", I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(J, "  ]\n}\n");
  std::fclose(J);
  std::printf("wrote BENCH_domains.json\n");

  return Violations != 0;
}
