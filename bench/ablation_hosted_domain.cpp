//===- bench/ablation_hosted_domain.cpp - Hosted-domain ablation ----------===//
//
// Section 7: "it becomes a design tradeoff between time and precision of
// the analysis" (Debray's complexity/precision tradeoff). This ablation
// runs the Prolog-hosted analyzer with its coarse domain
// (var/g/nv/any) and with the rich domain (types, lists, structs) and
// compares their cost on the concrete WAM, next to the compiled analyzer.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/StringUtil.h"

#include <cstdio>

using namespace awam;
using namespace awam::bench;

namespace {

double timeHosted(const PreparedBenchmark &P, PrologDomain D,
                  double MinTotalMs, uint64_t &Instr) {
  std::string Source = reflectProgram(*P.Parsed, *P.Syms, "main") +
                       std::string(prologAnalyzerSource(D));
  SymbolTable Syms;
  TermArena Arena;
  Result<ParsedProgram> Parsed = parseProgram(Source, Syms, Arena);
  if (!Parsed)
    return -1;
  Result<CompiledProgram> Compiled = compileProgram(*Parsed, Syms);
  if (!Compiled)
    return -1;
  Machine M(*Compiled);
  Parser GoalParser("analyze_main(_)", Syms, Arena);
  Result<const Term *> Goal = GoalParser.readTerm();
  if (!Goal)
    return -1;
  int NumVars = GoalParser.lastTermNumVars();
  double Ms = measureMs(
      [&] {
        TermArena SolArena;
        std::vector<Solution> Sols;
        (void)M.solve(*Goal, NumVars, SolArena, Sols, 1);
      },
      MinTotalMs);
  Instr = M.stepsExecuted();
  return Ms;
}

} // namespace

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 50.0;
  std::printf("Ablation: domain precision vs analysis cost "
              "(Prolog-hosted analyzer)\n\n");

  TextTable T({"Benchmark", "coarse(ms)", "rich(ms)", "rich/coarse",
               "coarse WAM instr", "rich WAM instr", "compiled rich(ms)"});

  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    PreparedBenchmark P = prepare(B);
    uint64_t CoarseInstr = 0, RichInstr = 0;
    double CoarseMs =
        timeHosted(P, PrologDomain::Coarse, MinTotalMs, CoarseInstr);
    double RichMs =
        timeHosted(P, PrologDomain::Rich, MinTotalMs, RichInstr);
    double OursMs = measureMs(
        [&] {
          AnalysisSession A(*P.Compiled);
          (void)A.analyze(B.EntrySpec);
        },
        MinTotalMs);
    T.addRow({std::string(B.Name), formatDouble(CoarseMs, 3),
              formatDouble(RichMs, 3),
              CoarseMs > 0 ? formatDouble(RichMs / CoarseMs, 1) : "-",
              std::to_string(CoarseInstr), std::to_string(RichInstr),
              formatDouble(OursMs, 3)});
  }
  std::fputs(T.str().c_str(), stdout);
  std::printf("\nPrecision costs: the rich domain multiplies the hosted "
              "analyzer's work, while the\ncompiled analyzer delivers the "
              "rich precision at a fraction of either cost —\nthe paper's "
              "Section 7 point that \"more precise dataflow analysis can "
              "be used if\nthe analyzer is more efficient\".\n");
  return 0;
}
