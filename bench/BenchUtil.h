//===- bench/BenchUtil.h - Shared harness helpers ---------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: compiling a
/// benchmark, timing both analyzers with the paper's measurement protocol
/// (averaging repeated runs), and the paper's reference numbers.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_BENCH_BENCHUTIL_H
#define AWAM_BENCH_BENCHUTIL_H

#include "analyzer/Session.h"
#include "baseline/MetaAnalyzer.h"
#include "baseline/PrologHosted.h"
#include "programs/Benchmarks.h"
#include "support/Timer.h"
#include "wam/Machine.h"

#include <cstdio>
#include <memory>
#include <string>

namespace awam::bench {

/// A benchmark compiled and parsed once, ready for repeated analysis runs.
struct PreparedBenchmark {
  const BenchmarkProgram *Program = nullptr;
  std::unique_ptr<SymbolTable> Syms;
  std::unique_ptr<TermArena> Arena;
  std::unique_ptr<ParsedProgram> Parsed;
  std::unique_ptr<CompiledProgram> Compiled;
  double ParseMs = 0;   ///< parse time (one-shot)
  double CompileMs = 0; ///< compile time (the Table 1 "PLM" column role)
};

/// Parses and compiles \p B; aborts the process with a message on failure
/// (bench binaries are tools; ExitOnError-style handling keeps them
/// straight-line).
inline PreparedBenchmark prepare(const BenchmarkProgram &B) {
  PreparedBenchmark Out;
  Out.Program = &B;
  Out.Syms = std::make_unique<SymbolTable>();
  Out.Arena = std::make_unique<TermArena>();

  Timer T;
  Result<ParsedProgram> Parsed =
      parseProgram(B.Source, *Out.Syms, *Out.Arena);
  Out.ParseMs = T.elapsedMs();
  if (!Parsed) {
    std::fprintf(stderr, "%s: parse error: %s\n",
                 std::string(B.Name).c_str(), Parsed.diag().str().c_str());
    std::exit(1);
  }
  Out.Parsed = std::make_unique<ParsedProgram>(Parsed.take());

  T.reset();
  Result<CompiledProgram> Compiled = compileProgram(*Out.Parsed, *Out.Syms);
  Out.CompileMs = T.elapsedMs();
  if (!Compiled) {
    std::fprintf(stderr, "%s: compile error: %s\n",
                 std::string(B.Name).c_str(),
                 Compiled.diag().str().c_str());
    std::exit(1);
  }
  Out.Compiled = std::make_unique<CompiledProgram>(Compiled.take());
  return Out;
}

/// One benchmark's measurements for Table 1.
struct Table1Row {
  std::string Name;
  int Args = 0;
  int Preds = 0;
  /// Prolog-hosted analyzer on the concrete WAM (the faithful Aquarius
  /// stand-in; 0 when not measured).
  double HostedMs = 0;
  double BaselineMs = 0; ///< C++ meta-interpreting analyzer (equal host)
  double CompileMs = 0;  ///< our compiler (PLM column role)
  int CodeSize = 0;      ///< static WAM instructions
  uint64_t Exec = 0;     ///< abstract WAM instructions executed
  double OursMs = 0;     ///< compiled abstract WAM analysis time
  double SpeedUp = 0;         ///< HostedMs / OursMs
  double EqualHostSpeedUp = 0; ///< BaselineMs / OursMs
};

/// Runs the analyzers on \p P with the paper's protocol (averaged over
/// repeated runs, warm-up excluded) and fills a Table1Row. When
/// \p WithHosted is set, also times the Prolog-hosted analyzer (needs a
/// fresh symbol table per run, so it is measured on its own copies).
inline Table1Row measureBenchmark(const PreparedBenchmark &P,
                                  AnalyzerOptions Options = {},
                                  double MinTotalMs = 200.0,
                                  bool WithHosted = true) {
  Table1Row Row;
  Row.Name = std::string(P.Program->Name);
  Row.Args = P.Compiled->NumArgs;
  Row.Preds = P.Compiled->NumPreds;
  Row.CompileMs = P.CompileMs;
  Row.CodeSize = P.Compiled->Module->codeSize();

  std::string_view Spec = P.Program->EntrySpec;

  // Compiled analyzer.
  {
    AnalysisSession A(*P.Compiled, Options);
    Result<AnalysisResult> R = A.analyze(Spec);
    if (!R) {
      std::fprintf(stderr, "%s: analysis error: %s\n", Row.Name.c_str(),
                   R.diag().str().c_str());
      std::exit(1);
    }
    // Exec for one full analysis (all iterations of a fresh run).
    Row.Exec = R->Instructions;
    Row.OursMs = measureMs(
        [&] {
          AnalysisSession A2(*P.Compiled, Options);
          (void)A2.analyze(Spec);
        },
        MinTotalMs);
  }

  // Baseline meta-interpreting analyzer (equal-host ablation), driven
  // through the same session façade as the compiled analyzer.
  Row.BaselineMs = measureMs(
      [&] {
        AnalysisSession B = makeBaselineSession(*P.Parsed, *P.Syms, Options);
        (void)B.analyze(Spec);
      },
      MinTotalMs);

  // Prolog-hosted analyzer running on the concrete WAM (the faithful
  // baseline). The hosted program is compiled once; the timed part is the
  // analysis run, matching how the Aquarius timings excluded preprocessing.
  if (WithHosted) {
    std::string Source =
        reflectProgram(*P.Parsed, *P.Syms, "main") +
        std::string(prologAnalyzerSource());
    SymbolTable HostSyms;
    TermArena HostArena;
    Result<ParsedProgram> HostParsed =
        parseProgram(Source, HostSyms, HostArena);
    Result<CompiledProgram> HostCompiled =
        HostParsed ? compileProgram(*HostParsed, HostSyms)
                   : Result<CompiledProgram>(HostParsed.diag());
    if (HostCompiled) {
      Machine M(*HostCompiled);
      Parser GoalParser("analyze_main(_)", HostSyms, HostArena);
      Result<const Term *> Goal = GoalParser.readTerm();
      int NumVars = GoalParser.lastTermNumVars();
      Row.HostedMs = measureMs(
          [&] {
            TermArena SolArena;
            std::vector<Solution> Sols;
            (void)M.solve(*Goal, NumVars, SolArena, Sols, 1);
          },
          MinTotalMs);
    } else {
      std::fprintf(stderr, "%s: hosted analyzer unavailable: %s\n",
                   Row.Name.c_str(), HostCompiled.diag().str().c_str());
    }
  }

  Row.EqualHostSpeedUp = Row.OursMs > 0 ? Row.BaselineMs / Row.OursMs : 0;
  Row.SpeedUp = Row.OursMs > 0 ? Row.HostedMs / Row.OursMs : 0;
  return Row;
}

/// Paper Table 1 reference values (for side-by-side comparison).
struct PaperTable1Ref {
  std::string_view Name;
  int Args;
  int Preds;
  double AquariusSec;
  double PlmSec;
  int Size;
  int Exec;
  double OursMsec;
  int SpeedUp;
};

inline constexpr PaperTable1Ref PaperTable1[] = {
    {"log10", 3, 2, 2.9, 4.5, 179, 749, 38.6, 75},
    {"ops8", 3, 2, 3.0, 4.5, 180, 400, 23.3, 129},
    {"times10", 3, 2, 3.0, 4.5, 186, 971, 48.4, 62},
    {"divide10", 3, 2, 2.9, 4.6, 186, 1043, 50.7, 57},
    {"tak", 4, 2, 2.3, 1.2, 53, 110, 4.0, 575},
    {"nreverse", 5, 3, 2.2, 1.6, 99, 479, 26.7, 82},
    {"qsort", 7, 3, 3.4, 2.5, 164, 763, 44.0, 77},
    {"query", 7, 5, 4.2, 4.3, 264, 626, 25.8, 163},
    {"zebra", 9, 5, 3.5, 7.5, 271, 1262, 257.9, 14},
    {"serialise", 16, 7, 4.2, 3.6, 205, 912, 53.4, 79},
    {"queens_8", 16, 7, 6.0, 3.1, 117, 324, 16.5, 364},
};

/// Finds the paper row for a benchmark (nullptr if absent).
inline const PaperTable1Ref *paperRow(std::string_view Name) {
  for (const PaperTable1Ref &R : PaperTable1)
    if (R.Name == Name)
      return &R;
  return nullptr;
}

} // namespace awam::bench

#endif // AWAM_BENCH_BENCHUTIL_H
