//===- bench/table1_analysis_time.cpp - Reproduces Table 1 ----------------===//
//
// Regenerates the paper's Table 1 ("The Efficiency of Dataflow
// Analyzers"): for every benchmark, the baseline analysis time, our
// compile time, static WAM code size, abstract instructions executed, the
// compiled analyzer's time, and the speed-up factor, next to the paper's
// reported values.
//
// Baselines (see DESIGN.md, substitution 1):
//  * "Hosted"  — a mode analyzer written in Prolog executing on this
//    project's concrete WAM: the faithful stand-in for the Prolog-hosted
//    Aquarius analyzer the paper compares against. Speed-Up is measured
//    against this column, like the paper's.
//  * "MetaC++" — the same rich analysis as ours but meta-interpreted in
//    C++: an *equal-host* ablation isolating the pure benefit of
//    compiling abstract unification (a comparison the paper could not
//    run; expect a much smaller factor).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/StringUtil.h"

#include <cstdio>

using namespace awam;
using namespace awam::bench;

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 200.0;

  std::printf("Table 1: The Efficiency of Dataflow Analyzers "
              "(reproduction)\n");
  std::printf(
      "Hosted = Prolog-written analyzer on our WAM (Aquarius stand-in; "
      "simpler domain, as\nAquarius's was); MetaC++ = equal-host "
      "meta-interpreter ablation. Speed-Up = Hosted/Ours.\n\n");

  TextTable T({"Benchmark", "Args", "Preds", "Hosted(ms)", "MetaC++(ms)",
               "Compile(ms)", "Size", "Exec", "Ours(ms)", "Speed-Up",
               "EqHost-SU", "PaperSize", "PaperExec", "PaperSU"});

  double SpeedUpSum = 0, EqSum = 0, PaperSpeedUpSum = 0;
  int N = 0;
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    PreparedBenchmark P = prepare(B);
    Table1Row Row = measureBenchmark(P, {}, MinTotalMs);
    const PaperTable1Ref *Ref = paperRow(B.Name);
    T.addRow({Row.Name, std::to_string(Row.Args), std::to_string(Row.Preds),
              formatDouble(Row.HostedMs, 3),
              formatDouble(Row.BaselineMs, 3),
              formatDouble(Row.CompileMs, 3), std::to_string(Row.CodeSize),
              std::to_string(Row.Exec), formatDouble(Row.OursMs, 3),
              formatDouble(Row.SpeedUp, 1),
              formatDouble(Row.EqualHostSpeedUp, 2),
              Ref ? std::to_string(Ref->Size) : "-",
              Ref ? std::to_string(Ref->Exec) : "-",
              Ref ? std::to_string(Ref->SpeedUp) : "-"});
    SpeedUpSum += Row.SpeedUp;
    EqSum += Row.EqualHostSpeedUp;
    if (Ref)
      PaperSpeedUpSum += Ref->SpeedUp;
    ++N;
  }
  T.addSeparator();
  T.addRow({"average", "", "", "", "", "", "", "", "",
            formatDouble(SpeedUpSum / N, 1), formatDouble(EqSum / N, 2), "",
            "", formatDouble(PaperSpeedUpSum / N, 0)});
  std::fputs(T.str().c_str(), stdout);

  std::printf(
      "\nNotes: Args/Preds are argument places and predicate count of the "
      "source program;\nSize is static WAM instructions; Exec is abstract "
      "WAM instructions executed over\nall fixpoint iterations. Paper "
      "columns are from Tan & Lin 1992, Table 1. The\nhosted baseline "
      "analyzes a simpler domain than ours (as Aquarius did), which "
      "is\npart of why speed-up factors fluctuate — the paper makes the "
      "same observation.\n");
  return 0;
}
