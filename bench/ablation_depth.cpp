//===- bench/ablation_depth.cpp - Term-depth restriction ablation ---------===//
//
// Section 3 of the paper trades analysis precision for termination with a
// term-depth restriction (k = 4, as in Taylor's analyzer), and Section 7
// frames the whole system as a time/precision tradeoff. This ablation
// sweeps k and reports analysis time, executed abstract instructions,
// extension-table size and a precision proxy (how many success-pattern
// argument positions stay at the uninformative top element `any`).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/StringUtil.h"

#include <cstdio>

using namespace awam;
using namespace awam::bench;

namespace {

/// Counts argument positions whose success type is `any` (less is more
/// precise) and all argument positions, across the table.
void precisionProxy(const AnalysisResult &R, int &AnyArgs, int &TotalArgs) {
  for (const AnalysisResult::Item &I : R.Items) {
    if (!I.Success)
      continue;
    for (int32_t Root : I.Success->Roots) {
      ++TotalArgs;
      if (I.Success->Nodes[Root].K == PatKind::AnyP)
        ++AnyArgs;
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 50.0;
  std::printf("Ablation A1: term-depth restriction k (paper uses k = 4)\n\n");

  TextTable T({"k", "time(ms, all benchmarks)", "Exec", "ET entries",
               "any-typed args", "total args"});

  for (int K : {1, 2, 3, 4, 6, 8}) {
    AnalyzerOptions Options;
    Options.DepthLimit = K;
    double TotalMs = 0;
    uint64_t TotalExec = 0;
    size_t Entries = 0;
    int AnyArgs = 0, TotalArgs = 0;
    for (const BenchmarkProgram &B : benchmarkPrograms()) {
      PreparedBenchmark P = prepare(B);
      AnalysisSession A(*P.Compiled, Options);
      Result<AnalysisResult> R = A.analyze(B.EntrySpec);
      if (!R) {
        std::fprintf(stderr, "%s (k=%d): %s\n",
                     std::string(B.Name).c_str(), K,
                     R.diag().str().c_str());
        continue;
      }
      TotalExec += R->Instructions;
      Entries += R->Items.size();
      precisionProxy(*R, AnyArgs, TotalArgs);
      TotalMs += measureMs(
          [&] {
            AnalysisSession A2(*P.Compiled, Options);
            (void)A2.analyze(B.EntrySpec);
          },
          MinTotalMs);
    }
    T.addRow({std::to_string(K), formatDouble(TotalMs, 3),
              std::to_string(TotalExec), std::to_string(Entries),
              std::to_string(AnyArgs), std::to_string(TotalArgs)});
  }
  std::fputs(T.str().c_str(), stdout);
  std::printf("\nSmaller k widens terms earlier: faster convergence, "
              "fewer/more-general patterns,\nmore `any`-typed results. "
              "Large k costs time without further precision on this\n"
              "suite — the paper's k = 4 sits at the knee.\n");
  return 0;
}
