//===- bench/ablation_scale.cpp - Cross-module analysis at scale ----------===//
//
// Measures the separate-compilation pipeline end to end on generated
// large programs: library and user units compiled separately, linked
// with linkPrograms, analyzed cold under a persistent store, exported as
// a summary bundle, and re-analyzed warm in a fresh session seeded by
// importSummaries. The corpus ladder runs to >=10k clauses (knob:
// argv[2]); two DCG-shaped grammars add a differently-shaped workload.
//
// Every program analyzes a whole-program driver entry (drive/1 calls
// every predicate), so the analysis cone — and the exported bundle —
// grows with the program, giving a real clauses-vs-ms/MB curve.
//
// Gates, checked before the JSON is written and reflected in the exit
// code:
//   * warm re-analysis is byte-identical to the cold analysis on every
//     program (hard: any divergence fails the bench);
//   * warm re-analysis is strictly faster than cold on all but at most
//     two programs (replay must pay at scale, not just validate).
//
// Output: a human-readable table on stdout and BENCH_scale.json in the
// current directory.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "compiler/ModuleLink.h"
#include "support/StringUtil.h"
#include "tests/RandomProgramGen.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

using namespace awam;
using namespace awam::bench;
using namespace awam::testgen;

namespace {

struct RowOut {
  std::string Name;
  std::string Kind;       ///< "corpus" or "grammar"
  int Clauses = 0;
  size_t Items = 0;       ///< extension-table entries at the fixpoint
  double CompileMs = 0;
  double LinkMs = 0;
  double ColdMs = 0;
  double ImportMs = 0;
  double WarmMs = 0;
  uint64_t StoreBytes = 0;
  uint64_t BundleBytes = 0;
  uint64_t Banked = 0;
  uint64_t Replayed = 0;
  bool Identical = false;
  bool WarmFaster = false;
};

int countClauses(const std::string &Src) {
  int N = 0;
  for (size_t I = 0; I + 1 < Src.size(); ++I)
    if (Src[I] == '.' && Src[I + 1] == '\n')
      ++N;
  return N;
}

/// One program through the whole pipeline. Units holds the separately
/// compiled modules in link order (libraries first); a single unit skips
/// the linker. Returns false on any pipeline error (already reported).
bool runProgram(const std::string &Name, const std::string &Kind,
                int Clauses, const std::vector<std::string> &Sources,
                const std::vector<std::string> &Labels, const std::string &E,
                double MinTotalMs, RowOut &Row) {
  Row.Name = Name;
  Row.Kind = Kind;
  Row.Clauses = Clauses;

  SymbolTable Syms;
  TermArena Arena;
  std::vector<CompiledProgram> Units;
  Timer T;
  for (size_t I = 0; I != Sources.size(); ++I) {
    Result<CompiledProgram> C = compileSource(Sources[I], Syms, Arena);
    if (!C) {
      std::fprintf(stderr, "%s: %s: compile error: %s\n", Name.c_str(),
                   Labels[I].c_str(), C.diag().str().c_str());
      return false;
    }
    Units.push_back(C.take());
  }
  Row.CompileMs = T.elapsedMs();

  CompiledProgram *Prog = &Units.front();
  std::optional<LinkedProgram> Linked;
  if (Units.size() > 1) {
    std::vector<ModuleUnit> In;
    for (size_t I = 0; I != Units.size(); ++I)
      In.push_back({&Units[I], Labels[I]});
    T.reset();
    Result<LinkedProgram> L = linkPrograms(In);
    Row.LinkMs = T.elapsedMs();
    if (!L) {
      std::fprintf(stderr, "%s: link error: %s\n", Name.c_str(),
                   L.diag().str().c_str());
      return false;
    }
    if (!L->UnresolvedImports.empty()) {
      std::fprintf(stderr, "%s: %zu unresolved imports after link\n",
                   Name.c_str(), L->UnresolvedImports.size());
      return false;
    }
    Linked.emplace(L.take());
    Prog = &Linked->Program;
  }

  AnalyzerOptions AO;
  AO.Persistent = true;

  // Cold: fresh persistent session per run; the first run also takes the
  // reference report and exports the bundle the warm runs import.
  std::string Report;
  std::string Bundle;
  {
    int N = 0;
    Timer Budget;
    do {
      AnalysisSession S(*Prog, AO);
      T.reset();
      Result<AnalysisResult> R = S.analyze(E);
      Row.ColdMs += T.elapsedMs();
      ++N;
      if (!R) {
        std::fprintf(stderr, "%s: cold analyze error: %s\n", Name.c_str(),
                     R.diag().str().c_str());
        return false;
      }
      if (Report.empty()) {
        Report = formatAnalysis(*R, Syms);
        Row.Items = R->Items.size();
        Row.StoreBytes = S.store()->bytesUsed();
        Result<std::string> B = S.exportSummaries();
        if (!B) {
          std::fprintf(stderr, "%s: export error: %s\n", Name.c_str(),
                       B.diag().str().c_str());
          return false;
        }
        Bundle = B.take();
        Row.BundleBytes = Bundle.size();
      }
    } while (Budget.elapsedMs() < MinTotalMs);
    Row.ColdMs /= N;
  }

  // Warm: fresh session, import the bundle, re-analyze the same entry.
  {
    int N = 0;
    Timer Budget;
    do {
      AnalysisSession W(*Prog, AO);
      T.reset();
      Result<AnalysisStore::ImportStats> IS = W.importSummaries(Bundle);
      Row.ImportMs += T.elapsedMs();
      if (!IS) {
        std::fprintf(stderr, "%s: import error: %s\n", Name.c_str(),
                     IS.diag().str().c_str());
        return false;
      }
      T.reset();
      Result<AnalysisResult> R = W.analyze(E);
      Row.WarmMs += T.elapsedMs();
      ++N;
      if (!R) {
        std::fprintf(stderr, "%s: warm analyze error: %s\n", Name.c_str(),
                     R.diag().str().c_str());
        return false;
      }
      if (N == 1) {
        Row.Identical = formatAnalysis(*R, Syms) == Report;
        Row.Banked = IS->Banked;
        Row.Replayed = W.store()->stats().ReplayedRuns;
      }
    } while (Budget.elapsedMs() < MinTotalMs);
    Row.ImportMs /= N;
    Row.WarmMs /= N;
  }
  Row.WarmFaster = Row.WarmMs < Row.ColdMs;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 400.0;
  int MaxClauses = argc > 2 ? std::atoi(argv[2]) : 10000;

  std::printf("Ablation A10: cross-module analysis at scale "
              "(separate compilation -> link -> cold analyze -> export -> "
              "import -> warm analyze, drive/1 cone)\n\n");

  // The corpus ladder: eight sizes up to MaxClauses, distinct seeds so
  // no two programs share structure; plus two DCG grammars.
  struct Spec {
    int Clauses;
    uint64_t Seed;
  };
  const Spec Ladder[] = {{MaxClauses / 16, 101}, {MaxClauses / 8, 102},
                         {MaxClauses / 4, 103},  {MaxClauses * 3 / 8, 104},
                         {MaxClauses / 2, 105},  {MaxClauses * 5 / 8, 106},
                         {MaxClauses * 3 / 4, 107}, {MaxClauses, 108}};

  std::vector<RowOut> Rows;
  bool PipelineOk = true;

  for (const Spec &Sp : Ladder) {
    CorpusOptions O;
    O.Clauses = std::max(64, Sp.Clauses);
    Corpus C = generateCorpus(Sp.Seed, O);
    RowOut Row;
    if (!runProgram("corpus" + std::to_string(O.Clauses), "corpus",
                    C.LibraryClauses + C.UserClauses, {C.Library, C.User},
                    {"lib", "user"}, C.Entries.back(), MinTotalMs / 10, Row))
      PipelineOk = false;
    else
      Rows.push_back(Row);
  }
  for (int NT : {std::max(16, MaxClauses / 100), std::max(24, MaxClauses / 50)}) {
    GrammarOptions GO;
    GO.Nonterminals = NT;
    GO.RulesPerNt = 4;
    std::string G = generateGrammar(7, GO);
    std::string Entry =
        "nt" + std::to_string(NT - 1) + "(glist, var)";
    RowOut Row;
    if (!runProgram("grammar" + std::to_string(NT), "grammar",
                    countClauses(G), {G}, {"grammar"}, Entry, MinTotalMs / 10,
                    Row))
      PipelineOk = false;
    else
      Rows.push_back(Row);
  }

  TextTable Tab({"Program", "clauses", "entries", "compile(ms)", "link(ms)",
                 "cold(ms)", "import(ms)", "warm(ms)", "store(KB)",
                 "bundle(KB)", "replayed", "warm<cold"});
  int Identical = 0, Faster = 0;
  for (const RowOut &R : Rows) {
    Identical += R.Identical;
    Faster += R.WarmFaster;
    Tab.addRow({R.Name, std::to_string(R.Clauses), std::to_string(R.Items),
                formatDouble(R.CompileMs, 2), formatDouble(R.LinkMs, 2),
                formatDouble(R.ColdMs, 2), formatDouble(R.ImportMs, 2),
                formatDouble(R.WarmMs, 2),
                std::to_string(R.StoreBytes / 1024),
                std::to_string(R.BundleBytes / 1024),
                std::to_string(R.Replayed) + "/" + std::to_string(R.Banked),
                R.WarmFaster ? "yes" : "NO"});
  }
  std::fputs(Tab.str().c_str(), stdout);

  const int AllowedSlower = 2;
  bool IdentOk = Identical == static_cast<int>(Rows.size());
  bool FasterOk =
      Faster + AllowedSlower >= static_cast<int>(Rows.size());
  std::printf("\nwarm byte-identical to cold on %d/%zu programs; warm "
              "strictly faster on %d/%zu (gate: all identical, at most %d "
              "slower).\n",
              Identical, Rows.size(), Faster, Rows.size(), AllowedSlower);

  FILE *J = std::fopen("BENCH_scale.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_scale.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"bench\": \"ablation_scale\",\n");
  std::fprintf(J, "  \"max_clauses\": %d,\n", MaxClauses);
  std::fprintf(J, "  \"warm_identical\": %d,\n", Identical);
  std::fprintf(J, "  \"warm_faster\": %d,\n", Faster);
  std::fprintf(J, "  \"programs\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RowOut &R = Rows[I];
    std::fprintf(
        J,
        "    {\"name\": \"%s\", \"kind\": \"%s\", \"clauses\": %d, "
        "\"et_entries\": %zu, \"compile_ms\": %.4f, \"link_ms\": %.4f, "
        "\"cold_ms\": %.4f, \"import_ms\": %.4f, \"warm_ms\": %.4f, "
        "\"store_bytes\": %llu, \"bundle_bytes\": %llu, \"banked\": %llu, "
        "\"replayed\": %llu, \"warm_identical\": %s, \"warm_faster\": %s}%s\n",
        R.Name.c_str(), R.Kind.c_str(), R.Clauses, R.Items, R.CompileMs,
        R.LinkMs, R.ColdMs, R.ImportMs, R.WarmMs,
        static_cast<unsigned long long>(R.StoreBytes),
        static_cast<unsigned long long>(R.BundleBytes),
        static_cast<unsigned long long>(R.Banked),
        static_cast<unsigned long long>(R.Replayed),
        R.Identical ? "true" : "false", R.WarmFaster ? "true" : "false",
        I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(J, "  ]\n}\n");
  std::fclose(J);
  std::printf("wrote BENCH_scale.json\n");

  return PipelineOk && IdentOk && FasterOk ? 0 : 1;
}
