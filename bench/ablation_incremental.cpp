//===- bench/ablation_incremental.cpp - Incremental re-analysis ablation --===//
//
// Measures AnalysisSession::reanalyze() against a from-scratch analyze()
// on every Table 1 program after a one-clause edit (a new fact appended
// to main/0 — every benchmark defines it, and through main the edit's
// invalidation cone covers the whole table, making this the *hard* case
// for replay).
//
// The incremental contract is that re-analysis is observationally free:
// the report of reanalyze() is byte-identical to a scratch analyze() of
// the edited program, sequentially and under the parallel driver. The
// bench verifies that before timing and exits nonzero on any divergence
// — the same check the CI incremental gate performs via
// examples/analyze_file --edit.
//
// What replay saves is re-drained work: the "exec acts" column counts
// clause-list explorations that actually ran the abstract machine during
// reanalyze(), vs the scratch run's full activation count; "replay acts"
// were satisfied from the previous run's journal. Steady-state reanalyze
// wall time is measured by chaining reanalyze() calls (each records the
// journal the next one replays from).
//
// Output: a human-readable table on stdout and BENCH_incremental.json in
// the current directory.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/StringUtil.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace awam;
using namespace awam::bench;

namespace {

struct RowOut {
  std::string Name;
  size_t Entries = 0;      ///< edited program's table size
  uint64_t ScratchActs = 0; ///< scratch activations on the edited program
  uint64_t ExecActs = 0;    ///< activations executed during reanalyze
  uint64_t ReplayActs = 0;  ///< activations replayed from the journal
  uint64_t Cone = 0;        ///< invalidation-cone entries (reporting)
  double ScratchMs = 0;
  double ReanalyzeMs = 0;
  double SpeedUp = 0;
};

} // namespace

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 400.0;

  std::printf("Ablation A6: incremental re-analysis (one-clause edit of "
              "main/0 per program)\n\n");

  TextTable T({"Benchmark", "entries", "scratch acts", "exec acts",
               "replay acts", "cone", "scratch(ms)", "reanalyze(ms)",
               "speedup"});

  std::vector<RowOut> Rows;
  int Divergences = 0, StrictlyFewer = 0;

  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    PreparedBenchmark P = prepare(B);

    RowOut Row;
    Row.Name = std::string(B.Name);

    // The edit: one new fact for main/0, compiled against the same symbol
    // table so the diff localizes to main.
    std::string EditedSrc = std::string(B.Source) + "\nmain.\n";
    TermArena EditArena;
    Result<CompiledProgram> EditedR =
        compileSource(EditedSrc, *P.Syms, EditArena);
    if (!EditedR) {
      std::fprintf(stderr, "%s: edited compile error: %s\n",
                   Row.Name.c_str(), EditedR.diag().str().c_str());
      return 1;
    }
    CompiledProgram Edited = EditedR.take();

    // Identity gate first, sequentially and at 4 threads: reanalyze on
    // the edited program must match a scratch session byte-for-byte.
    bool Diverged = false;
    for (int Threads : {1, 4}) {
      AnalyzerOptions O;
      O.Incremental = true;
      O.NumThreads = Threads;

      AnalysisSession Inc(*P.Compiled, O);
      Result<AnalysisResult> R0 = Inc.analyze(B.EntrySpec);
      Result<AnalysisResult> RInc =
          R0 ? Inc.reanalyze(Edited) : std::move(R0);
      AnalysisSession Scratch(Edited, O);
      Result<AnalysisResult> RScr = Scratch.analyze(B.EntrySpec);
      if (!RInc || !RScr) {
        std::fprintf(stderr, "%s: analysis error at %d threads: %s\n",
                     Row.Name.c_str(), Threads,
                     (RInc ? RScr : RInc).diag().str().c_str());
        return 1;
      }
      if (formatAnalysis(*RInc, *P.Syms) != formatAnalysis(*RScr, *P.Syms)) {
        std::fprintf(stderr,
                     "%s: REANALYZE DIVERGENCE vs scratch at %d threads\n",
                     Row.Name.c_str(), Threads);
        Diverged = true;
        continue;
      }
      if (Threads == 1) {
        Row.Entries = RScr->Items.size();
        Row.ScratchActs = RScr->Counters.ActivationRuns;
        const IncrementalScheduler::ReanalyzeStats &RS =
            *Inc.reanalyzeStats();
        Row.ExecActs = RS.ExecutedActivations;
        Row.ReplayActs = RS.ReplayedActivations;
        Row.Cone = RS.ConeEntries;
      }
    }
    if (Diverged) {
      ++Divergences;
      continue;
    }
    if (Row.ExecActs < Row.ScratchActs)
      ++StrictlyFewer;

    // Timing (sequential). Scratch: fresh session per run. Incremental:
    // chained reanalyze() in steady state — each call replays from the
    // journal the previous one recorded.
    AnalyzerOptions O;
    O.Incremental = true;
    Row.ScratchMs = measureMs(
        [&] {
          AnalysisSession S(Edited, O);
          (void)S.analyze(B.EntrySpec);
        },
        MinTotalMs / 2);
    AnalysisSession Inc(*P.Compiled, O);
    (void)Inc.analyze(B.EntrySpec);
    (void)Inc.reanalyze(Edited); // install the edited program
    Row.ReanalyzeMs = measureMs(
        [&] { (void)Inc.reanalyze({PredSig{"main", 0}}); }, MinTotalMs / 2);
    Row.SpeedUp = Row.ReanalyzeMs > 0 ? Row.ScratchMs / Row.ReanalyzeMs : 0;

    T.addRow({Row.Name, std::to_string(Row.Entries),
              std::to_string(Row.ScratchActs), std::to_string(Row.ExecActs),
              std::to_string(Row.ReplayActs), std::to_string(Row.Cone),
              formatDouble(Row.ScratchMs, 3),
              formatDouble(Row.ReanalyzeMs, 3),
              formatDouble(Row.SpeedUp, 2)});
    Rows.push_back(Row);
  }

  std::fputs(T.str().c_str(), stdout);
  std::printf("\nreanalyze byte-identical to scratch on %zu/%zu programs; "
              "strictly fewer executed activations on %d.\n",
              Rows.size(), Rows.size() + Divergences, StrictlyFewer);

  FILE *J = std::fopen("BENCH_incremental.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_incremental.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"bench\": \"ablation_incremental\",\n");
  std::fprintf(J, "  \"edit\": \"append one fact to main/0\",\n");
  std::fprintf(J, "  \"strictly_fewer_exec_acts\": %d,\n", StrictlyFewer);
  std::fprintf(J, "  \"programs\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RowOut &R = Rows[I];
    std::fprintf(
        J,
        "    {\"name\": \"%s\", \"et_entries\": %zu, "
        "\"scratch_activations\": %llu, \"exec_activations\": %llu, "
        "\"replay_activations\": %llu, \"cone_entries\": %llu, "
        "\"scratch_ms\": %.4f, \"reanalyze_ms\": %.4f, "
        "\"speedup\": %.3f}%s\n",
        R.Name.c_str(), R.Entries,
        static_cast<unsigned long long>(R.ScratchActs),
        static_cast<unsigned long long>(R.ExecActs),
        static_cast<unsigned long long>(R.ReplayActs),
        static_cast<unsigned long long>(R.Cone), R.ScratchMs, R.ReanalyzeMs,
        R.SpeedUp, I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(J, "  ]\n}\n");
  std::fclose(J);
  std::printf("wrote BENCH_incremental.json\n");

  return Divergences ? 1 : 0;
}
