//===- bench/fig2_fig3_wam_listing.cpp - Reproduces Figures 2 and 3 -------===//
//
// Figure 2: the WAM code for the head of  p(a, [f(V)|L]) :- ...
// Figure 3: the same code reinterpreted over the abstract domain for the
// calling pattern p(atom, glist), decomposed into the three s_unify steps
// of Section 4.1 with their abstract substitutions.
//
//===----------------------------------------------------------------------===//

#include "absdom/AbsOps.h"
#include "compiler/Disasm.h"
#include "compiler/ProgramCompiler.h"
#include "wam/Store.h"

#include <cstdio>

using namespace awam;

int main() {
  SymbolTable Syms;
  TermArena Arena;

  // The paper's example clause (with a body so V and L are not void).
  Result<CompiledProgram> P = compileSource(
      "p(a, [f(V)|L]) :- q(V, L).\nq(_, _).", Syms, Arena);
  if (!P) {
    std::fprintf(stderr, "compile error: %s\n", P.diag().str().c_str());
    return 1;
  }
  CodeModule &M = *P->Module;

  std::printf("Figure 2: The WAM code instructions for the head of the "
              "clause\n\n");
  int32_t Pid = M.findPredicate(Syms.intern("p"), 2);
  const ClauseInfo &C = M.predicate(Pid).Clauses[0];
  std::fputs(
      disassembleRange(M, C.Entry, C.Entry + C.NumInstr).c_str(), stdout);

  std::printf("\nFigure 3: The WAM code reinterpreted, calling pattern "
              "p(atom, glist)\n\n");

  // Perform the three s_unify steps of Section 4.1 on abstract cells and
  // show each result with its abstract substitution.
  Store St;
  int64_t AtomArg = St.push(Cell::abs(AbsKind::AtomT));
  int64_t GElem = St.push(Cell::abs(AbsKind::Ground));
  int64_t GList1 = St.push(Cell::abs(AbsKind::List, GElem));

  auto show = [&](Cell C) { return St.show(C, Syms); };

  // (1) get_const a, A1:  s_unify(atom, a) = a.
  bool Ok1 = absUnify(St, Cell::ref(AtomArg), Cell::atom(Syms.intern("a")));
  std::printf("  get_const  a, A1    %% (1) s_unify(atom, a) %s -> %s\n",
              Ok1 ? "succeeds" : "fails",
              show(Cell::ref(AtomArg)).c_str());

  // (2.1) get_list A2: glist <- [g1 | glist2].
  int64_t Head = St.pushVar();
  int64_t Tail = St.pushVar();
  int64_t Base = St.push(Cell::ref(Head));
  St.push(Cell::ref(Tail));
  int64_t Cons = St.push(Cell::lis(Base));
  bool Ok21 = absUnify(St, Cell::ref(GList1), Cell::ref(Cons));
  std::printf("  get_list   A2       %% (2.1) s_unify(glist, [.|.]) %s: "
              "glist1 <- %s\n",
              Ok21 ? "succeeds" : "fails", show(Cell::ref(GList1)).c_str());
  std::printf("  unify_var  X3       %%       X3 <- %s   (the car)\n",
              show(Cell::ref(Head)).c_str());
  std::printf("  unify_var  L        %%       L  <- %s   (the cdr)\n",
              show(Cell::ref(Tail)).c_str());

  // (2.2) get_struct f/1, X3: g1 <- f(g2).
  int64_t V = St.pushVar();
  int64_t FunAddr = St.push(Cell::fun(Syms.intern("f"), 1));
  St.push(Cell::ref(V));
  int64_t FStruct = St.push(Cell::str(FunAddr));
  bool Ok22 = absUnify(St, Cell::ref(Head), Cell::ref(FStruct));
  std::printf("  get_struct f/1, X3  %% (2.2) s_unify(g, f(V)) %s: "
              "g1 <- %s\n",
              Ok22 ? "succeeds" : "fails", show(Cell::ref(Head)).c_str());
  std::printf("  unify_var  V        %%       V  <- %s\n",
              show(Cell::ref(V)).c_str());

  std::printf("\nComposed abstract substitution: glist1/%s, L/%s, V/%s\n",
              show(Cell::ref(GList1)).c_str(),
              show(Cell::ref(Tail)).c_str(), show(Cell::ref(V)).c_str());
  std::printf("(paper: glist1/[f(g2)|glist2], L/glist2, V/g2)\n");
  return Ok1 && Ok21 && Ok22 ? 0 : 1;
}
