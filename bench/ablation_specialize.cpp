//===- bench/ablation_specialize.cpp - Specialization payoff ablation -----===//
//
// Ablation A9: what the analyzer-directed specializer buys on the
// concrete machine. For every Table 1 program the bench analyzes the
// entry goal under the modes domain, feeds the facts through
// buildSpecializationFacts into the specializer (compiler/Specializer.h),
// and runs main/0 on both modules.
//
// Gates (the bench exits nonzero on any violation):
//
//  * identical answers: status, solution bindings (several solutions, so
//    redo paths count) and write/1 output must be byte-identical between
//    the original and the specialized module on all 11 programs;
//  * the rewrites must pay: the specialized module must execute strictly
//    fewer dynamic instructions on at least 6 of the 11 programs (the
//    rest may tie — a program whose hot predicates resist every rewrite
//    legitimately runs the same stream).
//
// Output: a table on stdout plus machine-readable BENCH_specialize.json
// (per-program optimized/unoptimized dynamic instruction counts,
// wall-clock, and rewrite counts; written to the current directory).
//
//===----------------------------------------------------------------------===//

#include "analyzer/Specialize.h"
#include "bench/BenchUtil.h"
#include "compiler/Specializer.h"
#include "support/StringUtil.h"
#include "term/TermWriter.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace awam;
using namespace awam::bench;

namespace {

/// Required strict-reduction count (of the 11 Table 1 programs).
constexpr int kMinReduced = 6;
constexpr int kMaxSolutions = 5;

struct RunOutcome {
  RunStatus Status = RunStatus::Error;
  size_t NumSolutions = 0; ///< main/0 binds nothing; the count is the answer
  std::string Output;
  uint64_t Instructions = 0;
  uint64_t FastPathHits = 0;
  double Ms = 0;
};

/// Solves main/0 once for the observable outcome, then re-solves under
/// the measurement protocol for wall-clock.
RunOutcome runMain(const CompiledProgram &Program, const Term *Goal,
                   double MinTotalMs) {
  RunOutcome Out;
  Machine M(Program);
  std::vector<Solution> Sols;
  TermArena SolArena;
  Out.Status = M.solve(Goal, 0, SolArena, Sols, kMaxSolutions);
  Out.Output = M.output();
  Out.Instructions = M.stepsExecuted();
  Out.FastPathHits = M.stats().FastPathHits;
  Out.NumSolutions = Sols.size();
  Out.Ms = measureMs(
      [&] {
        std::vector<Solution> Scratch;
        TermArena ScratchArena;
        (void)M.solve(Goal, 0, ScratchArena, Scratch, kMaxSolutions);
      },
      MinTotalMs);
  return Out;
}

struct RowOut {
  std::string Name;
  RunOutcome Orig, Opt;
  uint64_t Rewrites = 0;
  bool Identical = false;
  bool Reduced = false;
};

} // namespace

int main(int argc, char **argv) {
  double MinTotalMs = argc > 1 ? std::atof(argv[1]) : 400.0;

  std::printf("Ablation A9: analyzer-directed specialization on the "
              "concrete WAM\n\n");

  TextTable T({"Benchmark", "orig instr", "opt instr", "reduction",
               "fast-path", "rewrites", "orig(ms)", "opt(ms)"});
  std::vector<RowOut> Rows;
  int Violations = 0;
  int NumReduced = 0;

  std::span<const BenchmarkProgram> Suite = benchmarkPrograms();
  for (const BenchmarkProgram &B : Suite) {
    PreparedBenchmark P = prepare(B);
    RowOut Row;
    Row.Name = std::string(B.Name);

    AnalysisSession A(*P.Compiled, AnalyzerOptions{});
    Result<AnalysisResult> R = A.analyze(B.EntrySpec);
    if (!R) {
      std::fprintf(stderr, "%s: analysis error: %s\n", Row.Name.c_str(),
                   R.diag().str().c_str());
      return 1;
    }

    SpecializationReport Rep;
    CompiledProgram Opt = specializeProgram(
        *P.Compiled, buildSpecializationFacts(*R, *P.Compiled), Rep);
    Row.Rewrites = Rep.totalRewrites();

    Parser GoalParser("main", *P.Syms, *P.Arena);
    Result<const Term *> Goal = GoalParser.readTerm();
    if (!Goal) {
      std::fprintf(stderr, "%s: goal parse error\n", Row.Name.c_str());
      return 1;
    }

    double PerRun = MinTotalMs / (2.0 * static_cast<double>(Suite.size()));
    Row.Orig = runMain(*P.Compiled, *Goal, PerRun);
    Row.Opt = runMain(Opt, *Goal, PerRun);

    Row.Identical = Row.Orig.Status == Row.Opt.Status &&
                    Row.Orig.NumSolutions == Row.Opt.NumSolutions &&
                    Row.Orig.Output == Row.Opt.Output;
    if (!Row.Identical) {
      std::fprintf(stderr, "%s: ANSWER DIVERGENCE between original and "
                           "specialized code\n",
                   Row.Name.c_str());
      ++Violations;
    }
    if (Row.Orig.Status != RunStatus::Success) {
      std::fprintf(stderr, "%s: main/0 did not succeed on the original "
                           "module\n",
                   Row.Name.c_str());
      ++Violations;
    }
    if (Row.Opt.Instructions > Row.Orig.Instructions) {
      std::fprintf(stderr, "%s: SPECIALIZED CODE EXECUTED MORE "
                           "INSTRUCTIONS (%llu > %llu)\n",
                   Row.Name.c_str(),
                   (unsigned long long)Row.Opt.Instructions,
                   (unsigned long long)Row.Orig.Instructions);
      ++Violations;
    }
    Row.Reduced = Row.Opt.Instructions < Row.Orig.Instructions;
    NumReduced += Row.Reduced;

    double Pct =
        Row.Orig.Instructions
            ? 100.0 *
                  (double)(Row.Orig.Instructions - Row.Opt.Instructions) /
                  (double)Row.Orig.Instructions
            : 0.0;
    T.addRow({Row.Name, std::to_string(Row.Orig.Instructions),
              std::to_string(Row.Opt.Instructions),
              formatDouble(Pct, 1) + "%",
              std::to_string(Row.Opt.FastPathHits),
              std::to_string(Row.Rewrites), formatDouble(Row.Orig.Ms, 3),
              formatDouble(Row.Opt.Ms, 3)});
    Rows.push_back(std::move(Row));
  }

  std::fputs(T.str().c_str(), stdout);
  std::printf("\n%d answer/regression violations; %d/%zu programs with a "
              "strict dynamic-instruction reduction (gate: >= %d).\n",
              Violations, NumReduced, Rows.size(), kMinReduced);
  if (NumReduced < kMinReduced) {
    std::fprintf(stderr, "REDUCTION GATE FAILED: %d/%zu < %d\n", NumReduced,
                 Rows.size(), kMinReduced);
    ++Violations;
  }

  FILE *J = std::fopen("BENCH_specialize.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_specialize.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"bench\": \"ablation_specialize\",\n");
  std::fprintf(J, "  \"violations\": %d,\n", Violations);
  std::fprintf(J, "  \"reduced\": %d,\n", NumReduced);
  std::fprintf(J, "  \"reduction_gate\": %d,\n", kMinReduced);
  std::fprintf(J, "  \"programs\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RowOut &R = Rows[I];
    std::fprintf(J,
                 "    {\"name\": \"%s\", \"orig_instructions\": %llu, "
                 "\"opt_instructions\": %llu, \"fast_path_hits\": %llu, "
                 "\"rewrites\": %llu, \"orig_ms\": %.4f, \"opt_ms\": %.4f, "
                 "\"identical_answers\": %s}%s\n",
                 R.Name.c_str(), (unsigned long long)R.Orig.Instructions,
                 (unsigned long long)R.Opt.Instructions,
                 (unsigned long long)R.Opt.FastPathHits,
                 (unsigned long long)R.Rewrites, R.Orig.Ms, R.Opt.Ms,
                 R.Identical ? "true" : "false",
                 I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(J, "  ]\n}\n");
  std::fclose(J);
  std::printf("wrote BENCH_specialize.json\n");

  return Violations != 0;
}
