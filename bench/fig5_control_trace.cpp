//===- bench/fig5_control_trace.cpp - Reproduces Figure 5 -----------------===//
//
// Figure 5 annotates the WAM code of
//
//     p(X) :- q, r(X).      % clause p.1
//     p(a).                 % clause p.2
//
// with the reinterpreted control scheme: call consults the extension
// table, proceed performs updateET followed by an artificial failure, and
// exhausting the clauses performs lookupET.
//
// This bench disassembles the compiled code (top half of the figure) and
// then runs the abstract machine with its control-trace hook enabled to
// regenerate the annotations (bottom half).
//
//===----------------------------------------------------------------------===//

#include "analyzer/AbstractMachine.h"
#include "analyzer/Analyzer.h"
#include "compiler/Disasm.h"

#include <cstdio>

using namespace awam;

int main() {
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource("p(X) :- q, r(X).\n"
                                            "p(a).\n"
                                            "q.\n"
                                            "r(b).",
                                            Syms, Arena);
  if (!P) {
    std::fprintf(stderr, "compile error: %s\n", P.diag().str().c_str());
    return 1;
  }
  CodeModule &M = *P->Module;

  std::printf("Figure 5: the reinterpretation of the control scheme\n\n");
  std::printf("Compiled code of p/1:\n");
  int32_t Pid = M.findPredicate(Syms.intern("p"), 1);
  std::fputs(disassemblePredicate(M, Pid).c_str(), stdout);

  std::printf("\nAbstract control trace for the call p(any):\n\n");
  std::vector<std::string> Trace;
  ExtensionTable Table;
  AbsMachineOptions Options;
  Options.TraceLog = &Trace;
  AbstractMachine Machine(*P, Table, Options);

  Pattern Entry = makeEntryPattern({PatKind::AnyP});
  int Iteration = 0;
  for (;;) {
    Trace.push_back("---- iteration " + std::to_string(++Iteration) +
                    " ----");
    if (Machine.runIteration(Pid, Entry) != AbsRunStatus::Completed) {
      std::fprintf(stderr, "abstract machine error: %s\n",
                   Machine.errorMessage().c_str());
      return 1;
    }
    if (!Machine.changedSinceLastRun())
      break;
  }
  for (const std::string &Line : Trace)
    std::printf("  %s\n", Line.c_str());

  std::printf("\nFinal extension table:\n");
  for (const ETEntry &E : Table.entries())
    std::printf("  %s %s -> %s\n", M.predicateLabel(E.PredId).c_str(),
                E.Call.str(Syms).c_str(),
                E.Success ? E.Success->str(Syms).c_str() : "(fails)");
  return 0;
}
