//===- bench/fig4_get_list_paths.cpp - Reproduces Figure 4 ----------------===//
//
// Figure 4 outlines the reinterpreted get_list instruction: concrete
// values behave as in the standard WAM; abstract terms approximately
// unifiable with './2 generate a [.|.] instance (ComplexTermInst) and
// proceed in read mode; everything else fails.
//
// This bench drives the *actual* implementation through every input
// class: it analyzes  p([H|T], H, T).  under one calling pattern per
// abstract input and prints which path get_list took (visible in the
// success pattern or the failure).
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "support/StringUtil.h"

#include <cstdio>

using namespace awam;

int main() {
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P =
      compileSource("p([H|T], H, T).", Syms, Arena);
  if (!P) {
    std::fprintf(stderr, "compile error: %s\n", P.diag().str().c_str());
    return 1;
  }

  std::printf("Figure 4: the reinterpreted get_list instruction, decision "
              "per input class\n\n");
  TextTable T({"input A1", "paper's branch", "result p(A1, Car, Cdr)"});

  struct Case {
    const char *Spec;
    const char *Branch;
  } Cases[] = {
      {"p(var, var, var)", "concrete write mode (bind to [.|.])"},
      {"p(any, var, var)", "ComplexTermInst: any <- [any|any]"},
      {"p(nv, var, var)", "ComplexTermInst: nv <- [any|any]"},
      {"p(g, var, var)", "ComplexTermInst: g <- [g|g]"},
      {"p(glist, var, var)", "ComplexTermInst: glist <- [g|glist]"},
      {"p(anylist, var, var)", "ComplexTermInst: list <- [any|anylist]"},
      {"p(atom, var, var)", "fail (no [.|.] instance of atom)"},
      {"p(int, var, var)", "fail (no [.|.] instance of integer)"},
      {"p(const, var, var)", "fail (no [.|.] instance of const)"},
  };

  for (const Case &C : Cases) {
    AnalysisSession A(*P);
    Result<AnalysisResult> R = A.analyze(C.Spec);
    std::string Out = "(error)";
    if (R) {
      Out = "(fails)";
      for (const AnalysisResult::Item &I : R->Items)
        if (I.PredLabel == "p/3" && I.Success)
          Out = I.Success->str(Syms);
    }
    T.addRow({C.Spec, C.Branch, Out});
  }
  std::fputs(T.str().c_str(), stdout);
  return 0;
}
