//===- bench/ablation_server.cpp - Concurrent analysis service ablation ---===//
//
// Drives the multi-tenant AnalysisServer (analyzer/Server.h) with N
// concurrent clients over M modules and gates the service's one hard
// contract: per-client response streams are byte-identical to a
// single-client replay of that client's script alone on a fresh server —
// at every worker count, and across LRU eviction.
//
// Three configurations run the same interleaved workload:
//
//   workers=1            the serialized reference shape
//   workers=4            real concurrency (writer locks, coalescing)
//   workers=4, cap=1     every store over the byte cap — constant
//                        eviction/re-warm churn under the same gate
//
// Each client's script walks its own rotation of the module list:
// load, entry, repeat entry (response-cache hit), most-general entry,
// edit (invalidate + re-answer), entry again. Two client pairs share a
// rotation so identical queries land in flight together and exercise
// the cache-hit/coalescing paths. Gates compare payload (Out) bytes
// only: the message channel says "loaded" vs "reusing warm store"
// depending on which client created a shared slot first, which is
// interleaving-dependent by design.
//
// Reported per configuration: per-request latency p50/p99 (submission
// to callback), warm-hit rate (response-cache hits / queries) and
// coalesce rate. The eviction run additionally gates >= 1 eviction and
// >= 1 re-warm — a cap of one byte that evicts nothing would make the
// identity gate vacuous.
//
// Output: a table on stdout and BENCH_server.json in the current
// directory; argv[1] scales the per-client script rounds (default 2).
// Exits nonzero on any gate failure.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Server.h"
#include "bench/BenchUtil.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

using namespace awam;
using namespace awam::bench;

namespace {

constexpr int kClients = 4;
constexpr size_t kModules = 6;

AnalysisServer::Config serverConfig(int Workers, uint64_t Cap) {
  AnalysisServer::Config C;
  C.Workers = Workers;
  C.MaxStoreBytes = Cap;
  C.LoadSource = [](const std::string &Spec, std::string &Source,
                    std::string &Err) {
    if (Spec.rfind("bench:", 0) == 0) {
      const BenchmarkProgram *B = findBenchmark(Spec.substr(6));
      if (!B) {
        Err = "unknown benchmark '" + Spec.substr(6) + "'\n";
        return false;
      }
      Source = B->Source;
      return true;
    }
    Err = "cannot open " + Spec + "\n";
    return false;
  };
  return C;
}

struct ModuleScriptInfo {
  const BenchmarkProgram *B = nullptr;
  /// name/arity of a defined non-entry predicate: the edit target and the
  /// extra most-general query that forces a warm drain. Derived by
  /// compiling the module once up front (every benchmark's entry spec is
  /// plain `main`, which carries no signature to edit).
  std::string WorkSig;
};

ModuleScriptInfo moduleInfo(const BenchmarkProgram &B) {
  ModuleScriptInfo M;
  M.B = &B;
  PreparedBenchmark P = prepare(B);
  for (int32_t I = 0; I != P.Compiled->Module->numPredicates(); ++I) {
    const PredicateInfo &PI = P.Compiled->Module->predicate(I);
    if (PI.Clauses.empty())
      continue;
    std::string Name(P.Syms->name(PI.Name));
    if (Name == B.EntrySpec)
      continue;
    M.WorkSig = Name + "/" + std::to_string(PI.Arity);
    break;
  }
  return M;
}

/// The deterministic per-client script: \p Rounds passes over the module
/// list starting at rotation \p Offset.
std::vector<std::string>
clientScript(const std::vector<ModuleScriptInfo> &Mods, int Offset,
             int Rounds) {
  std::vector<std::string> Script;
  for (int R = 0; R != Rounds; ++R) {
    for (size_t I = 0; I != Mods.size(); ++I) {
      const ModuleScriptInfo &M =
          Mods[(I + static_cast<size_t>(Offset)) % Mods.size()];
      std::string Entry(M.B->EntrySpec);
      Script.push_back("load bench:" + std::string(M.B->Name));
      Script.push_back("entry " + Entry);
      Script.push_back("entry " + Entry); // repeat: response-cache hit
      if (!M.WorkSig.empty()) {
        Script.push_back("entry " + M.WorkSig); // most-general warm drain
        Script.push_back("edit " + M.WorkSig);
      }
      Script.push_back("entry " + Entry);
    }
  }
  return Script;
}

struct RunOut {
  int Workers = 0;
  uint64_t Cap = 0;
  size_t Requests = 0;
  AnalysisServer::Stats Stats;
  double P50Ms = 0, P99Ms = 0;
  double WarmHitRate = 0, CoalesceRate = 0;
  bool Identical = false;
};

/// Runs the interleaved workload on one server configuration, gating
/// every client's payload stream against \p Want.
RunOut runConfig(int Workers, uint64_t Cap,
                 const std::vector<std::vector<std::string>> &Scripts,
                 const std::vector<std::vector<std::string>> &Want) {
  RunOut R;
  R.Workers = Workers;
  R.Cap = Cap;

  AnalysisServer S(serverConfig(Workers, Cap));
  std::vector<int> Clients(Scripts.size());
  for (size_t I = 0; I != Scripts.size(); ++I)
    Clients[I] = S.openClient();

  std::mutex M;
  std::condition_variable CV;
  size_t Done = 0, Total = 0;
  std::vector<std::vector<std::string>> Got(Scripts.size());
  std::vector<double> LatMs;

  using Clock = std::chrono::steady_clock;
  // Round-robin submission: step k of every client enters the queues
  // before step k+1 of any — the maximally interleaved schedule.
  for (size_t Step = 0;; ++Step) {
    bool Any = false;
    for (size_t I = 0; I != Scripts.size(); ++I) {
      if (Step >= Scripts[I].size())
        continue;
      Any = true;
      ++Total;
      Clock::time_point T0 = Clock::now();
      S.submit(Clients[I], Scripts[I][Step],
               [&, I, T0](const AnalysisServer::Response &Resp) {
                 double Ms = std::chrono::duration<double, std::milli>(
                                 Clock::now() - T0)
                                 .count();
                 std::lock_guard<std::mutex> L(M);
                 Got[I].push_back(Resp.Out);
                 LatMs.push_back(Ms);
                 ++Done;
                 CV.notify_all();
               });
    }
    if (!Any)
      break;
  }
  {
    std::unique_lock<std::mutex> L(M);
    CV.wait(L, [&] { return Done == Total; });
  }
  R.Requests = Total;
  R.Stats = S.stats();

  std::sort(LatMs.begin(), LatMs.end());
  if (!LatMs.empty()) {
    R.P50Ms = LatMs[LatMs.size() / 2];
    R.P99Ms = LatMs[std::min(LatMs.size() - 1,
                             static_cast<size_t>(LatMs.size() * 0.99))];
  }
  if (R.Stats.Queries) {
    R.WarmHitRate = double(R.Stats.CacheHits) / double(R.Stats.Queries);
    R.CoalesceRate = double(R.Stats.Coalesced) / double(R.Stats.Queries);
  }

  R.Identical = true;
  for (size_t I = 0; I != Scripts.size(); ++I) {
    if (Got[I].size() != Want[I].size()) {
      R.Identical = false;
      break;
    }
    for (size_t J = 0; J != Got[I].size(); ++J)
      if (Got[I][J] != Want[I][J]) {
        std::fprintf(stderr,
                     "DIVERGENCE (workers=%d cap=%llu): client %zu line "
                     "%zu ('%s') differs from single-client replay\n",
                     Workers, static_cast<unsigned long long>(Cap), I, J,
                     Scripts[I][J].c_str());
        R.Identical = false;
      }
  }
  return R;
}

} // namespace

int main(int argc, char **argv) {
  int Rounds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 2;

  std::vector<ModuleScriptInfo> Mods;
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    Mods.push_back(moduleInfo(B));
    if (Mods.size() == kModules)
      break;
  }

  std::printf("Ablation A8: concurrent multi-tenant analysis service "
              "(%d clients x %zu modules, %d round%s)\n\n",
              kClients, Mods.size(), Rounds, Rounds == 1 ? "" : "s");

  // Client pairs (0,1) and (2,3) share a rotation, so identical queries
  // land in flight together.
  std::vector<std::vector<std::string>> Scripts;
  for (int I = 0; I != kClients; ++I)
    Scripts.push_back(clientScript(Mods, I / 2, Rounds));

  // The reference: each client's script alone on a fresh single-worker
  // server. This is the transcript the concurrent runs must reproduce.
  std::vector<std::vector<std::string>> Want;
  for (const std::vector<std::string> &Script : Scripts) {
    AnalysisServer Ref(serverConfig(1, 0));
    int C = Ref.openClient();
    std::vector<std::string> Outs;
    for (const std::string &Line : Script)
      Outs.push_back(Ref.execute(C, Line).Out);
    Want.push_back(std::move(Outs));
  }

  std::vector<RunOut> Runs;
  Runs.push_back(runConfig(1, 0, Scripts, Want));
  Runs.push_back(runConfig(4, 0, Scripts, Want));
  Runs.push_back(runConfig(4, 1, Scripts, Want)); // eviction churn

  TextTable T({"workers", "cap(B)", "requests", "drains", "warm-hit",
               "coalesced", "evictions", "rewarms", "p50(ms)", "p99(ms)",
               "identical"});
  bool GateFailed = false;
  for (const RunOut &R : Runs) {
    T.addRow({std::to_string(R.Workers), std::to_string(R.Cap),
              std::to_string(R.Requests),
              std::to_string(R.Stats.Drains),
              formatDouble(R.WarmHitRate, 3),
              formatDouble(R.CoalesceRate, 3),
              std::to_string(R.Stats.Evictions),
              std::to_string(R.Stats.Rewarms), formatDouble(R.P50Ms, 3),
              formatDouble(R.P99Ms, 3), R.Identical ? "yes" : "NO"});
    if (!R.Identical)
      GateFailed = true;
  }
  std::fputs(T.str().c_str(), stdout);

  const RunOut &Evict = Runs.back();
  if (Evict.Stats.Evictions == 0 || Evict.Stats.Rewarms == 0) {
    std::fprintf(stderr, "eviction gate: cap=1 run evicted %llu / "
                         "re-warmed %llu stores (expected >= 1 each)\n",
                 static_cast<unsigned long long>(Evict.Stats.Evictions),
                 static_cast<unsigned long long>(Evict.Stats.Rewarms));
    GateFailed = true;
  }
  std::printf("\nper-client streams byte-identical to single-client replay "
              "in %zu/%zu configurations; eviction run: %llu evictions, "
              "%llu rewarms.\n",
              Runs.size() - std::count_if(Runs.begin(), Runs.end(),
                                          [](const RunOut &R) {
                                            return !R.Identical;
                                          }),
              Runs.size(),
              static_cast<unsigned long long>(Evict.Stats.Evictions),
              static_cast<unsigned long long>(Evict.Stats.Rewarms));

  FILE *J = std::fopen("BENCH_server.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_server.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"bench\": \"ablation_server\",\n");
  std::fprintf(J, "  \"clients\": %d,\n  \"modules\": %zu,\n", kClients,
               Mods.size());
  std::fprintf(J, "  \"rounds\": %d,\n  \"configs\": [\n", Rounds);
  for (size_t I = 0; I != Runs.size(); ++I) {
    const RunOut &R = Runs[I];
    std::fprintf(
        J,
        "    {\"workers\": %d, \"max_store_bytes\": %llu, "
        "\"requests\": %zu, \"queries\": %llu, \"drains\": %llu, "
        "\"cache_hits\": %llu, \"coalesced\": %llu, "
        "\"warm_hit_rate\": %.4f, \"coalesce_rate\": %.4f, "
        "\"evictions\": %llu, \"evicted_bytes\": %llu, \"rewarms\": %llu, "
        "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"identical\": %s}%s\n",
        R.Workers, static_cast<unsigned long long>(R.Cap), R.Requests,
        static_cast<unsigned long long>(R.Stats.Queries),
        static_cast<unsigned long long>(R.Stats.Drains),
        static_cast<unsigned long long>(R.Stats.CacheHits),
        static_cast<unsigned long long>(R.Stats.Coalesced), R.WarmHitRate,
        R.CoalesceRate, static_cast<unsigned long long>(R.Stats.Evictions),
        static_cast<unsigned long long>(R.Stats.EvictedBytes),
        static_cast<unsigned long long>(R.Stats.Rewarms), R.P50Ms, R.P99Ms,
        R.Identical ? "true" : "false", I + 1 == Runs.size() ? "" : ",");
  }
  std::fprintf(J, "  ],\n  \"gates_passed\": %s\n}\n",
               GateFailed ? "false" : "true");
  std::fclose(J);
  std::printf("wrote BENCH_server.json\n");

  return GateFailed ? 1 : 0;
}
