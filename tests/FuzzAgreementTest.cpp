//===- tests/FuzzAgreementTest.cpp - Randomized analyzer agreement --------===//
//
// Generates random programs (seeded, reproducible) and checks that the
// compiled abstract WAM and the meta-interpreting baseline compute
// identical extension tables on each. Analysis always terminates (finite
// domain), so arbitrary program shapes are safe — including ones no
// hand-written test would think of.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "baseline/MetaAnalyzer.h"
#include "RandomProgramGen.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace awam;
using awam::testgen::generateProgram;

namespace {

class FuzzAgreementTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzAgreementTest, CompiledAndBaselineAgree) {
  std::string Source = generateProgram(GetParam());
  SCOPED_TRACE(Source);

  SymbolTable Syms;
  TermArena Arena;
  Result<ParsedProgram> Parsed = parseProgram(Source, Syms, Arena);
  ASSERT_TRUE(Parsed) << Parsed.diag().str();
  Result<CompiledProgram> Compiled = compileProgram(*Parsed, Syms);
  ASSERT_TRUE(Compiled) << Compiled.diag().str();

  // Analyze every predicate with all-any entry patterns for maximal
  // coverage of the generated code.
  for (const ParsedClause &C : Parsed->Clauses) {
    std::string Name(Syms.name(C.Head->functor()));
    if (Name.starts_with("$"))
      continue; // desugaring artifacts analyzed transitively
    int Arity = C.Head->isStruct() ? C.Head->arity() : 0;
    Pattern Entry = makeEntryPattern(
        std::vector<PatKind>(Arity, PatKind::AnyP));

    AnalysisSession A(*Compiled);
    Result<AnalysisResult> RC = A.analyze(Name, Entry);
    ASSERT_TRUE(RC) << Name << ": " << RC.diag().str();

    AnalysisSession B = makeBaselineSession(*Parsed, Syms);
    Result<AnalysisResult> RB = B.analyze(Name, Entry);
    ASSERT_TRUE(RB) << Name << ": " << RB.diag().str();

    auto summarize = [&](const AnalysisResult &R) {
      std::vector<std::string> Lines;
      for (const AnalysisResult::Item &I : R.Items)
        Lines.push_back(I.PredLabel + " " + I.Call.str(Syms) + " -> " +
                        (I.Success ? I.Success->str(Syms) : "(fails)"));
      std::sort(Lines.begin(), Lines.end());
      return Lines;
    };
    EXPECT_EQ(summarize(*RC), summarize(*RB)) << "entry " << Name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzAgreementTest,
                         ::testing::Range(0u, 60u));

} // namespace
