//===- tests/SoundnessTest.cpp - Concrete-vs-abstract soundness -----------===//
//
// The analysis is a *success-pattern* analysis: for any concrete call
// within gamma(calling pattern), the abstraction of every concrete
// solution must be below (patternLeq) the analyzer's summarized success
// pattern. This parameterized property test runs goals concretely,
// abstracts each solution and checks containment.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "wam/Machine.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

/// One soundness scenario: a program, a concrete goal whose arguments lie
/// in gamma(entry spec), and the entry spec used for analysis.
struct Scenario {
  const char *Name;
  const char *Program;
  const char *ConcreteGoal;
  const char *EntrySpec;
  int MaxSolutions;
};

constexpr const char *AppendSrc =
    "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).";

const Scenario Scenarios[] = {
    {"append_forward", AppendSrc, "app([1,2], [3,4], R)",
     "app(glist, glist, var)", 5},
    {"append_backward", AppendSrc, "app(A, B, [1,2,3])",
     "app(var, var, glist)", 10},
    {"append_atoms", AppendSrc, "app([a], [b], R)",
     "app(atomlist, atomlist, var)", 5},
    {"nrev",
     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
     "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).",
     "nrev([1,2,3], R)", "nrev(glist, var)", 2},
    {"member",
     "member(X, [X|_]). member(X, [_|T]) :- member(X, T).",
     "member(X, [1,a,f(b)])", "member(var, glist)", 10},
    {"fact",
     "fact(0, 1).\n"
     "fact(N, F) :- N > 0, N1 is N - 1, fact(N1, F1), F is N * F1.",
     "fact(6, F)", "fact(int, var)", 2},
    {"deriv",
     "d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).\n"
     "d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).\n"
     "d(X, X, 1) :- !.\n"
     "d(_, _, 0).",
     "d(x * x + x, x, E)", "d(g, atom, var)", 2},
    {"partition",
     "partition([], _, [], []).\n"
     "partition([X|L], Y, [X|L1], L2) :- X =< Y, !, "
     "partition(L, Y, L1, L2).\n"
     "partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).",
     "partition([3,1,4,1,5], 3, Lo, Hi)",
     "partition(glist, int, var, var)", 3},
    {"typecase",
     "classify(X, atom) :- atom(X).\n"
     "classify(X, int) :- integer(X).\n"
     "classify(f(_), str).",
     "classify(hello, K)", "classify(any, var)", 5},
    {"alias", "alias(X, X).", "alias(A, B)", "alias(var, var)", 2},
    // Deepened builtin transfers, pinned against the concrete machine:
    // every concrete solution must stay below the sharpened summaries.
    {"univ_decompose", "explode(T, L) :- T =.. L.",
     "explode(f(1, g(a)), L)", "explode(g, var)", 2},
    {"univ_construct", "implode(L, T) :- T =.. L.",
     "implode([f, 1, X], T)", "implode(any, var)", 2},
    {"functor_construct", "mk(N, A, T) :- functor(T, N, A).",
     "mk(foo, 2, T)", "mk(atom, int, var)", 2},
    {"arg_walk", "second(T, X) :- arg(2, T, X).",
     "second(f(a, b), X)", "second(g, var)", 2},
    {"guard_chain",
     "step(X, Y) :- X > 0, Y is X - 1.\n"
     "chain(R) :- step(2, A), step(A, R).",
     "chain(R)", "chain(var)", 2},
};

class SoundnessTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(SoundnessTest, ConcreteSolutionsContainedInSuccessPattern) {
  const Scenario &S = GetParam();
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> Program =
      compileSource(S.Program, Syms, Arena);
  ASSERT_TRUE(Program) << Program.diag().str();

  // Analyze.
  AnalysisSession A(*Program);
  Result<AnalysisResult> R = A.analyze(S.EntrySpec);
  ASSERT_TRUE(R) << R.diag().str();
  Result<std::pair<std::string, Pattern>> Spec =
      parseEntrySpec(S.EntrySpec);
  ASSERT_TRUE(Spec);
  // Entry patterns are canonical by construction; find by equality.
  const Pattern *Success = nullptr;
  for (const AnalysisResult::Item &I : R->Items)
    if (I.Call == Spec->second && I.Success)
      Success = &*I.Success;
  ASSERT_NE(Success, nullptr)
      << "analysis reported failure for " << S.EntrySpec;

  // Run concretely and abstract each solution.
  Machine M(*Program);
  Parser GoalParser(S.ConcreteGoal, Syms, Arena);
  Result<const Term *> Goal = GoalParser.readTerm();
  ASSERT_TRUE(Goal);
  int NumVars = GoalParser.lastTermNumVars();
  std::vector<Solution> Solutions;
  TermArena SolutionArena;
  RunStatus Status =
      M.solve(*Goal, NumVars, SolutionArena, Solutions, S.MaxSolutions);
  ASSERT_EQ(Status, RunStatus::Success) << M.errorMessage();

  for (const Solution &Sol : Solutions) {
    // Rebuild the goal arguments with this solution's bindings
    // substituted, then abstract them.
    Store St;
    std::unordered_map<int, int64_t> VarAddrs;
    std::vector<Cell> Args;
    for (const Term *Arg : (*Goal)->args())
      Args.push_back(Cell::ref(St.buildTerm(Arg, VarAddrs)));
    // One shared map: aliased solution variables (same var id) must
    // rebuild as the same cell.
    std::unordered_map<int, int64_t> Fresh;
    for (auto [VarId, Addr] : VarAddrs) {
      if (!Sol.Bindings[VarId])
        continue;
      int64_t BoundAddr = St.buildTerm(Sol.Bindings[VarId], Fresh);
      St.bind(Addr, Cell::ref(BoundAddr));
    }
    Pattern Abstracted = canonicalize(St, Args);
    EXPECT_TRUE(patternLeq(Abstracted, *Success))
        << S.Name << ": solution " << Abstracted.str(Syms)
        << " not below success " << Success->str(Syms);
  }
}

std::string scenarioName(const ::testing::TestParamInfo<Scenario> &Info) {
  return Info.param.Name;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, SoundnessTest,
                         ::testing::ValuesIn(Scenarios), scenarioName);

} // namespace
