//===- tests/LatticePropertyTest.cpp - Algebraic laws of the domain -------===//
//
// Property sweeps over a generator of sample abstract values: the lub is
// commutative, idempotent, an upper bound, and monotone; the meet
// (absUnify) is below both operands and commutative up to canonical form;
// patternLeq is a partial order. These are the laws the analysis's
// soundness and termination arguments rest on.
//
//===----------------------------------------------------------------------===//

#include "absdom/AbsOps.h"
#include "analyzer/Domain.h"
#include "analyzer/PatternInterner.h"
#include "analyzer/Pattern.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

/// Builds the I-th sample value in \p St; the generator covers every cell
/// kind: simple abstract types, constants, lists (nil / cons / alpha-list)
/// and structures, with nesting.
Cell sampleValue(Store &St, SymbolTable &Syms, int I) {
  auto abs = [&](AbsKind K) { return Cell::ref(St.push(Cell::abs(K))); };
  auto atomc = [&](std::string_view N) {
    return Cell::ref(St.push(Cell::atom(Syms.intern(N))));
  };
  auto intc = [&](int64_t V) {
    return Cell::ref(St.push(Cell::integer(V)));
  };
  auto list = [&](AbsKind K) {
    int64_t E = St.push(Cell::abs(K));
    return Cell::ref(St.push(Cell::abs(AbsKind::List, E)));
  };
  auto cons = [&](Cell H, Cell T) {
    int64_t B = St.push(H);
    St.push(T);
    return Cell::ref(St.push(Cell::lis(B)));
  };
  auto strc = [&](std::string_view F, std::vector<Cell> Args) {
    int64_t FunAddr =
        St.push(Cell::fun(Syms.intern(F), static_cast<int>(Args.size())));
    for (Cell A : Args)
      St.push(A);
    return Cell::ref(St.push(Cell::str(FunAddr)));
  };
  switch (I) {
  case 0: return abs(AbsKind::Any);
  case 1: return abs(AbsKind::NV);
  case 2: return abs(AbsKind::Ground);
  case 3: return abs(AbsKind::Const);
  case 4: return abs(AbsKind::AtomT);
  case 5: return abs(AbsKind::IntT);
  case 6: return Cell::ref(St.pushVar());
  case 7: return atomc("a");
  case 8: return atomc("b");
  case 9: return intc(1);
  case 10: return atomc("[]");
  case 11: return list(AbsKind::Ground);
  case 12: return list(AbsKind::Any);
  case 13: return list(AbsKind::AtomT);
  case 14: return cons(atomc("a"), atomc("[]"));
  case 15: return cons(intc(1), list(AbsKind::IntT));
  case 16: return cons(abs(AbsKind::Ground), Cell::ref(St.pushVar()));
  case 17: return strc("f", {abs(AbsKind::Ground)});
  case 18: return strc("f", {Cell::ref(St.pushVar())});
  case 19: return strc("g", {atomc("a"), intc(2)});
  case 20: return strc("f", {strc("f", {abs(AbsKind::Any)})});
  case 21: return cons(strc("f", {abs(AbsKind::Ground)}), atomc("[]"));
  default: return abs(AbsKind::Any);
  }
}

constexpr int kNumSamples = 22;

/// Abstracts a single value to a canonical one-argument pattern.
Pattern patternOf(Store &St, Cell C) { return canonicalize(St, {C}); }

class LatticePairTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LatticePairTest, LubIsUpperBoundAndCommutative) {
  auto [I, J] = GetParam();
  SymbolTable Syms;
  Store St;
  Cell A = sampleValue(St, Syms, I);
  Cell B = sampleValue(St, Syms, J);
  Pattern PA = patternOf(St, A);
  Pattern PB = patternOf(St, B);

  Pattern LAB = lubPatterns(PA, PB);
  Pattern LBA = lubPatterns(PB, PA);
  EXPECT_EQ(LAB, LBA) << PA.str(Syms) << " vs " << PB.str(Syms);
  EXPECT_TRUE(patternLeq(PA, LAB))
      << PA.str(Syms) << " not <= " << LAB.str(Syms);
  EXPECT_TRUE(patternLeq(PB, LAB))
      << PB.str(Syms) << " not <= " << LAB.str(Syms);
}

TEST_P(LatticePairTest, LubIdempotentOnEachSide) {
  auto [I, J] = GetParam();
  SymbolTable Syms;
  Store St;
  Pattern PA = patternOf(St, sampleValue(St, Syms, I));
  Pattern PB = patternOf(St, sampleValue(St, Syms, J));
  EXPECT_EQ(lubPatterns(PA, PA), PA) << PA.str(Syms);
  Pattern L = lubPatterns(PA, PB);
  // lub(lub(a,b), b) == lub(a,b).
  EXPECT_EQ(lubPatterns(L, PB), L)
      << PA.str(Syms) << " vs " << PB.str(Syms);
}

/// True if the pattern claims var-ness anywhere. Types containing var are
/// not closed under instantiation, so s_unify (set unification, paper
/// Section 4.1) is *not* below them: s_unify(f(g), f(var)) = f(g), and
/// f(g) is not a subset of f(var). The containment law below therefore
/// only applies to var-free operands.
bool hasVarClaim(const Pattern &P) {
  for (const PatNode &N : P.Nodes)
    if (N.K == PatKind::VarP)
      return true;
  return false;
}

TEST_P(LatticePairTest, SetUnifyIsBelowVarFreeOperands) {
  auto [I, J] = GetParam();
  SymbolTable Syms;
  Store St;
  Cell A = sampleValue(St, Syms, I);
  Cell B = sampleValue(St, Syms, J);
  Pattern PA = patternOf(St, A);
  Pattern PB = patternOf(St, B);

  int64_t Mark = St.trailMark();
  bool Ok = absUnify(St, A, B);
  if (!Ok) {
    St.unwind(Mark);
    return; // empty meet: nothing to check
  }
  Pattern PM = patternOf(St, A);
  if (!hasVarClaim(PA))
    EXPECT_TRUE(patternLeq(PM, PA))
        << "meet " << PM.str(Syms) << " not <= " << PA.str(Syms);
  if (!hasVarClaim(PB))
    EXPECT_TRUE(patternLeq(PM, PB))
        << "meet " << PM.str(Syms) << " not <= " << PB.str(Syms);
  // Both sides denote the same value after a successful meet.
  EXPECT_EQ(patternOf(St, A), patternOf(St, B));
  St.unwind(Mark);
}

TEST_P(LatticePairTest, MeetCommutesUpToCanonicalForm) {
  auto [I, J] = GetParam();
  SymbolTable Syms;
  Store St1, St2;
  Cell A1 = sampleValue(St1, Syms, I);
  Cell B1 = sampleValue(St1, Syms, J);
  Cell A2 = sampleValue(St2, Syms, I);
  Cell B2 = sampleValue(St2, Syms, J);
  bool Ok1 = absUnify(St1, A1, B1);
  bool Ok2 = absUnify(St2, B2, A2);
  EXPECT_EQ(Ok1, Ok2);
  if (Ok1 && Ok2)
    EXPECT_EQ(patternOf(St1, A1), patternOf(St2, A2));
}

TEST_P(LatticePairTest, LeqAgreesWithLub) {
  auto [I, J] = GetParam();
  SymbolTable Syms;
  Store St;
  Pattern PA = patternOf(St, sampleValue(St, Syms, I));
  Pattern PB = patternOf(St, sampleValue(St, Syms, J));
  // Antisymmetry: mutual leq implies equality.
  if (patternLeq(PA, PB) && patternLeq(PB, PA))
    EXPECT_EQ(PA, PB) << PA.str(Syms) << " vs " << PB.str(Syms);
}

std::vector<std::pair<int, int>> allPairs() {
  std::vector<std::pair<int, int>> Out;
  for (int I = 0; I != kNumSamples; ++I)
    for (int J = I; J != kNumSamples; ++J)
      Out.emplace_back(I, J);
  return Out;
}

std::string pairName(
    const ::testing::TestParamInfo<std::pair<int, int>> &Info) {
  return std::to_string(Info.param.first) + "_" +
         std::to_string(Info.param.second);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, LatticePairTest,
                         ::testing::ValuesIn(allPairs()), pairName);

// Associativity spot-checks over triples (a full cube would be 10k cases;
// a structured sample suffices).
class LatticeTripleTest : public ::testing::TestWithParam<int> {};

TEST_P(LatticeTripleTest, LubAssociativeOnSampledTriples) {
  int Seed = GetParam();
  int I = Seed % kNumSamples;
  int J = (Seed / kNumSamples) % kNumSamples;
  int K = (Seed * 7 + 3) % kNumSamples;
  SymbolTable Syms;
  Store St;
  Pattern PA = patternOf(St, sampleValue(St, Syms, I));
  Pattern PB = patternOf(St, sampleValue(St, Syms, J));
  Pattern PC = patternOf(St, sampleValue(St, Syms, K));
  Pattern L1 = lubPatterns(lubPatterns(PA, PB), PC);
  Pattern L2 = lubPatterns(PA, lubPatterns(PB, PC));
  EXPECT_EQ(L1, L2) << PA.str(Syms) << ", " << PB.str(Syms) << ", "
                    << PC.str(Syms);
}

INSTANTIATE_TEST_SUITE_P(SampledTriples, LatticeTripleTest,
                         ::testing::Range(0, 120));

//===--------------------------------------------------------------------===//
// Domain-parametric lattice laws: every registered domain must satisfy the
// join-semilattice laws *through its own lubInto*, exercised exactly the
// way the engine does — over an interner constructed for that domain.
// Samples come from Domain::samplePatterns and are interned via plain
// intern() (internNormalized routes through normalizeEntry, which for
// non-default domains deliberately erases success-only payload such as the
// Pos truth table).
//===--------------------------------------------------------------------===//

/// One interner over one domain's samples, shared by all law checks of a
/// single test body.
struct DomainFixture {
  SymbolTable Syms;
  PatternInterner Interner;
  std::vector<PatternId> Ids;

  explicit DomainFixture(const Domain &D)
      : Interner(kDefaultDepthLimit, &D) {
    std::vector<Pattern> Samples;
    D.samplePatterns(Samples, Syms);
    for (const Pattern &P : Samples) {
      PatternId Id = Interner.intern(PatternRef(P));
      // Dedup: hand-built generators may repeat a value; laws over ids
      // don't care, but distinct ids keep the quadratic sweeps small.
      bool Seen = false;
      for (PatternId E : Ids)
        Seen = Seen || E == Id;
      if (!Seen)
        Ids.push_back(Id);
    }
    EXPECT_GE(Ids.size(), 4u) << D.name() << " generator too small";
  }
};

class DomainLatticeTest
    : public ::testing::TestWithParam<const Domain *> {};

TEST_P(DomainLatticeTest, SamplesAreCanonical) {
  const Domain &D = *GetParam();
  DomainFixture F(D);
  // intern() must be stable: lub(a, a) == a requires every sample to
  // already be in the domain's canonical encoding.
  for (PatternId A : F.Ids)
    EXPECT_EQ(F.Interner.lub(A, A), A)
        << D.name() << ": " << D.formatPattern(
               Pattern(F.Interner.pattern(A)), F.Syms);
}

TEST_P(DomainLatticeTest, LeqIsAPartialOrder) {
  const Domain &D = *GetParam();
  DomainFixture F(D);
  for (PatternId A : F.Ids) {
    EXPECT_TRUE(F.Interner.leq(A, A)) << D.name();
    for (PatternId B : F.Ids) {
      if (F.Interner.leq(A, B) && F.Interner.leq(B, A))
        EXPECT_EQ(A, B) << D.name() << ": antisymmetry";
      for (PatternId C : F.Ids)
        if (F.Interner.leq(A, B) && F.Interner.leq(B, C))
          EXPECT_TRUE(F.Interner.leq(A, C)) << D.name() << ": transitivity";
    }
  }
}

TEST_P(DomainLatticeTest, LubIsACommutativeIdempotentUpperBound) {
  const Domain &D = *GetParam();
  DomainFixture F(D);
  for (PatternId A : F.Ids)
    for (PatternId B : F.Ids) {
      PatternId L = F.Interner.lub(A, B);
      EXPECT_EQ(L, F.Interner.lub(B, A)) << D.name() << ": commutativity";
      EXPECT_TRUE(F.Interner.leq(A, L)) << D.name() << ": upper bound";
      EXPECT_TRUE(F.Interner.leq(B, L)) << D.name() << ": upper bound";
      EXPECT_EQ(F.Interner.lub(L, B), L) << D.name() << ": absorption";
    }
}

TEST_P(DomainLatticeTest, LubIsAssociative) {
  const Domain &D = *GetParam();
  DomainFixture F(D);
  // Full cubes are fine here: the generators stay around 50 samples.
  for (PatternId A : F.Ids)
    for (PatternId B : F.Ids)
      for (PatternId C : F.Ids)
        EXPECT_EQ(F.Interner.lub(F.Interner.lub(A, B), C),
                  F.Interner.lub(A, F.Interner.lub(B, C)))
            << D.name() << ": associativity";
}

TEST_P(DomainLatticeTest, LubIsMonotone) {
  const Domain &D = *GetParam();
  DomainFixture F(D);
  // leq(a, b) implies leq(lub(a, c), lub(b, c)) — the transfer-monotony
  // shape the fixpoint's termination argument needs from the join.
  for (PatternId A : F.Ids)
    for (PatternId B : F.Ids) {
      if (!F.Interner.leq(A, B))
        continue;
      for (PatternId C : F.Ids)
        EXPECT_TRUE(
            F.Interner.leq(F.Interner.lub(A, C), F.Interner.lub(B, C)))
            << D.name() << ": monotone join";
    }
}

std::string domainName(
    const ::testing::TestParamInfo<const Domain *> &Info) {
  return std::string(Info.param->name());
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainLatticeTest,
                         ::testing::ValuesIn(registeredDomains()),
                         domainName);

} // namespace
