//===- tests/PreludeTest.cpp - Standard-library predicate tests -----------===//
//
// Concrete semantics of every prelude predicate, plus analyzability of
// representative ones.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "programs/Prelude.h"
#include "term/TermWriter.h"
#include "wam/Machine.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

class PreludeTest : public ::testing::Test {
protected:
  void SetUp() override {
    std::string Source(preludeSource());
    Result<CompiledProgram> P = compileSource(Source, Syms, Arena);
    ASSERT_TRUE(P) << P.diag().str();
    Program = std::make_unique<CompiledProgram>(P.take());
    M = std::make_unique<Machine>(*Program);
  }

  std::vector<std::string> all(std::string_view GoalText, int Max = 100) {
    Parser GP(GoalText, Syms, Arena);
    Result<const Term *> G = GP.readTerm();
    EXPECT_TRUE(G) << G.diag().str();
    std::vector<Solution> Sols;
    TermArena SolArena;
    RunStatus Status =
        M->solve(*G, GP.lastTermNumVars(), SolArena, Sols, Max);
    EXPECT_NE(Status, RunStatus::Error) << M->errorMessage();
    std::vector<std::string> Out;
    for (const Solution &S : Sols) {
      std::string Line;
      for (const Term *B : S.Bindings)
        if (B)
          Line += (Line.empty() ? "" : ", ") + writeTerm(B, Syms);
      Out.push_back(Line.empty() ? "yes" : Line);
    }
    return Out;
  }

  std::string first(std::string_view Goal) {
    auto Sols = all(Goal, 1);
    return Sols.empty() ? "(fails)" : Sols[0];
  }

  SymbolTable Syms;
  TermArena Arena;
  std::unique_ptr<CompiledProgram> Program;
  std::unique_ptr<Machine> M;
};

TEST_F(PreludeTest, Append) {
  EXPECT_EQ(first("append([1,2], [3], R)"), "[1,2,3]");
  EXPECT_EQ(all("append(A, B, [1,2])").size(), 3u);
}

TEST_F(PreludeTest, MemberAndMemberchk) {
  EXPECT_EQ(all("member(X, [a,b,c])").size(), 3u);
  EXPECT_EQ(all("memberchk(X, [a,b,c])").size(), 1u);
  EXPECT_EQ(first("memberchk(b, [a,b,c])"), "yes");
  EXPECT_EQ(first("memberchk(z, [a,b,c])"), "(fails)");
}

TEST_F(PreludeTest, Length) {
  EXPECT_EQ(first("length([a,b,c,d], N)"), "4");
  EXPECT_EQ(first("length([], N)"), "0");
}

TEST_F(PreludeTest, Reverse) {
  EXPECT_EQ(first("reverse([1,2,3], R)"), "[3,2,1]");
  EXPECT_EQ(first("reverse([], R)"), "[]");
}

TEST_F(PreludeTest, Select) {
  EXPECT_EQ(all("select(X, [1,2,3], R)"),
            (std::vector<std::string>{"1, [2,3]", "2, [1,3]", "3, [1,2]"}));
}

TEST_F(PreludeTest, Nth) {
  EXPECT_EQ(first("nth0(0, [a,b,c], X)"), "a");
  EXPECT_EQ(first("nth0(2, [a,b,c], X)"), "c");
  EXPECT_EQ(first("nth1(1, [a,b,c], X)"), "a");
  EXPECT_EQ(first("nth1(3, [a,b,c], X)"), "c");
  EXPECT_EQ(first("nth0(5, [a,b,c], X)"), "(fails)");
}

TEST_F(PreludeTest, Last) {
  EXPECT_EQ(first("last([1,2,3], X)"), "3");
  EXPECT_EQ(first("last([], X)"), "(fails)");
}

TEST_F(PreludeTest, Between) {
  EXPECT_EQ(all("between(1, 5, X)"),
            (std::vector<std::string>{"1", "2", "3", "4", "5"}));
  EXPECT_EQ(first("between(3, 2, X)"), "(fails)");
}

TEST_F(PreludeTest, Numlist) {
  EXPECT_EQ(first("numlist(1, 5, L)"), "[1,2,3,4,5]");
  EXPECT_EQ(first("numlist(3, 3, L)"), "[3]");
  EXPECT_EQ(first("numlist(4, 3, L)"), "[]");
}

TEST_F(PreludeTest, SumMaxMin) {
  EXPECT_EQ(first("sum_list([1,2,3,4], S)"), "10");
  EXPECT_EQ(first("sum_list([], S)"), "0");
  EXPECT_EQ(first("max_list([3,1,4,1,5], M)"), "5");
  EXPECT_EQ(first("min_list([3,1,4,1,5], M)"), "1");
}

TEST_F(PreludeTest, Msort) {
  EXPECT_EQ(first("msort([3,1,2], S)"), "[1,2,3]");
  EXPECT_EQ(first("msort([b,a,1,c,2], S)"), "[1,2,a,b,c]");
  EXPECT_EQ(first("msort([2,1,2], S)"), "[1,2,2]"); // duplicates kept
}

TEST_F(PreludeTest, DeleteAndSubtract) {
  EXPECT_EQ(first("delete([1,2,1,3], 1, R)"), "[2,3]");
  EXPECT_EQ(first("subtract([1,2,3,4], [2,4], R)"), "[1,3]");
}

TEST_F(PreludeTest, Permutation) {
  EXPECT_EQ(all("permutation([1,2,3], P)").size(), 6u);
}

TEST_F(PreludeTest, AnalyzesCleanly) {
  AnalysisSession A(*Program);
  Result<AnalysisResult> R = A.analyze("reverse(glist, var)");
  ASSERT_TRUE(R) << R.diag().str();
  EXPECT_TRUE(R->Converged);
  for (const AnalysisResult::Item &I : R->Items)
    if (I.PredLabel == "reverse/2" && I.Success)
      EXPECT_EQ(I.Success->str(Syms), "(glist, glist)");

  R = A.analyze("sum_list(intlist, var)");
  ASSERT_TRUE(R) << R.diag().str();
  for (const AnalysisResult::Item &I : R->Items)
    if (I.PredLabel == "sum_list/2" && I.Success)
      EXPECT_EQ(I.Success->str(Syms), "(intlist, int)");
}

TEST_F(PreludeTest, PreludeComposesWithUserPrograms) {
  std::string Source = std::string(preludeSource()) +
                       "pairsum(L, S) :- reverse(L, R), sum_list(R, S).\n";
  SymbolTable Syms2;
  TermArena Arena2;
  Result<CompiledProgram> P = compileSource(Source, Syms2, Arena2);
  ASSERT_TRUE(P) << P.diag().str();
  Machine M2(*P);
  Parser GP("pairsum([1,2,3], S)", Syms2, Arena2);
  Result<const Term *> G = GP.readTerm();
  std::vector<Solution> Sols;
  TermArena SolArena;
  ASSERT_EQ(M2.solve(*G, GP.lastTermNumVars(), SolArena, Sols, 1),
            RunStatus::Success);
  EXPECT_EQ(writeTerm(Sols[0].Bindings[0], Syms2), "6");
}

} // namespace
