//===- tests/MachineTest.cpp - Concrete WAM integration tests -------------===//
//
// End-to-end tests of the parse -> compile -> execute pipeline on the
// concrete machine: unification, lists, arithmetic, backtracking, cut,
// builtins, and classic programs.
//
//===----------------------------------------------------------------------===//

#include "wam/Machine.h"

#include "term/TermWriter.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

/// Test fixture bundling the full pipeline.
class MachineTest : public ::testing::Test {
protected:
  /// Compiles \p Source; fails the test on error.
  void compile(std::string_view Source) {
    Result<CompiledProgram> P = compileSource(Source, Syms, Arena);
    ASSERT_TRUE(P) << P.diag().str();
    Program = std::make_unique<CompiledProgram>(P.take());
    M = std::make_unique<Machine>(*Program);
  }

  /// Parses a goal term.
  const Term *goal(std::string_view Text, int *NumVars = nullptr) {
    Parser P(Text, Syms, Arena);
    Result<const Term *> T = P.readTerm();
    EXPECT_TRUE(T) << T.diag().str();
    if (NumVars)
      *NumVars = P.lastTermNumVars();
    return *T;
  }

  /// True if the goal succeeds.
  bool proves(std::string_view GoalText) {
    int NumVars = 0;
    const Term *G = goal(GoalText, &NumVars);
    return M->proves(G, NumVars);
  }

  /// Returns the rendered bindings of the goal's first solution, or "" on
  /// failure. Bindings render as "Var=Value" joined by ", " in variable
  /// order of appearance.
  std::string firstSolution(std::string_view GoalText) {
    int NumVars = 0;
    const Term *G = goal(GoalText, &NumVars);
    std::vector<Solution> Sols;
    TermArena SolArena;
    RunStatus Status = M->solve(G, NumVars, SolArena, Sols, 1);
    EXPECT_NE(Status, RunStatus::Error) << M->errorMessage();
    if (Status != RunStatus::Success)
      return "";
    std::string Out;
    for (int I = 0; I != NumVars; ++I) {
      if (!Sols[0].Bindings[I])
        continue;
      if (!Out.empty())
        Out += ", ";
      Out += writeTerm(Sols[0].Bindings[I], Syms);
    }
    return Out.empty() ? "true" : Out;
  }

  /// Returns all solutions (up to \p Max), one rendered binding line each.
  std::vector<std::string> allSolutions(std::string_view GoalText,
                                        int Max = 100) {
    int NumVars = 0;
    const Term *G = goal(GoalText, &NumVars);
    std::vector<Solution> Sols;
    TermArena SolArena;
    RunStatus Status = M->solve(G, NumVars, SolArena, Sols, Max);
    EXPECT_NE(Status, RunStatus::Error) << M->errorMessage();
    std::vector<std::string> Out;
    for (const Solution &S : Sols) {
      std::string Line;
      for (int I = 0; I != NumVars; ++I) {
        if (!S.Bindings[I])
          continue;
        if (!Line.empty())
          Line += ", ";
        Line += writeTerm(S.Bindings[I], Syms);
      }
      Out.push_back(Line);
    }
    return Out;
  }

  SymbolTable Syms;
  TermArena Arena;
  std::unique_ptr<CompiledProgram> Program;
  std::unique_ptr<Machine> M;
};

TEST_F(MachineTest, FactSucceeds) {
  compile("p(a).");
  EXPECT_TRUE(proves("p(a)"));
  EXPECT_FALSE(proves("p(b)"));
}

TEST_F(MachineTest, FactBindsVariable) {
  compile("p(a).");
  EXPECT_EQ(firstSolution("p(X)"), "a");
}

TEST_F(MachineTest, UndefinedPredicateFails) {
  compile("p(a).");
  EXPECT_FALSE(proves("q(a)"));
}

TEST_F(MachineTest, ZeroArityChain) {
  compile("a :- b. b :- c. c.");
  EXPECT_TRUE(proves("a"));
}

TEST_F(MachineTest, StructureUnification) {
  compile("p(f(X, g(X))) :- q(X). q(1).");
  EXPECT_TRUE(proves("p(f(1, g(1)))"));
  EXPECT_FALSE(proves("p(f(1, g(2)))"));
  EXPECT_EQ(firstSolution("p(f(Y, Z))"), "1, g(1)");
}

TEST_F(MachineTest, PaperExampleClause) {
  // The clause from the paper's Section 2 (Figure 2).
  compile("p(a, [f(V)|L]) :- q(V, L). q(1, []).");
  EXPECT_TRUE(proves("p(a, [f(1)])"));
  EXPECT_FALSE(proves("p(b, [f(1)])"));
  EXPECT_EQ(firstSolution("p(a, Xs)"), "[f(1)]");
}

TEST_F(MachineTest, BacktrackingEnumerates) {
  compile("color(red). color(green). color(blue).");
  EXPECT_EQ(allSolutions("color(C)"),
            (std::vector<std::string>{"red", "green", "blue"}));
}

TEST_F(MachineTest, AppendForward) {
  compile("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).");
  EXPECT_EQ(firstSolution("app([1,2], [3], Z)"), "[1,2,3]");
}

TEST_F(MachineTest, AppendBackwardEnumeratesSplits) {
  compile("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).");
  auto Sols = allSolutions("app(A, B, [1,2])");
  ASSERT_EQ(Sols.size(), 3u);
  EXPECT_EQ(Sols[0], "[], [1,2]");
  EXPECT_EQ(Sols[1], "[1], [2]");
  EXPECT_EQ(Sols[2], "[1,2], []");
}

TEST_F(MachineTest, NaiveReverse) {
  compile("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
          "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).");
  EXPECT_EQ(firstSolution("nrev([1,2,3,4,5], R)"), "[5,4,3,2,1]");
}

TEST_F(MachineTest, Arithmetic) {
  compile("double(X, Y) :- Y is X * 2.\n"
          "fact(0, 1).\n"
          "fact(N, F) :- N > 0, N1 is N - 1, fact(N1, F1), F is N * F1.");
  EXPECT_EQ(firstSolution("double(21, Y)"), "42");
  EXPECT_EQ(firstSolution("fact(10, F)"), "3628800");
}

TEST_F(MachineTest, ComparisonBuiltins) {
  compile("t.");
  EXPECT_TRUE(proves("t"));
  Machine &Mach = *M;
  (void)Mach;
  compile("check :- 1 < 2, 2 =< 2, 3 > 1, 3 >= 3, 4 =:= 4, 4 =\\= 5.");
  EXPECT_TRUE(proves("check"));
  compile("bad :- 2 < 1.");
  EXPECT_FALSE(proves("bad"));
}

TEST_F(MachineTest, CutPrunesAlternatives) {
  compile("max(X, Y, X) :- X >= Y, !.\n"
          "max(_, Y, Y).");
  EXPECT_EQ(allSolutions("max(3, 2, M)"), (std::vector<std::string>{"3"}));
  EXPECT_EQ(allSolutions("max(2, 3, M)"), (std::vector<std::string>{"3"}));
}

TEST_F(MachineTest, DeepCut) {
  compile("p(X) :- q(X), !, r(X).\n"
          "p(fallback).\n"
          "q(1). q(2). r(1).");
  // q(1) commits; r(1) holds, so only one solution and no fallback.
  EXPECT_EQ(allSolutions("p(X)"), (std::vector<std::string>{"1"}));
}

TEST_F(MachineTest, DeepCutBlocksFallbackOnFailure) {
  compile("p(X) :- q(X), !, r(X).\n"
          "p(fallback).\n"
          "q(2). r(1).");
  // q(2) commits, r(2) fails, cut prevents both q retry and clause 2.
  EXPECT_TRUE(allSolutions("p(X)").empty());
}

TEST_F(MachineTest, NeckCutKeepsOuterChoice) {
  compile("p(1) :- !. p(2).\n"
          "q(X) :- p(X).\n"
          "r(a). r(b).");
  EXPECT_EQ(allSolutions("p(X)"), (std::vector<std::string>{"1"}));
  // Cut inside p must not prune r's alternatives.
  compile("p(1) :- !. p(2).\n"
          "s(R, X) :- r(R), p(X).\n"
          "r(a). r(b).");
  EXPECT_EQ(allSolutions("s(R, X)"),
            (std::vector<std::string>{"a, 1", "b, 1"}));
}

TEST_F(MachineTest, TypeTestBuiltins) {
  compile("checks(X) :- var(X).\n"
          "checkn(X) :- nonvar(X).\n"
          "checka(X) :- atom(X).\n"
          "checki(X) :- integer(X).\n"
          "checkat(X) :- atomic(X).\n"
          "checkc(X) :- compound(X).");
  EXPECT_TRUE(proves("checks(_)"));
  EXPECT_FALSE(proves("checks(a)"));
  EXPECT_TRUE(proves("checkn(f(x))"));
  EXPECT_TRUE(proves("checka(abc)"));
  EXPECT_FALSE(proves("checka(3)"));
  EXPECT_TRUE(proves("checki(3)"));
  EXPECT_TRUE(proves("checkat(3)"));
  EXPECT_TRUE(proves("checkat(a)"));
  EXPECT_FALSE(proves("checkat(f(a))"));
  EXPECT_TRUE(proves("checkc(f(a))"));
  EXPECT_TRUE(proves("checkc([1])"));
  EXPECT_FALSE(proves("checkc([])"));
}

TEST_F(MachineTest, StructuralEqualityAndOrder) {
  compile("t.");
  EXPECT_TRUE(proves("t"));
  compile("eq(X, Y) :- X == Y.\n"
          "lt(X, Y) :- X @< Y.");
  EXPECT_TRUE(proves("eq(f(a), f(a))"));
  EXPECT_FALSE(proves("eq(f(a), f(b))"));
  EXPECT_FALSE(proves("eq(X, Y)"));
  EXPECT_TRUE(proves("eq(X, X)"));
  EXPECT_TRUE(proves("lt(1, a)"));       // Int < Atom
  EXPECT_TRUE(proves("lt(a, f(a))"));    // Atom < Compound
  EXPECT_TRUE(proves("lt(f(a), f(b))")); // args left to right
}

TEST_F(MachineTest, UnifyAndNotUnifyBuiltins) {
  compile("u(X, Y) :- X = Y.\n"
          "nu(X, Y) :- X \\= Y.");
  EXPECT_EQ(firstSolution("u(X, f(1))"), "f(1)");
  EXPECT_TRUE(proves("nu(a, b)"));
  EXPECT_FALSE(proves("nu(a, a)"));
  EXPECT_FALSE(proves("nu(X, a)")); // X unifies with a
}

TEST_F(MachineTest, FunctorArgUniv) {
  compile("f3(T, N, A) :- functor(T, N, A).\n"
          "a3(N, T, A) :- arg(N, T, A).\n"
          "univ(T, L) :- T =.. L.");
  EXPECT_EQ(firstSolution("f3(foo(a,b), N, A)"), "foo, 2");
  // Fresh variables are named after their heap address, so only check the
  // shape.
  std::string Constructed = firstSolution("f3(T, foo, 2)");
  EXPECT_TRUE(Constructed.starts_with("foo(_G")) << Constructed;
  EXPECT_EQ(firstSolution("a3(2, foo(a,b), A)"), "b");
  EXPECT_EQ(firstSolution("univ(foo(a,b), L)"), "[foo,a,b]");
  EXPECT_EQ(firstSolution("univ(T, [foo,a,b])"), "foo(a,b)");
}

TEST_F(MachineTest, WriteOutput) {
  compile("hello :- write(hello), nl, write([1,2,3]), nl, tab(2), "
          "write(f(X, Y)).");
  EXPECT_TRUE(proves("hello"));
  EXPECT_TRUE(M->output().starts_with("hello\n[1,2,3]\n  f(_G"))
      << M->output();
}

TEST_F(MachineTest, QuickSort) {
  compile(
      "partition([], _, [], []).\n"
      "partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, "
      "L2).\n"
      "partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).\n"
      "qsort([], R, R).\n"
      "qsort([X|L], R, R0) :- partition(L, X, L1, L2), qsort(L2, R1, R0), "
      "qsort(L1, R, [X|R1]).");
  EXPECT_EQ(firstSolution("qsort([3,1,2], S, [])"), "[1,2,3]");
  EXPECT_EQ(firstSolution("qsort([27,74,17,33,94,18,46,83,65,2], S, [])"),
            "[2,17,18,27,33,46,65,74,83,94]");
}

TEST_F(MachineTest, LastCallOptimizationDeepRecursion) {
  // Tail-recursive loop should run in constant stack.
  compile("count(0) :- !.\n"
          "count(N) :- N1 is N - 1, count(N1).");
  EXPECT_TRUE(proves("count(200000)"));
}

TEST_F(MachineTest, HaltBuiltin) {
  compile("h :- halt.");
  int NumVars = 0;
  const Term *G = goal("h", &NumVars);
  std::vector<Solution> Sols;
  TermArena SolArena;
  EXPECT_EQ(M->solve(G, NumVars, SolArena, Sols, 1), RunStatus::Halted);
}

TEST_F(MachineTest, ArithmeticErrorReported) {
  compile("bad(X) :- Y is X + 1, Y > 0.");
  int NumVars = 0;
  const Term *G = goal("bad(_)", &NumVars);
  std::vector<Solution> Sols;
  TermArena SolArena;
  EXPECT_EQ(M->solve(G, NumVars, SolArena, Sols, 1), RunStatus::Error);
  EXPECT_NE(M->errorMessage().find("unbound"), std::string::npos);
}

/// Shared program for the signed-overflow / shift-guard suite: min/1
/// binds INT64_MIN (which has no literal spelling — its magnitude
/// overflows the lexer), max/1 binds INT64_MAX.
constexpr std::string_view kBoundaryProgram =
    "min(M) :- M is 0 - 9223372036854775807 - 1.\n"
    "max(M) :- M is 9223372036854775807.\n";

TEST_F(MachineTest, ArithmeticOverflowIsAnError) {
  // Every case here is signed-overflow UB in C++ if evaluated naively;
  // the machine must turn each into a reported error instead.
  compile(std::string(kBoundaryProgram) +
          "negmin(R) :- min(M), R is - M.\n"
          "absmin(R) :- min(M), R is abs(M).\n"
          "divmin(R) :- min(M), R is M / -1.\n"
          "idivmin(R) :- min(M), R is M // -1.\n"
          "modmin(R) :- min(M), R is M mod -1.\n"
          "remmin(R) :- min(M), R is M rem -1.\n"
          "addmax(R) :- max(M), R is M + 1.\n"
          "submin(R) :- min(M), R is M - 1.\n"
          "mulmax(R) :- max(M), R is M * 2.\n");
  for (std::string_view G :
       {"negmin(_)", "absmin(_)", "divmin(_)", "idivmin(_)", "modmin(_)",
        "remmin(_)", "addmax(_)", "submin(_)", "mulmax(_)"}) {
    int NumVars = 0;
    const Term *T = goal(G, &NumVars);
    std::vector<Solution> Sols;
    TermArena SolArena;
    EXPECT_EQ(M->solve(T, NumVars, SolArena, Sols, 1), RunStatus::Error)
        << G;
    EXPECT_NE(M->errorMessage().find("integer overflow"), std::string::npos)
        << G << ": " << M->errorMessage();
  }
}

TEST_F(MachineTest, ShiftCountOutOfRangeIsAnError) {
  // Shifting by a negative count or by >= the operand width is UB; the
  // machine reports it. Left-shifting bits out the top is well-defined
  // here (it wraps through the unsigned representation).
  compile("s(R, A, B) :- R is A << B.\n"
          "t(R, A, B) :- R is A >> B.\n");
  for (std::string_view G :
       {"s(_, 1, 64)", "s(_, 1, -1)", "t(_, 1, 64)", "t(_, 8, -2)"}) {
    int NumVars = 0;
    const Term *T = goal(G, &NumVars);
    std::vector<Solution> Sols;
    TermArena SolArena;
    EXPECT_EQ(M->solve(T, NumVars, SolArena, Sols, 1), RunStatus::Error)
        << G;
    EXPECT_NE(M->errorMessage().find("bad shift count"), std::string::npos)
        << G << ": " << M->errorMessage();
  }
  EXPECT_EQ(firstSolution("s(R, 1, 62)"), "4611686018427387904");
  EXPECT_EQ(firstSolution("s(R, 1, 63)"),
            "-9223372036854775808"); // wraps, not UB
  EXPECT_EQ(firstSolution("t(R, 8, 2)"), "2");
  EXPECT_EQ(firstSolution("t(R, -8, 1)"), "-4"); // arithmetic shift
}

TEST_F(MachineTest, BoundaryArithmeticStillWorks) {
  // The guards must not reject legal boundary results.
  compile(std::string(kBoundaryProgram) +
          "divok(R) :- min(M), R is M / 1.\n"
          "modok(R) :- min(M), R is M mod 3.\n"
          "negmax(R) :- max(M), R is - M.\n"
          "absneg(R) :- max(M), N is - M, R is abs(N).\n"
          "roundtrip(R) :- min(M), R is M + 1 - 1.\n");
  EXPECT_EQ(firstSolution("divok(R)"), "-9223372036854775808");
  EXPECT_EQ(firstSolution("modok(R)"), "1");
  EXPECT_EQ(firstSolution("negmax(R)"), "-9223372036854775807");
  EXPECT_EQ(firstSolution("absneg(R)"), "9223372036854775807");
  EXPECT_EQ(firstSolution("roundtrip(R)"), "-9223372036854775808");
}

TEST_F(MachineTest, FirstArgIndexingSelectsClause) {
  compile("t(a, 1). t(b, 2). t(c, 3). t([X|_], X). t(f(X), X). t(7, seven).");
  EXPECT_EQ(firstSolution("t(a, V)"), "1");
  EXPECT_EQ(firstSolution("t(b, V)"), "2");
  EXPECT_EQ(firstSolution("t([9,8], V)"), "9");
  EXPECT_EQ(firstSolution("t(f(5), V)"), "5");
  EXPECT_EQ(firstSolution("t(7, V)"), "seven");
  EXPECT_FALSE(proves("t(zzz, _)"));
  // All clauses reachable through an unbound first argument.
  EXPECT_EQ(allSolutions("t(K, V)").size(), 6u);
}

TEST_F(MachineTest, MemberSelect) {
  compile("member(X, [X|_]).\n"
          "member(X, [_|T]) :- member(X, T).\n"
          "select(X, [X|T], T).\n"
          "select(X, [H|T], [H|R]) :- select(X, T, R).");
  EXPECT_EQ(allSolutions("member(X, [1,2,3])").size(), 3u);
  auto Sels = allSolutions("select(X, [1,2,3], R)");
  ASSERT_EQ(Sels.size(), 3u);
  EXPECT_EQ(Sels[0], "1, [2,3]");
  EXPECT_EQ(Sels[1], "2, [1,3]");
  EXPECT_EQ(Sels[2], "3, [1,2]");
}

} // namespace
