//===- tests/SchedulerTest.cpp - Worklist scheduler tests -----------------===//
//
// The dependency-driven worklist driver must be a pure scheduling
// optimization: on every benchmark it computes the byte-identical
// extension-table fixpoint of the naive restart loop while replaying
// fewer activations. This suite pins that equivalence, the replay
// savings, the iteration-budget contract of both drivers, and the
// scheduler's bookkeeping invariants.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "baseline/MetaAnalyzer.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace awam;

namespace {

/// "pred call -> success" lines in table (creation) order — NOT sorted,
/// so equality also pins that both drivers create entries in the same
/// order and store identical patterns.
std::vector<std::string> tableLines(const AnalysisResult &R,
                                    const SymbolTable &Syms) {
  std::vector<std::string> Lines;
  for (const AnalysisResult::Item &I : R.Items)
    Lines.push_back(I.PredLabel + " " + I.Call.str(Syms) + " -> " +
                    (I.Success ? I.Success->str(Syms) : "(fails)"));
  return Lines;
}

class SchedulerTest : public ::testing::Test {
protected:
  void compile(std::string_view Source) {
    Result<CompiledProgram> P = compileSource(Source, Syms, Arena);
    ASSERT_TRUE(P) << P.diag().str();
    Program = std::make_unique<CompiledProgram>(P.take());
  }

  AnalyzerOptions driverOptions(DriverKind D) {
    AnalyzerOptions O;
    O.Driver = D;
    return O;
  }

  SymbolTable Syms;
  TermArena Arena;
  std::unique_ptr<CompiledProgram> Program;
};

TEST_F(SchedulerTest, GoldenWorklistMatchesNaiveOnAllBenchmarks) {
  // Tentpole acceptance: identical fixpoint on every Table 1 program,
  // with strictly fewer activation replays on most of them.
  int Strict = 0, Checked = 0;
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    SymbolTable S;
    TermArena A;
    Result<CompiledProgram> P = compileSource(B.Source, S, A);
    ASSERT_TRUE(P) << B.Name << ": " << P.diag().str();

    AnalysisSession Naive(*P, [] {
      AnalyzerOptions O;
      O.Driver = DriverKind::Naive;
      return O;
    }());
    Result<AnalysisResult> RN = Naive.analyze(B.EntrySpec);
    ASSERT_TRUE(RN) << B.Name << ": " << RN.diag().str();

    AnalysisSession Worklist(*P); // defaults: Driver = Worklist
    Result<AnalysisResult> RW = Worklist.analyze(B.EntrySpec);
    ASSERT_TRUE(RW) << B.Name << ": " << RW.diag().str();

    EXPECT_TRUE(RN->Converged) << B.Name;
    EXPECT_TRUE(RW->Converged) << B.Name;
    EXPECT_EQ(tableLines(*RN, S), tableLines(*RW, S)) << B.Name;

    // Never more replays than naive; count the strict wins.
    EXPECT_LE(RW->Counters.ActivationRuns, RN->Counters.ActivationRuns)
        << B.Name;
    if (RW->Counters.ActivationRuns < RN->Counters.ActivationRuns)
      ++Strict;
    ++Checked;
  }
  EXPECT_EQ(Checked, 11);
  EXPECT_GE(Strict, 6) << "worklist should beat naive replay counts on "
                          "most benchmarks";
}

TEST_F(SchedulerTest, WorklistMatchesNaiveWithoutInterning) {
  // The scheduler must not depend on the interner fast path.
  compile("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
          "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).");
  AnalyzerOptions Naive = seedAnalyzerOptions();
  AnalyzerOptions Work = seedAnalyzerOptions();
  Work.Driver = DriverKind::Worklist;

  AnalysisSession AN(*Program, Naive);
  Result<AnalysisResult> RN = AN.analyze("nrev(glist, var)");
  ASSERT_TRUE(RN) << RN.diag().str();
  AnalysisSession AW(*Program, Work);
  Result<AnalysisResult> RW = AW.analyze("nrev(glist, var)");
  ASSERT_TRUE(RW) << RW.diag().str();
  EXPECT_EQ(tableLines(*RN, Syms), tableLines(*RW, Syms));
  EXPECT_LE(RW->Counters.ActivationRuns, RN->Counters.ActivationRuns);
}

TEST_F(SchedulerTest, SchedulerStatsExposedThroughSession) {
  compile("even(0). even(s(N)) :- odd(N).\n"
          "odd(s(N)) :- even(N).");
  AnalysisSession A(*Program);
  Result<AnalysisResult> R = A.analyze("even(var)");
  ASSERT_TRUE(R) << R.diag().str();
  ASSERT_NE(A.schedulerStats(), nullptr);
  const WorklistScheduler::Stats &S = *A.schedulerStats();
  EXPECT_GE(S.Sweeps, 1u);
  EXPECT_GT(S.Runs, 0u);
  // Mutual recursion records at least the even<->odd read edges.
  EXPECT_GT(S.EdgesRecorded, 0u);
  EXPECT_EQ(R->Counters.SchedulerRuns, S.Runs);
  EXPECT_EQ(R->Counters.DepEdges, S.EdgesRecorded);
  // Activations = scheduler-initiated runs + inline call-site explores.
  EXPECT_GE(R->Counters.ActivationRuns, S.Runs);

  // The naive driver builds no scheduler.
  AnalysisSession N(*Program, driverOptions(DriverKind::Naive));
  ASSERT_TRUE(N.analyze("even(var)"));
  EXPECT_EQ(N.schedulerStats(), nullptr);
}

TEST_F(SchedulerTest, SessionIsReusableAcrossAnalyses) {
  compile("p(a). q(X) :- p(X).");
  AnalysisSession A(*Program);
  Result<AnalysisResult> R1 = A.analyze("q(var)");
  ASSERT_TRUE(R1) << R1.diag().str();
  Result<AnalysisResult> R2 = A.analyze("q(var)");
  ASSERT_TRUE(R2) << R2.diag().str();
  EXPECT_EQ(tableLines(*R1, Syms), tableLines(*R2, Syms));
  EXPECT_EQ(R1->Counters.ActivationRuns, R2->Counters.ActivationRuns);
}

TEST_F(SchedulerTest, BaselineBackendMatchesCompiledThroughSession) {
  // The MetaAnalyzer baseline plugged in as a session backend must give
  // the same table as the compiled worklist session.
  std::string_view Source =
      "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).";
  Result<ParsedProgram> Parsed = parseProgram(Source, Syms, Arena);
  ASSERT_TRUE(Parsed) << Parsed.diag().str();
  Result<CompiledProgram> Compiled = compileProgram(*Parsed, Syms);
  ASSERT_TRUE(Compiled) << Compiled.diag().str();

  AnalysisSession C(*Compiled);
  Result<AnalysisResult> RC = C.analyze("app(glist, glist, var)");
  ASSERT_TRUE(RC) << RC.diag().str();

  AnalysisSession B = makeBaselineSession(*Parsed, Syms);
  Result<AnalysisResult> RB = B.analyze("app(glist, glist, var)");
  ASSERT_TRUE(RB) << RB.diag().str();
  EXPECT_GT(RB->Counters.ActivationRuns, 0u);

  auto sorted = [&](const AnalysisResult &R) {
    std::vector<std::string> L = tableLines(R, Syms);
    std::sort(L.begin(), L.end());
    return L;
  };
  EXPECT_EQ(sorted(*RC), sorted(*RB));
}

/// A program whose success summary deepens one s/1 layer per pass, so
/// the fixpoint needs several iterations/sweeps — ideal for driving the
/// MaxIterations budget into the ground.
constexpr std::string_view kSlowConvergence =
    "count(zero). count(s(N)) :- count(N).";

class BudgetHitTest : public SchedulerTest,
                      public ::testing::WithParamInterface<DriverKind> {};

TEST_P(BudgetHitTest, MaxIterationsBudgetHitIsReportedAndSound) {
  compile(kSlowConvergence);

  // Reference fixpoint with the default budget.
  AnalyzerOptions Full = driverOptions(GetParam());
  AnalysisSession AFull(*Program, Full);
  Result<AnalysisResult> RFull = AFull.analyze("count(var)");
  ASSERT_TRUE(RFull) << RFull.diag().str();
  ASSERT_TRUE(RFull->Converged);
  ASSERT_GT(RFull->Iterations, 1);

  // Same analysis with a one-iteration budget: not an error, but an
  // explicitly unconverged result with populated counters.
  AnalyzerOptions Tight = driverOptions(GetParam());
  Tight.MaxIterations = 1;
  AnalysisSession ATight(*Program, Tight);
  Result<AnalysisResult> RTight = ATight.analyze("count(var)");
  ASSERT_TRUE(RTight) << RTight.diag().str();
  EXPECT_FALSE(RTight->Converged);
  EXPECT_EQ(RTight->Iterations, 1);
  EXPECT_GT(RTight->Instructions, 0u);
  EXPECT_GT(RTight->Counters.ActivationRuns, 0u);
  EXPECT_GT(RTight->TableProbes, 0u);
  std::string Report = formatAnalysis(*RTight, Syms);
  EXPECT_NE(Report.find("(budget hit)"), std::string::npos) << Report;

  // The partial table is a sound under-iteration of the fixpoint: every
  // partial success must be <= the converged success for the same call.
  for (const AnalysisResult::Item &Partial : RTight->Items) {
    if (!Partial.Success)
      continue; // "no success yet" is trivially below everything
    bool FoundMatch = false;
    for (const AnalysisResult::Item &Final : RFull->Items) {
      if (Final.PredLabel != Partial.PredLabel ||
          !(Final.Call == Partial.Call))
        continue;
      FoundMatch = true;
      ASSERT_TRUE(Final.Success.has_value());
      Pattern Lub = lubPatterns(*Partial.Success, *Final.Success,
                                kDefaultDepthLimit);
      EXPECT_TRUE(Lub == *Final.Success)
          << Partial.PredLabel << ": partial " << Partial.Success->str(Syms)
          << " not below final " << Final.Success->str(Syms);
    }
    EXPECT_TRUE(FoundMatch) << Partial.PredLabel;
  }
}

TEST_P(BudgetHitTest, ZeroIterationBudgetYieldsEmptyUnconvergedResult) {
  compile(kSlowConvergence);
  AnalyzerOptions O = driverOptions(GetParam());
  O.MaxIterations = 0;
  AnalysisSession A(*Program, O);
  Result<AnalysisResult> R = A.analyze("count(var)");
  ASSERT_TRUE(R) << R.diag().str();
  EXPECT_FALSE(R->Converged);
  EXPECT_EQ(R->Iterations, 0);
}

std::string driverName(const ::testing::TestParamInfo<DriverKind> &Info) {
  return Info.param == DriverKind::Naive ? "Naive" : "Worklist";
}

INSTANTIATE_TEST_SUITE_P(BothDrivers, BudgetHitTest,
                         ::testing::Values(DriverKind::Naive,
                                           DriverKind::Worklist),
                         driverName);

} // namespace
