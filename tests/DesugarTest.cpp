//===- tests/DesugarTest.cpp - Control-construct desugaring tests ---------===//
//
// Disjunction, if-then-else and negation-as-failure compile via auxiliary
// predicates; these tests check both the rewriting and the end-to-end
// semantics on the concrete machine, plus analyzability.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "term/TermWriter.h"
#include "wam/Machine.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

class DesugarTest : public ::testing::Test {
protected:
  void compile(std::string_view Source) {
    Result<CompiledProgram> P = compileSource(Source, Syms, Arena);
    ASSERT_TRUE(P) << P.diag().str();
    Program = std::make_unique<CompiledProgram>(P.take());
    M = std::make_unique<Machine>(*Program);
  }

  std::vector<std::string> solutions(std::string_view GoalText,
                                     int Max = 50) {
    Parser GP(GoalText, Syms, Arena);
    Result<const Term *> G = GP.readTerm();
    EXPECT_TRUE(G) << G.diag().str();
    std::vector<Solution> Sols;
    TermArena SolArena;
    RunStatus Status =
        M->solve(*G, GP.lastTermNumVars(), SolArena, Sols, Max);
    EXPECT_NE(Status, RunStatus::Error) << M->errorMessage();
    std::vector<std::string> Out;
    for (const Solution &S : Sols) {
      std::string Line;
      for (const Term *B : S.Bindings) {
        if (!B)
          continue;
        if (!Line.empty())
          Line += ", ";
        Line += writeTerm(B, Syms);
      }
      Out.push_back(Line.empty() ? "yes" : Line);
    }
    return Out;
  }

  SymbolTable Syms;
  TermArena Arena;
  std::unique_ptr<CompiledProgram> Program;
  std::unique_ptr<Machine> M;
};

TEST_F(DesugarTest, DisjunctionEnumeratesBothBranches) {
  compile("p(X) :- (X = a ; X = b).");
  EXPECT_EQ(solutions("p(X)"), (std::vector<std::string>{"a", "b"}));
}

TEST_F(DesugarTest, DisjunctionThreeWay) {
  compile("p(X) :- (X = 1 ; X = 2 ; X = 3).");
  EXPECT_EQ(solutions("p(X)"), (std::vector<std::string>{"1", "2", "3"}));
}

TEST_F(DesugarTest, DisjunctionSharesOuterBindings) {
  compile("p(X, Y) :- q(X), (X = a, Y = hit ; Y = miss).\n"
          "q(a). q(b).");
  EXPECT_EQ(solutions("p(X, Y)"),
            (std::vector<std::string>{"a, hit", "a, miss", "b, miss"}));
}

TEST_F(DesugarTest, IfThenElseTakesThenBranch) {
  compile("max(X, Y, M) :- (X >= Y -> M = X ; M = Y).");
  EXPECT_EQ(solutions("max(3, 2, M)"), (std::vector<std::string>{"3"}));
  EXPECT_EQ(solutions("max(2, 5, M)"), (std::vector<std::string>{"5"}));
}

TEST_F(DesugarTest, IfThenElseCommits) {
  // The condition must not be re-satisfiable: only one solution.
  compile("pick(X) :- (member(X, [1,2,3]) -> true ; X = none).\n"
          "member(X, [X|_]). member(X, [_|T]) :- member(X, T).");
  EXPECT_EQ(solutions("pick(X)"), (std::vector<std::string>{"1"}));
}

TEST_F(DesugarTest, BareIfThenFailsWhenConditionFails) {
  compile("t(X) :- (X > 2 -> true).");
  EXPECT_EQ(solutions("t(3)"), (std::vector<std::string>{"yes"}));
  EXPECT_TRUE(solutions("t(1)").empty());
}

TEST_F(DesugarTest, NegationAsFailure) {
  compile("lonely(X) :- member(X, [1,2,3]), \\+ member(X, [2,3,4]).\n"
          "member(X, [X|_]). member(X, [_|T]) :- member(X, T).");
  EXPECT_EQ(solutions("lonely(X)"), (std::vector<std::string>{"1"}));
}

TEST_F(DesugarTest, NegationDoesNotBind) {
  compile("t(X) :- \\+ X = a, X = b.");
  // \\+ X = a succeeds only if X = a fails; with X free it binds, so the
  // negation fails.
  EXPECT_TRUE(solutions("t(X)").empty());
  compile("t2(X) :- X = b, \\+ X = a.");
  EXPECT_EQ(solutions("t2(X)"), (std::vector<std::string>{"b"}));
}

TEST_F(DesugarTest, NestedControl) {
  compile("c(X, K) :- ( X = 0 -> K = zero\n"
          "           ; X > 0 -> K = pos\n"
          "           ; K = neg ).");
  EXPECT_EQ(solutions("c(0, K)"), (std::vector<std::string>{"zero"}));
  EXPECT_EQ(solutions("c(9, K)"), (std::vector<std::string>{"pos"}));
  EXPECT_EQ(solutions("c(-4, K)"), (std::vector<std::string>{"neg"}));
}

TEST_F(DesugarTest, AnalyzerHandlesDesugaredControl) {
  compile("sign(X, S) :- (X >= 0 -> S = nonneg ; S = neg).");
  AnalysisSession A(*Program);
  Result<AnalysisResult> R = A.analyze("sign(int, var)");
  ASSERT_TRUE(R) << R.diag().str();
  for (const AnalysisResult::Item &I : R->Items)
    if (I.PredLabel == "sign/2") {
      ASSERT_TRUE(I.Success.has_value());
      EXPECT_EQ(I.Success->str(Syms), "(int, atom)");
      return;
    }
  FAIL() << "sign/2 not analyzed";
}

TEST_F(DesugarTest, PlainProgramsUnchanged) {
  Result<ParsedProgram> P =
      parseProgram("p(X) :- q(X), r(X).\nq(a).\nr(a).", Syms, Arena);
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Clauses.size(), 3u);
}

TEST_F(DesugarTest, AuxiliaryPredicatesGenerated) {
  Result<ParsedProgram> P =
      parseProgram("p :- (a ; b).\na.\nb.", Syms, Arena);
  ASSERT_TRUE(P);
  // Original 3 clauses plus two alternatives of the auxiliary predicate.
  EXPECT_EQ(P->Clauses.size(), 5u);
}

} // namespace
