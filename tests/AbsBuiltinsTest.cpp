//===- tests/AbsBuiltinsTest.cpp - Abstract builtin semantics -------------===//
//
// Each builtin's abstract (success-narrowing) behaviour, exercised
// directly through applyAbsBuiltin — shared by the compiled machine and
// the meta-interpreting baseline.
//
//===----------------------------------------------------------------------===//

#include "absdom/AbsBuiltins.h"
#include "absdom/AbsOps.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

class AbsBuiltinsTest : public ::testing::Test {
protected:
  Cell abs(AbsKind K) { return Cell::ref(St.push(Cell::abs(K))); }
  Cell var() { return Cell::ref(St.pushVar()); }
  Cell atomc(std::string_view N) {
    return Cell::ref(St.push(Cell::atom(Syms.intern(N))));
  }
  Cell intc(int64_t V) { return Cell::ref(St.push(Cell::integer(V))); }
  Cell strc(std::string_view F, std::vector<Cell> Args) {
    int64_t FunAddr =
        St.push(Cell::fun(Syms.intern(F), static_cast<int>(Args.size())));
    for (Cell A : Args)
      St.push(A);
    return Cell::ref(St.push(Cell::str(FunAddr)));
  }
  bool apply(BuiltinId Id, std::vector<Cell> Args) {
    return applyAbsBuiltin(St, Id, Args);
  }
  std::string show(Cell C) { return St.show(C, Syms); }

  SymbolTable Syms;
  Store St;
};

TEST_F(AbsBuiltinsTest, IsNarrowsResultAndExpression) {
  Cell R = var();
  Cell E = strc("+", {var(), intc(1)});
  EXPECT_TRUE(apply(BuiltinId::Is, {R, E}));
  EXPECT_EQ(show(R), "int");
  EXPECT_EQ(show(E), "g+1"); // the expression variable became ground
}

TEST_F(AbsBuiltinsTest, IsFailsOnNonNumericResult) {
  EXPECT_FALSE(apply(BuiltinId::Is, {atomc("a"), intc(1)}));
}

TEST_F(AbsBuiltinsTest, ComparisonsGroundBothSides) {
  Cell A = var(), B = abs(AbsKind::Any);
  EXPECT_TRUE(apply(BuiltinId::ArithLt, {A, B}));
  EXPECT_EQ(show(A), "g");
  EXPECT_EQ(show(B), "g");
}

TEST_F(AbsBuiltinsTest, UnifyMeets) {
  Cell A = abs(AbsKind::Ground), B = abs(AbsKind::AtomT);
  EXPECT_TRUE(apply(BuiltinId::Unify, {A, B}));
  EXPECT_EQ(show(A), "atom");
  EXPECT_FALSE(apply(BuiltinId::Unify, {atomc("x"), intc(1)}));
}

TEST_F(AbsBuiltinsTest, NotUnifyConservative) {
  // Different constants certainly do not unify: succeed, no bindings.
  Cell V = var();
  EXPECT_TRUE(apply(BuiltinId::NotUnify, {V, atomc("a")}));
  EXPECT_EQ(show(V).substr(0, 2), "_G"); // still free
  // Identical constants certainly unify: fail.
  EXPECT_FALSE(apply(BuiltinId::NotUnify, {atomc("a"), atomc("a")}));
  Cell W = var();
  EXPECT_FALSE(apply(BuiltinId::NotUnify, {W, W}));
}

TEST_F(AbsBuiltinsTest, TypeTestsNarrowOrFail) {
  Cell G = abs(AbsKind::Ground);
  EXPECT_TRUE(apply(BuiltinId::AtomP, {G}));
  EXPECT_EQ(show(G), "atom");

  EXPECT_FALSE(apply(BuiltinId::AtomP, {var()}));
  EXPECT_FALSE(apply(BuiltinId::AtomP, {intc(3)}));
  EXPECT_FALSE(apply(BuiltinId::IntegerP, {atomc("a")}));
  EXPECT_TRUE(apply(BuiltinId::IntegerP, {intc(3)}));
  EXPECT_TRUE(apply(BuiltinId::AtomicP, {abs(AbsKind::Const)}));
  EXPECT_FALSE(apply(BuiltinId::AtomicP, {strc("f", {var()})}));
}

TEST_F(AbsBuiltinsTest, VarTest) {
  EXPECT_TRUE(apply(BuiltinId::VarP, {var()}));
  EXPECT_FALSE(apply(BuiltinId::VarP, {abs(AbsKind::NV)}));
  EXPECT_FALSE(apply(BuiltinId::VarP, {atomc("a")}));
  // var(X) on `any` narrows to var.
  Cell A = abs(AbsKind::Any);
  EXPECT_TRUE(apply(BuiltinId::VarP, {A}));
  EXPECT_TRUE(isVarCell(St, A));
}

TEST_F(AbsBuiltinsTest, NonvarTest) {
  EXPECT_FALSE(apply(BuiltinId::NonvarP, {var()}));
  EXPECT_TRUE(apply(BuiltinId::NonvarP, {atomc("a")}));
  Cell A = abs(AbsKind::Any);
  EXPECT_TRUE(apply(BuiltinId::NonvarP, {A}));
  EXPECT_EQ(show(A), "nv");
}

TEST_F(AbsBuiltinsTest, FunctorDecomposes) {
  Cell T = strc("foo", {atomc("a"), var()});
  Cell N = var(), A = var();
  EXPECT_TRUE(apply(BuiltinId::Functor, {T, N, A}));
  EXPECT_EQ(show(N), "foo");
  EXPECT_EQ(show(A), "2");
}

TEST_F(AbsBuiltinsTest, FunctorOnAbstract) {
  Cell T = abs(AbsKind::Any), N = var(), A = var();
  EXPECT_TRUE(apply(BuiltinId::Functor, {T, N, A}));
  EXPECT_EQ(show(T), "nv");
  EXPECT_EQ(show(N), "const");
  EXPECT_EQ(show(A), "int");
}

TEST_F(AbsBuiltinsTest, ArgPreciseAndConservative) {
  Cell T = strc("f", {atomc("a"), intc(2)});
  Cell Out = var();
  EXPECT_TRUE(apply(BuiltinId::Arg, {intc(2), T, Out}));
  EXPECT_EQ(show(Out), "2");
  EXPECT_FALSE(apply(BuiltinId::Arg, {intc(9), T, var()}));
  // Ground but unknown structure: the argument is ground.
  Cell Out2 = var();
  EXPECT_TRUE(
      apply(BuiltinId::Arg, {abs(AbsKind::IntT), abs(AbsKind::Ground),
                             Out2}));
  EXPECT_EQ(show(Out2), "g");
  // arg/3 on a variable term fails.
  EXPECT_FALSE(apply(BuiltinId::Arg, {intc(1), var(), var()}));
}

TEST_F(AbsBuiltinsTest, UnivTypes) {
  Cell T = abs(AbsKind::Ground), L = var();
  EXPECT_TRUE(apply(BuiltinId::Univ, {T, L}));
  EXPECT_EQ(show(L), "g_list");
  Cell T2 = abs(AbsKind::Any), L2 = var();
  EXPECT_TRUE(apply(BuiltinId::Univ, {T2, L2}));
  EXPECT_EQ(show(L2), "any_list");
  EXPECT_EQ(show(T2), "nv");
}

TEST_F(AbsBuiltinsTest, StructEqNarrowsLikeUnify) {
  Cell A = abs(AbsKind::Ground), B = abs(AbsKind::IntT);
  EXPECT_TRUE(apply(BuiltinId::StructEq, {A, B}));
  EXPECT_EQ(show(A), "int");
}

TEST_F(AbsBuiltinsTest, OrderTestsAreNoOps) {
  Cell A = var(), B = var();
  EXPECT_TRUE(apply(BuiltinId::TermLt, {A, B}));
  EXPECT_TRUE(isVarCell(St, A));
  EXPECT_TRUE(apply(BuiltinId::StructNe, {A, B}));
}

TEST_F(AbsBuiltinsTest, OutputBuiltins) {
  EXPECT_TRUE(apply(BuiltinId::Write, {var()}));
  EXPECT_TRUE(apply(BuiltinId::Nl, {}));
  Cell N = var();
  EXPECT_TRUE(apply(BuiltinId::Tab, {N}));
  EXPECT_EQ(show(N), "g");
}

TEST_F(AbsBuiltinsTest, CompoundTest) {
  EXPECT_TRUE(apply(BuiltinId::CompoundP, {strc("f", {var()})}));
  EXPECT_FALSE(apply(BuiltinId::CompoundP, {var()}));
  EXPECT_FALSE(apply(BuiltinId::CompoundP, {atomc("a")}));
  EXPECT_TRUE(apply(BuiltinId::CompoundP, {abs(AbsKind::NV)}));
}

TEST_F(AbsBuiltinsTest, IsFoldsDeterminedExpressions) {
  Cell R = var();
  EXPECT_TRUE(apply(BuiltinId::Is, {R, strc("-", {strc("+", {intc(2), intc(3)}), intc(1)})}));
  EXPECT_EQ(show(R), "4");
  // A determined value meets an existing binding — or fails the builtin.
  EXPECT_TRUE(apply(BuiltinId::Is, {intc(7), strc("+", {intc(3), intc(4)})}));
  EXPECT_FALSE(apply(BuiltinId::Is, {intc(8), strc("+", {intc(3), intc(4)})}));
}

TEST_F(AbsBuiltinsTest, ComparisonChainsDecideOnDeterminedValues) {
  EXPECT_TRUE(apply(BuiltinId::ArithLt, {intc(1), intc(2)}));
  EXPECT_FALSE(apply(BuiltinId::ArithLt, {intc(2), intc(1)}));
  EXPECT_TRUE(apply(BuiltinId::ArithGe, {strc("+", {intc(1), intc(1)}), intc(2)}));
  EXPECT_FALSE(apply(BuiltinId::ArithNe, {intc(3), strc("+", {intc(1), intc(2)})}));
  // Undetermined operands keep the grounding approximation.
  Cell V = var();
  EXPECT_TRUE(apply(BuiltinId::ArithEq, {V, intc(0)}));
  EXPECT_EQ(show(V), "g");
}

TEST_F(AbsBuiltinsTest, FunctorConstructsWithDeterminedNameAndArity) {
  Cell T = var();
  EXPECT_TRUE(apply(BuiltinId::Functor, {T, atomc("f"), intc(2)}));
  EXPECT_EQ(show(T).substr(0, 2), "f(");
  // Arity 0 binds the constant itself.
  Cell T0 = var();
  EXPECT_TRUE(apply(BuiltinId::Functor, {T0, intc(9), intc(0)}));
  EXPECT_EQ(show(T0), "9");
  // Construction against a ground abstraction grounds the fresh args.
  Cell TG = abs(AbsKind::Ground);
  EXPECT_TRUE(apply(BuiltinId::Functor, {TG, atomc("g"), intc(1)}));
  EXPECT_EQ(show(TG), "g(g)");
  // An atom abstraction cannot be a compound.
  EXPECT_FALSE(apply(BuiltinId::Functor,
                     {abs(AbsKind::AtomT), atomc("f"), intc(1)}));
}

TEST_F(AbsBuiltinsTest, ArgFailsOnAtomicAndReadsAbstractLists) {
  EXPECT_FALSE(apply(BuiltinId::Arg, {intc(1), atomc("a"), var()}));
  EXPECT_FALSE(apply(BuiltinId::Arg, {intc(1), intc(3), var()}));
  // arg/3 on an alpha-list: argument 1 is an element instance, argument 2
  // another such list, anything else fails.
  Cell GL = Cell::ref(St.push(
      Cell::abs(AbsKind::List, St.push(Cell::abs(AbsKind::Ground)))));
  Cell Head = var();
  EXPECT_TRUE(apply(BuiltinId::Arg, {intc(1), GL, Head}));
  EXPECT_EQ(show(Head), "g");
  Cell Tail = var();
  EXPECT_TRUE(apply(BuiltinId::Arg, {intc(2), GL, Tail}));
  EXPECT_EQ(show(Tail), "g_list");
  EXPECT_FALSE(apply(BuiltinId::Arg, {intc(3), GL, var()}));
}

TEST_F(AbsBuiltinsTest, UnivDecomposesDeterminedTerms) {
  Cell V = var();
  Cell T = strc("f", {atomc("a"), V});
  Cell L = var();
  EXPECT_TRUE(apply(BuiltinId::Univ, {T, L}));
  EXPECT_EQ(show(L).substr(0, 5), "[f,a,");
  // The list shares the term's cells: narrowing an element narrows the
  // term.
  EXPECT_TRUE(apply(BuiltinId::Unify, {V, intc(1)}));
  EXPECT_EQ(show(T), "f(a,1)");
  Cell LA = var();
  EXPECT_TRUE(apply(BuiltinId::Univ, {atomc("k"), LA}));
  EXPECT_EQ(show(LA), "[k]");
}

TEST_F(AbsBuiltinsTest, UnivConstructsFromDeterminedLists) {
  // X =.. [f, a, Y] narrows X to f(a, Y).
  Cell Y = var();
  Cell X = var();
  Cell Nil = atomc("[]");
  auto cons = [&](Cell H, Cell T) {
    int64_t Base = St.push(H);
    St.push(T);
    return Cell::ref(St.push(Cell::lis(Base)));
  };
  Cell L = cons(atomc("f"), cons(atomc("a"), cons(Y, Nil)));
  EXPECT_TRUE(apply(BuiltinId::Univ, {X, L}));
  EXPECT_EQ(show(X).substr(0, 4), "f(a,");
  // X =.. [a] binds the constant.
  Cell X1 = var();
  EXPECT_TRUE(apply(BuiltinId::Univ, {X1, cons(atomc("a"), Nil)}));
  EXPECT_EQ(show(X1), "a");
  // A non-atom functor for a compound is a definite error: no successes.
  EXPECT_FALSE(apply(BuiltinId::Univ,
                     {var(), cons(intc(1), cons(intc(2), Nil))}));
}

} // namespace
