//===- tests/ServerTest.cpp - Concurrent analysis service tests -----------===//
//
// The AnalysisServer concurrency contracts, made deterministic with the
// lockCurrentStoreForTest hook: holding a slot's writer lock freezes every
// drain against that store, so the tests can stage precise interleavings
// (a leader mid-drain with followers coalescing behind it, a writer
// blocked while a sibling store answers) instead of hoping for them.
//
// The correctness baseline throughout is single-client replay: a fresh
// one-worker server fed the same commands. Byte-equality against it is
// the same gate the CI server-hammer job and bench/ablation_server run.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Server.h"

#include "analyzer/Analyzer.h"
#include "analyzer/Store.h"
#include "compiler/ProgramCompiler.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace awam;

namespace {

AnalysisServer::Config baseConfig(int Workers, uint64_t Cap = 0) {
  AnalysisServer::Config C;
  C.Workers = Workers;
  C.MaxStoreBytes = Cap;
  C.LoadSource = [](const std::string &Spec, std::string &Source,
                    std::string &Err) {
    if (Spec.rfind("bench:", 0) == 0) {
      const BenchmarkProgram *B = findBenchmark(Spec.substr(6));
      if (!B) {
        Err = "unknown benchmark '" + Spec.substr(6) + "'\n";
        return false;
      }
      Source = B->Source;
      return true;
    }
    Err = "cannot open " + Spec + "\n";
    return false;
  };
  return C;
}

/// Single-client reference replay: the response stream of \p Script on a
/// fresh one-worker server.
std::vector<AnalysisServer::Response>
referenceReplay(const std::vector<std::string> &Script) {
  AnalysisServer Ref(baseConfig(1));
  int C = Ref.openClient();
  std::vector<AnalysisServer::Response> Out;
  for (const std::string &Line : Script)
    Out.push_back(Ref.execute(C, Line));
  return Out;
}

template <typename Pred> bool waitFor(Pred P, int Ms = 30000) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
  while (!P()) {
    if (std::chrono::steady_clock::now() > Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

constexpr const char *kQsortEntry = "entry qsort(glist, var, var)";
constexpr const char *kPartEntry = "entry partition(glist, g, var, var)";

TEST(ServerTest, RepeatQueriesRideTheResponseCache) {
  AnalysisServer S(baseConfig(2));
  int C = S.openClient();
  S.execute(C, "load bench:qsort");
  AnalysisServer::Response First = S.execute(C, kQsortEntry);
  ASSERT_TRUE(First.Err.empty()) << First.Err;
  ASSERT_FALSE(First.Out.empty());
  AnalysisServer::Response Again = S.execute(C, kQsortEntry);
  EXPECT_EQ(First.Out, Again.Out);
  AnalysisServer::Stats T = S.stats();
  EXPECT_EQ(T.Queries, 2u);
  EXPECT_EQ(T.CacheHits, 1u);
  EXPECT_EQ(T.Drains, 1u);
}

TEST(ServerTest, DuplicateInFlightQueriesCoalesceToOneDrain) {
  std::vector<AnalysisServer::Response> Ref =
      referenceReplay({"load bench:qsort", kQsortEntry});
  const std::string &Expected = Ref[1].Out;

  AnalysisServer S(baseConfig(4));
  int Locker = S.openClient();
  constexpr int K = 3;
  int Cs[K];
  S.execute(Locker, "load bench:qsort");
  for (int I = 0; I != K; ++I) {
    Cs[I] = S.openClient();
    S.execute(Cs[I], "load bench:qsort");
  }

  // Freeze the store, then ask the same not-yet-cached question K times:
  // exactly one leader registers and blocks on the writer lock, K-1
  // followers coalesce behind its in-flight entry.
  std::unique_lock<std::shared_mutex> Hold =
      S.lockCurrentStoreForTest(Locker);
  ASSERT_TRUE(Hold.owns_lock());

  std::mutex M;
  std::vector<std::string> Outs;
  std::atomic<int> Done{0};
  for (int I = 0; I != K; ++I)
    S.submit(Cs[I], kQsortEntry, [&](const AnalysisServer::Response &R) {
      std::lock_guard<std::mutex> L(M);
      Outs.push_back(R.Out);
      EXPECT_TRUE(R.Err.empty()) << R.Err;
      ++Done;
    });

  ASSERT_TRUE(waitFor([&] { return S.stats().Coalesced == K - 1; }))
      << "followers never coalesced behind the blocked leader";
  EXPECT_EQ(Done.load(), 0) << "a drain completed against a held store";

  Hold.unlock();
  ASSERT_TRUE(waitFor([&] { return Done.load() == K; }));
  for (const std::string &O : Outs)
    EXPECT_EQ(Expected, O);
  AnalysisServer::Stats T = S.stats();
  EXPECT_EQ(T.Drains, 1u) << "coalesced queries must cost one drain";
  EXPECT_EQ(T.CacheHits, 0u);
}

TEST(ServerTest, WritersSerializePerStoreAndStoresRunConcurrently) {
  std::vector<AnalysisServer::Response> QRef =
      referenceReplay({"load bench:qsort", kQsortEntry});
  std::vector<AnalysisServer::Response> NRef =
      referenceReplay({"load bench:nreverse", "entry nreverse(glist, var)"});

  AnalysisServer S(baseConfig(4));
  int CQ = S.openClient(), CN = S.openClient();
  S.execute(CQ, "load bench:qsort");
  S.execute(CN, "load bench:nreverse");

  std::unique_lock<std::shared_mutex> Hold = S.lockCurrentStoreForTest(CQ);
  ASSERT_TRUE(Hold.owns_lock());

  // A writer against the held store must wait ...
  std::atomic<int> QDone{0};
  std::string QOut;
  S.submit(CQ, kQsortEntry, [&](const AnalysisServer::Response &R) {
    QOut = R.Out;
    ++QDone;
  });
  // ... while a writer against a *different* store proceeds concurrently.
  std::atomic<int> NDone{0};
  std::string NOut;
  S.submit(CN, "entry nreverse(glist, var)",
           [&](const AnalysisServer::Response &R) {
             NOut = R.Out;
             ++NDone;
           });
  ASSERT_TRUE(waitFor([&] { return NDone.load() == 1; }))
      << "a sibling store was blocked by an unrelated writer lock";
  EXPECT_EQ(NRef[1].Out, NOut);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(QDone.load(), 0) << "a drain ran against a held store";

  Hold.unlock();
  ASSERT_TRUE(waitFor([&] { return QDone.load() == 1; }));
  EXPECT_EQ(QRef[1].Out, QOut);
}

TEST(ServerTest, EditsReanswerTheEditingClientsOwnEntry) {
  // Two clients share one store but asked different questions; each edit
  // must re-answer the *editing client's* last entry, not whichever query
  // happened to touch the store last.
  std::vector<AnalysisServer::Response> Ref = referenceReplay(
      {"load bench:qsort", kQsortEntry, kPartEntry, "edit partition/4"});

  AnalysisServer S(baseConfig(2));
  int C0 = S.openClient(), C1 = S.openClient();
  S.execute(C0, "load bench:qsort");
  S.execute(C1, "load bench:qsort");
  AnalysisServer::Response R0 = S.execute(C0, kQsortEntry);
  AnalysisServer::Response R1 = S.execute(C1, kPartEntry);
  ASSERT_TRUE(R0.Err.empty() && R1.Err.empty());

  AnalysisServer::Response E0 = S.execute(C0, "edit partition/4");
  AnalysisServer::Response E1 = S.execute(C1, "edit partition/4");
  // Edits are touches: re-answering an entry yields that entry's bytes.
  EXPECT_EQ(R0.Out, E0.Out);
  EXPECT_EQ(R1.Out, E1.Out);
  // And the reference replay agrees on what an edit after kPartEntry says.
  EXPECT_EQ(Ref[3].Out, E1.Out);
}

TEST(ServerTest, EvictedStoreRewarmsByteIdentically) {
  AnalysisServer S(baseConfig(1, /*Cap=*/1));
  int C = S.openClient();
  S.execute(C, "load bench:qsort");
  AnalysisServer::Response First = S.execute(C, kQsortEntry);
  ASSERT_TRUE(First.Err.empty()) << First.Err;

  // Any byte lands over the 1-byte cap, so touching nreverse evicts the
  // idle qsort store (and its memoized responses).
  S.execute(C, "load bench:nreverse");
  S.execute(C, "entry nreverse(glist, var)");
  AnalysisServer::Stats T = S.stats();
  ASSERT_GE(T.Evictions, 1u) << "the byte cap never evicted anything";

  // Touching qsort again re-warms it from cold — same response bytes.
  S.execute(C, "load bench:qsort");
  AnalysisServer::Response Again = S.execute(C, kQsortEntry);
  EXPECT_EQ(First.Out, Again.Out);
  T = S.stats();
  EXPECT_GE(T.Rewarms, 1u);
  EXPECT_EQ(S.stats().CacheHits, 0u)
      << "eviction must drop the response cache with the store";

  // An edit right after re-warming routes through the store's explicit
  // re-entry path (the store is cold; nothing to invalidate).
  S.execute(C, "load bench:qsort");
  AnalysisServer::Response E = S.execute(C, "edit partition/4");
  EXPECT_EQ(First.Out, E.Out);
}

TEST(ServerTest, ExportImportWarmStartsAnEvictedStoreByteIdentically) {
  // Round trip through the bundle registry: answer, export, lose the
  // store to the byte cap, re-warm it cold, import, re-answer. The
  // imported traces warm-start the drain; the bytes must not move.
  AnalysisServer S(baseConfig(1, /*Cap=*/1));
  int C = S.openClient();
  S.execute(C, "load bench:qsort");
  AnalysisServer::Response First = S.execute(C, kQsortEntry);
  ASSERT_TRUE(First.Err.empty()) << First.Err;

  AnalysisServer::Response Ex = S.execute(C, "export warm");
  EXPECT_NE(Ex.Err.find("exported "), std::string::npos) << Ex.Err;
  EXPECT_NE(Ex.Err.find("bundle 'warm'"), std::string::npos) << Ex.Err;
  AnalysisServer::Stats T = S.stats();
  EXPECT_EQ(T.Bundles, 1u);
  EXPECT_GT(T.BundleBytes, 0u);

  // Touching nreverse pushes the idle qsort store over the 1-byte cap.
  S.execute(C, "load bench:nreverse");
  S.execute(C, "entry nreverse(glist, var)");
  ASSERT_GE(S.stats().Evictions, 1u);

  S.execute(C, "load bench:qsort");
  AnalysisServer::Response Im = S.execute(C, "import warm");
  EXPECT_EQ(Im.Err.rfind("imported ", 0), 0u) << Im.Err;
  EXPECT_EQ(Im.Err.rfind("imported 0/", 0), std::string::npos)
      << "nothing banked from a bundle of the same module: " << Im.Err;
  EXPECT_NE(Im.Err.find("(0 stale, 0 unresolved dropped)"),
            std::string::npos)
      << Im.Err;

  AnalysisServer::Response Again = S.execute(C, kQsortEntry);
  EXPECT_EQ(First.Out, Again.Out);
}

TEST(ServerTest, ImportRejectsUnknownTagsAndForeignDomains) {
  AnalysisServer S(baseConfig(1));
  int C = S.openClient();
  S.execute(C, "load bench:qsort");
  S.execute(C, kQsortEntry);

  AnalysisServer::Response Missing = S.execute(C, "import nosuch");
  EXPECT_NE(Missing.Err.find("unknown bundle 'nosuch'"), std::string::npos)
      << Missing.Err;

  ASSERT_TRUE(S.execute(C, "export modesbundle").Out.empty());
  // Same module, pos domain: a different store, and a bundle recorded
  // under "modes" must be refused with the store-level mismatch message.
  S.execute(C, "domain pos");
  AnalysisServer::Response Im = S.execute(C, "import modesbundle");
  EXPECT_NE(Im.Err.find("domain mismatch"), std::string::npos) << Im.Err;
}

TEST(ServerTest, LinkedLoadSharesTheMonolithicStore) {
  // `load main lib` compiles the units separately and links them; the
  // linked fingerprint equals the monolithic compile's, so the slot (and
  // its warm response cache) is shared with `load mono`.
  static const char *kLib = "app([], Ys, Ys).\n"
                            "app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).\n";
  static const char *kUser = "dbl(Xs, Ys) :- app(Xs, Xs, Ys).\n";
  AnalysisServer::Config Cfg = baseConfig(1);
  Cfg.LoadSource = [](const std::string &Spec, std::string &Source,
                      std::string &Err) {
    if (Spec == "src:lib")
      Source = kLib;
    else if (Spec == "src:user")
      Source = kUser;
    else if (Spec == "src:mono")
      Source = std::string(kLib) + kUser;
    else {
      Err = "unknown source '" + Spec + "'\n";
      return false;
    }
    return true;
  };
  AnalysisServer S(Cfg);
  int C = S.openClient();
  AnalysisServer::Response Linked = S.execute(C, "load src:user src:lib");
  EXPECT_NE(Linked.Err.find("loaded src:user src:lib"), std::string::npos)
      << Linked.Err;
  AnalysisServer::Response First = S.execute(C, "entry dbl(glist, var)");
  ASSERT_TRUE(First.Err.empty()) << First.Err;

  AnalysisServer::Response Mono = S.execute(C, "load src:mono");
  EXPECT_NE(Mono.Err.find("reusing warm store"), std::string::npos)
      << "linked and monolithic fingerprints diverged: " << Mono.Err;
  AnalysisServer::Response Again = S.execute(C, "entry dbl(glist, var)");
  EXPECT_EQ(First.Out, Again.Out);
  EXPECT_EQ(S.stats().CacheHits, 1u)
      << "the shared slot's response cache missed";
}

TEST(ServerTest, JournalCompactionPreservesAnswers) {
  const BenchmarkProgram *B = findBenchmark("qsort");
  ASSERT_NE(B, nullptr);
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource(B->Source, Syms, Arena);
  ASSERT_TRUE(bool(P)) << P.diag().str();

  AnalysisStore Store(*P, AnalyzerOptions());
  Result<AnalysisResult> R1 = Store.query("qsort(glist, var, var)");
  ASSERT_TRUE(bool(R1)) << R1.diag().str();
  // A fresh call pattern (not a root or table entry of R1) forces a warm
  // drain that replays R1's banked traces.
  Result<AnalysisResult> R2 = Store.query("qsort(glist, g, var)");
  ASSERT_TRUE(bool(R2)) << R2.diag().str();
  // The warm second query re-banked replayed traces as shared handles, so
  // the bank now holds duplicates for compaction to fold.
  ASSERT_GT(Store.stats().ReplayedRuns, 0u)
      << "second query never replayed — the premise of this test";
  uint64_t Dropped = Store.compactJournals();
  EXPECT_GT(Store.stats().Compactions, 0u);
  EXPECT_GT(Store.stats().CompactedTraces + Dropped, 0u);

  // A warm drain from the compacted bank still answers byte-identically
  // to scratch (the bank is a hint; validation carries correctness).
  Result<AnalysisResult> R3 =
      Store.reanalyze({PredSig{"partition", 4}});
  ASSERT_TRUE(bool(R3)) << R3.diag().str();
  AnalysisSession Scratch(*P);
  Result<AnalysisResult> Want = Scratch.analyze("qsort(glist, g, var)");
  ASSERT_TRUE(bool(Want)) << Want.diag().str();
  EXPECT_EQ(formatAnalysis(*Want, Syms), formatAnalysis(*R3, Syms));
}

TEST(ServerTest, FourWorkerStreamsMatchSingleClientReplay) {
  // A miniature in-process hammer: interleaved per-client scripts over
  // shared and distinct stores, each client's response stream compared to
  // a single-client replay of its script alone.
  const std::vector<std::vector<std::string>> Scripts = {
      {"load bench:qsort", kQsortEntry, "edit partition/4", kPartEntry},
      {"load bench:qsort", kPartEntry, kQsortEntry, "edit qsort/3"},
      {"load bench:nreverse", "entry nreverse(glist, var)",
       "edit concatenate/3", "entry nreverse(glist, var)"},
      {"load bench:qsort", "modes", kQsortEntry, "modes"},
  };
  std::vector<std::vector<AnalysisServer::Response>> Want;
  for (const std::vector<std::string> &Script : Scripts)
    Want.push_back(referenceReplay(Script));

  AnalysisServer S(baseConfig(4));
  size_t N = Scripts.size();
  std::vector<int> Clients(N);
  std::vector<std::vector<std::string>> Got(N);
  std::mutex M;
  std::atomic<size_t> Done{0};
  size_t Total = 0;
  for (size_t I = 0; I != N; ++I)
    Clients[I] = S.openClient();
  // Round-robin submission interleaves the scripts across the pool.
  for (size_t Step = 0;; ++Step) {
    bool Any = false;
    for (size_t I = 0; I != N; ++I) {
      if (Step >= Scripts[I].size())
        continue;
      Any = true;
      ++Total;
      S.submit(Clients[I], Scripts[I][Step],
               [&, I](const AnalysisServer::Response &R) {
                 std::lock_guard<std::mutex> L(M);
                 Got[I].push_back(R.Out);
                 ++Done;
               });
    }
    if (!Any)
      break;
  }
  ASSERT_TRUE(waitFor([&] { return Done.load() == Total; }));
  for (size_t I = 0; I != N; ++I) {
    ASSERT_EQ(Want[I].size(), Got[I].size());
    for (size_t J = 0; J != Got[I].size(); ++J)
      EXPECT_EQ(Want[I][J].Out, Got[I][J])
          << "client " << I << " line " << J << " diverged from replay";
  }
}

} // namespace
