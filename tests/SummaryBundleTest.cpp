//===- tests/SummaryBundleTest.cpp - Summary export/import tests ----------===//
//
// The bundle contract: exporting a library store's summaries and importing
// them into a store over a linked (library + user) program warm-starts the
// user analysis — library activations replay from the imported traces —
// while every answer stays byte-identical to a scratch analysis of the
// linked program. Staleness (the library changed between export and
// import) drops the affected traces instead of corrupting anything, and a
// bundle round-trips through its byte format exactly.
//
//===----------------------------------------------------------------------===//

#include "analyzer/SummaryBundle.h"

#include "analyzer/Session.h"
#include "compiler/ModuleLink.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

constexpr std::string_view kLibSource = R"(
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
rev([], []).
rev([X|Xs], R) :- rev(Xs, T), app(T, [X], R).
len([], z).
len([_|Xs], s(N)) :- len(Xs, N).
)";

// The user entry reaches the library with a glist argument, so its call
// patterns coincide with the pre-analyzed kLibSpecs below — that is what
// makes the imported traces replayable (a bundle is a warm-start hint
// keyed by exact (predicate, call pattern) pairs).
constexpr std::string_view kUserSource = R"(
main(Xs, R, N) :- rev(Xs, R), len(R, N).
)";
constexpr std::string_view kUserSpec = "main(glist, var, var)";

/// The library pre-analysis entries: the call patterns user code reaches
/// the library with.
const std::vector<std::string> kLibSpecs = {"rev(glist, var)",
                                            "len(glist, var)"};

class SummaryBundleTest : public ::testing::Test {
protected:
  CompiledProgram compile(std::string_view Source, SymbolTable &S,
                          TermArena &A) {
    Result<CompiledProgram> P = compileSource(Source, S, A);
    EXPECT_TRUE(P) << (P ? "" : P.diag().str());
    return P.take();
  }

  /// Analyzes the library standalone and exports its bundle bytes.
  std::string exportLibBundle(const CompiledProgram &Lib,
                              AnalyzerOptions O = {}) {
    O.Persistent = true;
    AnalysisSession S(Lib, O);
    for (const std::string &Spec : kLibSpecs) {
      Result<AnalysisResult> R = S.analyze(Spec);
      EXPECT_TRUE(R) << (R ? "" : R.diag().str());
    }
    Result<std::string> Bytes = S.exportSummaries();
    EXPECT_TRUE(Bytes) << (Bytes ? "" : Bytes.diag().str());
    return Bytes ? *Bytes : std::string();
  }

  CompiledProgram linkUser(const CompiledProgram &Lib,
                           const CompiledProgram &User) {
    Result<LinkedProgram> L =
        linkPrograms({{&Lib, "lib.pl"}, {&User, "user.pl"}});
    EXPECT_TRUE(L) << (L ? "" : L.diag().str());
    EXPECT_TRUE(L->UnresolvedImports.empty());
    return std::move(L->Program);
  }
};

TEST_F(SummaryBundleTest, BytesRoundTripExactly) {
  SymbolTable Syms;
  TermArena Arena;
  CompiledProgram Lib = compile(kLibSource, Syms, Arena);
  std::string Bytes = exportLibBundle(Lib);
  ASSERT_FALSE(Bytes.empty());

  Result<SummaryBundle> B = SummaryBundle::deserialize(Bytes, Syms);
  ASSERT_TRUE(B) << B.diag().str();
  EXPECT_EQ(B->DomainName, "modes");
  EXPECT_EQ(B->DepthLimit, kDefaultDepthLimit);
  EXPECT_EQ(B->ModuleFingerprint, Lib.Module->fingerprint());
  EXPECT_FALSE(B->Summaries.empty());
  EXPECT_FALSE(B->Traces.empty());
  EXPECT_EQ(B->serialize(Syms), Bytes);
}

TEST_F(SummaryBundleTest, CorruptBytesRejected) {
  SymbolTable Syms;
  EXPECT_FALSE(SummaryBundle::deserialize("not a bundle", Syms));
  EXPECT_FALSE(SummaryBundle::deserialize("", Syms));
  TermArena Arena;
  CompiledProgram Lib = compile(kLibSource, Syms, Arena);
  std::string Bytes = exportLibBundle(Lib);
  // Truncation anywhere must error, never crash or mis-parse.
  for (size_t Cut : {size_t(4), size_t(9), Bytes.size() / 2,
                     Bytes.size() - 1})
    EXPECT_FALSE(
        SummaryBundle::deserialize(std::string_view(Bytes).substr(0, Cut),
                                   Syms))
        << "cut at " << Cut;
}

TEST_F(SummaryBundleTest, ImportWarmStartsByteIdentical) {
  SymbolTable Syms;
  TermArena Arena;
  CompiledProgram Lib = compile(kLibSource, Syms, Arena);
  CompiledProgram User = compile(kUserSource, Syms, Arena);
  std::string Bytes = exportLibBundle(Lib);
  CompiledProgram Linked = linkUser(Lib, User);

  AnalyzerOptions O;
  O.Persistent = true;

  // Scratch: the linked program analyzed from nothing.
  AnalysisSession Scratch(Linked, O);
  Result<AnalysisResult> LS = Scratch.analyze(kLibSpecs[0]);
  ASSERT_TRUE(LS) << LS.diag().str();
  Result<AnalysisResult> RS = Scratch.analyze(kUserSpec);
  ASSERT_TRUE(RS) << RS.diag().str();

  // Warm: same program, library bundle imported first.
  AnalysisSession Warm(Linked, O);
  Result<AnalysisStore::ImportStats> IS = Warm.importSummaries(Bytes);
  ASSERT_TRUE(IS) << IS.diag().str();
  EXPECT_GT(IS->Banked, 0u);
  EXPECT_EQ(IS->DroppedStale, 0u);
  EXPECT_EQ(IS->DroppedUnresolved, 0u);

  // A library entry warm-starts from the imported traces: replay aligns
  // root pops against the bundle's recorded root runs of that (pred,
  // call) pair, so this query replays rather than executes.
  Result<AnalysisResult> LW = Warm.analyze(kLibSpecs[0]);
  ASSERT_TRUE(LW) << LW.diag().str();
  EXPECT_EQ(formatAnalysis(*LW, Syms), formatAnalysis(*LS, Syms));
  ASSERT_NE(Warm.store(), nullptr);
  const AnalysisStore::Stats &St = Warm.store()->stats();
  EXPECT_EQ(St.WarmQueries, 1u);
  EXPECT_EQ(St.ColdQueries, 0u);
  EXPECT_GT(St.ReplayedRuns, 0u);
  EXPECT_EQ(St.BundlesImported, 1u);

  // The user entry — whose root the bundle has never seen — still comes
  // out byte-identical to scratch; imports are hints, never answers.
  Result<AnalysisResult> RW = Warm.analyze(kUserSpec);
  ASSERT_TRUE(RW) << RW.diag().str();
  EXPECT_EQ(formatAnalysis(*RW, Syms), formatAnalysis(*RS, Syms));
}

TEST_F(SummaryBundleTest, ImportAcrossSymbolTables) {
  // Export from one process-world, import into a fresh SymbolTable: the
  // byte format carries names, not table-local ids.
  std::string Bytes;
  {
    SymbolTable LibSyms;
    TermArena LibArena;
    CompiledProgram Lib = compile(kLibSource, LibSyms, LibArena);
    Bytes = exportLibBundle(Lib);
  }
  SymbolTable Syms;
  TermArena Arena;
  CompiledProgram Lib = compile(kLibSource, Syms, Arena);
  CompiledProgram User = compile(kUserSource, Syms, Arena);
  CompiledProgram Linked = linkUser(Lib, User);

  AnalyzerOptions O;
  O.Persistent = true;
  AnalysisSession Scratch(Linked, O);
  Result<AnalysisResult> RS = Scratch.analyze(kUserSpec);
  ASSERT_TRUE(RS) << RS.diag().str();

  AnalysisSession Warm(Linked, O);
  Result<AnalysisStore::ImportStats> IS = Warm.importSummaries(Bytes);
  ASSERT_TRUE(IS) << IS.diag().str();
  EXPECT_GT(IS->Banked, 0u);
  Result<AnalysisResult> RW = Warm.analyze(kUserSpec);
  ASSERT_TRUE(RW) << RW.diag().str();
  EXPECT_EQ(formatAnalysis(*RW, Syms), formatAnalysis(*RS, Syms));
}

TEST_F(SummaryBundleTest, StaleLibraryTracesDropped) {
  SymbolTable Syms;
  TermArena Arena;
  CompiledProgram LibV1 = compile(kLibSource, Syms, Arena);
  std::string Bytes = exportLibBundle(LibV1);

  // The library changed between export and import: rev/2 now reverses
  // into an accumulator (different clause code, same signature).
  constexpr std::string_view kLibV2 = R"(
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
rev(Xs, R) :- rev_acc(Xs, [], R).
rev_acc([], Acc, Acc).
rev_acc([X|Xs], Acc, R) :- rev_acc(Xs, [X|Acc], R).
len([], z).
len([_|Xs], s(N)) :- len(Xs, N).
)";
  CompiledProgram LibV2 = compile(kLibV2, Syms, Arena);
  CompiledProgram User = compile(kUserSource, Syms, Arena);
  CompiledProgram Linked = linkUser(LibV2, User);

  AnalyzerOptions O;
  O.Persistent = true;
  AnalysisSession Warm(Linked, O);
  Result<AnalysisStore::ImportStats> IS = Warm.importSummaries(Bytes);
  ASSERT_TRUE(IS) << IS.diag().str();
  // rev/2's code fingerprint differs, so its traces drop; len/2 and app/3
  // are unchanged and still bank.
  EXPECT_GT(IS->DroppedStale, 0u);
  EXPECT_GT(IS->Banked, 0u);

  // Answers still match a scratch analysis of the new linked program.
  AnalysisSession Scratch(Linked, O);
  Result<AnalysisResult> RS = Scratch.analyze(kUserSpec);
  Result<AnalysisResult> RW = Warm.analyze(kUserSpec);
  ASSERT_TRUE(RS) << RS.diag().str();
  ASSERT_TRUE(RW) << RW.diag().str();
  EXPECT_EQ(formatAnalysis(*RW, Syms), formatAnalysis(*RS, Syms));
}

TEST_F(SummaryBundleTest, DomainAndDepthMismatchRejected) {
  SymbolTable Syms;
  TermArena Arena;
  CompiledProgram Lib = compile(kLibSource, Syms, Arena);
  std::string Bytes = exportLibBundle(Lib);

  CompiledProgram User = compile(kUserSource, Syms, Arena);
  CompiledProgram Linked = linkUser(Lib, User);

  {
    AnalyzerOptions O;
    O.Persistent = true;
    O.DomainName = "pos";
    AnalysisSession S(Linked, O);
    Result<AnalysisStore::ImportStats> IS = S.importSummaries(Bytes);
    ASSERT_FALSE(IS);
    EXPECT_NE(IS.diag().str().find("domain mismatch"), std::string::npos);
  }
  {
    AnalyzerOptions O;
    O.Persistent = true;
    O.DepthLimit = 3;
    AnalysisSession S(Linked, O);
    Result<AnalysisStore::ImportStats> IS = S.importSummaries(Bytes);
    ASSERT_FALSE(IS);
    EXPECT_NE(IS.diag().str().find("depth-limit mismatch"),
              std::string::npos);
  }
}

TEST_F(SummaryBundleTest, EmptyStoreExportsValidEmptyBundle) {
  SymbolTable Syms;
  TermArena Arena;
  CompiledProgram Lib = compile(kLibSource, Syms, Arena);
  AnalyzerOptions O;
  O.Persistent = true;
  AnalysisSession S(Lib, O);
  Result<std::string> Bytes = S.exportSummaries();
  ASSERT_TRUE(Bytes) << Bytes.diag().str();
  Result<SummaryBundle> B = SummaryBundle::deserialize(*Bytes, Syms);
  ASSERT_TRUE(B) << B.diag().str();
  EXPECT_TRUE(B->Traces.empty());
  EXPECT_TRUE(B->Summaries.empty());

  // Importing an empty bundle is a harmless no-op.
  AnalysisSession S2(Lib, O);
  Result<AnalysisStore::ImportStats> IS = S2.importSummaries(*Bytes);
  ASSERT_TRUE(IS) << IS.diag().str();
  EXPECT_EQ(IS->Banked, 0u);
  Result<AnalysisResult> R = S2.analyze(kLibSpecs[0]);
  EXPECT_TRUE(R) << (R ? "" : R.diag().str());
}

TEST_F(SummaryBundleTest, ReexportComposesBundles) {
  // lib -> bundle -> user store; the user store's own export contains
  // both its results and the surviving imported traces.
  SymbolTable Syms;
  TermArena Arena;
  CompiledProgram Lib = compile(kLibSource, Syms, Arena);
  CompiledProgram User = compile(kUserSource, Syms, Arena);
  std::string LibBytes = exportLibBundle(Lib);
  CompiledProgram Linked = linkUser(Lib, User);

  AnalyzerOptions O;
  O.Persistent = true;
  AnalysisSession S(Linked, O);
  ASSERT_TRUE(S.importSummaries(LibBytes));
  ASSERT_TRUE(S.analyze(kUserSpec));
  Result<std::string> Again = S.exportSummaries();
  ASSERT_TRUE(Again) << Again.diag().str();
  Result<SummaryBundle> B = SummaryBundle::deserialize(*Again, Syms);
  ASSERT_TRUE(B) << B.diag().str();
  EXPECT_EQ(B->ModuleFingerprint, Linked.Module->fingerprint());
  // main/2's summary is in there alongside the library's.
  bool SawMain = false, SawRev = false;
  for (const SummaryBundle::Summary &Sum : B->Summaries) {
    SawMain |= Sum.Sig.Name == "main";
    SawRev |= Sum.Sig.Name == "rev";
  }
  EXPECT_TRUE(SawMain);
  EXPECT_TRUE(SawRev);
}

} // namespace
