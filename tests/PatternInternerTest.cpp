//===- tests/PatternInternerTest.cpp - Hash-consing invariants ------------===//
//
// The interner's contract: intern is idempotent, ids are equal iff the
// patterns are structurally equal (including aliased/shared-node
// patterns), and the memoized lattice operations agree with the uncached
// lubPatterns/patternLeq on every pair of patterns an analysis produces.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "analyzer/PatternInterner.h"
#include "RandomProgramGen.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

TEST(PatternInternerTest, InternIsIdempotent) {
  PatternInterner In;
  Pattern P = makeEntryPattern({PatKind::GroundP, PatKind::VarP});
  PatternId A = In.intern(P);
  PatternId B = In.intern(P);
  EXPECT_EQ(A, B);
  EXPECT_EQ(In.size(), 1u);
  EXPECT_EQ(In.stats().InternMisses, 1u);
  EXPECT_EQ(In.stats().InternHits, 1u);
  EXPECT_TRUE(In.pattern(A) == PatternRef(P));
}

TEST(PatternInternerTest, DistinctPatternsGetDistinctIds) {
  PatternInterner In;
  PatternId A = In.intern(makeEntryPattern({PatKind::GroundP}));
  PatternId B = In.intern(makeEntryPattern({PatKind::AnyP}));
  PatternId C = In.intern(makeEntryPattern({PatKind::GroundP, PatKind::AnyP}));
  EXPECT_NE(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(B, C);
  EXPECT_EQ(In.size(), 3u);
}

TEST(PatternInternerTest, AliasedPatternsInternByStructure) {
  // (X, X) with both roots sharing one variable node is a different
  // pattern from (X, Y) with two distinct variable nodes — and the same
  // pattern as any other two-roots-one-shared-node variable pattern.
  Pattern Shared;
  Shared.Nodes.push_back({PatKind::VarP, 0, 0, 0, 0});
  Shared.Roots = {0, 0};

  Pattern Fresh;
  Fresh.Nodes.push_back({PatKind::VarP, 0, 0, 0, 0});
  Fresh.Nodes.push_back({PatKind::VarP, 0, 0, 0, 0});
  Fresh.Roots = {0, 1};

  PatternInterner In;
  PatternId SId = In.intern(Shared);
  PatternId FId = In.intern(Fresh);
  EXPECT_NE(SId, FId);

  Pattern Shared2;
  Shared2.Nodes.push_back({PatKind::VarP, 0, 0, 0, 0});
  Shared2.Roots = {0, 0};
  EXPECT_EQ(In.intern(Shared2), SId);
}

TEST(PatternInternerTest, SharedNodeLayoutIndependence) {
  // f(X) twice, sharing the argument node, built with two different
  // ChildStore layouts: structural equality (and therefore interning)
  // must not depend on ChildBegin placement.
  Pattern A;
  A.Nodes.push_back({PatKind::StrP, 7, 0, 0, 1}); // f/1, child slice [0,1)
  A.Nodes.push_back({PatKind::VarP, 0, 0, 0, 0});
  A.ChildStore = {1};
  A.Roots = {0, 0};

  Pattern B;
  B.Nodes.push_back({PatKind::StrP, 7, 0, 1, 1}); // same, slice [1,2)
  B.Nodes.push_back({PatKind::VarP, 0, 0, 0, 0});
  B.ChildStore = {99, 1}; // slot 0 unused by any node
  B.Roots = {0, 0};

  ASSERT_TRUE(A == B);
  PatternInterner In;
  EXPECT_EQ(In.intern(A), In.intern(B));
}

/// Collects every distinct pattern an analysis of a random program
/// produces (calling and success patterns of all entries).
std::vector<Pattern> analysisPatterns(unsigned Seed) {
  std::string Source = testgen::generateProgram(Seed);
  SymbolTable Syms;
  TermArena Arena;
  Result<ParsedProgram> Parsed = parseProgram(Source, Syms, Arena);
  if (!Parsed)
    return {};
  Result<CompiledProgram> Compiled = compileProgram(*Parsed, Syms);
  if (!Compiled)
    return {};

  std::vector<Pattern> Out;
  for (const ParsedClause &C : Parsed->Clauses) {
    std::string Name(Syms.name(C.Head->functor()));
    if (Name.starts_with("$"))
      continue;
    int Arity = C.Head->isStruct() ? C.Head->arity() : 0;
    AnalysisSession A(*Compiled);
    Result<AnalysisResult> R = A.analyze(
        Name, makeEntryPattern(std::vector<PatKind>(Arity, PatKind::AnyP)));
    if (!R)
      continue;
    for (const AnalysisResult::Item &I : R->Items) {
      Out.push_back(I.Call);
      if (I.Success)
        Out.push_back(*I.Success);
    }
  }
  return Out;
}

class InternerAgreementTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(InternerAgreementTest, MemoizedLatticeOpsMatchUncached) {
  std::vector<Pattern> Pats = analysisPatterns(GetParam());

  PatternInterner In;
  std::vector<PatternId> Ids;
  for (const Pattern &P : Pats)
    Ids.push_back(In.internNormalized(P));

  // Id equality iff structural equality — on normalized patterns the
  // interner sees, i.e. after the canonical re-run internNormalized does.
  for (size_t I = 0; I != Pats.size(); ++I)
    for (size_t J = 0; J != Pats.size(); ++J)
      EXPECT_EQ(Ids[I] == Ids[J],
                Pattern(In.pattern(Ids[I])) == Pattern(In.pattern(Ids[J])))
          << "patterns " << I << " and " << J;

  // Memoized lub/leq agree with the uncached reference implementation —
  // queried twice, so the second round is answered from the memo.
  for (int Round = 0; Round != 2; ++Round)
    for (size_t I = 0; I != Pats.size(); ++I)
      for (size_t J = 0; J != Pats.size(); ++J) {
        Pattern A(In.pattern(Ids[I]));
        Pattern B(In.pattern(Ids[J]));
        if (A.Roots.size() != B.Roots.size())
          continue; // lub requires equal arity
        Pattern Ref = lubPatterns(A, B);
        PatternId MemoId = In.lub(Ids[I], Ids[J]);
        EXPECT_TRUE(Pattern(In.pattern(MemoId)) == Ref)
            << "lub mismatch at " << I << ", " << J << " round " << Round;
        EXPECT_EQ(In.leq(Ids[I], Ids[J]), patternLeq(A, B))
            << "leq mismatch at " << I << ", " << J << " round " << Round;
      }

  // The second round hit the caches: misses cannot exceed one per
  // distinct queried pair.
  EXPECT_GE(In.stats().LubCacheHits, In.stats().LubCacheMisses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternerAgreementTest,
                         ::testing::Range(0u, 12u));

} // namespace
