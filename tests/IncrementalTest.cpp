//===- tests/IncrementalTest.cpp - Incremental re-analysis tests ----------===//
//
// AnalysisSession::reanalyze() must be invisible in the result: on every
// edit, the re-analysis — table, counters, formatted report — is
// byte-identical to a from-scratch analyze() of the edited program, at
// one thread and under the parallel driver, while replaying (not
// executing) the activations the edit did not disturb. This suite pins
// that identity on all Table 1 benchmarks, on chained edits, and on
// randomized clause-level edit sequences, plus the replay-savings
// acceptance bar (strictly fewer executed activations than scratch on
// most benchmarks).
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "programs/Benchmarks.h"
#include "RandomProgramGen.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace awam;

namespace {

AnalyzerOptions incOptions(int Threads) {
  AnalyzerOptions O;
  O.Incremental = true;
  O.NumThreads = Threads;
  return O;
}

/// Everything the identity contract covers: the formatted reports plus
/// the thread-count-invariant counters. Probe and interner statistics are
/// deliberately absent (replay probes the table less; the report does not
/// print them).
std::string fingerprint(const AnalysisResult &R, const SymbolTable &Syms) {
  std::string F = formatAnalysis(R, Syms);
  F += formatModes(R, Syms);
  F += "\niters=" + std::to_string(R.Iterations);
  F += " conv=" + std::to_string(R.Converged);
  F += " instr=" + std::to_string(R.Instructions);
  F += " acts=" + std::to_string(R.Counters.ActivationRuns);
  F += " runs=" + std::to_string(R.Counters.SchedulerRuns);
  F += " edges=" + std::to_string(R.Counters.DepEdges);
  return F;
}

std::unique_ptr<CompiledProgram> compileOrDie(const std::string &Source,
                                              SymbolTable &Syms,
                                              TermArena &Arena) {
  Result<CompiledProgram> P = compileSource(Source, Syms, Arena);
  EXPECT_TRUE(P) << P.diag().str() << "\n--- source ---\n" << Source;
  if (!P)
    return nullptr;
  return std::make_unique<CompiledProgram>(P.take());
}

class IncrementalTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalTest, TouchEditIdentityOnAllBenchmarks) {
  // Re-analysis after marking main/0 edited (every benchmark defines it)
  // with the program unchanged: the report and counters must match the
  // original run exactly, and — since only main's own traces invalidate —
  // most of the drain must replay.
  const int Threads = GetParam();
  int Checked = 0, StrictlyFewer = 0;
  uint64_t TotalReplayed = 0;
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    SymbolTable Syms;
    TermArena Arena;
    std::unique_ptr<CompiledProgram> P =
        compileOrDie(std::string(B.Source), Syms, Arena);
    ASSERT_NE(P, nullptr) << B.Name;

    AnalysisSession S(*P, incOptions(Threads));
    Result<AnalysisResult> R0 = S.analyze(B.EntrySpec);
    ASSERT_TRUE(R0) << B.Name << ": " << R0.diag().str();

    Result<AnalysisResult> R1 = S.reanalyze({PredSig{"main", 0}});
    ASSERT_TRUE(R1) << B.Name << ": " << R1.diag().str();
    EXPECT_EQ(fingerprint(*R0, Syms), fingerprint(*R1, Syms)) << B.Name;

    ASSERT_NE(S.reanalyzeStats(), nullptr) << B.Name;
    const IncrementalScheduler::ReanalyzeStats &RS = *S.reanalyzeStats();
    EXPECT_EQ(RS.ExecutedActivations + RS.ReplayedActivations,
              R0->Counters.ActivationRuns)
        << B.Name;
    EXPECT_EQ(RS.PrevEntries, R0->Items.size()) << B.Name;
    if (RS.ExecutedActivations < R0->Counters.ActivationRuns)
      ++StrictlyFewer;
    TotalReplayed += RS.ReplayedRuns;
    ++Checked;
  }
  EXPECT_EQ(Checked, 11);
  // The acceptance bar: strictly fewer re-executed activations than a
  // from-scratch run on at least 9 of the 11 benchmarks.
  EXPECT_GE(StrictlyFewer, 9);
  EXPECT_GT(TotalReplayed, 0u);
}

TEST_P(IncrementalTest, RealEditIdentityOnAllBenchmarks) {
  // Append a clause to main/0 of every benchmark and reanalyze through
  // the program-diffing overload; must match a scratch session on the
  // edited program byte-for-byte.
  const int Threads = GetParam();
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    SymbolTable Syms;
    TermArena Arena;
    std::unique_ptr<CompiledProgram> P0 =
        compileOrDie(std::string(B.Source), Syms, Arena);
    ASSERT_NE(P0, nullptr) << B.Name;

    AnalysisSession S(*P0, incOptions(Threads));
    Result<AnalysisResult> R0 = S.analyze(B.EntrySpec);
    ASSERT_TRUE(R0) << B.Name << ": " << R0.diag().str();

    std::string EditedSrc = std::string(B.Source) + "\nmain.\n";
    TermArena Arena1;
    std::unique_ptr<CompiledProgram> P1 =
        compileOrDie(EditedSrc, Syms, Arena1);
    ASSERT_NE(P1, nullptr) << B.Name;

    Result<AnalysisResult> RInc = S.reanalyze(*P1);
    ASSERT_TRUE(RInc) << B.Name << ": " << RInc.diag().str();

    AnalysisSession Scratch(*P1, incOptions(Threads));
    Result<AnalysisResult> RScr = Scratch.analyze(B.EntrySpec);
    ASSERT_TRUE(RScr) << B.Name << ": " << RScr.diag().str();
    EXPECT_EQ(fingerprint(*RScr, Syms), fingerprint(*RInc, Syms)) << B.Name;
  }
}

TEST_P(IncrementalTest, UneditedRecompileReplaysEverything) {
  // Recompiling the identical source against the same symbol table diffs
  // to an empty edit set; every single pop must then replay.
  SymbolTable Syms;
  TermArena A0, A1;
  const std::string Src =
      "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
      "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n";
  std::unique_ptr<CompiledProgram> P0 = compileOrDie(Src, Syms, A0);
  std::unique_ptr<CompiledProgram> P1 = compileOrDie(Src, Syms, A1);
  ASSERT_NE(P0, nullptr);
  ASSERT_NE(P1, nullptr);

  AnalysisSession S(*P0, incOptions(GetParam()));
  Result<AnalysisResult> R0 = S.analyze("nrev(glist, var)");
  ASSERT_TRUE(R0) << R0.diag().str();

  Result<AnalysisResult> R1 = S.reanalyze(*P1);
  ASSERT_TRUE(R1) << R1.diag().str();
  EXPECT_EQ(fingerprint(*R0, Syms), fingerprint(*R1, Syms));
  ASSERT_NE(S.reanalyzeStats(), nullptr);
  EXPECT_EQ(S.reanalyzeStats()->ExecutedRuns, 0u);
  EXPECT_GT(S.reanalyzeStats()->ReplayedRuns, 0u);
  EXPECT_EQ(S.reanalyzeStats()->ConeEntries, 0u);
}

TEST(IncrementalWarmDrainTest, ParallelWarmDrainByteIdenticalOnAllBenchmarks) {
  // Tentpole: reanalyze's journal-replay validation fans out across the
  // warm pool. At every WarmThreads setting the reanalysis answer and the
  // thread-invariant replay/execute split must be identical, and the
  // speculative-validation accounting must balance.
  uint64_t TotalBatches = 0, TotalSpecReplays = 0;
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    std::string Fp1;
    uint64_t Replayed1 = 0, Executed1 = 0;
    for (int WarmThreads : {1, 4}) {
      SymbolTable Syms;
      TermArena Arena;
      std::unique_ptr<CompiledProgram> P =
          compileOrDie(std::string(B.Source), Syms, Arena);
      ASSERT_NE(P, nullptr) << B.Name;

      AnalyzerOptions O = incOptions(1);
      O.WarmThreads = WarmThreads;
      AnalysisSession S(*P, O);
      Result<AnalysisResult> R0 = S.analyze(B.EntrySpec);
      ASSERT_TRUE(R0) << B.Name << ": " << R0.diag().str();
      Result<AnalysisResult> R1 = S.reanalyze({PredSig{"main", 0}});
      ASSERT_TRUE(R1) << B.Name << ": " << R1.diag().str();

      ASSERT_NE(S.reanalyzeStats(), nullptr) << B.Name;
      const IncrementalScheduler::ReanalyzeStats &RS = *S.reanalyzeStats();
      EXPECT_EQ(RS.SpecCommitted + RS.SpecDiscarded, RS.SpecReplays)
          << B.Name << " warm=" << WarmThreads;
      if (WarmThreads == 1) {
        Fp1 = fingerprint(*R1, Syms);
        Replayed1 = RS.ReplayedRuns;
        Executed1 = RS.ExecutedRuns;
      } else {
        // Same source, fresh symbol table: the formatted fingerprint is
        // deterministic, so string equality is byte identity.
        EXPECT_EQ(Fp1, fingerprint(*R1, Syms)) << B.Name;
        EXPECT_EQ(Replayed1, RS.ReplayedRuns) << B.Name;
        EXPECT_EQ(Executed1, RS.ExecutedRuns) << B.Name;
        TotalBatches += RS.ReplayBatches;
        TotalSpecReplays += RS.SpecReplays;
      }
    }
  }
  // The fan-out must actually engage somewhere in the suite — otherwise
  // this tests only the sequential drain.
  EXPECT_GT(TotalBatches, 0u);
  EXPECT_GT(TotalSpecReplays, 0u);
}

TEST_P(IncrementalTest, ChainedEditsMatchScratchEachStep) {
  // A chain of reanalyze() calls, each recording for the next: every step
  // must match a scratch analysis of that step's program.
  SymbolTable Syms;
  std::vector<std::unique_ptr<TermArena>> Arenas;
  std::vector<std::unique_ptr<CompiledProgram>> Programs;
  auto compileKeep = [&](const std::string &Src) -> CompiledProgram * {
    Arenas.push_back(std::make_unique<TermArena>());
    std::unique_ptr<CompiledProgram> P =
        compileOrDie(Src, Syms, *Arenas.back());
    if (!P)
      return nullptr;
    Programs.push_back(std::move(P));
    return Programs.back().get();
  };

  const std::string Base = "len([], 0). len([_|T], N) :- len(T, M), N is M + 1.\n"
                           "dup([], []). dup([H|T], [H, H|R]) :- dup(T, R).\n"
                           "main(L, N) :- dup(L, D), len(D, N).\n";
  CompiledProgram *P0 = compileKeep(Base);
  ASSERT_NE(P0, nullptr);
  AnalysisSession S(*P0, incOptions(GetParam()));
  Result<AnalysisResult> R = S.analyze("main(glist, var)");
  ASSERT_TRUE(R) << R.diag().str();

  const std::string Edits[] = {
      // Step 1: extra dup clause (reachable predicate changes).
      Base + "dup([X], [X]).\n",
      // Step 2: on top of step 1, len gains a shortcut clause.
      Base + "dup([X], [X]).\nlen([_], 1).\n",
      // Step 3: main itself changes.
      Base + "dup([X], [X]).\nlen([_], 1).\nmain(L, N) :- len(L, N).\n",
  };
  for (const std::string &Src : Edits) {
    CompiledProgram *P = compileKeep(Src);
    ASSERT_NE(P, nullptr);
    Result<AnalysisResult> RInc = S.reanalyze(*P);
    ASSERT_TRUE(RInc) << RInc.diag().str();

    AnalysisSession Scratch(*P, incOptions(GetParam()));
    Result<AnalysisResult> RScr = Scratch.analyze("main(glist, var)");
    ASSERT_TRUE(RScr) << RScr.diag().str();
    EXPECT_EQ(fingerprint(*RScr, Syms), fingerprint(*RInc, Syms)) << Src;
  }
}

TEST_P(IncrementalTest, ReanalyzeWithoutJournalFallsBackToScratch) {
  // Incremental off: reanalyze() must still give the right (scratch)
  // answer — just without replay savings.
  SymbolTable Syms;
  TermArena Arena;
  std::unique_ptr<CompiledProgram> P =
      compileOrDie("p(a). q(X) :- p(X).\n", Syms, Arena);
  ASSERT_NE(P, nullptr);
  AnalyzerOptions O;
  O.NumThreads = GetParam(); // Incremental left off
  AnalysisSession S(*P, O);
  Result<AnalysisResult> R0 = S.analyze("q(var)");
  ASSERT_TRUE(R0) << R0.diag().str();
  Result<AnalysisResult> R1 = S.reanalyze({PredSig{"p", 1}});
  ASSERT_TRUE(R1) << R1.diag().str();
  EXPECT_EQ(fingerprint(*R0, Syms), fingerprint(*R1, Syms));
  EXPECT_EQ(S.reanalyzeStats(), nullptr);
}

TEST(IncrementalErrorTest, ReanalyzeBeforeAnalyzeIsAnError) {
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource("p(a).\n", Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();
  AnalysisSession S(*P, incOptions(1));
  Result<AnalysisResult> R = S.reanalyze({PredSig{"p", 1}});
  EXPECT_FALSE(R);
}

TEST_P(IncrementalTest, RandomEditSequencesMatchScratch) {
  // >= 30 random clause-level edit sequences: generate a program, chain
  // three mutations through one incremental session, and require
  // byte-identity with a scratch session at every step.
  const int Threads = GetParam();
  int Sequences = 0;
  uint64_t TotalReplayed = 0;
  for (unsigned Seed = 0; Seed != 12; ++Seed) {
    SymbolTable Syms;
    std::vector<std::unique_ptr<TermArena>> Arenas;
    std::vector<std::unique_ptr<CompiledProgram>> Programs;

    std::string Src = testgen::generateProgram(Seed);
    Arenas.push_back(std::make_unique<TermArena>());
    std::unique_ptr<CompiledProgram> P0 =
        compileOrDie(Src, Syms, *Arenas.back());
    ASSERT_NE(P0, nullptr);
    Programs.push_back(std::move(P0));

    // Entry: p0 at whatever arity this seed generated, all-any arguments.
    int Arity = -1;
    const Symbol P0Sym = Syms.lookup("p0");
    for (int32_t I = 0; I != Programs.back()->Module->numPredicates(); ++I) {
      const PredicateInfo &PI = Programs.back()->Module->predicate(I);
      if (PI.Name == P0Sym)
        Arity = PI.Arity;
    }
    ASSERT_GE(Arity, 1) << "seed " << Seed;
    const std::string Entry = "p0/" + std::to_string(Arity);

    AnalysisSession S(*Programs.back(), incOptions(Threads));
    Result<AnalysisResult> R = S.analyze(Entry);
    ASSERT_TRUE(R) << "seed " << Seed << ": " << R.diag().str();

    for (unsigned Step = 0; Step != 3; ++Step, ++Sequences) {
      testgen::ProgramMutation Mut =
          testgen::mutateProgram(Src, Seed * 31 + Step + 1);
      Src = Mut.Source;
      Arenas.push_back(std::make_unique<TermArena>());
      std::unique_ptr<CompiledProgram> P =
          compileOrDie(Src, Syms, *Arenas.back());
      ASSERT_NE(P, nullptr) << "seed " << Seed << " step " << Step;
      Programs.push_back(std::move(P));

      Result<AnalysisResult> RInc = S.reanalyze(*Programs.back());
      ASSERT_TRUE(RInc) << "seed " << Seed << " step " << Step << " (edit "
                        << Mut.Pred << "/" << Mut.Arity
                        << "): " << RInc.diag().str();
      ASSERT_NE(S.reanalyzeStats(), nullptr);
      TotalReplayed += S.reanalyzeStats()->ReplayedRuns;

      AnalysisSession Scratch(*Programs.back(), incOptions(Threads));
      Result<AnalysisResult> RScr = Scratch.analyze(Entry);
      ASSERT_TRUE(RScr) << "seed " << Seed << " step " << Step << ": "
                        << RScr.diag().str();
      EXPECT_EQ(fingerprint(*RScr, Syms), fingerprint(*RInc, Syms))
          << "seed " << Seed << " step " << Step << " (edit " << Mut.Pred
          << "/" << Mut.Arity << ")\n--- source ---\n"
          << Src;
    }
  }
  EXPECT_GE(Sequences, 30);
  EXPECT_GT(TotalReplayed, 0u);
}

std::string threadName(const ::testing::TestParamInfo<int> &Info) {
  return "Threads" + std::to_string(Info.param);
}

INSTANTIATE_TEST_SUITE_P(SequentialAndParallel, IncrementalTest,
                         ::testing::Values(1, 4), threadName);

} // namespace
