//===- tests/SpecializerTest.cpp - Differential concrete-WAM gate ---------===//
//
// The specializer's contract is semantic transparency: for every call
// conforming to the analyzed entry, the specialized module computes
// byte-identical solutions, in the same order, with the same failure /
// error behavior as the original — it may only get there in fewer
// dynamic instructions. These tests enforce that contract on the
// concrete machine:
//
//   * all 11 Table 1 benchmarks, original vs specialized, multi-solution
//     solve of the analyzed entry goal plus write/1 output comparison;
//   * targeted programs exercising the individual rewrites (fused
//     get_list/get_structure blocks with mid-block backtracking, clause
//     pruning, switch shortcuts, det choice-point elimination);
//   * a 20-seed RandomProgramGen sweep under a small step budget.
//
//===----------------------------------------------------------------------===//

#include "compiler/Specializer.h"

#include "analyzer/Session.h"
#include "analyzer/Specialize.h"
#include "programs/Benchmarks.h"
#include "term/TermWriter.h"
#include "wam/Machine.h"

#include "RandomProgramGen.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

/// Everything observable about one solve() run.
struct RunOutcome {
  RunStatus Status = RunStatus::Error;
  std::vector<std::string> Solutions; ///< rendered bindings per solution
  std::string Output;                 ///< write/1 & friends
  uint64_t Instructions = 0;
};

class SpecializerTest : public ::testing::Test {
protected:
  void compile(std::string_view Source) {
    Result<CompiledProgram> P = compileSource(Source, Syms, Arena);
    ASSERT_TRUE(P) << P.diag().str();
    Program = std::make_unique<CompiledProgram>(P.take());
  }

  /// Analyzes \p EntrySpec under the modes domain and runs the
  /// specializer with the resulting facts. Analysis failures (e.g. a
  /// budget hit on a pathological random program) degrade to empty facts:
  /// the specializer must behave as the identity transform then.
  void specialize(std::string_view EntrySpec) {
    AnalyzerOptions Options;
    AnalysisSession A(*Program, Options);
    Result<AnalysisResult> R = A.analyze(EntrySpec);
    AnalysisResult Facts;
    if (R)
      Facts = std::move(*R);
    Specialized = std::make_unique<CompiledProgram>(specializeProgram(
        *Program, buildSpecializationFacts(Facts, *Program), Report));
  }

  const Term *goal(std::string_view Text, int *NumVars) {
    Parser P(Text, Syms, Arena);
    Result<const Term *> T = P.readTerm();
    EXPECT_TRUE(T) << T.diag().str();
    *NumVars = P.lastTermNumVars();
    return *T;
  }

  RunOutcome run(const CompiledProgram &P, std::string_view GoalText,
                 int MaxSolutions, uint64_t MaxSteps) {
    int NumVars = 0;
    const Term *G = goal(GoalText, &NumVars);
    MachineOptions MO;
    MO.MaxSteps = MaxSteps;
    Machine M(P, MO);
    std::vector<Solution> Sols;
    TermArena SolArena;
    RunOutcome Out;
    Out.Status = M.solve(G, NumVars, SolArena, Sols, MaxSolutions);
    for (const Solution &S : Sols) {
      std::string Line;
      for (int I = 0; I != NumVars; ++I) {
        if (!S.Bindings[I])
          continue;
        if (!Line.empty())
          Line += ", ";
        Line += writeTerm(S.Bindings[I], Syms);
      }
      Out.Solutions.push_back(Line);
    }
    Out.Output = M.output();
    Out.Instructions = M.stepsExecuted();
    return Out;
  }

  /// Runs \p GoalText on the original and the specialized module and
  /// asserts identical observable behavior. Returns the two outcomes for
  /// extra assertions (instruction counts). When the original run hits
  /// the step budget the comparison is skipped: the specialized module
  /// may legitimately finish inside a budget the original exceeds.
  std::pair<RunOutcome, RunOutcome>
  expectIdentical(std::string_view GoalText, int MaxSolutions = 100,
                  uint64_t MaxSteps = 500'000'000) {
    RunOutcome O = run(*Program, GoalText, MaxSolutions, MaxSteps);
    RunOutcome S = run(*Specialized, GoalText, MaxSolutions, MaxSteps);
    if (O.Status == RunStatus::Error)
      return {O, S};
    EXPECT_EQ(O.Status, S.Status) << "goal " << GoalText;
    EXPECT_EQ(O.Solutions, S.Solutions) << "goal " << GoalText;
    EXPECT_EQ(O.Output, S.Output) << "goal " << GoalText;
    return {O, S};
  }

  SymbolTable Syms;
  TermArena Arena;
  std::unique_ptr<CompiledProgram> Program;
  std::unique_ptr<CompiledProgram> Specialized;
  SpecializationReport Report;
};

TEST_F(SpecializerTest, Table1SuiteIdenticalAnswers) {
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    SCOPED_TRACE(std::string(B.Name));
    Syms = SymbolTable();
    Program.reset();
    Specialized.reset();
    Report = SpecializationReport();
    compile(B.Source);
    specialize(B.EntrySpec);
    // main/0 is the analyzed entry for the whole suite; ask for several
    // solutions so redo/backtrack paths of nondeterministic mains (query,
    // zebra) are exercised too.
    auto [O, S] = expectIdentical("main", /*MaxSolutions=*/5);
    ASSERT_NE(O.Status, RunStatus::Error);
    EXPECT_EQ(O.Status, RunStatus::Success);
    EXPECT_LE(S.Instructions, O.Instructions);
  }
}

TEST_F(SpecializerTest, MultiSolutionOrderPreserved) {
  compile("p(X) :- q(X).\n"
          "q(a). q(b). q(c).\n");
  specialize("p(var)");
  auto [O, S] = expectIdentical("p(X)");
  EXPECT_EQ(O.Solutions, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(S.Solutions, O.Solutions);
}

TEST_F(SpecializerTest, BacktrackOutOfFusedBlock) {
  // The first clause's fused get_list block matches its first element and
  // fails mid-block; the machine must backtrack cleanly into the second
  // clause on both modules.
  compile("p([1,2|T], T).\n"
          "p([1,3|T], T).\n");
  specialize("p(nv, var)");
  EXPECT_GT(Report.FusedBlocks, 0u);
  auto [O, S] = expectIdentical("p([1,3,9], R)");
  EXPECT_EQ(O.Solutions, (std::vector<std::string>{"[9]"}));
  EXPECT_EQ(S.Solutions, O.Solutions);
  expectIdentical("p([2,2], R)"); // first element fails: both clauses die
  expectIdentical("p([1,2,5,6], R)");
}

TEST_F(SpecializerTest, PrunedClausesStayInvisible) {
  // Under an integer-only calling pattern the atom clauses can never
  // match; pruning them must not change any conforming call.
  compile("t(1, one).\n"
          "t(2, two).\n"
          "t(a, letter).\n"
          "t(b, letter).\n"
          "step(X, Y) :- t(X, Y).\n");
  specialize("step(int, var)");
  auto [O, S] = expectIdentical("step(2, R)");
  EXPECT_EQ(O.Solutions, (std::vector<std::string>{"two"}));
  EXPECT_EQ(S.Solutions, O.Solutions);
  expectIdentical("step(7, R)"); // conforming call that fails
}

TEST_F(SpecializerTest, DeterministicPredicateSameAnswers) {
  // Deterministic list recursion: det facts license choice-point work,
  // and the answers must survive it, including on the redo path (the
  // caller asks for a second solution that does not exist).
  compile("app([], L, L).\n"
          "app([H|T], L, [H|R]) :- app(T, L, R).\n"
          "main(R) :- app([1,2,3], [4,5], R).\n");
  specialize("main(var)");
  auto [O, S] = expectIdentical("main(R)", /*MaxSolutions=*/3);
  EXPECT_EQ(O.Solutions, (std::vector<std::string>{"[1,2,3,4,5]"}));
  EXPECT_EQ(S.Solutions, O.Solutions);
}

TEST_F(SpecializerTest, EmptyFactsAreIdentity) {
  // With no analysis facts at all the specializer must be a semantic
  // no-op (it may still rebuild indexing identically).
  compile("r(a). r(b).\n"
          "s(X) :- r(X), r(Y), X = Y.\n");
  Specialized = std::make_unique<CompiledProgram>(
      specializeProgram(*Program, SpecializationFacts{}, Report));
  expectIdentical("s(X)");
  expectIdentical("s(b)");
  expectIdentical("s(q)");
}

TEST_F(SpecializerTest, RandomProgramSweep) {
  // 20 seeded random programs: analyze p0 under an all-any entry (every
  // conforming goal is then licensed), specialize, and differential-test
  // a fresh-variable goal under a small step budget.
  for (unsigned Seed = 0; Seed != 20; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    Syms = SymbolTable();
    Program.reset();
    Specialized.reset();
    Report = SpecializationReport();
    std::string Source = testgen::generateProgram(Seed);
    compile(Source);

    // Recover p0's arity from the compiled module.
    int Arity = -1;
    Symbol P0 = Syms.lookup("p0");
    ASSERT_NE(P0, ~0u) << Source;
    for (int A = 0; A != 8 && Arity < 0; ++A)
      if (Program->Module->findPredicate(P0, A) >= 0)
        Arity = A;
    ASSERT_GE(Arity, 0) << Source;

    std::string Spec = "p0/" + std::to_string(Arity);
    specialize(Spec);

    std::string Goal = "p0";
    if (Arity) {
      Goal += "(";
      for (int A = 0; A != Arity; ++A)
        Goal += (A ? ", W" : "W") + std::to_string(A);
      Goal += ")";
    }
    auto [O, S] = expectIdentical(Goal, /*MaxSolutions=*/8,
                                  /*MaxSteps=*/200'000);
    if (O.Status != RunStatus::Error) {
      EXPECT_LE(S.Instructions, O.Instructions) << Source;
    }
  }
}

} // namespace
