//===- tests/CompilerTest.cpp - WAM compiler unit tests -------------------===//
//
// Instruction selection (via the disassembler), register discipline,
// environment allocation rules, cut compilation, indexing structure, and
// compile-time error reporting.
//
//===----------------------------------------------------------------------===//

#include "compiler/Disasm.h"
#include "compiler/ProgramCompiler.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

class CompilerTest : public ::testing::Test {
protected:
  /// Compiles a program; returns the disassembly of the named predicate.
  std::string compilePred(std::string_view Source, std::string_view Name,
                          int Arity) {
    Result<CompiledProgram> P = compileSource(Source, Syms, Arena);
    if (!P)
      return "ERROR: " + P.diag().str();
    Program = std::make_unique<CompiledProgram>(P.take());
    int32_t Pid =
        Program->Module->findPredicate(Syms.intern(Name), Arity);
    if (Pid < 0)
      return "NOT-FOUND";
    return disassemblePredicate(*Program->Module, Pid);
  }

  bool contains(const std::string &Hay, std::string_view Needle) {
    return Hay.find(Needle) != std::string::npos;
  }

  SymbolTable Syms;
  TermArena Arena;
  std::unique_ptr<CompiledProgram> Program;
};

TEST_F(CompilerTest, FactCompilesToGetsAndProceed) {
  std::string D = compilePred("p(a, 1).", "p", 2);
  EXPECT_TRUE(contains(D, "get_const           a, A1")) << D;
  EXPECT_TRUE(contains(D, "get_const           1, A2")) << D;
  EXPECT_TRUE(contains(D, "proceed")) << D;
  EXPECT_FALSE(contains(D, "allocate")) << D;
}

TEST_F(CompilerTest, PaperFigure2Sequence) {
  // The paper's example head compiles to the Figure 2 sequence:
  // get_const, get_list, unify_var x2, unify_var x2... breadth-first with
  // the nested structure handled after the list level.
  std::string D = compilePred("p(a, [f(V)|L]) :- q(V, L).\nq(_, _).",
                              "p", 2);
  size_t GetConst = D.find("get_const");
  size_t GetList = D.find("get_list");
  size_t GetStruct = D.find("get_structure       f/1");
  ASSERT_NE(GetConst, std::string::npos) << D;
  ASSERT_NE(GetList, std::string::npos) << D;
  ASSERT_NE(GetStruct, std::string::npos) << D;
  // Breadth-first: the list level is consumed before f/1 is entered.
  EXPECT_LT(GetConst, GetList);
  EXPECT_LT(GetList, GetStruct);
}

TEST_F(CompilerTest, LastCallOptimization) {
  std::string D = compilePred("p(X) :- q(X).\nq(_).", "p", 1);
  EXPECT_TRUE(contains(D, "execute             q/1")) << D;
  EXPECT_FALSE(contains(D, "call")) << D;
  EXPECT_FALSE(contains(D, "allocate")) << D;
}

TEST_F(CompilerTest, EnvironmentForTwoCalls) {
  std::string D = compilePred("p(X) :- q(X), r(X).\nq(_).\nr(_).", "p", 1);
  EXPECT_TRUE(contains(D, "allocate            1")) << D;
  EXPECT_TRUE(contains(D, "get_variable_y")) << D;
  EXPECT_TRUE(contains(D, "call                q/1")) << D;
  EXPECT_TRUE(contains(D, "deallocate")) << D;
  EXPECT_TRUE(contains(D, "execute             r/1")) << D;
}

TEST_F(CompilerTest, VoidHeadArgumentEmitsNothing) {
  std::string D = compilePred("p(_, b).", "p", 2);
  EXPECT_FALSE(contains(D, "A1")) << D; // first argument untouched
  EXPECT_TRUE(contains(D, "get_const           b, A2")) << D;
}

TEST_F(CompilerTest, VoidSubtermsMerge) {
  std::string D = compilePred("p(f(_, _, X)) :- q(X).\nq(_).", "p", 1);
  EXPECT_TRUE(contains(D, "unify_void          2")) << D;
}

TEST_F(CompilerTest, NeckCutVsDeepCut) {
  std::string DN = compilePred("p(X) :- !, q(X).\nq(_).", "p", 1);
  EXPECT_TRUE(contains(DN, "neck_cut")) << DN;
  EXPECT_FALSE(contains(DN, "get_level")) << DN;

  std::string DD = compilePred("p(X) :- q(X), !, r(X).\nq(_).\nr(_).",
                               "p", 1);
  EXPECT_TRUE(contains(DD, "get_level")) << DD;
  EXPECT_TRUE(contains(DD, "cut_y")) << DD;
}

TEST_F(CompilerTest, BodyStructureBuiltBottomUp) {
  std::string D = compilePred("p :- q(f(g(1))).\nq(_).", "p", 0);
  size_t G = D.find("put_structure       g/1");
  size_t F = D.find("put_structure       f/1");
  ASSERT_NE(G, std::string::npos) << D;
  ASSERT_NE(F, std::string::npos) << D;
  EXPECT_LT(G, F) << D; // inner structure first
}

TEST_F(CompilerTest, BuiltinGoalCompilesInline) {
  std::string D = compilePred("p(X, Y) :- Y is X + 1.", "p", 2);
  EXPECT_TRUE(contains(D, "builtin             is/2")) << D;
  EXPECT_FALSE(contains(D, "call")) << D;
}

TEST_F(CompilerTest, SwitchOnTermEmitted) {
  std::string D = compilePred(
      "t(a). t(1). t([_|_]). t(f(_)). t(X) :- q(X).\nq(_).", "t", 1);
  EXPECT_TRUE(contains(D, "switch_on_term")) << D;
  // The secondary dispatch tables live in the module-wide indexing code.
  std::string Module = disassembleModule(*Program->Module);
  EXPECT_TRUE(contains(Module, "switch_on_constant")) << Module;
  EXPECT_TRUE(contains(Module, "switch_on_structure")) << Module;
}

TEST_F(CompilerTest, SingleClauseHasNoIndexing) {
  std::string D = compilePred("only(a).", "only", 1);
  EXPECT_FALSE(contains(D, "switch_on_term")) << D;
  EXPECT_FALSE(contains(D, "try      ")) << D;
}

TEST_F(CompilerTest, TryChainCarriesArity) {
  Result<CompiledProgram> P =
      compileSource("m(X, Y) :- a(X, Y).\nm(X, Y) :- b(X, Y).\n"
                    "a(_, _).\nb(_, _).",
                    Syms, Arena);
  ASSERT_TRUE(P);
  const CodeModule &M = *P->Module;
  bool FoundTry = false;
  for (int32_t A = 0; A != M.codeSize(); ++A)
    if (M.at(A).Op == Opcode::Try && M.at(A).B == 2)
      FoundTry = true;
  EXPECT_TRUE(FoundTry) << "try must save the predicate's 2 arguments";
}

TEST_F(CompilerTest, RedefiningBuiltinRejected) {
  Result<CompiledProgram> P = compileSource("is(X, X).", Syms, Arena);
  EXPECT_FALSE(P);
}

TEST_F(CompilerTest, DisjunctionCompilesViaAuxiliaryPredicate) {
  Result<CompiledProgram> P =
      compileSource("p :- (a ; b).\na.\nb.", Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();
  // The desugared auxiliary predicate exists with two clauses.
  bool FoundAux = false;
  for (int32_t Pid = 0; Pid != P->Module->numPredicates(); ++Pid)
    if (P->Module->predicateLabel(Pid).starts_with("$aux") &&
        P->Module->predicate(Pid).Clauses.size() == 2)
      FoundAux = true;
  EXPECT_TRUE(FoundAux);
}

TEST_F(CompilerTest, UndefinedPredicatesReported) {
  Result<CompiledProgram> P = compileSource("p :- missing.", Syms, Arena);
  ASSERT_TRUE(P);
  ASSERT_EQ(P->UndefinedPredicates.size(), 1u);
  EXPECT_EQ(P->Module->predicateLabel(P->UndefinedPredicates[0]),
            "missing/0");
}

TEST_F(CompilerTest, ProfileCountsArgsAndPreds) {
  Result<CompiledProgram> P = compileSource(
      "f(_, _).\nf(a, b).\ng(_).\nh.", Syms, Arena);
  ASSERT_TRUE(P);
  EXPECT_EQ(P->NumPreds, 3);
  EXPECT_EQ(P->NumArgs, 3); // f/2 + g/1 + h/0
}

TEST_F(CompilerTest, ModuleLayoutFixedPrologue) {
  Result<CompiledProgram> P = compileSource("p.", Syms, Arena);
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Module->at(kHaltAddress).Op, Opcode::Halt);
  EXPECT_EQ(P->Module->at(kProceedAddress).Op, Opcode::Proceed);
}

TEST_F(CompilerTest, ConstPoolDeduplicates) {
  Result<CompiledProgram> P =
      compileSource("p(a, a, a, 7, 7).", Syms, Arena);
  ASSERT_TRUE(P);
  const CodeModule &M = *P->Module;
  // Count distinct constants referenced by the gets: must be 2 pool slots.
  std::set<int32_t> Pool;
  for (int32_t A = 0; A != M.codeSize(); ++A)
    if (M.at(A).Op == Opcode::GetConst)
      Pool.insert(M.at(A).A);
  EXPECT_EQ(Pool.size(), 2u);
}

} // namespace
