//===- tests/PrologHostedTest.cpp - Prolog-hosted analyzer tests ----------===//
//
// The Prolog-hosted mode analyzer (the Aquarius stand-in) must run on the
// concrete WAM for every benchmark and produce a sound coarse table:
// wherever the compiled analyzer (rich domain) says an argument is ground,
// the coarse domain may say g/nv/any but never contradict by claiming the
// predicate fails while the rich analysis succeeds.
//
//===----------------------------------------------------------------------===//

#include "baseline/PrologHosted.h"
#include "programs/Benchmarks.h"
#include "wam/Machine.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

TEST(PrologHostedTest, ReflectsSmallProgram) {
  SymbolTable Syms;
  TermArena Arena;
  Result<ParsedProgram> P =
      parseProgram("p(a, [X|_]) :- q(X), X > 1.\nq(1).", Syms, Arena);
  ASSERT_TRUE(P);
  std::string Data = reflectProgram(*P, Syms, "p");
  EXPECT_NE(Data.find("top_goal(p, 0)."), std::string::npos) << Data;
  EXPECT_NE(Data.find("clauses(p, 2"), std::string::npos) << Data;
  EXPECT_NE(Data.find("'$v'(0)"), std::string::npos) << Data;
  EXPECT_NE(Data.find("u(q,1,['$v'(0)])"), std::string::npos) << Data;
  EXPECT_NE(Data.find("b(>,2,['$v'(0),1])"), std::string::npos) << Data;
}

TEST(PrologHostedTest, AnalyzesTinyProgram) {
  SymbolTable Syms;
  TermArena Arena;
  Result<ParsedProgram> P = parseProgram(
      "main :- double(3, Y), use(Y).\n"
      "double(X, Y) :- Y is X * 2.\n"
      "use(_).",
      Syms, Arena);
  ASSERT_TRUE(P);
  Result<PrologHostedResult> R = runPrologHostedAnalysis(*P, Syms, "main");
  ASSERT_TRUE(R) << R.diag().str();
  // double/2 was called with (int, var) and succeeds with (int, int).
  EXPECT_NE(R->Table.find("double"), std::string::npos) << R->Table;
  EXPECT_NE(R->Table.find("some([int,int])"), std::string::npos)
      << R->Table;
  EXPECT_GT(R->HostInstructions, 0u);

  // The coarse-domain variant reports the same facts as groundness.
  SymbolTable Syms2;
  TermArena Arena2;
  Result<ParsedProgram> P2 = parseProgram(
      "main :- double(3, Y), use(Y).\n"
      "double(X, Y) :- Y is X * 2.\n"
      "use(_).",
      Syms2, Arena2);
  ASSERT_TRUE(P2);
  Result<PrologHostedResult> R2 =
      runPrologHostedAnalysis(*P2, Syms2, "main", PrologDomain::Coarse);
  ASSERT_TRUE(R2) << R2.diag().str();
  EXPECT_NE(R2->Table.find("some([g,g])"), std::string::npos) << R2->Table;
}

TEST(PrologHostedTest, RecursiveFixpoint) {
  SymbolTable Syms;
  TermArena Arena;
  Result<ParsedProgram> P = parseProgram(
      "main :- len([a,b,c], N), out(N).\n"
      "len([], 0).\n"
      "len([_|T], N) :- len(T, M), N is M + 1.\n"
      "out(_).",
      Syms, Arena);
  ASSERT_TRUE(P);
  Result<PrologHostedResult> R = runPrologHostedAnalysis(*P, Syms, "main");
  ASSERT_TRUE(R) << R.diag().str();
  EXPECT_NE(R->Table.find("len"), std::string::npos) << R->Table;
}

class PrologHostedBenchTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PrologHostedBenchTest, RunsOnEveryBenchmark) {
  const BenchmarkProgram &B = benchmarkPrograms()[GetParam()];
  SymbolTable Syms;
  TermArena Arena;
  Result<ParsedProgram> P = parseProgram(B.Source, Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();
  Result<PrologHostedResult> R = runPrologHostedAnalysis(*P, Syms, "main");
  ASSERT_TRUE(R) << B.Name << ": " << R.diag().str();
  // main/0 must be in the table with a success entry (it succeeds
  // concretely, and the coarse analysis is an over-approximation).
  EXPECT_NE(R->Table.find("e(main,0,[],"), std::string::npos)
      << B.Name << ": " << R->Table;
  EXPECT_NE(R->Table.find("e(main,0,[],yes,some([]))"), std::string::npos)
      << B.Name << ": " << R->Table;
}

std::string benchName(const ::testing::TestParamInfo<size_t> &Info) {
  return std::string(benchmarkPrograms()[Info.param].Name);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PrologHostedBenchTest,
                         ::testing::Range<size_t>(0,
                                                  benchmarkPrograms().size()),
                         benchName);

} // namespace
