//===- tests/RandomProgramTest.cpp - Generator byte-stability tests -------===//
//
// The generator contract: one seed pins the generated corpus
// byte-for-byte on every platform (the generators use an explicit
// splitmix64, never <random> distributions). The golden hashes below are
// the enforcement — if they move, every seeded sweep in the suite is
// silently testing different programs, so any intentional generator
// change must re-pin them in the same commit. The shape tests then check
// that generated corpora actually compile, link, and analyze.
//
//===----------------------------------------------------------------------===//

#include "RandomProgramGen.h"

#include "analyzer/Session.h"
#include "compiler/ModuleLink.h"

#include <gtest/gtest.h>

using namespace awam;
using namespace awam::testgen;

namespace {

uint64_t fnv(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

TEST(RandomProgramTest, PinnedSeedGolden) {
  EXPECT_EQ(fnv(generateProgram(0)), 0xd931fef7b91d40e8ull);
  EXPECT_EQ(fnv(generateProgram(1)), 0x7d200e73949b3cb7ull);
  EXPECT_EQ(fnv(generateProgram(7)), 0x6ba6d5cf580ff4a9ull);

  CorpusOptions O;
  O.Clauses = 120;
  Corpus C = generateCorpus(42, O);
  EXPECT_EQ(fnv(C.Library), 0x3cdc1325aeac8c1eull);
  EXPECT_EQ(fnv(C.User), 0xb0cff6f0db8934deull);
  ASSERT_EQ(C.Entries.size(), 9u);
  EXPECT_EQ(C.Entries.front(), "u0/1");
  EXPECT_EQ(C.Entries.back(), "drive/1");

  EXPECT_EQ(fnv(generateGrammar(3)), 0x55f2a798986ce007ull);
}

TEST(RandomProgramTest, SameSeedSameBytes) {
  EXPECT_EQ(generateProgram(11), generateProgram(11));
  EXPECT_NE(generateProgram(11), generateProgram(12));
  Corpus A = generateCorpus(9), B = generateCorpus(9);
  EXPECT_EQ(A.Library, B.Library);
  EXPECT_EQ(A.User, B.User);
  EXPECT_EQ(A.Entries, B.Entries);
  EXPECT_NE(generateCorpus(9).User, generateCorpus(10).User);
  EXPECT_EQ(generateGrammar(4), generateGrammar(4));
  EXPECT_NE(generateGrammar(4), generateGrammar(5));
}

TEST(RandomProgramTest, CorpusSizeTracksRequest) {
  for (int Want : {200, 1000, 5000}) {
    CorpusOptions O;
    O.Clauses = Want;
    Corpus C = generateCorpus(17, O);
    int Got = C.LibraryClauses + C.UserClauses;
    EXPECT_GT(Got, Want / 2) << Want;
    EXPECT_LT(Got, Want * 2) << Want;
    EXPECT_GT(C.LibraryClauses, 0) << Want;
    EXPECT_GT(C.UserClauses, 0) << Want;
  }
}

TEST(RandomProgramTest, CorpusCompilesLinksAndAnalyzes) {
  CorpusOptions O;
  O.Clauses = 300;
  for (uint64_t Seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    Corpus C = generateCorpus(Seed, O);
    SymbolTable Syms;
    TermArena Arena;
    Result<CompiledProgram> Lib = compileSource(C.Library, Syms, Arena);
    ASSERT_TRUE(Lib) << Lib.diag().str();
    Result<CompiledProgram> User = compileSource(C.User, Syms, Arena);
    ASSERT_TRUE(User) << User.diag().str();

    // The library is a closed unit: compiling it alone leaves nothing
    // undefined, so it can be summarized independently.
    EXPECT_TRUE(Lib->UndefinedPredicates.empty());

    Result<LinkedProgram> L =
        linkPrograms({{&*Lib, "lib"}, {&*User, "user"}});
    ASSERT_TRUE(L) << L.diag().str();
    EXPECT_TRUE(L->UnresolvedImports.empty());

    // Linked == monolithic, on a generated corpus too.
    Result<CompiledProgram> Mono =
        compileSource(C.Library + C.User, Syms, Arena);
    ASSERT_TRUE(Mono) << Mono.diag().str();
    EXPECT_EQ(L->Program.Module->fingerprint(), Mono->Module->fingerprint());

    // Every advertised entry resolves and analyzes to convergence.
    AnalysisSession S(L->Program);
    ASSERT_FALSE(C.Entries.empty());
    for (const std::string &E : C.Entries) {
      Result<AnalysisResult> R = S.analyze(E);
      ASSERT_TRUE(R) << E << ": " << R.diag().str();
      EXPECT_TRUE(R->Converged) << E;
    }
  }
}

TEST(RandomProgramTest, GrammarCompilesAndRuns) {
  std::string G = generateGrammar(3);
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource(G, Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();
  EXPECT_TRUE(P->UndefinedPredicates.empty());

  // The start symbol analyzes under a (glist, var) difference-list call.
  AnalysisSession S(*P);
  Result<AnalysisResult> R = S.analyze("nt15(glist, var)");
  ASSERT_TRUE(R) << R.diag().str();
  EXPECT_TRUE(R->Converged);
}

} // namespace
