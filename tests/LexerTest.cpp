//===- tests/LexerTest.cpp - Tokenizer unit tests -------------------------===//

#include "term/Lexer.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

std::vector<Token> lexAll(std::string_view Source) {
  Lexer L(Source);
  std::vector<Token> Out;
  for (;;) {
    Token T = L.next();
    if (T.Kind == TokenKind::EndOfFile)
      return Out;
    Out.push_back(T);
    if (T.Kind == TokenKind::Error)
      return Out;
  }
}

TEST(LexerTest, SimpleAtomsAndVariables) {
  auto Ts = lexAll("foo Bar _baz _ x1");
  ASSERT_EQ(Ts.size(), 5u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::Atom);
  EXPECT_EQ(Ts[0].Text, "foo");
  EXPECT_EQ(Ts[1].Kind, TokenKind::Var);
  EXPECT_EQ(Ts[1].Text, "Bar");
  EXPECT_EQ(Ts[2].Kind, TokenKind::Var);
  EXPECT_EQ(Ts[2].Text, "_baz");
  EXPECT_EQ(Ts[3].Kind, TokenKind::Var);
  EXPECT_EQ(Ts[3].Text, "_");
  EXPECT_EQ(Ts[4].Kind, TokenKind::Atom);
  EXPECT_EQ(Ts[4].Text, "x1");
}

TEST(LexerTest, Integers) {
  auto Ts = lexAll("0 42 123456");
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].IntVal, 0);
  EXPECT_EQ(Ts[1].IntVal, 42);
  EXPECT_EQ(Ts[2].IntVal, 123456);
}

TEST(LexerTest, IntegerLiteralAtInt64Max) {
  auto Ts = lexAll("9223372036854775807");
  ASSERT_EQ(Ts.size(), 1u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::Int);
  EXPECT_EQ(Ts[0].IntVal, 9223372036854775807LL);
}

TEST(LexerTest, IntegerLiteralOverflowIsAnError) {
  // One past INT64_MAX used to wrap silently (signed-overflow UB).
  auto Ts = lexAll("9223372036854775808");
  ASSERT_EQ(Ts.size(), 1u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::Error);
  EXPECT_EQ(Ts[0].Text, "integer literal overflows 64 bits");
}

TEST(LexerTest, HugeIntegerLiteralIsAnError) {
  auto Ts = lexAll("123456789012345678901234567890 foo");
  // The whole literal is consumed before the error token is emitted, and
  // lexing stops at the error.
  ASSERT_EQ(Ts.size(), 1u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::Error);
  EXPECT_EQ(Ts[0].Text, "integer literal overflows 64 bits");
}

TEST(LexerTest, CharacterCodes) {
  auto Ts = lexAll("0'a 0'  0'\\n");
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].IntVal, 'a');
  EXPECT_EQ(Ts[1].IntVal, ' ');
  EXPECT_EQ(Ts[2].IntVal, '\n');
}

TEST(LexerTest, SymbolicAtoms) {
  auto Ts = lexAll(":- ?- = \\= == @< =.. -->");
  ASSERT_EQ(Ts.size(), 8u);
  for (const Token &T : Ts)
    EXPECT_EQ(T.Kind, TokenKind::Atom);
  EXPECT_EQ(Ts[0].Text, ":-");
  EXPECT_EQ(Ts[3].Text, "\\=");
  EXPECT_EQ(Ts[4].Text, "==");
  EXPECT_EQ(Ts[6].Text, "=..");
}

TEST(LexerTest, QuotedAtoms) {
  auto Ts = lexAll("'hello world' 'it''s' 'a\\nb'");
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].Text, "hello world");
  EXPECT_EQ(Ts[1].Text, "it's");
  EXPECT_EQ(Ts[2].Text, "a\nb");
}

TEST(LexerTest, UnterminatedQuoteIsError) {
  auto Ts = lexAll("'oops");
  ASSERT_FALSE(Ts.empty());
  EXPECT_EQ(Ts.back().Kind, TokenKind::Error);
}

TEST(LexerTest, EndTokenVsDotOperator) {
  // '.' followed by layout ends a clause; '=..' stays one atom.
  auto Ts = lexAll("a. X =.. L.");
  ASSERT_EQ(Ts.size(), 6u);
  EXPECT_EQ(Ts[1].Kind, TokenKind::End);
  EXPECT_EQ(Ts[3].Text, "=..");
  EXPECT_EQ(Ts[5].Kind, TokenKind::End);
}

TEST(LexerTest, Comments) {
  auto Ts = lexAll("a % line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].Text, "a");
  EXPECT_EQ(Ts[1].Text, "b");
  EXPECT_EQ(Ts[2].Text, "c");
}

TEST(LexerTest, FunctorParenIsOpenCT) {
  auto Ts = lexAll("f(a) g (b)");
  // f OpenCT a ')' g '(' b ')'
  ASSERT_EQ(Ts.size(), 8u);
  EXPECT_EQ(Ts[1].Kind, TokenKind::OpenCT);
  EXPECT_EQ(Ts[5].Kind, TokenKind::Punct); // '(' after layout
  EXPECT_EQ(Ts[5].Text, "(");
}

TEST(LexerTest, CutAndSemicolonAreSoloAtoms) {
  auto Ts = lexAll("! ;");
  ASSERT_EQ(Ts.size(), 2u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::Atom);
  EXPECT_EQ(Ts[0].Text, "!");
  EXPECT_EQ(Ts[1].Text, ";");
}

TEST(LexerTest, PositionsTracked) {
  Lexer L("a\n  b");
  Token A = L.next();
  Token B = L.next();
  EXPECT_EQ(A.Line, 1);
  EXPECT_EQ(A.Column, 1);
  EXPECT_EQ(B.Line, 2);
  EXPECT_EQ(B.Column, 3);
}

TEST(LexerTest, PunctuationInventory) {
  auto Ts = lexAll("[ ] { } , |");
  ASSERT_EQ(Ts.size(), 6u);
  for (const Token &T : Ts)
    EXPECT_EQ(T.Kind, TokenKind::Punct);
}

TEST(LexerTest, PeekDoesNotConsume) {
  Lexer L("a b");
  EXPECT_EQ(L.peek().Text, "a");
  EXPECT_EQ(L.peek().Text, "a");
  EXPECT_EQ(L.next().Text, "a");
  EXPECT_EQ(L.next().Text, "b");
}

} // namespace
