//===- tests/BenchmarkProgramsTest.cpp - Benchmark suite validation -------===//
//
// Every Table 1 benchmark must (a) parse and compile, (b) run to success
// on the concrete WAM, (c) be analyzable to a fixpoint by the compiled
// abstract WAM, and (d) get the *same* analysis from the baseline
// meta-interpreter. This is the substrate for the bench harness.
//
//===----------------------------------------------------------------------===//

#include "baseline/MetaAnalyzer.h"
#include "programs/Benchmarks.h"
#include "wam/Machine.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace awam;

namespace {

class BenchmarkProgramsTest : public ::testing::TestWithParam<size_t> {
protected:
  const BenchmarkProgram &bench() const {
    return benchmarkPrograms()[GetParam()];
  }
};

TEST_P(BenchmarkProgramsTest, CompilesAndRunsConcretely) {
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource(bench().Source, Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();
  EXPECT_TRUE(P->UndefinedPredicates.empty())
      << "undefined predicates in " << bench().Name;

  Machine M(*P);
  Parser GoalParser("main", Syms, Arena);
  Result<const Term *> Goal = GoalParser.readTerm();
  ASSERT_TRUE(Goal);
  EXPECT_TRUE(M.proves(*Goal, 0)) << bench().Name << ": main/0 failed";
}

TEST_P(BenchmarkProgramsTest, AnalyzesToFixpoint) {
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource(bench().Source, Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();

  AnalysisSession A(*P);
  Result<AnalysisResult> R = A.analyze(bench().EntrySpec);
  ASSERT_TRUE(R) << R.diag().str();
  EXPECT_TRUE(R->Converged) << bench().Name;
  EXPECT_GT(R->Items.size(), 0u);
  // main/0 must succeed abstractly (it succeeds concretely).
  bool MainSucceeds = false;
  for (const AnalysisResult::Item &I : R->Items)
    if (I.PredLabel == "main/0" && I.Success)
      MainSucceeds = true;
  EXPECT_TRUE(MainSucceeds) << bench().Name;
}

TEST_P(BenchmarkProgramsTest, BaselineAgreesWithCompiledAnalyzer) {
  SymbolTable Syms;
  TermArena Arena;
  Result<ParsedProgram> Parsed =
      parseProgram(bench().Source, Syms, Arena);
  ASSERT_TRUE(Parsed) << Parsed.diag().str();
  Result<CompiledProgram> Compiled = compileProgram(*Parsed, Syms);
  ASSERT_TRUE(Compiled) << Compiled.diag().str();

  AnalysisSession A(*Compiled);
  Result<AnalysisResult> RC = A.analyze(bench().EntrySpec);
  ASSERT_TRUE(RC) << RC.diag().str();

  AnalysisSession B = makeBaselineSession(*Parsed, Syms);
  Result<AnalysisResult> RB = B.analyze(bench().EntrySpec);
  ASSERT_TRUE(RB) << RB.diag().str();

  auto summarize = [&](const AnalysisResult &R) {
    std::vector<std::string> Lines;
    for (const AnalysisResult::Item &I : R.Items)
      Lines.push_back(I.PredLabel + " " + I.Call.str(Syms) + " -> " +
                      (I.Success ? I.Success->str(Syms) : "(fails)"));
    std::sort(Lines.begin(), Lines.end());
    return Lines;
  };
  EXPECT_EQ(summarize(*RC), summarize(*RB)) << bench().Name;
}

std::string benchName(const ::testing::TestParamInfo<size_t> &Info) {
  return std::string(benchmarkPrograms()[Info.param].Name);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkProgramsTest,
                         ::testing::Range<size_t>(0,
                                                  benchmarkPrograms().size()),
                         benchName);

} // namespace
