//===- tests/DomainTest.cpp - Pluggable abstract-domain tests -------------===//
//
// The domain framework's contracts:
//
//  * the registry resolves names, rejects unknown ones with the registered
//    list, and the session surfaces that error;
//  * every registered domain runs through the whole driver stack on all
//    Table 1 benchmarks — worklist, parallel (byte-identical at 1/2/4
//    threads), incremental (reanalyze == scratch) and the persistent
//    store (warm == scratch);
//  * the det domain's fixpoint is exactly the default domain's (it only
//    derives facts), and its listing is pinned against a golden;
//  * the pos domain is strictly more precise than a plain ground/any
//    domain on several benchmarks: its success truth tables exclude
//    valuations the root tuple alone admits (pinned implications).
//
//===----------------------------------------------------------------------===//

#include "analyzer/Domain.h"
#include "analyzer/PosDomain.h"
#include "analyzer/Session.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace awam;

namespace {

const char *const kBenchNames[] = {"log10",    "ops8",  "times10", "divide10",
                                   "tak",      "nreverse", "qsort", "query",
                                   "zebra",    "serialise", "queens_8"};

/// Compiles a benchmark into caller-owned state.
struct Compiled {
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> Program = makeError("unloaded");

  explicit Compiled(const char *Bench) {
    const BenchmarkProgram *B = findBenchmark(Bench);
    EXPECT_NE(B, nullptr) << Bench;
    if (!B)
      return;
    Program = compileSource(B->Source, Syms, Arena);
    EXPECT_TRUE(Program) << Bench << ": " << Program.diag().str();
  }
};

/// The comparable projection of one analysis: report + derived facts.
std::string reportOf(const AnalysisResult &R, const Compiled &C) {
  std::string Out = formatAnalysis(R, C.Syms);
  if (R.Dom)
    Out += R.Dom->formatFacts(R, *C.Program);
  return Out;
}

AnalyzerOptions domainOptions(const std::string &Domain, int Threads = 1) {
  AnalyzerOptions O;
  O.DomainName = Domain;
  O.NumThreads = Threads;
  return O;
}

//===--------------------------------------------------------------------===//
// Registry
//===--------------------------------------------------------------------===//

TEST(DomainRegistryTest, RegisteredDomainsAreStable) {
  const std::vector<const Domain *> &All = registeredDomains();
  ASSERT_EQ(All.size(), 3u);
  EXPECT_EQ(All[0], &defaultDomain());
  EXPECT_EQ(All[0]->name(), "modes");
  EXPECT_EQ(All[1]->name(), "pos");
  EXPECT_EQ(All[2]->name(), "det");
  EXPECT_EQ(registeredDomainNames(), "modes, pos, det");
}

TEST(DomainRegistryTest, FindAndResolve) {
  EXPECT_EQ(findDomain("modes"), &defaultDomain());
  EXPECT_EQ(findDomain("pos"), &posDomain());
  EXPECT_EQ(findDomain("det"), &detDomain());
  EXPECT_EQ(findDomain("nope"), nullptr);

  Result<const Domain *> D = resolveDomain("pos");
  ASSERT_TRUE(D);
  EXPECT_EQ(*D, &posDomain());

  Result<const Domain *> Bad = resolveDomain("nope");
  ASSERT_FALSE(Bad);
  std::string Msg = Bad.diag().str();
  EXPECT_NE(Msg.find("unknown abstract domain 'nope'"), std::string::npos)
      << Msg;
  EXPECT_NE(Msg.find("modes, pos, det"), std::string::npos) << Msg;
}

TEST(DomainRegistryTest, SessionRejectsUnknownAndUninternedDomains) {
  Compiled C("qsort");
  ASSERT_TRUE(C.Program);
  AnalysisSession Bad(*C.Program, domainOptions("nope"));
  Result<AnalysisResult> R = Bad.analyze("main");
  ASSERT_FALSE(R);
  EXPECT_NE(R.diag().str().find("unknown abstract domain"),
            std::string::npos);

  AnalyzerOptions NoInterning = domainOptions("pos");
  NoInterning.UseInterning = false;
  AnalysisSession Plain(*C.Program, NoInterning);
  Result<AnalysisResult> R2 = Plain.analyze("main");
  ASSERT_FALSE(R2);
  EXPECT_NE(R2.diag().str().find("requires the interned fast path"),
            std::string::npos)
      << R2.diag().str();
}

//===--------------------------------------------------------------------===//
// Every domain through every driver, on every benchmark
//===--------------------------------------------------------------------===//

class DomainDriverTest : public ::testing::TestWithParam<const char *> {};

TEST_P(DomainDriverTest, ParallelDriversAreByteIdentical) {
  std::string Domain = GetParam();
  for (const char *Bench : kBenchNames) {
    Compiled C(Bench);
    ASSERT_TRUE(C.Program);
    std::string Reports[3];
    int Threads[3] = {1, 2, 4};
    for (int I = 0; I != 3; ++I) {
      AnalysisSession A(*C.Program, domainOptions(Domain, Threads[I]));
      Result<AnalysisResult> R = A.analyze("main");
      ASSERT_TRUE(R) << Bench << ": " << R.diag().str();
      EXPECT_EQ(R->Dom, findDomain(Domain));
      Reports[I] = reportOf(*R, C);
    }
    EXPECT_EQ(Reports[0], Reports[1]) << Domain << " " << Bench;
    EXPECT_EQ(Reports[0], Reports[2]) << Domain << " " << Bench;
  }
}

TEST_P(DomainDriverTest, ReanalyzeMatchesScratch) {
  std::string Domain = GetParam();
  for (const char *Bench : kBenchNames) {
    Compiled C(Bench);
    ASSERT_TRUE(C.Program);
    AnalysisSession Scratch(*C.Program, domainOptions(Domain));
    Result<AnalysisResult> S = Scratch.analyze("main");
    ASSERT_TRUE(S) << Bench << ": " << S.diag().str();

    AnalyzerOptions O = domainOptions(Domain);
    O.Incremental = true;
    AnalysisSession Inc(*C.Program, O);
    Result<AnalysisResult> First = Inc.analyze("main");
    ASSERT_TRUE(First) << Bench << ": " << First.diag().str();
    // The program is unchanged, so the incremental replay must land on
    // the same table — byte-identical report and facts.
    Result<AnalysisResult> Re = Inc.reanalyze({{"main", 0}});
    ASSERT_TRUE(Re) << Bench << ": " << Re.diag().str();
    EXPECT_EQ(reportOf(*S, C), reportOf(*Re, C)) << Domain << " " << Bench;
  }
}

TEST_P(DomainDriverTest, WarmStoreQueriesMatchScratch) {
  std::string Domain = GetParam();
  for (const char *Bench : kBenchNames) {
    Compiled C(Bench);
    ASSERT_TRUE(C.Program);
    AnalysisSession Scratch(*C.Program, domainOptions(Domain));
    Result<AnalysisResult> S = Scratch.analyze("main");
    ASSERT_TRUE(S) << Bench << ": " << S.diag().str();

    AnalyzerOptions O = domainOptions(Domain);
    O.Persistent = true;
    AnalysisSession Store(*C.Program, O);
    // Same entry twice through one store: the second answer is warm (a
    // cache hit) and must still be byte-identical to scratch.
    Result<std::vector<AnalysisResult>> Batch =
        Store.analyzeBatch({"main", "main"});
    ASSERT_TRUE(Batch) << Bench << ": " << Batch.diag().str();
    ASSERT_EQ(Batch->size(), 2u);
    EXPECT_EQ(reportOf(*S, C), reportOf((*Batch)[0], C))
        << Domain << " " << Bench;
    EXPECT_EQ(reportOf(*S, C), reportOf((*Batch)[1], C))
        << Domain << " " << Bench;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainDriverTest,
                         ::testing::Values("modes", "pos", "det"),
                         [](const auto &Info) {
                           return std::string(Info.param);
                         });

//===--------------------------------------------------------------------===//
// Det domain: default fixpoint plus a pinned fact listing
//===--------------------------------------------------------------------===//

TEST(DetDomainTest, FixpointMatchesDefaultDomain) {
  // Det only derives facts: its pattern table must equal the default
  // domain's on every benchmark.
  for (const char *Bench : kBenchNames) {
    Compiled C(Bench);
    ASSERT_TRUE(C.Program);
    AnalysisSession Modes(*C.Program, domainOptions("modes"));
    AnalysisSession Det(*C.Program, domainOptions("det"));
    Result<AnalysisResult> RM = Modes.analyze("main");
    Result<AnalysisResult> RD = Det.analyze("main");
    ASSERT_TRUE(RM) << Bench;
    ASSERT_TRUE(RD) << Bench;
    EXPECT_EQ(formatAnalysis(*RM, C.Syms), formatAnalysis(*RD, C.Syms))
        << Bench;
  }
}

TEST(DetDomainTest, GoldenFactListing) {
  struct Golden {
    const char *Bench;
    const char *Facts;
  };
  const Golden Goldens[] = {
      {"tak", "determinism facts:\n"
              "  main/0 (): semidet\n"
              "  tak/4 (int, int, int, var): semidet\n"},
      {"nreverse",
       "determinism facts:\n"
       "  main/0 (): semidet\n"
       "  nreverse/2 ([int,int,int|glist], var): semidet\n"
       "  nreverse/2 ([int,int|glist], var): semidet\n"
       "  nreverse/2 ([int|glist], var): semidet\n"
       "  nreverse/2 (glist, var): semidet\n"
       "  concatenate/3 ([], [g], var): semidet\n"
       "  concatenate/3 (glist, [int], var): semidet\n"
       "  concatenate/3 ([g|intlist], [int], var): semidet\n"
       "  concatenate/3 (intlist, [int], var): semidet\n"
       "  concatenate/3 ([g,int|intlist], [int], var): semidet\n"
       "  concatenate/3 ([int|intlist], [int], var): semidet\n"
       "  concatenate/3 (glist, [g], var): semidet\n"
       "  concatenate/3 ([g|glist], [int], var): semidet\n"
       "  concatenate/3 ([g,g|glist], [int], var): semidet\n"},
  };
  for (const Golden &G : Goldens) {
    Compiled C(G.Bench);
    ASSERT_TRUE(C.Program);
    AnalysisSession A(*C.Program, domainOptions("det"));
    Result<AnalysisResult> R = A.analyze("main");
    ASSERT_TRUE(R) << G.Bench;
    ASSERT_NE(R->Dom, nullptr);
    EXPECT_EQ(R->Dom->formatFacts(*R, *C.Program), G.Facts) << G.Bench;
  }
}

TEST(DetDomainTest, EveryItemGetsAFact) {
  for (const char *Bench : kBenchNames) {
    Compiled C(Bench);
    ASSERT_TRUE(C.Program);
    AnalysisSession A(*C.Program, domainOptions("det"));
    Result<AnalysisResult> R = A.analyze("main");
    ASSERT_TRUE(R) << Bench;
    std::string Facts = R->Dom->formatFacts(*R, *C.Program);
    for (const AnalysisResult::Item &It : R->Items)
      EXPECT_NE(Facts.find("  " + It.PredLabel + " "), std::string::npos)
          << Bench << ": no fact for " << It.PredLabel;
  }
}

//===--------------------------------------------------------------------===//
// Pos domain: strictly more precise than plain ground/any
//===--------------------------------------------------------------------===//

/// The truth table a dependency-free ground/any domain would claim for a
/// success pattern: every valuation consistent with the root tuple (g
/// roots forced, any roots free).
uint64_t productMask(const PatternRef &P) {
  uint64_t Mask = 0;
  size_t N = P.NumRoots;
  for (uint32_t V = 0; V != (1u << N); ++V) {
    bool Ok = true;
    for (size_t I = 0; I != N && Ok; ++I)
      if (P.Nodes[P.Roots[I]].K == PatKind::GroundP && !((V >> I) & 1))
        Ok = false;
    if (Ok)
      Mask |= 1ull << V;
  }
  return Mask;
}

TEST(PosDomainTest, StrictlyMorePreciseThanGroundAnyOnPinnedBenchmarks) {
  // Each pinned entry has a success summary whose truth table excludes
  // valuations the plain root tuple admits — information a ground/any
  // domain cannot express. The implication rendering is pinned too.
  struct Pinned {
    const char *Bench;
    const char *Entry;
    const char *Pred;
    const char *Rendered;
  };
  const Pinned Cases[] = {
      {"nreverse", "concatenate/3", "concatenate/3",
       "(any, any, any) [x1<-x3, x2<-x3, x3<-x1&x2]"},
      {"qsort", "qsort/3", "qsort/3",
       "(any, any, any) [x1<-x2, x2<-x1&x3, x3<-x2]"},
      {"serialise", "pairlists/3", "pairlists/3",
       "(any, any, any) [x1<-x3, x2<-x3, x3<-x1&x2]"},
      {"zebra", "member/2", "member/2", "(any, any) [x1<-x2]"},
      {"tak", "tak/4", "tak/4", "(g, g, any, any) [x3<-x4, x4<-x3]"},
  };
  for (const Pinned &P : Cases) {
    Compiled C(P.Bench);
    ASSERT_TRUE(C.Program);
    AnalysisSession A(*C.Program, domainOptions("pos"));
    Result<AnalysisResult> R = A.analyze(P.Entry);
    ASSERT_TRUE(R) << P.Bench << ": " << R.diag().str();
    ASSERT_EQ(R->Dom, &posDomain());
    bool Found = false;
    for (const AnalysisResult::Item &It : R->Items) {
      if (It.PredLabel != P.Pred || !It.Success)
        continue;
      PatternRef S(*It.Success);
      if (!posPatternHasTT(S))
        continue;
      uint64_t TT = posPatternTT(S);
      uint64_t Product = productMask(S);
      // Sound: never claims a valuation outside the root tuple...
      EXPECT_EQ(TT & ~Product, 0u) << P.Bench << " " << P.Pred;
      if (TT != Product &&
          R->Dom->formatPattern(*It.Success, C.Syms) == P.Rendered)
        Found = true;
    }
    EXPECT_TRUE(Found) << P.Bench << ": no summary of " << P.Pred
                       << " rendered as \"" << P.Rendered << "\"";
  }
}

TEST(PosDomainTest, CallPatternsAreGroundAnyTuples) {
  for (const char *Bench : kBenchNames) {
    Compiled C(Bench);
    ASSERT_TRUE(C.Program);
    AnalysisSession A(*C.Program, domainOptions("pos"));
    Result<AnalysisResult> R = A.analyze("main");
    ASSERT_TRUE(R) << Bench;
    for (const AnalysisResult::Item &It : R->Items) {
      for (int32_t Root : It.Call.Roots) {
        PatKind K = It.Call.Nodes[Root].K;
        EXPECT_TRUE(K == PatKind::GroundP || K == PatKind::AnyP)
            << Bench << " " << It.PredLabel;
      }
      // Call patterns never carry a truth table; success patterns of
      // arity 1..kPosMaxTTArity always do.
      EXPECT_FALSE(posPatternHasTT(PatternRef(It.Call)))
          << Bench << " " << It.PredLabel;
      if (It.Success && !It.Success->Roots.empty() &&
          It.Success->Roots.size() <= static_cast<size_t>(kPosMaxTTArity))
        EXPECT_TRUE(posPatternHasTT(PatternRef(*It.Success)))
            << Bench << " " << It.PredLabel;
    }
  }
}

} // namespace
