//===- tests/MachineStressTest.cpp - WAM stress and edge cases ------------===//
//
// Generated programs and adversarial shapes: wide predicates, deep
// recursion with live choice points, trail-restore invariants, machine
// reuse, resource limits, statistics, and arithmetic edge cases.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "term/TermWriter.h"
#include "wam/Machine.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

class MachineStressTest : public ::testing::Test {
protected:
  void compile(std::string_view Source, MachineOptions Options = {}) {
    Result<CompiledProgram> P = compileSource(Source, Syms, Arena);
    ASSERT_TRUE(P) << P.diag().str();
    Program = std::make_unique<CompiledProgram>(P.take());
    M = std::make_unique<Machine>(*Program, Options);
  }

  RunStatus run(std::string_view GoalText,
                std::vector<std::string> *Out = nullptr, int Max = 1) {
    Parser GP(GoalText, Syms, Arena);
    Result<const Term *> G = GP.readTerm();
    EXPECT_TRUE(G) << G.diag().str();
    std::vector<Solution> Sols;
    TermArena SolArena;
    RunStatus Status =
        M->solve(*G, GP.lastTermNumVars(), SolArena, Sols, Max);
    if (Out)
      for (const Solution &S : Sols) {
        std::string Line;
        for (const Term *B : S.Bindings)
          if (B)
            Line += (Line.empty() ? "" : ", ") + writeTerm(B, Syms);
        Out->push_back(Line);
      }
    return Status;
  }

  SymbolTable Syms;
  TermArena Arena;
  std::unique_ptr<CompiledProgram> Program;
  std::unique_ptr<Machine> M;
};

TEST_F(MachineStressTest, WidePredicateManyConstants) {
  // 200 facts with distinct first-argument constants: indexing must pick
  // exactly the right clause, and the var bucket must enumerate all.
  std::string Source;
  for (int I = 0; I != 200; ++I)
    Source += "w(k" + std::to_string(I) + ", " + std::to_string(I) + ").\n";
  compile(Source);
  std::vector<std::string> Out;
  EXPECT_EQ(run("w(k137, V)", &Out), RunStatus::Success);
  EXPECT_EQ(Out, (std::vector<std::string>{"137"}));
  Out.clear();
  EXPECT_EQ(run("w(K, V)", &Out, 500), RunStatus::Success);
  EXPECT_EQ(Out.size(), 200u);
  EXPECT_EQ(run("w(nope, _)"), RunStatus::Failure);
}

TEST_F(MachineStressTest, WideArityPredicate) {
  // A predicate with 60 arguments exercises the register file.
  std::string Head = "wide(";
  std::string Goal = "wide(";
  for (int I = 0; I != 60; ++I) {
    Head += (I ? ", X" : "X") + std::to_string(I);
    Goal += (I ? ", " : "") + std::to_string(I);
  }
  Head += ")";
  Goal += ")";
  compile(Head + " :- X59 > X0.\n");
  EXPECT_EQ(run(Goal), RunStatus::Success);
}

TEST_F(MachineStressTest, DeepRecursionWithChoicePoints) {
  // Non-tail recursion with an open alternative at every level.
  compile("d(0). d(N) :- N > 0, N1 is N - 1, d(N1).\n"
          "d(N) :- N > 1000000.");
  EXPECT_EQ(run("d(20000)"), RunStatus::Success);
  MachineStats S = M->stats();
  EXPECT_GT(S.ChoicePoints, 10000u);
  EXPECT_GT(S.MaxStackSlots, 10000u);
}

TEST_F(MachineStressTest, TrailRestoreAcrossManyFailures) {
  // Each alternative binds then fails; bindings must be fully undone so
  // the final alternative sees unbound variables.
  compile("t(X, Y) :- member(X, [1,2,3,4,5]), X > 4, Y = found(X).\n"
          "member(X, [X|_]). member(X, [_|T]) :- member(X, T).");
  std::vector<std::string> Out;
  EXPECT_EQ(run("t(A, B)", &Out), RunStatus::Success);
  EXPECT_EQ(Out, (std::vector<std::string>{"5, found(5)"}));
}

TEST_F(MachineStressTest, MachineReusableAcrossSolves) {
  compile("p(1). p(2).");
  for (int I = 0; I != 50; ++I) {
    std::vector<std::string> Out;
    EXPECT_EQ(run("p(X)", &Out, 10), RunStatus::Success);
    EXPECT_EQ(Out.size(), 2u);
  }
}

TEST_F(MachineStressTest, StepBudgetTriggersError) {
  MachineOptions Options;
  Options.MaxSteps = 1000;
  compile("loop :- loop.", Options);
  EXPECT_EQ(run("loop"), RunStatus::Error);
  EXPECT_NE(M->errorMessage().find("budget"), std::string::npos);
}

TEST_F(MachineStressTest, HeapBudgetTriggersError) {
  MachineOptions Options;
  Options.MaxHeapCells = 4096;
  compile("grow(L) :- grow([x|L]).", Options);
  EXPECT_EQ(run("grow([])"), RunStatus::Error);
}

TEST_F(MachineStressTest, ArithmeticEdgeCases) {
  compile(
      "m(X) :- X is -7 mod 3.\n"          // mod result is non-negative
      "r(X) :- X is -7 rem 3.\n"          // rem keeps the dividend's sign
      "d0 :- _ is 1 // 0.\n"              // division by zero is an error
      "shift(X) :- X is 1 << 10.\n"
      "bits(X) :- X is 12 /\\ 10, X =:= 8.\n"
      "neg(X) :- X is - (5), X =:= -5.\n"
      "mm(X) :- X is min(3, max(1, 2)).");
  std::vector<std::string> Out;
  EXPECT_EQ(run("m(X)", &Out), RunStatus::Success);
  EXPECT_EQ(Out, (std::vector<std::string>{"2"}));
  Out.clear();
  EXPECT_EQ(run("r(X)", &Out), RunStatus::Success);
  EXPECT_EQ(Out, (std::vector<std::string>{"-1"}));
  EXPECT_EQ(run("d0"), RunStatus::Error);
  compile("shift(X) :- X is 1 << 10.");
  Out.clear();
  EXPECT_EQ(run("shift(X)", &Out), RunStatus::Success);
  EXPECT_EQ(Out, (std::vector<std::string>{"1024"}));
}

TEST_F(MachineStressTest, StatsReportEnvironmentsAndHeap) {
  compile("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
          "main :- app([1,2,3,4,5,6,7,8], [9], _).");
  EXPECT_EQ(run("main"), RunStatus::Success);
  MachineStats S = M->stats();
  EXPECT_GT(S.Instructions, 20u);
  EXPECT_GT(S.MaxHeapCells, 20u);
}

TEST_F(MachineStressTest, DeepStructureUnification) {
  // 200-deep nested structure built in the goal and matched by the head.
  std::string Deep = "x";
  for (int I = 0; I != 200; ++I)
    Deep = "f(" + Deep + ")";
  compile("deep(" + Deep + ").");
  EXPECT_EQ(run("deep(" + Deep + ")"), RunStatus::Success);
  EXPECT_EQ(run("deep(g(x))"), RunStatus::Failure);
}

TEST_F(MachineStressTest, LongListUnification) {
  // 5000-element lists unify without machine-stack recursion issues.
  std::string Long = "mk(0, []) :- !.\n"
                     "mk(N, [N|T]) :- N1 is N - 1, mk(N1, T).\n"
                     "eq(X, X).\n"
                     "main :- mk(5000, A), mk(5000, B), eq(A, B).";
  compile(Long);
  EXPECT_EQ(run("main"), RunStatus::Success);
}

TEST_F(MachineStressTest, BacktrackingRestoresArgumentRegisters) {
  // The bug this guards against: choice points must save/restore argument
  // registers (arity recorded in the Try instruction).
  compile("pick(X, Y) :- alt(X), use(X, Y).\n"
          "alt(1). alt(2). alt(3).\n"
          "use(3, ok).");
  std::vector<std::string> Out;
  EXPECT_EQ(run("pick(X, Y)", &Out), RunStatus::Success);
  EXPECT_EQ(Out, (std::vector<std::string>{"3, ok"}));
}

TEST_F(MachineStressTest, ReachabilityReportFindsDeadCode) {
  compile("main :- used(1).\n"
          "used(_).\n"
          "never(_) :- used(2).\n");
  AnalysisSession A(*Program);
  Result<AnalysisResult> R = A.analyze("main");
  ASSERT_TRUE(R) << R.diag().str();
  std::string Report = formatReachability(*R, *Program);
  EXPECT_NE(Report.find("unreachable: never/1"), std::string::npos)
      << Report;
  EXPECT_EQ(Report.find("unreachable: used/1"), std::string::npos)
      << Report;
}

TEST_F(MachineStressTest, ReachabilityReportNeverSucceeds) {
  compile("main :- broken(_).\n"
          "broken(X) :- integer(X), atom(X).");
  AnalysisSession A(*Program);
  Result<AnalysisResult> R = A.analyze("main");
  ASSERT_TRUE(R) << R.diag().str();
  std::string Report = formatReachability(*R, *Program);
  EXPECT_NE(Report.find("never succeeds: broken/1"), std::string::npos)
      << Report;
}

} // namespace
