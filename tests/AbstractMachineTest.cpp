//===- tests/AbstractMachineTest.cpp - Abstract machine unit tests --------===//
//
// Direct tests of the abstract machine's control scheme: iteration
// protocol, memoization, trace events, instruction accounting, budget
// handling, and entry-spec validation.
//
//===----------------------------------------------------------------------===//

#include "analyzer/AbstractMachine.h"
#include "analyzer/Session.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

class AbstractMachineTest : public ::testing::Test {
protected:
  void compile(std::string_view Source) {
    Result<CompiledProgram> P = compileSource(Source, Syms, Arena);
    ASSERT_TRUE(P) << P.diag().str();
    Program = std::make_unique<CompiledProgram>(P.take());
  }

  int32_t pid(std::string_view Name, int Arity) {
    return Program->Module->findPredicate(Syms.intern(Name), Arity);
  }

  SymbolTable Syms;
  TermArena Arena;
  std::unique_ptr<CompiledProgram> Program;
};

TEST_F(AbstractMachineTest, QuiescentSecondIteration) {
  compile("p(a). p(b).");
  ExtensionTable Table;
  AbstractMachine M(*Program, Table);
  Pattern Entry = makeEntryPattern({PatKind::VarP});
  ASSERT_EQ(M.runIteration(pid("p", 1), Entry), AbsRunStatus::Completed);
  EXPECT_TRUE(M.changedSinceLastRun());
  ASSERT_EQ(M.runIteration(pid("p", 1), Entry), AbsRunStatus::Completed);
  EXPECT_FALSE(M.changedSinceLastRun());
  EXPECT_EQ(Table.size(), 1u);
}

TEST_F(AbstractMachineTest, MemoizationAvoidsReexploration) {
  // q is called twice with the same pattern; the table must have exactly
  // one q entry and the second call must be a lookup (visible as fewer
  // explore events than calls).
  compile("p :- q(1), q(2).\nq(_).");
  std::vector<std::string> Trace;
  ExtensionTable Table;
  AbsMachineOptions Options;
  Options.TraceLog = &Trace;
  AbstractMachine M(*Program, Table, Options);
  ASSERT_EQ(M.runIteration(pid("p", 0), makeEntryPattern({})),
            AbsRunStatus::Completed);
  int Calls = 0, Explores = 0;
  for (const std::string &L : Trace) {
    if (L.starts_with("call q/1"))
      ++Calls;
    if (L.starts_with("explore q/1"))
      ++Explores;
  }
  EXPECT_EQ(Calls, 2);
  EXPECT_EQ(Explores, 1); // both calls abstract to q(int): one exploration
  int QEntries = 0;
  for (const ETEntry &E : Table.entries())
    if (Program->Module->predicateLabel(E.PredId) == "q/1")
      ++QEntries;
  EXPECT_EQ(QEntries, 1);
}

TEST_F(AbstractMachineTest, RecursiveCallFailsFirstIteration) {
  compile("r(X) :- r(X).");
  ExtensionTable Table;
  AbstractMachine M(*Program, Table);
  Pattern Entry = makeEntryPattern({PatKind::GroundP});
  ASSERT_EQ(M.runIteration(pid("r", 1), Entry), AbsRunStatus::Completed);
  // Pure recursion never produces a success pattern.
  for (const ETEntry &E : Table.entries())
    EXPECT_FALSE(E.Success.has_value());
}

TEST_F(AbstractMachineTest, StepsAccumulateAcrossIterations) {
  compile("nat(0). nat(s(N)) :- nat(N).");
  ExtensionTable Table;
  AbstractMachine M(*Program, Table);
  Pattern Entry = makeEntryPattern({PatKind::VarP});
  ASSERT_EQ(M.runIteration(pid("nat", 1), Entry), AbsRunStatus::Completed);
  uint64_t After1 = M.stepsExecuted();
  ASSERT_EQ(M.runIteration(pid("nat", 1), Entry), AbsRunStatus::Completed);
  EXPECT_GT(M.stepsExecuted(), After1);
}

TEST_F(AbstractMachineTest, StepBudgetReportsError) {
  compile("p(a, b, c, d, e, f, g, h).");
  ExtensionTable Table;
  AbsMachineOptions Options;
  Options.MaxSteps = 5; // fewer than the 8 gets + proceed of the clause
  AbstractMachine M(*Program, Table, Options);
  std::vector<PatKind> Args(8, PatKind::VarP);
  EXPECT_EQ(M.runIteration(pid("p", 8), makeEntryPattern(Args)),
            AbsRunStatus::Error);
  EXPECT_NE(M.errorMessage().find("budget"), std::string::npos);
}

TEST_F(AbstractMachineTest, TraceShowsControlProtocol) {
  compile("p(X) :- q(X).\nq(a).");
  std::vector<std::string> Trace;
  ExtensionTable Table;
  AbsMachineOptions Options;
  Options.TraceLog = &Trace;
  AbstractMachine M(*Program, Table, Options);
  ASSERT_EQ(
      M.runIteration(pid("p", 1), makeEntryPattern({PatKind::AnyP})),
      AbsRunStatus::Completed);
  std::string All;
  for (const std::string &L : Trace)
    All += L + "\n";
  EXPECT_NE(All.find("explore p/1 clause 1"), std::string::npos) << All;
  EXPECT_NE(All.find("call q/1"), std::string::npos) << All;
  EXPECT_NE(All.find("updateET(q/1 (a))"), std::string::npos) << All;
  EXPECT_NE(All.find("lookupET"), std::string::npos) << All;
}

TEST_F(AbstractMachineTest, EntrySpecErrors) {
  compile("p(a).");
  AnalysisSession A(*Program);
  EXPECT_FALSE(A.analyze("missing(var)"));
  EXPECT_FALSE(A.analyze("p(var, var)")); // wrong arity
  EXPECT_FALSE(A.analyze("p(banana)"));   // unknown kind
  EXPECT_TRUE(A.analyze("p(var)"));
}

TEST_F(AbstractMachineTest, MakeEntryPatternShapes) {
  Pattern P = makeEntryPattern(
      {PatKind::GroundP, PatKind::VarP, PatKind::ListP});
  EXPECT_EQ(P.Roots.size(), 3u);
  EXPECT_EQ(P.Nodes[P.Roots[0]].K, PatKind::GroundP);
  EXPECT_EQ(P.Nodes[P.Roots[2]].K, PatKind::ListP);
  ASSERT_EQ(P.Nodes[P.Roots[2]].ChildCount, 1);
}

TEST_F(AbstractMachineTest, ParseEntrySpecForms) {
  Result<std::pair<std::string, Pattern>> S =
      parseEntrySpec("foo(g, var, anylist, atomlist, 7)");
  ASSERT_TRUE(S) << S.diag().str();
  EXPECT_EQ(S->first, "foo");
  ASSERT_EQ(S->second.Roots.size(), 5u);
  EXPECT_EQ(S->second.Nodes[S->second.Roots[0]].K, PatKind::GroundP);
  EXPECT_EQ(S->second.Nodes[S->second.Roots[4]].K, PatKind::IntP);
  EXPECT_EQ(S->second.Nodes[S->second.Roots[4]].Num, 7);

  EXPECT_TRUE(parseEntrySpec("main"));
  EXPECT_FALSE(parseEntrySpec("f(unknownkind)"));
  EXPECT_FALSE(parseEntrySpec("(g)"));
}

TEST_F(AbstractMachineTest, ParseEntrySpecWhitespaceAndArity) {
  // Whitespace around the name, the arguments, and the whole spec.
  Result<std::pair<std::string, Pattern>> S =
      parseEntrySpec("  p ( g , var ) ");
  ASSERT_TRUE(S) << S.diag().str();
  EXPECT_EQ(S->first, "p");
  ASSERT_EQ(S->second.Roots.size(), 2u);
  EXPECT_EQ(S->second.Nodes[S->second.Roots[0]].K, PatKind::GroundP);
  EXPECT_EQ(S->second.Nodes[S->second.Roots[1]].K, PatKind::VarP);

  // Missing-arity shorthand: name/arity means all-any arguments.
  Result<std::pair<std::string, Pattern>> T = parseEntrySpec("qsort/3");
  ASSERT_TRUE(T) << T.diag().str();
  EXPECT_EQ(T->first, "qsort");
  ASSERT_EQ(T->second.Roots.size(), 3u);
  EXPECT_EQ(T->second.Nodes[T->second.Roots[2]].K, PatKind::AnyP);

  // An empty (even blank) argument list is arity 0.
  Result<std::pair<std::string, Pattern>> Z = parseEntrySpec("main( )");
  ASSERT_TRUE(Z) << Z.diag().str();
  EXPECT_EQ(Z->second.Roots.size(), 0u);

  // Negative integer literals parse as themselves.
  Result<std::pair<std::string, Pattern>> Neg = parseEntrySpec("f(-12)");
  ASSERT_TRUE(Neg) << Neg.diag().str();
  EXPECT_EQ(Neg->second.Nodes[Neg->second.Roots[0]].Num, -12);
}

TEST_F(AbstractMachineTest, ParseEntrySpecDescriptiveErrors) {
  auto expectError = [](std::string_view Spec, std::string_view Needle) {
    Result<std::pair<std::string, Pattern>> R = parseEntrySpec(Spec);
    ASSERT_FALSE(R) << "'" << Spec << "' parsed unexpectedly";
    EXPECT_NE(R.diag().str().find(Needle), std::string::npos)
        << "'" << Spec << "' error was: " << R.diag().str();
  };
  expectError("", "empty");
  expectError("p(g,)", "argument 2");
  expectError("p(-a)", "argument 1"); // previously crashed in std::stoll
  expectError("p q(g)", "whitespace");
  expectError("p(var", "missing ')'");
  expectError("foo/x", "arity");
  expectError("foo/-1", "arity");
  expectError("p(f(g))", "nested");
  expectError("p(99999999999999999999)", "argument 1"); // would overflow
}

} // namespace
