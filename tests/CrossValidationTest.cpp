//===- tests/CrossValidationTest.cpp - Compiled vs baseline analyzer ------===//
//
// The strongest correctness check in the project: the compiled abstract
// WAM (src/analyzer) and the meta-interpreting baseline (src/baseline)
// implement the same analysis by two very different mechanisms, so they
// must compute identical extension tables.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "baseline/MetaAnalyzer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace awam;

namespace {

class CrossValidationTest : public ::testing::Test {
protected:
  /// Runs both analyzers and compares their (label, call, success) sets.
  void check(std::string_view Source, std::string_view EntrySpec) {
    SymbolTable Syms;
    TermArena Arena;
    Result<ParsedProgram> Parsed = parseProgram(Source, Syms, Arena);
    ASSERT_TRUE(Parsed) << Parsed.diag().str();
    Result<CompiledProgram> Compiled = compileProgram(*Parsed, Syms);
    ASSERT_TRUE(Compiled) << Compiled.diag().str();

    AnalysisSession CompiledAnalyzer(*Compiled);
    Result<AnalysisResult> RC = CompiledAnalyzer.analyze(EntrySpec);
    ASSERT_TRUE(RC) << RC.diag().str();

    AnalysisSession Baseline = makeBaselineSession(*Parsed, Syms);
    Result<AnalysisResult> RB = Baseline.analyze(EntrySpec);
    ASSERT_TRUE(RB) << RB.diag().str();

    EXPECT_TRUE(RC->Converged);
    EXPECT_TRUE(RB->Converged);

    auto summarize = [&](const AnalysisResult &R) {
      std::vector<std::string> Lines;
      for (const AnalysisResult::Item &I : R.Items)
        Lines.push_back(I.PredLabel + " " + I.Call.str(Syms) + " -> " +
                        (I.Success ? I.Success->str(Syms) : "(fails)"));
      std::sort(Lines.begin(), Lines.end());
      return Lines;
    };
    EXPECT_EQ(summarize(*RC), summarize(*RB)) << "entry: " << EntrySpec;
  }
};

TEST_F(CrossValidationTest, Facts) {
  check("p(a). p(b). p(1).", "p(var)");
}

TEST_F(CrossValidationTest, Append) {
  check("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
        "app(glist, glist, var)");
}

TEST_F(CrossValidationTest, AppendBackward) {
  check("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
        "app(var, var, glist)");
}

TEST_F(CrossValidationTest, NaiveReverse) {
  check("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
        "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).",
        "nrev(glist, var)");
}

TEST_F(CrossValidationTest, QuickSort) {
  check("partition([], _, [], []).\n"
        "partition([X|L], Y, [X|L1], L2) :- X =< Y, !, "
        "partition(L, Y, L1, L2).\n"
        "partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).\n"
        "qsort([], R, R).\n"
        "qsort([X|L], R, R0) :- partition(L, X, L1, L2), "
        "qsort(L2, R1, R0), qsort(L1, R, [X|R1]).",
        "qsort(glist, var, const)");
}

TEST_F(CrossValidationTest, Arithmetic) {
  check("fact(0, 1).\n"
        "fact(N, F) :- N > 0, N1 is N - 1, fact(N1, F1), F is N * F1.",
        "fact(int, var)");
}

TEST_F(CrossValidationTest, SymbolicDerivative) {
  check("d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).\n"
        "d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).\n"
        "d(X, X, 1) :- !.\n"
        "d(_, _, 0).",
        "d(g, atom, var)");
}

TEST_F(CrossValidationTest, Mutual) {
  check("even(0). even(s(N)) :- odd(N).\n"
        "odd(s(N)) :- even(N).",
        "even(var)");
}

TEST_F(CrossValidationTest, TypeTests) {
  check("classify(X, atom) :- atom(X).\n"
        "classify(X, int) :- integer(X).\n"
        "classify(X, var) :- var(X).\n"
        "classify(f(Y), str) :- nonvar(Y).",
        "classify(any, var)");
}

TEST_F(CrossValidationTest, MemberSelect) {
  check("member(X, [X|_]).\n"
        "member(X, [_|T]) :- member(X, T).\n"
        "select(X, [X|T], T).\n"
        "select(X, [H|T], [H|R]) :- select(X, T, R).",
        "select(var, glist, var)");
}

} // namespace
