//===- tests/BatchSessionTest.cpp - Persistent store / batch tests --------===//
//
// The persistent AnalysisStore must be invisible in every answer: a warm
// query's per-root projection — report, modes, thread-invariant counters —
// is byte-identical to a from-scratch analyze() of that entry at every
// thread count, the final store contents are independent of query order,
// and failing queries (bad specs, budget hits) leave the store untouched.
// This suite pins those contracts on all Table 1 benchmarks (querying
// every defined predicate through one warm store), on randomized programs
// under permuted query orders, and on the batch / reanalyze surfaces.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "analyzer/Store.h"
#include "programs/Benchmarks.h"
#include "RandomProgramGen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

using namespace awam;

namespace {

AnalyzerOptions persistentOptions(int Threads) {
  AnalyzerOptions O;
  O.Persistent = true;
  O.NumThreads = Threads;
  return O;
}

/// Everything the per-root identity contract covers: the formatted
/// reports plus the thread-count-invariant counters. Probe and interner
/// statistics are deliberately absent (a shared interner reports
/// per-query deltas; the report does not print them).
std::string fingerprint(const AnalysisResult &R, const SymbolTable &Syms) {
  std::string F = formatAnalysis(R, Syms);
  F += formatModes(R, Syms);
  F += "\niters=" + std::to_string(R.Iterations);
  F += " conv=" + std::to_string(R.Converged);
  F += " instr=" + std::to_string(R.Instructions);
  F += " acts=" + std::to_string(R.Counters.ActivationRuns);
  F += " runs=" + std::to_string(R.Counters.SchedulerRuns);
  F += " edges=" + std::to_string(R.Counters.DepEdges);
  return F;
}

/// A query's outcome as a comparable string: the fingerprint on success,
/// the diagnostic otherwise. Order-independence must hold for errors too.
std::string outcomeOf(const Result<AnalysisResult> &R,
                      const SymbolTable &Syms) {
  return R ? fingerprint(*R, Syms) : "ERROR: " + R.diag().str();
}

std::unique_ptr<CompiledProgram> compileOrDie(const std::string &Source,
                                              SymbolTable &Syms,
                                              TermArena &Arena) {
  Result<CompiledProgram> P = compileSource(Source, Syms, Arena);
  EXPECT_TRUE(P) << P.diag().str() << "\n--- source ---\n" << Source;
  if (!P)
    return nullptr;
  return std::make_unique<CompiledProgram>(P.take());
}

/// One spec per defined predicate of \p P, all-any arguments.
std::vector<std::string> definedPredSpecs(const CompiledProgram &P,
                                          const SymbolTable &Syms) {
  std::vector<std::string> Specs;
  for (int32_t I = 0; I != P.Module->numPredicates(); ++I) {
    const PredicateInfo &PI = P.Module->predicate(I);
    if (PI.Clauses.empty())
      continue;
    std::string Name(Syms.name(PI.Name));
    Specs.push_back(PI.Arity == 0 ? Name
                                  : Name + "/" + std::to_string(PI.Arity));
  }
  return Specs;
}

class BatchSessionTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchSessionTest, WarmQueriesMatchScratchOnAllBenchmarks) {
  // Every Table 1 benchmark: push the entry spec plus every defined
  // predicate through one warm persistent session; each answer must match
  // a from-scratch session on that spec byte-for-byte, and re-asking the
  // first spec must come from the result cache unchanged.
  const int Threads = GetParam();
  int Checked = 0;
  uint64_t TotalWarm = 0, TotalReplayed = 0;
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    SymbolTable Syms;
    TermArena Arena;
    std::unique_ptr<CompiledProgram> P =
        compileOrDie(std::string(B.Source), Syms, Arena);
    ASSERT_NE(P, nullptr) << B.Name;

    std::vector<std::string> Specs{std::string(B.EntrySpec)};
    for (std::string &S : definedPredSpecs(*P, Syms))
      if (S != B.EntrySpec)
        Specs.push_back(std::move(S));

    AnalysisSession Warm(*P, persistentOptions(Threads));
    std::string FirstOutcome;
    for (const std::string &Spec : Specs) {
      Result<AnalysisResult> RWarm = Warm.analyze(Spec);

      AnalyzerOptions ScratchOpts;
      ScratchOpts.NumThreads = Threads;
      AnalysisSession Scratch(*P, ScratchOpts);
      Result<AnalysisResult> RScr = Scratch.analyze(Spec);

      EXPECT_EQ(outcomeOf(RScr, Syms), outcomeOf(RWarm, Syms))
          << B.Name << " spec " << Spec;
      if (FirstOutcome.empty())
        FirstOutcome = outcomeOf(RWarm, Syms);
    }

    // Repeat of the first spec: a pure cache hit with the identical answer.
    ASSERT_NE(Warm.store(), nullptr) << B.Name;
    uint64_t HitsBefore = Warm.store()->stats().CacheHits;
    Result<AnalysisResult> RAgain = Warm.analyze(Specs.front());
    EXPECT_EQ(FirstOutcome, outcomeOf(RAgain, Syms)) << B.Name;
    EXPECT_EQ(Warm.store()->stats().CacheHits, HitsBefore + 1) << B.Name;

    TotalWarm += Warm.store()->stats().WarmQueries;
    TotalReplayed += Warm.store()->stats().ReplayedRuns;
    ++Checked;
  }
  EXPECT_EQ(Checked, 11);
  // The mechanism must actually engage: queries past the first drain warm
  // and replay banked runs rather than re-executing everything.
  EXPECT_GT(TotalWarm, 0u);
  EXPECT_GT(TotalReplayed, 0u);
}

TEST_P(BatchSessionTest, AnalyzeBatchMatchesIndividualScratchRuns) {
  const int Threads = GetParam();
  const BenchmarkProgram &B = benchmarkPrograms().front();
  SymbolTable Syms;
  TermArena Arena;
  std::unique_ptr<CompiledProgram> P =
      compileOrDie(std::string(B.Source), Syms, Arena);
  ASSERT_NE(P, nullptr);

  std::vector<std::string> Specs{std::string(B.EntrySpec)};
  for (std::string &S : definedPredSpecs(*P, Syms))
    if (S != B.EntrySpec)
      Specs.push_back(std::move(S));

  AnalysisSession S(*P, persistentOptions(Threads));
  Result<std::vector<AnalysisResult>> Batch = S.analyzeBatch(Specs);
  ASSERT_TRUE(Batch) << Batch.diag().str();
  ASSERT_EQ(Batch->size(), Specs.size());
  for (size_t I = 0; I != Specs.size(); ++I) {
    AnalyzerOptions ScratchOpts;
    ScratchOpts.NumThreads = Threads;
    AnalysisSession Scratch(*P, ScratchOpts);
    Result<AnalysisResult> RScr = Scratch.analyze(Specs[I]);
    ASSERT_TRUE(RScr) << Specs[I] << ": " << RScr.diag().str();
    EXPECT_EQ(fingerprint(*RScr, Syms), fingerprint((*Batch)[I], Syms))
        << Specs[I];
  }
  // Also warm on a non-persistent session: analyzeBatch shares a store
  // whenever the configuration allows one.
  AnalysisSession Plain(*P, AnalyzerOptions{});
  Result<std::vector<AnalysisResult>> Batch2 = Plain.analyzeBatch(Specs);
  ASSERT_TRUE(Batch2) << Batch2.diag().str();
  for (size_t I = 0; I != Specs.size(); ++I)
    EXPECT_EQ(fingerprint((*Batch)[I], Syms),
              fingerprint((*Batch2)[I], Syms))
        << Specs[I];
}

TEST_P(BatchSessionTest, BatchValidatesEverySpecUpFront) {
  // A bad spec anywhere in the list aborts before any analysis: the store
  // is exactly as it was — same contents, same query statistics.
  const BenchmarkProgram &B = benchmarkPrograms().front();
  SymbolTable Syms;
  TermArena Arena;
  std::unique_ptr<CompiledProgram> P =
      compileOrDie(std::string(B.Source), Syms, Arena);
  ASSERT_NE(P, nullptr);

  AnalysisSession S(*P, persistentOptions(GetParam()));
  ASSERT_TRUE(S.analyze(B.EntrySpec));
  ASSERT_NE(S.store(), nullptr);
  std::string DumpBefore = S.store()->canonicalDump(Syms);
  uint64_t QueriesBefore = S.store()->stats().Queries;

  // Unparsable spec last: everything before it must NOT have run.
  Result<std::vector<AnalysisResult>> Bad1 =
      S.analyzeBatch({std::string(B.EntrySpec), "p(unclosed"});
  EXPECT_FALSE(Bad1);
  // Unknown predicate in the middle.
  Result<std::vector<AnalysisResult>> Bad2 = S.analyzeBatch(
      {std::string(B.EntrySpec), "no_such_pred/3", std::string(B.EntrySpec)});
  EXPECT_FALSE(Bad2);

  EXPECT_EQ(DumpBefore, S.store()->canonicalDump(Syms));
  EXPECT_EQ(QueriesBefore, S.store()->stats().Queries);
}

TEST_P(BatchSessionTest, FailingQueriesLeaveTheStoreUntouched) {
  // Interleave succeeding and failing queries: unknown entries error,
  // budget-hit queries return sound partial results but never merge, and
  // neither disturbs the merged state or the cached answers.
  SymbolTable Syms;
  TermArena Arena;
  const std::string Src =
      "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
      "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n";
  std::unique_ptr<CompiledProgram> P = compileOrDie(Src, Syms, Arena);
  ASSERT_NE(P, nullptr);

  AnalysisSession S(*P, persistentOptions(GetParam()));
  Result<AnalysisResult> R0 = S.analyze("app(glist, glist, var)");
  ASSERT_TRUE(R0) << R0.diag().str();
  ASSERT_NE(S.store(), nullptr);
  std::string Dump0 = S.store()->canonicalDump(Syms);
  std::string Fp0 = fingerprint(*R0, Syms);

  // Unknown entry predicate: an error, nothing written.
  EXPECT_FALSE(S.analyze("missing(var)"));
  EXPECT_EQ(Dump0, S.store()->canonicalDump(Syms));

  // Sweep budget zero: the nrev query cannot converge, so it must not
  // merge — and must not disturb what the app query banked.
  S.setBudgets(0, 200'000'000);
  Result<AnalysisResult> RBudget = S.analyze("nrev(glist, var)");
  ASSERT_TRUE(RBudget) << RBudget.diag().str();
  EXPECT_FALSE(RBudget->Converged);
  EXPECT_EQ(Dump0, S.store()->canonicalDump(Syms));

  // Step budget one: whether this surfaces as a machine error or an
  // unconverged partial result, the store stays untouched.
  S.setBudgets(1000, 1);
  Result<AnalysisResult> RSteps = S.analyze("nrev(glist, var)");
  if (RSteps) {
    EXPECT_FALSE(RSteps->Converged);
  }
  EXPECT_EQ(Dump0, S.store()->canonicalDump(Syms));

  // Budgets restored: the failed entry now converges and merges, and the
  // original root still answers from cache, unchanged.
  S.setBudgets(1000, 200'000'000);
  Result<AnalysisResult> R1 = S.analyze("nrev(glist, var)");
  ASSERT_TRUE(R1) << R1.diag().str();
  EXPECT_TRUE(R1->Converged);
  EXPECT_NE(Dump0, S.store()->canonicalDump(Syms));
  Result<AnalysisResult> RCache = S.analyze("app(glist, glist, var)");
  ASSERT_TRUE(RCache) << RCache.diag().str();
  EXPECT_EQ(Fp0, fingerprint(*RCache, Syms));
}

TEST_P(BatchSessionTest, QueryOrderIndependenceOnRandomPrograms) {
  // >= 30 random programs: run the same query set in three different
  // orders through three fresh stores. Every per-spec outcome and the
  // canonical store dump must be identical across orders.
  const int Threads = GetParam();
  int Programs = 0;
  for (unsigned Seed = 0; Seed != 30; ++Seed) {
    SymbolTable Syms;
    TermArena Arena;
    std::string Src = testgen::generateProgram(Seed);
    std::unique_ptr<CompiledProgram> P = compileOrDie(Src, Syms, Arena);
    ASSERT_NE(P, nullptr) << "seed " << Seed;

    std::vector<std::string> Specs = definedPredSpecs(*P, Syms);
    ASSERT_FALSE(Specs.empty()) << "seed " << Seed;
    if (Specs.size() > 6)
      Specs.resize(6);

    std::vector<std::vector<std::string>> Orders;
    Orders.push_back(Specs);
    Orders.emplace_back(Specs.rbegin(), Specs.rend());
    std::vector<std::string> Rotated(Specs.begin() + Specs.size() / 2,
                                     Specs.end());
    Rotated.insert(Rotated.end(), Specs.begin(),
                   Specs.begin() + Specs.size() / 2);
    Orders.push_back(std::move(Rotated));

    std::vector<std::string> Dumps;
    std::vector<std::vector<std::string>> Outcomes;
    for (const std::vector<std::string> &Order : Orders) {
      AnalysisSession S(*P, persistentOptions(Threads));
      std::vector<std::string> Got(Specs.size());
      for (const std::string &Spec : Order) {
        Result<AnalysisResult> R = S.analyze(Spec);
        size_t At = static_cast<size_t>(
            std::find(Specs.begin(), Specs.end(), Spec) - Specs.begin());
        Got[At] = outcomeOf(R, Syms);
      }
      ASSERT_NE(S.store(), nullptr) << "seed " << Seed;
      Dumps.push_back(S.store()->canonicalDump(Syms));
      Outcomes.push_back(std::move(Got));
    }
    for (size_t O = 1; O != Orders.size(); ++O) {
      EXPECT_EQ(Dumps[0], Dumps[O])
          << "seed " << Seed << " order " << O << "\n--- source ---\n" << Src;
      EXPECT_EQ(Outcomes[0], Outcomes[O])
          << "seed " << Seed << " order " << O << "\n--- source ---\n" << Src;
    }
    ++Programs;
  }
  EXPECT_GE(Programs, 30);
}

TEST_P(BatchSessionTest, ReanalyzeInvalidatesOnlyTheEditCone) {
  // Two independent subtrees queried as two roots; editing one side must
  // leave the other root's cached answer intact (cone invalidation) while
  // both sides match scratch sessions on the edited program.
  const int Threads = GetParam();
  SymbolTable Syms;
  TermArena Arena0, Arena1;
  const std::string Src = "a1(x). a2(X) :- a1(X).\n"
                          "b1(y). b2(X) :- b1(X).\n";
  std::unique_ptr<CompiledProgram> P0 = compileOrDie(Src, Syms, Arena0);
  ASSERT_NE(P0, nullptr);

  AnalysisSession S(*P0, persistentOptions(Threads));
  Result<AnalysisResult> RA = S.analyze("a2(var)");
  ASSERT_TRUE(RA) << RA.diag().str();
  Result<AnalysisResult> RB = S.analyze("b2(var)");
  ASSERT_TRUE(RB) << RB.diag().str();
  ASSERT_NE(S.store(), nullptr);
  std::string FpA = fingerprint(*RA, Syms);

  // Edit the b-side only (same symbol table, recompiled source).
  std::unique_ptr<CompiledProgram> P1 =
      compileOrDie(Src + "b1(z).\n", Syms, Arena1);
  ASSERT_NE(P1, nullptr);
  Result<AnalysisResult> RB2 = S.reanalyze(*P1);
  ASSERT_TRUE(RB2) << RB2.diag().str();

  const AnalysisStore::Stats &St = S.store()->stats();
  EXPECT_EQ(St.InvalidatedRoots, 1u);
  EXPECT_GE(St.LastConeEntries, 1u);

  // The a-side survived: answered from cache, byte-identical to scratch
  // on the edited program.
  uint64_t HitsBefore = St.CacheHits;
  Result<AnalysisResult> RA2 = S.analyze("a2(var)");
  ASSERT_TRUE(RA2) << RA2.diag().str();
  EXPECT_EQ(S.store()->stats().CacheHits, HitsBefore + 1);
  EXPECT_EQ(FpA, fingerprint(*RA2, Syms));

  for (const char *Spec : {"a2(var)", "b2(var)"}) {
    AnalyzerOptions ScratchOpts;
    ScratchOpts.NumThreads = Threads;
    AnalysisSession Scratch(*P1, ScratchOpts);
    Result<AnalysisResult> RScr = Scratch.analyze(Spec);
    ASSERT_TRUE(RScr) << Spec << ": " << RScr.diag().str();
    Result<AnalysisResult> RStore = S.analyze(Spec);
    ASSERT_TRUE(RStore) << Spec << ": " << RStore.diag().str();
    EXPECT_EQ(fingerprint(*RScr, Syms), fingerprint(*RStore, Syms)) << Spec;
  }
}

TEST(WarmDrainTest, StoreWarmDrainsByteIdenticalAcrossWarmThreads) {
  // Tentpole: a warm query's validated journal replay fans out across the
  // warm pool. Every per-spec answer, the final store dump, and the
  // thread-invariant replay/execute split must be independent of
  // WarmThreads, and the speculative-validation accounting must balance.
  uint64_t TotalBatches = 0, TotalSpecReplays = 0;
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    std::vector<std::string> Outcomes1;
    std::string Dump1;
    uint64_t Warm1 = 0, Replayed1 = 0, Executed1 = 0;
    for (int WarmThreads : {1, 4}) {
      SymbolTable Syms;
      TermArena Arena;
      std::unique_ptr<CompiledProgram> P =
          compileOrDie(std::string(B.Source), Syms, Arena);
      ASSERT_NE(P, nullptr) << B.Name;

      std::vector<std::string> Specs{std::string(B.EntrySpec)};
      for (std::string &S : definedPredSpecs(*P, Syms))
        if (S != B.EntrySpec)
          Specs.push_back(std::move(S));

      AnalyzerOptions O = persistentOptions(1);
      O.WarmThreads = WarmThreads;
      AnalysisSession S(*P, O);
      std::vector<std::string> Outcomes;
      for (const std::string &Spec : Specs)
        Outcomes.push_back(outcomeOf(S.analyze(Spec), Syms));

      ASSERT_NE(S.store(), nullptr) << B.Name;
      const AnalysisStore::Stats &St = S.store()->stats();
      EXPECT_EQ(St.WarmSpecCommitted + St.WarmSpecDiscarded,
                St.WarmSpecReplays)
          << B.Name << " warm=" << WarmThreads;
      if (WarmThreads == 1) {
        Outcomes1 = std::move(Outcomes);
        Dump1 = S.store()->canonicalDump(Syms);
        Warm1 = St.WarmQueries;
        Replayed1 = St.ReplayedRuns;
        Executed1 = St.ExecutedRuns;
      } else {
        // Same source through a fresh symbol table: the formatted outcome
        // strings are deterministic, so equality is byte identity.
        EXPECT_EQ(Outcomes1, Outcomes) << B.Name;
        EXPECT_EQ(Dump1, S.store()->canonicalDump(Syms)) << B.Name;
        EXPECT_EQ(Warm1, St.WarmQueries) << B.Name;
        EXPECT_EQ(Replayed1, St.ReplayedRuns) << B.Name;
        EXPECT_EQ(Executed1, St.ExecutedRuns) << B.Name;
        TotalBatches += St.WarmReplayBatches;
        TotalSpecReplays += St.WarmSpecReplays;
      }
    }
  }
  // The fan-out must engage somewhere in the suite.
  EXPECT_GT(TotalBatches, 0u);
  EXPECT_GT(TotalSpecReplays, 0u);
}

TEST(BatchSessionErrorTest, PersistentRequiresWorklistWithInterning) {
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource("p(a).\n", Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();
  AnalyzerOptions O;
  O.Persistent = true;
  O.Driver = DriverKind::Naive;
  AnalysisSession S(*P, O);
  Result<AnalysisResult> R = S.analyze("p(var)");
  EXPECT_FALSE(R);
  AnalyzerOptions O2;
  O2.Persistent = true;
  O2.UseInterning = false;
  AnalysisSession S2(*P, O2);
  EXPECT_FALSE(S2.analyze("p(var)"));
}

TEST(BatchSessionErrorTest, PersistentReanalyzeBeforeAnalyzeIsAnError) {
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource("p(a).\n", Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();
  AnalysisSession S(*P, persistentOptions(1));
  EXPECT_FALSE(S.reanalyze({PredSig{"p", 1}}));
}

std::string threadName(const ::testing::TestParamInfo<int> &Info) {
  return "Threads" + std::to_string(Info.param);
}

INSTANTIATE_TEST_SUITE_P(SequentialAndParallel, BatchSessionTest,
                         ::testing::Values(1, 4), threadName);

} // namespace
