//===- tests/AnalyzerTest.cpp - Abstract WAM end-to-end tests -------------===//
//
// Integration tests of the compiled dataflow analyzer: mode/type/aliasing
// inference on small programs, fixpoint convergence, and memoization.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

class AnalyzerTest : public ::testing::Test {
protected:
  void compile(std::string_view Source) {
    Result<CompiledProgram> P = compileSource(Source, Syms, Arena);
    ASSERT_TRUE(P) << P.diag().str();
    Program = std::make_unique<CompiledProgram>(P.take());
  }

  /// Runs the analyzer; fails the test on analysis error.
  AnalysisResult analyze(std::string_view EntrySpec,
                         AnalyzerOptions Options = {}) {
    AnalysisSession A(*Program, Options);
    Result<AnalysisResult> R = A.analyze(EntrySpec);
    EXPECT_TRUE(R) << R.diag().str();
    return R ? R.take() : AnalysisResult{};
  }

  /// Success pattern text for the entry "pred(...)" of the last analysis,
  /// or "(fails)" / "(missing)".
  std::string successOf(const AnalysisResult &R, std::string_view Label,
                        std::string_view CallText = "") {
    for (const AnalysisResult::Item &I : R.Items) {
      if (I.PredLabel != Label)
        continue;
      if (!CallText.empty() && I.Call.str(Syms) != CallText)
        continue;
      return I.Success ? I.Success->str(Syms) : "(fails)";
    }
    return "(missing)";
  }

  std::string callOf(const AnalysisResult &R, std::string_view Label) {
    for (const AnalysisResult::Item &I : R.Items)
      if (I.PredLabel == Label)
        return I.Call.str(Syms);
    return "(missing)";
  }

  SymbolTable Syms;
  TermArena Arena;
  std::unique_ptr<CompiledProgram> Program;
};

TEST_F(AnalyzerTest, FactTypes) {
  compile("p(a). p(b).");
  AnalysisResult R = analyze("p(var)");
  EXPECT_TRUE(R.Converged);
  EXPECT_EQ(successOf(R, "p/1"), "(atom)");
}

TEST_F(AnalyzerTest, FactTypesMixedConstants) {
  compile("p(a). p(1).");
  AnalysisResult R = analyze("p(var)");
  EXPECT_EQ(successOf(R, "p/1"), "(const)");
}

TEST_F(AnalyzerTest, SingleFactKeepsSpecificConstant) {
  compile("p(a).");
  AnalysisResult R = analyze("p(var)");
  EXPECT_EQ(successOf(R, "p/1"), "(a)");
}

TEST_F(AnalyzerTest, StructureSuccess) {
  compile("p(f(1, X), X).");
  AnalysisResult R = analyze("p(var, var)");
  // X is still free on success and aliased between the structure argument
  // and the second argument.
  std::string S = successOf(R, "p/2");
  EXPECT_EQ(S, "(f(1,_S2=var), _S2)") << S;
}

TEST_F(AnalyzerTest, PaperSectionFourExample) {
  // The paper's running example: p(a, [f(V)|L]) with calling pattern
  // p(atom, glist). The head unification should produce
  // glist/[f(g)|glist], i.e. success (a, [f(g)|glist]).
  compile("p(a, [f(V)|L]) :- q(V, L). q(_, _).");
  AnalysisResult R = analyze("p(atom, glist)");
  EXPECT_TRUE(R.Converged);
  EXPECT_EQ(successOf(R, "p/2"), "(a, [f(g)|glist])");
  // q was called with the extracted element argument and list tail.
  EXPECT_EQ(callOf(R, "q/2"), "(g, glist)");
}

TEST_F(AnalyzerTest, AppendGroundLists) {
  compile("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).");
  AnalysisResult R = analyze("app(glist, glist, var)");
  EXPECT_TRUE(R.Converged);
  // Result argument becomes a ground list. The arg2/arg3 sharing of the
  // base clause is dropped by the lub with the recursive clause.
  EXPECT_EQ(successOf(R, "app/3"), "(glist, glist, glist)");
}

TEST_F(AnalyzerTest, AppendInfersOutputMode) {
  compile("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).");
  AnalysisResult R = analyze("app(glist, glist, var)");
  std::string Modes = formatModes(R, Syms);
  // First two arguments ground input (++), third free (-).
  EXPECT_NE(Modes.find("++"), std::string::npos) << Modes;
  EXPECT_NE(Modes.find("-"), std::string::npos) << Modes;
}

TEST_F(AnalyzerTest, NaiveReverse) {
  compile("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
          "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).");
  AnalysisResult R = analyze("nrev(glist, var)");
  EXPECT_TRUE(R.Converged);
  EXPECT_EQ(successOf(R, "nrev/2"), "(glist, glist)");
}

TEST_F(AnalyzerTest, ArithmeticMakesGround) {
  compile("double(X, Y) :- Y is X * 2.");
  AnalysisResult R = analyze("double(g, var)");
  EXPECT_EQ(successOf(R, "double/2"), "(g, int)");
}

TEST_F(AnalyzerTest, ArithmeticNarrowsInputExpression) {
  // Success of `is` implies the right-hand side was ground.
  compile("f(X, Y) :- Y is X + 1.");
  AnalysisResult R = analyze("f(any, var)");
  EXPECT_EQ(successOf(R, "f/2"), "(g, int)");
}

TEST_F(AnalyzerTest, RecursionReachesFixpoint) {
  compile("nat(0). nat(s(N)) :- nat(N).");
  AnalysisResult R = analyze("nat(var)");
  EXPECT_TRUE(R.Converged);
  // 0 |_| s(...) generalizes to g (both clauses ground the argument).
  EXPECT_EQ(successOf(R, "nat/1"), "(g)");
}

TEST_F(AnalyzerTest, FailurePropagates) {
  compile("p(X) :- q(X). q(a) :- fail.");
  AnalysisResult R = analyze("p(var)");
  EXPECT_EQ(successOf(R, "p/1"), "(fails)");
}

TEST_F(AnalyzerTest, UndefinedCalleeFails) {
  compile("p(X) :- undefined_thing(X).");
  AnalysisResult R = analyze("p(var)");
  EXPECT_EQ(successOf(R, "p/1"), "(fails)");
}

TEST_F(AnalyzerTest, MultipleCallingPatterns) {
  compile("id(X, X).\n"
          "caller1(Y) :- id(a, Y).\n"
          "caller2(Y) :- id(Y, b).");
  AnalysisResult R = analyze("caller1(var)");
  EXPECT_EQ(successOf(R, "caller1/1"), "(a)");
  compile("id(X, X).\n"
          "main :- id(a, _), id(_, b).");
  R = analyze("main");
  // Two distinct calling patterns for id/2 recorded.
  int Count = 0;
  for (const AnalysisResult::Item &I : R.Items)
    if (I.PredLabel == "id/2")
      ++Count;
  EXPECT_EQ(Count, 2);
}

TEST_F(AnalyzerTest, AliasingTrackedAcrossCall) {
  compile("alias(X, X).\n"
          "p(A, B) :- alias(A, B).");
  AnalysisResult R = analyze("p(var, var)");
  // A and B are aliased on success.
  EXPECT_EQ(successOf(R, "p/2"), "(_S0=var, _S0)");
}

TEST_F(AnalyzerTest, CutIsIgnoredSoundly) {
  compile("max(X, Y, X) :- X >= Y, !.\n"
          "max(_, Y, Y).");
  AnalysisResult R = analyze("max(g, g, var)");
  // Both clauses contribute (cut ignored): result is ground either way;
  // each clause's arg/result sharing is one-sided and thus dropped.
  EXPECT_EQ(successOf(R, "max/3"), "(g, g, g)");
}

TEST_F(AnalyzerTest, TypeTestNarrows) {
  compile("p(X) :- atom(X).\n"
          "q(X) :- integer(X).\n"
          "r(X) :- var(X).");
  AnalysisResult R = analyze("p(g)");
  EXPECT_EQ(successOf(R, "p/1"), "(atom)");
  R = analyze("q(g)");
  EXPECT_EQ(successOf(R, "q/1"), "(int)");
  R = analyze("r(g)");
  EXPECT_EQ(successOf(R, "r/1"), "(fails)");
  R = analyze("r(var)");
  EXPECT_EQ(successOf(R, "r/1"), "(var)");
}

TEST_F(AnalyzerTest, ListConstructionInBody) {
  compile("mk(X, [X, f(X)]).");
  AnalysisResult R = analyze("mk(g, var)");
  EXPECT_EQ(successOf(R, "mk/2"), "(_S0=g, [_S0,f(_S0)])");
}

TEST_F(AnalyzerTest, DepthLimitWidensDeepCalls) {
  compile("wrap(X, f(X)).\n"
          "deep(X, R) :- wrap(X, A), wrap(A, B), wrap(B, C), wrap(C, D), "
          "wrap(D, R).");
  AnalyzerOptions Options;
  Options.DepthLimit = 3;
  AnalysisResult R = analyze("deep(g, var)", Options);
  EXPECT_TRUE(R.Converged);
  // The success type of R is widened (contains g at the cut depth) rather
  // than a 5-deep f nest.
  std::string S = successOf(R, "deep/2");
  EXPECT_EQ(S.find("f(f(f(f(f"), std::string::npos) << S;
}

TEST_F(AnalyzerTest, HashAndLinearTablesAgree) {
  compile("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
          "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).");
  AnalyzerOptions Lin;
  Lin.TableImpl = ExtensionTable::Impl::LinearList;
  AnalyzerOptions Hash;
  Hash.TableImpl = ExtensionTable::Impl::HashMap;
  AnalysisResult RL = analyze("nrev(glist, var)", Lin);
  AnalysisResult RH = analyze("nrev(glist, var)", Hash);
  ASSERT_EQ(RL.Items.size(), RH.Items.size());
  EXPECT_EQ(successOf(RL, "nrev/2"), successOf(RH, "nrev/2"));
  EXPECT_EQ(successOf(RL, "app/3"), successOf(RH, "app/3"));
}

TEST_F(AnalyzerTest, ExecCountsAccumulate) {
  compile("p(a).");
  AnalysisResult R = analyze("p(var)");
  EXPECT_GT(R.Instructions, 0u);
  EXPECT_GE(R.Iterations, 1);
  EXPECT_GT(R.Counters.ActivationRuns, 0u);

  // The naive driver needs a final quiescent restart to prove the
  // fixpoint (at least one change + one no-change iteration); the
  // worklist driver proves it by draining the queue and replays less.
  AnalysisResult RN = analyze("p(var)", seedAnalyzerOptions());
  EXPECT_GE(RN.Iterations, 2);
  EXPECT_GT(RN.Counters.ActivationRuns, R.Counters.ActivationRuns);
}

} // namespace
