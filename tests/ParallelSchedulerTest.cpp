//===- tests/ParallelSchedulerTest.cpp - Parallel driver determinism ------===//
//
// The parallel worklist driver is speculation plus a sequential-order
// commit protocol (see analyzer/ParallelScheduler.h): its observable
// results must be *byte-identical* to the one-thread worklist driver —
// same table, same entry creation order, same iteration/instruction/
// replay counters — at every thread count, on every input. This suite
// pins that on all Table 1 benchmarks and a seeded random-program sweep,
// plus the budget and error contracts and the speculation accounting
// invariants.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "programs/Benchmarks.h"
#include "RandomProgramGen.h"

#include <gtest/gtest.h>

using namespace awam;
using awam::testgen::generateProgram;

namespace {

/// "pred call -> success" lines in creation order — unsorted, so equality
/// pins entry creation order too.
std::vector<std::string> tableLines(const AnalysisResult &R,
                                    const SymbolTable &Syms) {
  std::vector<std::string> Lines;
  for (const AnalysisResult::Item &I : R.Items)
    Lines.push_back(I.PredLabel + " " + I.Call.str(Syms) + " -> " +
                    (I.Success ? I.Success->str(Syms) : "(fails)"));
  return Lines;
}

AnalyzerOptions threadedOptions(int Threads) {
  AnalyzerOptions O;
  O.NumThreads = Threads;
  return O;
}

TEST(ParallelSchedulerTest, BenchmarksByteIdenticalAcrossThreadCounts) {
  // Acceptance criterion: tables byte-identical across 1/2/4/8 threads on
  // all 11 Table 1 benchmarks — and not just the tables: every counter
  // that describes the committed schedule must match too, so the
  // formatted report (what the CI determinism gate diffs) is identical.
  uint64_t TotalCommitted = 0;
  int Checked = 0;
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    SymbolTable S;
    TermArena A;
    Result<CompiledProgram> P = compileSource(B.Source, S, A);
    ASSERT_TRUE(P) << B.Name << ": " << P.diag().str();

    AnalysisSession Seq(*P, threadedOptions(1));
    Result<AnalysisResult> RS = Seq.analyze(B.EntrySpec);
    ASSERT_TRUE(RS) << B.Name << ": " << RS.diag().str();
    std::string SeqReport = formatAnalysis(*RS, S);

    for (int Threads : {2, 4, 8}) {
      AnalysisSession Par(*P, threadedOptions(Threads));
      Result<AnalysisResult> RP = Par.analyze(B.EntrySpec);
      ASSERT_TRUE(RP) << B.Name << " T=" << Threads << ": "
                      << RP.diag().str();
      EXPECT_EQ(tableLines(*RS, S), tableLines(*RP, S))
          << B.Name << " T=" << Threads;
      EXPECT_EQ(SeqReport, formatAnalysis(*RP, S))
          << B.Name << " T=" << Threads;
      EXPECT_EQ(RS->Iterations, RP->Iterations) << B.Name;
      EXPECT_EQ(RS->Instructions, RP->Instructions) << B.Name;
      EXPECT_EQ(RS->Counters.ActivationRuns, RP->Counters.ActivationRuns)
          << B.Name;
      EXPECT_EQ(RS->Counters.SchedulerRuns, RP->Counters.SchedulerRuns)
          << B.Name;
      EXPECT_EQ(RS->Counters.DepEdges, RP->Counters.DepEdges) << B.Name;
      TotalCommitted += RP->Counters.SpecCommitted;
    }
    ++Checked;
  }
  EXPECT_EQ(Checked, 11);
  // The parallel driver must actually commit speculative work somewhere in
  // the sweep — otherwise this suite would be testing the live fallback
  // path only.
  EXPECT_GT(TotalCommitted, 0u);
}

TEST(ParallelSchedulerTest, RandomProgramStressAcrossThreadCounts) {
  // Satellite: N seeded random programs, table identity across thread
  // counts {1, 2, 8}, with replay counts recorded for every run.
  for (unsigned Seed = 0; Seed != 30; ++Seed) {
    std::string Source = generateProgram(Seed);
    SCOPED_TRACE("seed " + std::to_string(Seed));

    SymbolTable Syms;
    TermArena Arena;
    Result<ParsedProgram> Parsed = parseProgram(Source, Syms, Arena);
    ASSERT_TRUE(Parsed) << Parsed.diag().str();
    Result<CompiledProgram> Compiled = compileProgram(*Parsed, Syms);
    ASSERT_TRUE(Compiled) << Compiled.diag().str();

    // One entry per generated predicate, all-any calling pattern.
    for (const ParsedClause &C : Parsed->Clauses) {
      std::string Name(Syms.name(C.Head->functor()));
      if (Name.starts_with("$"))
        continue; // desugaring artifacts analyzed transitively
      int Arity = C.Head->isStruct() ? C.Head->arity() : 0;
      Pattern Entry =
          makeEntryPattern(std::vector<PatKind>(Arity, PatKind::AnyP));

      AnalysisSession Seq(*Compiled, threadedOptions(1));
      Result<AnalysisResult> RS = Seq.analyze(Name, Entry);
      ASSERT_TRUE(RS) << Name << ": " << RS.diag().str();
      EXPECT_GT(RS->Counters.SchedulerRuns, 0u) << Name;

      for (int Threads : {2, 8}) {
        AnalysisSession Par(*Compiled, threadedOptions(Threads));
        Result<AnalysisResult> RP = Par.analyze(Name, Entry);
        ASSERT_TRUE(RP) << Name << " T=" << Threads << ": "
                        << RP.diag().str();
        EXPECT_EQ(tableLines(*RS, Syms), tableLines(*RP, Syms))
            << Name << " T=" << Threads;
        // Replay counts are recorded per run and must be the sequential
        // schedule's counts exactly.
        EXPECT_EQ(RS->Counters.SchedulerRuns, RP->Counters.SchedulerRuns)
            << Name << " T=" << Threads;
        EXPECT_EQ(RS->Counters.ActivationRuns,
                  RP->Counters.ActivationRuns)
            << Name << " T=" << Threads;
      }
    }
  }
}

TEST(ParallelSchedulerTest, AdaptiveBatchSizingByteIdenticalOnRandomPrograms) {
  // Tentpole: the adaptive batch bounds must not be observable in any
  // committed output. Each seed runs under one of three (min, max)
  // regimes — locked to 1 (every pop bypasses), the default adaptive
  // range, and locked wide — across 2/4/8 threads against the one-thread
  // reference.
  constexpr std::pair<int, int> kRegimes[] = {{1, 1}, {2, 32}, {8, 8}};
  for (unsigned Seed = 0; Seed != 12; ++Seed) {
    std::string Source = generateProgram(Seed);
    auto [BatchMin, BatchMax] = kRegimes[Seed % 3];
    SCOPED_TRACE("seed " + std::to_string(Seed) + " batch [" +
                 std::to_string(BatchMin) + "," + std::to_string(BatchMax) +
                 "]");

    SymbolTable Syms;
    TermArena Arena;
    Result<ParsedProgram> Parsed = parseProgram(Source, Syms, Arena);
    ASSERT_TRUE(Parsed) << Parsed.diag().str();
    Result<CompiledProgram> Compiled = compileProgram(*Parsed, Syms);
    ASSERT_TRUE(Compiled) << Compiled.diag().str();

    for (const ParsedClause &C : Parsed->Clauses) {
      std::string Name(Syms.name(C.Head->functor()));
      if (Name.starts_with("$"))
        continue;
      int Arity = C.Head->isStruct() ? C.Head->arity() : 0;
      Pattern Entry =
          makeEntryPattern(std::vector<PatKind>(Arity, PatKind::AnyP));

      AnalysisSession Seq(*Compiled, threadedOptions(1));
      Result<AnalysisResult> RS = Seq.analyze(Name, Entry);
      ASSERT_TRUE(RS) << Name << ": " << RS.diag().str();

      for (int Threads : {2, 4, 8}) {
        AnalyzerOptions O = threadedOptions(Threads);
        O.SpecBatchMin = BatchMin;
        O.SpecBatchMax = BatchMax;
        AnalysisSession Par(*Compiled, O);
        Result<AnalysisResult> RP = Par.analyze(Name, Entry);
        ASSERT_TRUE(RP) << Name << " T=" << Threads << ": "
                        << RP.diag().str();
        EXPECT_EQ(tableLines(*RS, Syms), tableLines(*RP, Syms))
            << Name << " T=" << Threads;
        EXPECT_EQ(RS->Counters.SchedulerRuns, RP->Counters.SchedulerRuns)
            << Name << " T=" << Threads;
        EXPECT_EQ(RS->Counters.ActivationRuns, RP->Counters.ActivationRuns)
            << Name << " T=" << Threads;
        // A batch ceiling of 1 disables speculation outright: every pop
        // must take the bypass path.
        if (BatchMax == 1) {
          ASSERT_NE(Par.specStats(), nullptr);
          EXPECT_EQ(Par.specStats()->Speculated, 0u) << Name;
          EXPECT_EQ(RP->Counters.SpecRuns, 0u) << Name;
        }
      }
    }
  }
}

TEST(ParallelSchedulerTest, ChainStructuredDrainBypassesSpeculation) {
  // A pure call chain never has two unrelated ready entries, so the
  // adaptive driver must serialize it through the size-1 bypass instead
  // of speculating work it would immediately discard.
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource(
      "nat(0). nat(s(N)) :- nat(N).\n"
      "main :- nat(s(s(s(0)))).",
      Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();

  AnalysisSession Par(*P, threadedOptions(4));
  Result<AnalysisResult> R = Par.analyze("main");
  ASSERT_TRUE(R) << R.diag().str();
  ASSERT_NE(Par.specStats(), nullptr);
  const ParallelScheduler::SpecStats &S = *Par.specStats();
  EXPECT_GT(S.Bypassed, 0u);
  // main and nat are related by a static call edge, so they never share a
  // batch; within the chain there is nothing independent to speculate on.
  EXPECT_EQ(S.Discarded, 0u);
  EXPECT_EQ(S.Speculated, S.Committed);
  // The bypass and overlay counters surface in the public report.
  EXPECT_EQ(R->Counters.SpecBypassed, S.Bypassed);
  EXPECT_EQ(R->Counters.SpecPagesCopied, S.PagesCopied);
  EXPECT_LE(S.PagesCopied, S.BaseTouches);

  // Identical to the sequential run, bypass or not.
  AnalysisSession Seq(*P, threadedOptions(1));
  Result<AnalysisResult> RS = Seq.analyze("main");
  ASSERT_TRUE(RS) << RS.diag().str();
  EXPECT_EQ(tableLines(*RS, Syms), tableLines(*R, Syms));
  EXPECT_EQ(formatAnalysis(*RS, Syms), formatAnalysis(*R, Syms));
}

TEST(ParallelSchedulerTest, SpeculationAccountingInvariants) {
  SymbolTable Syms;
  TermArena Arena;
  // Mutual recursion with several interdependent predicates: enough sweep
  // width for batches to form.
  Result<CompiledProgram> P = compileSource(
      "even(0). even(s(N)) :- odd(N).\n"
      "odd(s(N)) :- even(N).\n"
      "both(N) :- even(N), odd(N).\n"
      "len([], 0). len([_|T], s(N)) :- len(T, N).\n"
      "main :- both(s(0)), len([a,b,c], _).",
      Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();

  AnalysisSession Par(*P, threadedOptions(4));
  Result<AnalysisResult> R = Par.analyze("main");
  ASSERT_TRUE(R) << R.diag().str();
  ASSERT_NE(Par.specStats(), nullptr);
  const ParallelScheduler::SpecStats &S = *Par.specStats();
  // Every speculation either committed or was discarded — none leak.
  EXPECT_EQ(S.Speculated, S.Committed + S.Discarded);
  EXPECT_EQ(R->Counters.SpecRuns, S.Speculated);
  // The scheduler stats surface through the same accessor as sequential.
  ASSERT_NE(Par.schedulerStats(), nullptr);
  EXPECT_EQ(R->Counters.SchedulerRuns, Par.schedulerStats()->Runs);

  // One-thread runs build the sequential scheduler: no spec stats.
  AnalysisSession Seq(*P, threadedOptions(1));
  ASSERT_TRUE(Seq.analyze("main"));
  EXPECT_EQ(Seq.specStats(), nullptr);
  ASSERT_NE(Seq.schedulerStats(), nullptr);
}

TEST(ParallelSchedulerTest, SessionReusesPoolAcrossAnalyses) {
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource(
      "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
      "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).",
      Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();
  AnalysisSession A(*P, threadedOptions(4));
  Result<AnalysisResult> R1 = A.analyze("nrev(glist, var)");
  ASSERT_TRUE(R1) << R1.diag().str();
  Result<AnalysisResult> R2 = A.analyze("nrev(glist, var)");
  ASSERT_TRUE(R2) << R2.diag().str();
  EXPECT_EQ(tableLines(*R1, Syms), tableLines(*R2, Syms));
  EXPECT_EQ(R1->Instructions, R2->Instructions);
}

TEST(ParallelSchedulerTest, BudgetHitParityWithSequential) {
  // The sweep budget must trip at the same point with the same partial
  // table regardless of thread count.
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P =
      compileSource("count(zero). count(s(N)) :- count(N).", Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();

  for (int Budget : {0, 1, 2}) {
    AnalyzerOptions SeqO = threadedOptions(1);
    SeqO.MaxIterations = Budget;
    AnalysisSession Seq(*P, SeqO);
    Result<AnalysisResult> RS = Seq.analyze("count(var)");
    ASSERT_TRUE(RS) << RS.diag().str();

    AnalyzerOptions ParO = threadedOptions(4);
    ParO.MaxIterations = Budget;
    AnalysisSession Par(*P, ParO);
    Result<AnalysisResult> RP = Par.analyze("count(var)");
    ASSERT_TRUE(RP) << RP.diag().str();

    EXPECT_EQ(RS->Converged, RP->Converged) << "budget " << Budget;
    EXPECT_EQ(RS->Iterations, RP->Iterations) << "budget " << Budget;
    EXPECT_EQ(tableLines(*RS, Syms), tableLines(*RP, Syms))
        << "budget " << Budget;
  }
}

TEST(ParallelSchedulerTest, StepBudgetErrorParityWithSequential) {
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P =
      compileSource("count(zero). count(s(N)) :- count(N).", Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();

  AnalyzerOptions SeqO = threadedOptions(1);
  SeqO.MaxSteps = 10;
  AnalysisSession Seq(*P, SeqO);
  Result<AnalysisResult> RS = Seq.analyze("count(var)");
  ASSERT_FALSE(RS);

  AnalyzerOptions ParO = threadedOptions(4);
  ParO.MaxSteps = 10;
  AnalysisSession Par(*P, ParO);
  Result<AnalysisResult> RP = Par.analyze("count(var)");
  ASSERT_FALSE(RP);
  EXPECT_EQ(RS.diag().str(), RP.diag().str());
}

TEST(ParallelSchedulerTest, WorksWithoutInterningAndOnLinearList) {
  // The overlay/commit protocol must hold on every table configuration,
  // not just the fast path.
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> P = compileSource(
      "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
      "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).",
      Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();

  for (bool Interning : {false, true}) {
    for (ExtensionTable::Impl Impl :
         {ExtensionTable::Impl::LinearList, ExtensionTable::Impl::HashMap}) {
      AnalyzerOptions SeqO = threadedOptions(1);
      SeqO.UseInterning = Interning;
      SeqO.TableImpl = Impl;
      AnalysisSession Seq(*P, SeqO);
      Result<AnalysisResult> RS = Seq.analyze("nrev(glist, var)");
      ASSERT_TRUE(RS) << RS.diag().str();

      AnalyzerOptions ParO = SeqO;
      ParO.NumThreads = 4;
      AnalysisSession Par(*P, ParO);
      Result<AnalysisResult> RP = Par.analyze("nrev(glist, var)");
      ASSERT_TRUE(RP) << RP.diag().str();
      EXPECT_EQ(tableLines(*RS, Syms), tableLines(*RP, Syms))
          << "interning=" << Interning
          << " impl=" << (Impl == ExtensionTable::Impl::HashMap ? "hash"
                                                                : "list");
      EXPECT_EQ(RS->Instructions, RP->Instructions);
    }
  }
}

} // namespace
