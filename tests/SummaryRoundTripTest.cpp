//===- tests/SummaryRoundTripTest.cpp - Bundle round-trip sweep -----------===//
//
// Satellite sweep for the summary-bundle pipeline: every Table-1
// benchmark, under every registered domain and at 1 and 4 threads, is
// analyzed in a persistent store, exported, imported into a FRESH store
// over the same program, and re-analyzed. The warm result must be
// byte-identical to the original, export must be deterministic (two
// exports of one store agree bit-for-bit), and the chain must keep
// going: the warm store's own re-export warm-starts a third store to the
// same bytes again.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

class SummaryRoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(SummaryRoundTripTest, ExportImportAnalyzeIsByteIdentical) {
  const auto &[DomainName, Threads] = GetParam();
  int Checked = 0;
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    SCOPED_TRACE(std::string(B.Name));
    SymbolTable Syms;
    TermArena Arena;
    Result<CompiledProgram> P = compileSource(B.Source, Syms, Arena);
    ASSERT_TRUE(P) << P.diag().str();

    AnalyzerOptions O;
    O.Persistent = true;
    O.DomainName = DomainName;
    O.NumThreads = Threads;

    AnalysisSession Cold(*P, O);
    Result<AnalysisResult> RC = Cold.analyze(B.EntrySpec);
    ASSERT_TRUE(RC) << RC.diag().str();
    Result<std::string> Bundle = Cold.exportSummaries();
    ASSERT_TRUE(Bundle) << Bundle.diag().str();

    // Export is deterministic: the same store serializes to the same
    // bytes every time.
    Result<std::string> Bundle2 = Cold.exportSummaries();
    ASSERT_TRUE(Bundle2) << Bundle2.diag().str();
    EXPECT_EQ(*Bundle2, *Bundle);

    AnalysisSession Warm(*P, O);
    Result<AnalysisStore::ImportStats> IS = Warm.importSummaries(*Bundle);
    ASSERT_TRUE(IS) << IS.diag().str();
    EXPECT_EQ(IS->DroppedStale, 0u);
    EXPECT_EQ(IS->DroppedUnresolved, 0u);
    Result<AnalysisResult> RW = Warm.analyze(B.EntrySpec);
    ASSERT_TRUE(RW) << RW.diag().str();

    // The warm analysis is byte-identical to the cold one.
    EXPECT_EQ(formatAnalysis(*RW, Syms), formatAnalysis(*RC, Syms));

    // The chain keeps going: the warm store's re-export (its own traces
    // plus the surviving imported ones — bundles compose, so the bytes
    // need not equal the first bundle) warm-starts a third store to the
    // same answer bytes again.
    Result<std::string> Again = Warm.exportSummaries();
    ASSERT_TRUE(Again) << Again.diag().str();
    AnalysisSession Third(*P, O);
    ASSERT_TRUE(Third.importSummaries(*Again));
    Result<AnalysisResult> RT = Third.analyze(B.EntrySpec);
    ASSERT_TRUE(RT) << RT.diag().str();
    EXPECT_EQ(formatAnalysis(*RT, Syms), formatAnalysis(*RC, Syms));

    // Converged cold runs with recorded traces must actually warm-start.
    if (RC->Converged && IS->Banked > 0) {
      ASSERT_NE(Warm.store(), nullptr);
      EXPECT_EQ(Warm.store()->stats().WarmQueries, 1u);
    }
    ++Checked;
  }
  EXPECT_EQ(Checked, 11);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SummaryRoundTripTest,
    ::testing::Combine(::testing::Values("modes", "pos", "det"),
                       ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>> &I) {
      return std::get<0>(I.param) + "_t" +
             std::to_string(std::get<1>(I.param));
    });

} // namespace
