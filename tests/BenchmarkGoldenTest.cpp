//===- tests/BenchmarkGoldenTest.cpp - Pinned analysis results ------------===//
//
// Golden results for key predicates of each Table 1 benchmark: specific
// calling/success patterns the compiled analyzer must infer when
// analyzing from main/0. These pin the analysis behaviour against
// regressions (any strengthening that changes them should be reviewed
// deliberately).
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

class BenchmarkGoldenTest : public ::testing::Test {
protected:
  /// Analyzes a benchmark from main/0 and collects "pred call -> success"
  /// lines.
  std::vector<std::string> analyze(std::string_view BenchName) {
    const BenchmarkProgram *B = findBenchmark(BenchName);
    EXPECT_NE(B, nullptr);
    Result<CompiledProgram> P = compileSource(B->Source, Syms, Arena);
    EXPECT_TRUE(P) << P.diag().str();
    AnalysisSession A(*P);
    Result<AnalysisResult> R = A.analyze("main");
    EXPECT_TRUE(R) << R.diag().str();
    EXPECT_TRUE(R->Converged);
    std::vector<std::string> Out;
    for (const AnalysisResult::Item &I : R->Items)
      Out.push_back(I.PredLabel + " " + I.Call.str(Syms) + " -> " +
                    (I.Success ? I.Success->str(Syms) : "(fails)"));
    return Out;
  }

  void expectLine(const std::vector<std::string> &Lines,
                  std::string_view Needle) {
    for (const std::string &L : Lines)
      if (L.find(Needle) != std::string::npos)
        return;
    std::string All;
    for (const std::string &L : Lines)
      All += L + "\n";
    FAIL() << "missing '" << Needle << "' in:\n" << All;
  }

  SymbolTable Syms;
  TermArena Arena;
};

TEST_F(BenchmarkGoldenTest, Nreverse) {
  auto L = analyze("nreverse");
  // The classic result: nreverse maps ground lists to ground lists, and
  // concatenate is called with (glist, [g], var).
  expectLine(L, "nreverse/2 (glist, var) -> (glist, glist)");
  expectLine(L, "concatenate/3 (glist, [int], var) -> "
                "(glist, [int], [g|glist])");
  expectLine(L, "main/0 () -> ()");
}

TEST_F(BenchmarkGoldenTest, Tak) {
  auto L = analyze("tak");
  // All inputs integers, output integer.
  expectLine(L, "tak/4 (int, int, int, var) -> (int, int, int, int)");
}

TEST_F(BenchmarkGoldenTest, Qsort) {
  auto L = analyze("qsort");
  expectLine(L, "partition/4 (glist, int, var, var) -> "
                "(glist, int, glist, glist)");
  // qsort/3 uses a difference list: the accumulator flows into the result.
  expectLine(L, "qsort/3 (glist, var,");
}

TEST_F(BenchmarkGoldenTest, Deriv) {
  auto L = analyze("times10");
  // d/3: ground expression, atom variable, derivative comes back ground.
  expectLine(L, "d/3 (g, atom, var) -> (g, atom, g)");
}

TEST_F(BenchmarkGoldenTest, Query) {
  auto L = analyze("query");
  expectLine(L, "density/2 (var, var) -> (atom, int)");
  // pop/2 and area/2 facts: atom keys, integer values.
  expectLine(L, "pop/2 (var, var) -> (atom, int)");
  expectLine(L, "area/2 (atom, var) -> (atom, int)");
}

TEST_F(BenchmarkGoldenTest, Serialise) {
  auto L = analyze("serialise");
  expectLine(L, "pairlists/3");
  expectLine(L, "arrange/2");
  // before/2 compares pair structures whose first components are ground.
  expectLine(L, "before/2 (pair(g,any), pair(g,any)) -> "
                "(pair(g,any), pair(g,any))");
}

TEST_F(BenchmarkGoldenTest, Queens) {
  auto L = analyze("queens_8");
  expectLine(L, "range/3 (int, int, var) -> (_S0=int, int, [_S0|intlist])");
  expectLine(L, "selectq/3 (intlist, var, var) -> "
                "([int|intlist], intlist, int)");
  expectLine(L, "not_attack_at/3 (glist, int, int) -> (glist, int, int)");
}

TEST_F(BenchmarkGoldenTest, Zebra) {
  auto L = analyze("zebra");
  // The houses list is a 5-element skeleton of house/5 structures; member
  // narrows it. Just pin the entry and that zebra/2 succeeds with
  // instantiated results.
  expectLine(L, "main/0 () -> ()");
  bool Found = false;
  for (const std::string &Line : L)
    if (Line.find("zebra/2") != std::string::npos &&
        Line.find("(fails)") == std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST_F(BenchmarkGoldenTest, SeedAndInternedConfigurationsAgree) {
  // Cross-validation of the fast paths: for every Table 1 benchmark,
  // three configurations must compute the exact same fixpoint as the
  // seed (the paper's naive restart loop over a LinearList table with no
  // interning): naive + interned HashMap, and the worklist driver with
  // defaults. Iteration counts are only comparable between the two
  // naive configurations — the worklist driver converges in fewer
  // sweeps by design (SchedulerTest pins that it replays strictly less).
  AnalyzerOptions Seed = seedAnalyzerOptions();
  AnalyzerOptions NaiveFast;
  NaiveFast.Driver = DriverKind::Naive;
  AnalyzerOptions Worklist; // defaults

  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    SymbolTable S;
    TermArena A;
    Result<CompiledProgram> P = compileSource(B.Source, S, A);
    ASSERT_TRUE(P) << B.Name << ": " << P.diag().str();

    AnalysisSession SeedAnalyzer(*P, Seed);
    Result<AnalysisResult> RS = SeedAnalyzer.analyze(B.EntrySpec);
    ASSERT_TRUE(RS) << B.Name << ": " << RS.diag().str();
    AnalysisSession NaiveAnalyzer(*P, NaiveFast);
    Result<AnalysisResult> RN = NaiveAnalyzer.analyze(B.EntrySpec);
    ASSERT_TRUE(RN) << B.Name << ": " << RN.diag().str();
    AnalysisSession WorklistAnalyzer(*P, Worklist);
    Result<AnalysisResult> RW = WorklistAnalyzer.analyze(B.EntrySpec);
    ASSERT_TRUE(RW) << B.Name << ": " << RW.diag().str();

    auto Fingerprint = [&](const AnalysisResult &R) {
      std::vector<std::string> Lines;
      for (const AnalysisResult::Item &I : R.Items)
        Lines.push_back(I.PredLabel + " " + I.Call.str(S) + " -> " +
                        (I.Success ? I.Success->str(S) : "(fails)"));
      std::sort(Lines.begin(), Lines.end());
      return Lines;
    };
    EXPECT_EQ(Fingerprint(*RS), Fingerprint(*RN)) << B.Name;
    EXPECT_EQ(Fingerprint(*RS), Fingerprint(*RW)) << B.Name;
    EXPECT_EQ(RS->Iterations, RN->Iterations) << B.Name;
    EXPECT_TRUE(RS->Converged);
    EXPECT_TRUE(RN->Converged);
    EXPECT_TRUE(RW->Converged);
  }
}

TEST_F(BenchmarkGoldenTest, AllBenchmarksProduceBoundedTables) {
  // Termination sanity: no benchmark's table explodes.
  for (const BenchmarkProgram &B : benchmarkPrograms()) {
    auto L = analyze(B.Name);
    EXPECT_LT(L.size(), 100u) << B.Name;
    EXPECT_GE(L.size(), 2u) << B.Name;
  }
}

} // namespace
