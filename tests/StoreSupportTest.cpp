//===- tests/StoreSupportTest.cpp - Store and support unit tests ----------===//

#include "support/StringUtil.h"
#include "support/SymbolTable.h"
#include "support/Timer.h"
#include "term/Parser.h"
#include "term/TermWriter.h"
#include "wam/Store.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

// ---- SymbolTable ---------------------------------------------------------

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable S;
  Symbol A = S.intern("hello");
  Symbol B = S.intern("hello");
  EXPECT_EQ(A, B);
  EXPECT_EQ(S.name(A), "hello");
}

TEST(SymbolTableTest, FixedSymbolsPreInterned) {
  SymbolTable S;
  EXPECT_EQ(S.intern("[]"), SymbolTable::SymNil);
  EXPECT_EQ(S.intern("."), SymbolTable::SymDot);
  EXPECT_EQ(S.intern(":-"), SymbolTable::SymNeck);
  EXPECT_EQ(S.intern("!"), SymbolTable::SymCut);
}

TEST(SymbolTableTest, LookupWithoutInterning) {
  SymbolTable S;
  EXPECT_EQ(S.lookup("nonexistent"), ~0u);
  Symbol A = S.intern("exists");
  EXPECT_EQ(S.lookup("exists"), A);
}

TEST(SymbolTableTest, ManySymbolsStayStable) {
  SymbolTable S;
  std::vector<Symbol> Ids;
  for (int I = 0; I != 2000; ++I)
    Ids.push_back(S.intern("sym" + std::to_string(I)));
  for (int I = 0; I != 2000; ++I)
    EXPECT_EQ(S.name(Ids[I]), "sym" + std::to_string(I));
}

// ---- StringUtil ------------------------------------------------------------

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(StringUtilTest, QuoteAtom) {
  EXPECT_EQ(quoteAtom("foo"), "foo");
  EXPECT_EQ(quoteAtom("fooBar1"), "fooBar1");
  EXPECT_EQ(quoteAtom("Foo"), "'Foo'");
  EXPECT_EQ(quoteAtom("hello world"), "'hello world'");
  EXPECT_EQ(quoteAtom("it's"), "'it\\'s'");
  EXPECT_EQ(quoteAtom("[]"), "[]");
  EXPECT_EQ(quoteAtom("!"), "!");
  EXPECT_EQ(quoteAtom(":-"), ":-");
  EXPECT_EQ(quoteAtom(""), "''");
}

TEST(StringUtilTest, TextTableAligns) {
  TextTable T({"a", "long"});
  T.addRow({"xx", "1"});
  std::string Out = T.str();
  EXPECT_NE(Out.find("| xx | "), std::string::npos) << Out;
}

// ---- Store -----------------------------------------------------------------

TEST(StoreTest, PushVarSelfReference) {
  Store St;
  int64_t A = St.pushVar();
  EXPECT_EQ(St.at(A).T, Tag::Ref);
  EXPECT_EQ(St.at(A).V, A);
  DerefResult D = St.deref(Cell::ref(A));
  EXPECT_EQ(D.Addr, A);
  EXPECT_EQ(D.C.T, Tag::Ref);
}

TEST(StoreTest, DerefFollowsChains) {
  Store St;
  int64_t A = St.pushVar();
  int64_t B = St.pushVar();
  int64_t C = St.push(Cell::integer(7));
  St.bind(B, Cell::ref(C));
  St.bind(A, Cell::ref(B));
  DerefResult D = St.deref(Cell::ref(A));
  EXPECT_EQ(D.C.T, Tag::Int);
  EXPECT_EQ(D.C.V, 7);
  EXPECT_EQ(D.Addr, C);
}

TEST(StoreTest, UnwindRestoresBindings) {
  Store St;
  int64_t A = St.pushVar();
  int64_t Mark = St.trailMark();
  St.bind(A, Cell::integer(1));
  EXPECT_EQ(St.deref(Cell::ref(A)).C.T, Tag::Int);
  St.unwind(Mark);
  EXPECT_EQ(St.deref(Cell::ref(A)).C.T, Tag::Ref);
}

TEST(StoreTest, UnwindRestoresOverwrittenAbstractCells) {
  Store St;
  int64_t A = St.push(Cell::abs(AbsKind::Ground));
  int64_t Mark = St.trailMark();
  St.bind(A, Cell::atom(SymbolTable::SymNil));
  St.unwind(Mark);
  EXPECT_TRUE(St.at(A).isAbs());
  EXPECT_EQ(St.at(A).absKind(), AbsKind::Ground);
}

TEST(StoreTest, BuildAndReadTermRoundTrip) {
  SymbolTable Syms;
  TermArena Arena;
  Parser P("f(a, [1, X], g(X))", Syms, Arena);
  Result<const Term *> T = P.readTerm();
  ASSERT_TRUE(T);

  Store St;
  std::unordered_map<int, int64_t> Vars;
  int64_t Addr = St.buildTerm(*T, Vars);

  TermArena OutArena;
  const Term *Back = St.readTerm(Cell::ref(Addr), OutArena, Syms);
  // The two X occurrences must still share (same heap cell, hence the
  // same variable id in the read-back).
  ASSERT_TRUE(Back->isStruct());
  const Term *ListArg = Back->arg(1);
  const Term *GArg = Back->arg(2);
  EXPECT_EQ(ListArg->arg(1)->arg(0)->varId(), GArg->arg(0)->varId());
  WriteOptions Canon;
  Canon.UseOperators = false;
  std::string S = writeTerm(Back, Syms, Canon);
  EXPECT_TRUE(S.starts_with("f(a,")) << S;
}

TEST(StoreTest, ReadTermDepthGuard) {
  Store St;
  // Build a cyclic term by hand: X = f(X).
  int64_t FunAddr = St.push(Cell::fun(3, 1));
  int64_t ArgAddr = St.push(Cell::ref(0));
  int64_t StrAddr = St.push(Cell::str(FunAddr));
  St.at(ArgAddr) = Cell::ref(StrAddr);
  SymbolTable Syms;
  TermArena Arena;
  const Term *T = St.readTerm(Cell::ref(StrAddr), Arena, Syms, 16);
  ASSERT_NE(T, nullptr); // terminates thanks to the depth guard
}

// ---- Timer -----------------------------------------------------------------

TEST(TimerTest, MeasureRunsAtLeastMinIters) {
  int Count = 0;
  double Ms = measureMs([&] { ++Count; }, /*MinTotalMs=*/0.0,
                        /*MinIters=*/5, /*MaxIters=*/10);
  EXPECT_GE(Count, 6); // warm-up + 5
  EXPECT_GE(Ms, 0.0);
}

} // namespace
