//===- tests/RandomProgramGen.h - Seeded random program source --*- C++ -*-===//
//
// Deterministic random Prolog program generator shared by the randomized
// test suites (FuzzAgreementTest, PatternInternerTest): one seed, one
// reproducible program covering calls, arithmetic, unification, tests,
// cut and var/atom/integer type guards.
//
//===----------------------------------------------------------------------===//

#ifndef AWAM_TESTS_RANDOMPROGRAMGEN_H
#define AWAM_TESTS_RANDOMPROGRAMGEN_H

#include <functional>
#include <random>
#include <string>
#include <utility>
#include <vector>

namespace awam::testgen {

/// Deterministic random program source for one seed.
inline std::string generateProgram(unsigned Seed) {
  std::mt19937 Rng(Seed);
  auto Pick = [&](int N) { return static_cast<int>(Rng() % N); };

  int NumPreds = 2 + Pick(4);
  std::vector<std::pair<std::string, int>> Preds; // name, arity
  for (int I = 0; I != NumPreds; ++I)
    Preds.emplace_back("p" + std::to_string(I), 1 + Pick(3));

  auto VarName = [&](int I) { return "V" + std::to_string(I); };

  // A random argument term; depth-limited.
  std::function<std::string(int)> Term = [&](int Depth) -> std::string {
    int Choice = Pick(Depth > 0 ? 8 : 5);
    switch (Choice) {
    case 0: return VarName(Pick(4));
    case 1: return "k" + std::to_string(Pick(3));
    case 2: return std::to_string(Pick(10));
    case 3: return "[]";
    case 4: return VarName(Pick(4));
    case 5: return "f(" + Term(Depth - 1) + ")";
    case 6:
      return "[" + Term(Depth - 1) + "|" + Term(Depth - 1) + "]";
    default:
      return "g(" + Term(Depth - 1) + ", " + Term(Depth - 1) + ")";
    }
  };

  std::string Out;
  for (auto &[Name, Arity] : Preds) {
    int NumClauses = 1 + Pick(3);
    for (int C = 0; C != NumClauses; ++C) {
      Out += Name + "(";
      for (int A = 0; A != Arity; ++A)
        Out += (A ? ", " : "") + Term(2);
      Out += ")";
      int NumGoals = Pick(3);
      for (int G = 0; G != NumGoals; ++G) {
        Out += G ? ", " : " :- ";
        switch (Pick(6)) {
        case 0: { // call another predicate
          auto &[CalleeName, CalleeArity] = Preds[Pick(NumPreds)];
          Out += CalleeName + "(";
          for (int A = 0; A != CalleeArity; ++A)
            Out += (A ? ", " : "") + Term(1);
          Out += ")";
          break;
        }
        case 1:
          Out += VarName(Pick(4)) + " is " + std::to_string(Pick(5)) +
                 " + " + std::to_string(Pick(5));
          break;
        case 2: {
          // Avoid V = term-containing-V: rational (cyclic) terms are
          // outside the paper's finite-tree domain; both analyzers widen
          // them soundly but may unroll them differently.
          std::string V = VarName(Pick(4));
          std::string T = Term(2);
          Out += T.find(V) == std::string::npos ? V + " = " + T
                                                : V + " = " + V;
          break;
        }
        case 3:
          Out += std::to_string(Pick(9)) + " < " + std::to_string(Pick(9));
          break;
        case 4:
          Out += (Pick(2) ? "atom(" : "integer(") + Term(1) + ")";
          break;
        default:
          Out += Pick(2) ? "!" : "var(" + VarName(Pick(4)) + ")";
          break;
        }
      }
      Out += ".\n";
    }
  }
  return Out;
}

} // namespace awam::testgen

#endif // AWAM_TESTS_RANDOMPROGRAMGEN_H
