//===- tests/RandomProgramGen.h - Seeded random program source --*- C++ -*-===//
//
// Deterministic random Prolog program generator shared by the randomized
// test suites (FuzzAgreementTest, PatternInternerTest, IncrementalTest):
// one seed, one reproducible program covering calls, arithmetic,
// unification, tests, cut and var/atom/integer type guards — plus a
// clause-level mutator for incremental re-analysis testing.
//
//===----------------------------------------------------------------------===//

#ifndef AWAM_TESTS_RANDOMPROGRAMGEN_H
#define AWAM_TESTS_RANDOMPROGRAMGEN_H

#include <cctype>
#include <functional>
#include <random>
#include <string>
#include <utility>
#include <vector>

namespace awam::testgen {

/// Deterministic random program source for one seed.
inline std::string generateProgram(unsigned Seed) {
  std::mt19937 Rng(Seed);
  auto Pick = [&](int N) { return static_cast<int>(Rng() % N); };

  int NumPreds = 2 + Pick(4);
  std::vector<std::pair<std::string, int>> Preds; // name, arity
  for (int I = 0; I != NumPreds; ++I)
    Preds.emplace_back("p" + std::to_string(I), 1 + Pick(3));

  auto VarName = [&](int I) { return "V" + std::to_string(I); };

  // A random argument term; depth-limited.
  std::function<std::string(int)> Term = [&](int Depth) -> std::string {
    int Choice = Pick(Depth > 0 ? 8 : 5);
    switch (Choice) {
    case 0: return VarName(Pick(4));
    case 1: return "k" + std::to_string(Pick(3));
    case 2: return std::to_string(Pick(10));
    case 3: return "[]";
    case 4: return VarName(Pick(4));
    case 5: return "f(" + Term(Depth - 1) + ")";
    case 6:
      return "[" + Term(Depth - 1) + "|" + Term(Depth - 1) + "]";
    default:
      return "g(" + Term(Depth - 1) + ", " + Term(Depth - 1) + ")";
    }
  };

  std::string Out;
  for (auto &[Name, Arity] : Preds) {
    int NumClauses = 1 + Pick(3);
    for (int C = 0; C != NumClauses; ++C) {
      Out += Name + "(";
      for (int A = 0; A != Arity; ++A)
        Out += (A ? ", " : "") + Term(2);
      Out += ")";
      int NumGoals = Pick(3);
      for (int G = 0; G != NumGoals; ++G) {
        Out += G ? ", " : " :- ";
        switch (Pick(6)) {
        case 0: { // call another predicate
          auto &[CalleeName, CalleeArity] = Preds[Pick(NumPreds)];
          Out += CalleeName + "(";
          for (int A = 0; A != CalleeArity; ++A)
            Out += (A ? ", " : "") + Term(1);
          Out += ")";
          break;
        }
        case 1:
          Out += VarName(Pick(4)) + " is " + std::to_string(Pick(5)) +
                 " + " + std::to_string(Pick(5));
          break;
        case 2: {
          // Avoid V = term-containing-V: rational (cyclic) terms are
          // outside the paper's finite-tree domain; both analyzers widen
          // them soundly but may unroll them differently.
          std::string V = VarName(Pick(4));
          std::string T = Term(2);
          Out += T.find(V) == std::string::npos ? V + " = " + T
                                                : V + " = " + V;
          break;
        }
        case 3:
          Out += std::to_string(Pick(9)) + " < " + std::to_string(Pick(9));
          break;
        case 4:
          Out += (Pick(2) ? "atom(" : "integer(") + Term(1) + ")";
          break;
        default:
          Out += Pick(2) ? "!" : "var(" + VarName(Pick(4)) + ")";
          break;
        }
      }
      Out += ".\n";
    }
  }
  return Out;
}

/// One clause-level edit of a generated program: the new source plus the
/// head predicate whose clause list changed (what a caller hands to
/// AnalysisSession::reanalyze as the edited set).
struct ProgramMutation {
  std::string Source;
  std::string Pred; ///< edited predicate name
  int Arity = 0;    ///< edited predicate arity
};

/// Applies one random clause-level edit to \p Source (one clause per
/// line, as generateProgram emits): duplicate a clause, delete one from
/// a multi-clause predicate, append a ground fact, or swap two adjacent
/// differing clauses of the same predicate. Never removes a predicate
/// entirely, so entry points stay resolvable across a mutation chain.
inline ProgramMutation mutateProgram(const std::string &Source,
                                     unsigned Seed) {
  std::mt19937 Rng(Seed);
  auto Pick = [&](int N) { return static_cast<int>(Rng() % N); };

  std::vector<std::string> Clauses;
  for (size_t Pos = 0; Pos < Source.size();) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string::npos)
      End = Source.size();
    if (End > Pos)
      Clauses.push_back(Source.substr(Pos, End - Pos));
    Pos = End + 1;
  }

  // Head predicate of a clause line, by paren-depth-aware comma count.
  auto HeadOf = [](const std::string &L) {
    size_t I = 0;
    while (I < L.size() &&
           (std::isalnum(static_cast<unsigned char>(L[I])) || L[I] == '_'))
      ++I;
    std::pair<std::string, int> Head(L.substr(0, I), 0);
    if (I < L.size() && L[I] == '(') {
      Head.second = 1;
      int Depth = 0;
      for (size_t J = I; J < L.size(); ++J) {
        if (L[J] == '(' || L[J] == '[')
          ++Depth;
        else if (L[J] == ')' || L[J] == ']') {
          if (--Depth == 0)
            break;
        } else if (L[J] == ',' && Depth == 1)
          ++Head.second;
      }
    }
    return Head;
  };

  ProgramMutation Out;
  // Retry until a legal edit applies; every program admits duplication,
  // so this terminates.
  for (;;) {
    int C = Pick(static_cast<int>(Clauses.size()));
    auto [Name, Arity] = HeadOf(Clauses[C]);
    switch (Pick(4)) {
    case 0: // duplicate clause C in place
      Clauses.insert(Clauses.begin() + C, Clauses[C]);
      break;
    case 1: { // delete clause C if its predicate keeps another clause
      int Others = 0;
      for (size_t J = 0; J != Clauses.size(); ++J)
        if (J != static_cast<size_t>(C) && HeadOf(Clauses[J]).first == Name &&
            HeadOf(Clauses[J]).second == Arity)
          ++Others;
      if (!Others)
        continue;
      Clauses.erase(Clauses.begin() + C);
      break;
    }
    case 2: { // append a ground fact for the predicate
      std::string Fact = Name;
      if (Arity) {
        Fact += "(";
        for (int A = 0; A != Arity; ++A)
          Fact += (A ? ", k" : "k") + std::to_string(Pick(3));
        Fact += ")";
      }
      Clauses.insert(Clauses.begin() + C, Fact + ".");
      break;
    }
    default: { // swap clause C with the next one if same pred, different body
      if (static_cast<size_t>(C) + 1 >= Clauses.size())
        continue;
      auto Next = HeadOf(Clauses[C + 1]);
      if (Next.first != Name || Next.second != Arity ||
          Clauses[C] == Clauses[C + 1])
        continue;
      std::swap(Clauses[C], Clauses[C + 1]);
      break;
    }
    }
    Out.Pred = Name;
    Out.Arity = Arity;
    break;
  }

  for (const std::string &L : Clauses)
    Out.Source += L + "\n";
  return Out;
}

} // namespace awam::testgen

#endif // AWAM_TESTS_RANDOMPROGRAMGEN_H
