//===- tests/AbsDomTest.cpp - Abstract domain unit tests ------------------===//
//
// Unit and property tests for absdom: the s_unify meet table, copyAbs,
// groundness, and the cell-level lub, plus pattern canonicalization.
//
//===----------------------------------------------------------------------===//

#include "absdom/AbsOps.h"
#include "analyzer/Pattern.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

class AbsDomTest : public ::testing::Test {
protected:
  /// Pushes an abstract cell and returns a Ref to it.
  Cell abs(AbsKind K) { return Cell::ref(St.push(Cell::abs(K))); }
  /// Pushes an alpha-list cell over a fresh element cell of kind \p K.
  Cell list(AbsKind K) {
    int64_t Elem = St.push(Cell::abs(K));
    return Cell::ref(St.push(Cell::abs(AbsKind::List, Elem)));
  }
  Cell atomc(std::string_view Name) {
    return Cell::ref(St.push(Cell::atom(Syms.intern(Name))));
  }
  Cell intc(int64_t V) { return Cell::ref(St.push(Cell::integer(V))); }
  Cell var() { return Cell::ref(St.pushVar()); }
  Cell nil() { return atomc("[]"); }
  /// Builds [Car|Cdr].
  Cell cons(Cell Car, Cell Cdr) {
    int64_t Base = St.push(Car);
    St.push(Cdr);
    return Cell::ref(St.push(Cell::lis(Base)));
  }
  Cell strc(std::string_view F, std::vector<Cell> Args) {
    int64_t FunAddr =
        St.push(Cell::fun(Syms.intern(F), static_cast<int>(Args.size())));
    for (Cell A : Args)
      St.push(A);
    return Cell::ref(St.push(Cell::str(FunAddr)));
  }

  /// Renders a cell for expectations.
  std::string show(Cell C) { return St.show(C, Syms); }

  /// Unifies and renders the (shared) result, or "FAIL".
  std::string meet(Cell A, Cell B) {
    int64_t Mark = St.trailMark();
    bool Ok = absUnify(St, A, B);
    std::string Out = Ok ? show(A) : "FAIL";
    if (Ok) {
      // Both sides must denote the same value after a successful meet.
      EXPECT_EQ(show(A), show(B));
    }
    St.unwind(Mark);
    return Out;
  }

  std::string lub(Cell A, Cell B) {
    return show(Cell::ref(lubCells(St, A, B)));
  }

  SymbolTable Syms;
  Store St;
};

// ---- Meet table (paper Section 4.1 examples) ----------------------------

TEST_F(AbsDomTest, MeetAnyGroundIsGround) {
  EXPECT_EQ(meet(abs(AbsKind::Any), abs(AbsKind::Ground)), "g");
}

TEST_F(AbsDomTest, MeetChain) {
  EXPECT_EQ(meet(abs(AbsKind::Any), abs(AbsKind::NV)), "nv");
  EXPECT_EQ(meet(abs(AbsKind::NV), abs(AbsKind::Ground)), "g");
  EXPECT_EQ(meet(abs(AbsKind::Ground), abs(AbsKind::Const)), "const");
  EXPECT_EQ(meet(abs(AbsKind::Const), abs(AbsKind::AtomT)), "atom");
  EXPECT_EQ(meet(abs(AbsKind::Const), abs(AbsKind::IntT)), "int");
  EXPECT_EQ(meet(abs(AbsKind::AtomT), abs(AbsKind::IntT)), "FAIL");
}

TEST_F(AbsDomTest, MeetWithConstants) {
  EXPECT_EQ(meet(abs(AbsKind::Any), atomc("a")), "a");
  EXPECT_EQ(meet(abs(AbsKind::Ground), atomc("a")), "a");
  EXPECT_EQ(meet(abs(AbsKind::AtomT), atomc("a")), "a");
  EXPECT_EQ(meet(abs(AbsKind::IntT), atomc("a")), "FAIL");
  EXPECT_EQ(meet(abs(AbsKind::IntT), intc(3)), "3");
  EXPECT_EQ(meet(abs(AbsKind::AtomT), intc(3)), "FAIL");
}

TEST_F(AbsDomTest, MeetVarBindsLikeAVariable) {
  // s_unify(var, T) = T for every T.
  EXPECT_EQ(meet(var(), abs(AbsKind::Ground)), "g");
  EXPECT_EQ(meet(var(), atomc("a")), "a");
  Cell V1 = var(), V2 = var();
  EXPECT_TRUE(absUnify(St, V1, V2));
  EXPECT_TRUE(isVarCell(St, V1));
  // Aliased: binding one binds the other.
  EXPECT_TRUE(absUnify(St, V1, atomc("b")));
  EXPECT_EQ(show(V2), "b");
}

TEST_F(AbsDomTest, MeetGroundWithStructureGroundsArguments) {
  // s_unify(g, f(X)) = f(g) with X/g.
  Cell V = var();
  Cell F = strc("f", {V});
  EXPECT_TRUE(absUnify(St, abs(AbsKind::Ground), F));
  EXPECT_EQ(show(F), "f(g)");
  EXPECT_EQ(show(V), "g");
}

TEST_F(AbsDomTest, MeetGlistWithConsIsPaperExample) {
  // s_unify(glist, [Head|Tail]) = [g|glist], {Head/g, Tail/glist}.
  Cell Head = var(), Tail = var();
  Cell L = cons(Head, Tail);
  EXPECT_TRUE(absUnify(St, list(AbsKind::Ground), L));
  EXPECT_EQ(show(Head), "g");
  EXPECT_EQ(show(Tail), "g_list");
  EXPECT_EQ(show(L), "[g|g_list]");
}

TEST_F(AbsDomTest, MeetListWithNil) {
  EXPECT_EQ(meet(list(AbsKind::Ground), nil()), "[]");
  EXPECT_EQ(meet(list(AbsKind::Any), abs(AbsKind::Const)), "[]");
  EXPECT_EQ(meet(list(AbsKind::Any), abs(AbsKind::IntT)), "FAIL");
}

TEST_F(AbsDomTest, MeetListWithGroundNarrowsElementType) {
  Cell L = list(AbsKind::Any);
  EXPECT_TRUE(absUnify(St, L, abs(AbsKind::Ground)));
  EXPECT_EQ(show(L), "g_list");
}

TEST_F(AbsDomTest, MeetListList) {
  EXPECT_EQ(meet(list(AbsKind::Any), list(AbsKind::Ground)), "g_list");
  EXPECT_EQ(meet(list(AbsKind::AtomT), list(AbsKind::IntT)), "FAIL");
}

TEST_F(AbsDomTest, MeetStructuresRecursively) {
  Cell A = strc("f", {abs(AbsKind::Any), atomc("x")});
  Cell B = strc("f", {abs(AbsKind::Ground), abs(AbsKind::AtomT)});
  EXPECT_TRUE(absUnify(St, A, B));
  EXPECT_EQ(show(A), "f(g,x)");
}

TEST_F(AbsDomTest, MeetDifferentFunctorsFails) {
  EXPECT_EQ(meet(strc("f", {atomc("a")}), strc("g", {atomc("a")})), "FAIL");
}

TEST_F(AbsDomTest, MeetIsIdempotentOnKinds) {
  for (AbsKind K : {AbsKind::Any, AbsKind::NV, AbsKind::Ground,
                    AbsKind::Const, AbsKind::AtomT, AbsKind::IntT}) {
    EXPECT_EQ(meet(abs(K), abs(K)), std::string(absKindName(K)));
  }
}

TEST_F(AbsDomTest, AliasingPropagatesThroughMeet) {
  // Unify two `any` cells, then narrow one; the other must narrow too.
  Cell A = abs(AbsKind::Any), B = abs(AbsKind::Any);
  EXPECT_TRUE(absUnify(St, A, B));
  EXPECT_TRUE(absUnify(St, A, abs(AbsKind::AtomT)));
  EXPECT_EQ(show(B), "atom");
}

// ---- Groundness ----------------------------------------------------------

TEST_F(AbsDomTest, Groundness) {
  EXPECT_TRUE(isGroundCell(St, atomc("a")));
  EXPECT_TRUE(isGroundCell(St, intc(1)));
  EXPECT_TRUE(isGroundCell(St, abs(AbsKind::Ground)));
  EXPECT_TRUE(isGroundCell(St, abs(AbsKind::AtomT)));
  EXPECT_FALSE(isGroundCell(St, abs(AbsKind::Any)));
  EXPECT_FALSE(isGroundCell(St, abs(AbsKind::NV)));
  EXPECT_FALSE(isGroundCell(St, var()));
  EXPECT_TRUE(isGroundCell(St, list(AbsKind::Ground)));
  EXPECT_FALSE(isGroundCell(St, list(AbsKind::Any)));
  EXPECT_TRUE(isGroundCell(St, strc("f", {atomc("a"), intc(1)})));
  EXPECT_FALSE(isGroundCell(St, strc("f", {atomc("a"), var()})));
  EXPECT_TRUE(isGroundCell(St, cons(atomc("a"), nil())));
}

// ---- Lub ------------------------------------------------------------------

TEST_F(AbsDomTest, LubKinds) {
  EXPECT_EQ(lub(abs(AbsKind::Ground), abs(AbsKind::NV)), "nv");
  EXPECT_EQ(lub(abs(AbsKind::AtomT), abs(AbsKind::IntT)), "const");
  EXPECT_EQ(lub(abs(AbsKind::Ground), abs(AbsKind::Any)), "any");
  std::string VarLub = lub(var(), var());
  EXPECT_TRUE(VarLub.starts_with("_G")) << VarLub; // stays a variable
  EXPECT_EQ(lub(var(), abs(AbsKind::Ground)), "any");
}

TEST_F(AbsDomTest, LubConstants) {
  EXPECT_EQ(lub(atomc("a"), atomc("a")), "a");
  EXPECT_EQ(lub(atomc("a"), atomc("b")), "atom");
  EXPECT_EQ(lub(intc(1), intc(2)), "int");
  EXPECT_EQ(lub(intc(1), atomc("a")), "const");
}

TEST_F(AbsDomTest, LubListInference) {
  // [] |_| [a] = 'a'-list: the paper's inferred list datatypes (the
  // element type stays the specific constant here).
  EXPECT_EQ(lub(nil(), cons(atomc("a"), nil())), "a_list");
  EXPECT_EQ(lub(nil(), cons(abs(AbsKind::AtomT), nil())), "atom_list");
  EXPECT_EQ(lub(nil(), list(AbsKind::Ground)), "g_list");
  EXPECT_EQ(lub(cons(intc(1), nil()), list(AbsKind::IntT)), "int_list");
  // Improper list joins via groundness.
  EXPECT_EQ(lub(nil(), cons(atomc("a"), var())), "nv");
}

TEST_F(AbsDomTest, LubPointwiseStructures) {
  EXPECT_EQ(lub(strc("f", {atomc("a")}), strc("f", {atomc("b")})),
            "f(atom)");
  EXPECT_EQ(lub(strc("f", {atomc("a")}), strc("g", {atomc("b")})), "g");
  EXPECT_EQ(lub(strc("f", {var()}), strc("g", {var()})), "nv");
}

TEST_F(AbsDomTest, LubPointwiseCons) {
  EXPECT_EQ(lub(cons(atomc("a"), nil()), cons(atomc("b"), nil())),
            "[atom]");
}

// ---- Patterns --------------------------------------------------------------

TEST_F(AbsDomTest, PatternRoundTrip) {
  Cell V = var();
  std::vector<Cell> Args = {V, cons(abs(AbsKind::Ground), nil()), V};
  Pattern P = canonicalize(St, Args);
  // Shared variable across arguments 1 and 3.
  EXPECT_EQ(P.Roots[0], P.Roots[2]);
  Store St2;
  std::vector<int64_t> Roots = instantiate(St2, P);
  std::vector<Cell> Cells;
  for (int64_t R : Roots)
    Cells.push_back(Cell::ref(R));
  Pattern P2 = canonicalize(St2, Cells);
  EXPECT_EQ(P, P2);
  EXPECT_EQ(P.hash(), P2.hash());
}

TEST_F(AbsDomTest, PatternDepthCut) {
  // f(f(f(f(f(a))))) cut at depth 4 -> inner terms widen to g.
  Cell T = strc("f", {strc("f", {strc("f", {strc("f", {atomc("a")})})})});
  Pattern P = canonicalize(St, {T}, 4);
  std::string S = P.str(Syms);
  EXPECT_NE(S.find("g"), std::string::npos) << S;
  // With a generous limit nothing is cut.
  Pattern PFull = canonicalize(St, {T}, 16);
  EXPECT_EQ(PFull.str(Syms), "(f(f(f(f(a)))))");
}

TEST_F(AbsDomTest, PatternPrintPaperStyle) {
  std::vector<Cell> Args = {abs(AbsKind::AtomT), list(AbsKind::Ground)};
  Pattern P = canonicalize(St, Args);
  EXPECT_EQ(P.str(Syms), "(atom, glist)");
}

TEST_F(AbsDomTest, PatternLubDropsOneSidedSharingAndWidensVars) {
  // A: p(X, X) with X var; B: p(var, var) unaliased.
  Cell V = var();
  Pattern A = canonicalize(St, {V, V});
  Pattern B = canonicalize(St, {var(), var()});
  Pattern L = lubPatterns(A, B);
  // Sharing dropped, vars widened to any (var is not closed under
  // instantiation through a dropped alias).
  EXPECT_EQ(L.str(Syms), "(any, any)");
}

TEST_F(AbsDomTest, PatternLubKeepsTwoSidedSharing) {
  Cell V1 = var();
  Pattern A = canonicalize(St, {V1, V1});
  Store St2;
  SymbolTable Syms2;
  int64_t V2 = St2.pushVar();
  Pattern B =
      canonicalize(St2, {Cell::ref(V2), Cell::ref(V2)});
  Pattern L = lubPatterns(A, B);
  EXPECT_EQ(L.Roots[0], L.Roots[1]);
  EXPECT_EQ(L.Nodes[L.Roots[0]].K, PatKind::VarP);
}

TEST_F(AbsDomTest, PatternLeqIsPartialOrderSample) {
  std::vector<Pattern> Pats;
  Pats.push_back(canonicalize(St, {abs(AbsKind::Ground)}));
  Pats.push_back(canonicalize(St, {abs(AbsKind::NV)}));
  Pats.push_back(canonicalize(St, {abs(AbsKind::Any)}));
  Pats.push_back(canonicalize(St, {atomc("a")}));
  Pats.push_back(canonicalize(St, {list(AbsKind::Ground)}));
  // Reflexive.
  for (const Pattern &P : Pats)
    EXPECT_TRUE(patternLeq(P, P)) << P.str(Syms);
  // a <= g <= nv <= any.
  EXPECT_TRUE(patternLeq(Pats[3], Pats[0]));
  EXPECT_TRUE(patternLeq(Pats[0], Pats[1]));
  EXPECT_TRUE(patternLeq(Pats[1], Pats[2]));
  EXPECT_FALSE(patternLeq(Pats[2], Pats[1]));
  // glist <= g.
  EXPECT_TRUE(patternLeq(Pats[4], Pats[0]));
  // Lub is an upper bound for every pair.
  for (const Pattern &A : Pats)
    for (const Pattern &B : Pats) {
      Pattern L = lubPatterns(A, B);
      EXPECT_TRUE(patternLeq(A, L))
          << A.str(Syms) << " vs " << L.str(Syms);
      EXPECT_TRUE(patternLeq(B, L))
          << B.str(Syms) << " vs " << L.str(Syms);
    }
}

TEST_F(AbsDomTest, LubCommutativeOnSamples) {
  std::vector<Cell> Vals = {abs(AbsKind::Ground), abs(AbsKind::NV),
                            atomc("a"),           intc(3),
                            list(AbsKind::Ground), nil(),
                            cons(atomc("a"), nil()),
                            strc("f", {abs(AbsKind::Any)})};
  for (Cell A : Vals)
    for (Cell B : Vals) {
      Pattern PA = canonicalize(St, {A});
      Pattern PB = canonicalize(St, {B});
      EXPECT_EQ(lubPatterns(PA, PB), lubPatterns(PB, PA))
          << PA.str(Syms) << " vs " << PB.str(Syms);
    }
}

} // namespace
