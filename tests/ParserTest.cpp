//===- tests/ParserTest.cpp - Reader and writer unit tests ----------------===//
//
// Operator precedence, lists, clause splitting, variable numbering,
// error reporting, and the parse -> write -> parse round-trip property.
//
//===----------------------------------------------------------------------===//

#include "term/Parser.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

class ParserTest : public ::testing::Test {
protected:
  /// Parses one term and renders it back in canonical (no-operator) form.
  std::string canon(std::string_view Text) {
    Parser P(Text, Syms, Arena);
    Result<const Term *> T = P.readTerm();
    if (!T)
      return "ERROR: " + T.diag().str();
    WriteOptions Options;
    Options.UseOperators = false;
    return writeTerm(*T, Syms, Options);
  }

  /// Parses and re-renders with operators.
  std::string pretty(std::string_view Text) {
    Parser P(Text, Syms, Arena);
    Result<const Term *> T = P.readTerm();
    if (!T)
      return "ERROR: " + T.diag().str();
    return writeTerm(*T, Syms);
  }

  SymbolTable Syms;
  TermArena Arena;
};

TEST_F(ParserTest, AtomsIntsVars) {
  EXPECT_EQ(canon("foo"), "foo");
  EXPECT_EQ(canon("42"), "42");
  EXPECT_EQ(canon("-7"), "-7");
  EXPECT_EQ(canon("X"), "X");
}

TEST_F(ParserTest, Structures) {
  EXPECT_EQ(canon("f(a, b)"), "f(a,b)");
  EXPECT_EQ(canon("f(g(h(1)), X)"), "f(g(h(1)),X)");
}

TEST_F(ParserTest, OperatorPrecedence) {
  EXPECT_EQ(canon("1 + 2 * 3"), "+(1,*(2,3))");
  EXPECT_EQ(canon("(1 + 2) * 3"), "*(+(1,2),3)");
  EXPECT_EQ(canon("1 - 2 - 3"), "-(-(1,2),3)");  // yfx: left assoc
  EXPECT_EQ(canon("a , b , c"), "','(a,','(b,c))"); // xfy: right assoc
  EXPECT_EQ(canon("X is Y + 1"), "is(X,+(Y,1))");
  EXPECT_EQ(canon("2 ** 3"), "**(2,3)");
  EXPECT_EQ(canon("- (3)"), "-(3)");
  EXPECT_EQ(canon("a = b"), "=(a,b)");
}

TEST_F(ParserTest, ClauseNeck) {
  EXPECT_EQ(canon("a :- b, c"), ":-(a,','(b,c))");
}

TEST_F(ParserTest, Lists) {
  // List sugar survives canonical printing; structure is checked via the
  // Term API below.
  EXPECT_EQ(canon("[]"), "[]");
  EXPECT_EQ(canon("[1]"), "[1]");
  EXPECT_EQ(canon("[1, 2]"), "[1,2]");
  EXPECT_EQ(canon("[H|T]"), "[H|T]");
  EXPECT_EQ(canon("[a, b|T]"), "[a,b|T]");
  Parser P("[1, 2]", Syms, Arena);
  Result<const Term *> T = P.readTerm();
  ASSERT_TRUE(T);
  ASSERT_TRUE((*T)->isCons());
  EXPECT_EQ((*T)->arg(0)->intValue(), 1);
  ASSERT_TRUE((*T)->arg(1)->isCons());
  EXPECT_TRUE((*T)->arg(1)->arg(1)->isNil());
}

TEST_F(ParserTest, ListPrettyPrinting) {
  EXPECT_EQ(pretty("[1, 2, 3]"), "[1,2,3]");
  EXPECT_EQ(pretty("[a|T]"), "[a|T]");
  EXPECT_EQ(pretty("1 + 2 * 3"), "1+2*3");
  EXPECT_EQ(pretty("(1 + 2) * 3"), "(1+2)*3");
}

TEST_F(ParserTest, CurlyBraces) {
  EXPECT_EQ(canon("{}"), "{}");
  EXPECT_EQ(canon("{a, b}"), "{','(a,b)}");
  Parser P("{a}", Syms, Arena);
  Result<const Term *> T = P.readTerm();
  ASSERT_TRUE(T);
  EXPECT_EQ((*T)->functor(), SymbolTable::SymCurly);
  EXPECT_EQ((*T)->arity(), 1);
}

TEST_F(ParserTest, SharedVariablesShareNodes) {
  Parser P("f(X, Y, X)", Syms, Arena);
  Result<const Term *> T = P.readTerm();
  ASSERT_TRUE(T);
  EXPECT_EQ((*T)->arg(0), (*T)->arg(2));
  EXPECT_NE((*T)->arg(0), (*T)->arg(1));
  EXPECT_EQ(P.lastTermNumVars(), 2);
}

TEST_F(ParserTest, AnonymousVariablesAreDistinct) {
  Parser P("f(_, _)", Syms, Arena);
  Result<const Term *> T = P.readTerm();
  ASSERT_TRUE(T);
  EXPECT_NE((*T)->arg(0), (*T)->arg(1));
  EXPECT_EQ(P.lastTermNumVars(), 2);
}

TEST_F(ParserTest, ErrorsCarryPositions) {
  Parser P("f(a,\n   )", Syms, Arena);
  Result<const Term *> T = P.readTerm();
  ASSERT_FALSE(T);
  EXPECT_EQ(T.diag().Line, 2);
}

TEST_F(ParserTest, MissingEndReported) {
  Parser P("f(a) g", Syms, Arena);
  Result<const Term *> T = P.readTerm();
  ASSERT_FALSE(T);
  EXPECT_NE(T.diag().Message.find("'.'"), std::string::npos);
}

TEST_F(ParserTest, ProgramSplitsClauses) {
  Result<ParsedProgram> P =
      parseProgram("f(a).\nf(X) :- g(X), h.\n:- note.", Syms, Arena);
  ASSERT_TRUE(P) << P.diag().str();
  ASSERT_EQ(P->Clauses.size(), 2u);
  EXPECT_TRUE(P->Clauses[0].Body.empty());
  ASSERT_EQ(P->Clauses[1].Body.size(), 2u);
  ASSERT_EQ(P->Directives.size(), 1u);
}

TEST_F(ParserTest, TrueFilteredFromBody) {
  Result<ParsedProgram> P = parseProgram("f :- true, g, true.", Syms, Arena);
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Clauses[0].Body.size(), 1u);
}

TEST_F(ParserTest, NonCallableHeadRejected) {
  Result<ParsedProgram> P = parseProgram("42 :- g.", Syms, Arena);
  EXPECT_FALSE(P);
}

// Round-trip: parse, pretty-print, re-parse, canonical forms must match.
class RoundTripTest : public ParserTest,
                      public ::testing::WithParamInterface<const char *> {};

TEST_P(RoundTripTest, WriteThenParseIsIdentity) {
  Parser P1(GetParam(), Syms, Arena);
  Result<const Term *> T1 = P1.readTerm();
  ASSERT_TRUE(T1) << GetParam();
  std::string Printed = writeTerm(*T1, Syms);
  Parser P2(Printed, Syms, Arena);
  Result<const Term *> T2 = P2.readTerm();
  ASSERT_TRUE(T2) << Printed;
  WriteOptions Canon;
  Canon.UseOperators = false;
  EXPECT_EQ(writeTerm(*T1, Syms, Canon), writeTerm(*T2, Syms, Canon))
      << "via " << Printed;
}

INSTANTIATE_TEST_SUITE_P(
    Samples, RoundTripTest,
    ::testing::Values(
        "f(a, B, [1,2|T])", "1 + 2 * 3 - 4", "(1 + 2) * (3 - 4)",
        "X is Y mod 3", "a :- b, c, d", "[[1],[2,3],[]]",
        "'quoted atom'(x)", "f(-1, - 1)", "p :- q ; r",
        "t(A) :- A = [x|_], g", "1 < 2", "X = f(Y, g(Z))",
        "d(U + V, X, DU + DV)", "{goal, extra}", "- (- (3))",
        "h([a|[b|[c|[]]]])"));

} // namespace
