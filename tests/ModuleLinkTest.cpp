//===- tests/ModuleLinkTest.cpp - Cross-module linker tests ---------------===//
//
// The linker's contract: linking separately compiled units is
// observationally equivalent to compiling the concatenated source — same
// module fingerprint (clause code is relocation-invariant under the
// fingerprint's pool resolution), same concrete solutions, same analysis
// report — plus the link-time diagnostics (duplicate exports error,
// unresolved imports get near-miss messages).
//
//===----------------------------------------------------------------------===//

#include "compiler/ModuleLink.h"

#include "analyzer/Session.h"
#include "term/TermWriter.h"
#include "wam/Machine.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

constexpr std::string_view kLibSource = R"(
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
rev([], []).
rev([X|Xs], R) :- rev(Xs, T), app(T, [X], R).
len([], z).
len([_|Xs], s(N)) :- len(Xs, N).
kind(a, atom_kind).
kind(1, int_kind).
kind([], nil_kind).
kind(f(_), struct_kind).
kind([_|_], cons_kind).
)";

constexpr std::string_view kUserSource = R"(
main(R, N) :- rev([a,b,c], R), len(R, N).
classify(X, K) :- kind(X, K).
)";

class ModuleLinkTest : public ::testing::Test {
protected:
  CompiledProgram compile(std::string_view Source) {
    Result<CompiledProgram> P = compileSource(Source, Syms, Arena);
    EXPECT_TRUE(P) << (P ? "" : P.diag().str());
    return P.take();
  }

  Result<LinkedProgram> link(std::vector<const CompiledProgram *> Units) {
    std::vector<ModuleUnit> In;
    for (size_t I = 0; I != Units.size(); ++I)
      In.push_back({Units[I], "unit" + std::to_string(I)});
    return linkPrograms(In);
  }

  std::vector<std::string> solve(const CompiledProgram &P,
                                 std::string_view GoalText,
                                 int MaxSolutions = 20) {
    Parser Pr(GoalText, Syms, Arena);
    Result<const Term *> G = Pr.readTerm();
    EXPECT_TRUE(G) << (G ? "" : G.diag().str());
    int NumVars = Pr.lastTermNumVars();
    Machine M(P, MachineOptions{});
    std::vector<Solution> Sols;
    TermArena SolArena;
    RunStatus St = M.solve(*G, NumVars, SolArena, Sols, MaxSolutions);
    EXPECT_NE(St, RunStatus::Error);
    std::vector<std::string> Out;
    for (const Solution &S : Sols) {
      std::string Line;
      for (int I = 0; I != NumVars; ++I) {
        if (!S.Bindings[I])
          continue;
        if (!Line.empty())
          Line += ", ";
        Line += writeTerm(S.Bindings[I], Syms);
      }
      Out.push_back(Line);
    }
    return Out;
  }

  std::string analyzeReport(const CompiledProgram &P,
                            std::string_view Spec) {
    AnalysisSession S(P);
    Result<AnalysisResult> R = S.analyze(Spec);
    EXPECT_TRUE(R) << (R ? "" : R.diag().str());
    return R ? formatAnalysis(*R, Syms) : std::string();
  }

  SymbolTable Syms;
  TermArena Arena;
};

TEST_F(ModuleLinkTest, LinkedEqualsMonolithic) {
  CompiledProgram Lib = compile(kLibSource);
  CompiledProgram User = compile(kUserSource);
  Result<LinkedProgram> L = link({&Lib, &User});
  ASSERT_TRUE(L) << L.diag().str();
  EXPECT_TRUE(L->UnresolvedImports.empty());

  CompiledProgram Mono =
      compile(std::string(kLibSource) + std::string(kUserSource));

  // Clause code is relocation-invariant under the fingerprint's pool
  // resolution, so the linked and monolithic modules hash identically.
  EXPECT_EQ(L->Program.Module->fingerprint(), Mono.Module->fingerprint());

  // Identical concrete solutions (exercises relocated try/retry/trust
  // chains and switch tables on the real machine).
  EXPECT_EQ(solve(L->Program, "main(R, N)"), solve(Mono, "main(R, N)"));
  EXPECT_EQ(solve(L->Program, "classify(X, K)"),
            solve(Mono, "classify(X, K)"));

  // Identical analysis reports.
  EXPECT_EQ(analyzeReport(L->Program, "main(var, var)"),
            analyzeReport(Mono, "main(var, var)"));
  EXPECT_EQ(analyzeReport(L->Program, "classify(g, var)"),
            analyzeReport(Mono, "classify(g, var)"));
}

TEST_F(ModuleLinkTest, LinkOrderDoesNotChangeBehavior) {
  CompiledProgram Lib = compile(kLibSource);
  CompiledProgram User = compile(kUserSource);
  Result<LinkedProgram> LibFirst = link({&Lib, &User});
  Result<LinkedProgram> UserFirst = link({&User, &Lib});
  ASSERT_TRUE(LibFirst) << LibFirst.diag().str();
  ASSERT_TRUE(UserFirst) << UserFirst.diag().str();
  EXPECT_EQ(LibFirst->Program.Module->fingerprint(),
            UserFirst->Program.Module->fingerprint());
  EXPECT_EQ(solve(LibFirst->Program, "main(R, N)"),
            solve(UserFirst->Program, "main(R, N)"));
  EXPECT_EQ(analyzeReport(LibFirst->Program, "main(var, var)"),
            analyzeReport(UserFirst->Program, "main(var, var)"));
}

TEST_F(ModuleLinkTest, ThreeUnitChain) {
  CompiledProgram A = compile("base(1).\nbase(2).\n");
  CompiledProgram B = compile("mid(X) :- base(X).\n");
  CompiledProgram C = compile("top(X) :- mid(X).\n");
  Result<LinkedProgram> L = link({&A, &B, &C});
  ASSERT_TRUE(L) << L.diag().str();
  EXPECT_TRUE(L->UnresolvedImports.empty());
  EXPECT_EQ(solve(L->Program, "top(X)"),
            (std::vector<std::string>{"1", "2"}));
}

TEST_F(ModuleLinkTest, DuplicateExportIsAnError) {
  CompiledProgram A = compile("p(1).\n");
  CompiledProgram B = compile("p(2).\n");
  Result<LinkedProgram> L = link({&A, &B});
  ASSERT_FALSE(L);
  std::string Msg = L.diag().str();
  EXPECT_NE(Msg.find("duplicate definition of p/1"), std::string::npos)
      << Msg;
  EXPECT_NE(Msg.find("unit0"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("unit1"), std::string::npos) << Msg;
}

TEST_F(ModuleLinkTest, UnresolvedImportGetsNearMissDiagnostic) {
  CompiledProgram Lib = compile(kLibSource);
  // "apq" is an unresolved import one edit away from the exported "app".
  CompiledProgram User = compile("go(R) :- apq([a], [b], R).\n");
  Result<LinkedProgram> L = link({&Lib, &User});
  ASSERT_TRUE(L) << L.diag().str();
  ASSERT_EQ(L->UnresolvedImports.size(), 1u);
  EXPECT_NE(L->UnresolvedImports[0].find(
                "imported predicate apq/3 is not defined"),
            std::string::npos)
      << L->UnresolvedImports[0];
  EXPECT_NE(L->UnresolvedImports[0].find("did you mean app/3"),
            std::string::npos)
      << L->UnresolvedImports[0];
  // The ids line up with UndefinedPredicates.
  ASSERT_EQ(L->Program.UndefinedPredicates.size(), 1u);
  const PredicateInfo &P =
      L->Program.Module->predicate(L->Program.UndefinedPredicates[0]);
  EXPECT_EQ(Syms.name(P.Name), "apq");
  // An unresolved import is not fatal: the call just fails at runtime.
  EXPECT_TRUE(solve(L->Program, "go(R)").empty());
}

TEST_F(ModuleLinkTest, MixedSymbolTablesRejected) {
  SymbolTable OtherSyms;
  TermArena OtherArena;
  CompiledProgram A = compile("p(1).\n");
  Result<CompiledProgram> B =
      compileSource("q(2).\n", OtherSyms, OtherArena);
  ASSERT_TRUE(B);
  CompiledProgram BP = B.take();
  Result<LinkedProgram> L = link({&A, &BP});
  ASSERT_FALSE(L);
  EXPECT_NE(L.diag().str().find("different symbol table"),
            std::string::npos);
}

TEST_F(ModuleLinkTest, EmptyUnitListRejected) {
  Result<LinkedProgram> L = linkPrograms({});
  ASSERT_FALSE(L);
}

} // namespace
