//===- tests/ExtensionTableTest.cpp - Probe accounting --------------------===//
//
// The ablation metric: LinearList and HashMap probe counts must be
// comparable. The uniform definition (ExtensionTable.h):
//  * LinearList: one probe per entry examined by a lookup;
//  * HashMap: one probe for the index consultation itself — counted on
//    hits and misses alike — plus one per additional candidate compared.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "analyzer/ExtensionTable.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

Pattern arity1(PatKind K) { return makeEntryPattern({K}); }

TEST(ExtensionTableTest, LinearListMissScansEveryEntry) {
  ExtensionTable T(ExtensionTable::Impl::LinearList);
  bool Created = false;
  const int N = 5;
  for (int I = 0; I != N; ++I)
    T.findOrCreate(I, arity1(PatKind::AnyP), Created);
  uint64_t Before = T.probeCount();
  EXPECT_EQ(T.find(99, arity1(PatKind::AnyP)), nullptr);
  EXPECT_EQ(T.probeCount() - Before, static_cast<uint64_t>(N));
}

TEST(ExtensionTableTest, LinearListHitCountsEntriesExamined) {
  ExtensionTable T(ExtensionTable::Impl::LinearList);
  bool Created = false;
  for (int I = 0; I != 4; ++I)
    T.findOrCreate(I, arity1(PatKind::AnyP), Created);
  // Entry 2 is the third entry inserted: the scan examines 3 entries.
  uint64_t Before = T.probeCount();
  EXPECT_NE(T.find(2, arity1(PatKind::AnyP)), nullptr);
  EXPECT_EQ(T.probeCount() - Before, 3u);
}

TEST(ExtensionTableTest, HashMapMissCostsExactlyOneProbe) {
  ExtensionTable T(ExtensionTable::Impl::HashMap);
  bool Created = false;
  for (int I = 0; I != 5; ++I)
    T.findOrCreate(I, arity1(PatKind::AnyP), Created);
  // A miss consults the index once — it must be counted even though no
  // candidate is compared, or misses become invisible in the ablation.
  uint64_t Before = T.probeCount();
  EXPECT_EQ(T.find(99, arity1(PatKind::AnyP)), nullptr);
  EXPECT_EQ(T.probeCount() - Before, 1u);
}

TEST(ExtensionTableTest, HashMapHitCostsOneProbeRegardlessOfSize) {
  ExtensionTable T(ExtensionTable::Impl::HashMap);
  bool Created = false;
  for (int I = 0; I != 32; ++I)
    T.findOrCreate(I, arity1(PatKind::GroundP), Created);
  uint64_t Before = T.probeCount();
  EXPECT_NE(T.find(17, arity1(PatKind::GroundP)), nullptr);
  EXPECT_EQ(T.probeCount() - Before, 1u);
}

TEST(ExtensionTableTest, InternedPathsUseSameAccounting) {
  // The interned table has three lookup flavors (structural, id-keyed,
  // fused by-pattern); all must count one probe per consultation so the
  // base/fast probe columns of the ablation stay comparable.
  PatternInterner In;
  ExtensionTable T(ExtensionTable::Impl::HashMap, &In);
  bool Created = false;
  for (int I = 0; I != 8; ++I)
    T.findOrCreateByPattern(I, arity1(PatKind::AnyP), Created);

  uint64_t Before = T.probeCount();
  EXPECT_NE(T.find(3, arity1(PatKind::AnyP)), nullptr); // structural hit
  EXPECT_EQ(T.probeCount() - Before, 1u);

  Before = T.probeCount();
  EXPECT_EQ(T.find(99, arity1(PatKind::AnyP)), nullptr); // structural miss
  EXPECT_EQ(T.probeCount() - Before, 1u);

  PatternId AnyId = In.intern(arity1(PatKind::AnyP));
  Before = T.probeCount();
  EXPECT_NE(T.find(3, AnyId), nullptr); // id-keyed hit
  EXPECT_EQ(T.probeCount() - Before, 1u);

  Before = T.probeCount();
  T.findOrCreateByPattern(5, arity1(PatKind::AnyP), Created); // fused hit
  EXPECT_FALSE(Created);
  EXPECT_EQ(T.probeCount() - Before, 1u);

  // LinearList with an interner scans like the paper's list.
  ExtensionTable L(ExtensionTable::Impl::LinearList, &In);
  for (int I = 0; I != 6; ++I)
    L.findOrCreateByPattern(I, arity1(PatKind::AnyP), Created);
  Before = L.probeCount();
  L.findOrCreateByPattern(99, arity1(PatKind::AnyP), Created); // miss: 6
  EXPECT_TRUE(Created);
  EXPECT_EQ(L.probeCount() - Before, 6u);
}

TEST(ExtensionTableTest, FusedAndIdKeyedLookupsAgree) {
  PatternInterner In;
  ExtensionTable T(ExtensionTable::Impl::HashMap, &In);
  bool Created = false;
  Pattern P = makeEntryPattern({PatKind::GroundP, PatKind::VarP});
  ETEntry &A = T.findOrCreateByPattern(4, P, Created);
  EXPECT_TRUE(Created);
  ETEntry &B = T.findOrCreateByPattern(4, P, Created);
  EXPECT_FALSE(Created);
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(T.find(4, A.CallId), &A);
  EXPECT_EQ(T.find(4, P), &A);
  // Creation through the id-keyed path is found by the fused path too.
  PatternId QId = In.intern(makeEntryPattern({PatKind::AnyP}));
  ETEntry &C = T.findOrCreate(7, QId, Created);
  EXPECT_TRUE(Created);
  EXPECT_EQ(&T.findOrCreateByPattern(7, C.Call, Created), &C);
  EXPECT_FALSE(Created);
}

// --- Overlay page aliasing -------------------------------------------------
//
// The COW contract the parallel driver's discard accounting rests on:
// reads through an overlay resolve to the base's own entries (pointer
// identity, zero pages copied), a write privatizes exactly one page and is
// invisible to the base and to sibling overlays, and resetOverlay restores
// full page sharing. kPageSize is 64, so 70 entries span two pages.

constexpr int kTwoPages = 70;

void fillBase(ExtensionTable &T, int N) {
  bool Created = false;
  for (int I = 0; I != N; ++I) {
    ETEntry &E = T.findOrCreate(I, arity1(PatKind::AnyP), Created);
    E.Success = arity1(PatKind::AnyP);
    T.noteSuccessChanged(E);
  }
}

TEST(ExtensionTableOverlayTest, ReadsSharePagesWithoutCopying) {
  ExtensionTable Base(ExtensionTable::Impl::HashMap);
  fillBase(Base, kTwoPages);
  ExtensionTable O(ExtensionTable::Impl::HashMap);
  O.attachBase(Base);
  ASSERT_EQ(O.size(), Base.size());
  // Lookups and position reads resolve to the base's entry objects.
  EXPECT_EQ(O.find(3, arity1(PatKind::AnyP)), &Base.entryAt(3));
  for (int I = 0; I != kTwoPages; ++I)
    EXPECT_EQ(&O.entryAt(static_cast<size_t>(I)),
              &Base.entryAt(static_cast<size_t>(I)));
  EXPECT_EQ(O.pagesCopied(), 0u);
  // The lookup recorded a validatable touch (observed version state).
  ASSERT_FALSE(O.touchLog().empty());
  EXPECT_EQ(O.touchLog().front().Idx, 3);
  EXPECT_EQ(O.touchLog().front().SuccessVersion, 1u);
}

TEST(ExtensionTableOverlayTest, WriteDoesNotLeakIntoBaseOrSiblings) {
  ExtensionTable Base(ExtensionTable::Impl::HashMap);
  fillBase(Base, kTwoPages);
  ExtensionTable A(ExtensionTable::Impl::HashMap);
  ExtensionTable B(ExtensionTable::Impl::HashMap);
  A.attachBase(Base);
  B.attachBase(Base);

  ETEntry &W = A.writableAt(3);
  EXPECT_NE(&W, &Base.entryAt(3)); // privatized copy, not the base entry
  W.Success = arity1(PatKind::GroundP);
  A.noteSuccessChanged(W);

  // A sees its copy; the base and the sibling still see the original.
  EXPECT_EQ(&A.entryAt(3), &W);
  EXPECT_EQ(&B.entryAt(3), &Base.entryAt(3));
  EXPECT_EQ(Base.entryAt(3).SuccessVersion, 1u);
  EXPECT_EQ(A.entryAt(3).SuccessVersion, 2u);
  EXPECT_EQ(B.pagesCopied(), 0u);

  // Exactly one page was cloned, and the clone copies slot pointers, not
  // entries: same-page neighbours and the whole second page still alias
  // the base.
  EXPECT_EQ(A.pagesCopied(), 1u);
  EXPECT_EQ(&A.entryAt(4), &Base.entryAt(4));
  EXPECT_EQ(&A.entryAt(kTwoPages - 1), &Base.entryAt(kTwoPages - 1));
}

TEST(ExtensionTableOverlayTest, ResetRestoresPageIdentity) {
  ExtensionTable Base(ExtensionTable::Impl::HashMap);
  fillBase(Base, kTwoPages);
  ExtensionTable O(ExtensionTable::Impl::HashMap);
  O.attachBase(Base);

  O.writableAt(5).Success = arity1(PatKind::GroundP);
  bool Created = false;
  ETEntry &New = O.findOrCreate(999, arity1(PatKind::AnyP), Created);
  ASSERT_TRUE(Created);
  // Overlay creations live past the base size at exactly the index the
  // live table would assign, and never clone a base page.
  EXPECT_EQ(New.Idx, kTwoPages);
  EXPECT_EQ(O.size(), static_cast<size_t>(kTwoPages) + 1);
  uint64_t CopiedBefore = O.pagesCopied();

  O.resetOverlay();
  EXPECT_EQ(O.size(), Base.size());
  EXPECT_TRUE(O.touchLog().empty());
  EXPECT_EQ(O.pagesCopied(), CopiedBefore); // cumulative; reset is free
  // The privatized page was dropped: full aliasing again.
  EXPECT_EQ(&O.entryAt(5), &Base.entryAt(5));
  // And the created entry is gone from lookup.
  EXPECT_EQ(O.find(999, arity1(PatKind::AnyP)), nullptr);
}

TEST(ExtensionTableOverlayTest, PagesCopiedBoundedByEntriesTouched) {
  ExtensionTable Base(ExtensionTable::Impl::HashMap);
  fillBase(Base, kTwoPages);
  ExtensionTable O(ExtensionTable::Impl::HashMap);
  O.attachBase(Base);

  // Privatize several entries on each page; the bound the bench gate
  // enforces (pages copied <= base entries touched) must hold here by
  // construction, and in fact two pages suffice for all six writes.
  for (size_t Pos : {0u, 1u, 2u, 64u, 65u, 69u})
    O.writableAt(Pos).Success = arity1(PatKind::GroundP);
  EXPECT_EQ(O.pagesCopied(), 2u);
  EXPECT_LE(O.pagesCopied(), O.touchLog().size());

  // Creations grow the created-slot vector, never the copy count.
  bool Created = false;
  O.findOrCreate(500, arity1(PatKind::AnyP), Created);
  ASSERT_TRUE(Created);
  EXPECT_EQ(O.pagesCopied(), 2u);
}

} // namespace
