//===- tests/ExtensionTableTest.cpp - Probe accounting --------------------===//
//
// The ablation metric: LinearList and HashMap probe counts must be
// comparable. The uniform definition (ExtensionTable.h):
//  * LinearList: one probe per entry examined by a lookup;
//  * HashMap: one probe for the index consultation itself — counted on
//    hits and misses alike — plus one per additional candidate compared.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "analyzer/ExtensionTable.h"

#include <gtest/gtest.h>

using namespace awam;

namespace {

Pattern arity1(PatKind K) { return makeEntryPattern({K}); }

TEST(ExtensionTableTest, LinearListMissScansEveryEntry) {
  ExtensionTable T(ExtensionTable::Impl::LinearList);
  bool Created = false;
  const int N = 5;
  for (int I = 0; I != N; ++I)
    T.findOrCreate(I, arity1(PatKind::AnyP), Created);
  uint64_t Before = T.probeCount();
  EXPECT_EQ(T.find(99, arity1(PatKind::AnyP)), nullptr);
  EXPECT_EQ(T.probeCount() - Before, static_cast<uint64_t>(N));
}

TEST(ExtensionTableTest, LinearListHitCountsEntriesExamined) {
  ExtensionTable T(ExtensionTable::Impl::LinearList);
  bool Created = false;
  for (int I = 0; I != 4; ++I)
    T.findOrCreate(I, arity1(PatKind::AnyP), Created);
  // Entry 2 is the third entry inserted: the scan examines 3 entries.
  uint64_t Before = T.probeCount();
  EXPECT_NE(T.find(2, arity1(PatKind::AnyP)), nullptr);
  EXPECT_EQ(T.probeCount() - Before, 3u);
}

TEST(ExtensionTableTest, HashMapMissCostsExactlyOneProbe) {
  ExtensionTable T(ExtensionTable::Impl::HashMap);
  bool Created = false;
  for (int I = 0; I != 5; ++I)
    T.findOrCreate(I, arity1(PatKind::AnyP), Created);
  // A miss consults the index once — it must be counted even though no
  // candidate is compared, or misses become invisible in the ablation.
  uint64_t Before = T.probeCount();
  EXPECT_EQ(T.find(99, arity1(PatKind::AnyP)), nullptr);
  EXPECT_EQ(T.probeCount() - Before, 1u);
}

TEST(ExtensionTableTest, HashMapHitCostsOneProbeRegardlessOfSize) {
  ExtensionTable T(ExtensionTable::Impl::HashMap);
  bool Created = false;
  for (int I = 0; I != 32; ++I)
    T.findOrCreate(I, arity1(PatKind::GroundP), Created);
  uint64_t Before = T.probeCount();
  EXPECT_NE(T.find(17, arity1(PatKind::GroundP)), nullptr);
  EXPECT_EQ(T.probeCount() - Before, 1u);
}

TEST(ExtensionTableTest, InternedPathsUseSameAccounting) {
  // The interned table has three lookup flavors (structural, id-keyed,
  // fused by-pattern); all must count one probe per consultation so the
  // base/fast probe columns of the ablation stay comparable.
  PatternInterner In;
  ExtensionTable T(ExtensionTable::Impl::HashMap, &In);
  bool Created = false;
  for (int I = 0; I != 8; ++I)
    T.findOrCreateByPattern(I, arity1(PatKind::AnyP), Created);

  uint64_t Before = T.probeCount();
  EXPECT_NE(T.find(3, arity1(PatKind::AnyP)), nullptr); // structural hit
  EXPECT_EQ(T.probeCount() - Before, 1u);

  Before = T.probeCount();
  EXPECT_EQ(T.find(99, arity1(PatKind::AnyP)), nullptr); // structural miss
  EXPECT_EQ(T.probeCount() - Before, 1u);

  PatternId AnyId = In.intern(arity1(PatKind::AnyP));
  Before = T.probeCount();
  EXPECT_NE(T.find(3, AnyId), nullptr); // id-keyed hit
  EXPECT_EQ(T.probeCount() - Before, 1u);

  Before = T.probeCount();
  T.findOrCreateByPattern(5, arity1(PatKind::AnyP), Created); // fused hit
  EXPECT_FALSE(Created);
  EXPECT_EQ(T.probeCount() - Before, 1u);

  // LinearList with an interner scans like the paper's list.
  ExtensionTable L(ExtensionTable::Impl::LinearList, &In);
  for (int I = 0; I != 6; ++I)
    L.findOrCreateByPattern(I, arity1(PatKind::AnyP), Created);
  Before = L.probeCount();
  L.findOrCreateByPattern(99, arity1(PatKind::AnyP), Created); // miss: 6
  EXPECT_TRUE(Created);
  EXPECT_EQ(L.probeCount() - Before, 6u);
}

TEST(ExtensionTableTest, FusedAndIdKeyedLookupsAgree) {
  PatternInterner In;
  ExtensionTable T(ExtensionTable::Impl::HashMap, &In);
  bool Created = false;
  Pattern P = makeEntryPattern({PatKind::GroundP, PatKind::VarP});
  ETEntry &A = T.findOrCreateByPattern(4, P, Created);
  EXPECT_TRUE(Created);
  ETEntry &B = T.findOrCreateByPattern(4, P, Created);
  EXPECT_FALSE(Created);
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(T.find(4, A.CallId), &A);
  EXPECT_EQ(T.find(4, P), &A);
  // Creation through the id-keyed path is found by the fused path too.
  PatternId QId = In.intern(makeEntryPattern({PatKind::AnyP}));
  ETEntry &C = T.findOrCreate(7, QId, Created);
  EXPECT_TRUE(Created);
  EXPECT_EQ(&T.findOrCreateByPattern(7, C.Call, Created), &C);
  EXPECT_FALSE(Created);
}

} // namespace
