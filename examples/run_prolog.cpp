//===- examples/run_prolog.cpp - Concrete WAM runner ----------------------===//
//
// Runs a Prolog program on the concrete WAM (the substrate the paper
// reinterprets):
//
//   run_prolog (<file.pl> | bench:<name>) [<goal>] [--all] [--steps]
//
// The goal defaults to "main". With --all, all solutions are printed
// (up to 100); --steps reports executed instruction counts.
//
//===----------------------------------------------------------------------===//

#include "programs/Benchmarks.h"
#include "term/TermWriter.h"
#include "wam/Machine.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace awam;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: run_prolog (<file.pl> | bench:<name>) [<goal>] "
                 "[--all] [--steps]\n");
    return 2;
  }
  std::string Input = argv[1];
  std::string GoalText = "main";
  bool All = false, Steps = false;
  for (int I = 2; I < argc; ++I) {
    std::string_view Arg = argv[I];
    if (Arg == "--all")
      All = true;
    else if (Arg == "--steps")
      Steps = true;
    else
      GoalText = Arg;
  }

  std::string Source;
  if (Input.starts_with("bench:")) {
    const BenchmarkProgram *B = findBenchmark(Input.substr(6));
    if (!B) {
      std::fprintf(stderr, "unknown benchmark '%s'\n", Input.c_str() + 6);
      return 1;
    }
    Source = B->Source;
  } else {
    std::ifstream In(Input);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", Input.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> Program = compileSource(Source, Syms, Arena);
  if (!Program) {
    std::fprintf(stderr, "error: %s\n", Program.diag().str().c_str());
    return 1;
  }

  Parser GoalParser(GoalText, Syms, Arena);
  Result<const Term *> Goal = GoalParser.readTerm();
  if (!Goal || !*Goal) {
    std::fprintf(stderr, "bad goal '%s'\n", GoalText.c_str());
    return 1;
  }
  int NumVars = GoalParser.lastTermNumVars();

  Machine M(*Program);
  std::vector<Solution> Solutions;
  TermArena SolutionArena;
  RunStatus Status =
      M.solve(*Goal, NumVars, SolutionArena, Solutions, All ? 100 : 1);

  if (!M.output().empty())
    std::fputs(M.output().c_str(), stdout);

  switch (Status) {
  case RunStatus::Error:
    std::fprintf(stderr, "error: %s\n", M.errorMessage().c_str());
    return 1;
  case RunStatus::Failure:
    std::printf("no.\n");
    break;
  case RunStatus::Halted:
    std::printf("halted.\n");
    break;
  case RunStatus::Success:
    for (const Solution &S : Solutions) {
      bool Printed = false;
      for (int I = 0; I != NumVars; ++I) {
        if (!S.Bindings[I])
          continue;
        std::printf("%s%s", Printed ? ", " : "",
                    writeTerm(S.Bindings[I], Syms).c_str());
        Printed = true;
      }
      std::printf("%s\n", Printed ? "" : "yes.");
    }
    break;
  }
  if (Steps)
    std::printf("%% %llu instructions executed\n",
                static_cast<unsigned long long>(M.stepsExecuted()));
  return 0;
}
