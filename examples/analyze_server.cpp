//===- examples/analyze_server.cpp - Persistent analysis server -----------===//
//
// A line-oriented analysis service over the persistent store: load a
// program once, then answer any number of entry-goal queries against one
// warm AnalysisStore. Commands on stdin, one per line; results on stdout,
// prompts and errors on stderr — so piping a command script through the
// server yields a clean, diffable transcript (the CI smoke does exactly
// that).
//
//   analyze_server [--threads N] [--spec-batch-min N] [--spec-batch-max N]
//                  [--warm-threads N]
//
// The flags configure every store the server creates: driver threads for
// cold queries, the adaptive speculation batch bounds of the parallel
// driver, and the warm-drain thread count for replay validation (0 =
// follow --threads). Results are byte-identical at every setting; only
// speculation effectiveness varies.
//
//   load (<file.pl> | bench:<name>)   compile and select a program
//   entry SPEC                        analyze, e.g. entry qsort(glist,var,var)
//   batch SPEC; SPEC; ...             several entries, all validated first
//   edit NAME/ARITY                   mark a predicate edited; re-analyze
//                                     the last entry incrementally
//   domain [NAME]                     switch the abstract domain (no
//                                     operand: print current + registered);
//                                     the loaded program re-selects its
//                                     per-domain store
//   modes                             toggle mode report vs pattern table
//   dump                              canonical per-root store projection
//   stats                             cumulative store statistics
//   help, quit
//
// Loaded programs are keyed by CodeModule::fingerprint() *and* the active
// abstract domain: re-loading a module whose compiled code is semantically
// identical (same predicates, same clause code) under the same domain
// switches back to the existing warm store instead of starting cold, so a
// client that round-trips an unchanged file keeps all of its memoized
// summaries — while summaries of different domains (whose pattern
// encodings are incompatible) never mix.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Domain.h"
#include "analyzer/Session.h"
#include "programs/Benchmarks.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

using namespace awam;

namespace {

/// Driver configuration shared by every store the server creates, set
/// once from argv (see the file comment).
AnalyzerOptions ServerOptions;

/// One loaded program and its warm analysis state, under one abstract
/// domain. The symbol table and arena live here because the compiled
/// program borrows both; Source is kept so a `domain` switch can rebuild
/// the same program into a sibling per-domain workspace.
struct Workspace {
  std::string Label;
  std::string Source;
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> Program = makeError("unloaded");
  std::unique_ptr<AnalysisSession> Session;
};

/// Compiles \p Source into a fresh workspace under \p DomainName; null +
/// stderr message on parse/compile errors.
std::unique_ptr<Workspace> compileWorkspace(const std::string &Source,
                                            std::string Label,
                                            const std::string &DomainName) {
  auto W = std::make_unique<Workspace>();
  W->Label = std::move(Label);
  W->Source = Source;
  W->Program = compileSource(Source, W->Syms, W->Arena);
  if (!W->Program) {
    std::fprintf(stderr, "error: %s\n", W->Program.diag().str().c_str());
    return nullptr;
  }
  AnalyzerOptions Options = ServerOptions;
  Options.Persistent = true;
  Options.DomainName = DomainName;
  W->Session = std::make_unique<AnalysisSession>(*W->Program, Options);
  return W;
}

/// Parses \p Text as an integer in [\p Min, INT_MAX] (the analyze_file
/// parseIntArg contract).
bool parseIntArg(const char *Text, int Min, int &Out) {
  errno = 0;
  char *End = nullptr;
  long V = std::strtol(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE || V < Min ||
      V > std::numeric_limits<int>::max())
    return false;
  Out = static_cast<int>(V);
  return true;
}

/// Parses a NAME/ARITY operand (shared with analyze_file's --edit).
bool parseSig(std::string_view S, PredSig &Out) {
  size_t Slash = S.rfind('/');
  if (Slash == std::string_view::npos || Slash == 0)
    return false;
  int Arity = 0;
  for (char C : S.substr(Slash + 1)) {
    if (C < '0' || C > '9')
      return false;
    Arity = Arity * 10 + (C - '0');
  }
  if (Slash + 1 == S.size())
    return false;
  Out.Name = std::string(S.substr(0, Slash));
  Out.Arity = Arity;
  return true;
}

std::string trim(std::string_view S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string_view::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return std::string(S.substr(B, E - B + 1));
}

void help() {
  std::fprintf(stderr,
               "commands:\n"
               "  load (<file.pl> | bench:<name>)\n"
               "  entry SPEC          e.g. entry qsort(glist, var, var)\n"
               "  batch SPEC; SPEC    several entries through the warm store\n"
               "  edit NAME/ARITY     incremental re-analysis after an edit\n"
               "  domain [NAME]       switch abstract domain (or show it)\n"
               "  modes               toggle mode report / pattern table\n"
               "  dump                canonical per-root store projection\n"
               "  stats               cumulative store statistics\n"
               "  help, quit\n");
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    std::string_view Arg = argv[I];
    bool Ok = false;
    if (Arg == "--threads" && I + 1 < argc) {
      if (!(Ok = parseIntArg(argv[++I], 1, ServerOptions.NumThreads)))
        std::fprintf(stderr, "bad --threads '%s': expected an integer >= 1\n",
                     argv[I]);
    } else if (Arg == "--spec-batch-min" && I + 1 < argc) {
      if (!(Ok = parseIntArg(argv[++I], 1, ServerOptions.SpecBatchMin)))
        std::fprintf(stderr,
                     "bad --spec-batch-min '%s': expected an integer >= 1\n",
                     argv[I]);
    } else if (Arg == "--spec-batch-max" && I + 1 < argc) {
      if (!(Ok = parseIntArg(argv[++I], 1, ServerOptions.SpecBatchMax)))
        std::fprintf(stderr,
                     "bad --spec-batch-max '%s': expected an integer >= 1\n",
                     argv[I]);
    } else if (Arg == "--warm-threads" && I + 1 < argc) {
      if (!(Ok = parseIntArg(argv[++I], 0, ServerOptions.WarmThreads)))
        std::fprintf(stderr,
                     "bad --warm-threads '%s': expected an integer >= 0\n",
                     argv[I]);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[I]);
    }
    if (!Ok) {
      std::fprintf(stderr,
                   "usage: analyze_server [--threads N] [--spec-batch-min N] "
                   "[--spec-batch-max N]\n                      "
                   "[--warm-threads N]\n");
      return 2;
    }
  }

  // Warm stores keyed by (module fingerprint, domain name); Current points
  // into the map. One program analyzed under two domains gets two
  // independent warm stores — their pattern encodings are incompatible.
  std::map<std::pair<uint64_t, std::string>, std::unique_ptr<Workspace>>
      Stores;
  Workspace *Current = nullptr;
  bool ShowModes = false;
  std::string DomainName = "modes";

  // Compiles (or re-selects) the workspace for a source under the active
  // domain and makes it current. The label is what the user typed after
  // `load`, reused verbatim on domain switches.
  auto selectWorkspace = [&](const std::string &Source,
                             const std::string &Label) {
    std::unique_ptr<Workspace> W =
        compileWorkspace(Source, Label, DomainName);
    if (!W)
      return;
    std::pair<uint64_t, std::string> Key{W->Program->Module->fingerprint(),
                                         DomainName};
    auto It = Stores.find(Key);
    if (It != Stores.end()) {
      // Semantically identical module already loaded under this domain:
      // keep its warm store (and all memoized summaries), drop the fresh
      // compile.
      Current = It->second.get();
      std::fprintf(stderr,
                   "reusing warm store for %s (loaded as %s, domain %s)\n",
                   Label.c_str(), Current->Label.c_str(),
                   DomainName.c_str());
    } else {
      Current = W.get();
      Stores.emplace(std::move(Key), std::move(W));
      std::fprintf(stderr, "loaded %s\n", Label.c_str());
    }
  };

  std::string Line;
  while (std::fputs("awam> ", stderr), std::fflush(stderr),
         std::getline(std::cin, Line)) {
    std::string Cmd = trim(Line);
    if (Cmd.empty() || Cmd[0] == '#')
      continue;
    size_t Sp = Cmd.find(' ');
    std::string Verb = Cmd.substr(0, Sp);
    std::string Rest = Sp == std::string::npos ? "" : trim(Cmd.substr(Sp + 1));

    if (Verb == "quit" || Verb == "exit")
      break;
    if (Verb == "help") {
      help();
      continue;
    }
    if (Verb == "modes") {
      ShowModes = !ShowModes;
      std::fprintf(stderr, "report: %s\n",
                   ShowModes ? "modes" : "patterns");
      continue;
    }
    if (Verb == "load") {
      if (Rest.empty()) {
        std::fprintf(stderr, "load what? (load <file.pl> | load bench:<name>)\n");
        continue;
      }
      std::string Source;
      if (Rest.starts_with("bench:")) {
        const BenchmarkProgram *B = findBenchmark(Rest.substr(6));
        if (!B) {
          std::fprintf(stderr, "unknown benchmark '%s'\n", Rest.c_str() + 6);
          continue;
        }
        Source = B->Source;
      } else {
        std::ifstream In(Rest);
        if (!In) {
          std::fprintf(stderr, "cannot open %s\n", Rest.c_str());
          continue;
        }
        std::ostringstream Buf;
        Buf << In.rdbuf();
        Source = Buf.str();
      }
      selectWorkspace(Source, Rest);
      continue;
    }
    if (Verb == "domain") {
      if (Rest.empty()) {
        std::fprintf(stderr, "domain: %s (registered: %s)\n",
                     DomainName.c_str(), registeredDomainNames().c_str());
        continue;
      }
      Result<const Domain *> D = resolveDomain(Rest);
      if (!D) {
        std::fprintf(stderr, "%s\n", D.diag().str().c_str());
        continue;
      }
      DomainName = Rest;
      std::fprintf(stderr, "domain: %s\n", DomainName.c_str());
      // Re-select the loaded program under the new domain (its per-domain
      // store stays warm across switches).
      if (Current)
        selectWorkspace(Current->Source, Current->Label);
      continue;
    }

    // Every remaining command needs a loaded program.
    if (!Current) {
      std::fprintf(stderr, "no program loaded (try: load bench:qsort)\n");
      continue;
    }

    if (Verb == "entry" || Verb == "edit") {
      Result<AnalysisResult> R = makeError("unreachable");
      if (Verb == "entry") {
        if (Rest.empty()) {
          std::fprintf(stderr, "entry what? (entry qsort(glist, var, var))\n");
          continue;
        }
        R = Current->Session->analyze(Rest);
      } else {
        PredSig Sig;
        if (!parseSig(Rest, Sig)) {
          std::fprintf(stderr, "bad edit '%s': expected name/arity\n",
                       Rest.c_str());
          continue;
        }
        R = Current->Session->reanalyze({Sig});
      }
      if (!R) {
        std::fprintf(stderr, "analysis error: %s\n", R.diag().str().c_str());
        continue;
      }
      std::fputs((ShowModes ? formatModes(*R, Current->Syms)
                            : formatAnalysis(*R, Current->Syms))
                     .c_str(),
                 stdout);
      if (R->Dom)
        std::fputs(R->Dom->formatFacts(*R, *Current->Program).c_str(),
                   stdout);
      std::fflush(stdout);
      continue;
    }
    if (Verb == "batch") {
      std::vector<std::string> Specs;
      std::stringstream SS(Rest);
      std::string Part;
      while (std::getline(SS, Part, ';')) {
        Part = trim(Part);
        if (!Part.empty())
          Specs.push_back(Part);
      }
      if (Specs.empty()) {
        std::fprintf(stderr, "batch what? (batch main; app(glist, var, var))\n");
        continue;
      }
      Result<std::vector<AnalysisResult>> Batch =
          Current->Session->analyzeBatch(Specs);
      if (!Batch) {
        std::fprintf(stderr, "analysis error: %s\n",
                     Batch.diag().str().c_str());
        continue;
      }
      for (size_t I = 0; I != Specs.size(); ++I) {
        std::printf("== entry %s ==\n", Specs[I].c_str());
        std::fputs((ShowModes ? formatModes((*Batch)[I], Current->Syms)
                              : formatAnalysis((*Batch)[I], Current->Syms))
                       .c_str(),
                   stdout);
        if ((*Batch)[I].Dom)
          std::fputs(
              (*Batch)[I].Dom->formatFacts((*Batch)[I], *Current->Program)
                  .c_str(),
              stdout);
      }
      std::fflush(stdout);
      continue;
    }
    if (Verb == "dump") {
      const AnalysisStore *S = Current->Session->store();
      if (!S) {
        std::fprintf(stderr, "no store yet (run an entry first)\n");
        continue;
      }
      std::string D = S->canonicalDump(Current->Syms);
      std::fputs(D.c_str(), stdout);
      if (!D.empty() && D.back() != '\n')
        std::fputs("\n", stdout);
      std::fflush(stdout);
      continue;
    }
    if (Verb == "stats") {
      const AnalysisStore *S = Current->Session->store();
      if (!S) {
        std::fprintf(stderr, "no store yet (run an entry first)\n");
        continue;
      }
      const AnalysisStore::Stats &St = S->stats();
      std::printf("queries: %llu (cache hits %llu, cold %llu, warm %llu)\n"
                  "runs: %llu replayed, %llu executed; activations: %llu "
                  "replayed, %llu executed\n"
                  "warm drains: %llu batches, %llu spec replays (%llu "
                  "committed, %llu discarded), %llu critical units\n"
                  "store: %llu roots, %llu entries (%llu new, %llu shared)\n"
                  "reanalyses: %llu (roots invalidated %llu, entries "
                  "invalidated %llu, last cone %llu)\n",
                  (unsigned long long)St.Queries,
                  (unsigned long long)St.CacheHits,
                  (unsigned long long)St.ColdQueries,
                  (unsigned long long)St.WarmQueries,
                  (unsigned long long)St.ReplayedRuns,
                  (unsigned long long)St.ExecutedRuns,
                  (unsigned long long)St.ReplayedActivations,
                  (unsigned long long)St.ExecutedActivations,
                  (unsigned long long)St.WarmReplayBatches,
                  (unsigned long long)St.WarmSpecReplays,
                  (unsigned long long)St.WarmSpecCommitted,
                  (unsigned long long)St.WarmSpecDiscarded,
                  (unsigned long long)St.WarmCriticalUnits,
                  (unsigned long long)S->numRoots(),
                  (unsigned long long)S->table().size(),
                  (unsigned long long)St.NewEntries,
                  (unsigned long long)St.SharedEntries,
                  (unsigned long long)St.Reanalyses,
                  (unsigned long long)St.InvalidatedRoots,
                  (unsigned long long)St.InvalidatedEntries,
                  (unsigned long long)St.LastConeEntries);
      std::fflush(stdout);
      continue;
    }
    std::fprintf(stderr, "unknown command '%s' (try: help)\n", Verb.c_str());
  }
  return 0;
}
