//===- examples/analyze_server.cpp - Multi-tenant analysis service --------===//
//
// The line-oriented transport over analyzer/Server.h: a concurrent
// multi-tenant analysis service speaking the load / entry / batch / edit /
// domain / modes / dump / stats verb protocol. Two modes:
//
//  * Plain (default): the classic single-client REPL. Commands on stdin,
//    one per line; results on stdout, prompts and messages on stderr — so
//    piping a command script through the server yields a clean, diffable
//    transcript (the CI smoke does exactly that, and the CI server-hammer
//    job uses plain-mode transcripts as its byte-identity reference).
//
//  * Framed (--clients N): multiplexes N independent clients over one
//    stdin/stdout pair. Each input line is `<cid> <command>` with cid in
//    [0, N); requests of different clients run concurrently on the worker
//    pool (per-client order is preserved), and every response line is
//    prefixed `[<cid>] ` on its stream — so per-client transcripts can be
//    sliced back out (sed 's/^\[3\] //') and diffed against a plain-mode
//    run of that client's script alone. Byte-identity of those slices at
//    every worker count is the concurrency contract.
//
//   analyze_server [--threads N] [--spec-batch-min N] [--spec-batch-max N]
//                  [--warm-threads N] [--workers N] [--max-store-bytes N]
//                  [--clients N]
//
// --threads / --spec-batch-* / --warm-threads configure every store the
// server creates (cold-drain parallelism, speculation batch bounds, warm
// replay-validation threads). --workers sizes the request worker pool;
// --max-store-bytes bounds total store memory by LRU eviction (0 =
// unbounded). Results are byte-identical at every setting.
//
// Loaded programs are keyed by CodeModule::fingerprint() *and* the active
// abstract domain, shared across clients: two clients loading the same
// module under the same domain share one warm store (writers serialized,
// repeat reads served from the response cache, duplicate in-flight
// queries coalesced — see analyzer/Server.h).
//
//===----------------------------------------------------------------------===//

#include "analyzer/Server.h"
#include "programs/Benchmarks.h"

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

using namespace awam;

namespace {

/// Parses \p Text as an integer in [\p Min, INT_MAX] (the analyze_file
/// parseIntArg contract).
bool parseIntArg(const char *Text, int Min, int &Out) {
  errno = 0;
  char *End = nullptr;
  long V = std::strtol(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE || V < Min ||
      V > std::numeric_limits<int>::max())
    return false;
  Out = static_cast<int>(V);
  return true;
}

/// `load` operand resolution: bench:<name> from the built-in benchmark
/// programs, anything else as a file path.
bool loadSource(const std::string &Spec, std::string &Source,
                std::string &Err) {
  if (Spec.starts_with("bench:")) {
    const BenchmarkProgram *B = findBenchmark(Spec.substr(6));
    if (!B) {
      Err = "unknown benchmark '" + Spec.substr(6) + "'\n";
      return false;
    }
    Source = B->Source;
    return true;
  }
  std::ifstream In(Spec);
  if (!In) {
    Err = "cannot open " + Spec + "\n";
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Source = Buf.str();
  return true;
}

/// Writes \p Text to \p Stream with every line prefixed "[<cid>] " (framed
/// mode). A trailing unterminated fragment keeps its missing newline.
void putFramed(std::FILE *Stream, int Cid, const std::string &Text) {
  size_t B = 0;
  while (B < Text.size()) {
    size_t E = Text.find('\n', B);
    bool Terminated = E != std::string::npos;
    size_t Len = (Terminated ? E : Text.size()) - B;
    std::fprintf(Stream, "[%d] %.*s%s", Cid, static_cast<int>(Len),
                 Text.data() + B, Terminated ? "\n" : "");
    B = Terminated ? E + 1 : Text.size();
  }
}

int runPlain(AnalysisServer &Server) {
  int Client = Server.openClient();
  std::string Line;
  while (std::fputs("awam> ", stderr), std::fflush(stderr),
         std::getline(std::cin, Line)) {
    AnalysisServer::Response R = Server.execute(Client, Line);
    if (!R.Err.empty())
      std::fputs(R.Err.c_str(), stderr);
    if (!R.Out.empty()) {
      std::fputs(R.Out.c_str(), stdout);
      std::fflush(stdout);
    }
    if (R.Quit)
      break;
  }
  return 0;
}

int runFramed(AnalysisServer &Server, int NumClients) {
  std::vector<int> Clients(static_cast<size_t>(NumClients));
  for (int I = 0; I != NumClients; ++I)
    Clients[static_cast<size_t>(I)] = Server.openClient();

  // Responses print atomically under one lock, in per-client completion
  // order (the server serializes each client's requests); Outstanding
  // gates exit so EOF still drains every in-flight request.
  std::mutex OutMu;
  std::condition_variable OutCV;
  int Outstanding = 0;

  std::string Line;
  while (std::getline(std::cin, Line)) {
    size_t Sp = Line.find(' ');
    std::string CidText = Line.substr(0, Sp);
    int Cid = -1;
    if (!parseIntArg(CidText.c_str(), 0, Cid) || Cid >= NumClients) {
      std::fprintf(stderr, "bad client id '%s' (expected 0..%d)\n",
                   CidText.c_str(), NumClients - 1);
      continue;
    }
    std::string Cmd = Sp == std::string::npos ? "" : Line.substr(Sp + 1);
    {
      std::lock_guard<std::mutex> L(OutMu);
      ++Outstanding;
    }
    Server.submit(Clients[static_cast<size_t>(Cid)], Cmd,
                  [&, Cid](const AnalysisServer::Response &R) {
                    std::lock_guard<std::mutex> L(OutMu);
                    putFramed(stderr, Cid, R.Err);
                    putFramed(stdout, Cid, R.Out);
                    std::fflush(stdout);
                    std::fflush(stderr);
                    --Outstanding;
                    OutCV.notify_all();
                  });
  }
  std::unique_lock<std::mutex> L(OutMu);
  OutCV.wait(L, [&] { return Outstanding == 0; });
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  AnalysisServer::Config Cfg;
  Cfg.LoadSource = loadSource;
  int NumClients = 0;
  int MaxStoreBytes = -1;
  for (int I = 1; I < argc; ++I) {
    std::string_view Arg = argv[I];
    bool Ok = false;
    if (Arg == "--threads" && I + 1 < argc) {
      if (!(Ok = parseIntArg(argv[++I], 1, Cfg.Options.NumThreads)))
        std::fprintf(stderr, "bad --threads '%s': expected an integer >= 1\n",
                     argv[I]);
    } else if (Arg == "--spec-batch-min" && I + 1 < argc) {
      if (!(Ok = parseIntArg(argv[++I], 1, Cfg.Options.SpecBatchMin)))
        std::fprintf(stderr,
                     "bad --spec-batch-min '%s': expected an integer >= 1\n",
                     argv[I]);
    } else if (Arg == "--spec-batch-max" && I + 1 < argc) {
      if (!(Ok = parseIntArg(argv[++I], 1, Cfg.Options.SpecBatchMax)))
        std::fprintf(stderr,
                     "bad --spec-batch-max '%s': expected an integer >= 1\n",
                     argv[I]);
    } else if (Arg == "--warm-threads" && I + 1 < argc) {
      if (!(Ok = parseIntArg(argv[++I], 0, Cfg.Options.WarmThreads)))
        std::fprintf(stderr,
                     "bad --warm-threads '%s': expected an integer >= 0\n",
                     argv[I]);
    } else if (Arg == "--workers" && I + 1 < argc) {
      if (!(Ok = parseIntArg(argv[++I], 1, Cfg.Workers)))
        std::fprintf(stderr, "bad --workers '%s': expected an integer >= 1\n",
                     argv[I]);
    } else if (Arg == "--max-store-bytes" && I + 1 < argc) {
      if (!(Ok = parseIntArg(argv[++I], 0, MaxStoreBytes)))
        std::fprintf(
            stderr,
            "bad --max-store-bytes '%s': expected an integer >= 0\n",
            argv[I]);
    } else if (Arg == "--clients" && I + 1 < argc) {
      if (!(Ok = parseIntArg(argv[++I], 1, NumClients)))
        std::fprintf(stderr, "bad --clients '%s': expected an integer >= 1\n",
                     argv[I]);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[I]);
    }
    if (!Ok) {
      std::fprintf(
          stderr,
          "usage: analyze_server [--threads N] [--spec-batch-min N] "
          "[--spec-batch-max N]\n                      [--warm-threads N] "
          "[--workers N] [--max-store-bytes N]\n                      "
          "[--clients N]\n");
      return 2;
    }
  }
  if (MaxStoreBytes >= 0)
    Cfg.MaxStoreBytes = static_cast<uint64_t>(MaxStoreBytes);

  AnalysisServer Server(Cfg);
  return NumClients > 0 ? runFramed(Server, NumClients) : runPlain(Server);
}
