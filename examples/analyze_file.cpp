//===- examples/analyze_file.cpp - Command-line dataflow analyzer ---------===//
//
// The full analyzer as a tool:
//
//   analyze_file (<file.pl> | bench:<name>) [options]
//
//   --lib MOD.pl   compile MOD.pl (or bench:<name>) as a separate library
//                  unit and link it with the main input before analysis;
//                  repeatable (units link in flag order, main input last).
//                  Duplicate definitions across units are link errors;
//                  imports left unresolved after linking warn with the
//                  near-miss diagnostic and fail at runtime like any
//                  undefined predicate. The linked program is
//                  observationally identical to compiling the
//                  concatenated sources.
//   --export-summaries FILE
//                  after analysis, serialize the session store's derived
//                  summaries + replay traces to FILE (module-independent
//                  bundle; see analyzer/SummaryBundle.h). Implies a
//                  persistent store.
//   --import-summaries FILE
//                  before analysis, load a bundle exported earlier and
//                  bank its still-valid traces as warm-start hints.
//                  Stale or unresolvable traces are dropped (counts on
//                  stderr); answers are byte-identical to a run without
//                  the import. Implies a persistent store.
//   --entry SPEC   entry goal, e.g. "main" or "qsort(glist, var, var)"
//                  (default: main). Repeatable: with several entries the
//                  queries share one persistent analysis store — later
//                  entries warm-start from the table work of earlier ones,
//                  and each report is byte-identical to a single-entry run
//                  of that spec (the CI batch gate diffs exactly this).
//   --entries FILE batch file of entry specs, one per line; blank lines
//                  and lines starting with '#' are skipped. Combines with
//                  --entry (file specs run after the flag specs). All
//                  specs are validated before any analysis runs.
//   --depth K      term-depth restriction (default 4, K >= 1)
//   --threads N    worklist driver threads (default 1, N >= 1; the table
//                  is byte-identical for every N — the CI determinism
//                  gate diffs this tool's output across thread counts)
//   --spec-batch-min N / --spec-batch-max N
//                  bounds of the parallel driver's adaptive speculation
//                  batch (defaults 2 / 32, N >= 1, min <= max enforced
//                  downstream by clamping; the result is identical for
//                  any bounds — only speculation effectiveness varies)
//   --warm-threads N
//                  threads for warm drains (reanalyze / store warm
//                  queries; default 0 = follow --threads, N >= 0;
//                  byte-identical output at every value)
//   --edit P/A     mark predicate P/A edited and re-analyze incrementally
//                  after the initial run; repeatable (one chained
//                  reanalyze per flag). The final report is byte-identical
//                  to the plain run — the CI incremental gate diffs it.
//   --domain NAME  abstract domain to analyze under (default "modes", the
//                  paper's mode/type/aliasing domain; "pos" infers
//                  groundness dependencies, "det" derives per-predicate
//                  determinism facts). Unknown names are rejected with the
//                  registered list.
//   --wam          print the compiled WAM code
//   --modes        print the mode report (default prints patterns)
//   --optimize     specialize the compiled code with the analysis facts
//                  and print the rewrite report plus the annotated
//                  listing (requires the compiled worklist analyzer and
//                  the "modes" or "det" domain). Works in every session
//                  shape: scratch runs, --edit chains (facts come from
//                  the final incremental result) and --entries batches
//                  (facts are joined across every entry's table).
//   --baseline     use the meta-interpreting analyzer instead
//   --trace        print the extension-table control trace
//   --dead         report predicates unreachable from the entry goal
//
// Unknown --flags are rejected with the offending name; this header, the
// usage string and the parser below list exactly the same option set.
//
//===----------------------------------------------------------------------===//

#include "analyzer/AbstractMachine.h"
#include "analyzer/Domain.h"
#include "analyzer/Session.h"
#include "analyzer/Specialize.h"
#include "baseline/MetaAnalyzer.h"
#include "compiler/Disasm.h"
#include "compiler/ModuleLink.h"
#include "compiler/Specializer.h"
#include "programs/Benchmarks.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

using namespace awam;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: analyze_file (<file.pl> | bench:<name>) [--lib MOD.pl]... "
      "[--entry SPEC]...\n                    [--entries FILE] "
      "[--export-summaries FILE] [--import-summaries FILE]\n"
      "                    [--depth K] [--threads N] "
      "[--spec-batch-min N] [--spec-batch-max N]\n                    "
      "[--warm-threads N] [--edit P/A]... [--domain NAME] [--wam] "
      "[--modes]\n                    [--optimize] [--baseline] [--trace] "
      "[--dead]\n");
  return 2;
}

/// Parses \p Text as an integer in [\p Min, INT_MAX]; false on trailing
/// garbage, empty input, out-of-range values, or anything below Min
/// (std::atoi would silently yield 0 — and UB — on all of those).
bool parseIntArg(const char *Text, int Min, int &Out) {
  errno = 0;
  char *End = nullptr;
  long V = std::strtol(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE || V < Min ||
      V > std::numeric_limits<int>::max())
    return false;
  Out = static_cast<int>(V);
  return true;
}

/// Parses a --edit operand of the form "name/arity".
bool parseEditArg(const char *Text, PredSig &Out) {
  std::string_view S = Text;
  size_t Slash = S.rfind('/');
  if (Slash == std::string_view::npos || Slash == 0)
    return false;
  int Arity = 0;
  if (!parseIntArg(std::string(S.substr(Slash + 1)).c_str(), 0, Arity))
    return false;
  Out.Name = std::string(S.substr(0, Slash));
  Out.Arity = Arity;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();

  std::string Input = argv[1];
  std::vector<std::string> Libs;
  std::string ExportPath, ImportPath;
  std::vector<std::string> Entries;
  bool UsedEntriesFile = false;
  int Depth = kDefaultDepthLimit;
  int Threads = 1;
  int SpecBatchMin = 2, SpecBatchMax = 32, WarmThreads = 0;
  bool ShowWam = false, ShowModes = false, UseBaseline = false,
       Trace = false, ShowDead = false, Optimize = false;
  std::string DomainName = "modes";
  std::vector<PredSig> Edits;
  for (int I = 2; I < argc; ++I) {
    std::string_view Arg = argv[I];
    if (Arg == "--lib" && I + 1 < argc)
      Libs.push_back(argv[++I]);
    else if (Arg == "--export-summaries" && I + 1 < argc)
      ExportPath = argv[++I];
    else if (Arg == "--import-summaries" && I + 1 < argc)
      ImportPath = argv[++I];
    else if (Arg == "--entry" && I + 1 < argc)
      Entries.push_back(argv[++I]);
    else if (Arg == "--entries" && I + 1 < argc) {
      std::ifstream EF(argv[++I]);
      if (!EF) {
        std::fprintf(stderr, "cannot open %s\n", argv[I]);
        return 1;
      }
      UsedEntriesFile = true;
      std::string Line;
      while (std::getline(EF, Line)) {
        size_t B = Line.find_first_not_of(" \t\r");
        if (B == std::string::npos)
          continue;
        size_t E = Line.find_last_not_of(" \t\r");
        Line = Line.substr(B, E - B + 1);
        if (Line[0] == '#')
          continue;
        Entries.push_back(Line);
      }
    } else if (Arg == "--depth" && I + 1 < argc) {
      if (!parseIntArg(argv[++I], 1, Depth)) {
        std::fprintf(stderr, "bad --depth '%s': expected an integer >= 1\n",
                     argv[I]);
        return usage();
      }
    } else if (Arg == "--threads" && I + 1 < argc) {
      if (!parseIntArg(argv[++I], 1, Threads)) {
        std::fprintf(stderr, "bad --threads '%s': expected an integer >= 1\n",
                     argv[I]);
        return usage();
      }
    } else if (Arg == "--spec-batch-min" && I + 1 < argc) {
      if (!parseIntArg(argv[++I], 1, SpecBatchMin)) {
        std::fprintf(stderr,
                     "bad --spec-batch-min '%s': expected an integer >= 1\n",
                     argv[I]);
        return usage();
      }
    } else if (Arg == "--spec-batch-max" && I + 1 < argc) {
      if (!parseIntArg(argv[++I], 1, SpecBatchMax)) {
        std::fprintf(stderr,
                     "bad --spec-batch-max '%s': expected an integer >= 1\n",
                     argv[I]);
        return usage();
      }
    } else if (Arg == "--warm-threads" && I + 1 < argc) {
      if (!parseIntArg(argv[++I], 0, WarmThreads)) {
        std::fprintf(stderr,
                     "bad --warm-threads '%s': expected an integer >= 0\n",
                     argv[I]);
        return usage();
      }
    } else if (Arg == "--edit" && I + 1 < argc) {
      PredSig Sig;
      if (!parseEditArg(argv[++I], Sig)) {
        std::fprintf(stderr, "bad --edit '%s': expected name/arity\n",
                     argv[I]);
        return usage();
      }
      Edits.push_back(std::move(Sig));
    } else if (Arg == "--domain" && I + 1 < argc) {
      DomainName = argv[++I];
      // Validate eagerly: a typo should fail before any file is parsed,
      // with the registered-domain list in the message.
      if (Result<const Domain *> D = resolveDomain(DomainName); !D) {
        std::fprintf(stderr, "%s\n", D.diag().str().c_str());
        return usage();
      }
    } else if (Arg == "--wam")
      ShowWam = true;
    else if (Arg == "--modes")
      ShowModes = true;
    else if (Arg == "--optimize")
      Optimize = true;
    else if (Arg == "--baseline")
      UseBaseline = true;
    else if (Arg == "--trace")
      Trace = true;
    else if (Arg == "--dead")
      ShowDead = true;
    else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[I]);
      return usage();
    }
  }

  // Resolves an input spec (path or bench:<name>) to Prolog source text.
  auto loadSource = [](const std::string &Spec, std::string &Out) {
    if (Spec.starts_with("bench:")) {
      const BenchmarkProgram *B = findBenchmark(Spec.substr(6));
      if (!B) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", Spec.c_str() + 6);
        return false;
      }
      Out = B->Source;
      return true;
    }
    std::ifstream In(Spec);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", Spec.c_str());
      return false;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Out = Buf.str();
    return true;
  };

  std::string Source;
  if (!loadSource(Input, Source))
    return 1;

  SymbolTable Syms;
  TermArena Arena;
  Result<ParsedProgram> Parsed = parseProgram(Source, Syms, Arena);
  if (!Parsed) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.diag().str().c_str());
    return 1;
  }
  Result<CompiledProgram> Compiled = compileProgram(*Parsed, Syms);
  if (!Compiled) {
    std::fprintf(stderr, "compile error: %s\n",
                 Compiled.diag().str().c_str());
    return 1;
  }

  // Separate prelude compilation: each --lib unit compiles on its own
  // (against the shared symbol table) and links with the main input,
  // which goes last so library exports resolve its imports. The linked
  // program is observationally identical to compiling the concatenated
  // sources, so everything downstream is oblivious to the split.
  if (!Libs.empty()) {
    if (UseBaseline) {
      std::fprintf(stderr, "--lib requires the compiled analyzer "
                           "(no --baseline)\n");
      return usage();
    }
    std::vector<CompiledProgram> LibUnits;
    LibUnits.reserve(Libs.size());
    for (const std::string &LibSpec : Libs) {
      std::string LibSource;
      if (!loadSource(LibSpec, LibSource))
        return 1;
      Result<CompiledProgram> LC = compileSource(LibSource, Syms, Arena);
      if (!LC) {
        std::fprintf(stderr, "%s: %s\n", LibSpec.c_str(),
                     LC.diag().str().c_str());
        return 1;
      }
      LibUnits.push_back(LC.take());
    }
    std::vector<ModuleUnit> Units;
    for (size_t I = 0; I != LibUnits.size(); ++I)
      Units.push_back({&LibUnits[I], Libs[I]});
    Units.push_back({&*Compiled, Input});
    Result<LinkedProgram> Linked = linkPrograms(Units);
    if (!Linked) {
      std::fprintf(stderr, "link error: %s\n", Linked.diag().str().c_str());
      return 1;
    }
    for (const std::string &W : Linked->UnresolvedImports)
      std::fprintf(stderr, "warning: %s\n", W.c_str());
    *Compiled = std::move(Linked->Program);
  } else {
    for (int32_t Pid : Compiled->UndefinedPredicates)
      std::fprintf(stderr, "warning: %s is called but not defined\n",
                   Compiled->Module->predicateLabel(Pid).c_str());
  }

  if (ShowWam)
    std::fputs(disassembleModule(*Compiled->Module).c_str(), stdout);

  AnalyzerOptions Options;
  Options.DepthLimit = Depth;
  Options.NumThreads = Threads;
  Options.SpecBatchMin = SpecBatchMin;
  Options.SpecBatchMax = SpecBatchMax;
  Options.WarmThreads = WarmThreads;
  Options.Incremental = !Edits.empty();
  Options.DomainName = DomainName;

  if (DomainName != "modes" && (UseBaseline || Trace)) {
    std::fprintf(stderr, "--domain requires the compiled worklist analyzer "
                         "(no --baseline / --trace)\n");
    return usage();
  }
  if (!Edits.empty() && (UseBaseline || Trace)) {
    std::fprintf(stderr,
                 "--edit requires the compiled worklist analyzer (no "
                 "--baseline / --trace)\n");
    return usage();
  }
  if (Optimize && (UseBaseline || Trace)) {
    std::fprintf(stderr,
                 "--optimize requires the compiled worklist analyzer (no "
                 "--baseline / --trace)\n");
    return usage();
  }
  if (Optimize && DomainName != "modes" && DomainName != "det") {
    std::fprintf(stderr, "--optimize requires the \"modes\" or \"det\" "
                         "domain (facts come from call/success patterns)\n");
    return usage();
  }
  if ((!ExportPath.empty() || !ImportPath.empty()) && (UseBaseline || Trace)) {
    std::fprintf(stderr,
                 "--export-summaries / --import-summaries require the "
                 "compiled worklist analyzer (no --baseline / --trace)\n");
    return usage();
  }
  // Summary bundles live in the persistent store's replay bank.
  if (!ExportPath.empty() || !ImportPath.empty())
    Options.Persistent = true;

  // Loads the --import-summaries bundle into the session store before any
  // analysis runs; its surviving traces warm-start the queries below.
  auto importInto = [&](AnalysisSession &A) {
    if (ImportPath.empty())
      return true;
    std::ifstream In(ImportPath, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", ImportPath.c_str());
      return false;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Result<AnalysisStore::ImportStats> IS = A.importSummaries(Buf.str());
    if (!IS) {
      std::fprintf(stderr, "import error: %s\n", IS.diag().str().c_str());
      return false;
    }
    std::fprintf(stderr,
                 "imported %llu/%llu traces from %s (%llu stale, %llu "
                 "unresolved dropped)\n",
                 static_cast<unsigned long long>(IS->Banked),
                 static_cast<unsigned long long>(IS->BundleTraces),
                 ImportPath.c_str(),
                 static_cast<unsigned long long>(IS->DroppedStale),
                 static_cast<unsigned long long>(IS->DroppedUnresolved));
    return true;
  };

  // Writes the session store's bundle to --export-summaries after the
  // analyses above have populated it.
  auto exportFrom = [&](AnalysisSession &A) {
    if (ExportPath.empty())
      return true;
    Result<std::string> Bytes = A.exportSummaries();
    if (!Bytes) {
      std::fprintf(stderr, "export error: %s\n", Bytes.diag().str().c_str());
      return false;
    }
    std::ofstream Out(ExportPath, std::ios::binary);
    Out.write(Bytes->data(), static_cast<std::streamsize>(Bytes->size()));
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", ExportPath.c_str());
      return false;
    }
    std::fprintf(stderr, "exported %zu summary bytes to %s\n",
                 Bytes->size(), ExportPath.c_str());
    return true;
  };

  // Runs the analyzer-directed specializer over the compiled module and
  // prints the rewrite report plus the annotated listing. The input
  // module is never mutated — CodeModule diffs, fingerprints and the
  // analysis itself keep seeing the original stream.
  auto printOptimized = [&](const AnalysisResult &Facts) {
    SpecializationReport Rep;
    CompiledProgram Spec = specializeProgram(
        *Compiled, buildSpecializationFacts(Facts, *Compiled), Rep);
    std::fputs(formatSpecialization(*Spec.Module, Rep).c_str(), stdout);
  };

  // Batch mode: several entry goals through one persistent store. Every
  // spec is validated before any analysis runs (analyzeBatch's contract),
  // so a typo late in an --entries file fails fast with the usual spec
  // error. The single-entry path below is untouched — the CI determinism
  // and incremental gates diff its exact output.
  if (UsedEntriesFile || Entries.size() > 1) {
    if (UseBaseline || Trace || !Edits.empty()) {
      std::fprintf(stderr, "multiple entries require the compiled worklist "
                           "analyzer (no --baseline / --trace / --edit)\n");
      return usage();
    }
    if (Entries.empty()) {
      std::fprintf(stderr, "--entries file contains no entry specs\n");
      return 1;
    }
    Options.Persistent = true;
    AnalysisSession A(*Compiled, Options);
    if (!importInto(A))
      return 1;
    Result<std::vector<AnalysisResult>> Batch = A.analyzeBatch(Entries);
    if (!Batch) {
      std::fprintf(stderr, "analysis error: %s\n",
                   Batch.diag().str().c_str());
      return 1;
    }
    for (size_t I = 0; I != Entries.size(); ++I) {
      std::printf("== entry %s ==\n", Entries[I].c_str());
      const AnalysisResult &BR = (*Batch)[I];
      std::fputs(
          (ShowModes ? formatModes(BR, Syms) : formatAnalysis(BR, Syms))
              .c_str(),
          stdout);
      if (BR.Dom)
        std::fputs(BR.Dom->formatFacts(BR, *Compiled).c_str(), stdout);
      if (ShowDead)
        std::fputs(formatReachability(BR, *Compiled).c_str(), stdout);
    }
    if (Optimize) {
      // Join the facts of every entry's table: items are self-contained
      // (label + call + success), so concatenating the per-entry item
      // lists and joining per predicate yields facts sound for all
      // entries at once.
      AnalysisResult Joined;
      for (const AnalysisResult &BR : *Batch)
        Joined.Items.insert(Joined.Items.end(), BR.Items.begin(),
                            BR.Items.end());
      std::printf("== optimized ==\n");
      printOptimized(Joined);
    }
    return exportFrom(A) ? 0 : 1;
  }
  const std::string Entry = Entries.empty() ? "main" : Entries.front();

  Result<AnalysisResult> R = makeError("unreachable");
  if (UseBaseline) {
    AnalysisSession B = makeBaselineSession(*Parsed, Syms, Options);
    R = B.analyze(Entry);
  } else if (Trace) {
    Result<std::pair<std::string, Pattern>> Spec = parseEntrySpec(Entry);
    if (!Spec) {
      std::fprintf(stderr, "%s\n", Spec.diag().str().c_str());
      return 1;
    }
    Symbol S = Syms.lookup(Spec->first);
    int32_t Pid =
        S == ~0u ? -1
                 : Compiled->Module->findPredicate(
                       S, static_cast<int>(Spec->second.Roots.size()));
    if (Pid < 0) {
      std::fprintf(stderr, "%s\n",
                   undefinedPredicateMessage(
                       *Compiled->Module, "entry", Spec->first,
                       static_cast<int>(Spec->second.Roots.size()))
                       .c_str());
      return 1;
    }
    std::vector<std::string> Lines;
    ExtensionTable Table;
    AbsMachineOptions MachineOptions;
    MachineOptions.DepthLimit = Depth;
    MachineOptions.TraceLog = &Lines;
    AbstractMachine Machine(*Compiled, Table, MachineOptions);
    AnalysisResult Out;
    while (Machine.runIteration(Pid, Spec->second) ==
               AbsRunStatus::Completed) {
      ++Out.Iterations;
      if (!Machine.changedSinceLastRun()) {
        Out.Converged = true;
        break;
      }
      Lines.push_back("---- next iteration ----");
    }
    for (const std::string &L : Lines)
      std::printf("%s\n", L.c_str());
    Out.Instructions = Machine.stepsExecuted();
    for (const ETEntry &E : Table.entries())
      Out.Items.push_back({E.PredId,
                           Compiled->Module->predicateLabel(E.PredId),
                           E.Call, E.Success});
    R = std::move(Out);
  } else {
    AnalysisSession A(*Compiled, Options);
    if (!importInto(A))
      return 1;
    R = A.analyze(Entry);
    // Chained incremental re-analyses: each --edit marks its predicate
    // edited and replays the rest of the previous run. The final report
    // must be byte-identical to the plain run (the program is unchanged).
    for (const PredSig &Sig : Edits) {
      if (!R)
        break;
      R = A.reanalyze({Sig});
    }
    if (R && !exportFrom(A))
      return 1;
  }
  if (!R) {
    std::fprintf(stderr, "analysis error: %s\n", R.diag().str().c_str());
    return 1;
  }
  std::fputs((ShowModes ? formatModes(*R, Syms) : formatAnalysis(*R, Syms))
                 .c_str(),
             stdout);
  if (R->Dom)
    std::fputs(R->Dom->formatFacts(*R, *Compiled).c_str(), stdout);
  if (ShowDead && !UseBaseline)
    std::fputs(formatReachability(*R, *Compiled).c_str(), stdout);
  if (Optimize)
    printOptimized(*R);
  return 0;
}
