//===- examples/optimizer_hints.cpp - Using the analysis downstream -------===//
//
// The paper's motivation (Section 1): mode/type/aliasing information
// enables "substantial optimizations" — removal of dereferencing and
// trailing [Taylor 89], clause-selection specialization, first-argument
// indexing improvements, and And-Parallelism.
//
// This example closes that loop: it analyzes a program and walks the
// compiled code of every predicate, annotating each head instruction with
// the specialization the inferred calling pattern licenses:
//
//   * argument always nonvar  -> get_* can drop its write-mode branch
//   * argument always ground  -> unification below it needs no trailing
//                                and no dereferencing past the first cell
//   * argument always free    -> get_* can drop its read-mode branch
//                                (pure construction)
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "compiler/Disasm.h"
#include "programs/Benchmarks.h"

#include <cstdio>
#include <map>

using namespace awam;

namespace {

/// What the calling pattern guarantees about one argument register.
struct ArgFacts {
  bool AlwaysNonvar = true;
  bool AlwaysGround = true;
  bool AlwaysFree = true;
};

bool nodeGround(const Pattern &P, int32_t Id, int Fuel = 64) {
  if (Fuel <= 0)
    return false;
  const PatNode &N = P.Nodes[Id];
  switch (N.K) {
  case PatKind::GroundP:
  case PatKind::ConstP:
  case PatKind::AtomTP:
  case PatKind::IntTP:
  case PatKind::ConP:
  case PatKind::IntP:
    return true;
  case PatKind::ListP:
  case PatKind::ConsP:
  case PatKind::StrP:
    for (int32_t C = 0; C != N.ChildCount; ++C)
      if (!nodeGround(P, P.child(N, C), Fuel - 1))
        return false;
    return true;
  default:
    return false;
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string BenchName = argc > 1 ? argv[1] : "qsort";
  const BenchmarkProgram *B = findBenchmark(BenchName);
  if (!B) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", BenchName.c_str());
    return 1;
  }

  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> Program = compileSource(B->Source, Syms, Arena);
  if (!Program) {
    std::fprintf(stderr, "error: %s\n", Program.diag().str().c_str());
    return 1;
  }
  CodeModule &M = *Program->Module;

  // A persistent session: the store outlives this query, so an optimizer
  // asking about several entry points (or re-asking after an edit via
  // reanalyze) pays the fixpoint once and warm-starts every follow-up.
  // Each result is still byte-identical to a from-scratch analysis.
  AnalyzerOptions Options;
  Options.Persistent = true;
  AnalysisSession A(*Program, Options);
  Result<AnalysisResult> R = A.analyze(B->EntrySpec);
  if (!R) {
    std::fprintf(stderr, "analysis error: %s\n", R.diag().str().c_str());
    return 1;
  }

  // Join the facts over every calling pattern of each predicate.
  std::map<int32_t, std::vector<ArgFacts>> Facts;
  for (const AnalysisResult::Item &I : R->Items) {
    auto [It, New] = Facts.try_emplace(
        I.PredId, std::vector<ArgFacts>(I.Call.Roots.size()));
    for (size_t Arg = 0; Arg != I.Call.Roots.size(); ++Arg) {
      ArgFacts &F = It->second[Arg];
      const PatNode &N = I.Call.Nodes[I.Call.Roots[Arg]];
      if (N.K == PatKind::VarP || N.K == PatKind::AnyP)
        F.AlwaysNonvar = false;
      if (!nodeGround(I.Call, I.Call.Roots[Arg]))
        F.AlwaysGround = false;
      if (N.K != PatKind::VarP)
        F.AlwaysFree = false;
    }
    (void)New;
  }

  std::printf("Specialization hints for '%s' (entry %s)\n\n",
              BenchName.c_str(), std::string(B->EntrySpec).c_str());
  for (auto &[Pid, ArgList] : Facts) {
    std::printf("%s:\n", M.predicateLabel(Pid).c_str());
    for (size_t Arg = 0; Arg != ArgList.size(); ++Arg) {
      const ArgFacts &F = ArgList[Arg];
      std::string Hints;
      if (F.AlwaysGround)
        Hints += " drop-trailing drop-deep-deref";
      if (F.AlwaysNonvar)
        Hints += " drop-write-mode";
      if (F.AlwaysFree)
        Hints += " drop-read-mode construct-only";
      if (Hints.empty())
        Hints = " (general unification required)";
      std::printf("  A%zu:%s\n", Arg + 1, Hints.c_str());
    }
    // Annotate the head instructions of each clause.
    const PredicateInfo &Pred = M.predicate(Pid);
    for (const ClauseInfo &C : Pred.Clauses) {
      for (int32_t PC = C.Entry; PC != C.Entry + C.NumInstr; ++PC) {
        const Instruction &I = M.at(PC);
        int ArgReg = -1;
        if (I.Op == Opcode::GetConst || I.Op == Opcode::GetStructure ||
            I.Op == Opcode::GetVariableX || I.Op == Opcode::GetVariableY)
          ArgReg = I.B;
        else if (I.Op == Opcode::GetList)
          ArgReg = I.A;
        else
          continue;
        if (ArgReg < 0 || ArgReg >= static_cast<int>(ArgList.size()))
          continue;
        const ArgFacts &F = ArgList[ArgReg];
        if (!F.AlwaysNonvar && !F.AlwaysGround && !F.AlwaysFree)
          continue;
        std::printf("    @%d %-40s %% %s\n", PC,
                    disassembleInstruction(M, I).c_str(),
                    F.AlwaysGround  ? "read-mode only, no trail"
                    : F.AlwaysNonvar ? "read-mode only"
                                     : "write-mode only");
      }
    }
  }
  return 0;
}
