//===- examples/optimizer_hints.cpp - Using the analysis downstream -------===//
//
// The paper's motivation (Section 1): mode/type/aliasing information
// enables "substantial optimizations" — removal of dereferencing and
// trailing [Taylor 89], clause-selection specialization, first-argument
// indexing improvements, and And-Parallelism.
//
// This example closes that loop through the same adapter the real
// specializer uses (analyzer/Specialize.h): it analyzes a program under
// every registered abstract domain and
//
//   * under "modes", joins the per-predicate argument facts
//     (buildSpecializationFacts) and annotates each head instruction with
//     the rewrite the facts license:
//       - argument always nonvar -> get_* can drop its write-mode branch
//       - argument always ground -> unification below it needs no
//         trailing and no dereferencing past the first cell
//       - argument always free   -> get_* can drop its read-mode branch
//         (pure construction)
//   * under "det" / "pos", prints the domain's own fact report
//     (determinism classes, groundness dependencies) via the registry —
//     the facts the specializer's choice-point rewrites and the
//     reader's groundness reasoning consume.
//
// The full rewriting pass these hints preview is analyze_file --optimize
// (src/compiler/Specializer.h).
//
//   optimizer_hints [bench-name] [domain ...]   (default: qsort, all)
//
//===----------------------------------------------------------------------===//

#include "analyzer/Domain.h"
#include "analyzer/Session.h"
#include "analyzer/Specialize.h"
#include "compiler/Disasm.h"
#include "compiler/Specializer.h"
#include "programs/Benchmarks.h"

#include <cstdio>

using namespace awam;

namespace {

/// Prints the mode-domain hints: per-argument licenses plus annotated
/// head instructions, both derived from the specializer's fact adapter.
void printModeHints(const AnalysisResult &R, const CompiledProgram &Program) {
  CodeModule &M = *Program.Module;
  SpecializationFacts Facts = buildSpecializationFacts(R, Program);
  for (int32_t Pid = 0; Pid != static_cast<int32_t>(Facts.Preds.size());
       ++Pid) {
    const PredSpecFacts &P = Facts.Preds[Pid];
    if (!P.Analyzed)
      continue;
    std::printf("%s:\n", M.predicateLabel(Pid).c_str());
    for (size_t Arg = 0; Arg != P.Args.size(); ++Arg) {
      const ArgSpecFacts &F = P.Args[Arg];
      std::string Hints;
      if (F.KnownGround)
        Hints += " drop-trailing drop-deep-deref";
      if (F.KnownNonvar)
        Hints += " drop-write-mode";
      if (F.KnownFree)
        Hints += " drop-read-mode construct-only";
      if (Hints.empty())
        Hints = " (general unification required)";
      std::printf("  A%zu:%s\n", Arg + 1, Hints.c_str());
    }
    // Annotate the head instructions of each clause.
    const PredicateInfo &Pred = M.predicate(Pid);
    for (const ClauseInfo &C : Pred.Clauses) {
      for (int32_t PC = C.Entry; PC != C.Entry + C.NumInstr; ++PC) {
        const Instruction &I = M.at(PC);
        int ArgReg = -1;
        if (I.Op == Opcode::GetConst || I.Op == Opcode::GetStructure ||
            I.Op == Opcode::GetVariableX || I.Op == Opcode::GetVariableY)
          ArgReg = I.B;
        else if (I.Op == Opcode::GetList)
          ArgReg = I.A;
        else
          continue;
        if (ArgReg < 0 || ArgReg >= static_cast<int>(P.Args.size()))
          continue;
        const ArgSpecFacts &F = P.Args[ArgReg];
        if (!F.KnownNonvar && !F.KnownGround && !F.KnownFree)
          continue;
        std::printf("    @%d %-40s %% %s\n", PC,
                    disassembleInstruction(M, I).c_str(),
                    F.KnownGround   ? "read-mode only, no trail"
                    : F.KnownNonvar ? "read-mode only"
                                    : "write-mode only");
      }
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string BenchName = argc > 1 ? argv[1] : "qsort";
  const BenchmarkProgram *B = findBenchmark(BenchName);
  if (!B) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", BenchName.c_str());
    return 1;
  }
  std::vector<std::string> Domains(argv + std::min(argc, 2), argv + argc);
  if (Domains.empty())
    Domains = {"modes", "det", "pos"};
  for (const std::string &D : Domains)
    if (Result<const Domain *> Dom = resolveDomain(D); !Dom) {
      std::fprintf(stderr, "error: %s\n", Dom.diag().str().c_str());
      return 1;
    }

  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> Program = compileSource(B->Source, Syms, Arena);
  if (!Program) {
    std::fprintf(stderr, "error: %s\n", Program.diag().str().c_str());
    return 1;
  }

  std::printf("Specialization hints for '%s' (entry %s)\n",
              BenchName.c_str(), std::string(B->EntrySpec).c_str());

  for (const std::string &DomainName : Domains) {
    std::printf("\n== domain %s ==\n", DomainName.c_str());
    // A persistent session per domain: the store outlives the query, so
    // an optimizer asking about several entry points (or re-asking after
    // an edit via reanalyze) pays the fixpoint once and warm-starts
    // every follow-up. Each result is still byte-identical to a
    // from-scratch analysis.
    AnalyzerOptions Options;
    Options.Persistent = true;
    Options.DomainName = DomainName;
    AnalysisSession A(*Program, Options);
    Result<AnalysisResult> R = A.analyze(B->EntrySpec);
    if (!R) {
      std::fprintf(stderr, "analysis error: %s\n", R.diag().str().c_str());
      return 1;
    }
    if (DomainName == "modes")
      printModeHints(*R, *Program);
    // The domain's own fact report (determinism classes under "det",
    // groundness dependencies under "pos"; "modes" renders nothing here).
    if (R->Dom)
      std::fputs(R->Dom->formatFacts(*R, *Program).c_str(), stdout);
  }
  return 0;
}
