//===- examples/quickstart.cpp - Library quickstart -----------------------===//
//
// Minimal tour of the public API:
//   1. parse a Prolog program,
//   2. compile it to WAM code,
//   3. run a query on the concrete machine,
//   4. run the compiled dataflow analysis and print the inferred
//      mode/type information,
//   5. ask a second question of the same persistent session — the store
//      warm-starts it from the first query's memoized summaries.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Session.h"
#include "term/TermWriter.h"
#include "wam/Machine.h"

#include <cstdio>

using namespace awam;

int main() {
  const char *Source =
      "app([], L, L).\n"
      "app([H|T], L, [H|R]) :- app(T, L, R).\n"
      "nrev([], []).\n"
      "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n";

  // 1. + 2. Parse and compile.
  SymbolTable Syms;
  TermArena Arena;
  Result<CompiledProgram> Program = compileSource(Source, Syms, Arena);
  if (!Program) {
    std::fprintf(stderr, "error: %s\n", Program.diag().str().c_str());
    return 1;
  }

  // 3. Run a query on the concrete WAM.
  Machine M(*Program);
  Parser GoalParser("nrev([1,2,3,4,5], R)", Syms, Arena);
  Result<const Term *> Goal = GoalParser.readTerm();
  std::vector<Solution> Solutions;
  TermArena SolutionArena;
  RunStatus Status = M.solve(*Goal, GoalParser.lastTermNumVars(),
                             SolutionArena, Solutions, 1);
  if (Status == RunStatus::Success)
    std::printf("?- nrev([1,2,3,4,5], R).\nR = %s\n\n",
                writeTerm(Solutions[0].Bindings[0], Syms).c_str());

  // 4. Analyze: what happens when nrev is called with a ground list and a
  // free result variable? A persistent session keeps the analysis store
  // alive between queries, so this is also how a long-lived service would
  // hold the analyzer.
  AnalyzerOptions Options;
  Options.Persistent = true;
  AnalysisSession A(*Program, Options);
  Result<AnalysisResult> R = A.analyze("nrev(glist, var)");
  if (!R) {
    std::fprintf(stderr, "analysis error: %s\n", R.diag().str().c_str());
    return 1;
  }
  std::printf("%s\n", formatAnalysis(*R, Syms).c_str());
  std::printf("%s", formatModes(*R, Syms).c_str());

  // 5. A second question against the warm store. The nrev query above
  // already tabled every app summary this entry needs, so the drain
  // replays those memo hits instead of re-running the abstract machine —
  // while the report stays byte-identical to a from-scratch analysis.
  Result<AnalysisResult> R2 = A.analyze("app(glist, glist, var)");
  if (!R2) {
    std::fprintf(stderr, "analysis error: %s\n", R2.diag().str().c_str());
    return 1;
  }
  std::printf("\n%s", formatModes(*R2, Syms).c_str());
  return 0;
}
