//===- compiler/Disasm.cpp ------------------------------------------------===//

#include "compiler/Disasm.h"

#include "compiler/Builtins.h"
#include "support/StringUtil.h"

#include <algorithm>

using namespace awam;

static std::string constText(const CodeModule &M, int32_t Idx) {
  const ConstOperand &C = M.constAt(Idx);
  if (C.K == ConstOperand::IntK)
    return std::to_string(C.Int);
  return quoteAtom(M.symbols().name(C.Name));
}

static std::string functorText(const CodeModule &M, int32_t Idx) {
  const FunctorArity &F = M.functorAt(Idx);
  return quoteAtom(M.symbols().name(F.Name)) + "/" +
         std::to_string(F.Arity);
}

// Registers print 1-based, as in the paper (A1 = X1; X and A name the
// same bank, A for argument positions).
static std::string regX(int32_t R) { return "X" + std::to_string(R + 1); }
static std::string regY(int32_t R) { return "Y" + std::to_string(R + 1); }
static std::string regA(int32_t R) { return "A" + std::to_string(R + 1); }
static std::string addr(int32_t A) {
  return A == kFailTarget ? "fail" : "@" + std::to_string(A);
}

// Specialization-flag suffix (" {nv}", " {free}", " {ground}"); empty for
// unflagged instructions, so unspecialized listings are byte-identical to
// the pre-specializer renderer.
static std::string flagsText(uint8_t Flags) {
  if (!Flags)
    return "";
  std::string Out = " {";
  if (Flags & specflag::KnownNonvar)
    Out += "nv";
  if (Flags & specflag::KnownFree)
    Out += Out.back() == '{' ? "free" : ",free";
  if (Flags & specflag::KnownGround)
    Out += Out.back() == '{' ? "ground" : ",ground";
  return Out + "}";
}

std::string awam::disassembleInstruction(const CodeModule &M,
                                         const Instruction &I) {
  std::string Name = padRight(opcodeName(I.Op), 20);
  switch (I.Op) {
  case Opcode::GetVariableX:
  case Opcode::GetValueX:
    return Name + regX(I.A) + ", " + regA(I.B);
  case Opcode::GetVariableY:
  case Opcode::GetValueY:
    return Name + regY(I.A) + ", " + regA(I.B);
  case Opcode::GetConst:
    return Name + constText(M, I.A) + ", " + regA(I.B) + flagsText(I.Flags);
  case Opcode::GetList:
    return Name + regA(I.A) + flagsText(I.Flags);
  case Opcode::GetStructure:
    return Name + functorText(M, I.A) + ", " + regA(I.B) +
           flagsText(I.Flags);
  case Opcode::GetListFused:
    return Name + regA(I.A) + ", " + std::to_string(I.B) + " ops" +
           flagsText(I.Flags);
  case Opcode::GetStructureFused:
    return Name + functorText(M, I.A) + ", " + regA(I.B) + ", " +
           std::to_string(I.C) + " ops" + flagsText(I.Flags);
  case Opcode::PutVariableX:
  case Opcode::PutValueX:
    return Name + regX(I.A) + ", " + regA(I.B);
  case Opcode::PutVariableY:
  case Opcode::PutValueY:
    return Name + regY(I.A) + ", " + regA(I.B);
  case Opcode::PutConst:
    return Name + constText(M, I.A) + ", " + regA(I.B);
  case Opcode::PutList:
    return Name + regX(I.A);
  case Opcode::PutStructure:
    return Name + functorText(M, I.A) + ", " + regX(I.B);
  case Opcode::UnifyVariableX:
  case Opcode::UnifyValueX:
    return Name + regX(I.A);
  case Opcode::UnifyVariableY:
  case Opcode::UnifyValueY:
    return Name + regY(I.A);
  case Opcode::UnifyConst:
    return Name + constText(M, I.A);
  case Opcode::UnifyVoid:
  case Opcode::Allocate:
    return Name + std::to_string(I.A);
  case Opcode::Deallocate:
  case Opcode::Proceed:
  case Opcode::Fail:
  case Opcode::NeckCut:
  case Opcode::Halt:
    return std::string(opcodeName(I.Op));
  case Opcode::Call:
  case Opcode::Execute:
    return Name + M.predicateLabel(I.A);
  case Opcode::Try:
  case Opcode::Retry:
  case Opcode::Trust:
  case Opcode::Jump:
    return Name + addr(I.A);
  case Opcode::SwitchOnTerm: {
    const TermSwitch &S = M.termSwitchAt(I.A);
    return Name + "var:" + addr(S.OnVar) + " const:" + addr(S.OnConst) +
           " list:" + addr(S.OnList) + " struct:" + addr(S.OnStruct);
  }
  case Opcode::SwitchOnConstant:
  case Opcode::SwitchOnStructure: {
    const ValueSwitch &S = M.valueSwitchAt(I.A);
    std::string Out = Name;
    for (auto [Key, Target] : S.Cases) {
      Out += I.Op == Opcode::SwitchOnConstant ? constText(M, Key)
                                              : functorText(M, Key);
      Out += ":" + addr(Target) + " ";
    }
    Out += "default:" + addr(S.Default);
    return Out;
  }
  case Opcode::GetLevel:
  case Opcode::CutY:
    return Name + regY(I.A);
  case Opcode::Builtin:
    return Name +
           std::string(builtinName(static_cast<BuiltinId>(I.A))) + "/" +
           std::to_string(I.B);
  }
  return std::string(opcodeName(I.Op));
}

std::string awam::disassembleRange(const CodeModule &M, int32_t Begin,
                                   int32_t End) {
  std::string Out;
  for (int32_t A = Begin; A != End; ++A) {
    Out += padLeft(std::to_string(A), 5) + "  " +
           disassembleInstruction(M, M.at(A)) + "\n";
  }
  return Out;
}

std::string awam::disassemblePredicate(const CodeModule &M, int32_t PredId) {
  const PredicateInfo &P = M.predicate(PredId);
  std::string Out = M.predicateLabel(PredId) + ":";
  if (P.Clauses.empty())
    return Out + "  (undefined)\n";
  Out += "  index entry " + addr(P.IndexEntry) + "\n";
  for (size_t I = 0; I != P.Clauses.size(); ++I) {
    Out += "  clause " + std::to_string(I + 1) + ":\n";
    Out += disassembleRange(M, P.Clauses[I].Entry,
                            P.Clauses[I].Entry + P.Clauses[I].NumInstr);
  }
  // The indexing block (chains and switches) is emitted contiguously
  // after the predicate's last clause, ending at the index entry.
  if (P.Clauses.size() > 1) {
    int32_t AfterClauses = 0;
    for (const ClauseInfo &C : P.Clauses)
      AfterClauses = std::max(AfterClauses, C.Entry + C.NumInstr);
    if (P.IndexEntry >= AfterClauses)
      Out += "  indexing:\n" +
             disassembleRange(M, AfterClauses, P.IndexEntry + 1);
  }
  return Out;
}

std::string awam::disassembleModule(const CodeModule &M) {
  std::string Out;
  for (int32_t P = 0; P != M.numPredicates(); ++P)
    Out += disassemblePredicate(M, P) + "\n";
  return Out;
}
