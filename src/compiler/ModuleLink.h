//===- compiler/ModuleLink.h - Cross-module linking -------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Separate compilation for the analysis pipeline: each source module
/// (a prelude/library, then user code) compiles to its own CodeModule, and
/// linkPrograms relocates them into one module the machines execute.
///
/// The import/export boundary is the predicate table: a predicate with
/// clauses is an *export*; a Call/Execute of a predicate the module never
/// defines is an *import*, resolved at link time against the exports of
/// the other units. Linking is a relocation pass — clause code is copied
/// with a per-unit address base, code addresses (try/retry/trust chains,
/// jumps, switch targets) shift by that base, constant/functor pool
/// operands re-intern into the linked pools, and Call/Execute operands
/// re-resolve by (name, arity). The shared Halt/Proceed prologue at
/// addresses 0/1 maps onto the linked module's own prologue, so the
/// invariants every machine assumes (kHaltAddress, kProceedAddress,
/// kFailTarget) hold unchanged.
///
/// Two diagnostics come out of a link: a *duplicate export* (two units
/// both define foo/2) is a hard error, and the imports no unit exports are
/// reported per-import through the same near-miss machinery the analyzers
/// use for undefined entry predicates ("did you mean ...?"). Unresolved
/// imports are not errors — an undefined predicate is a legal Prolog
/// program that simply fails at that call, and both machines already
/// handle it — but services surface the messages to the user.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_COMPILER_MODULELINK_H
#define AWAM_COMPILER_MODULELINK_H

#include "compiler/ProgramCompiler.h"

#include <string>
#include <vector>

namespace awam {

/// One input to the linker: a compiled unit plus the label diagnostics
/// name it by (typically the source file name).
struct ModuleUnit {
  const CompiledProgram *Program = nullptr;
  std::string Label;
};

/// A linked program plus link-time diagnostics.
struct LinkedProgram {
  CompiledProgram Program;
  /// One message per import no unit exports, with near-miss suggestions
  /// drawn from the linked export table. The corresponding predicate ids
  /// are in Program.UndefinedPredicates (same order as the messages).
  std::vector<std::string> UnresolvedImports;
};

/// Links \p Units (libraries first, user code last, though any order
/// works) into one program. Every unit must be compiled against the same
/// SymbolTable; two units exporting the same predicate is an error naming
/// both units.
Result<LinkedProgram> linkPrograms(const std::vector<ModuleUnit> &Units);

/// Diagnostic for a \p Role ("entry" / "edited" / "imported") predicate
/// \p Name/\p Arity the program does not define: "<role> predicate foo/2
/// is not defined", plus near-miss candidates from \p Defined (same name
/// at another arity, or names within a small edit distance): "; did you
/// mean foo/3, fob/2?". \p Defined holds the defined predicates as
/// (name, arity) pairs.
std::string
undefinedPredicateMessage(std::string_view Role, std::string_view Name,
                          int Arity,
                          const std::vector<std::pair<std::string, int>> &Defined);

/// Convenience over a module's predicate table; candidates are the
/// predicates with at least one clause.
std::string undefinedPredicateMessage(const CodeModule &M,
                                      std::string_view Role,
                                      std::string_view Name, int Arity);

} // namespace awam

#endif // AWAM_COMPILER_MODULELINK_H
