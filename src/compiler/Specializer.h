//===- compiler/Specializer.h - Analysis-directed code rewriting -*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specializer closes the paper's loop: dataflow facts produced by the
/// analyzer (per-predicate calling patterns and determinism classes) license
/// rewrites of the compiled WAM code. The compiler layer stays independent
/// of the analyzer — facts arrive as the neutral SpecializationFacts value,
/// and analyzer/Specialize.h owns the translation from an AnalysisResult.
///
/// Every rewrite is answer-preserving by construction (see DESIGN.md §17);
/// the analysis facts only select *where* a rewrite applies, never alter
/// what the rewritten code computes on inputs the facts cover.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_COMPILER_SPECIALIZER_H
#define AWAM_COMPILER_SPECIALIZER_H

#include "compiler/ProgramCompiler.h"

#include <memory>
#include <string>
#include <vector>

namespace awam {

/// Abstract shape of a call's first argument, joined over the analyzer's
/// table items for one predicate. Drives clause pruning and dispatch
/// shortcuts; kinds are ordered from "know nothing" to "know the value".
struct CallShape {
  enum Kind : uint8_t {
    AnyShape,    ///< no information (the argument may be unbound)
    NonvarShape, ///< instantiated, but shape unknown
    VarShape,    ///< an unbound variable
    ConstShape,  ///< an atom or integer; Exact when the value is known
    ListShape,   ///< a list: either [] or a cons cell
    ConsShape,   ///< definitely a cons cell (never [])
    StructShape, ///< a structure; Exact when the functor is known
  };
  Kind K = AnyShape;
  bool Exact = false;   ///< Const / Functor below carries the exact value
  ConstOperand Const{}; ///< for exact ConstShape
  FunctorArity Functor{}; ///< for exact StructShape
};

/// Facts about one argument position, valid at *every* call that reaches
/// the predicate (the join over all table items).
struct ArgSpecFacts {
  bool KnownNonvar = false; ///< always instantiated on entry
  bool KnownFree = false;   ///< always an unbound, unaliased variable
  bool KnownGround = false; ///< always fully instantiated (implies Nonvar)
};

/// Determinism class from the det machinery (analyzer/DetFacts.h), joined
/// over the predicate's table items. Unknown when no det facts were
/// computed or no item mentions the predicate.
enum class DetSpecClass : uint8_t { Unknown, Det, Semidet, Nondet, Fails };

/// Everything the specializer knows about one predicate.
struct PredSpecFacts {
  /// True when at least one calling pattern reaches the predicate. An
  /// unanalyzed predicate is copied verbatim — no facts, no rewrites.
  bool Analyzed = false;
  std::vector<ArgSpecFacts> Args;  ///< size == arity when Analyzed
  std::vector<CallShape> Shapes;   ///< distinct first-argument call shapes
  DetSpecClass Det = DetSpecClass::Unknown;
};

/// Analyzer-neutral input to the specializer, indexed by predicate id of
/// the module being specialized.
struct SpecializationFacts {
  std::vector<PredSpecFacts> Preds;
};

/// What the specializer did, for the annotated listing and the ablation
/// gate's sanity checks.
struct SpecializationReport {
  uint64_t FusedBlocks = 0;     ///< get_list/get_structure blocks fused
  uint64_t FusedOperands = 0;   ///< unify words folded into fused blocks
  uint64_t FlaggedInstrs = 0;   ///< instructions carrying specflag bits
  uint64_t PrunedClauses = 0;   ///< clauses dropped (no call shape matches)
  uint64_t CollapsedChains = 0; ///< try chains truncated at a commit point
  uint64_t ShortcutSwitches = 0; ///< switch_on_term dispatches elided
  uint64_t FailVarTargets = 0;  ///< var targets proved unreachable
  uint64_t DeletedNeckCuts = 0; ///< neck cuts that became no-ops
  /// One line per rewritten predicate ("foo/2: pruned 1 clause, ...").
  std::vector<std::string> Notes;

  /// Total count of individual rewrites applied.
  uint64_t totalRewrites() const {
    return FusedBlocks + FlaggedInstrs + PrunedClauses + CollapsedChains +
           ShortcutSwitches + FailVarTargets + DeletedNeckCuts;
  }
};

/// Rewrites \p M under \p Facts into a fresh module sharing M's symbol
/// table. Predicate ids are preserved, so Call/Execute operands carry over
/// unchanged. The result is for the *concrete* machine only: fused opcodes
/// are not part of the analyzable instruction set, and the specialized
/// module must never be analyzed, diffed, or fingerprint-keyed.
std::unique_ptr<CodeModule> specializeModule(const CodeModule &M,
                                             const SpecializationFacts &Facts,
                                             SpecializationReport &Report);

/// Convenience: specializes \p P's module and carries the compilation
/// metadata (register file size, static profile) over unchanged.
CompiledProgram specializeProgram(const CompiledProgram &P,
                                  const SpecializationFacts &Facts,
                                  SpecializationReport &Report);

/// Renders the rewrite summary plus the specialized module's disassembly
/// (flagged and fused instructions show their annotations inline).
std::string formatSpecialization(const CodeModule &Spec,
                                 const SpecializationReport &Report);

} // namespace awam

#endif // AWAM_COMPILER_SPECIALIZER_H
