//===- compiler/ClauseCompiler.h - Clause-to-WAM compilation ----*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles one clause into a standalone WAM code block: head `get`/`unify`
/// sequences (breadth-first over nested structures, as in the paper's
/// Figure 2), body `put` sequences (bottom-up term construction), procedural
/// instructions with last-call optimization, environment allocation, and
/// cut.
///
/// Register discipline: argument registers are X0..Xn-1; every temporary
/// variable gets a dedicated X register above the argument bank, and all
/// unbound variables are created on the heap, which makes unsafe-value
/// analysis unnecessary (see compiler/Instruction.h).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_COMPILER_CLAUSECOMPILER_H
#define AWAM_COMPILER_CLAUSECOMPILER_H

#include "compiler/CodeModule.h"
#include "support/Error.h"
#include "term/Parser.h"

namespace awam {

/// Result of compiling one clause.
struct CompiledClause {
  ClauseInfo Info;      ///< code block within the module
  int NumPermanent = 0; ///< environment slots (including any cut barrier)
  int MaxXUsed = 0;     ///< highest X register index used + 1
};

/// Compiles \p Clause, appending its code to \p Module.
/// Fails on goals the language subset does not support (e.g. variable
/// goals or ;/2 control).
Result<CompiledClause> compileClause(const ParsedClause &Clause,
                                     CodeModule &Module);

} // namespace awam

#endif // AWAM_COMPILER_CLAUSECOMPILER_H
