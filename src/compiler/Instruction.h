//===- compiler/Instruction.h - WAM instruction set -------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The WAM instruction set (Warren, "An Abstract Prolog Instruction Set",
/// SRI TN 309, 1983), in the variant used by this project:
///
///  * get/put/unify instructions as in the standard WAM;
///  * all unbound variables are allocated on the heap, so the unsafe-value
///    and local-value instruction variants are unnecessary;
///  * clause alternatives use try/retry/trust chains over standalone clause
///    code blocks (instead of try_me_else between inlined clauses) — this is
///    what lets the analyzer enter clauses directly, as the paper requires;
///  * cut is get_level/cut_y plus neck_cut;
///  * builtins execute inline via a Builtin instruction.
///
/// The same code is executed by the concrete machine (src/wam) and
/// *reinterpreted* by the abstract machine (src/analyzer), which is the
/// paper's central idea.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_COMPILER_INSTRUCTION_H
#define AWAM_COMPILER_INSTRUCTION_H

#include <cstdint>
#include <string_view>

namespace awam {

/// WAM opcodes. Register operands: "X" means the temporary/argument bank
/// (arguments are X0..Xn-1), "Y" means permanent slots in the environment.
enum class Opcode : uint8_t {
  // Get instructions (head argument unification). B = argument register.
  GetVariableX, ///< X[A] := A[B]
  GetVariableY, ///< Y[A] := A[B]
  GetValueX,    ///< unify(X[A], A[B])
  GetValueY,    ///< unify(Y[A], A[B])
  GetConst,     ///< unify A[B] with constant pool entry A
  GetList,      ///< unify A[A] with a list cell; enters read/write mode
  GetStructure, ///< unify A[B] with functor pool entry A; read/write mode

  // Put instructions (body argument construction). B = argument register.
  PutVariableX, ///< new heap var; X[A] := A[B] := ref
  PutVariableY, ///< new heap var; Y[A] := A[B] := ref
  PutValueX,    ///< A[B] := X[A]
  PutValueY,    ///< A[B] := Y[A]
  PutConst,     ///< A[B] := constant pool entry A
  PutList,      ///< A[A] := new list cell; following unifys run in write mode
  PutStructure, ///< A[B] := new structure, functor pool entry A; write mode

  // Unify instructions (subterm unification in read or write mode).
  UnifyVariableX, ///< read: X[A] := next subterm; write: push fresh var
  UnifyVariableY,
  UnifyValueX, ///< read: unify(X[A], next subterm); write: push X[A]
  UnifyValueY,
  UnifyConst, ///< read: unify next subterm with const; write: push const
  UnifyVoid,  ///< skip/push A fresh anonymous subterms

  // Procedural instructions.
  Allocate,   ///< push environment with A permanent slots
  Deallocate, ///< pop environment (restores continuation)
  Call,       ///< call predicate table entry A
  Execute,    ///< tail-call predicate table entry A (last-call optimization)
  Proceed,    ///< return from a clause

  // Indexing instructions.
  Try,   ///< push choice point; continue at code address A
  Retry, ///< update choice point; continue at code address A
  Trust, ///< pop choice point; continue at code address A
  Jump,  ///< unconditional branch to code address A
  Fail,  ///< force backtracking
  SwitchOnTerm,      ///< dispatch on tag of A[0]; A = term-switch pool entry
  SwitchOnConstant,  ///< dispatch on constant value of A[0]; A = table entry
  SwitchOnStructure, ///< dispatch on functor of A[0]; A = table entry

  // Cut.
  NeckCut,  ///< discard choice points created since the predicate was called
  GetLevel, ///< Y[A] := current cut barrier (emitted right after Allocate)
  CutY,     ///< discard choice points younger than the barrier in Y[A]

  // Escapes.
  Builtin, ///< run builtin A with B arguments in A[0..B-1]
  Halt,    ///< stop the machine (top-level success)

  // Specialized instructions (emitted only by compiler/Specializer; the
  // abstract machine never sees them — specialized modules exist solely to
  // run on the concrete machine). Appended after Halt so the opcode values
  // of the analyzable instruction set are unchanged.
  GetListFused, ///< get_list A[A], then run the B inline unify operands
                ///< that follow this word, in one dispatch
  GetStructureFused, ///< get_structure pool entry A against A[B], then run
                     ///< the C inline unify operands in one dispatch
};

/// Returns the mnemonic of \p Op (e.g. "get_structure").
std::string_view opcodeName(Opcode Op);

/// Per-instruction specialization flags (compiler/Specializer). A flag
/// asserts a dataflow fact about the instruction's argument register that
/// the concrete machine may exploit as a fast path; a flagged instruction
/// with the fact absent at runtime still behaves correctly (the flags
/// gate shortcuts, never semantics).
namespace specflag {
/// deref(A[arg]) is never an unbound variable at this instruction.
inline constexpr uint8_t KnownNonvar = 1u << 0;
/// deref(A[arg]) is always an unbound, unaliased variable (write mode).
inline constexpr uint8_t KnownFree = 1u << 1;
/// deref(A[arg]) is always ground (no variables anywhere below it).
inline constexpr uint8_t KnownGround = 1u << 2;
} // namespace specflag

/// One decoded instruction. The meaning of A/B depends on the opcode; see
/// the Opcode enum. C is a third operand used only by the specialized
/// opcodes (spare for the rest, kept for uniform decoding); Flags carries
/// specflag bits set by the specializer (0 in compiler output).
struct Instruction {
  Opcode Op;
  int32_t A = 0;
  int32_t B = 0;
  int32_t C = 0;
  uint8_t Flags = 0;
};

} // namespace awam

#endif // AWAM_COMPILER_INSTRUCTION_H
