//===- compiler/CodeModule.h - Compiled WAM code ----------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Container for a compiled program: the instruction stream, the constant /
/// functor pools, switch tables, and the predicate table. Both the concrete
/// and the abstract machine execute CodeModule instances.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_COMPILER_CODEMODULE_H
#define AWAM_COMPILER_CODEMODULE_H

#include "compiler/Instruction.h"
#include "support/SymbolTable.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace awam {

/// A functor pool entry: name/arity.
struct FunctorArity {
  Symbol Name;
  int32_t Arity;
  friend bool operator==(const FunctorArity &, const FunctorArity &) =
      default;
  friend auto operator<=>(const FunctorArity &, const FunctorArity &) =
      default;
};

/// A constant pool entry: an atom or an integer.
struct ConstOperand {
  enum Kind : uint8_t { AtomK, IntK };
  Kind K = AtomK;
  Symbol Name = 0; // for AtomK
  int64_t Int = 0; // for IntK

  static ConstOperand atom(Symbol S) { return {AtomK, S, 0}; }
  static ConstOperand integer(int64_t V) { return {IntK, 0, V}; }
  friend bool operator==(const ConstOperand &, const ConstOperand &) =
      default;
  friend auto operator<=>(const ConstOperand &, const ConstOperand &) =
      default;
};

/// Targets of a switch_on_term instruction; kFailTarget means "fail".
struct TermSwitch {
  int32_t OnVar;
  int32_t OnConst;
  int32_t OnList;
  int32_t OnStruct;
};

/// Case table of switch_on_constant / switch_on_structure. Keys index the
/// constant pool (switch_on_constant) or the functor pool
/// (switch_on_structure).
struct ValueSwitch {
  std::vector<std::pair<int32_t, int32_t>> Cases; // (pool key, address)
  int32_t Default;                                // address or kFailTarget
};

/// Sentinel code address meaning "fail" in switch targets.
inline constexpr int32_t kFailTarget = -1;

/// Fixed code addresses emitted at the start of every module.
inline constexpr int32_t kHaltAddress = 0;    ///< top-level continuation
inline constexpr int32_t kProceedAddress = 1; ///< synthetic clause return

/// One compiled clause: its code block [Entry, Entry+NumInstr).
struct ClauseInfo {
  int32_t Entry = 0;
  int32_t NumInstr = 0;
};

/// One predicate: name/arity, its clauses, and its indexed entry point.
struct PredicateInfo {
  Symbol Name = 0;
  int32_t Arity = 0;
  /// Entry point including the first-argument indexing block; this is where
  /// the concrete machine jumps on call. kFailTarget for undefined
  /// predicates.
  int32_t IndexEntry = kFailTarget;
  /// Per-clause code blocks, in source order. The abstract machine iterates
  /// these directly (the paper folds clause selection into call/proceed).
  std::vector<ClauseInfo> Clauses;
};

/// A compiled program.
class CodeModule {
public:
  explicit CodeModule(SymbolTable &Syms) : Syms(&Syms) {}

  /// The symbol table all pool entries refer to.
  SymbolTable &symbols() const { return *Syms; }

  /// Appends \p I and returns its address.
  int32_t emit(Instruction I) {
    Code.push_back(I);
    return static_cast<int32_t>(Code.size()) - 1;
  }

  const Instruction &at(int32_t Addr) const { return Code[Addr]; }
  int32_t codeSize() const { return static_cast<int32_t>(Code.size()); }

  /// Interns a constant pool entry.
  int32_t internConst(ConstOperand C);
  const ConstOperand &constAt(int32_t Idx) const { return Consts[Idx]; }

  /// Interns a functor pool entry.
  int32_t internFunctor(FunctorArity F);
  const FunctorArity &functorAt(int32_t Idx) const { return Functors[Idx]; }

  int32_t addTermSwitch(TermSwitch S) {
    TermSwitches.push_back(S);
    return static_cast<int32_t>(TermSwitches.size()) - 1;
  }
  const TermSwitch &termSwitchAt(int32_t Idx) const {
    return TermSwitches[Idx];
  }

  int32_t addValueSwitch(ValueSwitch S) {
    ValueSwitches.push_back(std::move(S));
    return static_cast<int32_t>(ValueSwitches.size()) - 1;
  }
  const ValueSwitch &valueSwitchAt(int32_t Idx) const {
    return ValueSwitches[Idx];
  }

  /// Returns the id of predicate \p Name/\p Arity, creating an undefined
  /// entry on first reference.
  int32_t predicateId(Symbol Name, int Arity);

  /// Returns the id if the predicate exists, or -1.
  int32_t findPredicate(Symbol Name, int Arity) const;

  PredicateInfo &predicate(int32_t Id) { return Preds[Id]; }
  const PredicateInfo &predicate(int32_t Id) const { return Preds[Id]; }
  int32_t numPredicates() const { return static_cast<int32_t>(Preds.size()); }

  /// Human-readable name "foo/2" of a predicate.
  std::string predicateLabel(int32_t Id) const;

  /// A stable identity hash of the module's semantic content: predicate
  /// names/arities and their clause code with pool indices resolved to
  /// their meaning (constant values, functor names, callee signatures) —
  /// the same resolution diffPrograms compares by, so two modules with
  /// equal fingerprints analyze identically. Used by long-lived services
  /// to key one persistent analysis store per compiled module
  /// (analyzer/Store.h, examples/analyze_server.cpp).
  uint64_t fingerprint() const;

  /// The per-predicate slice of fingerprint(): name/arity plus the clause
  /// code of predicate \p Id alone, with the same pool-index resolution.
  /// Equal hashes mean the predicate's clauses analyze identically in both
  /// modules — the staleness guard summary bundles carry per predicate
  /// (analyzer/SummaryBundle.h), which stays meaningful across a relink
  /// because the resolution is relocation-invariant.
  uint64_t predicateFingerprint(int32_t Id) const;

private:
  /// Folds predicate \p Id (name, arity, resolved clause code) into \p H.
  void hashPredicate(uint64_t &H, int32_t Id) const;

  SymbolTable *Syms;
  std::vector<Instruction> Code;
  std::vector<ConstOperand> Consts;
  std::map<ConstOperand, int32_t> ConstIndex;
  std::vector<FunctorArity> Functors;
  std::map<FunctorArity, int32_t> FunctorIndex;
  std::vector<TermSwitch> TermSwitches;
  std::vector<ValueSwitch> ValueSwitches;
  std::vector<PredicateInfo> Preds;
  std::map<std::pair<Symbol, int32_t>, int32_t> PredIndex;
};

} // namespace awam

#endif // AWAM_COMPILER_CODEMODULE_H
