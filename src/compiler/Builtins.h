//===- compiler/Builtins.h - Builtin predicate registry ---------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The set of builtin predicates known to the compiler. The concrete
/// machine (src/wam) and the abstract machine (src/analyzer) each provide an
/// implementation for every id; the compiler emits a Builtin instruction
/// whenever a goal matches this registry.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_COMPILER_BUILTINS_H
#define AWAM_COMPILER_BUILTINS_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace awam {

/// Ids of builtin predicates.
enum class BuiltinId : uint8_t {
  Is,           ///< is/2: arithmetic evaluation
  ArithLt,      ///< </2
  ArithGt,      ///< >/2
  ArithLe,      ///< =</2
  ArithGe,      ///< >=/2
  ArithEq,      ///< =:=/2
  ArithNe,      ///< =\=/2
  Unify,        ///< =/2
  NotUnify,     ///< \=/2
  StructEq,     ///< ==/2
  StructNe,     ///< \==/2
  TermLt,       ///< @</2 (standard order of terms)
  TermGt,       ///< @>/2
  TermLe,       ///< @=</2
  TermGe,       ///< @>=/2
  VarP,         ///< var/1
  NonvarP,      ///< nonvar/1
  AtomP,        ///< atom/1
  IntegerP,     ///< integer/1
  NumberP,      ///< number/1
  AtomicP,      ///< atomic/1
  CompoundP,    ///< compound/1
  Functor,      ///< functor/3
  Arg,          ///< arg/3
  Univ,         ///< =../2
  Write,        ///< write/1
  Nl,           ///< nl/0
  Tab,          ///< tab/1
  HaltB,        ///< halt/0
  NumBuiltins,
};

/// Number of distinct builtin ids.
inline constexpr int NumBuiltinIds =
    static_cast<int>(BuiltinId::NumBuiltins);

/// Returns the builtin id for \p Name / \p Arity, if it is a builtin.
std::optional<BuiltinId> lookupBuiltin(std::string_view Name, int Arity);

/// Returns the source name of a builtin (e.g. "is").
std::string_view builtinName(BuiltinId Id);

/// Returns the arity of a builtin.
int builtinArity(BuiltinId Id);

} // namespace awam

#endif // AWAM_COMPILER_BUILTINS_H
