//===- compiler/Builtins.cpp ----------------------------------------------===//

#include "compiler/Builtins.h"

#include <array>

using namespace awam;

namespace {
struct BuiltinDesc {
  BuiltinId Id;
  std::string_view Name;
  int Arity;
};

constexpr std::array<BuiltinDesc, NumBuiltinIds> Descs = {{
    {BuiltinId::Is, "is", 2},
    {BuiltinId::ArithLt, "<", 2},
    {BuiltinId::ArithGt, ">", 2},
    {BuiltinId::ArithLe, "=<", 2},
    {BuiltinId::ArithGe, ">=", 2},
    {BuiltinId::ArithEq, "=:=", 2},
    {BuiltinId::ArithNe, "=\\=", 2},
    {BuiltinId::Unify, "=", 2},
    {BuiltinId::NotUnify, "\\=", 2},
    {BuiltinId::StructEq, "==", 2},
    {BuiltinId::StructNe, "\\==", 2},
    {BuiltinId::TermLt, "@<", 2},
    {BuiltinId::TermGt, "@>", 2},
    {BuiltinId::TermLe, "@=<", 2},
    {BuiltinId::TermGe, "@>=", 2},
    {BuiltinId::VarP, "var", 1},
    {BuiltinId::NonvarP, "nonvar", 1},
    {BuiltinId::AtomP, "atom", 1},
    {BuiltinId::IntegerP, "integer", 1},
    {BuiltinId::NumberP, "number", 1},
    {BuiltinId::AtomicP, "atomic", 1},
    {BuiltinId::CompoundP, "compound", 1},
    {BuiltinId::Functor, "functor", 3},
    {BuiltinId::Arg, "arg", 3},
    {BuiltinId::Univ, "=..", 2},
    {BuiltinId::Write, "write", 1},
    {BuiltinId::Nl, "nl", 0},
    {BuiltinId::Tab, "tab", 1},
    {BuiltinId::HaltB, "halt", 0},
}};
} // namespace

std::optional<BuiltinId> awam::lookupBuiltin(std::string_view Name,
                                             int Arity) {
  for (const BuiltinDesc &D : Descs)
    if (D.Name == Name && D.Arity == Arity)
      return D.Id;
  return std::nullopt;
}

std::string_view awam::builtinName(BuiltinId Id) {
  return Descs[static_cast<size_t>(Id)].Name;
}

int awam::builtinArity(BuiltinId Id) {
  return Descs[static_cast<size_t>(Id)].Arity;
}
