//===- compiler/ModuleLink.cpp - Cross-module linking ---------------------===//

#include "compiler/ModuleLink.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <tuple>

using namespace awam;

Result<LinkedProgram> awam::linkPrograms(const std::vector<ModuleUnit> &Units) {
  if (Units.empty())
    return makeError("link: no modules to link");
  for (const ModuleUnit &U : Units)
    if (!U.Program || !U.Program->Module)
      return makeError("link: null module unit");
  SymbolTable &Syms = Units.front().Program->Module->symbols();
  for (const ModuleUnit &U : Units)
    if (&U.Program->Module->symbols() != &Syms)
      return makeError("link: module '" + U.Label +
                       "' was compiled against a different symbol table");

  LinkedProgram Out;
  Out.Program.Module = std::make_unique<CodeModule>(Syms);
  CodeModule &M = *Out.Program.Module;
  // The shared prologue every unit also starts with; unit addresses <= 1
  // relocate onto it unchanged.
  M.emit({Opcode::Halt});
  M.emit({Opcode::Proceed});

  // Which unit exports each (name, arity) — for duplicate-export errors.
  std::map<std::pair<Symbol, int32_t>, size_t> ExportedBy;

  for (size_t UI = 0; UI != Units.size(); ++UI) {
    const CodeModule &Src = *Units[UI].Program->Module;
    const int32_t Base = M.codeSize();
    // Unit address -> linked address. Halt/Proceed are shared, kFailTarget
    // is a sentinel, everything else shifts with the unit's code block.
    auto Reloc = [Base](int32_t A) {
      return A <= kProceedAddress ? A : Base + (A - (kProceedAddress + 1));
    };

    for (int32_t Addr = kProceedAddress + 1; Addr != Src.codeSize();
         ++Addr) {
      Instruction I = Src.at(Addr);
      switch (I.Op) {
      case Opcode::Call:
      case Opcode::Execute: {
        // Imports resolve by signature: predicateId creates an undefined
        // entry that a later (or earlier) unit's export fills in.
        const PredicateInfo &Callee = Src.predicate(I.A);
        I.A = M.predicateId(Callee.Name, Callee.Arity);
        break;
      }
      case Opcode::Try:
      case Opcode::Retry:
      case Opcode::Trust:
      case Opcode::Jump:
        I.A = Reloc(I.A);
        break;
      case Opcode::SwitchOnTerm: {
        TermSwitch S = Src.termSwitchAt(I.A);
        S.OnVar = Reloc(S.OnVar);
        S.OnConst = Reloc(S.OnConst);
        S.OnList = Reloc(S.OnList);
        S.OnStruct = Reloc(S.OnStruct);
        I.A = M.addTermSwitch(S);
        break;
      }
      case Opcode::SwitchOnConstant: {
        ValueSwitch S = Src.valueSwitchAt(I.A);
        for (auto &[Key, Target] : S.Cases) {
          Key = M.internConst(Src.constAt(Key));
          Target = Reloc(Target);
        }
        S.Default = Reloc(S.Default);
        I.A = M.addValueSwitch(std::move(S));
        break;
      }
      case Opcode::SwitchOnStructure: {
        ValueSwitch S = Src.valueSwitchAt(I.A);
        for (auto &[Key, Target] : S.Cases) {
          Key = M.internFunctor(Src.functorAt(Key));
          Target = Reloc(Target);
        }
        S.Default = Reloc(S.Default);
        I.A = M.addValueSwitch(std::move(S));
        break;
      }
      case Opcode::GetConst:
      case Opcode::PutConst:
      case Opcode::UnifyConst:
        I.A = M.internConst(Src.constAt(I.A));
        break;
      case Opcode::GetStructure:
      case Opcode::PutStructure:
      case Opcode::GetStructureFused:
        I.A = M.internFunctor(Src.functorAt(I.A));
        break;
      default:
        break;
      }
      M.emit(I);
    }

    for (int32_t Pid = 0; Pid != Src.numPredicates(); ++Pid) {
      const PredicateInfo &SP = Src.predicate(Pid);
      if (SP.Clauses.empty())
        continue; // an import of this unit; some unit's export resolves it
      auto Key = std::make_pair(SP.Name, SP.Arity);
      auto [It, Inserted] = ExportedBy.try_emplace(Key, UI);
      if (!Inserted)
        return makeError("link: duplicate definition of " +
                         std::string(Syms.name(SP.Name)) + "/" +
                         std::to_string(SP.Arity) + " in '" +
                         Units[It->second].Label + "' and '" +
                         Units[UI].Label + "'");
      PredicateInfo &NP = M.predicate(M.predicateId(SP.Name, SP.Arity));
      NP.IndexEntry = Reloc(SP.IndexEntry);
      for (const ClauseInfo &C : SP.Clauses)
        NP.Clauses.push_back({Reloc(C.Entry), C.NumInstr});
    }

    Out.Program.MaxXReg =
        std::max(Out.Program.MaxXReg, Units[UI].Program->MaxXReg);
    Out.Program.NumArgs += Units[UI].Program->NumArgs;
    Out.Program.NumPreds += Units[UI].Program->NumPreds;
  }

  // Imports no unit exported, with near-miss suggestions against the
  // linked export table.
  for (int32_t Pid = 0; Pid != M.numPredicates(); ++Pid) {
    const PredicateInfo &P = M.predicate(Pid);
    if (!P.Clauses.empty())
      continue;
    Out.Program.UndefinedPredicates.push_back(Pid);
    Out.UnresolvedImports.push_back(undefinedPredicateMessage(
        M, "imported", Syms.name(P.Name), P.Arity));
  }
  return Out;
}

namespace {

/// Plain Levenshtein distance, for the near-miss candidate ranking.
size_t editDistance(std::string_view A, std::string_view B) {
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Diag = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Sub = Diag + (A[I - 1] != B[J - 1]);
      Diag = Row[J];
      Row[J] = std::min({Row[J - 1] + 1, Row[J] + 1, Sub});
    }
  }
  return Row[B.size()];
}

} // namespace

std::string awam::undefinedPredicateMessage(
    std::string_view Role, std::string_view Name, int Arity,
    const std::vector<std::pair<std::string, int>> &Defined) {
  std::string Msg = std::string(Role) + " predicate " + std::string(Name) +
                    "/" + std::to_string(Arity) + " is not defined";
  // Candidates: the same name at another arity always qualifies; other
  // names must be within a small edit distance (1 for short names).
  size_t Thresh = Name.size() >= 5 ? 2 : 1;
  struct Cand {
    size_t Dist;
    int ArityGap;
    std::string Label;
  };
  std::vector<Cand> Cands;
  for (const auto &[DefName, DefArity] : Defined) {
    size_t Dist = editDistance(Name, DefName);
    if (Dist == 0 ? DefArity == Arity : Dist > Thresh)
      continue;
    Cands.push_back({Dist, std::abs(DefArity - Arity),
                     DefName + "/" + std::to_string(DefArity)});
  }
  std::sort(Cands.begin(), Cands.end(), [](const Cand &A, const Cand &B) {
    return std::tie(A.Dist, A.ArityGap, A.Label) <
           std::tie(B.Dist, B.ArityGap, B.Label);
  });
  Cands.erase(std::unique(Cands.begin(), Cands.end(),
                          [](const Cand &A, const Cand &B) {
                            return A.Label == B.Label;
                          }),
              Cands.end());
  if (!Cands.empty()) {
    Msg += "; did you mean ";
    for (size_t I = 0; I != Cands.size() && I != 3; ++I)
      Msg += (I ? ", " : "") + Cands[I].Label;
    Msg += "?";
  }
  return Msg;
}

std::string awam::undefinedPredicateMessage(const CodeModule &M,
                                            std::string_view Role,
                                            std::string_view Name,
                                            int Arity) {
  std::vector<std::pair<std::string, int>> Defined;
  for (int32_t Pid = 0; Pid != M.numPredicates(); ++Pid) {
    const PredicateInfo &P = M.predicate(Pid);
    if (!P.Clauses.empty())
      Defined.emplace_back(std::string(M.symbols().name(P.Name)),
                           static_cast<int>(P.Arity));
  }
  return undefinedPredicateMessage(Role, Name, Arity, Defined);
}
