//===- compiler/ProgramCompiler.cpp ---------------------------------------===//

#include "compiler/ProgramCompiler.h"

#include "compiler/Builtins.h"
#include "compiler/ClauseCompiler.h"

#include <map>
#include <set>

using namespace awam;

namespace {

/// First-argument shape of a clause head, for indexing buckets.
enum class ArgShape { VarS, ConstS, ListS, StructS };

struct ClauseShape {
  ArgShape Shape = ArgShape::VarS;
  int32_t ConstKey = -1;   // constant pool index for ConstS
  int32_t FunctorKey = -1; // functor pool index for StructS
};

class ProgramContext {
public:
  ProgramContext(const ParsedProgram &Program, SymbolTable &Syms)
      : Program(Program), Syms(Syms) {
    Out.Module = std::make_unique<CodeModule>(Syms);
  }

  Result<CompiledProgram> run();

private:
  ClauseShape shapeOf(const Term *Head) const;
  int32_t emitChain(const std::vector<int32_t> &Entries, int32_t Arity);
  void buildIndexing(PredicateInfo &Pred,
                     const std::vector<ClauseShape> &Shapes);

  const ParsedProgram &Program;
  SymbolTable &Syms;
  CompiledProgram Out;
  std::map<std::vector<int32_t>, int32_t> ChainCache;
};

ClauseShape ProgramContext::shapeOf(const Term *Head) const {
  ClauseShape S;
  if (!Head->isStruct() || Head->arity() == 0)
    return S; // arity-0 predicates index as "var" (single bucket)
  const Term *A1 = Head->arg(0);
  CodeModule &M = *Out.Module;
  switch (A1->kind()) {
  case TermKind::Var:
    S.Shape = ArgShape::VarS;
    break;
  case TermKind::Int:
    S.Shape = ArgShape::ConstS;
    S.ConstKey = M.internConst(ConstOperand::integer(A1->intValue()));
    break;
  case TermKind::Atom:
    S.Shape = ArgShape::ConstS;
    S.ConstKey = M.internConst(ConstOperand::atom(A1->functor()));
    break;
  case TermKind::Struct:
    if (A1->isCons()) {
      S.Shape = ArgShape::ListS;
    } else {
      S.Shape = ArgShape::StructS;
      S.FunctorKey = M.internFunctor(
          {A1->functor(), static_cast<int32_t>(A1->arity())});
    }
    break;
  }
  return S;
}

/// Emits a try/retry/trust chain over clause entry points (or returns the
/// single entry / kFailTarget directly). Identical chains are shared.
int32_t ProgramContext::emitChain(const std::vector<int32_t> &Entries,
                                  int32_t Arity) {
  if (Entries.empty())
    return kFailTarget;
  if (Entries.size() == 1)
    return Entries[0];
  auto It = ChainCache.find(Entries);
  if (It != ChainCache.end())
    return It->second;
  CodeModule &M = *Out.Module;
  int32_t Addr = M.codeSize();
  // The Try B field is the number of argument registers the choice point
  // must save: the predicate's arity.
  M.emit({Opcode::Try, Entries.front(), Arity});
  for (size_t I = 1; I + 1 < Entries.size(); ++I)
    M.emit({Opcode::Retry, Entries[I], Arity});
  M.emit({Opcode::Trust, Entries.back(), Arity});
  ChainCache.emplace(Entries, Addr);
  return Addr;
}

void ProgramContext::buildIndexing(PredicateInfo &Pred,
                                   const std::vector<ClauseShape> &Shapes) {
  CodeModule &M = *Out.Module;
  size_t N = Pred.Clauses.size();
  int32_t Arity = Pred.Arity;
  assert(N == Shapes.size());

  std::vector<int32_t> All, Vars;
  for (size_t I = 0; I != N; ++I) {
    All.push_back(Pred.Clauses[I].Entry);
    if (Shapes[I].Shape == ArgShape::VarS)
      Vars.push_back(Pred.Clauses[I].Entry);
  }

  if (N == 1) {
    Pred.IndexEntry = All[0];
    return;
  }

  // Arity-0 predicates (or all-var first args) need no dispatch.
  bool AllVar = Vars.size() == N;
  if (AllVar) {
    Pred.IndexEntry = emitChain(All, Arity);
    return;
  }

  // Applicable-clause chain per constant key, preserving source order.
  auto bucketChain = [&](auto Matches) {
    std::vector<int32_t> Entries;
    for (size_t I = 0; I != N; ++I)
      if (Shapes[I].Shape == ArgShape::VarS || Matches(Shapes[I]))
        Entries.push_back(Pred.Clauses[I].Entry);
    return emitChain(Entries, Arity);
  };

  // List bucket.
  int32_t ListTarget = bucketChain(
      [](const ClauseShape &S) { return S.Shape == ArgShape::ListS; });

  // Constant buckets.
  std::set<int32_t> ConstKeys;
  for (const ClauseShape &S : Shapes)
    if (S.Shape == ArgShape::ConstS)
      ConstKeys.insert(S.ConstKey);
  int32_t ConstTarget;
  if (ConstKeys.empty()) {
    ConstTarget = emitChain(Vars, Arity);
  } else {
    ValueSwitch VS;
    VS.Default = emitChain(Vars, Arity);
    for (int32_t Key : ConstKeys)
      VS.Cases.emplace_back(Key, bucketChain([&](const ClauseShape &S) {
        return S.Shape == ArgShape::ConstS && S.ConstKey == Key;
      }));
    int32_t TableIdx = M.addValueSwitch(std::move(VS));
    ConstTarget = M.emit({Opcode::SwitchOnConstant, TableIdx, 0});
  }

  // Structure buckets.
  std::set<int32_t> FunctorKeys;
  for (const ClauseShape &S : Shapes)
    if (S.Shape == ArgShape::StructS)
      FunctorKeys.insert(S.FunctorKey);
  int32_t StructTarget;
  if (FunctorKeys.empty()) {
    StructTarget = emitChain(Vars, Arity);
  } else {
    ValueSwitch VS;
    VS.Default = emitChain(Vars, Arity);
    for (int32_t Key : FunctorKeys)
      VS.Cases.emplace_back(Key, bucketChain([&](const ClauseShape &S) {
        return S.Shape == ArgShape::StructS && S.FunctorKey == Key;
      }));
    int32_t TableIdx = M.addValueSwitch(std::move(VS));
    StructTarget = M.emit({Opcode::SwitchOnStructure, TableIdx, 0});
  }

  int32_t VarTarget = emitChain(All, Arity);
  int32_t SwitchIdx = M.addTermSwitch(
      {VarTarget, ConstTarget, ListTarget, StructTarget});
  Pred.IndexEntry = M.emit({Opcode::SwitchOnTerm, SwitchIdx, 0});
}

Result<CompiledProgram> ProgramContext::run() {
  CodeModule &M = *Out.Module;
  // Address 0: the machine's top-level continuation. Address 1: a lone
  // Proceed the abstract machine uses to revert `execute` to
  // call-followed-by-proceed (paper Section 5).
  M.emit({Opcode::Halt, 0, 0});
  M.emit({Opcode::Proceed, 0, 0});

  // Group clauses by predicate, preserving source order within a predicate.
  std::vector<std::pair<int32_t, const ParsedClause *>> ByPred;
  std::set<std::pair<Symbol, int>> ArgCounter;
  for (const ParsedClause &C : Program.Clauses) {
    Symbol Name = C.Head->functor();
    int Arity = C.Head->isStruct() ? C.Head->arity() : 0;
    if (lookupBuiltin(Syms.name(Name), Arity))
      return makeError("cannot redefine builtin " +
                       std::string(Syms.name(Name)) + "/" +
                       std::to_string(Arity));
    ByPred.emplace_back(M.predicateId(Name, Arity), &C);
    ArgCounter.insert({Name, Arity});
  }
  for (auto &[Name, Arity] : ArgCounter)
    Out.NumArgs += Arity;
  Out.NumPreds = static_cast<int>(ArgCounter.size());

  // Compile clause code blocks predicate by predicate. Note: compiling a
  // clause can intern new (callee) predicates, so never hold a
  // PredicateInfo reference across compileClause.
  for (int32_t Pid = 0; Pid != M.numPredicates(); ++Pid) {
    std::vector<ClauseShape> Shapes;
    std::vector<ClauseInfo> Infos;
    for (auto &[OwnerPid, C] : ByPred) {
      if (OwnerPid != Pid)
        continue;
      Result<CompiledClause> CC = compileClause(*C, M);
      if (!CC)
        return CC.diag();
      Infos.push_back(CC->Info);
      Shapes.push_back(shapeOf(C->Head));
      Out.MaxXReg = std::max(Out.MaxXReg, CC->MaxXUsed);
    }
    if (Infos.empty())
      continue;
    PredicateInfo &Pred = M.predicate(Pid);
    Pred.Clauses = std::move(Infos);
    buildIndexing(Pred, Shapes);
  }

  // Predicates referenced by calls but never defined.
  for (int32_t Pid = 0; Pid != M.numPredicates(); ++Pid)
    if (M.predicate(Pid).Clauses.empty())
      Out.UndefinedPredicates.push_back(Pid);
  return std::move(Out);
}

} // namespace

Result<CompiledProgram> awam::compileProgram(const ParsedProgram &Program,
                                             SymbolTable &Syms) {
  return ProgramContext(Program, Syms).run();
}

Result<CompiledProgram> awam::compileSource(std::string_view Source,
                                            SymbolTable &Syms,
                                            TermArena &Arena) {
  Result<ParsedProgram> P = parseProgram(Source, Syms, Arena);
  if (!P)
    return P.diag();
  return compileProgram(*P, Syms);
}
