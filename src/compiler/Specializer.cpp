//===- compiler/Specializer.cpp - Analysis-directed code rewriting --------===//
//
// Rewrite catalogue (licenses in DESIGN.md §17):
//
//   R1  fusion        a get_list/get_structure whose argument register has
//                     a known binding state, plus its contiguous unify
//                     operand words, becomes one superinstruction. The
//                     operand words are the *original* unify instructions,
//                     executed by the machine's shared unify-op helper, so
//                     semantics are identical by construction.
//   R2  flag bits     get instructions on registers with known states carry
//                     specflag bits; the machine counts fact-held fast
//                     paths, and the bits never change behavior.
//   R3  pruning       clauses whose first-argument shape is disjoint from
//                     every observed call shape are dropped.
//   R4  collapse      a try chain is truncated after its first entry whose
//                     head provably reaches a neck cut without a failing
//                     instruction (under the bucket's dispatch guarantee):
//                     once that clause's cut runs, later entries are dead.
//   R5  shortcut      when every call shape selects one switch_on_term
//                     bucket, the predicate enters that bucket directly;
//                     when no call can carry an unbound first argument, the
//                     var target becomes fail.
//   R6  cut deletion  a predicate reduced to a single clause can never have
//                     a chain choice point, so its neck cut is a no-op and
//                     is deleted.
//   R7  det facts     determinism classes annotate the listing and report;
//                     single-clause direct entry falls out of R3.
//
// The binding-state walk that licenses R1/R2/R4 is deliberately
// conservative: states degrade to Unknown on anything unclear, Free is
// move-only (copying a Free register demotes the source, so at most one
// tracked register ever holds a given unbound variable), and body
// instructions invalidate everything.
//
//===----------------------------------------------------------------------===//

#include "compiler/Specializer.h"

#include "compiler/Disasm.h"
#include "support/StringUtil.h"

#include <cassert>
#include <map>
#include <set>

using namespace awam;

namespace {

/// Abstract binding state of one X register during the head walk.
enum class RegState : uint8_t {
  Unknown, ///< anything
  Free,    ///< an unbound variable no other tracked register aliases
  Nonvar,  ///< instantiated, shape unknown
  Ground,  ///< fully instantiated
};

uint8_t flagsOf(RegState S) {
  switch (S) {
  case RegState::Free:
    return specflag::KnownFree;
  case RegState::Nonvar:
    return specflag::KnownNonvar;
  case RegState::Ground:
    return specflag::KnownGround | specflag::KnownNonvar;
  case RegState::Unknown:
    break;
  }
  return 0;
}

/// Unify-operand words eligible for folding into a fused block.
bool isUnifyOp(Opcode Op) {
  switch (Op) {
  case Opcode::UnifyVariableX:
  case Opcode::UnifyVariableY:
  case Opcode::UnifyValueX:
  case Opcode::UnifyValueY:
  case Opcode::UnifyConst:
  case Opcode::UnifyVoid:
    return true;
  default:
    return false;
  }
}

/// First-argument indexing class of one clause, recovered from its head
/// code exactly like the original compiler derived it from the term (and
/// like the det machinery re-derives it).
struct ClauseShape {
  enum Kind : uint8_t { VarS, ConstS, ListS, StructS };
  Kind K = VarS;
  ConstOperand Const{};   ///< for ConstS
  FunctorArity Functor{}; ///< for StructS
};

ClauseShape shapeFromCode(const CodeModule &M, const ClauseInfo &C) {
  for (int32_t A = C.Entry; A != C.Entry + C.NumInstr; ++A) {
    const Instruction &I = M.at(A);
    switch (I.Op) {
    case Opcode::GetConst:
      if (I.B == 0)
        return {ClauseShape::ConstS, M.constAt(I.A), {}};
      break;
    case Opcode::GetList:
      if (I.A == 0)
        return {ClauseShape::ListS, {}, {}};
      break;
    case Opcode::GetStructure:
      if (I.B == 0)
        return {ClauseShape::StructS, {}, M.functorAt(I.A)};
      break;
    case Opcode::GetVariableX:
    case Opcode::GetVariableY:
    case Opcode::GetValueX:
    case Opcode::GetValueY:
      if (I.B == 0)
        return {}; // a variable head argument matches anything
      break;
    case Opcode::PutVariableX:
    case Opcode::PutVariableY:
    case Opcode::PutValueX:
    case Opcode::PutValueY:
    case Opcode::PutConst:
    case Opcode::PutList:
    case Opcode::PutStructure:
    case Opcode::Call:
    case Opcode::Execute:
    case Opcode::Builtin:
    case Opcode::Proceed:
      return {}; // body reached: argument 0 was never constrained
    default:
      break;
    }
  }
  return {};
}

/// Can a first argument abstracted as \p S reach a clause head of shape
/// \p C at runtime? Mirrors the det machinery's classMatches, including
/// "a list shape covers the [] atom".
bool shapeMatches(const CallShape &S, const ClauseShape &C,
                  const SymbolTable &Syms) {
  if (C.K == ClauseShape::VarS)
    return true;
  switch (S.K) {
  case CallShape::AnyShape:
  case CallShape::NonvarShape:
  case CallShape::VarShape:
    return true; // an unbound or shapeless argument unifies with any head
  case CallShape::ConstShape:
    return C.K == ClauseShape::ConstS && (!S.Exact || S.Const == C.Const);
  case CallShape::ListShape:
    return C.K == ClauseShape::ListS ||
           (C.K == ClauseShape::ConstS &&
            C.Const.K == ConstOperand::AtomK &&
            Syms.name(C.Const.Name) == "[]");
  case CallShape::ConsShape:
    return C.K == ClauseShape::ListS;
  case CallShape::StructShape:
    return C.K == ClauseShape::StructS &&
           (!S.Exact || S.Functor == C.Functor);
  }
  return true;
}

/// What the dispatch path guarantees about argument register 0 when a
/// chain is entered through one switch bucket.
struct BucketCtx {
  enum Kind : uint8_t {
    NoInfo,  ///< var chain or term-switch var target: nothing known
    ConstB,  ///< switch_on_constant case: exactly this constant
    ListB,   ///< list target: a cons cell
    StructB, ///< switch_on_structure case: exactly this functor
  };
  Kind K = NoInfo;
  ConstOperand Const{};
  FunctorArity Functor{};
};

/// Tracked X-register states, grown on demand.
class RegStates {
public:
  RegState get(int32_t R) const {
    return static_cast<size_t>(R) < S.size() ? S[R] : RegState::Unknown;
  }
  void set(int32_t R, RegState V) {
    if (static_cast<size_t>(R) >= S.size())
      S.resize(R + 1, RegState::Unknown);
    S[R] = V;
  }
  void clear() { S.assign(S.size(), RegState::Unknown); }

private:
  std::vector<RegState> S;
};

RegStates initialStates(const PredSpecFacts *Facts, int32_t Arity) {
  RegStates St;
  if (!Facts || !Facts->Analyzed)
    return St;
  for (int32_t A = 0; A != Arity &&
                      A != static_cast<int32_t>(Facts->Args.size());
       ++A) {
    const ArgSpecFacts &AF = Facts->Args[A];
    if (AF.KnownFree)
      St.set(A, RegState::Free);
    else if (AF.KnownGround)
      St.set(A, RegState::Ground);
    else if (AF.KnownNonvar)
      St.set(A, RegState::Nonvar);
  }
  return St;
}

/// Read/write context of the unify operands following the current get.
enum class HeadMode : uint8_t {
  None,        ///< no get_list/get_structure seen yet
  Write,       ///< building a fresh term: unify ops push, never fail
  ReadGround,  ///< reading a ground term: subterms are ground
  ReadUnknown, ///< reading an instantiated term of unknown groundness
  Dynamic,     ///< mode decided at runtime
};

/// Shared state-transition for a get_value_x (full unification of two
/// tracked values). Free is consumed: afterwards the pair shares one
/// runtime value, so neither side may keep the unaliased-variable claim.
void applyGetValueX(RegStates &St, int32_t A, int32_t B) {
  RegState SA = St.get(A), SB = St.get(B);
  if (SA == RegState::Free && SB == RegState::Free) {
    St.set(A, RegState::Unknown);
    St.set(B, RegState::Unknown);
  } else if (SA == RegState::Free) {
    St.set(A, SB);
  } else if (SB == RegState::Free) {
    St.set(B, SA);
  }
}

/// True when, entered under \p Bucket with the predicate's argument facts,
/// \p C provably reaches a NeckCut before any instruction that can fail.
/// Licenses chain collapse (R4): once the neck cut runs, every later chain
/// entry is unreachable whether or not it was emitted.
bool commitsEarly(const CodeModule &M, const ClauseInfo &C,
                  const PredSpecFacts *Facts, int32_t Arity,
                  const BucketCtx &Bucket) {
  RegStates St = initialStates(Facts, Arity);
  // The dispatch guarantees argument 0 is instantiated in any value bucket.
  if (Bucket.K != BucketCtx::NoInfo && St.get(0) == RegState::Unknown)
    St.set(0, RegState::Nonvar);
  HeadMode Mode = HeadMode::None;

  for (int32_t A = C.Entry; A != C.Entry + C.NumInstr; ++A) {
    const Instruction &I = M.at(A);
    switch (I.Op) {
    case Opcode::NeckCut:
      return true;
    case Opcode::Allocate:
    case Opcode::GetLevel:
      break;
    case Opcode::GetVariableX:
      // X[A] := A[B] is a move; if the source was Free the two registers
      // now alias, so only the destination keeps the claim.
      St.set(I.A, St.get(I.B));
      if (St.get(I.B) == RegState::Free)
        St.set(I.B, RegState::Unknown);
      break;
    case Opcode::GetVariableY:
      break; // stores into the environment: cannot fail
    case Opcode::GetValueX:
      if (St.get(I.A) != RegState::Free && St.get(I.B) != RegState::Free)
        return false; // a full unification that may fail
      applyGetValueX(St, I.A, I.B);
      break;
    case Opcode::GetConst:
      if (St.get(I.B) == RegState::Free) {
        St.set(I.B, RegState::Ground); // binds: cannot fail
        break;
      }
      if (Bucket.K == BucketCtx::ConstB && I.B == 0 &&
          M.constAt(I.A) == Bucket.Const)
        break; // the switch already matched this exact constant
      return false;
    case Opcode::GetList:
      if (St.get(I.A) == RegState::Free) {
        Mode = HeadMode::Write;
        St.set(I.A, RegState::Nonvar);
        break;
      }
      if (Bucket.K == BucketCtx::ListB && I.A == 0) {
        Mode = St.get(0) == RegState::Ground ? HeadMode::ReadGround
                                             : HeadMode::ReadUnknown;
        break;
      }
      return false;
    case Opcode::GetStructure:
      if (St.get(I.B) == RegState::Free) {
        Mode = HeadMode::Write;
        St.set(I.B, RegState::Nonvar);
        break;
      }
      if (Bucket.K == BucketCtx::StructB && I.B == 0 &&
          M.functorAt(I.A) == Bucket.Functor) {
        Mode = St.get(0) == RegState::Ground ? HeadMode::ReadGround
                                             : HeadMode::ReadUnknown;
        break;
      }
      return false;
    case Opcode::UnifyVariableX:
      if (Mode == HeadMode::Write)
        St.set(I.A, RegState::Free); // a fresh, unaliased heap variable
      else if (Mode == HeadMode::ReadGround)
        St.set(I.A, RegState::Ground);
      else
        St.set(I.A, RegState::Unknown);
      break;
    case Opcode::UnifyVariableY:
    case Opcode::UnifyVoid:
      break; // store or skip: cannot fail in either mode
    case Opcode::UnifyValueX:
      if (Mode == HeadMode::Write)
        break; // pushes the value: cannot fail
      if (St.get(I.A) != RegState::Free)
        return false; // read-mode unification that may fail
      St.set(I.A, Mode == HeadMode::ReadGround ? RegState::Ground
                                               : RegState::Unknown);
      break;
    case Opcode::UnifyValueY:
      if (Mode == HeadMode::Write)
        break;
      return false;
    case Opcode::UnifyConst:
      if (Mode == HeadMode::Write)
        break;
      return false; // read mode compares against the subterm: may fail
    default:
      return false; // body reached (or untracked op) before the neck cut
    }
  }
  return false; // no neck cut in this clause
}

/// Per-predicate rewrite tallies, folded into the report note.
struct PredTally {
  uint64_t Fused = 0, FusedOps = 0, Flagged = 0, Pruned = 0, Collapsed = 0,
           NeckCuts = 0;
  bool Shortcut = false, VarFail = false;
};

/// The rewriting pass over one module.
class Specializer {
public:
  Specializer(const CodeModule &In, const SpecializationFacts &Facts,
              CodeModule &Out, SpecializationReport &Report)
      : In(In), Facts(Facts), Out(Out), R(Report) {}

  void run();

private:
  struct KeptClause {
    size_t OrigIdx = 0;    ///< index into the original Clauses vector
    int32_t NewEntry = 0;  ///< entry of the copied block in Out
    ClauseShape Shape;
  };

  const PredSpecFacts *factsFor(int32_t Pid) const {
    size_t P = static_cast<size_t>(Pid);
    if (P < Facts.Preds.size() && Facts.Preds[P].Analyzed)
      return &Facts.Preds[P];
    return nullptr;
  }

  ClauseInfo copyClause(const ClauseInfo &C, const PredSpecFacts *PF,
                        int32_t Arity, bool DropNeckCut, PredTally &T);
  Instruction remap(const Instruction &I) const;

  int32_t emitChain(const PredicateInfo &P,
                    const std::vector<const KeptClause *> &Entries,
                    const PredSpecFacts *PF, const BucketCtx &Bucket,
                    PredTally &T);
  int32_t buildIndex(const PredicateInfo &P,
                     const std::vector<KeptClause> &Kept,
                     const PredSpecFacts *PF, PredTally &T);

  const CodeModule &In;
  const SpecializationFacts &Facts;
  CodeModule &Out;
  SpecializationReport &R;
  std::map<std::vector<int32_t>, int32_t> ChainCache;
};

/// Copies \p I into Out, re-interning pool operands. Predicate ids are
/// stable (Out pre-interned every predicate in id order), so Call/Execute
/// operands carry over unchanged.
Instruction Specializer::remap(const Instruction &I) const {
  Instruction N = I;
  switch (I.Op) {
  case Opcode::GetConst:
  case Opcode::PutConst:
  case Opcode::UnifyConst:
    N.A = Out.internConst(In.constAt(I.A));
    break;
  case Opcode::GetStructure:
  case Opcode::PutStructure:
    N.A = Out.internFunctor(In.functorAt(I.A));
    break;
  default:
    break;
  }
  return N;
}

ClauseInfo Specializer::copyClause(const ClauseInfo &C,
                                   const PredSpecFacts *PF, int32_t Arity,
                                   bool DropNeckCut, PredTally &T) {
  ClauseInfo NewC;
  NewC.Entry = Out.codeSize();
  RegStates St = initialStates(PF, Arity);
  HeadMode Mode = HeadMode::None;

  int32_t End = C.Entry + C.NumInstr;
  for (int32_t A = C.Entry; A != End; ++A) {
    const Instruction &I = In.at(A);
    switch (I.Op) {
    case Opcode::NeckCut:
      if (DropNeckCut) {
        ++T.NeckCuts;
        ++R.DeletedNeckCuts;
        continue; // a no-op once the predicate cannot push a chain CP
      }
      Out.emit(I);
      break;
    case Opcode::GetVariableX:
      St.set(I.A, St.get(I.B));
      if (St.get(I.B) == RegState::Free)
        St.set(I.B, RegState::Unknown);
      Out.emit(I);
      break;
    case Opcode::GetValueX:
      applyGetValueX(St, I.A, I.B);
      Out.emit(I);
      break;
    case Opcode::GetValueY:
      if (St.get(I.B) == RegState::Free)
        St.set(I.B, RegState::Unknown);
      Out.emit(I);
      break;
    case Opcode::GetConst: {
      Instruction N = remap(I);
      N.Flags = flagsOf(St.get(I.B));
      if (N.Flags) {
        ++T.Flagged;
        ++R.FlaggedInstrs;
      }
      St.set(I.B, RegState::Ground); // on success the register is ground
      Out.emit(N);
      break;
    }
    case Opcode::GetList:
    case Opcode::GetStructure: {
      int32_t Reg = I.Op == Opcode::GetList ? I.A : I.B;
      RegState S = St.get(Reg);
      Mode = S == RegState::Free     ? HeadMode::Write
             : S == RegState::Ground ? HeadMode::ReadGround
             : S == RegState::Nonvar ? HeadMode::ReadUnknown
                                     : HeadMode::Dynamic;
      // Count the contiguous unify operand words that belong to this get.
      int32_t K = 0;
      while (A + 1 + K != End && isUnifyOp(In.at(A + 1 + K).Op))
        ++K;
      uint8_t Flags = flagsOf(S);
      if (PF && S != RegState::Unknown && K > 0) {
        // R1: emit the fused superinstruction, then the original operand
        // words (executed without dispatch by the machine's unify helper).
        if (I.Op == Opcode::GetList)
          Out.emit({Opcode::GetListFused, I.A, K, 0, Flags});
        else
          Out.emit({Opcode::GetStructureFused,
                    Out.internFunctor(In.functorAt(I.A)), I.B, K, Flags});
        ++T.Fused;
        T.FusedOps += K;
        ++R.FusedBlocks;
        R.FusedOperands += K;
      } else {
        Instruction N = remap(I);
        N.Flags = Flags;
        if (N.Flags) {
          ++T.Flagged;
          ++R.FlaggedInstrs;
        }
        Out.emit(N);
        K = 0; // operand words stay standalone instructions
      }
      St.set(Reg, S == RegState::Ground ? RegState::Ground
                                        : RegState::Nonvar);
      // Walk (and emit) the operand words of a fused block here so the
      // abstract states stay in sync with the machine's execution order.
      for (int32_t W = 0; W != K; ++W) {
        const Instruction &U = In.at(A + 1 + W);
        switch (U.Op) {
        case Opcode::UnifyVariableX:
          St.set(U.A, Mode == HeadMode::Write        ? RegState::Free
                      : Mode == HeadMode::ReadGround ? RegState::Ground
                                                     : RegState::Unknown);
          break;
        case Opcode::UnifyValueX:
          if (Mode != HeadMode::Write)
            St.set(U.A, Mode == HeadMode::ReadGround &&
                                St.get(U.A) == RegState::Ground
                            ? RegState::Ground
                            : RegState::Unknown);
          break;
        default:
          break;
        }
        Out.emit(remap(U));
      }
      A += K;
      break;
    }
    case Opcode::UnifyVariableX:
      // An operand word outside a fused block: track it the same way.
      St.set(I.A, Mode == HeadMode::Write        ? RegState::Free
                  : Mode == HeadMode::ReadGround ? RegState::Ground
                                                 : RegState::Unknown);
      Out.emit(I);
      break;
    case Opcode::UnifyValueX:
      if (Mode != HeadMode::Write)
        St.set(I.A, RegState::Unknown);
      Out.emit(I);
      break;
    case Opcode::PutVariableX:
    case Opcode::PutVariableY:
    case Opcode::PutValueX:
    case Opcode::PutValueY:
    case Opcode::PutConst:
    case Opcode::PutList:
    case Opcode::PutStructure:
    case Opcode::Call:
    case Opcode::Execute:
    case Opcode::Builtin:
      // Body construction and calls clobber the register file; every
      // tracked fact dies here (gets never follow, but stay safe).
      St.clear();
      Mode = HeadMode::Dynamic;
      Out.emit(remap(I));
      break;
    default:
      Out.emit(remap(I));
      break;
    }
  }
  NewC.NumInstr = Out.codeSize() - NewC.Entry;
  return NewC;
}

int32_t Specializer::emitChain(const PredicateInfo &P,
                               const std::vector<const KeptClause *> &Entries,
                               const PredSpecFacts *PF,
                               const BucketCtx &Bucket, PredTally &T) {
  // R4: truncate after the first entry that provably commits — once its
  // neck cut runs, later entries can never be retried.
  size_t N = Entries.size();
  for (size_t I = 0; I != N; ++I)
    if (commitsEarly(In, P.Clauses[Entries[I]->OrigIdx], PF, P.Arity,
                     Bucket)) {
      if (I + 1 < N) {
        N = I + 1;
        ++T.Collapsed;
        ++R.CollapsedChains;
      }
      break;
    }

  if (N == 0)
    return kFailTarget;
  if (N == 1)
    return Entries[0]->NewEntry;

  std::vector<int32_t> Addrs;
  for (size_t I = 0; I != N; ++I)
    Addrs.push_back(Entries[I]->NewEntry);
  auto It = ChainCache.find(Addrs);
  if (It != ChainCache.end())
    return It->second;
  int32_t Addr = Out.codeSize();
  Out.emit({Opcode::Try, Addrs.front(), P.Arity});
  for (size_t I = 1; I + 1 < Addrs.size(); ++I)
    Out.emit({Opcode::Retry, Addrs[I], P.Arity});
  Out.emit({Opcode::Trust, Addrs.back(), P.Arity});
  ChainCache.emplace(std::move(Addrs), Addr);
  return Addr;
}

int32_t Specializer::buildIndex(const PredicateInfo &P,
                                const std::vector<KeptClause> &Kept,
                                const PredSpecFacts *PF, PredTally &T) {
  size_t N = Kept.size();
  if (N == 0)
    return kFailTarget;
  if (N == 1)
    return Kept[0].NewEntry;

  std::vector<const KeptClause *> All, Vars;
  for (const KeptClause &K : Kept) {
    All.push_back(&K);
    if (K.Shape.K == ClauseShape::VarS)
      Vars.push_back(&K);
  }

  if (Vars.size() == N)
    return emitChain(P, All, PF, {}, T);

  // A chain of the clauses applicable in one dispatch bucket (variable
  // heads match in every bucket), preserving source order.
  auto bucketChain = [&](auto Matches, const BucketCtx &Ctx) {
    std::vector<const KeptClause *> Entries;
    for (const KeptClause &K : Kept)
      if (K.Shape.K == ClauseShape::VarS || Matches(K.Shape))
        Entries.push_back(&K);
    return emitChain(P, Entries, PF, Ctx, T);
  };

  auto listTarget = [&] {
    BucketCtx Ctx;
    Ctx.K = BucketCtx::ListB;
    return bucketChain(
        [](const ClauseShape &S) { return S.K == ClauseShape::ListS; }, Ctx);
  };
  auto constTarget = [&] {
    std::set<ConstOperand> Keys;
    for (const KeptClause &K : Kept)
      if (K.Shape.K == ClauseShape::ConstS)
        Keys.insert(K.Shape.Const);
    if (Keys.empty())
      return emitChain(P, Vars, PF, {}, T);
    ValueSwitch VS;
    VS.Default = emitChain(P, Vars, PF, {}, T);
    for (const ConstOperand &Key : Keys) {
      BucketCtx Ctx;
      Ctx.K = BucketCtx::ConstB;
      Ctx.Const = Key;
      VS.Cases.emplace_back(Out.internConst(Key),
                            bucketChain(
                                [&](const ClauseShape &S) {
                                  return S.K == ClauseShape::ConstS &&
                                         S.Const == Key;
                                },
                                Ctx));
    }
    int32_t TableIdx = Out.addValueSwitch(std::move(VS));
    return Out.emit({Opcode::SwitchOnConstant, TableIdx, 0});
  };
  auto structTarget = [&] {
    std::set<FunctorArity> Keys;
    for (const KeptClause &K : Kept)
      if (K.Shape.K == ClauseShape::StructS)
        Keys.insert(K.Shape.Functor);
    if (Keys.empty())
      return emitChain(P, Vars, PF, {}, T);
    ValueSwitch VS;
    VS.Default = emitChain(P, Vars, PF, {}, T);
    for (const FunctorArity &Key : Keys) {
      BucketCtx Ctx;
      Ctx.K = BucketCtx::StructB;
      Ctx.Functor = Key;
      VS.Cases.emplace_back(Out.internFunctor(Key),
                            bucketChain(
                                [&](const ClauseShape &S) {
                                  return S.K == ClauseShape::StructS &&
                                         S.Functor == Key;
                                },
                                Ctx));
    }
    int32_t TableIdx = Out.addValueSwitch(std::move(VS));
    return Out.emit({Opcode::SwitchOnStructure, TableIdx, 0});
  };

  // R5: when every observed call selects one switch_on_term bucket, enter
  // that bucket directly and skip the term dispatch. A list shape may be
  // the [] atom at runtime, so only definite cons shapes qualify for the
  // list shortcut.
  if (PF && !PF->Shapes.empty()) {
    auto allOf = [&](CallShape::Kind K) {
      for (const CallShape &S : PF->Shapes)
        if (S.K != K)
          return false;
      return true;
    };
    if (allOf(CallShape::ConstShape)) {
      T.Shortcut = true;
      ++R.ShortcutSwitches;
      return constTarget();
    }
    if (allOf(CallShape::StructShape)) {
      T.Shortcut = true;
      ++R.ShortcutSwitches;
      return structTarget();
    }
    if (allOf(CallShape::ConsShape)) {
      T.Shortcut = true;
      ++R.ShortcutSwitches;
      return listTarget();
    }
  }

  int32_t ListT = listTarget();
  int32_t ConstT = constTarget();
  int32_t StructT = structTarget();

  // R5 (var half): if no call can carry an unbound first argument, the var
  // target is unreachable and becomes fail. The value-switch defaults above
  // keep their variable-head chains: they handle *instantiated* arguments
  // whose value is absent from the case table.
  int32_t VarT;
  bool NoVarCalls = PF && !PF->Shapes.empty();
  if (NoVarCalls)
    for (const CallShape &S : PF->Shapes)
      if (S.K == CallShape::AnyShape || S.K == CallShape::VarShape)
        NoVarCalls = false;
  if (NoVarCalls) {
    VarT = kFailTarget;
    T.VarFail = true;
    ++R.FailVarTargets;
  } else {
    VarT = emitChain(P, All, PF, {}, T);
  }

  int32_t SwitchIdx = Out.addTermSwitch({VarT, ConstT, ListT, StructT});
  return Out.emit({Opcode::SwitchOnTerm, SwitchIdx, 0});
}

void Specializer::run() {
  // Fixed module preamble, as the original compiler laid it out.
  Out.emit({Opcode::Halt, 0, 0});
  Out.emit({Opcode::Proceed, 0, 0});

  // Pre-intern every predicate in id order so Call/Execute operands and
  // all external predicate ids stay valid in the specialized module.
  for (int32_t Pid = 0; Pid != In.numPredicates(); ++Pid) {
    const PredicateInfo &P = In.predicate(Pid);
    int32_t NewPid = Out.predicateId(P.Name, P.Arity);
    assert(NewPid == Pid && "predicate ids must be stable");
    (void)NewPid;
  }

  const SymbolTable &Syms = In.symbols();
  for (int32_t Pid = 0; Pid != In.numPredicates(); ++Pid) {
    const PredicateInfo &P = In.predicate(Pid);
    if (P.Clauses.empty())
      continue; // undefined: IndexEntry stays kFailTarget
    const PredSpecFacts *PF = factsFor(Pid);
    PredTally T;

    std::vector<ClauseShape> Shapes;
    for (const ClauseInfo &C : P.Clauses)
      Shapes.push_back(shapeFromCode(In, C));

    // R3: drop clauses no observed call shape can reach. If the facts rule
    // out *every* clause the analysis says all calls fail; keep the code
    // unpruned rather than encode that conclusion into the dispatch.
    std::vector<char> Keep(P.Clauses.size(), 1);
    if (PF && !PF->Shapes.empty()) {
      size_t NumKept = 0;
      for (size_t I = 0; I != P.Clauses.size(); ++I) {
        bool K = false;
        for (const CallShape &S : PF->Shapes)
          if (shapeMatches(S, Shapes[I], Syms)) {
            K = true;
            break;
          }
        Keep[I] = K;
        NumKept += K;
      }
      if (NumKept == 0)
        Keep.assign(P.Clauses.size(), 1);
      else {
        T.Pruned = P.Clauses.size() - NumKept;
        R.PrunedClauses += T.Pruned;
      }
    }

    size_t NumKept = 0;
    for (char K : Keep)
      NumKept += K;
    // R6: one surviving clause means no chain can ever push a choice
    // point for this predicate, so its neck cut is a no-op.
    bool DropNeckCut = NumKept == 1;

    std::vector<KeptClause> Kept;
    PredicateInfo &NewP = Out.predicate(Pid);
    for (size_t I = 0; I != P.Clauses.size(); ++I) {
      if (!Keep[I])
        continue;
      ClauseInfo NewC =
          copyClause(P.Clauses[I], PF, P.Arity, DropNeckCut, T);
      Kept.push_back({I, NewC.Entry, Shapes[I]});
      NewP.Clauses.push_back(NewC);
    }

    NewP.IndexEntry = buildIndex(P, Kept, PF, T);

    if (T.Fused || T.Flagged || T.Pruned || T.Collapsed || T.NeckCuts ||
        T.Shortcut || T.VarFail || (PF && PF->Det != DetSpecClass::Unknown)) {
      std::string Note = In.predicateLabel(Pid) + ":";
      if (T.Pruned)
        Note += " pruned " + std::to_string(T.Pruned) + "/" +
                std::to_string(P.Clauses.size()) + " clauses";
      if (T.Fused)
        Note += " fused " + std::to_string(T.Fused) + " blocks (" +
                std::to_string(T.FusedOps) + " ops)";
      if (T.Flagged)
        Note += " flagged " + std::to_string(T.Flagged);
      if (T.Collapsed)
        Note += " collapsed " + std::to_string(T.Collapsed) + " chains";
      if (T.Shortcut)
        Note += " direct-bucket entry";
      if (T.VarFail)
        Note += " var-target=fail";
      if (T.NeckCuts)
        Note += " deleted " + std::to_string(T.NeckCuts) + " neck cuts";
      if (PF) {
        switch (PF->Det) {
        case DetSpecClass::Det: Note += " [det]"; break;
        case DetSpecClass::Semidet: Note += " [semidet]"; break;
        case DetSpecClass::Nondet: Note += " [nondet]"; break;
        case DetSpecClass::Fails: Note += " [fails]"; break;
        case DetSpecClass::Unknown: break;
        }
      }
      R.Notes.push_back(Note);
    }
  }
}

} // namespace

std::unique_ptr<CodeModule>
awam::specializeModule(const CodeModule &M, const SpecializationFacts &Facts,
                       SpecializationReport &Report) {
  auto Out = std::make_unique<CodeModule>(M.symbols());
  Specializer(M, Facts, *Out, Report).run();
  return Out;
}

CompiledProgram awam::specializeProgram(const CompiledProgram &P,
                                        const SpecializationFacts &Facts,
                                        SpecializationReport &Report) {
  CompiledProgram Out;
  Out.Module = specializeModule(*P.Module, Facts, Report);
  Out.MaxXReg = P.MaxXReg; // rewrites introduce no new temporaries
  Out.UndefinedPredicates = P.UndefinedPredicates;
  Out.NumArgs = P.NumArgs;
  Out.NumPreds = P.NumPreds;
  return Out;
}

std::string awam::formatSpecialization(const CodeModule &Spec,
                                       const SpecializationReport &R) {
  std::string Out = "specialization summary:\n";
  auto Line = [&](const char *Label, uint64_t V) {
    Out += "  " + padRight(Label, 22) + std::to_string(V) + "\n";
  };
  Line("fused blocks:", R.FusedBlocks);
  Line("fused operand words:", R.FusedOperands);
  Line("flagged instructions:", R.FlaggedInstrs);
  Line("pruned clauses:", R.PrunedClauses);
  Line("collapsed chains:", R.CollapsedChains);
  Line("shortcut dispatches:", R.ShortcutSwitches);
  Line("var targets to fail:", R.FailVarTargets);
  Line("deleted neck cuts:", R.DeletedNeckCuts);
  if (!R.Notes.empty()) {
    Out += "per-predicate rewrites:\n";
    for (const std::string &N : R.Notes)
      Out += "  " + N + "\n";
  }
  Out += "specialized code:\n";
  return Out + disassembleModule(Spec);
}
