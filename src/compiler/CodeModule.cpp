//===- compiler/CodeModule.cpp --------------------------------------------===//

#include "compiler/CodeModule.h"

#include <algorithm>

using namespace awam;

int32_t CodeModule::internConst(ConstOperand C) {
  auto [It, Inserted] =
      ConstIndex.try_emplace(C, static_cast<int32_t>(Consts.size()));
  if (Inserted)
    Consts.push_back(C);
  return It->second;
}

int32_t CodeModule::internFunctor(FunctorArity F) {
  auto [It, Inserted] =
      FunctorIndex.try_emplace(F, static_cast<int32_t>(Functors.size()));
  if (Inserted)
    Functors.push_back(F);
  return It->second;
}

int32_t CodeModule::predicateId(Symbol Name, int Arity) {
  auto Key = std::make_pair(Name, static_cast<int32_t>(Arity));
  auto [It, Inserted] =
      PredIndex.try_emplace(Key, static_cast<int32_t>(Preds.size()));
  if (Inserted) {
    PredicateInfo P;
    P.Name = Name;
    P.Arity = Arity;
    Preds.push_back(P);
  }
  return It->second;
}

int32_t CodeModule::findPredicate(Symbol Name, int Arity) const {
  auto It = PredIndex.find({Name, Arity});
  return It == PredIndex.end() ? -1 : It->second;
}

std::string CodeModule::predicateLabel(int32_t Id) const {
  const PredicateInfo &P = Preds[Id];
  return std::string(Syms->name(P.Name)) + "/" + std::to_string(P.Arity);
}

namespace {

// FNV-1a, 64-bit.
inline void fnvBytes(uint64_t &H, const void *Data, size_t N) {
  const auto *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != N; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
}

inline void fnvInt(uint64_t &H, int64_t V) { fnvBytes(H, &V, sizeof(V)); }

inline void fnvStr(uint64_t &H, std::string_view S) {
  fnvInt(H, static_cast<int64_t>(S.size()));
  fnvBytes(H, S.data(), S.size());
}

} // namespace

uint64_t CodeModule::fingerprint() const {
  uint64_t H = 1469598103934665603ull;
  // Defined predicates in name/arity order, so an id permutation (ids are
  // assigned in first-reference order, which edits can shuffle) does not
  // perturb the fingerprint.
  std::vector<int32_t> Order;
  for (int32_t I = 0; I != numPredicates(); ++I)
    if (!Preds[I].Clauses.empty())
      Order.push_back(I);
  std::sort(Order.begin(), Order.end(), [&](int32_t A, int32_t B) {
    const PredicateInfo &PA = Preds[A];
    const PredicateInfo &PB = Preds[B];
    std::string_view NA = Syms->name(PA.Name);
    std::string_view NB = Syms->name(PB.Name);
    return NA != NB ? NA < NB : PA.Arity < PB.Arity;
  });
  for (int32_t Id : Order)
    hashPredicate(H, Id);
  return H;
}

uint64_t CodeModule::predicateFingerprint(int32_t Id) const {
  uint64_t H = 1469598103934665603ull;
  hashPredicate(H, Id);
  return H;
}

void CodeModule::hashPredicate(uint64_t &H, int32_t Id) const {
  const PredicateInfo &P = Preds[Id];
  fnvStr(H, Syms->name(P.Name));
  fnvInt(H, P.Arity);
  fnvInt(H, static_cast<int64_t>(P.Clauses.size()));
  for (const ClauseInfo &C : P.Clauses) {
    fnvInt(H, C.NumInstr);
    for (int32_t K = 0; K != C.NumInstr; ++K) {
      const Instruction &I = Code[C.Entry + K];
      fnvInt(H, static_cast<int64_t>(I.Op));
      // Resolve pool/table indices to their meaning — the same
      // resolution diffPrograms compares by — so two compilations of
      // equivalent source fingerprint equal even if pool layouts differ.
      switch (I.Op) {
      case Opcode::GetConst:
      case Opcode::PutConst:
      case Opcode::UnifyConst: {
        const ConstOperand &Cst = Consts[I.A];
        fnvInt(H, Cst.K);
        if (Cst.K == ConstOperand::AtomK)
          fnvStr(H, Syms->name(Cst.Name));
        else
          fnvInt(H, Cst.Int);
        fnvInt(H, I.B);
        break;
      }
      case Opcode::GetStructure:
      case Opcode::PutStructure: {
        const FunctorArity &F = Functors[I.A];
        fnvStr(H, Syms->name(F.Name));
        fnvInt(H, F.Arity);
        fnvInt(H, I.B);
        break;
      }
      case Opcode::Call:
      case Opcode::Execute: {
        const PredicateInfo &Callee = Preds[I.A];
        fnvStr(H, Syms->name(Callee.Name));
        fnvInt(H, Callee.Arity);
        break;
      }
      default:
        fnvInt(H, I.A);
        fnvInt(H, I.B);
        break;
      }
    }
  }
}
