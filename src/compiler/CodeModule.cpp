//===- compiler/CodeModule.cpp --------------------------------------------===//

#include "compiler/CodeModule.h"

using namespace awam;

int32_t CodeModule::internConst(ConstOperand C) {
  auto [It, Inserted] =
      ConstIndex.try_emplace(C, static_cast<int32_t>(Consts.size()));
  if (Inserted)
    Consts.push_back(C);
  return It->second;
}

int32_t CodeModule::internFunctor(FunctorArity F) {
  auto [It, Inserted] =
      FunctorIndex.try_emplace(F, static_cast<int32_t>(Functors.size()));
  if (Inserted)
    Functors.push_back(F);
  return It->second;
}

int32_t CodeModule::predicateId(Symbol Name, int Arity) {
  auto Key = std::make_pair(Name, static_cast<int32_t>(Arity));
  auto [It, Inserted] =
      PredIndex.try_emplace(Key, static_cast<int32_t>(Preds.size()));
  if (Inserted) {
    PredicateInfo P;
    P.Name = Name;
    P.Arity = Arity;
    Preds.push_back(P);
  }
  return It->second;
}

int32_t CodeModule::findPredicate(Symbol Name, int Arity) const {
  auto It = PredIndex.find({Name, Arity});
  return It == PredIndex.end() ? -1 : It->second;
}

std::string CodeModule::predicateLabel(int32_t Id) const {
  const PredicateInfo &P = Preds[Id];
  return std::string(Syms->name(P.Name)) + "/" + std::to_string(P.Arity);
}
