//===- compiler/ClauseCompiler.cpp ----------------------------------------===//

#include "compiler/ClauseCompiler.h"

#include "compiler/Builtins.h"

#include <deque>
#include <map>

using namespace awam;

namespace {

/// How one clause goal is compiled.
enum class GoalKind { UserCall, BuiltinCall, Cut, FailGoal };

/// Per-variable classification computed before code emission.
struct VarInfo {
  int Occurrences = 0;
  int FirstChunk = -1;
  int LastChunk = -1;
  bool Permanent = false;
  int Reg = -1;       // Y index if permanent, X index if temporary
  bool Seen = false;  // first occurrence already emitted?
};

class ClauseContext {
public:
  ClauseContext(const ParsedClause &Clause, CodeModule &Module)
      : Clause(Clause), Module(Module), Syms(Module.symbols()),
        Vars(Clause.NumVars) {}

  Result<CompiledClause> run();

private:
  // Analysis.
  void classifyGoals();
  void scanTerm(const Term *T, int Chunk);
  void classifyVariables();

  // Emission.
  void emitHead();
  void emitHeadArg(const Term *Arg, int ArgReg);
  void emitGetUnifySequence(const Term *T, int Reg);
  void emitUnifyChildren(const Term *T,
                         std::deque<std::pair<const Term *, int>> &Queue);
  Result<bool> emitBody();
  void emitCallArgs(const Term *Goal);
  void emitCallArg(const Term *Arg, int ArgReg);
  int buildTerm(const Term *T);
  void emitWriteArg(const Term *Arg, int Reg);
  void emitUnifyVar(const Term *Var);
  bool flushVoids(int &Pending);

  int freshTemp() { return NextTemp++; }
  int32_t constIndex(const Term *T) {
    if (T->isInt())
      return Module.internConst(ConstOperand::integer(T->intValue()));
    return Module.internConst(ConstOperand::atom(T->functor()));
  }
  int32_t functorIndex(const Term *T) {
    return Module.internFunctor(
        {T->functor(), static_cast<int32_t>(T->arity())});
  }
  VarInfo &info(const Term *V) { return Vars[V->varId()]; }

  const ParsedClause &Clause;
  CodeModule &Module;
  SymbolTable &Syms;
  std::vector<VarInfo> Vars;
  std::vector<GoalKind> Goals;
  int NumUserCalls = 0;
  int FirstUserCallGoal = -1; // goal index of first user call
  bool HasDeepCut = false;
  bool NeedsEnv = false;
  int NumPermanent = 0;
  int CutSlot = -1;
  int NextTemp = 0;
  Diagnostic Error;
  bool HasError = false;
};

void ClauseContext::classifyGoals() {
  Goals.reserve(Clause.Body.size());
  for (size_t I = 0; I != Clause.Body.size(); ++I) {
    const Term *G = Clause.Body[I];
    if (G->isAtom() && G->functor() == SymbolTable::SymCut) {
      Goals.push_back(GoalKind::Cut);
      if (FirstUserCallGoal >= 0)
        HasDeepCut = true;
      continue;
    }
    if (G->isAtom() && G->functor() == SymbolTable::SymFail) {
      Goals.push_back(GoalKind::FailGoal);
      continue;
    }
    if (G->isCallable() &&
        lookupBuiltin(Syms.name(G->functor()), G->arity())) {
      Goals.push_back(GoalKind::BuiltinCall);
      continue;
    }
    Goals.push_back(GoalKind::UserCall);
    if (FirstUserCallGoal < 0)
      FirstUserCallGoal = static_cast<int>(I);
    ++NumUserCalls;
  }
}

void ClauseContext::scanTerm(const Term *T, int Chunk) {
  if (T->isVar()) {
    VarInfo &VI = info(T);
    ++VI.Occurrences;
    if (VI.FirstChunk < 0)
      VI.FirstChunk = Chunk;
    VI.LastChunk = Chunk;
    return;
  }
  if (T->isStruct())
    for (const Term *A : T->args())
      scanTerm(A, Chunk);
}

void ClauseContext::classifyVariables() {
  // Chunk 0 is the head plus all goals up to and including the first user
  // call; each later user call starts a new chunk. Builtins and cut extend
  // the current chunk.
  scanTerm(Clause.Head, 0);
  int Chunk = 0;
  for (size_t I = 0; I != Clause.Body.size(); ++I) {
    scanTerm(Clause.Body[I], Chunk);
    if (Goals[I] == GoalKind::UserCall)
      ++Chunk;
  }
  for (VarInfo &VI : Vars)
    if (VI.FirstChunk >= 0 && VI.FirstChunk != VI.LastChunk) {
      VI.Permanent = true;
      VI.Reg = NumPermanent++;
    }

  int LastUserCallGoal = -1;
  for (size_t I = 0; I != Goals.size(); ++I)
    if (Goals[I] == GoalKind::UserCall)
      LastUserCallGoal = static_cast<int>(I);
  bool CodeAfterCall =
      NumUserCalls >= 2 ||
      (LastUserCallGoal >= 0 &&
       LastUserCallGoal + 1 != static_cast<int>(Goals.size()));
  NeedsEnv = NumPermanent > 0 || CodeAfterCall || HasDeepCut;
  if (HasDeepCut)
    CutSlot = NumPermanent++;
}

void ClauseContext::emitHead() {
  for (int I = 0, E = Clause.Head->isStruct() ? Clause.Head->arity() : 0;
       I != E; ++I)
    emitHeadArg(Clause.Head->arg(I), I);
}

void ClauseContext::emitHeadArg(const Term *Arg, int ArgReg) {
  switch (Arg->kind()) {
  case TermKind::Var: {
    VarInfo &VI = info(Arg);
    if (VI.Occurrences == 1)
      return; // void argument: nothing to do
    if (VI.Permanent) {
      Module.emit({VI.Seen ? Opcode::GetValueY : Opcode::GetVariableY,
                   VI.Reg, ArgReg});
    } else {
      if (!VI.Seen)
        VI.Reg = freshTemp();
      Module.emit({VI.Seen ? Opcode::GetValueX : Opcode::GetVariableX,
                   VI.Reg, ArgReg});
    }
    VI.Seen = true;
    return;
  }
  case TermKind::Int:
  case TermKind::Atom:
    Module.emit({Opcode::GetConst, constIndex(Arg), ArgReg});
    return;
  case TermKind::Struct:
    emitGetUnifySequence(Arg, ArgReg);
    return;
  }
}

/// Emits the breadth-first get/unify sequence for a nested structure in the
/// head, exactly in the style of the paper's Figure 2.
void ClauseContext::emitGetUnifySequence(const Term *T, int Reg) {
  std::deque<std::pair<const Term *, int>> Queue;
  Queue.emplace_back(T, Reg);
  while (!Queue.empty()) {
    auto [Cur, CurReg] = Queue.front();
    Queue.pop_front();
    if (Cur->isCons())
      Module.emit({Opcode::GetList, CurReg, 0});
    else
      Module.emit({Opcode::GetStructure, functorIndex(Cur), CurReg});
    emitUnifyChildren(Cur, Queue);
  }
}

/// Emits the unify_* sequence for the immediate children of \p T, queueing
/// nested structures for later get_list/get_structure processing.
void ClauseContext::emitUnifyChildren(
    const Term *T, std::deque<std::pair<const Term *, int>> &Queue) {
  int PendingVoids = 0;
  for (const Term *Child : T->args()) {
    switch (Child->kind()) {
    case TermKind::Var: {
      VarInfo &VI = info(Child);
      if (VI.Occurrences == 1) {
        ++PendingVoids;
        continue;
      }
      flushVoids(PendingVoids);
      emitUnifyVar(Child);
      continue;
    }
    case TermKind::Int:
    case TermKind::Atom:
      flushVoids(PendingVoids);
      Module.emit({Opcode::UnifyConst, constIndex(Child), 0});
      continue;
    case TermKind::Struct: {
      flushVoids(PendingVoids);
      int Temp = freshTemp();
      Module.emit({Opcode::UnifyVariableX, Temp, 0});
      Queue.emplace_back(Child, Temp);
      continue;
    }
    }
  }
  flushVoids(PendingVoids);
}

bool ClauseContext::flushVoids(int &Pending) {
  if (Pending == 0)
    return false;
  Module.emit({Opcode::UnifyVoid, Pending, 0});
  Pending = 0;
  return true;
}

void ClauseContext::emitUnifyVar(const Term *Var) {
  VarInfo &VI = info(Var);
  if (VI.Permanent) {
    Module.emit(
        {VI.Seen ? Opcode::UnifyValueY : Opcode::UnifyVariableY, VI.Reg, 0});
  } else {
    if (!VI.Seen)
      VI.Reg = freshTemp();
    Module.emit(
        {VI.Seen ? Opcode::UnifyValueX : Opcode::UnifyVariableX, VI.Reg, 0});
  }
  VI.Seen = true;
}

/// Loads the arguments of \p Goal into A0..An-1.
void ClauseContext::emitCallArgs(const Term *Goal) {
  for (int I = 0, E = Goal->isStruct() ? Goal->arity() : 0; I != E; ++I)
    emitCallArg(Goal->arg(I), I);
}

void ClauseContext::emitCallArg(const Term *Arg, int ArgReg) {
  switch (Arg->kind()) {
  case TermKind::Var: {
    VarInfo &VI = info(Arg);
    if (VI.Permanent) {
      Module.emit({VI.Seen ? Opcode::PutValueY : Opcode::PutVariableY,
                   VI.Reg, ArgReg});
      VI.Seen = true;
      return;
    }
    if (VI.Occurrences == 1) {
      Module.emit({Opcode::PutVariableX, freshTemp(), ArgReg});
      return;
    }
    if (!VI.Seen)
      VI.Reg = freshTemp();
    Module.emit({VI.Seen ? Opcode::PutValueX : Opcode::PutVariableX, VI.Reg,
                 ArgReg});
    VI.Seen = true;
    return;
  }
  case TermKind::Int:
  case TermKind::Atom:
    Module.emit({Opcode::PutConst, constIndex(Arg), ArgReg});
    return;
  case TermKind::Struct: {
    int Temp = buildTerm(Arg);
    Module.emit({Opcode::PutValueX, Temp, ArgReg});
    return;
  }
  }
}

/// Builds structure \p T on the heap bottom-up and returns the X register
/// holding it.
int ClauseContext::buildTerm(const Term *T) {
  // Build nested structures first so their registers are ready.
  std::vector<int> ChildRegs(T->arity(), -1);
  for (int I = 0, E = T->arity(); I != E; ++I)
    if (T->arg(I)->isStruct())
      ChildRegs[I] = buildTerm(T->arg(I));

  int Reg = freshTemp();
  if (T->isCons())
    Module.emit({Opcode::PutList, Reg, 0});
  else
    Module.emit({Opcode::PutStructure, functorIndex(T), Reg});

  int PendingVoids = 0;
  for (int I = 0, E = T->arity(); I != E; ++I) {
    const Term *Child = T->arg(I);
    switch (Child->kind()) {
    case TermKind::Var: {
      VarInfo &VI = info(Child);
      if (VI.Occurrences == 1) {
        ++PendingVoids;
        continue;
      }
      flushVoids(PendingVoids);
      emitUnifyVar(Child);
      continue;
    }
    case TermKind::Int:
    case TermKind::Atom:
      flushVoids(PendingVoids);
      Module.emit({Opcode::UnifyConst, constIndex(Child), 0});
      continue;
    case TermKind::Struct:
      flushVoids(PendingVoids);
      Module.emit({Opcode::UnifyValueX, ChildRegs[I], 0});
      continue;
    }
  }
  flushVoids(PendingVoids);
  return Reg;
}

Result<bool> ClauseContext::emitBody() {
  for (size_t I = 0, E = Clause.Body.size(); I != E; ++I) {
    const Term *G = Clause.Body[I];
    bool IsLast = I + 1 == E;
    switch (Goals[I]) {
    case GoalKind::Cut:
      if (FirstUserCallGoal >= 0 && static_cast<int>(I) > FirstUserCallGoal)
        Module.emit({Opcode::CutY, CutSlot, 0});
      else
        Module.emit({Opcode::NeckCut, 0, 0});
      break;
    case GoalKind::FailGoal:
      Module.emit({Opcode::Fail, 0, 0});
      return true; // code after fail is unreachable
    case GoalKind::BuiltinCall: {
      if (G->isVar())
        return makeError("variable goal is not supported");
      std::optional<BuiltinId> Id =
          lookupBuiltin(Syms.name(G->functor()),
                        G->isStruct() ? G->arity() : 0);
      assert(Id && "goal classified builtin but not found");
      emitCallArgs(G);
      Module.emit({Opcode::Builtin, static_cast<int32_t>(*Id),
                   G->isStruct() ? G->arity() : 0});
      break;
    }
    case GoalKind::UserCall: {
      if (!G->isCallable())
        return makeError("body goal is not callable");
      std::string_view Name = Syms.name(G->functor());
      if (Name == ";" || Name == "->")
        return makeError(
            "disjunction/if-then-else is not supported; rewrite with "
            "auxiliary predicates");
      emitCallArgs(G);
      int32_t Pid = Module.predicateId(
          G->functor(), G->isStruct() ? G->arity() : 0);
      if (IsLast) {
        if (NeedsEnv)
          Module.emit({Opcode::Deallocate, 0, 0});
        Module.emit({Opcode::Execute, Pid, 0});
        return false; // clause return handled by execute
      }
      Module.emit({Opcode::Call, Pid, 0});
      break;
    }
    }
  }
  return true; // still need proceed
}

Result<CompiledClause> ClauseContext::run() {
  classifyGoals();
  classifyVariables();

  int Arity = Clause.Head->isStruct() ? Clause.Head->arity() : 0;
  int MaxGoalArity = 0;
  for (const Term *G : Clause.Body)
    if (G->isStruct())
      MaxGoalArity = std::max(MaxGoalArity, G->arity());
  NextTemp = std::max(Arity, MaxGoalArity);

  CompiledClause Out;
  Out.Info.Entry = Module.codeSize();

  if (NeedsEnv) {
    Module.emit({Opcode::Allocate, NumPermanent, 0});
    if (HasDeepCut)
      Module.emit({Opcode::GetLevel, CutSlot, 0});
  }
  emitHead();
  Result<bool> NeedsProceed = emitBody();
  if (!NeedsProceed)
    return NeedsProceed.diag();
  if (*NeedsProceed) {
    if (NeedsEnv)
      Module.emit({Opcode::Deallocate, 0, 0});
    Module.emit({Opcode::Proceed, 0, 0});
  }

  Out.Info.NumInstr = Module.codeSize() - Out.Info.Entry;
  Out.NumPermanent = NumPermanent;
  Out.MaxXUsed = NextTemp;
  return Out;
}

} // namespace

Result<CompiledClause> awam::compileClause(const ParsedClause &Clause,
                                           CodeModule &Module) {
  return ClauseContext(Clause, Module).run();
}
