//===- compiler/Disasm.h - WAM code disassembler ----------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders compiled WAM code as text in the style of the paper's Figure 2.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_COMPILER_DISASM_H
#define AWAM_COMPILER_DISASM_H

#include "compiler/CodeModule.h"

#include <string>

namespace awam {

/// Renders one instruction (without address) as text.
std::string disassembleInstruction(const CodeModule &Module,
                                   const Instruction &I);

/// Renders the code range [Begin, End) with addresses.
std::string disassembleRange(const CodeModule &Module, int32_t Begin,
                             int32_t End);

/// Renders a whole predicate: indexing block reference plus each clause.
std::string disassemblePredicate(const CodeModule &Module, int32_t PredId);

/// Renders the entire module.
std::string disassembleModule(const CodeModule &Module);

} // namespace awam

#endif // AWAM_COMPILER_DISASM_H
