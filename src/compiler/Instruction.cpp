//===- compiler/Instruction.cpp -------------------------------------------===//

#include "compiler/Instruction.h"

using namespace awam;

std::string_view awam::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::GetVariableX: return "get_variable_x";
  case Opcode::GetVariableY: return "get_variable_y";
  case Opcode::GetValueX: return "get_value_x";
  case Opcode::GetValueY: return "get_value_y";
  case Opcode::GetConst: return "get_const";
  case Opcode::GetList: return "get_list";
  case Opcode::GetStructure: return "get_structure";
  case Opcode::PutVariableX: return "put_variable_x";
  case Opcode::PutVariableY: return "put_variable_y";
  case Opcode::PutValueX: return "put_value_x";
  case Opcode::PutValueY: return "put_value_y";
  case Opcode::PutConst: return "put_const";
  case Opcode::PutList: return "put_list";
  case Opcode::PutStructure: return "put_structure";
  case Opcode::UnifyVariableX: return "unify_variable_x";
  case Opcode::UnifyVariableY: return "unify_variable_y";
  case Opcode::UnifyValueX: return "unify_value_x";
  case Opcode::UnifyValueY: return "unify_value_y";
  case Opcode::UnifyConst: return "unify_const";
  case Opcode::UnifyVoid: return "unify_void";
  case Opcode::Allocate: return "allocate";
  case Opcode::Deallocate: return "deallocate";
  case Opcode::Call: return "call";
  case Opcode::Execute: return "execute";
  case Opcode::Proceed: return "proceed";
  case Opcode::Try: return "try";
  case Opcode::Retry: return "retry";
  case Opcode::Trust: return "trust";
  case Opcode::Jump: return "jump";
  case Opcode::Fail: return "fail";
  case Opcode::SwitchOnTerm: return "switch_on_term";
  case Opcode::SwitchOnConstant: return "switch_on_constant";
  case Opcode::SwitchOnStructure: return "switch_on_structure";
  case Opcode::NeckCut: return "neck_cut";
  case Opcode::GetLevel: return "get_level";
  case Opcode::CutY: return "cut_y";
  case Opcode::Builtin: return "builtin";
  case Opcode::Halt: return "halt";
  case Opcode::GetListFused: return "get_list_fused";
  case Opcode::GetStructureFused: return "get_structure_fused";
  }
  return "<bad opcode>";
}
