//===- compiler/ProgramCompiler.h - Whole-program compilation ---*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a parsed program into a CodeModule: clause code blocks, per-
/// predicate first-argument indexing (switch_on_term plus
/// switch_on_constant / switch_on_structure with try/retry/trust chains),
/// and the predicate table. This module plays the role of the PLM compiler
/// in the paper's pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_COMPILER_PROGRAMCOMPILER_H
#define AWAM_COMPILER_PROGRAMCOMPILER_H

#include "compiler/CodeModule.h"
#include "support/Error.h"
#include "term/Parser.h"

#include <memory>

namespace awam {

/// A compiled program plus compilation metadata.
struct CompiledProgram {
  std::unique_ptr<CodeModule> Module;
  int MaxXReg = 0; ///< register file size any machine needs
  std::vector<int32_t> UndefinedPredicates; ///< called but never defined
  /// Static profile used by the Table 1 columns: argument places and
  /// predicate count of the source program.
  int NumArgs = 0;
  int NumPreds = 0;
};

/// Compiles \p Program. Address 0 of the module is a Halt instruction that
/// machines use as the top-level continuation.
Result<CompiledProgram> compileProgram(const ParsedProgram &Program,
                                       SymbolTable &Syms);

/// Convenience: parse + compile a source string.
Result<CompiledProgram> compileSource(std::string_view Source,
                                      SymbolTable &Syms, TermArena &Arena);

} // namespace awam

#endif // AWAM_COMPILER_PROGRAMCOMPILER_H
