//===- absdom/AbsBuiltins.cpp ---------------------------------------------===//

#include "absdom/AbsBuiltins.h"

#include "absdom/AbsOps.h"

#include <limits>
#include <optional>

using namespace awam;

namespace {

/// Evaluates an arithmetic expression whose value is determined in the
/// abstract store: integer literals combined with +/- (the only operators
/// with fixed pre-interned symbols — applyAbsBuiltin has no symbol
/// table). Returns nullopt when the value is not determined (abstract
/// leaves, other operators, overflow), which callers treat as "fall back
/// to the grounding approximation".
std::optional<int64_t> evalAbsArith(const Store &St, Cell C,
                                    int Depth = 32) {
  if (Depth <= 0)
    return std::nullopt;
  DerefResult D = St.deref(C);
  if (D.C.T == Tag::Int)
    return D.C.V;
  if (D.C.T != Tag::Str)
    return std::nullopt;
  const Cell &F = St.at(D.C.V);
  Symbol S = static_cast<Symbol>(F.V);
  int Arity = F.funArity();
  if ((S != SymbolTable::SymPlus && S != SymbolTable::SymMinus) ||
      Arity < 1 || Arity > 2)
    return std::nullopt;
  std::optional<int64_t> A = evalAbsArith(St, Cell::ref(D.C.V + 1), Depth - 1);
  if (!A)
    return std::nullopt;
  if (Arity == 1) {
    if (S == SymbolTable::SymPlus)
      return A;
    if (*A == std::numeric_limits<int64_t>::min())
      return std::nullopt;
    return -*A;
  }
  std::optional<int64_t> B = evalAbsArith(St, Cell::ref(D.C.V + 2), Depth - 1);
  if (!B)
    return std::nullopt;
  int64_t R = 0;
  if (S == SymbolTable::SymPlus ? __builtin_add_overflow(*A, *B, &R)
                                : __builtin_sub_overflow(*A, *B, &R))
    return std::nullopt;
  return R;
}

} // namespace

bool awam::applyAbsBuiltin(Store &St, BuiltinId Id,
                           std::span<const Cell> Args) {
    auto meetFresh = [&](Cell C, AbsKind K) {
    return absUnify(St, C, Cell::ref(St.push(Cell::abs(K))));
  };
  switch (Id) {
  case BuiltinId::Is:
    // A determined expression folds to its value; otherwise success
    // implies the expression evaluated (it was ground) and the result is
    // an integer.
    if (std::optional<int64_t> V = evalAbsArith(St, Args[1]))
      return absUnify(St, Args[0], Cell::integer(*V));
    return meetFresh(Args[1], AbsKind::Ground) && meetFresh(Args[0], AbsKind::IntT);
  case BuiltinId::ArithLt:
  case BuiltinId::ArithGt:
  case BuiltinId::ArithLe:
  case BuiltinId::ArithGe:
  case BuiltinId::ArithEq:
  case BuiltinId::ArithNe: {
    // Comparison chains over determined values decide definitely —
    // guards like 'N1 is N - 1, N1 >= 0' prune dead branches when N is a
    // literal (specialized call sites, unrolled drivers).
    std::optional<int64_t> A = evalAbsArith(St, Args[0]);
    std::optional<int64_t> B = evalAbsArith(St, Args[1]);
    if (A && B) {
      switch (Id) {
      case BuiltinId::ArithLt: return *A < *B;
      case BuiltinId::ArithGt: return *A > *B;
      case BuiltinId::ArithLe: return *A <= *B;
      case BuiltinId::ArithGe: return *A >= *B;
      case BuiltinId::ArithEq: return *A == *B;
      default:                 return *A != *B;
      }
    }
    return meetFresh(Args[0], AbsKind::Ground) &&
           meetFresh(Args[1], AbsKind::Ground);
  }
  case BuiltinId::Unify:
    return absUnify(St, Args[0], Args[1]);
  case BuiltinId::NotUnify: {
    // Success leaves no bindings. Fail only when the arguments are
    // certainly identical.
    DerefResult DA = St.deref(Args[0]);
    DerefResult DB = St.deref(Args[1]);
    if (DA.Addr != kNoAddr && DA.Addr == DB.Addr)
      return false;
    if ((DA.C.T == Tag::Con || DA.C.T == Tag::Int) && DA.C == DB.C)
      return false;
    return true;
  }
  case BuiltinId::StructEq:
    // Success implies the arguments are the identical term.
    return absUnify(St, Args[0], Args[1]);
  case BuiltinId::StructNe:
  case BuiltinId::TermLt:
  case BuiltinId::TermGt:
  case BuiltinId::TermLe:
  case BuiltinId::TermGe:
    return true;
  case BuiltinId::VarP: {
    DerefResult D = St.deref(Args[0]);
    if (D.C.T == Tag::Ref)
      return true;
    if (D.C.isAbs() && D.C.absKind() == AbsKind::Any) {
      // any /\ var = var.
      St.bind(D.Addr, Cell::ref(St.pushVar()));
      return true;
    }
    return false;
  }
  case BuiltinId::NonvarP: {
    DerefResult D = St.deref(Args[0]);
    if (D.C.T == Tag::Ref)
      return false;
    if (D.C.isAbs() && D.C.absKind() == AbsKind::Any)
      return meetFresh(Args[0], AbsKind::NV);
    return true;
  }
  case BuiltinId::AtomP:
    if (isVarCell(St, Args[0]))
      return false;
    return meetFresh(Args[0], AbsKind::AtomT);
  case BuiltinId::IntegerP:
  case BuiltinId::NumberP:
    if (isVarCell(St, Args[0]))
      return false;
    return meetFresh(Args[0], AbsKind::IntT);
  case BuiltinId::AtomicP:
    if (isVarCell(St, Args[0]))
      return false;
    return meetFresh(Args[0], AbsKind::Const);
  case BuiltinId::CompoundP: {
    DerefResult D = St.deref(Args[0]);
    switch (D.C.T) {
    case Tag::Lis:
    case Tag::Str:
      return true;
    case Tag::Abs:
      switch (D.C.absKind()) {
      case AbsKind::Any:
      case AbsKind::NV:
      case AbsKind::Ground:
      case AbsKind::List:
        return true; // may be compound; no narrowing representable
      default:
        return false;
      }
    default:
      return false;
    }
  }
  case BuiltinId::Functor: {
    DerefResult D = St.deref(Args[0]);
    switch (D.C.T) {
    case Tag::Con:
    case Tag::Int:
      return absUnify(St, Args[1], D.C) &&
             absUnify(St, Args[2], Cell::integer(0));
    case Tag::Lis:
      return absUnify(St, Args[1], Cell::atom(SymbolTable::SymDot)) &&
             absUnify(St, Args[2], Cell::integer(2));
    case Tag::Str: {
      const Cell F = St.at(D.C.V);
      return absUnify(St, Args[1], Cell::atom(static_cast<Symbol>(F.V))) &&
             absUnify(St, Args[2], Cell::integer(F.funArity()));
    }
    default: {
      // Construction mode with determined name and arity builds the term
      // exactly as the concrete machine does: functor(X, f, 2) narrows X
      // to f(_, _) (fresh variables), arity 0 to the constant itself.
      DerefResult DN = St.deref(Args[1]);
      DerefResult DA = St.deref(Args[2]);
      if (DA.C.T == Tag::Int) {
        int64_t N = DA.C.V;
        if (N == 0 && (DN.C.T == Tag::Con || DN.C.T == Tag::Int))
          return absUnify(St, Args[0], DN.C);
        if (N > 0 && DN.C.T == Tag::Con) {
          if (static_cast<Symbol>(DN.C.V) == SymbolTable::SymDot && N == 2) {
            int64_t Base = St.pushVar();
            St.pushVar();
            return absUnify(St, Args[0], Cell::lis(Base));
          }
          int64_t FunAddr = St.push(
              Cell::fun(static_cast<Symbol>(DN.C.V), static_cast<int>(N)));
          for (int64_t I = 0; I != N; ++I)
            St.pushVar();
          return absUnify(St, Args[0], Cell::str(FunAddr));
        }
      }
      // Unknown or under-construction: name is a constant, arity an
      // integer, and on success the term is nonvar.
      return meetFresh(Args[0], AbsKind::NV) &&
             meetFresh(Args[1], AbsKind::Const) &&
             meetFresh(Args[2], AbsKind::IntT);
    }
    }
  }
  case BuiltinId::Arg: {
    if (!meetFresh(Args[0], AbsKind::IntT))
      return false;
    DerefResult DT = St.deref(Args[1]);
    if (DT.C.T == Tag::Ref)
      return false; // arg/3 on a variable fails/errors concretely
    if (DT.C.T == Tag::Con || DT.C.T == Tag::Int)
      return false; // ... as does arg/3 on an atomic term
    DerefResult DN = St.deref(Args[0]);
    if (DN.C.T == Tag::Int && DT.C.T == Tag::Str) {
      const Cell F = St.at(DT.C.V);
      if (DN.C.V < 1 || DN.C.V > F.funArity())
        return false;
      return absUnify(St, Args[2], Cell::ref(DT.C.V + DN.C.V));
    }
    if (DN.C.T == Tag::Int && DT.C.T == Tag::Lis) {
      if (DN.C.V < 1 || DN.C.V > 2)
        return false;
      return absUnify(St, Args[2], Cell::ref(DT.C.V + DN.C.V - 1));
    }
    if (DN.C.T == Tag::Int && DT.C.T == Tag::Abs &&
        DT.C.absKind() == AbsKind::List) {
      // Success implies the list was a cons cell: argument 1 is an
      // instance of the element type, argument 2 another such list.
      if (DN.C.V < 1 || DN.C.V > 2)
        return false;
      if (DN.C.V == 1)
        return absUnify(St, Args[2],
                        Cell::ref(copyAbs(St, Cell::ref(DT.C.V))));
      int64_t Tail = St.push(Cell::abs(AbsKind::List, DT.C.V));
      return absUnify(St, Args[2], Cell::ref(Tail));
    }
    if (isGroundCell(St, DT.C))
      return meetFresh(Args[2], AbsKind::Ground);
    return true;
  }
  case BuiltinId::Univ: {
    DerefResult D = St.deref(Args[0]);
    // Decompose: a determined term lists its name and argument cells
    // exactly as the concrete machine does (the built list shares the
    // term's argument cells, so narrowing flows both ways).
    if (D.C.T == Tag::Con || D.C.T == Tag::Int || D.C.T == Tag::Lis ||
        D.C.T == Tag::Str) {
      std::vector<Cell> Items;
      if (D.C.T == Tag::Con || D.C.T == Tag::Int) {
        Items.push_back(D.C);
      } else if (D.C.T == Tag::Lis) {
        Items.push_back(Cell::atom(SymbolTable::SymDot));
        Items.push_back(Cell::ref(D.C.V));
        Items.push_back(Cell::ref(D.C.V + 1));
      } else {
        const Cell F = St.at(D.C.V);
        Items.push_back(Cell::atom(static_cast<Symbol>(F.V)));
        for (int I = 1; I <= F.funArity(); ++I)
          Items.push_back(Cell::ref(D.C.V + I));
      }
      Cell ListCell = Cell::atom(SymbolTable::SymNil);
      for (size_t I = Items.size(); I != 0; --I) {
        int64_t Base = St.push(Items[I - 1]);
        St.push(ListCell);
        ListCell = Cell::lis(Base);
      }
      return absUnify(St, Args[1], ListCell);
    }
    // Construction: a determined proper list on the right builds the
    // term, mirroring the concrete machine (the term shares the list's
    // element cells).
    {
      std::vector<Cell> Items;
      DerefResult L = St.deref(Args[1]);
      while (L.C.T == Tag::Lis) {
        Items.push_back(Cell::ref(L.C.V));
        L = St.deref(Cell::ref(L.C.V + 1));
      }
      if (L.C.T == Tag::Con && L.C.V == SymbolTable::SymNil &&
          !Items.empty()) {
        DerefResult Head = St.deref(Items[0]);
        if (Items.size() == 1)
          return absUnify(St, Args[0], Items[0]);
        if (Head.C.T == Tag::Con) {
          if (static_cast<Symbol>(Head.C.V) == SymbolTable::SymDot &&
              Items.size() == 3) {
            int64_t Base = St.push(Items[1]);
            St.push(Items[2]);
            return absUnify(St, Args[0], Cell::lis(Base));
          }
          int64_t FunAddr =
              St.push(Cell::fun(static_cast<Symbol>(Head.C.V),
                                static_cast<int>(Items.size()) - 1));
          for (size_t I = 1; I != Items.size(); ++I)
            St.push(Items[I]);
          return absUnify(St, Args[0], Cell::str(FunAddr));
        }
        if (Head.C.T == Tag::Int || Head.C.T == Tag::Lis ||
            Head.C.T == Tag::Str)
          return false; // the functor of a compound must be an atom
      }
    }
    bool G = D.C.T != Tag::Ref && isGroundCell(St, D.C);
    // X0 =.. X1: X0 is nonvar on success, X1 a list (of ground parts when
    // X0 is ground).
    int64_t Elem = St.push(Cell::abs(G ? AbsKind::Ground : AbsKind::Any));
    int64_t L = St.push(Cell::abs(AbsKind::List, Elem));
    return meetFresh(Args[0], AbsKind::NV) &&
           absUnify(St, Args[1], Cell::ref(L));
  }
  case BuiltinId::Write:
  case BuiltinId::Nl:
    return true;
  case BuiltinId::Tab:
    return meetFresh(Args[0], AbsKind::Ground);
  case BuiltinId::HaltB:
    // Treated as success during analysis (documented approximation).
    return true;
  case BuiltinId::NumBuiltins:
    break;
  }
  assert(false && "unknown builtin id");
  return true;
}
