//===- absdom/AbsBuiltins.cpp ---------------------------------------------===//

#include "absdom/AbsBuiltins.h"

#include "absdom/AbsOps.h"

using namespace awam;

bool awam::applyAbsBuiltin(Store &St, BuiltinId Id,
                           std::span<const Cell> Args) {
    auto meetFresh = [&](Cell C, AbsKind K) {
    return absUnify(St, C, Cell::ref(St.push(Cell::abs(K))));
  };
  switch (Id) {
  case BuiltinId::Is:
    // Success implies: the expression evaluated (it was ground) and the
    // result is an integer.
    return meetFresh(Args[1], AbsKind::Ground) && meetFresh(Args[0], AbsKind::IntT);
  case BuiltinId::ArithLt:
  case BuiltinId::ArithGt:
  case BuiltinId::ArithLe:
  case BuiltinId::ArithGe:
  case BuiltinId::ArithEq:
  case BuiltinId::ArithNe:
    return meetFresh(Args[0], AbsKind::Ground) &&
           meetFresh(Args[1], AbsKind::Ground);
  case BuiltinId::Unify:
    return absUnify(St, Args[0], Args[1]);
  case BuiltinId::NotUnify: {
    // Success leaves no bindings. Fail only when the arguments are
    // certainly identical.
    DerefResult DA = St.deref(Args[0]);
    DerefResult DB = St.deref(Args[1]);
    if (DA.Addr != kNoAddr && DA.Addr == DB.Addr)
      return false;
    if ((DA.C.T == Tag::Con || DA.C.T == Tag::Int) && DA.C == DB.C)
      return false;
    return true;
  }
  case BuiltinId::StructEq:
    // Success implies the arguments are the identical term.
    return absUnify(St, Args[0], Args[1]);
  case BuiltinId::StructNe:
  case BuiltinId::TermLt:
  case BuiltinId::TermGt:
  case BuiltinId::TermLe:
  case BuiltinId::TermGe:
    return true;
  case BuiltinId::VarP: {
    DerefResult D = St.deref(Args[0]);
    if (D.C.T == Tag::Ref)
      return true;
    if (D.C.isAbs() && D.C.absKind() == AbsKind::Any) {
      // any /\ var = var.
      St.bind(D.Addr, Cell::ref(St.pushVar()));
      return true;
    }
    return false;
  }
  case BuiltinId::NonvarP: {
    DerefResult D = St.deref(Args[0]);
    if (D.C.T == Tag::Ref)
      return false;
    if (D.C.isAbs() && D.C.absKind() == AbsKind::Any)
      return meetFresh(Args[0], AbsKind::NV);
    return true;
  }
  case BuiltinId::AtomP:
    if (isVarCell(St, Args[0]))
      return false;
    return meetFresh(Args[0], AbsKind::AtomT);
  case BuiltinId::IntegerP:
  case BuiltinId::NumberP:
    if (isVarCell(St, Args[0]))
      return false;
    return meetFresh(Args[0], AbsKind::IntT);
  case BuiltinId::AtomicP:
    if (isVarCell(St, Args[0]))
      return false;
    return meetFresh(Args[0], AbsKind::Const);
  case BuiltinId::CompoundP: {
    DerefResult D = St.deref(Args[0]);
    switch (D.C.T) {
    case Tag::Lis:
    case Tag::Str:
      return true;
    case Tag::Abs:
      switch (D.C.absKind()) {
      case AbsKind::Any:
      case AbsKind::NV:
      case AbsKind::Ground:
      case AbsKind::List:
        return true; // may be compound; no narrowing representable
      default:
        return false;
      }
    default:
      return false;
    }
  }
  case BuiltinId::Functor: {
    DerefResult D = St.deref(Args[0]);
    switch (D.C.T) {
    case Tag::Con:
    case Tag::Int:
      return absUnify(St, Args[1], D.C) &&
             absUnify(St, Args[2], Cell::integer(0));
    case Tag::Lis:
      return absUnify(St, Args[1], Cell::atom(SymbolTable::SymDot)) &&
             absUnify(St, Args[2], Cell::integer(2));
    case Tag::Str: {
      const Cell F = St.at(D.C.V);
      return absUnify(St, Args[1], Cell::atom(static_cast<Symbol>(F.V))) &&
             absUnify(St, Args[2], Cell::integer(F.funArity()));
    }
    default:
      // Unknown or under-construction: name is a constant, arity an
      // integer, and on success the term is nonvar.
      return meetFresh(Args[0], AbsKind::NV) &&
             meetFresh(Args[1], AbsKind::Const) &&
             meetFresh(Args[2], AbsKind::IntT);
    }
  }
  case BuiltinId::Arg: {
    if (!meetFresh(Args[0], AbsKind::IntT))
      return false;
    DerefResult DT = St.deref(Args[1]);
    if (DT.C.T == Tag::Ref)
      return false; // arg/3 on a variable fails/errors concretely
    DerefResult DN = St.deref(Args[0]);
    if (DN.C.T == Tag::Int && DT.C.T == Tag::Str) {
      const Cell F = St.at(DT.C.V);
      if (DN.C.V < 1 || DN.C.V > F.funArity())
        return false;
      return absUnify(St, Args[2], Cell::ref(DT.C.V + DN.C.V));
    }
    if (DN.C.T == Tag::Int && DT.C.T == Tag::Lis) {
      if (DN.C.V < 1 || DN.C.V > 2)
        return false;
      return absUnify(St, Args[2], Cell::ref(DT.C.V + DN.C.V - 1));
    }
    if (isGroundCell(St, DT.C))
      return meetFresh(Args[2], AbsKind::Ground);
    return true;
  }
  case BuiltinId::Univ: {
    DerefResult D = St.deref(Args[0]);
    bool G = D.C.T != Tag::Ref && isGroundCell(St, D.C);
    // X0 =.. X1: X0 is nonvar on success, X1 a list (of ground parts when
    // X0 is ground).
    int64_t Elem = St.push(Cell::abs(G ? AbsKind::Ground : AbsKind::Any));
    int64_t L = St.push(Cell::abs(AbsKind::List, Elem));
    return meetFresh(Args[0], AbsKind::NV) &&
           absUnify(St, Args[1], Cell::ref(L));
  }
  case BuiltinId::Write:
  case BuiltinId::Nl:
    return true;
  case BuiltinId::Tab:
    return meetFresh(Args[0], AbsKind::Ground);
  case BuiltinId::HaltB:
    // Treated as success during analysis (documented approximation).
    return true;
  case BuiltinId::NumBuiltins:
    break;
  }
  assert(false && "unknown builtin id");
  return true;
}
