//===- absdom/AbsOps.cpp - Abstract domain operations ---------------------===//

#include "absdom/AbsOps.h"

#include <algorithm>
#include <set>

using namespace awam;

namespace {

/// Binds the (unbound or abstract) cell at \p Addr so it denotes the same
/// value as \p Target. Abstract targets are referenced by address so that
/// later refinement of the target is seen through this cell (aliasing);
/// immutable values are stored directly.
void bindTo(Store &St, int64_t Addr, const DerefResult &Target) {
  if (Target.C.isAbs()) {
    assert(Target.Addr != kNoAddr && "abstract cell without address");
    St.bind(Addr, Cell::ref(Target.Addr));
    return;
  }
  St.bind(Addr, Target.C);
}

/// Pushes a fresh abstract cell of simple kind \p K.
int64_t freshAbs(Store &St, AbsKind K) { return St.push(Cell::abs(K)); }

/// Meet of two abstract *kinds* on the simple chain
/// atom/int < const < ground < nv < any. Returns false for empty meet.
/// List kinds are handled by the callers.
bool meetSimpleKind(AbsKind A, AbsKind B, AbsKind &Out) {
  auto Level = [](AbsKind K) {
    switch (K) {
    case AbsKind::AtomT:
    case AbsKind::IntT: return 0;
    case AbsKind::Const: return 1;
    case AbsKind::Ground: return 2;
    case AbsKind::NV: return 3;
    case AbsKind::Any: return 4;
    default: return -1;
    }
  };
  int LA = Level(A), LB = Level(B);
  assert(LA >= 0 && LB >= 0 && "list kind reached meetSimpleKind");
  if (LA == 0 && LB == 0) {
    if (A != B)
      return false; // atom /\ integer = empty
    Out = A;
    return true;
  }
  Out = LA < LB ? A : B;
  return true;
}

bool absMeet(Store &St, DerefResult DA, DerefResult DB);

/// Compound-node pairs currently being unified; revisiting a pair means a
/// cyclic (rational) term, which unifies coinductively. Thread-unsafe by
/// design (machines are single-threaded); depth of live absUnify
/// recursions is reflected by pushes/pops below.
thread_local std::vector<std::pair<int64_t, int64_t>> UnifyInProgress;

struct UnifyPairScope {
  bool Cycle;
  UnifyPairScope(int64_t A, int64_t B) {
    for (auto [X, Y] : UnifyInProgress)
      if ((X == A && Y == B) || (X == B && Y == A)) {
        Cycle = true;
        return;
      }
    Cycle = false;
    UnifyInProgress.emplace_back(A, B);
  }
  ~UnifyPairScope() {
    if (!Cycle)
      UnifyInProgress.pop_back();
  }
};

/// Overwrites (with trailing) every free variable reachable from \p C with
/// `any`. Used when a term unifies with an unknown non-variable value
/// (s_unify(any, f(X, Y)) = f(any, any) with {X/any, Y/any} — the paper's
/// Section 4.1 example): the variables are bound to unknown subterms.
void bindFreeVarsToAny(Store &St, Cell C, int Fuel = 64) {
  if (Fuel <= 0)
    return;
  DerefResult D = St.deref(C);
  switch (D.C.T) {
  case Tag::Ref:
    St.bind(D.Addr, Cell::abs(AbsKind::Any));
    return;
  case Tag::Lis:
    bindFreeVarsToAny(St, Cell::ref(D.C.V), Fuel - 1);
    bindFreeVarsToAny(St, Cell::ref(D.C.V + 1), Fuel - 1);
    return;
  case Tag::Str: {
    const Cell F = St.at(D.C.V);
    for (int I = 1; I <= F.funArity(); ++I)
      bindFreeVarsToAny(St, Cell::ref(D.C.V + I), Fuel - 1);
    return;
  }
  default:
    return; // constants and abstract cells contain no free variables
  }
}

} // namespace

bool awam::absUnify(Store &St, Cell A, Cell B) {
  DerefResult DA = St.deref(A);
  DerefResult DB = St.deref(B);
  if (DA.Addr != kNoAddr && DA.Addr == DB.Addr)
    return true;

  bool AVar = DA.C.T == Tag::Ref;
  bool BVar = DB.C.T == Tag::Ref;
  if (AVar && BVar) {
    if (DA.Addr < DB.Addr)
      St.bind(DB.Addr, Cell::ref(DA.Addr));
    else
      St.bind(DA.Addr, Cell::ref(DB.Addr));
    return true;
  }
  if (AVar) {
    bindTo(St, DA.Addr, DB);
    return true;
  }
  if (BVar) {
    bindTo(St, DB.Addr, DA);
    return true;
  }

  if (DA.C.isAbs() || DB.C.isAbs())
    return absMeet(St, DA, DB);

  // Both concrete: structural unification, recursing through absUnify so
  // abstract subterms meet correctly.
  if (DA.C.T != DB.C.T)
    return false;
  switch (DA.C.T) {
  case Tag::Con:
  case Tag::Int:
    return DA.C.V == DB.C.V;
  case Tag::Lis: {
    UnifyPairScope Scope(DA.Addr, DB.Addr);
    if (Scope.Cycle)
      return true; // rational trees unify coinductively
    if (!absUnify(St, Cell::ref(DA.C.V), Cell::ref(DB.C.V)) ||
        !absUnify(St, Cell::ref(DA.C.V + 1), Cell::ref(DB.C.V + 1)))
      return false;
    // The two cells now denote the same term; alias them so abstraction
    // sees one node (keeps the compiled and interpreted analyses in
    // lock-step).
    if (DA.Addr != kNoAddr && DB.Addr != kNoAddr && DA.Addr != DB.Addr)
      St.bind(DA.Addr, Cell::ref(DB.Addr));
    return true;
  }
  case Tag::Str: {
    const Cell FA = St.at(DA.C.V);
    const Cell FB = St.at(DB.C.V);
    if (FA.V != FB.V || FA.funArity() != FB.funArity())
      return false;
    UnifyPairScope Scope(DA.Addr, DB.Addr);
    if (Scope.Cycle)
      return true; // rational trees unify coinductively
    for (int I = 1; I <= FA.funArity(); ++I)
      if (!absUnify(St, Cell::ref(DA.C.V + I), Cell::ref(DB.C.V + I)))
        return false;
    if (DA.Addr != kNoAddr && DB.Addr != kNoAddr && DA.Addr != DB.Addr)
      St.bind(DA.Addr, Cell::ref(DB.Addr));
    return true;
  }
  default:
    return false;
  }
}

namespace {

/// Meet where at least one side is an abstract cell. Implements the
/// s_unify table of the paper's Section 4.1 plus ComplexTermInst.
bool absMeet(Store &St, DerefResult DA, DerefResult DB) {
  if (!DA.C.isAbs())
    std::swap(DA, DB);
  AbsKind KA = DA.C.absKind();

  // any /\ X = X; free variables inside an unknown term become `any`.
  if (KA == AbsKind::Any) {
    bindTo(St, DA.Addr, DB);
    if (DB.C.T == Tag::Lis || DB.C.T == Tag::Str)
      bindFreeVarsToAny(St, DB.C);
    return true;
  }

  if (DB.C.isAbs()) {
    AbsKind KB = DB.C.absKind();
    if (KB == AbsKind::Any) {
      bindTo(St, DB.Addr, DA);
      return true;
    }
    bool AList = KA == AbsKind::List;
    bool BList = KB == AbsKind::List;
    if (AList && BList) {
      // (alpha-list) /\ (beta-list) = (alpha /\ beta)-list.
      if (!absUnify(St, Cell::ref(DA.C.V), Cell::ref(DB.C.V)))
        return false;
      bindTo(St, DA.Addr, DB);
      return true;
    }
    if (AList || BList) {
      if (BList) // make DA the list side
        std::swap(DA, DB), std::swap(KA, KB);
      switch (KB) {
      case AbsKind::NV:
        bindTo(St, DB.Addr, DA);
        return true;
      case AbsKind::Ground: {
        // list(alpha) /\ g = list(alpha /\ g).
        int64_t G = freshAbs(St, AbsKind::Ground);
        if (!absUnify(St, Cell::ref(DA.C.V), Cell::ref(G)))
          return false;
        bindTo(St, DB.Addr, DA);
        return true;
      }
      case AbsKind::Const:
      case AbsKind::AtomT: {
        // The only constant list is '[]'.
        Cell Nil = Cell::atom(SymbolTable::SymNil);
        St.bind(DA.Addr, Nil);
        St.bind(DB.Addr, Nil);
        return true;
      }
      case AbsKind::IntT:
        return false;
      default:
        return false; // unreachable: Any/List handled above
      }
    }
    // Both on the simple chain.
    AbsKind K;
    if (!meetSimpleKind(KA, KB, K))
      return false;
    if (K == KA)
      bindTo(St, DB.Addr, DA);
    else if (K == KB)
      bindTo(St, DA.Addr, DB);
    else {
      int64_t N = freshAbs(St, K);
      DerefResult DN = St.deref(Cell::ref(N));
      bindTo(St, DA.Addr, DN);
      bindTo(St, DB.Addr, DN);
    }
    return true;
  }

  // Abstract (DA) against concrete (DB).
  switch (KA) {
  case AbsKind::NV:
    bindTo(St, DA.Addr, DB);
    if (DB.C.T == Tag::Lis || DB.C.T == Tag::Str)
      bindFreeVarsToAny(St, DB.C);
    return true;

  case AbsKind::Ground:
    switch (DB.C.T) {
    case Tag::Con:
    case Tag::Int:
      bindTo(St, DA.Addr, DB);
      return true;
    case Tag::Lis: {
      // g /\ [H|T] = [g /\ H | g /\ T].
      bindTo(St, DA.Addr, DB);
      int64_t G1 = freshAbs(St, AbsKind::Ground);
      int64_t G2 = freshAbs(St, AbsKind::Ground);
      return absUnify(St, Cell::ref(DB.C.V), Cell::ref(G1)) &&
             absUnify(St, Cell::ref(DB.C.V + 1), Cell::ref(G2));
    }
    case Tag::Str: {
      bindTo(St, DA.Addr, DB);
      const Cell F = St.at(DB.C.V);
      for (int I = 1; I <= F.funArity(); ++I) {
        int64_t G = freshAbs(St, AbsKind::Ground);
        if (!absUnify(St, Cell::ref(DB.C.V + I), Cell::ref(G)))
          return false;
      }
      return true;
    }
    default:
      return false;
    }

  case AbsKind::Const:
    if (DB.C.T != Tag::Con && DB.C.T != Tag::Int)
      return false;
    bindTo(St, DA.Addr, DB);
    return true;

  case AbsKind::AtomT:
    if (DB.C.T != Tag::Con)
      return false;
    bindTo(St, DA.Addr, DB);
    return true;

  case AbsKind::IntT:
    if (DB.C.T != Tag::Int)
      return false;
    bindTo(St, DA.Addr, DB);
    return true;

  case AbsKind::List:
    switch (DB.C.T) {
    case Tag::Con:
      if (DB.C.V != SymbolTable::SymNil)
        return false;
      bindTo(St, DA.Addr, DB);
      return true;
    case Tag::Lis: {
      // alpha-list /\ [H|T] = [alpha /\ H | alpha-list /\ T]: the car gets
      // a fresh *instance* of alpha (ComplexTermInst), the cdr a fresh
      // alpha-list sharing the element-type cell.
      int64_t Param = DA.C.V;
      bindTo(St, DA.Addr, DB);
      int64_t ElemInst = copyAbs(St, Cell::ref(Param));
      if (!absUnify(St, Cell::ref(DB.C.V), Cell::ref(ElemInst)))
        return false;
      int64_t TailList = St.push(Cell::abs(AbsKind::List, Param));
      return absUnify(St, Cell::ref(DB.C.V + 1), Cell::ref(TailList));
    }
    default:
      return false;
    }

  case AbsKind::Any:
  case AbsKind::Var:
    break; // handled earlier / not used as cell kinds
  }
  assert(false && "unhandled abstract meet case");
  return false;
}

} // namespace

int64_t awam::copyAbs(Store &St, Cell C, int MaxDepth) {
  struct Copier {
    Store &St;
    // Copied values are depth-cut, so a linear scan over a flat vector
    // beats a tree map (same reasoning as LubContext's memo).
    std::vector<std::pair<int64_t, int64_t>> Memo;

    int64_t copy(Cell C, int Depth) {
      DerefResult D = St.deref(C);
      if (D.Addr != kNoAddr)
        for (auto [Addr, Out] : Memo)
          if (Addr == D.Addr)
            return Out;
      int64_t Out = copyUncached(D, Depth);
      if (D.Addr != kNoAddr)
        Memo.emplace_back(D.Addr, Out);
      return Out;
    }

    int64_t copyUncached(const DerefResult &D, int Depth) {
      switch (D.C.T) {
      case Tag::Ref:
        // A free variable inside a copied abstract value widens to `any`:
        // the copy must not claim var-ness for a term whose original may be
        // instantiated through an alias the copy cannot see.
        return St.push(Cell::abs(AbsKind::Any));
      case Tag::Con:
      case Tag::Int:
        return St.push(D.C);
      case Tag::Abs:
        if (D.C.absKind() == AbsKind::List) {
          int64_t P = copy(Cell::ref(D.C.V), Depth - 1);
          return St.push(Cell::abs(AbsKind::List, P));
        }
        return St.push(D.C);
      case Tag::Lis: {
        if (Depth <= 0)
          return St.push(Cell::abs(isGroundCell(St, D.C) ? AbsKind::Ground
                                                         : AbsKind::NV));
        int64_t Car = copy(Cell::ref(D.C.V), Depth - 1);
        int64_t Cdr = copy(Cell::ref(D.C.V + 1), Depth - 1);
        int64_t Base = St.push(Cell::ref(Car));
        St.push(Cell::ref(Cdr));
        return St.push(Cell::lis(Base));
      }
      case Tag::Str: {
        if (Depth <= 0)
          return St.push(Cell::abs(isGroundCell(St, D.C) ? AbsKind::Ground
                                                         : AbsKind::NV));
        const Cell F = St.at(D.C.V);
        std::vector<int64_t> Args;
        for (int I = 1; I <= F.funArity(); ++I)
          Args.push_back(copy(Cell::ref(D.C.V + I), Depth - 1));
        int64_t FunAddr = St.push(F);
        for (int64_t A : Args)
          St.push(Cell::ref(A));
        return St.push(Cell::str(FunAddr));
      }
      case Tag::Fun:
      case Tag::Ctl:
        assert(false && "copyAbs on non-term cell");
        return St.push(Cell::abs(AbsKind::Any));
      }
      return 0;
    }
  };
  return Copier{St, {}}.copy(C, MaxDepth);
}

bool awam::isGroundCell(const Store &St, Cell C, int MaxDepth) {
  if (MaxDepth <= 0)
    return false; // conservative on very deep / cyclic structures
  DerefResult D = St.deref(C);
  switch (D.C.T) {
  case Tag::Con:
  case Tag::Int:
    return true;
  case Tag::Ref:
    return false;
  case Tag::Abs:
    switch (D.C.absKind()) {
    case AbsKind::Ground:
    case AbsKind::Const:
    case AbsKind::AtomT:
    case AbsKind::IntT:
      return true;
    case AbsKind::List:
      return isGroundCell(St, Cell::ref(D.C.V), MaxDepth - 1);
    default:
      return false;
    }
  case Tag::Lis:
    return isGroundCell(St, Cell::ref(D.C.V), MaxDepth - 1) &&
           isGroundCell(St, Cell::ref(D.C.V + 1), MaxDepth - 1);
  case Tag::Str: {
    const Cell F = St.at(D.C.V);
    for (int I = 1; I <= F.funArity(); ++I)
      if (!isGroundCell(St, Cell::ref(D.C.V + I), MaxDepth - 1))
        return false;
    return true;
  }
  case Tag::Fun:
  case Tag::Ctl:
    return false;
  }
  return false;
}

namespace {

bool collectLeavesRec(const Store &St, Cell C, std::vector<int64_t> &Leaves,
                      std::vector<int64_t> &Visited, int &Fuel) {
  if (--Fuel <= 0)
    return false;
  auto AddLeaf = [&](int64_t Addr) {
    if (std::find(Leaves.begin(), Leaves.end(), Addr) == Leaves.end())
      Leaves.push_back(Addr);
  };
  // Dedupe on the address of the pointed-to region: terminates cycles and
  // keeps shared substructure from being walked twice.
  auto Enter = [&](int64_t Addr) {
    if (std::find(Visited.begin(), Visited.end(), Addr) != Visited.end())
      return false;
    Visited.push_back(Addr);
    return true;
  };
  DerefResult D = St.deref(C);
  switch (D.C.T) {
  case Tag::Con:
  case Tag::Int:
    return true;
  case Tag::Ref:
    // Unbound variable: the leaf itself.
    if (D.Addr == kNoAddr)
      return false;
    AddLeaf(D.Addr);
    return true;
  case Tag::Abs:
    switch (D.C.absKind()) {
    case AbsKind::Ground:
    case AbsKind::Const:
    case AbsKind::AtomT:
    case AbsKind::IntT:
      return true;
    case AbsKind::List:
      // An alpha-list is ground exactly when its element type is.
      return !Enter(D.C.V) ||
             collectLeavesRec(St, Cell::ref(D.C.V), Leaves, Visited, Fuel);
    case AbsKind::Any:
    case AbsKind::NV:
    case AbsKind::Var:
      if (D.Addr == kNoAddr)
        return false;
      AddLeaf(D.Addr);
      return true;
    }
    return false;
  case Tag::Lis:
    return !Enter(D.C.V) ||
           (collectLeavesRec(St, Cell::ref(D.C.V), Leaves, Visited, Fuel) &&
            collectLeavesRec(St, Cell::ref(D.C.V + 1), Leaves, Visited,
                             Fuel));
  case Tag::Str: {
    if (!Enter(D.C.V))
      return true;
    const Cell F = St.at(D.C.V);
    for (int I = 1; I <= F.funArity(); ++I)
      if (!collectLeavesRec(St, Cell::ref(D.C.V + I), Leaves, Visited, Fuel))
        return false;
    return true;
  }
  case Tag::Fun:
  case Tag::Ctl:
    return false;
  }
  return false;
}

} // namespace

bool awam::collectNongroundLeaves(const Store &St, Cell C,
                                  std::vector<int64_t> &Leaves,
                                  std::vector<int64_t> &Visited, int Fuel) {
  return collectLeavesRec(St, C, Leaves, Visited, Fuel);
}

namespace {

/// Overwrites every free-variable cell reachable from \p C with `any`.
/// Only used on freshly built lub results (no trailing needed).
void widenVarsToAny(Store &St, Cell C, int Fuel = 64) {
  if (Fuel <= 0)
    return;
  DerefResult D = St.deref(C);
  switch (D.C.T) {
  case Tag::Ref:
    St.at(D.Addr) = Cell::abs(AbsKind::Any);
    return;
  case Tag::Lis:
    widenVarsToAny(St, Cell::ref(D.C.V), Fuel - 1);
    widenVarsToAny(St, Cell::ref(D.C.V + 1), Fuel - 1);
    return;
  case Tag::Str: {
    const Cell F = St.at(D.C.V);
    for (int I = 1; I <= F.funArity(); ++I)
      widenVarsToAny(St, Cell::ref(D.C.V + I), Fuel - 1);
    return;
  }
  case Tag::Abs:
    if (D.C.absKind() == AbsKind::List)
      widenVarsToAny(St, Cell::ref(D.C.V), Fuel - 1);
    return;
  default:
    return;
  }
}

/// Join levels on the simple chain; AtomT and IntT join to Const.
AbsKind joinSimple(AbsKind A, AbsKind B) {
  auto Level = [](AbsKind K) {
    switch (K) {
    case AbsKind::AtomT:
    case AbsKind::IntT: return 0;
    case AbsKind::Const: return 1;
    case AbsKind::Ground: return 2;
    case AbsKind::NV: return 3;
    default: return 4;
    }
  };
  if (Level(A) == 0 && Level(B) == 0)
    return A == B ? A : AbsKind::Const;
  return Level(A) >= Level(B) ? A : B;
}

} // namespace

std::optional<std::vector<Cell>> LubContext::listElems(Cell C, int Fuel) {
  std::vector<Cell> Elems;
  Cell Cur = C;
  while (Fuel-- > 0) {
    DerefResult D = St.deref(Cur);
    if (D.C.T == Tag::Con && D.C.V == SymbolTable::SymNil)
      return Elems;
    if (D.C.T == Tag::Abs && D.C.absKind() == AbsKind::List) {
      Elems.push_back(Cell::ref(D.C.V));
      return Elems;
    }
    if (D.C.T == Tag::Lis) {
      Elems.push_back(Cell::ref(D.C.V));
      Cur = Cell::ref(D.C.V + 1);
      continue;
    }
    return std::nullopt; // improper list
  }
  return std::nullopt;
}

int64_t LubContext::joinViaGroundness(const DerefResult &DA,
                                      const DerefResult &DB) {
  // Map each side to its best simple kind, then join.
  auto SimpleOf = [&](const DerefResult &D) {
    switch (D.C.T) {
    case Tag::Con: return AbsKind::AtomT;
    case Tag::Int: return AbsKind::IntT;
    case Tag::Abs:
      if (D.C.absKind() != AbsKind::List)
        return D.C.absKind();
      [[fallthrough]];
    default:
      return isGroundCell(St, D.C) ? AbsKind::Ground : AbsKind::NV;
    }
  };
  return St.push(Cell::abs(joinSimple(SimpleOf(DA), SimpleOf(DB))));
}

int64_t LubContext::lub(Cell A, Cell B) {
  DerefResult DA = St.deref(A);
  DerefResult DB = St.deref(B);

  auto Key = std::make_pair(DA.Addr, DB.Addr);
  bool Memoizable = DA.Addr != kNoAddr && DB.Addr != kNoAddr;
  if (Memoizable)
    for (const auto &[K, R] : Memo)
      if (K == Key)
        return R;

  // Detect sharing present on one side only: a node paired with two
  // different partners. All var results produced with that node must widen
  // to `any` (see the header comment).
  auto notePartner = [](std::vector<std::pair<int64_t, int64_t>> &Partners,
                        int64_t Node, int64_t Partner) {
    for (auto &[N, P] : Partners)
      if (N == Node)
        return P != Partner;
    Partners.emplace_back(Node, Partner);
    return false;
  };
  bool Broken = false;
  if (DA.Addr != kNoAddr)
    Broken |= notePartner(PartnerOfA, DA.Addr, DB.Addr);
  if (DB.Addr != kNoAddr)
    Broken |= notePartner(PartnerOfB, DB.Addr, DA.Addr);

  int64_t Out = lubUncached(DA, DB);
  if (Broken) {
    // Widen this result and all earlier results involving either node.
    widenVarsToAny(St, Cell::ref(Out));
    for (const auto &[K, R] : Memo)
      if (K.first == DA.Addr || K.second == DB.Addr)
        widenVarsToAny(St, Cell::ref(R));
  }
  if (Memoizable)
    Memo.emplace_back(Key, Out);
  return Out;
}

int64_t LubContext::lubUncached(const DerefResult &DA,
                                const DerefResult &DB) {
  bool AVar = DA.C.T == Tag::Ref;
  bool BVar = DB.C.T == Tag::Ref;
  if (AVar && BVar)
    return St.pushVar();
  if (AVar || BVar)
    return St.push(Cell::abs(AbsKind::Any)); // var |_| nonvar = any

  if ((DA.C.isAbs() && DA.C.absKind() == AbsKind::Any) ||
      (DB.C.isAbs() && DB.C.absKind() == AbsKind::Any))
    return St.push(Cell::abs(AbsKind::Any));

  // Identical constants.
  if ((DA.C.T == Tag::Con || DA.C.T == Tag::Int) && DA.C.T == DB.C.T &&
      DA.C.V == DB.C.V)
    return St.push(DA.C);

  // Pointwise cons |_| cons keeps structure.
  if (DA.C.T == Tag::Lis && DB.C.T == Tag::Lis) {
    int64_t Car = lub(Cell::ref(DA.C.V), Cell::ref(DB.C.V));
    int64_t Cdr = lub(Cell::ref(DA.C.V + 1), Cell::ref(DB.C.V + 1));
    int64_t Base = St.push(Cell::ref(Car));
    St.push(Cell::ref(Cdr));
    return St.push(Cell::lis(Base));
  }

  // List generalization: '[]' / cons chains / alpha-lists.
  auto IsListCat = [&](const DerefResult &D) {
    return (D.C.T == Tag::Con && D.C.V == SymbolTable::SymNil) ||
           D.C.T == Tag::Lis ||
           (D.C.T == Tag::Abs && D.C.absKind() == AbsKind::List);
  };
  if (IsListCat(DA) && IsListCat(DB)) {
    auto EA = listElems(DA.C);
    auto EB = listElems(DB.C);
    if (EA && EB) {
      std::vector<Cell> All = *EA;
      All.insert(All.end(), EB->begin(), EB->end());
      int64_t Elem;
      if (All.empty()) {
        // nil |_| nil is handled above; this is unreachable in practice
        // but a var-free bottom-ish element keeps it sound.
        Elem = St.push(Cell::abs(AbsKind::Any));
      } else {
        Elem = copyAbs(St, All[0]);
        for (size_t I = 1; I != All.size(); ++I)
          Elem = lub(Cell::ref(Elem), All[I]);
      }
      // List element types must not claim var-ness (an element handed out
      // later is a copy that cannot see aliases).
      widenVarsToAny(St, Cell::ref(Elem));
      return St.push(Cell::abs(AbsKind::List, Elem));
    }
    return joinViaGroundness(DA, DB);
  }

  // Pointwise structure join for equal functors.
  if (DA.C.T == Tag::Str && DB.C.T == Tag::Str) {
    const Cell FA = St.at(DA.C.V);
    const Cell FB = St.at(DB.C.V);
    if (FA.V == FB.V && FA.funArity() == FB.funArity()) {
      std::vector<int64_t> Args;
      for (int I = 1; I <= FA.funArity(); ++I)
        Args.push_back(lub(Cell::ref(DA.C.V + I), Cell::ref(DB.C.V + I)));
      int64_t FunAddr = St.push(FA);
      for (int64_t Arg : Args)
        St.push(Cell::ref(Arg));
      return St.push(Cell::str(FunAddr));
    }
  }

  return joinViaGroundness(DA, DB);
}

int64_t awam::lubCells(Store &St, Cell A, Cell B) {
  LubContext Ctx(St);
  return Ctx.lub(A, B);
}
