//===- absdom/AbsBuiltins.h - Abstract builtin semantics --------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract (success-approximating) semantics of the builtin predicates,
/// shared by the compiled abstract machine and the baseline
/// meta-interpreting analyzer so both implement the *same* analysis.
///
/// Each builtin models the effect of a successful call: e.g. `X is E`
/// narrows E to ground and X to integer; type tests narrow their argument
/// to the tested type or fail when the meet is empty.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ABSDOM_ABSBUILTINS_H
#define AWAM_ABSDOM_ABSBUILTINS_H

#include "compiler/Builtins.h"
#include "wam/Store.h"

#include <span>

namespace awam {

/// Applies the abstract semantics of builtin \p Id to \p Args (argument
/// cells in \p St). Returns false if the builtin certainly fails; bindings
/// are trailed in \p St.
bool applyAbsBuiltin(Store &St, BuiltinId Id, std::span<const Cell> Args);

} // namespace awam

#endif // AWAM_ABSDOM_ABSBUILTINS_H
