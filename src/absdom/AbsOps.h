//===- absdom/AbsOps.h - Abstract domain operations -------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operations over the paper's abstract domain (Section 3), implemented on
/// machine cells:
///
///   empty  <=  var, atom, integer  <=  const  <=  ground  <=  nv  <=  any
///                      alpha-list, struct instances in between
///
/// Representation choices (Section 4.1): abstract terms behave like logic
/// variables — each is one heap cell that can be instantiated to a more
/// specific term; aliasing is cell sharing; free variables are represented
/// by ordinary unbound Ref cells (so `var` unification is exactly concrete
/// binding).
///
///  * absUnify   — set unification s_unify(T1, T2): binds cells to meets,
///                 expanding abstract cells against concrete structure
///                 (ComplexTermInst) as needed. All effects are trailed.
///  * copyAbs    — a fresh instance of an abstract value (used when a list
///                 type hands out one element).
///  * isGroundCell — gamma(cell) contains only ground terms?
///  * lubCells   — least upper bound of two values, building new cells
///                 (used to summarize success patterns). Sharing present in
///                 only one operand is dropped, and `var` claims under
///                 dropped sharing widen to `any` (a may-aliased variable
///                 may be instantiated through its alias).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ABSDOM_ABSOPS_H
#define AWAM_ABSDOM_ABSOPS_H

#include "wam/Store.h"

#include <optional>

namespace awam {

/// Abstract (set) unification of \p A and \p B in \p St: mutates cells via
/// trailed bindings so both sides denote the meet afterwards. Returns false
/// if the meet is empty (unification fails); partial bindings may remain
/// and must be undone by the caller's backtracking (exactly like concrete
/// unification).
bool absUnify(Store &St, Cell A, Cell B);

/// Pushes a fresh deep copy of the abstract value \p C (depth-limited;
/// beyond \p MaxDepth abstract structure is widened to g/nv). Returns the
/// address of the copy. Constants are shared, not copied.
int64_t copyAbs(Store &St, Cell C, int MaxDepth = 32);

/// True if every term in gamma(\p C) is ground. Conservative on cycles
/// (returns false beyond an internal depth limit).
bool isGroundCell(const Store &St, Cell C, int MaxDepth = 64);

/// True if gamma(\p C) is exactly the variables (an unbound cell).
inline bool isVarCell(const Store &St, Cell C) {
  return St.deref(C).C.T == Tag::Ref;
}

/// Collects into \p Leaves the heap addresses of the *nonground leaves* of
/// \p C: the cells whose later instantiation decides whether gamma(\p C)
/// is ground — unbound Ref cells and Abs cells of kind any / nv / var.
/// Ground kinds (constants, g, const, atom, integer) contribute nothing;
/// structures, list cells and alpha-lists are descended. \p C is ground
/// exactly when the collected set is empty, and two values sharing a leaf
/// address become ground together (the aliasing the Pos domain's
/// groundness dependencies are built on). \p Visited is caller-pooled
/// scratch that dedupes shared substructure and terminates cycles.
/// Returns false when the walk exceeds \p Fuel or meets a leaf with no
/// heap address — \p Leaves is then incomplete and the caller must treat
/// the value's groundness as unknown.
bool collectNongroundLeaves(const Store &St, Cell C,
                            std::vector<int64_t> &Leaves,
                            std::vector<int64_t> &Visited, int Fuel = 256);

/// Context for lubCells: memoizes node pairs so sharing common to both
/// operands is preserved, and tracks partner mismatches so dropped sharing
/// widens var results to any.
class LubContext {
public:
  explicit LubContext(Store &St) : St(St) {}

  /// Returns (the address of) a fresh cell denoting lub(A, B).
  int64_t lub(Cell A, Cell B);

private:
  int64_t lubUncached(const DerefResult &DA, const DerefResult &DB);
  int64_t joinViaGroundness(const DerefResult &DA, const DerefResult &DB);
  /// Element-type cells of a list-shaped value ([], cons chain, or alpha-
  /// list); nullopt if the value is not list-shaped.
  std::optional<std::vector<Cell>> listElems(Cell C, int Fuel = 64);

  Store &St;
  // Lubbed values are depth-cut patterns, so these stay tiny; linear scans
  // over flat vectors beat tree maps.
  std::vector<std::pair<std::pair<int64_t, int64_t>, int64_t>> Memo;
  std::vector<std::pair<int64_t, int64_t>> PartnerOfA, PartnerOfB;
};

/// Convenience wrapper over LubContext for a single pair of values.
int64_t lubCells(Store &St, Cell A, Cell B);

} // namespace awam

#endif // AWAM_ABSDOM_ABSOPS_H
