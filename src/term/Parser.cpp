//===- term/Parser.cpp ----------------------------------------------------===//

#include "term/Parser.h"

#include "term/Desugar.h"
#include "term/Operators.h"

using namespace awam;

Parser::Parser(std::string_view Source, SymbolTable &Syms, TermArena &Arena)
    : Lex(Source), Syms(Syms), Arena(Arena) {}

Diagnostic Parser::errorAt(const Token &T, std::string Message) const {
  return makeError(std::move(Message), T.Line, T.Column);
}

const Term *Parser::internVar(const std::string &Name) {
  if (Name == "_")
    return Arena.mkVar(Syms.intern("_"), NumVars++);
  auto It = VarMap.find(Name);
  if (It != VarMap.end())
    return It->second;
  const Term *V = Arena.mkVar(Syms.intern(Name), NumVars++);
  VarMap.emplace(Name, V);
  return V;
}

Result<const Term *> Parser::readTerm() {
  VarMap.clear();
  NumVars = 0;
  if (Lex.peek().Kind == TokenKind::EndOfFile)
    return static_cast<const Term *>(nullptr);
  Result<Parsed> P = parse(1200);
  if (!P)
    return P.diag();
  Token End = Lex.next();
  if (End.Kind != TokenKind::End && End.Kind != TokenKind::EndOfFile)
    return errorAt(End, "expected '.' at end of clause");
  return P->T;
}

/// Maximum priority allowed for the left operand of an infix/postfix op.
static int leftArgMax(const OpDef &Op) {
  switch (Op.Type) {
  case OpType::YFX:
  case OpType::YF:
    return Op.Priority;
  default:
    return Op.Priority - 1;
  }
}

/// Maximum priority allowed for the right operand of an infix/prefix op.
static int rightArgMax(const OpDef &Op) {
  switch (Op.Type) {
  case OpType::XFY:
    return Op.Priority;
  case OpType::FY:
    return Op.Priority;
  default:
    return Op.Priority - 1;
  }
}

/// True if \p T can start a term (used to decide whether a prefix operator
/// is really applied or stands as an atom).
static bool startsTerm(const Token &T) {
  switch (T.Kind) {
  case TokenKind::Atom:
  case TokenKind::Var:
  case TokenKind::Int:
  case TokenKind::OpenCT:
    return true;
  case TokenKind::Punct:
    return T.Text == "(" || T.Text == "[" || T.Text == "{";
  default:
    return false;
  }
}

Result<Parser::Parsed> Parser::parse(int MaxPriority) {
  Result<Parsed> LeftOr = parsePrimary(MaxPriority);
  if (!LeftOr)
    return LeftOr;
  Parsed Left = *LeftOr;

  for (;;) {
    const Token &T = Lex.peek();
    std::string OpName;
    if (T.Kind == TokenKind::Atom)
      OpName = T.Text;
    else if (T.Kind == TokenKind::Punct && (T.Text == "," || T.Text == "|"))
      OpName = T.Text == "|" ? ";" : ","; // '|' as disjunction separator
    else
      break;

    std::optional<OpDef> Op = lookupInfixOp(OpName);
    if (!Op || Op->Priority > MaxPriority || Left.Priority > leftArgMax(*Op))
      break;

    Token OpTok = Lex.next();
    Result<Parsed> RightOr = parse(rightArgMax(*Op));
    if (!RightOr)
      return RightOr;
    Left.T = Arena.mkStruct(Syms.intern(OpName), {Left.T, RightOr->T});
    Left.Priority = Op->Priority;
    (void)OpTok;
  }
  return Left;
}

Result<const Term *> Parser::parseArgList(std::vector<const Term *> &Args) {
  for (;;) {
    Result<Parsed> Arg = parse(999);
    if (!Arg)
      return Arg.diag();
    Args.push_back(Arg->T);
    Token T = Lex.next();
    if (T.Kind == TokenKind::Punct && T.Text == ",")
      continue;
    if (T.Kind == TokenKind::Punct && T.Text == ")")
      return Args.back();
    return errorAt(T, "expected ',' or ')' in argument list");
  }
}

Result<const Term *> Parser::parseListTail() {
  // Called after '['; handles elements, '|' tail and ']'.
  std::vector<const Term *> Elements;
  for (;;) {
    Result<Parsed> E = parse(999);
    if (!E)
      return E.diag();
    Elements.push_back(E->T);
    Token T = Lex.next();
    if (T.Kind == TokenKind::Punct && T.Text == ",")
      continue;
    if (T.Kind == TokenKind::Punct && T.Text == "|") {
      Result<Parsed> Tail = parse(999);
      if (!Tail)
        return Tail.diag();
      Token Close = Lex.next();
      if (Close.Kind != TokenKind::Punct || Close.Text != "]")
        return errorAt(Close, "expected ']' after list tail");
      return Arena.mkList(Elements, Tail->T);
    }
    if (T.Kind == TokenKind::Punct && T.Text == "]")
      return Arena.mkList(Elements, Arena.mkAtom(SymbolTable::SymNil));
    return errorAt(T, "expected ',', '|' or ']' in list");
  }
}

Result<Parser::Parsed> Parser::parsePrimary(int MaxPriority) {
  Token T = Lex.next();
  switch (T.Kind) {
  case TokenKind::Error:
    return errorAt(T, T.Text);
  case TokenKind::EndOfFile:
  case TokenKind::End:
    return errorAt(T, "unexpected end of clause");
  case TokenKind::Int:
    return Parsed{Arena.mkInt(T.IntVal), 0};
  case TokenKind::Var:
    return Parsed{internVar(T.Text), 0};
  case TokenKind::OpenCT: // can only follow an atom; handled below
  case TokenKind::Punct: {
    if (T.Text == "(" ) {
      Result<Parsed> Inner = parse(1200);
      if (!Inner)
        return Inner;
      Token Close = Lex.next();
      if (Close.Kind != TokenKind::Punct || Close.Text != ")")
        return errorAt(Close, "expected ')'");
      return Parsed{Inner->T, 0};
    }
    if (T.Text == "[") {
      const Token &Next = Lex.peek();
      if (Next.Kind == TokenKind::Punct && Next.Text == "]") {
        Lex.next();
        return Parsed{Arena.mkAtom(SymbolTable::SymNil), 0};
      }
      Result<const Term *> L = parseListTail();
      if (!L)
        return L.diag();
      return Parsed{*L, 0};
    }
    if (T.Text == "{") {
      const Token &Next = Lex.peek();
      if (Next.Kind == TokenKind::Punct && Next.Text == "}") {
        Lex.next();
        return Parsed{Arena.mkAtom(SymbolTable::SymCurly), 0};
      }
      Result<Parsed> Inner = parse(1200);
      if (!Inner)
        return Inner;
      Token Close = Lex.next();
      if (Close.Kind != TokenKind::Punct || Close.Text != "}")
        return errorAt(Close, "expected '}'");
      return Parsed{
          Arena.mkStruct(SymbolTable::SymCurly, {Inner->T}), 0};
    }
    return errorAt(T, "unexpected '" + T.Text + "'");
  }
  case TokenKind::Atom: {
    // Functor application: atom immediately followed by '('.
    if (Lex.peek().Kind == TokenKind::OpenCT) {
      Lex.next();
      std::vector<const Term *> Args;
      Result<const Term *> R = parseArgList(Args);
      if (!R)
        return R.diag();
      return Parsed{Arena.mkStruct(Syms.intern(T.Text), std::move(Args)), 0};
    }
    // Negative integer literal.
    if (T.Text == "-" && Lex.peek().Kind == TokenKind::Int) {
      Token N = Lex.next();
      return Parsed{Arena.mkInt(-N.IntVal), 0};
    }
    // Prefix operator application.
    if (std::optional<OpDef> Op = lookupPrefixOp(T.Text)) {
      const Token &Next = Lex.peek();
      bool NextIsInfixAtom =
          Next.Kind == TokenKind::Atom && lookupInfixOp(Next.Text) &&
          !lookupPrefixOp(Next.Text);
      if (Op->Priority <= MaxPriority && startsTerm(Next) &&
          !NextIsInfixAtom) {
        Result<Parsed> Operand = parse(rightArgMax(*Op));
        if (!Operand)
          return Operand;
        return Parsed{Arena.mkStruct(Syms.intern(T.Text), {Operand->T}),
                      Op->Priority};
      }
    }
    // Plain atom. An operator name used as an atom carries its priority.
    int Priority = 0;
    if (std::optional<OpDef> Op = lookupInfixOp(T.Text))
      Priority = Op->Priority;
    else if (std::optional<OpDef> Op2 = lookupPrefixOp(T.Text))
      Priority = Op2->Priority;
    return Parsed{Arena.mkAtom(Syms.intern(T.Text)), Priority};
  }
  }
  return errorAt(T, "unexpected token");
}

Result<ParsedClause> awam::makeClause(const Term *ClauseTerm, int NumVars,
                                      const SymbolTable &Syms) {
  ParsedClause C;
  C.NumVars = NumVars;
  const Term *Body = nullptr;
  if (ClauseTerm->isStruct() &&
      ClauseTerm->functor() == SymbolTable::SymNeck &&
      ClauseTerm->arity() == 2) {
    C.Head = ClauseTerm->arg(0);
    Body = ClauseTerm->arg(1);
  } else {
    C.Head = ClauseTerm;
  }
  if (!C.Head->isCallable())
    return makeError("clause head is not callable");

  // Flatten the body conjunction left-to-right.
  std::vector<const Term *> Stack;
  if (Body)
    Stack.push_back(Body);
  while (!Stack.empty()) {
    const Term *G = Stack.back();
    Stack.pop_back();
    if (G->isStruct() && G->functor() == SymbolTable::SymComma &&
        G->arity() == 2) {
      Stack.push_back(G->arg(1));
      Stack.push_back(G->arg(0));
      continue;
    }
    if (G->isAtom() && G->functor() == SymbolTable::SymTrue)
      continue;
    if (!G->isCallable() && !G->isVar())
      return makeError("body goal is not callable");
    C.Body.push_back(G);
  }
  (void)Syms;
  return C;
}

Result<ParsedProgram> awam::parseProgram(std::string_view Source,
                                         SymbolTable &Syms,
                                         TermArena &Arena) {
  Parser P(Source, Syms, Arena);
  ParsedProgram Prog;
  for (;;) {
    Result<const Term *> TermOr = P.readTerm();
    if (!TermOr)
      return TermOr.diag();
    const Term *T = *TermOr;
    if (!T)
      // Rewrite ;/->/\+ into auxiliary predicates (see term/Desugar.h).
      return desugarControl(Prog, Syms, Arena);
    // ":- Goal" directives are collected but not compiled.
    if (T->isStruct() && T->functor() == SymbolTable::SymNeck &&
        T->arity() == 1) {
      Prog.Directives.push_back(T->arg(0));
      continue;
    }
    Result<ParsedClause> C = makeClause(T, P.lastTermNumVars(), Syms);
    if (!C)
      return C.diag();
    Prog.Clauses.push_back(C.take());
  }
}
