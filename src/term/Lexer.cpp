//===- term/Lexer.cpp -----------------------------------------------------===//

#include "term/Lexer.h"

#include <cctype>

using namespace awam;

static bool isSymbolChar(char C) {
  static constexpr std::string_view SymbolChars = "+-*/\\^<>=~:.?@#&$";
  return SymbolChars.find(C) != std::string_view::npos;
}

static bool isAlnumChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

Lexer::Lexer(std::string_view Source) : Src(Source) {}

void Lexer::advance() {
  if (Pos >= Src.size())
    return;
  if (Src[Pos] == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  ++Pos;
}

void Lexer::skipLayout() {
  for (;;) {
    char C = cur();
    if (C == '\0')
      return;
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '%') {
      while (cur() != '\0' && cur() != '\n')
        advance();
      continue;
    }
    if (C == '/' && lookahead() == '*') {
      advance();
      advance();
      while (cur() != '\0' && !(cur() == '*' && lookahead() == '/'))
        advance();
      advance(); // '*'
      advance(); // '/'
      continue;
    }
    return;
  }
}

const Token &Lexer::peek() {
  if (!HasPeeked) {
    Peeked = lex();
    HasPeeked = true;
  }
  return Peeked;
}

Token Lexer::next() {
  if (HasPeeked) {
    HasPeeked = false;
    return Peeked;
  }
  return lex();
}

Token Lexer::lex() {
  bool AfterName = PrevWasName;
  PrevWasName = false;

  // '(' with no layout before it and following an atom/var is a functor
  // application parenthesis.
  if (cur() == '(' && AfterName) {
    Token T{TokenKind::OpenCT, "(", 0, Line, Column};
    advance();
    return T;
  }

  skipLayout();
  Token T;
  T.Line = Line;
  T.Column = Column;
  char C = cur();

  if (C == '\0') {
    T.Kind = TokenKind::EndOfFile;
    return T;
  }

  // End token: '.' followed by layout or EOF.
  if (C == '.') {
    char N = lookahead();
    if (N == '\0' || std::isspace(static_cast<unsigned char>(N)) ||
        N == '%') {
      advance();
      T.Kind = TokenKind::End;
      T.Text = ".";
      return T;
    }
  }

  if (std::string_view("()[]{},|").find(C) != std::string_view::npos) {
    T.Kind = TokenKind::Punct;
    T.Text = std::string(1, C);
    advance();
    return T;
  }

  // Character code 0'c (also 0'\\n style escapes).
  if (C == '0' && lookahead() == '\'') {
    advance(); // 0
    advance(); // '
    char V = cur();
    if (V == '\\') {
      advance();
      char E = cur();
      switch (E) {
      case 'n': V = '\n'; break;
      case 't': V = '\t'; break;
      case 'a': V = '\a'; break;
      case 'b': V = '\b'; break;
      case 'r': V = '\r'; break;
      case '\\': V = '\\'; break;
      case '\'': V = '\''; break;
      default: V = E; break;
      }
    }
    advance();
    T.Kind = TokenKind::Int;
    T.IntVal = static_cast<unsigned char>(V);
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = 0;
    bool Overflow = false;
    while (std::isdigit(static_cast<unsigned char>(cur()))) {
      // Accumulate with overflow checks (signed overflow is UB); keep
      // consuming the remaining digits either way so the error token
      // covers the whole literal.
      Overflow |= __builtin_mul_overflow(Value, 10, &Value) ||
                  __builtin_add_overflow(Value, cur() - '0', &Value);
      advance();
    }
    if (Overflow) {
      T.Kind = TokenKind::Error;
      T.Text = "integer literal overflows 64 bits";
      return T;
    }
    T.Kind = TokenKind::Int;
    T.IntVal = Value;
    PrevWasName = true; // "3(" is not a call, but harmless
    return T;
  }

  if (std::islower(static_cast<unsigned char>(C))) {
    std::string Name;
    while (isAlnumChar(cur())) {
      Name.push_back(cur());
      advance();
    }
    T.Kind = TokenKind::Atom;
    T.Text = std::move(Name);
    PrevWasName = true;
    return T;
  }

  if (std::isupper(static_cast<unsigned char>(C)) || C == '_') {
    std::string Name;
    while (isAlnumChar(cur())) {
      Name.push_back(cur());
      advance();
    }
    T.Kind = TokenKind::Var;
    T.Text = std::move(Name);
    PrevWasName = true;
    return T;
  }

  if (C == '\'') {
    advance();
    std::string Name;
    for (;;) {
      char V = cur();
      if (V == '\0') {
        T.Kind = TokenKind::Error;
        T.Text = "unterminated quoted atom";
        return T;
      }
      if (V == '\'') {
        advance();
        if (cur() == '\'') { // escaped quote ''
          Name.push_back('\'');
          advance();
          continue;
        }
        break;
      }
      if (V == '\\') {
        advance();
        char E = cur();
        switch (E) {
        case 'n': Name.push_back('\n'); break;
        case 't': Name.push_back('\t'); break;
        case '\\': Name.push_back('\\'); break;
        case '\'': Name.push_back('\''); break;
        default: Name.push_back(E); break;
        }
        advance();
        continue;
      }
      Name.push_back(V);
      advance();
    }
    T.Kind = TokenKind::Atom;
    T.Text = std::move(Name);
    PrevWasName = true;
    return T;
  }

  if (C == '!' || C == ';') {
    T.Kind = TokenKind::Atom;
    T.Text = std::string(1, C);
    advance();
    PrevWasName = true;
    return T;
  }

  if (isSymbolChar(C)) {
    std::string Name;
    while (isSymbolChar(cur())) {
      Name.push_back(cur());
      advance();
    }
    T.Kind = TokenKind::Atom;
    T.Text = std::move(Name);
    PrevWasName = true;
    return T;
  }

  T.Kind = TokenKind::Error;
  T.Text = std::string("unexpected character '") + C + "'";
  advance();
  return T;
}
