//===- term/Operators.cpp -------------------------------------------------===//

#include "term/Operators.h"

#include <map>
#include <string>

using namespace awam;

namespace {
const std::map<std::string, OpDef, std::less<>> &infixTable() {
  static const std::map<std::string, OpDef, std::less<>> Table = {
      {":-", {1200, OpType::XFX}},
      {"-->", {1200, OpType::XFX}},
      {";", {1100, OpType::XFY}},
      {"->", {1050, OpType::XFY}},
      {",", {1000, OpType::XFY}},
      {"=", {700, OpType::XFX}},
      {"\\=", {700, OpType::XFX}},
      {"==", {700, OpType::XFX}},
      {"\\==", {700, OpType::XFX}},
      {"@<", {700, OpType::XFX}},
      {"@>", {700, OpType::XFX}},
      {"@=<", {700, OpType::XFX}},
      {"@>=", {700, OpType::XFX}},
      {"=..", {700, OpType::XFX}},
      {"is", {700, OpType::XFX}},
      {"=:=", {700, OpType::XFX}},
      {"=\\=", {700, OpType::XFX}},
      {"<", {700, OpType::XFX}},
      {">", {700, OpType::XFX}},
      {"=<", {700, OpType::XFX}},
      {">=", {700, OpType::XFX}},
      {"+", {500, OpType::YFX}},
      {"-", {500, OpType::YFX}},
      {"/\\", {500, OpType::YFX}},
      {"\\/", {500, OpType::YFX}},
      {"xor", {500, OpType::YFX}},
      {"*", {400, OpType::YFX}},
      {"/", {400, OpType::YFX}},
      {"//", {400, OpType::YFX}},
      {"mod", {400, OpType::YFX}},
      {"rem", {400, OpType::YFX}},
      {"<<", {400, OpType::YFX}},
      {">>", {400, OpType::YFX}},
      {"**", {200, OpType::XFX}},
      {"^", {200, OpType::XFY}},
  };
  return Table;
}

const std::map<std::string, OpDef, std::less<>> &prefixTable() {
  static const std::map<std::string, OpDef, std::less<>> Table = {
      {":-", {1200, OpType::FX}},
      {"?-", {1200, OpType::FX}},
      {"\\+", {900, OpType::FY}},
      {"-", {200, OpType::FY}},
      {"+", {200, OpType::FY}},
      {"\\", {200, OpType::FY}},
  };
  return Table;
}
} // namespace

std::optional<OpDef> awam::lookupInfixOp(std::string_view Name) {
  const auto &Table = infixTable();
  auto It = Table.find(Name);
  if (It == Table.end())
    return std::nullopt;
  return It->second;
}

std::optional<OpDef> awam::lookupPrefixOp(std::string_view Name) {
  const auto &Table = prefixTable();
  auto It = Table.find(Name);
  if (It == Table.end())
    return std::nullopt;
  return It->second;
}
