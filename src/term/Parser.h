//===- term/Parser.h - Prolog reader ----------------------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operator-precedence parser for Prolog programs: reads clause terms, splits
/// them into head/body, and numbers clause variables densely.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_TERM_PARSER_H
#define AWAM_TERM_PARSER_H

#include "support/Error.h"
#include "support/SymbolTable.h"
#include "term/Lexer.h"
#include "term/Term.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace awam {

/// One parsed clause: Head :- Body1, ..., BodyN (facts have an empty body).
struct ParsedClause {
  const Term *Head = nullptr;
  std::vector<const Term *> Body;
  /// Number of distinct variables in the clause (var ids are 0..NumVars-1).
  int NumVars = 0;
};

/// A parsed program: clauses in source order plus any ":- Goal" directives.
struct ParsedProgram {
  std::vector<ParsedClause> Clauses;
  std::vector<const Term *> Directives;
};

/// Reads Prolog terms and clauses from a source buffer.
///
/// The parser uses the fixed operator table in term/Operators.h. Variables
/// are clause-scoped: each readClause()/readTerm() call numbers the distinct
/// variables of that term from zero.
class Parser {
public:
  Parser(std::string_view Source, SymbolTable &Syms, TermArena &Arena);

  /// Reads the next term up to its end token. Returns nullptr at EOF.
  Result<const Term *> readTerm();

  /// Number of distinct variables in the most recent readTerm() result.
  int lastTermNumVars() const { return NumVars; }

private:
  struct Parsed {
    const Term *T;
    int Priority; // the priority of the term as an operand
  };

  Result<Parsed> parse(int MaxPriority);
  Result<Parsed> parsePrimary(int MaxPriority);
  Result<const Term *> parseArgList(std::vector<const Term *> &Args);
  Result<const Term *> parseListTail();
  const Term *internVar(const std::string &Name);
  Diagnostic errorAt(const Token &T, std::string Message) const;

  Lexer Lex;
  SymbolTable &Syms;
  TermArena &Arena;
  std::unordered_map<std::string, const Term *> VarMap;
  int NumVars = 0;
};

/// Parses a whole program (sequence of clauses and directives).
Result<ParsedProgram> parseProgram(std::string_view Source, SymbolTable &Syms,
                                   TermArena &Arena);

/// Splits a clause term into head and flattened body goals, numbering
/// variables as in \p NumVars. Fails on non-callable heads or goals.
Result<ParsedClause> makeClause(const Term *ClauseTerm, int NumVars,
                                const SymbolTable &Syms);

} // namespace awam

#endif // AWAM_TERM_PARSER_H
