//===- term/Term.cpp ------------------------------------------------------===//

#include "term/Term.h"

using namespace awam;

bool awam::termEquals(const Term *A, const Term *B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TermKind::Var:
    return false; // identity already checked
  case TermKind::Int:
    return A->intValue() == B->intValue();
  case TermKind::Atom:
    return A->functor() == B->functor();
  case TermKind::Struct: {
    if (A->functor() != B->functor() || A->arity() != B->arity())
      return false;
    for (int I = 0, E = A->arity(); I != E; ++I)
      if (!termEquals(A->arg(I), B->arg(I)))
        return false;
    return true;
  }
  }
  return false;
}
