//===- term/Operators.h - Prolog operator table -----------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard Prolog operator table used by the reader (a fixed table; the
/// benchmark programs do not declare operators of their own, and op/3 is not
/// part of the analyzed language).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_TERM_OPERATORS_H
#define AWAM_TERM_OPERATORS_H

#include <optional>
#include <string_view>

namespace awam {

/// Operator fixity classes, as in ISO Prolog.
enum class OpType { XFX, XFY, YFX, FY, FX, XF, YF };

/// One operator definition: priority 1..1200 plus fixity.
struct OpDef {
  int Priority;
  OpType Type;
};

/// Returns the infix/postfix definition of \p Name, if any.
std::optional<OpDef> lookupInfixOp(std::string_view Name);

/// Returns the prefix definition of \p Name, if any.
std::optional<OpDef> lookupPrefixOp(std::string_view Name);

} // namespace awam

#endif // AWAM_TERM_OPERATORS_H
