//===- term/Lexer.h - Prolog tokenizer --------------------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the subset of ISO Prolog syntax used by the benchmark
/// suite: unquoted/quoted/symbolic atoms, variables, integers, punctuation,
/// lists, curly braces, end tokens, %-comments and /* */ comments, and
/// 0'c character codes.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_TERM_LEXER_H
#define AWAM_TERM_LEXER_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace awam {

/// Token categories produced by the Lexer.
enum class TokenKind : uint8_t {
  Atom,       ///< unquoted, quoted or symbolic atom; text in Token::Text
  Var,        ///< variable name (starts upper-case or '_')
  Int,        ///< integer literal; value in Token::IntVal
  Punct,      ///< one of ( ) [ ] { } , |
  End,        ///< clause-terminating '.'
  OpenCT,     ///< '(' immediately following an atom (functor application)
  EndOfFile,  ///< input exhausted
  Error,      ///< lexical error; message in Token::Text
};

/// A single token with its source position.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;   // atom/var name, punct char, or error message
  int64_t IntVal = 0; // integer value
  int Line = 1;
  int Column = 1;
};

/// Incremental tokenizer over an in-memory buffer.
class Lexer {
public:
  explicit Lexer(std::string_view Source);

  /// Scans and returns the next token.
  Token next();

  /// Returns the next token without consuming it.
  const Token &peek();

private:
  Token lex();
  void skipLayout();
  char cur() const { return Pos < Src.size() ? Src[Pos] : '\0'; }
  char lookahead(size_t N = 1) const {
    return Pos + N < Src.size() ? Src[Pos + N] : '\0';
  }
  void advance();

  std::string_view Src;
  size_t Pos = 0;
  int Line = 1;
  int Column = 1;
  bool HasPeeked = false;
  Token Peeked;
  bool PrevWasName = false; // for OpenCT detection
};

} // namespace awam

#endif // AWAM_TERM_LEXER_H
