//===- term/TermWriter.cpp ------------------------------------------------===//

#include "term/TermWriter.h"

#include "support/StringUtil.h"
#include "term/Operators.h"

#include <cctype>

using namespace awam;

namespace {
class Writer {
public:
  Writer(const SymbolTable &Syms, const WriteOptions &Options)
      : Syms(Syms), Options(Options) {}

  void write(const Term *T, int MaxPriority, std::string &Out) const {
    switch (T->kind()) {
    case TermKind::Var: {
      std::string_view Name = Syms.name(T->varName());
      if (Name == "_") {
        Out += "_G" + std::to_string(T->varId());
      } else {
        Out += Name;
      }
      return;
    }
    case TermKind::Int:
      Out += std::to_string(T->intValue());
      return;
    case TermKind::Atom:
      writeAtom(T->functor(), Out);
      return;
    case TermKind::Struct:
      writeStruct(T, MaxPriority, Out);
      return;
    }
  }

private:
  void writeAtom(Symbol S, std::string &Out) const {
    std::string_view Name = Syms.name(S);
    Out += Options.QuoteAtoms ? quoteAtom(Name) : std::string(Name);
  }

  void writeStruct(const Term *T, int MaxPriority, std::string &Out) const {
    if (T->isCons()) {
      writeList(T, Out);
      return;
    }
    if (T->functor() == SymbolTable::SymCurly && T->arity() == 1) {
      Out += "{";
      write(T->arg(0), 1200, Out);
      Out += "}";
      return;
    }
    std::string_view Name = Syms.name(T->functor());
    if (Options.UseOperators && T->arity() == 2) {
      if (auto Op = lookupInfixOp(Name)) {
        bool Paren = Op->Priority > MaxPriority;
        if (Paren)
          Out += "(";
        int LMax = Op->Type == OpType::YFX ? Op->Priority : Op->Priority - 1;
        int RMax = Op->Type == OpType::XFY ? Op->Priority : Op->Priority - 1;
        write(T->arg(0), LMax, Out);
        if (Name == ",") {
          Out += ",";
        } else {
          Out += isUnquotedAtom(Name) && std::isalpha(static_cast<unsigned char>(Name[0]))
                     ? " " + std::string(Name) + " "
                     : std::string(Name);
        }
        write(T->arg(1), RMax, Out);
        if (Paren)
          Out += ")";
        return;
      }
    }
    if (Options.UseOperators && T->arity() == 1) {
      // "- 3" would re-read as the integer -3; print the structure -(3)
      // in functional form to keep write/read round-trips faithful.
      bool MinusOnInt = Name == "-" && T->arg(0)->isInt();
      if (auto Op = lookupPrefixOp(Name); Op && !MinusOnInt) {
        bool Paren = Op->Priority > MaxPriority;
        if (Paren)
          Out += "(";
        Out += Name;
        Out += " ";
        write(T->arg(0),
              Op->Type == OpType::FY ? Op->Priority : Op->Priority - 1, Out);
        if (Paren)
          Out += ")";
        return;
      }
    }
    writeAtom(T->functor(), Out);
    Out += "(";
    for (int I = 0, E = T->arity(); I != E; ++I) {
      if (I)
        Out += ",";
      write(T->arg(I), 999, Out);
    }
    Out += ")";
  }

  void writeList(const Term *T, std::string &Out) const {
    Out += "[";
    write(T->arg(0), 999, Out);
    const Term *Tail = T->arg(1);
    while (Tail->isCons()) {
      Out += ",";
      write(Tail->arg(0), 999, Out);
      Tail = Tail->arg(1);
    }
    if (!Tail->isNil()) {
      Out += "|";
      write(Tail, 999, Out);
    }
    Out += "]";
  }

  const SymbolTable &Syms;
  const WriteOptions &Options;
};
} // namespace

std::string awam::writeTerm(const Term *T, const SymbolTable &Syms,
                            const WriteOptions &Options) {
  std::string Out;
  Writer(Syms, Options).write(T, 1200, Out);
  return Out;
}
