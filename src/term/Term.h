//===- term/Term.h - Prolog source-level terms ------------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable source-level Prolog terms (the compiler's AST) and the arena
/// that owns them.
///
/// Terms are trees of Var / Int / Atom / Struct nodes. Within one clause,
/// every occurrence of the same source variable shares a single Var node, so
/// identity comparison of Var nodes is variable identity. Lists are ordinary
/// structures with functor "."/2 terminated by the atom "[]".
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_TERM_TERM_H
#define AWAM_TERM_TERM_H

#include "support/SymbolTable.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

namespace awam {

/// Discriminator for Term nodes.
enum class TermKind : uint8_t {
  Var,    ///< A logic variable (named or anonymous).
  Int,    ///< An integer constant.
  Atom,   ///< An atom constant (including "[]").
  Struct, ///< A compound term f(T1,...,Tn), n >= 1.
};

/// An immutable source-level term node. Allocate via TermArena.
class Term {
public:
  TermKind kind() const { return Kind; }
  bool isVar() const { return Kind == TermKind::Var; }
  bool isInt() const { return Kind == TermKind::Int; }
  bool isAtom() const { return Kind == TermKind::Atom; }
  bool isStruct() const { return Kind == TermKind::Struct; }

  /// True for atoms and structures (things that can name a predicate).
  bool isCallable() const { return isAtom() || isStruct(); }

  /// The atom/functor name; valid for Atom and Struct nodes.
  Symbol functor() const {
    assert(isCallable() && "functor() on non-callable term");
    return Name;
  }

  /// Number of arguments (0 for atoms).
  int arity() const {
    assert(isCallable() && "arity() on non-callable term");
    return static_cast<int>(ArgList.size());
  }

  /// The i-th argument of a structure (0-based).
  const Term *arg(int I) const {
    assert(isStruct() && I >= 0 && I < arity() && "arg() out of range");
    return ArgList[I];
  }

  /// All arguments of a structure.
  std::span<const Term *const> args() const { return ArgList; }

  /// Integer value; valid for Int nodes.
  int64_t intValue() const {
    assert(isInt() && "intValue() on non-integer term");
    return IntVal;
  }

  /// Clause-local variable index (dense, 0-based); valid for Var nodes.
  int varId() const {
    assert(isVar() && "varId() on non-variable term");
    return static_cast<int>(IntVal);
  }

  /// Variable display name; valid for Var nodes ("_" for anonymous).
  Symbol varName() const {
    assert(isVar() && "varName() on non-variable term");
    return Name;
  }

  /// True for the atom "[]".
  bool isNil() const {
    return isAtom() && Name == SymbolTable::SymNil;
  }

  /// True for a "."/2 structure (a list cell).
  bool isCons() const {
    return isStruct() && Name == SymbolTable::SymDot && arity() == 2;
  }

  /// Default-constructs an atom node; only TermArena should create terms
  /// (the constructor is public because container emplacement requires it).
  Term() = default;

private:
  friend class TermArena;

  TermKind Kind = TermKind::Atom;
  Symbol Name = 0;    // atom/functor name or variable name
  int64_t IntVal = 0; // integer value or variable id
  std::vector<const Term *> ArgList;
};

/// Owns Term nodes; all terms created by an arena die with it.
class TermArena {
public:
  /// Creates a variable node. \p VarId must be dense within the enclosing
  /// clause (the parser guarantees this).
  const Term *mkVar(Symbol DisplayName, int VarId) {
    Term &T = Nodes.emplace_back();
    T.Kind = TermKind::Var;
    T.Name = DisplayName;
    T.IntVal = VarId;
    return &T;
  }

  const Term *mkInt(int64_t Value) {
    Term &T = Nodes.emplace_back();
    T.Kind = TermKind::Int;
    T.IntVal = Value;
    return &T;
  }

  const Term *mkAtom(Symbol Name) {
    Term &T = Nodes.emplace_back();
    T.Kind = TermKind::Atom;
    T.Name = Name;
    return &T;
  }

  const Term *mkStruct(Symbol Name, std::vector<const Term *> Args) {
    assert(!Args.empty() && "structure must have at least one argument");
    Term &T = Nodes.emplace_back();
    T.Kind = TermKind::Struct;
    T.Name = Name;
    T.ArgList = std::move(Args);
    return &T;
  }

  /// Builds a list cell [Head|Tail].
  const Term *mkCons(const Term *Head, const Term *Tail) {
    return mkStruct(SymbolTable::SymDot, {Head, Tail});
  }

  /// Builds a proper list of \p Elements.
  const Term *mkList(const std::vector<const Term *> &Elements,
                     const Term *Tail) {
    const Term *T = Tail;
    for (size_t I = Elements.size(); I != 0; --I)
      T = mkCons(Elements[I - 1], T);
    return T;
  }

  size_t size() const { return Nodes.size(); }

private:
  std::deque<Term> Nodes;
};

/// Structural equality of two terms (variables compare by identity).
bool termEquals(const Term *A, const Term *B);

} // namespace awam

#endif // AWAM_TERM_TERM_H
