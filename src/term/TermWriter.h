//===- term/TermWriter.h - Term pretty-printer ------------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders source terms back to Prolog text (operators, lists, quoting),
/// used by tests, the disassembler and the analysis report.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_TERM_TERMWRITER_H
#define AWAM_TERM_TERMWRITER_H

#include "support/SymbolTable.h"
#include "term/Term.h"

#include <string>

namespace awam {

/// Options controlling term printing.
struct WriteOptions {
  bool UseOperators = true; ///< print a+b instead of +(a,b)
  bool QuoteAtoms = true;   ///< quote atoms that need it
};

/// Renders \p T as Prolog text.
std::string writeTerm(const Term *T, const SymbolTable &Syms,
                      const WriteOptions &Options = WriteOptions());

} // namespace awam

#endif // AWAM_TERM_TERMWRITER_H
