//===- term/Desugar.h - Control-construct desugaring ------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites disjunction, if-then-else and negation-as-failure into
/// auxiliary predicates so the clause compiler (and both analyzers) only
/// ever see flat conjunctions:
///
///   p :- a, (b ; c), d.        =>   p :- a, '$or1'(Vs), d.
///                                    '$or1'(Vs) :- b.
///                                    '$or1'(Vs) :- c.
///
///   (C -> T ; E)               =>   '$or'(Vs) :- C, !, T.
///                                    '$or'(Vs) :- E.
///
///   \+ G                       =>   '$not'(Vs) :- G, !, fail.
///                                    '$not'(_).
///
/// The auxiliary predicate receives every variable of the extracted
/// subgoal, so bindings flow in and out as in the source.
///
/// Known deviation from ISO: a cut written inside a disjunction is local
/// to the generated auxiliary predicate rather than cutting the enclosing
/// clause (the behaviour of many pre-ISO systems).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_TERM_DESUGAR_H
#define AWAM_TERM_DESUGAR_H

#include "support/Error.h"
#include "term/Parser.h"

namespace awam {

/// Rewrites the control constructs of \p Program into auxiliary
/// predicates. New terms are created in \p Arena; clause lists are
/// rebuilt. Programs without ';', '->' or '\\+' pass through unchanged.
Result<ParsedProgram> desugarControl(const ParsedProgram &Program,
                                     SymbolTable &Syms, TermArena &Arena);

} // namespace awam

#endif // AWAM_TERM_DESUGAR_H
