//===- term/Desugar.cpp ---------------------------------------------------===//

#include "term/Desugar.h"

#include <set>

using namespace awam;

namespace {

/// Recognizes the control functors.
bool isDisjunction(const Term *G, const SymbolTable &Syms) {
  return G->isStruct() && G->arity() == 2 &&
         Syms.name(G->functor()) == ";";
}
bool isIfThen(const Term *G, const SymbolTable &Syms) {
  return G->isStruct() && G->arity() == 2 &&
         Syms.name(G->functor()) == "->";
}
bool isNaf(const Term *G, const SymbolTable &Syms) {
  return G->isStruct() && G->arity() == 1 &&
         Syms.name(G->functor()) == "\\+";
}
bool isControl(const Term *G, const SymbolTable &Syms) {
  return isDisjunction(G, Syms) || isIfThen(G, Syms) || isNaf(G, Syms);
}

/// Collects the distinct variables of \p T in first-occurrence order.
void collectVars(const Term *T, std::vector<const Term *> &Out,
                 std::set<int> &Seen) {
  if (T->isVar()) {
    if (Seen.insert(T->varId()).second)
      Out.push_back(T);
    return;
  }
  if (T->isStruct())
    for (const Term *A : T->args())
      collectVars(A, Out, Seen);
}

class Desugarer {
public:
  Desugarer(SymbolTable &Syms, TermArena &Arena)
      : Syms(Syms), Arena(Arena) {}

  Result<ParsedProgram> run(const ParsedProgram &Program) {
    ParsedProgram Out;
    Out.Directives = Program.Directives;
    // Worklist: desugaring a clause may spawn auxiliary clauses that
    // themselves contain control constructs.
    std::vector<ParsedClause> Work(Program.Clauses.begin(),
                                   Program.Clauses.end());
    for (size_t I = 0; I != Work.size(); ++I) {
      ParsedClause C = Work[I];
      std::vector<const Term *> NewBody;
      for (const Term *G : C.Body) {
        if (!G->isCallable() || !isControl(G, Syms)) {
          NewBody.push_back(G);
          continue;
        }
        NewBody.push_back(extract(G, C.NumVars, Work));
      }
      C.Body = std::move(NewBody);
      Out.Clauses.push_back(std::move(C));
    }
    return Out;
  }

private:
  /// Replaces control goal \p G with a call to a fresh auxiliary
  /// predicate, appending the auxiliary clauses to \p Work.
  const Term *extract(const Term *G, int NumVars,
                      std::vector<ParsedClause> &Work) {
    std::vector<const Term *> Vars;
    std::set<int> Seen;
    collectVars(G, Vars, Seen);

    Symbol AuxName = Syms.intern("$aux" + std::to_string(++Counter));
    const Term *AuxHead =
        Vars.empty() ? Arena.mkAtom(AuxName)
                     : Arena.mkStruct(AuxName, Vars);
    const Term *Call = AuxHead;

    emitAlternatives(G, AuxHead, NumVars, Work);
    return Call;
  }

  /// Emits the clauses of the auxiliary predicate for control goal \p G.
  void emitAlternatives(const Term *G, const Term *AuxHead, int NumVars,
                        std::vector<ParsedClause> &Work) {
    if (isDisjunction(G, Syms)) {
      const Term *Left = G->arg(0);
      const Term *Right = G->arg(1);
      if (isIfThen(Left, Syms)) {
        // (C -> T ; E): first clause commits on C.
        emitClause(AuxHead,
                   {Left->arg(0), Arena.mkAtom(SymbolTable::SymCut),
                    Left->arg(1)},
                   NumVars, Work);
        emitAlternatives(Right, AuxHead, NumVars, Work);
        return;
      }
      emitAlternatives(Left, AuxHead, NumVars, Work);
      emitAlternatives(Right, AuxHead, NumVars, Work);
      return;
    }
    if (isIfThen(G, Syms)) {
      // Bare (C -> T) is (C -> T ; fail).
      emitClause(AuxHead,
                 {G->arg(0), Arena.mkAtom(SymbolTable::SymCut), G->arg(1)},
                 NumVars, Work);
      return;
    }
    if (isNaf(G, Syms)) {
      emitClause(AuxHead,
                 {G->arg(0), Arena.mkAtom(SymbolTable::SymCut),
                  Arena.mkAtom(SymbolTable::SymFail)},
                 NumVars, Work);
      // The always-true second clause: head variables stay untouched.
      emitClause(AuxHead, {}, NumVars, Work);
      return;
    }
    // A plain alternative: its conjunction becomes the clause body.
    emitClause(AuxHead, {G}, NumVars, Work);
  }

  /// Appends one auxiliary clause, flattening conjunctions in \p Goals.
  void emitClause(const Term *Head, std::vector<const Term *> Goals,
                  int NumVars, std::vector<ParsedClause> &Work) {
    ParsedClause C;
    C.Head = Head;
    C.NumVars = NumVars; // ids are clause-local to the original clause
    for (const Term *G : Goals)
      flattenInto(G, C.Body);
    Work.push_back(std::move(C));
  }

  void flattenInto(const Term *G, std::vector<const Term *> &Out) {
    if (G->isStruct() && G->functor() == SymbolTable::SymComma &&
        G->arity() == 2) {
      flattenInto(G->arg(0), Out);
      flattenInto(G->arg(1), Out);
      return;
    }
    if (G->isAtom() && G->functor() == SymbolTable::SymTrue)
      return;
    Out.push_back(G);
  }

  SymbolTable &Syms;
  TermArena &Arena;
  int Counter = 0;
};

} // namespace

Result<ParsedProgram> awam::desugarControl(const ParsedProgram &Program,
                                           SymbolTable &Syms,
                                           TermArena &Arena) {
  return Desugarer(Syms, Arena).run(Program);
}
