//===- wam/Cell.h - Tagged machine words ------------------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tagged-cell representation shared by the concrete WAM and the
/// abstract WAM. As the paper observes (Section 4.2), if every run-time
/// object is a tag plus a value in one word, the primary approximation
/// function AbsType is just the tag of the object — abstract types are
/// simply additional tags (Tag::Abs with an AbsKind), and abstract terms
/// behave like variables: an Abs cell can be overwritten (value-trailed)
/// with a more specific cell.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_WAM_CELL_H
#define AWAM_WAM_CELL_H

#include "support/SymbolTable.h"

#include <cstdint>

namespace awam {

/// Primary tags of machine cells.
enum class Tag : uint8_t {
  Ref, ///< reference into the heap; self-reference means "unbound variable"
  Str, ///< structure pointer; V = heap index of the functor cell
  Lis, ///< list pointer; V = heap index of the 2-cell car/cdr pair
  Con, ///< atom constant; V = Symbol
  Int, ///< integer constant; V = value
  Fun, ///< functor cell (only inside the heap); V = Symbol, Aux = arity
  Abs, ///< abstract type (abstract machine only); Aux = AbsKind; for
       ///< parameterized lists V = heap index of the element-type cell
  Ctl, ///< control value in stack frames (not a term)
};

/// Abstract types of the paper's Section 3 domain that are represented as
/// cell kinds. Specific constants / structures / lists / variables are
/// represented with their concrete tags on the abstract heap; `empty`
/// (bottom) is unification failure and needs no cell.
enum class AbsKind : uint8_t {
  Any,    ///< all terms (top)
  NV,     ///< all non-variable terms
  Ground, ///< all ground terms
  Const,  ///< atom or integer constants
  AtomT,  ///< atoms
  IntT,   ///< integers
  List,   ///< α-list: '[]' or [α|α-list]; V = element-type cell
  Var,    ///< free variables
};

/// A machine word: tag + payload. Heap, registers, and stack slots are all
/// vectors of Cell.
struct Cell {
  Tag T = Tag::Ref;
  uint8_t Aux = 0; // arity (Fun) or AbsKind (Abs)
  int64_t V = 0;   // heap index / Symbol / integer / control value

  static Cell ref(int64_t HeapIndex) { return {Tag::Ref, 0, HeapIndex}; }
  static Cell str(int64_t HeapIndex) { return {Tag::Str, 0, HeapIndex}; }
  static Cell lis(int64_t HeapIndex) { return {Tag::Lis, 0, HeapIndex}; }
  static Cell atom(Symbol S) { return {Tag::Con, 0, S}; }
  static Cell integer(int64_t I) { return {Tag::Int, 0, I}; }
  static Cell fun(Symbol S, int Arity) {
    return {Tag::Fun, static_cast<uint8_t>(Arity), S};
  }
  static Cell abs(AbsKind K, int64_t V = 0) {
    return {Tag::Abs, static_cast<uint8_t>(K), V};
  }
  static Cell ctl(int64_t V) { return {Tag::Ctl, 0, V}; }

  bool isAbs() const { return T == Tag::Abs; }
  AbsKind absKind() const { return static_cast<AbsKind>(Aux); }
  int funArity() const { return Aux; }

  friend bool operator==(const Cell &, const Cell &) = default;
};

/// Returns the display name of an abstract kind ("any", "nv", "g", ...).
std::string_view absKindName(AbsKind K);

} // namespace awam

#endif // AWAM_WAM_CELL_H
