//===- wam/Machine.cpp - Concrete WAM execution loop ----------------------===//

#include "wam/Machine.h"

#include "support/Timer.h"

#include <algorithm>

using namespace awam;

namespace {
// Choice point slot offsets, relative to B + NArgs (see layout comment).
constexpr int CpE = 1;
constexpr int CpCP = 2;
constexpr int CpPrevB = 3;
constexpr int CpNext = 4;
constexpr int CpTrail = 5;
constexpr int CpHeap = 6;
constexpr int CpB0 = 7;
constexpr int CpExtra = 8; // slots beyond the saved argument registers
} // namespace

// Stack frame layouts:
//
//   Environment at E:
//     [E+0] Ctl(previous E)   [E+1] Ctl(saved CP)   [E+2] Ctl(N slots)
//     [E+3 .. E+2+N] Y slots
//
//   Choice point at B (NArgs = saved argument count, from the Try B field):
//     [B+0] Ctl(NArgs)  [B+1 .. B+NArgs] saved A registers
//     [B+NArgs+1] Ctl(E)      [B+NArgs+2] Ctl(CP)  [B+NArgs+3] Ctl(prev B)
//     [B+NArgs+4] Ctl(next clause PC)   [B+NArgs+5] Ctl(trail mark)
//     [B+NArgs+6] Ctl(heap top)         [B+NArgs+7] Ctl(B0)

Machine::Machine(const CompiledProgram &Program, MachineOptions Options)
    : Module(*Program.Module), Options(Options),
      X(std::max(Program.MaxXReg, 8)) {}

int64_t Machine::stackAllocBase() const {
  int64_t Top = 0;
  if (E >= 0)
    Top = std::max(Top, E + 3 + Stack[E + 2].V);
  if (B >= 0)
    Top = std::max(Top, B + Stack[B].V + CpExtra);
  return Top;
}

void Machine::machineError(std::string Message) {
  ErrorMsg = std::move(Message);
  HasError = true;
}

bool Machine::backtrack() {
  if (B < 0)
    return false;
  ++Stats.Backtracks;
  Stats.MaxHeapCells = std::max(Stats.MaxHeapCells, St.heapSize());
  Stats.MaxTrailEntries = std::max(Stats.MaxTrailEntries, St.trailSize());
  int64_t NArgs = Stack[B].V;
  for (int64_t I = 0; I != NArgs; ++I)
    X[I] = Stack[B + 1 + I];
  E = Stack[B + NArgs + CpE].V;
  CP = static_cast<int32_t>(Stack[B + NArgs + CpCP].V);
  B0 = Stack[B + NArgs + CpB0].V;
  St.unwind(Stack[B + NArgs + CpTrail].V);
  St.truncate(Stack[B + NArgs + CpHeap].V);
  P = static_cast<int32_t>(Stack[B + NArgs + CpNext].V);
  // B itself is popped by Trust; Retry keeps it.
  return true;
}

bool Machine::unify(Cell A, Cell B_) {
  std::vector<std::pair<Cell, Cell>> Work;
  // Compound pairs already scheduled: revisiting one means a cyclic
  // (rational) term; it unifies coinductively instead of looping.
  std::vector<std::pair<int64_t, int64_t>> Seen;
  Work.emplace_back(A, B_);
  while (!Work.empty()) {
    auto [CA, CB] = Work.back();
    Work.pop_back();
    DerefResult DA = St.deref(CA);
    DerefResult DB = St.deref(CB);
    if (DA.Addr != kNoAddr && DA.Addr == DB.Addr)
      continue;
    assert(DA.C.T != Tag::Abs && DB.C.T != Tag::Abs &&
           "abstract cell reached the concrete machine");
    bool AVar = DA.C.T == Tag::Ref;
    bool BVar = DB.C.T == Tag::Ref;
    if (AVar && BVar) {
      // Bind the younger cell to the older one (safe under heap truncation).
      if (DA.Addr < DB.Addr)
        St.bind(DB.Addr, Cell::ref(DA.Addr));
      else
        St.bind(DA.Addr, Cell::ref(DB.Addr));
      continue;
    }
    if (AVar) {
      St.bind(DA.Addr, DB.C);
      continue;
    }
    if (BVar) {
      St.bind(DB.Addr, DA.C);
      continue;
    }
    if (DA.C.T != DB.C.T)
      return false;
    if (DA.C.T == Tag::Lis || DA.C.T == Tag::Str) {
      bool Cycle = false;
      for (auto [X, Y] : Seen)
        if ((X == DA.Addr && Y == DB.Addr) ||
            (X == DB.Addr && Y == DA.Addr))
          Cycle = true;
      if (Cycle)
        continue;
      Seen.emplace_back(DA.Addr, DB.Addr);
    }
    switch (DA.C.T) {
    case Tag::Con:
    case Tag::Int:
      if (DA.C.V != DB.C.V)
        return false;
      break;
    case Tag::Lis:
      Work.emplace_back(Cell::ref(DA.C.V), Cell::ref(DB.C.V));
      Work.emplace_back(Cell::ref(DA.C.V + 1), Cell::ref(DB.C.V + 1));
      break;
    case Tag::Str: {
      const Cell &FA = St.at(DA.C.V);
      const Cell &FB = St.at(DB.C.V);
      if (FA.V != FB.V || FA.funArity() != FB.funArity())
        return false;
      for (int I = 1; I <= FA.funArity(); ++I)
        Work.emplace_back(Cell::ref(DA.C.V + I), Cell::ref(DB.C.V + I));
      break;
    }
    default:
      return false;
    }
  }
  return true;
}

/// One unify_* instruction in the current read/write mode. Shared by the
/// dispatch loop and the fused get handlers (which run their inline
/// operand words through here without per-instruction dispatch). Returns
/// false when the caller must fail().
bool Machine::execUnifyOp(const Instruction &I) {
  switch (I.Op) {
  case Opcode::UnifyVariableX:
    if (WriteMode)
      X[I.A] = Cell::ref(St.pushVar());
    else
      X[I.A] = Cell::ref(S++);
    return true;
  case Opcode::UnifyVariableY:
    if (WriteMode)
      ySlot(I.A) = Cell::ref(St.pushVar());
    else
      ySlot(I.A) = Cell::ref(S++);
    return true;
  case Opcode::UnifyValueX:
    if (WriteMode) {
      St.push(X[I.A]);
      return true;
    }
    return unify(X[I.A], Cell::ref(S++));
  case Opcode::UnifyValueY:
    if (WriteMode) {
      St.push(ySlot(I.A));
      return true;
    }
    return unify(ySlot(I.A), Cell::ref(S++));
  case Opcode::UnifyConst: {
    const ConstOperand &C = Module.constAt(I.A);
    Cell K = C.K == ConstOperand::IntK ? Cell::integer(C.Int)
                                       : Cell::atom(C.Name);
    if (WriteMode) {
      St.push(K);
      return true;
    }
    DerefResult D = St.deref(Cell::ref(S++));
    if (D.C.T == Tag::Ref) {
      St.bind(D.Addr, K);
      return true;
    }
    return D.C.T == K.T && D.C.V == K.V;
  }
  case Opcode::UnifyVoid:
    if (WriteMode)
      for (int32_t N = 0; N != I.A; ++N)
        St.pushVar();
    else
      S += I.A;
    return true;
  default:
    machineError("non-unify operand word in a fused block");
    return false;
  }
}

RunStatus Machine::runLoop() {
  for (;;) {
    if (HasError)
      return RunStatus::Error;
    if (Halt)
      return RunStatus::Halted;
    if (Failed) {
      Failed = false;
      if (!backtrack())
        return RunStatus::Failure;
      continue;
    }
    if (++Steps > Options.MaxSteps) {
      machineError("instruction budget exceeded");
      return RunStatus::Error;
    }
    if (St.heapSize() > Options.MaxHeapCells) {
      machineError("heap budget exceeded");
      return RunStatus::Error;
    }

    Instruction I = Module.at(P++);
    switch (I.Op) {
    case Opcode::Halt:
      return RunStatus::Success;

    // ---- Get instructions -------------------------------------------
    case Opcode::GetVariableX:
      X[I.A] = X[I.B];
      break;
    case Opcode::GetVariableY:
      ySlot(I.A) = X[I.B];
      break;
    case Opcode::GetValueX:
      if (!unify(X[I.A], X[I.B]))
        fail();
      break;
    case Opcode::GetValueY:
      if (!unify(ySlot(I.A), X[I.B]))
        fail();
      break;
    case Opcode::GetConst: {
      const ConstOperand &C = Module.constAt(I.A);
      Cell K = C.K == ConstOperand::IntK ? Cell::integer(C.Int)
                                         : Cell::atom(C.Name);
      DerefResult D = St.deref(X[I.B]);
      if (D.C.T == Tag::Ref) {
        if (I.Flags & specflag::KnownFree)
          ++Stats.FastPathHits;
        St.bind(D.Addr, K);
      } else if (D.C.T != K.T || D.C.V != K.V) {
        fail();
      } else if (I.Flags & specflag::KnownNonvar) {
        ++Stats.FastPathHits;
      }
      break;
    }
    case Opcode::GetList: {
      DerefResult D = St.deref(X[I.A]);
      if (D.C.T == Tag::Ref) {
        if (I.Flags & specflag::KnownFree)
          ++Stats.FastPathHits;
        St.bind(D.Addr, Cell::lis(St.heapTop()));
        WriteMode = true;
      } else if (D.C.T == Tag::Lis) {
        if (I.Flags & specflag::KnownNonvar)
          ++Stats.FastPathHits;
        S = D.C.V;
        WriteMode = false;
      } else {
        fail();
      }
      break;
    }
    case Opcode::GetStructure: {
      const FunctorArity &F = Module.functorAt(I.A);
      DerefResult D = St.deref(X[I.B]);
      if (D.C.T == Tag::Ref) {
        if (I.Flags & specflag::KnownFree)
          ++Stats.FastPathHits;
        int64_t FunAddr = St.push(Cell::fun(F.Name, F.Arity));
        St.bind(D.Addr, Cell::str(FunAddr));
        WriteMode = true;
      } else if (D.C.T == Tag::Str) {
        const Cell &FC = St.at(D.C.V);
        if (FC.V != F.Name || FC.funArity() != F.Arity) {
          fail();
          break;
        }
        if (I.Flags & specflag::KnownNonvar)
          ++Stats.FastPathHits;
        S = D.C.V + 1;
        WriteMode = false;
      } else {
        fail();
      }
      break;
    }
    case Opcode::GetListFused: {
      // Specialized form: get_list A[A] plus the I.B unify operand words
      // that follow, all under one dispatch. Semantics are exactly the
      // unfused sequence; a failure mid-block just backtracks (the choice
      // point restores P, so the skipped operands don't matter).
      DerefResult D = St.deref(X[I.A]);
      if (D.C.T == Tag::Ref) {
        if (I.Flags & specflag::KnownFree)
          ++Stats.FastPathHits;
        St.bind(D.Addr, Cell::lis(St.heapTop()));
        WriteMode = true;
      } else if (D.C.T == Tag::Lis) {
        if (I.Flags & specflag::KnownNonvar)
          ++Stats.FastPathHits;
        S = D.C.V;
        WriteMode = false;
      } else {
        fail();
        break;
      }
      for (int32_t End = P + I.B; P != End; )
        if (!execUnifyOp(Module.at(P++))) {
          fail();
          break;
        }
      break;
    }
    case Opcode::GetStructureFused: {
      // Specialized form: get_structure pool A against A[B] plus the I.C
      // following unify operand words under one dispatch.
      const FunctorArity &F = Module.functorAt(I.A);
      DerefResult D = St.deref(X[I.B]);
      if (D.C.T == Tag::Ref) {
        if (I.Flags & specflag::KnownFree)
          ++Stats.FastPathHits;
        int64_t FunAddr = St.push(Cell::fun(F.Name, F.Arity));
        St.bind(D.Addr, Cell::str(FunAddr));
        WriteMode = true;
      } else if (D.C.T == Tag::Str) {
        const Cell &FC = St.at(D.C.V);
        if (FC.V != F.Name || FC.funArity() != F.Arity) {
          fail();
          break;
        }
        if (I.Flags & specflag::KnownNonvar)
          ++Stats.FastPathHits;
        S = D.C.V + 1;
        WriteMode = false;
      } else {
        fail();
        break;
      }
      for (int32_t End = P + I.C; P != End; )
        if (!execUnifyOp(Module.at(P++))) {
          fail();
          break;
        }
      break;
    }

    // ---- Put instructions -------------------------------------------
    case Opcode::PutVariableX: {
      int64_t A = St.pushVar();
      X[I.A] = Cell::ref(A);
      X[I.B] = Cell::ref(A);
      break;
    }
    case Opcode::PutVariableY: {
      int64_t A = St.pushVar();
      ySlot(I.A) = Cell::ref(A);
      X[I.B] = Cell::ref(A);
      break;
    }
    case Opcode::PutValueX:
      X[I.B] = X[I.A];
      break;
    case Opcode::PutValueY:
      X[I.B] = ySlot(I.A);
      break;
    case Opcode::PutConst: {
      const ConstOperand &C = Module.constAt(I.A);
      X[I.B] = C.K == ConstOperand::IntK ? Cell::integer(C.Int)
                                         : Cell::atom(C.Name);
      break;
    }
    case Opcode::PutList:
      X[I.A] = Cell::lis(St.heapTop());
      WriteMode = true;
      break;
    case Opcode::PutStructure: {
      const FunctorArity &F = Module.functorAt(I.A);
      int64_t FunAddr = St.push(Cell::fun(F.Name, F.Arity));
      X[I.B] = Cell::str(FunAddr);
      WriteMode = true;
      break;
    }

    // ---- Unify instructions -----------------------------------------
    case Opcode::UnifyVariableX:
    case Opcode::UnifyVariableY:
    case Opcode::UnifyValueX:
    case Opcode::UnifyValueY:
    case Opcode::UnifyConst:
    case Opcode::UnifyVoid:
      if (!execUnifyOp(I))
        fail();
      break;

    // ---- Procedural instructions ------------------------------------
    case Opcode::Allocate: {
      int64_t NewE = stackAllocBase();
      if (Stack.size() < static_cast<size_t>(NewE + 3 + I.A))
        Stack.resize(NewE + 3 + I.A);
      Stack[NewE] = Cell::ctl(E);
      Stack[NewE + 1] = Cell::ctl(CP);
      Stack[NewE + 2] = Cell::ctl(I.A);
      E = NewE;
      ++Stats.Environments;
      Stats.MaxStackSlots = std::max(Stats.MaxStackSlots, Stack.size());
      break;
    }
    case Opcode::Deallocate:
      CP = static_cast<int32_t>(Stack[E + 1].V);
      E = Stack[E].V;
      break;
    case Opcode::Call: {
      const PredicateInfo &Pred = Module.predicate(I.A);
      CP = P;
      B0 = B;
      if (Pred.IndexEntry == kFailTarget) {
        fail(); // undefined predicate
        break;
      }
      P = Pred.IndexEntry;
      break;
    }
    case Opcode::Execute: {
      const PredicateInfo &Pred = Module.predicate(I.A);
      B0 = B;
      if (Pred.IndexEntry == kFailTarget) {
        fail();
        break;
      }
      P = Pred.IndexEntry;
      break;
    }
    case Opcode::Proceed:
      P = CP;
      break;

    // ---- Indexing instructions --------------------------------------
    case Opcode::Try: {
      int64_t NArgs = I.B;
      int64_t NewB = stackAllocBase();
      if (Stack.size() < static_cast<size_t>(NewB + NArgs + CpExtra))
        Stack.resize(NewB + NArgs + CpExtra);
      Stack[NewB] = Cell::ctl(NArgs);
      for (int64_t K = 0; K != NArgs; ++K)
        Stack[NewB + 1 + K] = X[K];
      Stack[NewB + NArgs + CpE] = Cell::ctl(E);
      Stack[NewB + NArgs + CpCP] = Cell::ctl(CP);
      Stack[NewB + NArgs + CpPrevB] = Cell::ctl(B);
      Stack[NewB + NArgs + CpNext] = Cell::ctl(P); // following retry/trust
      Stack[NewB + NArgs + CpTrail] = Cell::ctl(St.trailMark());
      Stack[NewB + NArgs + CpHeap] = Cell::ctl(St.heapTop());
      Stack[NewB + NArgs + CpB0] = Cell::ctl(B0);
      B = NewB;
      P = I.A;
      ++Stats.ChoicePoints;
      Stats.MaxStackSlots = std::max(Stats.MaxStackSlots, Stack.size());
      break;
    }
    case Opcode::Retry: {
      int64_t NArgs = Stack[B].V;
      Stack[B + NArgs + CpNext] = Cell::ctl(P); // next alternative
      P = I.A;
      break;
    }
    case Opcode::Trust: {
      int64_t NArgs = Stack[B].V;
      B = Stack[B + NArgs + CpPrevB].V;
      P = I.A;
      break;
    }
    case Opcode::Jump:
      P = I.A;
      break;
    case Opcode::Fail:
      fail();
      break;
    case Opcode::SwitchOnTerm: {
      const TermSwitch &SW = Module.termSwitchAt(I.A);
      DerefResult D = St.deref(X[0]);
      int32_t Target = kFailTarget;
      switch (D.C.T) {
      case Tag::Ref: Target = SW.OnVar; break;
      case Tag::Con:
      case Tag::Int: Target = SW.OnConst; break;
      case Tag::Lis: Target = SW.OnList; break;
      case Tag::Str: Target = SW.OnStruct; break;
      default:
        machineError("switch_on_term on non-term cell");
        break;
      }
      if (Target == kFailTarget)
        fail();
      else
        P = Target;
      break;
    }
    case Opcode::SwitchOnConstant: {
      const ValueSwitch &SW = Module.valueSwitchAt(I.A);
      DerefResult D = St.deref(X[0]);
      int32_t Target = SW.Default;
      for (auto [Key, Addr] : SW.Cases) {
        const ConstOperand &C = Module.constAt(Key);
        bool Match = C.K == ConstOperand::IntK
                         ? (D.C.T == Tag::Int && D.C.V == C.Int)
                         : (D.C.T == Tag::Con &&
                            D.C.V == static_cast<int64_t>(C.Name));
        if (Match) {
          Target = Addr;
          break;
        }
      }
      if (Target == kFailTarget)
        fail();
      else
        P = Target;
      break;
    }
    case Opcode::SwitchOnStructure: {
      const ValueSwitch &SW = Module.valueSwitchAt(I.A);
      DerefResult D = St.deref(X[0]);
      assert(D.C.T == Tag::Str && "switch_on_structure on non-structure");
      const Cell &FC = St.at(D.C.V);
      int32_t Target = SW.Default;
      for (auto [Key, Addr] : SW.Cases) {
        const FunctorArity &F = Module.functorAt(Key);
        if (FC.V == static_cast<int64_t>(F.Name) &&
            FC.funArity() == F.Arity) {
          Target = Addr;
          break;
        }
      }
      if (Target == kFailTarget)
        fail();
      else
        P = Target;
      break;
    }

    // ---- Cut ---------------------------------------------------------
    case Opcode::NeckCut:
      if (B > B0)
        B = B0;
      break;
    case Opcode::GetLevel:
      ySlot(I.A) = Cell::ctl(B0);
      break;
    case Opcode::CutY: {
      int64_t Barrier = ySlot(I.A).V;
      if (B > Barrier)
        B = Barrier;
      break;
    }

    // ---- Builtins ----------------------------------------------------
    case Opcode::Builtin:
      if (!runBuiltin(I.A, I.B))
        fail();
      break;
    }
  }
}

RunStatus Machine::solve(const Term *Goal, int NumGoalVars, TermArena &Arena,
                         std::vector<Solution> &SolutionsOut,
                         int MaxSolutions) {
  Timer Wall;
  RunStatus Status = solveImpl(Goal, NumGoalVars, Arena, SolutionsOut,
                               MaxSolutions);
  Stats.WallMs = Wall.elapsedMs();
  return Status;
}

RunStatus Machine::solveImpl(const Term *Goal, int NumGoalVars,
                             TermArena &Arena,
                             std::vector<Solution> &SolutionsOut,
                             int MaxSolutions) {
  // Reset all dynamic state.
  St.reset();
  Stack.clear();
  std::fill(X.begin(), X.end(), Cell());
  P = 0;
  CP = 0;
  E = -1;
  B = -1;
  B0 = -1;
  S = 0;
  WriteMode = false;
  Failed = false;
  Halt = false;
  HasError = false;
  Steps = 0;
  Stats = MachineStats();
  Out.clear();
  ErrorMsg.clear();

  if (!Goal->isCallable()) {
    machineError("goal is not callable");
    return RunStatus::Error;
  }
  int Arity = Goal->isStruct() ? Goal->arity() : 0;
  int32_t Pid = Module.findPredicate(Goal->functor(), Arity);
  if (Pid < 0 || Module.predicate(Pid).IndexEntry == kFailTarget)
    return RunStatus::Failure;

  // Build goal arguments on the heap; remember query variable addresses.
  std::unordered_map<int, int64_t> VarAddrs;
  for (int I = 0; I != Arity; ++I)
    X[I] = Cell::ref(St.buildTerm(Goal->arg(I), VarAddrs));

  CP = 0; // address 0 is the Halt instruction
  P = Module.predicate(Pid).IndexEntry;

  for (;;) {
    RunStatus Status = runLoop();
    if (Status != RunStatus::Success)
      return SolutionsOut.empty() ? Status : RunStatus::Success;

    Solution Sol;
    Sol.Bindings.resize(NumGoalVars, nullptr);
    for (auto [VarId, Addr] : VarAddrs)
      Sol.Bindings[VarId] =
          St.readTerm(Cell::ref(Addr), Arena, Module.symbols());
    SolutionsOut.push_back(std::move(Sol));

    if (static_cast<int>(SolutionsOut.size()) >= MaxSolutions)
      return RunStatus::Success;
    if (!backtrack())
      return RunStatus::Success;
  }
}

bool Machine::proves(const Term *Goal, int NumGoalVars) {
  TermArena Arena;
  std::vector<Solution> Sols;
  return solve(Goal, NumGoalVars, Arena, Sols, 1) == RunStatus::Success;
}
