//===- wam/Store.cpp ------------------------------------------------------===//

#include "wam/Store.h"

#include "term/TermWriter.h"

using namespace awam;

int64_t Store::buildTerm(const Term *T,
                         std::unordered_map<int, int64_t> &VarAddrs) {
  switch (T->kind()) {
  case TermKind::Var: {
    auto It = VarAddrs.find(T->varId());
    if (It != VarAddrs.end())
      return It->second;
    int64_t A = pushVar();
    VarAddrs.emplace(T->varId(), A);
    return A;
  }
  case TermKind::Int:
    return push(Cell::integer(T->intValue()));
  case TermKind::Atom:
    return push(Cell::atom(T->functor()));
  case TermKind::Struct: {
    // Build children first (they may allocate), then the contiguous block.
    std::vector<int64_t> ChildAddrs;
    ChildAddrs.reserve(T->arity());
    for (const Term *A : T->args())
      ChildAddrs.push_back(buildTerm(A, VarAddrs));
    if (T->isCons()) {
      int64_t Base = push(Cell::ref(ChildAddrs[0]));
      push(Cell::ref(ChildAddrs[1]));
      return push(Cell::lis(Base));
    }
    int64_t FunAddr = push(Cell::fun(T->functor(), T->arity()));
    for (int64_t CA : ChildAddrs)
      push(Cell::ref(CA));
    return push(Cell::str(FunAddr));
  }
  }
  return 0;
}

const Term *Store::readTerm(Cell C, TermArena &Arena, SymbolTable &Syms,
                            int MaxDepth) const {
  if (MaxDepth <= 0)
    return Arena.mkAtom(Syms.intern("..."));
  DerefResult D = deref(C);
  switch (D.C.T) {
  case Tag::Ref:
    return Arena.mkVar(Syms.intern("_"), static_cast<int>(D.Addr));
  case Tag::Int:
    return Arena.mkInt(D.C.V);
  case Tag::Con:
    return Arena.mkAtom(static_cast<Symbol>(D.C.V));
  case Tag::Lis: {
    const Term *Head =
        readTerm(Cell::ref(D.C.V), Arena, Syms, MaxDepth - 1);
    const Term *Tail =
        readTerm(Cell::ref(D.C.V + 1), Arena, Syms, MaxDepth - 1);
    return Arena.mkCons(Head, Tail);
  }
  case Tag::Str: {
    const Cell &F = Heap[D.C.V];
    std::vector<const Term *> Args;
    for (int I = 1; I <= F.funArity(); ++I)
      Args.push_back(readTerm(Cell::ref(D.C.V + I), Arena, Syms,
                              MaxDepth - 1));
    return Arena.mkStruct(static_cast<Symbol>(F.V), std::move(Args));
  }
  case Tag::Abs: {
    // Abstract cells print as their kind name; parameterized lists print
    // as <elem>_list.
    if (D.C.absKind() == AbsKind::List) {
      const Term *Elem =
          readTerm(Cell::ref(D.C.V), Arena, Syms, MaxDepth - 1);
      std::string Name =
          writeTerm(Elem, Syms, WriteOptions{.QuoteAtoms = false});
      return Arena.mkAtom(Syms.intern(Name + "_list"));
    }
    return Arena.mkAtom(Syms.intern(absKindName(D.C.absKind())));
  }
  case Tag::Fun:
  case Tag::Ctl:
    return Arena.mkAtom(Syms.intern("<corrupt>"));
  }
  return nullptr;
}

std::string Store::show(Cell C, SymbolTable &Syms) const {
  TermArena Arena;
  return writeTerm(readTerm(C, Arena, Syms), Syms);
}

std::string_view awam::absKindName(AbsKind K) {
  switch (K) {
  case AbsKind::Any: return "any";
  case AbsKind::NV: return "nv";
  case AbsKind::Ground: return "g";
  case AbsKind::Const: return "const";
  case AbsKind::AtomT: return "atom";
  case AbsKind::IntT: return "int";
  case AbsKind::List: return "list";
  case AbsKind::Var: return "var";
  }
  return "<bad>";
}
