//===- wam/Machine.h - The concrete WAM -------------------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard (concrete) Warren Abstract Machine: executes CodeModule
/// programs with the classic heap / stack / trail scheme, first-argument
/// indexing, last-call optimization and cut. This is the substrate the
/// paper's analyzer reinterprets; it also validates the compiler and hosts
/// the concrete benchmark runs.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_WAM_MACHINE_H
#define AWAM_WAM_MACHINE_H

#include "compiler/ProgramCompiler.h"
#include "wam/Store.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace awam {

/// Outcome of running a query.
enum class RunStatus {
  Success, ///< at least one solution found (all requested ones collected)
  Failure, ///< goal finitely failed
  Halted,  ///< halt/0 executed
  Error,   ///< machine error (see Machine::errorMessage)
};

/// One solution: the query's variable bindings rendered as terms.
struct Solution {
  /// Binding per query variable id (index = var id as numbered by the
  /// parser for the goal term); terms live in the arena passed to solve().
  std::vector<const Term *> Bindings;
};

/// Resource limits and knobs.
struct MachineOptions {
  uint64_t MaxSteps = 500'000'000; ///< instruction budget before Error
  size_t MaxHeapCells = 64u << 20; ///< heap budget before Error
};

/// Execution statistics of the last solve() (high-water marks).
struct MachineStats {
  uint64_t Instructions = 0;
  uint64_t ChoicePoints = 0;  ///< choice points created (Try executed)
  uint64_t Environments = 0;  ///< environments allocated
  uint64_t Backtracks = 0;
  /// Flagged specialized instructions whose asserted fact held at runtime
  /// (deref/bind shortcut taken). Always 0 on unspecialized code.
  uint64_t FastPathHits = 0;
  /// Wall-clock of the last solve() in milliseconds.
  double WallMs = 0.0;
  size_t MaxHeapCells = 0;
  size_t MaxTrailEntries = 0;
  size_t MaxStackSlots = 0;
};

/// The concrete WAM interpreter.
///
/// Usage: construct over a compiled program, then solve() a goal term.
/// The machine is reusable: each solve() resets the dynamic state.
class Machine {
public:
  Machine(const CompiledProgram &Program, MachineOptions Options = {});

  /// Runs goal \p Goal (an atom or structure; conjunctions must be wrapped
  /// in a program predicate). Collects up to \p MaxSolutions solutions into
  /// \p Arena. \p NumGoalVars is the parser's variable count for the goal.
  RunStatus solve(const Term *Goal, int NumGoalVars, TermArena &Arena,
                  std::vector<Solution> &SolutionsOut, int MaxSolutions = 1);

  /// Convenience: true if \p Goal has at least one solution.
  bool proves(const Term *Goal, int NumGoalVars = 0);

  /// Text written by write/1, nl/0, tab/1 during the last solve().
  const std::string &output() const { return Out; }

  /// Error description when solve() returned RunStatus::Error.
  const std::string &errorMessage() const { return ErrorMsg; }

  /// Instructions executed during the last solve().
  uint64_t stepsExecuted() const { return Steps; }

  /// Execution statistics of the last solve().
  MachineStats stats() const {
    MachineStats Out = Stats;
    Out.Instructions = Steps;
    Out.MaxHeapCells = std::max(Out.MaxHeapCells, St.heapSize());
    Out.MaxTrailEntries = std::max(Out.MaxTrailEntries, St.trailSize());
    return Out;
  }

  SymbolTable &symbols() const { return Module.symbols(); }
  Store &store() { return St; }

private:

  RunStatus solveImpl(const Term *Goal, int NumGoalVars, TermArena &Arena,
                      std::vector<Solution> &SolutionsOut, int MaxSolutions);
  RunStatus runLoop();
  bool backtrack();                  // false when no choice point remains
  void fail() { Failed = true; }     // triggers backtrack in the loop
  bool execUnifyOp(const Instruction &I); // one unify_* in the current mode
  bool unify(Cell A, Cell B);
  bool runBuiltin(int Id, int Arity);
  bool evalArith(Cell C, int64_t &Out);
  int compareTerms(Cell A, Cell B); // standard order of terms
  void machineError(std::string Message);

  // Stack frame helpers (see Machine.cpp for the layouts).
  int64_t stackAllocBase() const;
  Cell &ySlot(int I) { return Stack[E + 3 + I]; }

  const CodeModule &Module;
  MachineOptions Options;
  Store St;
  std::vector<Cell> X;     // argument/temporary registers
  std::vector<Cell> Stack; // environments and choice points

  int32_t P = 0;   // program counter
  int32_t CP = 0;  // continuation (code address)
  int64_t E = -1;  // current environment (stack index)
  int64_t B = -1;  // newest choice point (stack index)
  int64_t B0 = -1; // cut barrier
  int64_t S = 0;   // structure pointer (heap address)
  bool WriteMode = false;
  bool Failed = false;
  bool Halt = false;
  uint64_t Steps = 0;
  MachineStats Stats;

  std::string Out;
  std::string ErrorMsg;
  bool HasError = false;
};

} // namespace awam

#endif // AWAM_WAM_MACHINE_H
