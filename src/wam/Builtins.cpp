//===- wam/Builtins.cpp - Concrete builtin predicates ---------------------===//
//
// Implements Machine::runBuiltin and its helpers: arithmetic evaluation,
// the standard order of terms, type tests, term construction/inspection
// and output.
//
//===----------------------------------------------------------------------===//

#include "compiler/Builtins.h"
#include "term/TermWriter.h"
#include "wam/Machine.h"

#include <limits>

using namespace awam;

bool Machine::evalArith(Cell C, int64_t &Result) {
  DerefResult D = St.deref(C);
  switch (D.C.T) {
  case Tag::Int:
    Result = D.C.V;
    return true;
  case Tag::Ref:
    machineError("arithmetic on unbound variable");
    return false;
  case Tag::Con:
    machineError("arithmetic on atom '" +
                 std::string(symbols().name(D.C.V)) + "'");
    return false;
  case Tag::Str: {
    const Cell &F = St.at(D.C.V);
    std::string_view Name = symbols().name(F.V);
    int Arity = F.funArity();
    int64_t A = 0, B_ = 0;
    if (!evalArith(Cell::ref(D.C.V + 1), A))
      return false;
    if (Arity == 2 && !evalArith(Cell::ref(D.C.V + 2), B_))
      return false;
    // Every signed-overflow / bad-shift case below is undefined behavior
    // in C++; all of them surface as machine errors instead (ISO Prolog
    // would raise evaluation_error — this machine's error channel is the
    // equivalent).
    constexpr int64_t IntMin = std::numeric_limits<int64_t>::min();
    if (Arity == 1) {
      if (Name == "-") {
        if (A == IntMin) {
          machineError("integer overflow");
          return false;
        }
        Result = -A;
        return true;
      }
      if (Name == "+") {
        Result = A;
        return true;
      }
      if (Name == "abs") {
        if (A == IntMin) {
          machineError("integer overflow");
          return false;
        }
        Result = A < 0 ? -A : A;
        return true;
      }
    } else if (Arity == 2) {
      if (Name == "+") {
        if (__builtin_add_overflow(A, B_, &Result)) {
          machineError("integer overflow");
          return false;
        }
        return true;
      }
      if (Name == "-") {
        if (__builtin_sub_overflow(A, B_, &Result)) {
          machineError("integer overflow");
          return false;
        }
        return true;
      }
      if (Name == "*") {
        if (__builtin_mul_overflow(A, B_, &Result)) {
          machineError("integer overflow");
          return false;
        }
        return true;
      }
      if (Name == "//" || Name == "/") {
        if (B_ == 0) {
          machineError("division by zero");
          return false;
        }
        if (A == IntMin && B_ == -1) {
          machineError("integer overflow");
          return false;
        }
        Result = A / B_;
        return true;
      }
      if (Name == "mod") {
        if (B_ == 0) {
          machineError("division by zero");
          return false;
        }
        if (A == IntMin && B_ == -1) {
          machineError("integer overflow");
          return false;
        }
        Result = ((A % B_) + B_) % B_;
        return true;
      }
      if (Name == "rem") {
        if (B_ == 0) {
          machineError("division by zero");
          return false;
        }
        if (A == IntMin && B_ == -1) {
          machineError("integer overflow");
          return false;
        }
        Result = A % B_;
        return true;
      }
      if (Name == "min") { Result = std::min(A, B_); return true; }
      if (Name == "max") { Result = std::max(A, B_); return true; }
      if (Name == ">>") {
        if (B_ < 0 || B_ >= 64) {
          machineError("bad shift count");
          return false;
        }
        Result = A >> B_;
        return true;
      }
      if (Name == "<<") {
        if (B_ < 0 || B_ >= 64) {
          machineError("bad shift count");
          return false;
        }
        Result = static_cast<int64_t>(static_cast<uint64_t>(A) << B_);
        return true;
      }
      if (Name == "/\\") { Result = A & B_; return true; }
      if (Name == "\\/") { Result = A | B_; return true; }
    }
    machineError("unknown arithmetic functor " + std::string(Name) + "/" +
                 std::to_string(Arity));
    return false;
  }
  default:
    machineError("bad arithmetic operand");
    return false;
  }
}

/// Standard order of terms: Var < Int < Atom < Compound; compound terms by
/// arity, then name, then arguments left to right. Lists order as '.'/2.
int Machine::compareTerms(Cell A, Cell B_) {
  DerefResult DA = St.deref(A);
  DerefResult DB = St.deref(B_);
  auto rank = [](const DerefResult &D) {
    switch (D.C.T) {
    case Tag::Ref: return 0;
    case Tag::Int: return 1;
    case Tag::Con: return 2;
    default: return 3;
    }
  };
  int RA = rank(DA), RB = rank(DB);
  if (RA != RB)
    return RA < RB ? -1 : 1;
  switch (RA) {
  case 0:
    return DA.Addr < DB.Addr ? -1 : DA.Addr == DB.Addr ? 0 : 1;
  case 1:
    return DA.C.V < DB.C.V ? -1 : DA.C.V == DB.C.V ? 0 : 1;
  case 2: {
    std::string_view NA = symbols().name(DA.C.V);
    std::string_view NB = symbols().name(DB.C.V);
    return NA < NB ? -1 : NA == NB ? 0 : 1;
  }
  default: {
    // View both as (name, arity, args...).
    auto shape = [&](const DerefResult &D) {
      if (D.C.T == Tag::Lis)
        return std::tuple<Symbol, int, int64_t>(SymbolTable::SymDot, 2,
                                                D.C.V - 1);
      const Cell &F = St.at(D.C.V);
      return std::tuple<Symbol, int, int64_t>(static_cast<Symbol>(F.V),
                                              F.funArity(), D.C.V);
    };
    auto [NameA, ArityA, BaseA] = shape(DA);
    auto [NameB, ArityB, BaseB] = shape(DB);
    if (ArityA != ArityB)
      return ArityA < ArityB ? -1 : 1;
    std::string_view NA = symbols().name(NameA);
    std::string_view NB = symbols().name(NameB);
    if (NA != NB)
      return NA < NB ? -1 : 1;
    for (int I = 1; I <= ArityA; ++I) {
      int C = compareTerms(Cell::ref(BaseA + I), Cell::ref(BaseB + I));
      if (C != 0)
        return C;
    }
    return 0;
  }
  }
}

bool Machine::runBuiltin(int Id, int Arity) {
  (void)Arity;
  switch (static_cast<BuiltinId>(Id)) {
  case BuiltinId::Is: {
    int64_t V = 0;
    if (!evalArith(X[1], V))
      return true; // machine error already set
    return unify(X[0], Cell::integer(V));
  }
  case BuiltinId::ArithLt:
  case BuiltinId::ArithGt:
  case BuiltinId::ArithLe:
  case BuiltinId::ArithGe:
  case BuiltinId::ArithEq:
  case BuiltinId::ArithNe: {
    int64_t A = 0, B_ = 0;
    if (!evalArith(X[0], A) || !evalArith(X[1], B_))
      return true;
    switch (static_cast<BuiltinId>(Id)) {
    case BuiltinId::ArithLt: return A < B_;
    case BuiltinId::ArithGt: return A > B_;
    case BuiltinId::ArithLe: return A <= B_;
    case BuiltinId::ArithGe: return A >= B_;
    case BuiltinId::ArithEq: return A == B_;
    default: return A != B_;
    }
  }
  case BuiltinId::Unify:
    return unify(X[0], X[1]);
  case BuiltinId::NotUnify: {
    int64_t Mark = St.trailMark();
    int64_t H = St.heapTop();
    bool Unifies = unify(X[0], X[1]);
    St.unwind(Mark);
    St.truncate(H);
    return !Unifies;
  }
  case BuiltinId::StructEq:
    return compareTerms(X[0], X[1]) == 0;
  case BuiltinId::StructNe:
    return compareTerms(X[0], X[1]) != 0;
  case BuiltinId::TermLt:
    return compareTerms(X[0], X[1]) < 0;
  case BuiltinId::TermGt:
    return compareTerms(X[0], X[1]) > 0;
  case BuiltinId::TermLe:
    return compareTerms(X[0], X[1]) <= 0;
  case BuiltinId::TermGe:
    return compareTerms(X[0], X[1]) >= 0;
  case BuiltinId::VarP:
    return St.deref(X[0]).C.T == Tag::Ref;
  case BuiltinId::NonvarP:
    return St.deref(X[0]).C.T != Tag::Ref;
  case BuiltinId::AtomP:
    return St.deref(X[0]).C.T == Tag::Con;
  case BuiltinId::IntegerP:
  case BuiltinId::NumberP:
    return St.deref(X[0]).C.T == Tag::Int;
  case BuiltinId::AtomicP: {
    Tag T = St.deref(X[0]).C.T;
    return T == Tag::Con || T == Tag::Int;
  }
  case BuiltinId::CompoundP: {
    Tag T = St.deref(X[0]).C.T;
    return T == Tag::Str || T == Tag::Lis;
  }
  case BuiltinId::Functor: {
    DerefResult D = St.deref(X[0]);
    switch (D.C.T) {
    case Tag::Con:
    case Tag::Int:
      return unify(X[1], D.C) && unify(X[2], Cell::integer(0));
    case Tag::Lis:
      return unify(X[1], Cell::atom(SymbolTable::SymDot)) &&
             unify(X[2], Cell::integer(2));
    case Tag::Str: {
      const Cell &F = St.at(D.C.V);
      return unify(X[1], Cell::atom(static_cast<Symbol>(F.V))) &&
             unify(X[2], Cell::integer(F.funArity()));
    }
    case Tag::Ref: {
      // Construction mode: functor(X, Name, Arity).
      DerefResult DN = St.deref(X[1]);
      DerefResult DAr = St.deref(X[2]);
      if (DAr.C.T != Tag::Int) {
        machineError("functor/3: arity must be an integer");
        return true;
      }
      int N = static_cast<int>(DAr.C.V);
      if (N == 0)
        return unify(X[0], DN.C);
      if (N < 0) {
        machineError("functor/3: arity must be non-negative");
        return true;
      }
      if (DN.C.T != Tag::Con) {
        machineError("functor/3: name must be an atom");
        return true;
      }
      if (static_cast<Symbol>(DN.C.V) == SymbolTable::SymDot && N == 2) {
        int64_t Base = St.pushVar();
        St.pushVar();
        return unify(X[0], Cell::lis(Base));
      }
      int64_t FunAddr =
          St.push(Cell::fun(static_cast<Symbol>(DN.C.V), N));
      for (int I = 0; I != N; ++I)
        St.pushVar();
      return unify(X[0], Cell::str(FunAddr));
    }
    default:
      machineError("functor/3: bad argument");
      return true;
    }
  }
  case BuiltinId::Arg: {
    DerefResult DN = St.deref(X[0]);
    DerefResult DT = St.deref(X[1]);
    if (DN.C.T != Tag::Int) {
      machineError("arg/3: index must be an integer");
      return true;
    }
    int64_t N = DN.C.V;
    if (DT.C.T == Tag::Lis)
      return N >= 1 && N <= 2 && unify(X[2], Cell::ref(DT.C.V + N - 1));
    if (DT.C.T != Tag::Str) {
      machineError("arg/3: second argument must be compound");
      return true;
    }
    const Cell &F = St.at(DT.C.V);
    return N >= 1 && N <= F.funArity() &&
           unify(X[2], Cell::ref(DT.C.V + N));
  }
  case BuiltinId::Univ: {
    DerefResult D = St.deref(X[0]);
    if (D.C.T != Tag::Ref) {
      // Decompose: T =.. [Name|Args].
      std::vector<Cell> Items;
      if (D.C.T == Tag::Con || D.C.T == Tag::Int) {
        Items.push_back(D.C);
      } else if (D.C.T == Tag::Lis) {
        Items.push_back(Cell::atom(SymbolTable::SymDot));
        Items.push_back(Cell::ref(D.C.V));
        Items.push_back(Cell::ref(D.C.V + 1));
      } else {
        const Cell &F = St.at(D.C.V);
        Items.push_back(Cell::atom(static_cast<Symbol>(F.V)));
        for (int I = 1; I <= F.funArity(); ++I)
          Items.push_back(Cell::ref(D.C.V + I));
      }
      Cell ListCell = Cell::atom(SymbolTable::SymNil);
      for (size_t I = Items.size(); I != 0; --I) {
        int64_t Base = St.push(Items[I - 1]);
        St.push(ListCell);
        ListCell = Cell::lis(Base);
      }
      return unify(X[1], ListCell);
    }
    // Construction: read the list, then build the term.
    std::vector<Cell> Items;
    DerefResult L = St.deref(X[1]);
    while (L.C.T == Tag::Lis) {
      Items.push_back(Cell::ref(L.C.V));
      L = St.deref(Cell::ref(L.C.V + 1));
    }
    if (!(L.C.T == Tag::Con && L.C.V == SymbolTable::SymNil) ||
        Items.empty()) {
      machineError("=../2: right argument must be a proper non-empty list");
      return true;
    }
    DerefResult Head = St.deref(Items[0]);
    if (Items.size() == 1)
      return unify(X[0], Head.C);
    if (Head.C.T != Tag::Con) {
      machineError("=../2: functor must be an atom");
      return true;
    }
    if (static_cast<Symbol>(Head.C.V) == SymbolTable::SymDot &&
        Items.size() == 3) {
      int64_t Base = St.push(Items[1]);
      St.push(Items[2]);
      return unify(X[0], Cell::lis(Base));
    }
    int64_t FunAddr = St.push(Cell::fun(static_cast<Symbol>(Head.C.V),
                                        static_cast<int>(Items.size()) - 1));
    for (size_t I = 1; I != Items.size(); ++I)
      St.push(Items[I]);
    return unify(X[0], Cell::str(FunAddr));
  }
  case BuiltinId::Write: {
    TermArena Arena;
    const Term *T = St.readTerm(X[0], Arena, symbols());
    Out += writeTerm(T, symbols(), WriteOptions{.QuoteAtoms = false});
    return true;
  }
  case BuiltinId::Nl:
    Out += "\n";
    return true;
  case BuiltinId::Tab: {
    int64_t N = 0;
    if (!evalArith(X[0], N))
      return true;
    Out.append(static_cast<size_t>(std::max<int64_t>(N, 0)), ' ');
    return true;
  }
  case BuiltinId::HaltB:
    Halt = true;
    return true;
  case BuiltinId::NumBuiltins:
    break;
  }
  machineError("unknown builtin id");
  return true;
}
