//===- wam/Store.h - Heap, trail, dereferencing -----------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory substrate shared by the concrete and abstract machines: the
/// heap, the value trail (the paper keeps the standard three-stack scheme;
/// we use a value trail because the abstract machine overwrites non-Ref
/// cells when it instantiates abstract terms), dereferencing, binding, and
/// conversion between heap terms and source Terms.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_WAM_STORE_H
#define AWAM_WAM_STORE_H

#include "support/SymbolTable.h"
#include "term/Term.h"
#include "wam/Cell.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace awam {

/// A dereferenced value: the cell plus its heap address (kNoAddr when the
/// value is a register immediate that does not live on the heap).
struct DerefResult {
  Cell C;
  int64_t Addr;
};

/// Heap address sentinel for values not residing on the heap.
inline constexpr int64_t kNoAddr = -1;

/// Heap + trail. Addresses are heap indexes and remain stable as the heap
/// grows.
class Store {
public:
  /// Pushes \p C and returns its address.
  int64_t push(Cell C) {
    Heap.push_back(C);
    return static_cast<int64_t>(Heap.size()) - 1;
  }

  /// Pushes a fresh unbound variable and returns its address.
  int64_t pushVar() {
    int64_t A = static_cast<int64_t>(Heap.size());
    Heap.push_back(Cell::ref(A));
    return A;
  }

  Cell &at(int64_t Addr) { return Heap[Addr]; }
  const Cell &at(int64_t Addr) const { return Heap[Addr]; }
  int64_t heapTop() const { return static_cast<int64_t>(Heap.size()); }

  /// Truncates the heap to \p Top (backtracking).
  void truncate(int64_t Top) { Heap.resize(Top); }

  /// Follows Ref chains. Unbound variables and Abs cells dereference to
  /// themselves with their address; immediates yield kNoAddr.
  DerefResult deref(Cell C) const {
    int64_t Addr = kNoAddr;
    while (C.T == Tag::Ref) {
      const Cell &H = Heap[C.V];
      if (H.T == Tag::Ref && H.V == C.V)
        return {H, C.V}; // unbound
      Addr = C.V;
      C = H;
    }
    return {C, Addr};
  }

  /// Overwrites the heap cell at \p Addr with \p C, recording the old value
  /// on the trail.
  void bind(int64_t Addr, Cell C) {
    Trail.push_back({Addr, Heap[Addr]});
    Heap[Addr] = C;
  }

  int64_t trailMark() const { return static_cast<int64_t>(Trail.size()); }

  /// Undoes all bindings made since \p Mark.
  void unwind(int64_t Mark) {
    while (static_cast<int64_t>(Trail.size()) > Mark) {
      const TrailEntry &E = Trail.back();
      Heap[E.Addr] = E.Old;
      Trail.pop_back();
    }
  }

  /// Builds source term \p T on the heap. \p VarAddrs maps clause var ids to
  /// heap addresses (created on demand), so shared variables share cells.
  int64_t buildTerm(const Term *T, std::unordered_map<int, int64_t> &VarAddrs);

  /// Reads the heap value \p C back as a source Term in \p Arena. Unbound
  /// variables become Var terms named _G<addr>; Abs cells become atoms
  /// spelled like their kind (for tests/debugging). \p MaxDepth guards
  /// against cyclic terms; exceeding it yields the atom '...'.
  const Term *readTerm(Cell C, TermArena &Arena, SymbolTable &Syms,
                       int MaxDepth = 10000) const;

  /// Renders the heap value \p C as text (convenience over readTerm).
  std::string show(Cell C, SymbolTable &Syms) const;

  size_t heapSize() const { return Heap.size(); }
  size_t trailSize() const { return Trail.size(); }

  /// Drops all heap and trail contents.
  void reset() {
    Heap.clear();
    Trail.clear();
  }

private:
  struct TrailEntry {
    int64_t Addr;
    Cell Old;
  };

  std::vector<Cell> Heap;
  std::vector<TrailEntry> Trail;
};

} // namespace awam

#endif // AWAM_WAM_STORE_H
