//===- analyzer/Specialize.h - Analysis facts for the specializer -*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bridge from an AnalysisResult to the compiler's analyzer-neutral
/// SpecializationFacts: per predicate, argument binding facts joined over
/// every table item (calling pattern), the distinct first-argument call
/// shapes, and the determinism class from the det machinery. This is the
/// only translation point — the compiler's Specializer never sees
/// patterns or extension tables.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_SPECIALIZE_H
#define AWAM_ANALYZER_SPECIALIZE_H

#include "analyzer/Analyzer.h"
#include "compiler/Specializer.h"

namespace awam {

/// Builds specializer facts from \p R's extension table. Facts are joined
/// across all of a predicate's items, so they hold at *every* call the
/// analysis saw; predicates with no table item stay Analyzed = false and
/// are copied verbatim by the specializer. Failing items still contribute
/// their call shapes (the dispatch runs even when the call then fails).
SpecializationFacts buildSpecializationFacts(const AnalysisResult &R,
                                             const CompiledProgram &Program);

} // namespace awam

#endif // AWAM_ANALYZER_SPECIALIZE_H
