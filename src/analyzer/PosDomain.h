//===- analyzer/PosDomain.h - Groundness-dependency domain ------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Pos-style groundness-dependency domain ("pos"): per argument, only
/// ground (g) or unknown (any) — strictly coarser than the default domain's
/// types — but success patterns additionally carry a *truth table* of the
/// achievable groundness valuations, so dependencies between arguments
/// survive ("the third argument of append/3 is ground whenever the first
/// two are") where the default domain's per-argument view loses them.
///
/// Encoding: call patterns are plain root tuples over {GroundP, AnyP}.
/// Success patterns of arity 1..kPosMaxTTArity append one extra *non-root*
/// IntP node whose Num is the truth-table bitmask: bit v is set iff the
/// valuation v is achievable, where bit i of v means "argument i+1 is
/// ground on success". The engine's pattern machinery carries the node
/// opaquely (equality/hash compare all nodes; instantiate builds cells from
/// roots only, so the marker never leaks into the machine's heap), and the
/// domain's lub joins truth tables by bitwise OR — an exact join of
/// valuation sets.
///
/// Soundness of the dependency inference rests on the leaf view of machine
/// cells (collectNongroundLeaves): a value is ground exactly when its
/// nonground-leaf set is empty, and aliased values share leaves, so
/// "grounding arguments I forces argument j ground" is decided by leaf-set
/// inclusion, strengthened by the constraint stack of memoized summaries
/// applied on the current path (PosRunState, rewound in lockstep with the
/// machine trail).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_POSDOMAIN_H
#define AWAM_ANALYZER_POSDOMAIN_H

#include "analyzer/Domain.h"

namespace awam {

/// Largest arity that gets a groundness truth table (64 valuations fit one
/// bitmask word; higher arities degrade to the root tuple alone, which is
/// still sound — a missing table claims nothing).
inline constexpr int kPosMaxTTArity = 6;

/// True if \p P carries a truth-table marker node (success patterns of
/// arity 1..kPosMaxTTArity under the pos domain).
bool posPatternHasTT(const PatternRef &P);

/// The truth-table bitmask of \p P; 0 if it carries none.
uint64_t posPatternTT(const PatternRef &P);

} // namespace awam

#endif // AWAM_ANALYZER_POSDOMAIN_H
