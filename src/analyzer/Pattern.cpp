//===- analyzer/Pattern.cpp -----------------------------------------------===//

#include "analyzer/Pattern.h"

#include "absdom/AbsOps.h"
#include "support/StringUtil.h"

#include <map>

using namespace awam;

size_t Pattern::hash() const {
  size_t H = Nodes.size() * 1469598103934665603ull;
  auto Mix = [&H](size_t V) {
    H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  };
  for (const PatNode &N : Nodes) {
    Mix(static_cast<size_t>(N.K));
    Mix(N.Sym);
    Mix(static_cast<size_t>(N.Num));
    for (int32_t C : N.Children)
      Mix(static_cast<size_t>(C));
  }
  for (int32_t R : Roots)
    Mix(static_cast<size_t>(R));
  return H;
}

namespace {

class Canonicalizer {
public:
  Canonicalizer(const Store &St, int DepthLimit, bool WidenConstants)
      : St(St), DepthLimit(DepthLimit), WidenConstants(WidenConstants) {}

  Pattern run(const std::vector<Cell> &Args) {
    Pattern P;
    P.Nodes.reserve(4 * Args.size() + 8);
    P.Roots.reserve(Args.size());
    Seen.reserve(16);
    for (const Cell &A : Args)
      P.Roots.push_back(visit(A, 0, P));
    return P;
  }

private:
  /// Node identity for sharing detection: structures and lists identify
  /// by their base block (several cells can hold the same Str/Lis value),
  /// other values by the cell that holds them.
  static int64_t keyOf(const DerefResult &D) {
    if (D.C.T == Tag::Str)
      return (D.C.V << 2) | 1;
    if (D.C.T == Tag::Lis)
      return (D.C.V << 2) | 2;
    return D.Addr == kNoAddr ? kNoAddr : (D.Addr << 2);
  }

  int32_t visit(Cell C, int Depth, Pattern &P) {
    DerefResult D = St.deref(C);
    int64_t Key = keyOf(D);
    // Patterns are small (depth-cut), so a linear scan beats a map here.
    if (Key != kNoAddr)
      for (auto [Addr, Id] : Seen)
        if (Addr == Key) {
          // Re-visiting a node whose children are still being built means
          // a cyclic (rational) term: patterns must stay acyclic, so the
          // back-edge widens to a leaf (a cyclic term is always nonvar).
          for (int64_t Live : InProgress)
            if (Live == Key) {
              int32_t Leaf = static_cast<int32_t>(P.Nodes.size());
              PatNode N;
              N.K = PatKind::NVP;
              P.Nodes.push_back(N);
              return Leaf;
            }
          return Id;
        }
    int32_t Id = static_cast<int32_t>(P.Nodes.size());
    P.Nodes.emplace_back();
    if (Key != kNoAddr) {
      Seen.emplace_back(Key, Id);
      InProgress.push_back(Key);
    }
    PatNode N = makeNode(D, Depth, P);
    if (Key != kNoAddr)
      InProgress.pop_back();
    P.Nodes[Id] = std::move(N);
    return Id;
  }

  PatNode makeNode(const DerefResult &D, int Depth, Pattern &P) {
    PatNode N;
    switch (D.C.T) {
    case Tag::Ref:
      N.K = PatKind::VarP;
      return N;
    case Tag::Con:
      // Call abstraction widens constants to their types; '[]' keeps its
      // list information.
      if (WidenConstants && D.C.V != SymbolTable::SymNil) {
        N.K = PatKind::AtomTP;
        return N;
      }
      N.K = PatKind::ConP;
      N.Sym = static_cast<Symbol>(D.C.V);
      return N;
    case Tag::Int:
      if (WidenConstants) {
        N.K = PatKind::IntTP;
        return N;
      }
      N.K = PatKind::IntP;
      N.Num = D.C.V;
      return N;
    case Tag::Abs:
      switch (D.C.absKind()) {
      case AbsKind::Any: N.K = PatKind::AnyP; return N;
      case AbsKind::NV: N.K = PatKind::NVP; return N;
      case AbsKind::Ground: N.K = PatKind::GroundP; return N;
      case AbsKind::Const: N.K = PatKind::ConstP; return N;
      case AbsKind::AtomT: N.K = PatKind::AtomTP; return N;
      case AbsKind::IntT: N.K = PatKind::IntTP; return N;
      case AbsKind::List:
        N.K = PatKind::ListP;
        N.Children.push_back(visit(Cell::ref(D.C.V), Depth + 1, P));
        return N;
      case AbsKind::Var: N.K = PatKind::VarP; return N;
      }
      N.K = PatKind::AnyP;
      return N;
    case Tag::Lis:
      if (Depth + 1 >= DepthLimit)
        return widened(D, P);
      N.K = PatKind::ConsP;
      N.Children.push_back(visit(Cell::ref(D.C.V), Depth + 1, P));
      N.Children.push_back(visit(Cell::ref(D.C.V + 1), Depth + 1, P));
      return N;
    case Tag::Str: {
      if (Depth + 1 >= DepthLimit)
        return widened(D, P);
      const Cell F = St.at(D.C.V);
      N.K = PatKind::StrP;
      N.Sym = static_cast<Symbol>(F.V);
      for (int I = 1; I <= F.funArity(); ++I)
        N.Children.push_back(visit(Cell::ref(D.C.V + I), Depth + 1, P));
      return N;
    }
    case Tag::Fun:
    case Tag::Ctl:
      assert(false && "non-term cell in pattern");
      N.K = PatKind::AnyP;
      return N;
    }
    return N;
  }

  /// The term-depth restriction: a compound below the limit is simplified
  /// to a simple abstract type (Section 3). Alpha-lists count as simple
  /// elements, so a proper list widens to glist/anylist rather than g/nv.
  PatNode widened(const DerefResult &D, Pattern &P) {
    PatNode N;
    if (D.C.T == Tag::Lis) {
      // Walk the spine to see whether this is a proper list.
      bool Proper = false;
      bool Ground = true;
      Cell Cur = D.C;
      for (int Fuel = 0; Fuel != 512; ++Fuel) {
        DerefResult DC = St.deref(Cur);
        if (DC.C.T == Tag::Con && DC.C.V == SymbolTable::SymNil) {
          Proper = true;
          break;
        }
        if (DC.C.T == Tag::Abs && DC.C.absKind() == AbsKind::List) {
          Proper = true;
          Ground = Ground && isGroundCell(St, Cell::ref(DC.C.V));
          break;
        }
        if (DC.C.T != Tag::Lis)
          break;
        Ground = Ground && isGroundCell(St, Cell::ref(DC.C.V));
        Cur = Cell::ref(DC.C.V + 1);
      }
      if (Proper) {
        N.K = PatKind::ListP;
        PatNode Elem;
        Elem.K = Ground ? PatKind::GroundP : PatKind::AnyP;
        N.Children.push_back(static_cast<int32_t>(P.Nodes.size()));
        P.Nodes.push_back(Elem);
        return N;
      }
    }
    N.K = isGroundCell(St, D.C) ? PatKind::GroundP : PatKind::NVP;
    return N;
  }

  const Store &St;
  int DepthLimit;
  bool WidenConstants;
  std::vector<std::pair<int64_t, int32_t>> Seen;
  std::vector<int64_t> InProgress;
};

} // namespace

Pattern awam::canonicalize(const Store &St, const std::vector<Cell> &Args,
                           int DepthLimit, bool WidenConstants) {
  return Canonicalizer(St, DepthLimit, WidenConstants).run(Args);
}

std::vector<int64_t> awam::instantiate(Store &St, const Pattern &P) {
  std::vector<int64_t> CellOf(P.Nodes.size(), -1);

  // Build nodes bottom-up with an explicit worklist (the DAG is acyclic).
  struct Builder {
    Store &St;
    const Pattern &P;
    std::vector<int64_t> &CellOf;

    int64_t build(int32_t Id) {
      if (CellOf[Id] >= 0)
        return CellOf[Id];
      const PatNode &N = P.Nodes[Id];
      int64_t Out = -1;
      switch (N.K) {
      case PatKind::VarP: Out = St.pushVar(); break;
      case PatKind::AnyP: Out = St.push(Cell::abs(AbsKind::Any)); break;
      case PatKind::NVP: Out = St.push(Cell::abs(AbsKind::NV)); break;
      case PatKind::GroundP:
        Out = St.push(Cell::abs(AbsKind::Ground));
        break;
      case PatKind::ConstP: Out = St.push(Cell::abs(AbsKind::Const)); break;
      case PatKind::AtomTP: Out = St.push(Cell::abs(AbsKind::AtomT)); break;
      case PatKind::IntTP: Out = St.push(Cell::abs(AbsKind::IntT)); break;
      case PatKind::ConP: Out = St.push(Cell::atom(N.Sym)); break;
      case PatKind::IntP: Out = St.push(Cell::integer(N.Num)); break;
      case PatKind::ListP: {
        int64_t Elem = build(N.Children[0]);
        Out = St.push(Cell::abs(AbsKind::List, Elem));
        break;
      }
      case PatKind::ConsP: {
        int64_t Car = build(N.Children[0]);
        int64_t Cdr = build(N.Children[1]);
        int64_t Base = St.push(Cell::ref(Car));
        St.push(Cell::ref(Cdr));
        Out = St.push(Cell::lis(Base));
        break;
      }
      case PatKind::StrP: {
        std::vector<int64_t> Args;
        for (int32_t C : N.Children)
          Args.push_back(build(C));
        int64_t FunAddr = St.push(
            Cell::fun(N.Sym, static_cast<int>(N.Children.size())));
        for (int64_t A : Args)
          St.push(Cell::ref(A));
        Out = St.push(Cell::str(FunAddr));
        break;
      }
      }
      CellOf[Id] = Out;
      return Out;
    }
  } B{St, P, CellOf};

  std::vector<int64_t> Roots;
  Roots.reserve(P.Roots.size());
  for (int32_t R : P.Roots)
    Roots.push_back(B.build(R));
  return Roots;
}

Pattern awam::lubPatterns(const Pattern &A, const Pattern &B,
                          int DepthLimit) {
  assert(A.Roots.size() == B.Roots.size() && "arity mismatch in lub");
  Store Scratch;
  std::vector<int64_t> RA = instantiate(Scratch, A);
  std::vector<int64_t> RB = instantiate(Scratch, B);
  LubContext Ctx(Scratch);
  std::vector<Cell> Result;
  Result.reserve(RA.size());
  for (size_t I = 0; I != RA.size(); ++I)
    Result.push_back(
        Cell::ref(Ctx.lub(Cell::ref(RA[I]), Cell::ref(RB[I]))));
  return canonicalize(Scratch, Result, DepthLimit);
}

bool awam::patternLeq(const Pattern &A, const Pattern &B, int DepthLimit) {
  return lubPatterns(A, B, DepthLimit) == B;
}

std::string Pattern::str(const SymbolTable &Syms) const {
  std::string Out = "(";
  std::vector<int> Visits(Nodes.size(), 0);
  // First pass: count references so only truly shared nodes get markers.
  std::vector<int> RefCount(Nodes.size(), 0);
  for (int32_t R : Roots)
    ++RefCount[R];
  for (const PatNode &N : Nodes)
    for (int32_t C : N.Children)
      ++RefCount[C];

  struct Printer {
    const Pattern &P;
    const SymbolTable &Syms;
    std::vector<int> &Visits;
    std::vector<int> &RefCount;

    void print(int32_t Id, std::string &Out) {
      const PatNode &N = P.Nodes[Id];
      bool Shared = RefCount[Id] > 1 && N.K != PatKind::ConP &&
                    N.K != PatKind::IntP;
      if (Shared && Visits[Id]++) {
        Out += "_S" + std::to_string(Id);
        return;
      }
      std::string Marker = Shared ? "_S" + std::to_string(Id) + "=" : "";
      Out += Marker;
      switch (N.K) {
      case PatKind::VarP: Out += "var"; return;
      case PatKind::AnyP: Out += "any"; return;
      case PatKind::NVP: Out += "nv"; return;
      case PatKind::GroundP: Out += "g"; return;
      case PatKind::ConstP: Out += "const"; return;
      case PatKind::AtomTP: Out += "atom"; return;
      case PatKind::IntTP: Out += "int"; return;
      case PatKind::ConP:
        Out += quoteAtom(Syms.name(N.Sym));
        return;
      case PatKind::IntP:
        Out += std::to_string(N.Num);
        return;
      case PatKind::ListP: {
        const PatNode &E = P.Nodes[N.Children[0]];
        // "glist" style for simple element types, "(...)list" otherwise.
        std::string Elem;
        print(N.Children[0], Elem);
        if (E.Children.empty() && Elem.find('=') == std::string::npos)
          Out += Elem + "list";
        else
          Out += "(" + Elem + ")list";
        return;
      }
      case PatKind::ConsP: {
        Out += "[";
        print(N.Children[0], Out);
        int32_t Tail = N.Children[1];
        for (;;) {
          const PatNode &T = P.Nodes[Tail];
          if (T.K == PatKind::ConP && T.Sym == SymbolTable::SymNil) {
            Out += "]";
            return;
          }
          if (T.K == PatKind::ConsP && RefCount[Tail] <= 1) {
            Out += ",";
            print(T.Children[0], Out);
            Tail = T.Children[1];
            continue;
          }
          Out += "|";
          print(Tail, Out);
          Out += "]";
          return;
        }
      }
      case PatKind::StrP: {
        Out += quoteAtom(Syms.name(N.Sym));
        Out += "(";
        for (size_t I = 0; I != N.Children.size(); ++I) {
          if (I)
            Out += ",";
          print(N.Children[I], Out);
        }
        Out += ")";
        return;
      }
      }
    }
  } Pr{*this, Syms, Visits, RefCount};

  for (size_t I = 0; I != Roots.size(); ++I) {
    if (I)
      Out += ", ";
    Pr.print(Roots[I], Out);
  }
  return Out + ")";
}
