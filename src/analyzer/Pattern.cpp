//===- analyzer/Pattern.cpp -----------------------------------------------===//

#include "analyzer/Pattern.h"

#include "absdom/AbsOps.h"
#include "support/StringUtil.h"

#include <map>

using namespace awam;

size_t PatternRef::hash() const {
  size_t H = NumNodes * 1469598103934665603ull;
  auto Mix = [&H](size_t V) {
    H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  };
  for (size_t I = 0; I != NumNodes; ++I) {
    const PatNode &N = Nodes[I];
    // One mix per node: kind, symbol and (truncated) number packed into a
    // word. Collisions only cost an extra deep compare in the interner.
    Mix(static_cast<size_t>(N.K) |
        (static_cast<size_t>(static_cast<uint32_t>(N.Sym)) << 8) |
        (static_cast<size_t>(static_cast<uint64_t>(N.Num)) << 40));
    for (int32_t C = 0; C != N.ChildCount; ++C)
      Mix(static_cast<size_t>(ChildStore[N.ChildBegin + C]));
  }
  for (size_t I = 0; I != NumRoots; ++I)
    Mix(static_cast<size_t>(Roots[I]));
  return H;
}

size_t Pattern::hash() const { return PatternRef(*this).hash(); }

namespace {

class Canonicalizer {
public:
  Canonicalizer(const Store &St, int DepthLimit, bool WidenConstants,
                std::vector<std::pair<int64_t, int32_t>> &Seen,
                std::vector<int64_t> &InProgress,
                std::vector<int32_t> &ChildTmp)
      : St(St), DepthLimit(DepthLimit), WidenConstants(WidenConstants),
        Seen(Seen), InProgress(InProgress), ChildTmp(ChildTmp) {}

  /// Writes the canonical pattern into \p Out, reusing its node slots and
  /// ChildStore capacity so steady-state canonicalization performs no heap
  /// allocation. Node ids are assigned in the same first-visit order as
  /// always, so the canonical form is unchanged.
  void run(const std::vector<Cell> &Args, Pattern &Out) {
    Used = 0;
    Seen.clear();
    InProgress.clear();
    ChildTmp.clear();
    Out.Nodes.reserve(4 * Args.size() + 8);
    Out.ChildStore.clear();
    Out.Roots.clear();
    Out.Roots.reserve(Args.size());
    Seen.reserve(16);
    for (const Cell &A : Args)
      Out.Roots.push_back(visit(A, 0, Out));
    Out.Nodes.resize(Used);
  }

private:
  /// Claims the next node slot in first-visit order, recycling a slot left
  /// over from a previous pattern when one exists.
  int32_t alloc(Pattern &P) {
    int32_t Id = Used++;
    if (static_cast<size_t>(Id) < P.Nodes.size())
      P.Nodes[Id] = PatNode{};
    else
      P.Nodes.emplace_back();
    return Id;
  }

  /// Commits the child ids pushed onto ChildTmp since \p Mark to node
  /// \p Id (appended as a fresh ChildStore slice). Children are staged on
  /// one shared stack because visiting a child may itself allocate nodes
  /// (and grandchildren) in between.
  void setChildren(int32_t Id, size_t Mark, Pattern &P) {
    PatNode &N = P.Nodes[Id];
    N.ChildBegin = static_cast<int32_t>(P.ChildStore.size());
    N.ChildCount = static_cast<int32_t>(ChildTmp.size() - Mark);
    P.ChildStore.insert(P.ChildStore.end(), ChildTmp.begin() + Mark,
                        ChildTmp.end());
    ChildTmp.resize(Mark);
  }
  /// Node identity for sharing detection: structures and lists identify
  /// by their base block (several cells can hold the same Str/Lis value),
  /// other values by the cell that holds them.
  static int64_t keyOf(const DerefResult &D) {
    if (D.C.T == Tag::Str)
      return (D.C.V << 2) | 1;
    if (D.C.T == Tag::Lis)
      return (D.C.V << 2) | 2;
    return D.Addr == kNoAddr ? kNoAddr : (D.Addr << 2);
  }

  int32_t visit(Cell C, int Depth, Pattern &P) {
    DerefResult D = St.deref(C);
    int64_t Key = keyOf(D);
    // Patterns are small (depth-cut), so a linear scan beats a map here.
    if (Key != kNoAddr)
      for (auto [Addr, Id] : Seen)
        if (Addr == Key) {
          // Re-visiting a node whose children are still being built means
          // a cyclic (rational) term: patterns must stay acyclic, so the
          // back-edge widens to a leaf (a cyclic term is always nonvar).
          for (int64_t Live : InProgress)
            if (Live == Key) {
              int32_t Leaf = alloc(P);
              P.Nodes[Leaf].K = PatKind::NVP;
              return Leaf;
            }
          return Id;
        }
    int32_t Id = alloc(P);
    if (Key != kNoAddr) {
      Seen.emplace_back(Key, Id);
      InProgress.push_back(Key);
    }
    fill(Id, D, Depth, P);
    if (Key != kNoAddr)
      InProgress.pop_back();
    return Id;
  }

  // Fills node \p Id in place. References into P.Nodes must be re-fetched
  // after any visit() call — visiting children may grow the node vector.
  void fill(int32_t Id, const DerefResult &D, int Depth, Pattern &P) {
    switch (D.C.T) {
    case Tag::Ref:
      P.Nodes[Id].K = PatKind::VarP;
      return;
    case Tag::Con:
      // Call abstraction widens constants to their types; '[]' keeps its
      // list information.
      if (WidenConstants && D.C.V != SymbolTable::SymNil) {
        P.Nodes[Id].K = PatKind::AtomTP;
        return;
      }
      P.Nodes[Id].K = PatKind::ConP;
      P.Nodes[Id].Sym = static_cast<Symbol>(D.C.V);
      return;
    case Tag::Int:
      if (WidenConstants) {
        P.Nodes[Id].K = PatKind::IntTP;
        return;
      }
      P.Nodes[Id].K = PatKind::IntP;
      P.Nodes[Id].Num = D.C.V;
      return;
    case Tag::Abs:
      switch (D.C.absKind()) {
      case AbsKind::Any: P.Nodes[Id].K = PatKind::AnyP; return;
      case AbsKind::NV: P.Nodes[Id].K = PatKind::NVP; return;
      case AbsKind::Ground: P.Nodes[Id].K = PatKind::GroundP; return;
      case AbsKind::Const: P.Nodes[Id].K = PatKind::ConstP; return;
      case AbsKind::AtomT: P.Nodes[Id].K = PatKind::AtomTP; return;
      case AbsKind::IntT: P.Nodes[Id].K = PatKind::IntTP; return;
      case AbsKind::List: {
        size_t Mark = ChildTmp.size();
        ChildTmp.push_back(visit(Cell::ref(D.C.V), Depth + 1, P));
        P.Nodes[Id].K = PatKind::ListP;
        setChildren(Id, Mark, P);
        return;
      }
      case AbsKind::Var: P.Nodes[Id].K = PatKind::VarP; return;
      }
      P.Nodes[Id].K = PatKind::AnyP;
      return;
    case Tag::Lis: {
      if (Depth + 1 >= DepthLimit) {
        widenInto(Id, D, P);
        return;
      }
      size_t Mark = ChildTmp.size();
      ChildTmp.push_back(visit(Cell::ref(D.C.V), Depth + 1, P));
      ChildTmp.push_back(visit(Cell::ref(D.C.V + 1), Depth + 1, P));
      P.Nodes[Id].K = PatKind::ConsP;
      setChildren(Id, Mark, P);
      return;
    }
    case Tag::Str: {
      if (Depth + 1 >= DepthLimit) {
        widenInto(Id, D, P);
        return;
      }
      const Cell F = St.at(D.C.V);
      size_t Mark = ChildTmp.size();
      for (int I = 1; I <= F.funArity(); ++I)
        ChildTmp.push_back(visit(Cell::ref(D.C.V + I), Depth + 1, P));
      P.Nodes[Id].K = PatKind::StrP;
      P.Nodes[Id].Sym = static_cast<Symbol>(F.V);
      setChildren(Id, Mark, P);
      return;
    }
    case Tag::Fun:
    case Tag::Ctl:
      assert(false && "non-term cell in pattern");
      P.Nodes[Id].K = PatKind::AnyP;
      return;
    }
  }

  /// The term-depth restriction: a compound below the limit is simplified
  /// to a simple abstract type (Section 3). Alpha-lists count as simple
  /// elements, so a proper list widens to glist/anylist rather than g/nv.
  void widenInto(int32_t Id, const DerefResult &D, Pattern &P) {
    if (D.C.T == Tag::Lis) {
      // Walk the spine to see whether this is a proper list.
      bool Proper = false;
      bool Ground = true;
      Cell Cur = D.C;
      for (int Fuel = 0; Fuel != 512; ++Fuel) {
        DerefResult DC = St.deref(Cur);
        if (DC.C.T == Tag::Con && DC.C.V == SymbolTable::SymNil) {
          Proper = true;
          break;
        }
        if (DC.C.T == Tag::Abs && DC.C.absKind() == AbsKind::List) {
          Proper = true;
          Ground = Ground && isGroundCell(St, Cell::ref(DC.C.V));
          break;
        }
        if (DC.C.T != Tag::Lis)
          break;
        Ground = Ground && isGroundCell(St, Cell::ref(DC.C.V));
        Cur = Cell::ref(DC.C.V + 1);
      }
      if (Proper) {
        int32_t Elem = alloc(P);
        P.Nodes[Elem].K = Ground ? PatKind::GroundP : PatKind::AnyP;
        PatNode &N = P.Nodes[Id];
        N.K = PatKind::ListP;
        N.ChildBegin = static_cast<int32_t>(P.ChildStore.size());
        N.ChildCount = 1;
        P.ChildStore.push_back(Elem);
        return;
      }
    }
    P.Nodes[Id].K =
        isGroundCell(St, D.C) ? PatKind::GroundP : PatKind::NVP;
  }

  const Store &St;
  int DepthLimit;
  bool WidenConstants;
  int32_t Used = 0;
  std::vector<std::pair<int64_t, int32_t>> &Seen;
  std::vector<int64_t> &InProgress;
  std::vector<int32_t> &ChildTmp;
};

} // namespace

void CanonicalizeContext::canonicalizeInto(const Store &St,
                                           const std::vector<Cell> &Args,
                                           Pattern &Out, int DepthLimit,
                                           bool WidenConstants) {
  Canonicalizer(St, DepthLimit, WidenConstants, Seen, InProgress, ChildTmp)
      .run(Args, Out);
}

Pattern awam::canonicalize(const Store &St, const std::vector<Cell> &Args,
                           int DepthLimit, bool WidenConstants) {
  Pattern P;
  canonicalizeInto(St, Args, P, DepthLimit, WidenConstants);
  return P;
}

void awam::canonicalizeInto(const Store &St, const std::vector<Cell> &Args,
                            Pattern &Out, int DepthLimit,
                            bool WidenConstants) {
  CanonicalizeContext Ctx;
  Ctx.canonicalizeInto(St, Args, Out, DepthLimit, WidenConstants);
}

void awam::instantiate(Store &St, const PatternRef &P,
                       std::vector<int64_t> &CellOf,
                       std::vector<int64_t> &Roots) {
  CellOf.assign(P.NumNodes, -1);

  // Build nodes bottom-up with an explicit worklist (the DAG is acyclic).
  struct Builder {
    Store &St;
    const PatternRef &P;
    std::vector<int64_t> &CellOf;

    int64_t build(int32_t Id) {
      if (CellOf[Id] >= 0)
        return CellOf[Id];
      const PatNode &N = P.Nodes[Id];
      int64_t Out = -1;
      switch (N.K) {
      case PatKind::VarP: Out = St.pushVar(); break;
      case PatKind::AnyP: Out = St.push(Cell::abs(AbsKind::Any)); break;
      case PatKind::NVP: Out = St.push(Cell::abs(AbsKind::NV)); break;
      case PatKind::GroundP:
        Out = St.push(Cell::abs(AbsKind::Ground));
        break;
      case PatKind::ConstP: Out = St.push(Cell::abs(AbsKind::Const)); break;
      case PatKind::AtomTP: Out = St.push(Cell::abs(AbsKind::AtomT)); break;
      case PatKind::IntTP: Out = St.push(Cell::abs(AbsKind::IntT)); break;
      case PatKind::ConP: Out = St.push(Cell::atom(N.Sym)); break;
      case PatKind::IntP: Out = St.push(Cell::integer(N.Num)); break;
      case PatKind::ListP: {
        int64_t Elem = build(P.child(N, 0));
        Out = St.push(Cell::abs(AbsKind::List, Elem));
        break;
      }
      case PatKind::ConsP: {
        int64_t Car = build(P.child(N, 0));
        int64_t Cdr = build(P.child(N, 1));
        int64_t Base = St.push(Cell::ref(Car));
        St.push(Cell::ref(Cdr));
        Out = St.push(Cell::lis(Base));
        break;
      }
      case PatKind::StrP: {
        std::vector<int64_t> Args;
        for (int32_t C = 0; C != N.ChildCount; ++C)
          Args.push_back(build(P.child(N, C)));
        int64_t FunAddr =
            St.push(Cell::fun(N.Sym, static_cast<int>(N.ChildCount)));
        for (int64_t A : Args)
          St.push(Cell::ref(A));
        Out = St.push(Cell::str(FunAddr));
        break;
      }
      }
      CellOf[Id] = Out;
      return Out;
    }
  } B{St, P, CellOf};

  Roots.clear();
  Roots.reserve(P.NumRoots);
  for (size_t I = 0; I != P.NumRoots; ++I)
    Roots.push_back(B.build(P.Roots[I]));
}

std::vector<int64_t> awam::instantiate(Store &St, const PatternRef &P) {
  std::vector<int64_t> CellOf, Roots;
  instantiate(St, P, CellOf, Roots);
  return Roots;
}

Pattern awam::lubPatterns(const Pattern &A, const Pattern &B, int DepthLimit,
                          Store &Scratch) {
  assert(A.Roots.size() == B.Roots.size() && "arity mismatch in lub");
  Scratch.reset();
  std::vector<int64_t> RA = instantiate(Scratch, A);
  std::vector<int64_t> RB = instantiate(Scratch, B);
  LubContext Ctx(Scratch);
  std::vector<Cell> Result;
  Result.reserve(RA.size());
  for (size_t I = 0; I != RA.size(); ++I)
    Result.push_back(
        Cell::ref(Ctx.lub(Cell::ref(RA[I]), Cell::ref(RB[I]))));
  return canonicalize(Scratch, Result, DepthLimit);
}

Pattern awam::lubPatterns(const Pattern &A, const Pattern &B,
                          int DepthLimit) {
  Store Scratch;
  return lubPatterns(A, B, DepthLimit, Scratch);
}

bool awam::patternLeq(const Pattern &A, const Pattern &B, int DepthLimit) {
  return lubPatterns(A, B, DepthLimit) == B;
}

std::string Pattern::str(const SymbolTable &Syms) const {
  std::string Out = "(";
  std::vector<int> Visits(Nodes.size(), 0);
  // First pass: count references so only truly shared nodes get markers.
  std::vector<int> RefCount(Nodes.size(), 0);
  for (int32_t R : Roots)
    ++RefCount[R];
  for (const PatNode &N : Nodes)
    for (int32_t C = 0; C != N.ChildCount; ++C)
      ++RefCount[child(N, C)];

  struct Printer {
    const Pattern &P;
    const SymbolTable &Syms;
    std::vector<int> &Visits;
    std::vector<int> &RefCount;

    void print(int32_t Id, std::string &Out) {
      const PatNode &N = P.Nodes[Id];
      bool Shared = RefCount[Id] > 1 && N.K != PatKind::ConP &&
                    N.K != PatKind::IntP;
      if (Shared && Visits[Id]++) {
        Out += "_S" + std::to_string(Id);
        return;
      }
      std::string Marker = Shared ? "_S" + std::to_string(Id) + "=" : "";
      Out += Marker;
      switch (N.K) {
      case PatKind::VarP: Out += "var"; return;
      case PatKind::AnyP: Out += "any"; return;
      case PatKind::NVP: Out += "nv"; return;
      case PatKind::GroundP: Out += "g"; return;
      case PatKind::ConstP: Out += "const"; return;
      case PatKind::AtomTP: Out += "atom"; return;
      case PatKind::IntTP: Out += "int"; return;
      case PatKind::ConP:
        Out += quoteAtom(Syms.name(N.Sym));
        return;
      case PatKind::IntP:
        Out += std::to_string(N.Num);
        return;
      case PatKind::ListP: {
        const PatNode &E = P.Nodes[P.child(N, 0)];
        // "glist" style for simple element types, "(...)list" otherwise.
        std::string Elem;
        print(P.child(N, 0), Elem);
        if (E.ChildCount == 0 && Elem.find('=') == std::string::npos)
          Out += Elem + "list";
        else
          Out += "(" + Elem + ")list";
        return;
      }
      case PatKind::ConsP: {
        Out += "[";
        print(P.child(N, 0), Out);
        int32_t Tail = P.child(N, 1);
        for (;;) {
          const PatNode &T = P.Nodes[Tail];
          if (T.K == PatKind::ConP && T.Sym == SymbolTable::SymNil) {
            Out += "]";
            return;
          }
          if (T.K == PatKind::ConsP && RefCount[Tail] <= 1) {
            Out += ",";
            print(P.child(T, 0), Out);
            Tail = P.child(T, 1);
            continue;
          }
          Out += "|";
          print(Tail, Out);
          Out += "]";
          return;
        }
      }
      case PatKind::StrP: {
        Out += quoteAtom(Syms.name(N.Sym));
        Out += "(";
        for (int32_t I = 0; I != N.ChildCount; ++I) {
          if (I)
            Out += ",";
          print(P.child(N, I), Out);
        }
        Out += ")";
        return;
      }
      }
    }
  } Pr{*this, Syms, Visits, RefCount};

  for (size_t I = 0; I != Roots.size(); ++I) {
    if (I)
      Out += ", ";
    Pr.print(Roots[I], Out);
  }
  return Out + ")";
}
