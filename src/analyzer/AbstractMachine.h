//===- analyzer/AbstractMachine.h - The abstract WAM ------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution: the WAM instruction set reinterpreted over the
/// abstract domain (Section 4.2) with the extension-table control scheme
/// folded into `call` and `proceed` (Section 5).
///
/// The machine executes the *same clause code* the compiler produced for
/// the concrete machine. Differences from the concrete machine:
///
///  * get/unify instructions use abstract unification (absUnify), which
///    instantiates abstract cells against concrete structure
///    (ComplexTermInst) and proceeds in read mode, as in Figure 4;
///  * `call` abstracts the argument registers into a calling pattern,
///    consults the extension table, and either returns a memoized success
///    pattern or explores the callee's clauses one by one (indexing blocks
///    are bypassed — clause selection lives in call/proceed, as the paper
///    prescribes);
///  * `proceed` performs updateET followed by an artificial failure;
///    exhausting a predicate's clauses performs lookupET;
///  * `execute` is reverted to call-followed-by-proceed;
///  * cut is ignored (a sound over-approximation);
///  * builtins narrow their arguments abstractly (e.g. `is/2` makes the
///    expression ground and the result an integer).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_ABSTRACTMACHINE_H
#define AWAM_ANALYZER_ABSTRACTMACHINE_H

#include "analyzer/Domain.h"
#include "analyzer/ExtensionTable.h"
#include "compiler/ProgramCompiler.h"
#include "wam/Store.h"

#include <memory>
#include <string>
#include <vector>

namespace awam {

// Domain.h is pulled in for DomainRunState's definition: the machine owns
// one by unique_ptr, so every TU that destroys a machine needs the
// complete type.
class RunJournal;

/// Outcome of one abstract-interpretation iteration.
enum class AbsRunStatus {
  Completed, ///< ran to completion (top goal succeeded or finitely failed)
  Error,     ///< machine error (budget exceeded, unsupported instruction)
};

/// Resource limits for the abstract machine.
struct AbsMachineOptions {
  int DepthLimit = kDefaultDepthLimit; ///< term-depth restriction k
  uint64_t MaxSteps = 200'000'000;     ///< total instruction budget
  /// Abstract domain driving abstraction/transfer on the interned fast
  /// path; null = the default (modes) domain. Non-default domains require
  /// an interned table (AnalysisSession enforces this).
  const Domain *Dom = nullptr;
  /// When non-null, control events (call / lookup / updateET / return) are
  /// appended as human-readable lines — used to regenerate the paper's
  /// Figure 5 annotations.
  std::vector<std::string> *TraceLog = nullptr;
};

/// Observer of the machine's extension-table traffic — the worklist
/// scheduler's dependency feed (analyzer/Scheduler.h implements it).
///
/// Installing a sink (setDependencySink) switches the machine's call rule
/// from the naive per-iteration protocol (explore each entry once per
/// iteration, as flagged by ETEntry::Explored) to the activation protocol:
/// an entry whose clauses were ever explored answers calls from the memo
/// unless the sink asks for an inline re-exploration, and every memo read
/// is reported with the success version it observed.
class DependencySink {
public:
  virtual ~DependencySink() = default;

  /// Asked on a call to an already-explored \p E: return true to re-run
  /// its clauses inline (consuming any pending scheduled run), false to
  /// answer from the memo.
  virtual bool shouldReexplore(const ETEntry &E) = 0;

  /// \p E's clauses are about to be (re)explored — whether inline at a
  /// call site or as the activation the scheduler launched.
  virtual void beginActivation(const ETEntry &E) = 0;

  /// \p Reader consumed \p Dep's summarized success pattern, observing
  /// \p VersionSeen (== Dep.SuccessVersion at read time).
  virtual void noteRead(const ETEntry &Reader, const ETEntry &Dep,
                        uint32_t VersionSeen) = 0;

  /// \p E's success pattern just changed (SuccessVersion already bumped).
  virtual void noteChanged(const ETEntry &E) = 0;
};

/// The activation executor: extension-table-based abstract interpretation
/// over the compiled code. The ExtensionTable is owned by the caller (the
/// AnalysisSession) and persists across runs. Two driving protocols:
///
///  * runIteration — the paper's naive loop body: restart the entry goal,
///    re-exploring every reachable activation once;
///  * runActivation — replay exactly one (PredId, PatternId) activation
///    for the worklist scheduler, reporting table reads and success
///    changes through the installed DependencySink.
class AbstractMachine {
public:
  AbstractMachine(const CompiledProgram &Program, ExtensionTable &Table,
                  AbsMachineOptions Options = {});

  /// Installs (or clears) the scheduler's dependency feed. A non-null sink
  /// switches doCall to the activation protocol; runIteration requires the
  /// sink to be null.
  void setDependencySink(DependencySink *S) { Deps = S; }

  /// Attaches (or clears) a trace journal: every runActivation then
  /// records a replayable RunTrace of its table interactions (the
  /// incremental re-analysis feed; see analyzer/RunJournal.h). Activation
  /// protocol only — runIteration ignores the journal.
  void setRunJournal(RunJournal *J) { Journal = J; }

  /// Runs one naive iteration from entry predicate \p PredId with calling
  /// pattern \p Entry. Returns Completed normally; table growth is
  /// reported via changedSinceLastRun().
  AbsRunStatus runIteration(int32_t PredId, const Pattern &Entry);

  /// Replays the single activation \p Root: re-explores its clauses
  /// against the current table, answering nested calls from the memo
  /// (or exploring them inline when the sink requests it / the callee is
  /// new). Requires an installed DependencySink.
  AbsRunStatus runActivation(ETEntry &Root);

  /// True if the last run added entries or grew a success pattern.
  bool changedSinceLastRun() const { return Changed; }

  /// Abstract WAM instructions executed, accumulated over all runs
  /// (the paper's "Exec" column in Table 1).
  uint64_t stepsExecuted() const { return Steps; }

  /// Activation replays: how many times some entry's clause list was
  /// (re)explored, accumulated over all runs. The driver-comparison
  /// metric — the worklist scheduler exists to shrink this number.
  uint64_t activationsExplored() const { return Activations; }

  /// Adds externally executed work to this machine's counters. The
  /// parallel driver runs activations on worker machines and charges the
  /// committed runs here, so counters reflect exactly the committed
  /// schedule — identical to a sequential run — regardless of how much
  /// speculative work was discarded.
  void charge(uint64_t StepsRun, uint64_t ActivationsRun) {
    Steps += StepsRun;
    Activations += ActivationsRun;
  }

  const std::string &errorMessage() const { return ErrorMsg; }

private:
  /// One predicate exploration in progress (replaces concrete choice
  /// points: clause alternatives are driven by call/proceed).
  struct AnalysisFrame {
    ETEntry *Entry = nullptr;
    int32_t PredId = -1;
    size_t ClauseIdx = 0;
    std::vector<Cell> CallerArgs;    // caller's argument cells
    std::vector<int64_t> CalleeArgs; // instantiated calling-pattern cells
    int32_t SavedCP = 0;
    int64_t SavedE = -1;
    int64_t TrailMark = 0;
    int64_t HeapMark = 0;
    size_t EnvMark = 0;
    /// Domain run-state height at frame setup: enterClause rewinds the
    /// domain state here in lockstep with the trail/heap unwind.
    size_t DomMark = 0;
  };

  struct EnvFrame {
    int64_t PrevE = -1;
    int32_t SavedCP = 0;
    std::vector<Cell> Y;
  };

  void resetRun();                   // clears store/registers/frames
  AbsRunStatus driveToCompletion();  // step() until halt or error
  bool step();                       // executes one instruction
  void doCall(int32_t PredId, int32_t ContinueAt);
  void enterClause();                // (re)start current frame's clause
  void clauseSucceeded();            // proceed: updateET + artificial fail
  void summaryGrew(ETEntry &Entry);  // version bump + sink notification
  void failCurrent();                // failure inside the current clause
  void returnFromFrame();            // clauses exhausted: lookupET
  bool runAbsBuiltin(int Id, int Arity);
  void machineError(std::string Message);

  Cell &ySlot(int I) { return Envs[E].Y[I]; }

  const CompiledProgram &Program;
  const CodeModule &Module;
  ExtensionTable &Table;
  /// Borrowed from the table; non-null enables the hash-consed fast path
  /// (id-keyed table lookups, memoized lub, pooled scratch buffers).
  PatternInterner *Interner;
  /// Non-null switches doCall to the activation protocol (worklist mode).
  DependencySink *Deps = nullptr;
  /// Non-null records a RunTrace per activation run (incremental mode).
  RunJournal *Journal = nullptr;
  AbsMachineOptions Options;
  /// The abstract domain (Options.Dom resolved; never null). Drives the
  /// interned path's abstraction, transfer and lattice hooks — the
  /// non-interned path keeps the default domain's inline code.
  const Domain *Dom = nullptr;
  /// Per-run mutable domain state (null for domains that need none);
  /// marked/rewound with the trail.
  std::unique_ptr<DomainRunState> DomState;

  Store St;
  std::vector<Cell> X;
  /// Pooled scratch for the fast path: argument snapshot, canonicalization
  /// targets, and instantiate working vectors. Reused across every call
  /// and proceed so the steady-state fixpoint loop allocates nothing.
  std::vector<Cell> ArgsBuf;
  CanonicalizeContext CanonCtx;
  Pattern CPatBuf;
  Pattern SPatBuf;
  std::vector<int64_t> CellOfBuf;
  std::vector<int64_t> RootsBuf;
  std::vector<EnvFrame> Envs;
  std::vector<AnalysisFrame> Frames;

  int32_t P = 0;
  int32_t CP = 0;
  int64_t E = -1;
  int64_t S = 0;
  bool WriteMode = false;
  bool Running = false;
  bool Changed = false;
  bool HasError = false;
  uint64_t Steps = 0;
  uint64_t Activations = 0;
  std::string ErrorMsg;
};

} // namespace awam

#endif // AWAM_ANALYZER_ABSTRACTMACHINE_H
