//===- analyzer/RunJournal.h - Replayable activation-run traces -*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recording substrate of incremental re-analysis (analyzer/Incremental.h).
/// While an analysis runs under the worklist driver with
/// AnalyzerOptions::Incremental set, the abstract machine appends one
/// RunTrace per activation run: the ordered sequence of extension-table
/// interactions the run performed (memo reads, inline clause explorations,
/// frame returns, summary growth) plus its instruction/activation cost.
/// The machine is deterministic between table interactions, so a trace
/// whose recorded table answers still hold *is* the run — a later
/// reanalyze() validates each trace against the live state and applies its
/// effects instead of re-executing clause code (see Incremental.h for the
/// validation protocol).
///
/// Traces reference predicates by the recording module's PredId; the
/// journal eagerly resolves every referenced id to its (name, arity) so a
/// trace can be re-resolved against a *recompiled* module, whose ids may
/// differ (CodeModule assigns ids in first-reference order, which clause
/// edits can shift). Patterns are stored by value for the same reason —
/// interner ids are run-local.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_RUNJOURNAL_H
#define AWAM_ANALYZER_RUNJOURNAL_H

#include "analyzer/ExtensionTable.h"
#include "compiler/CodeModule.h"

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace awam {

/// Name/arity of a recorded predicate — the module-independent key used to
/// re-resolve trace ids against a recompiled module.
struct PredSig {
  std::string Name;
  int32_t Arity = 0;
};

/// One extension-table interaction of an activation run, in execution
/// order.
struct TraceOp {
  enum Kind : uint8_t {
    Memo,  ///< call answered from the memo; Summary is what it observed
    Enter, ///< call explored inline; Summary is the pre-exploration memo
    Exit,  ///< a frame returned (clauses exhausted); pairs with Enter/root
    Grow,  ///< the current frame's summary grew to Summary
  };
  Kind K = Memo;
  bool Created = false; ///< Enter only: the call created the entry
  int32_t Pred = -1;    ///< Memo/Enter: callee PredId (recording module)
  Pattern Call;         ///< Memo/Enter: canonical calling pattern
  std::optional<Pattern> Summary;
};

/// Everything one activation run observed and did.
struct RunTrace {
  int32_t Pred = -1; ///< root PredId (recording module)
  Pattern Call;
  std::optional<Pattern> PreSuccess; ///< root summary before the run
  std::vector<TraceOp> Ops;
  uint64_t Steps = 0;       ///< abstract instructions this run executed
  uint64_t Activations = 0; ///< clause-list explorations (root + Enters)
  bool Error = false;       ///< errored or unbalanced; never replayable
};

/// Approximate heap bytes of one trace: the op vector plus every pattern
/// payload it carries. Traces are shared across journals by handle, so
/// aggregate accounting must deduplicate by trace address (see
/// AnalysisStore::bytesUsed).
inline size_t traceHeapBytes(const RunTrace &T) {
  size_t B = sizeof(RunTrace) + T.Ops.capacity() * sizeof(TraceOp) +
             patternHeapBytes(T.Call) +
             (T.PreSuccess ? patternHeapBytes(*T.PreSuccess) : 0);
  for (const TraceOp &Op : T.Ops)
    B += patternHeapBytes(Op.Call) +
         (Op.Summary ? patternHeapBytes(*Op.Summary) : 0);
  return B;
}

/// The trace log of one analysis run, in activation commit order. Owns
/// shared handles so replayed traces carry over to the next journal
/// without copying (a reanalyze chain keeps one journal per run).
class RunJournal {
public:
  explicit RunJournal(const CodeModule &M) : Module(&M) {}

  // --- recording API (driven by AbstractMachine::runActivation) ---------

  void beginRun(const ETEntry &Root) {
    Open = std::make_shared<RunTrace>();
    Open->Pred = Root.PredId;
    Open->Call = Root.Call;
    Open->PreSuccess = Root.Success;
    Depth = 1;
    rememberSig(Root.PredId);
  }

  void noteMemo(const ETEntry &E) {
    if (!Open)
      return;
    TraceOp Op;
    Op.K = TraceOp::Memo;
    Op.Pred = E.PredId;
    Op.Call = E.Call;
    Op.Summary = E.Success;
    Open->Ops.push_back(std::move(Op));
    rememberSig(E.PredId);
  }

  void enterCall(const ETEntry &E, bool Created) {
    if (!Open)
      return;
    TraceOp Op;
    Op.K = TraceOp::Enter;
    Op.Created = Created;
    Op.Pred = E.PredId;
    Op.Call = E.Call;
    Op.Summary = E.Success;
    Open->Ops.push_back(std::move(Op));
    ++Depth;
    rememberSig(E.PredId);
  }

  void exitCall() {
    if (!Open)
      return;
    TraceOp Op;
    Op.K = TraceOp::Exit;
    Open->Ops.push_back(std::move(Op));
    --Depth;
  }

  void noteGrow(const ETEntry &E) {
    if (!Open)
      return;
    TraceOp Op;
    Op.K = TraceOp::Grow;
    Op.Summary = E.Success;
    Open->Ops.push_back(std::move(Op));
  }

  void endRun(uint64_t Steps, uint64_t Activations, bool Error) {
    if (!Open)
      return;
    Open->Steps = Steps;
    Open->Activations = Activations;
    // An errored run stops mid-frame-stack; its trace is a prefix of no
    // complete run and must never replay.
    Open->Error = Error || Depth != 0;
    Runs.push_back(std::move(Open));
    Open.reset();
  }

  // --- replay-side API ---------------------------------------------------

  /// Appends \p T, whose predicate ids are already this journal's module
  /// ids (e.g. a trace recorded by a parallel worker over the same
  /// module), registering their sigs.
  void append(std::shared_ptr<const RunTrace> T) {
    rememberSig(T->Pred);
    for (const TraceOp &Op : T->Ops)
      if (Op.Pred >= 0)
        rememberSig(Op.Pred);
    Runs.push_back(std::move(T));
  }

  /// Appends a trace recorded against another module. \p PidMap maps that
  /// module's ids to this module's (every id \p T uses must map, which
  /// replay validation established). The trace is shared when the mapping
  /// is the identity on those ids, and copied/rewritten otherwise.
  void appendRemapped(const std::shared_ptr<const RunTrace> &T,
                      const std::vector<int32_t> &PidMap) {
    auto MapOf = [&PidMap](int32_t Pid) {
      assert(static_cast<size_t>(Pid) < PidMap.size() && PidMap[Pid] >= 0 &&
             "replayed trace ids must resolve in the new module");
      return PidMap[Pid];
    };
    bool Identity = MapOf(T->Pred) == T->Pred;
    for (const TraceOp &Op : T->Ops)
      if (Op.Pred >= 0 && MapOf(Op.Pred) != Op.Pred)
        Identity = false;
    if (Identity) {
      append(T);
      return;
    }
    auto Copy = std::make_shared<RunTrace>(*T);
    Copy->Pred = MapOf(Copy->Pred);
    for (TraceOp &Op : Copy->Ops)
      if (Op.Pred >= 0)
        Op.Pred = MapOf(Op.Pred);
    append(std::move(Copy));
  }

  /// Removes and returns the most recently recorded trace (the parallel
  /// driver harvests each worker run this way), or nullptr if none.
  std::shared_ptr<const RunTrace> takeLast() {
    if (Runs.empty())
      return nullptr;
    std::shared_ptr<const RunTrace> T = std::move(Runs.back());
    Runs.pop_back();
    return T;
  }

  const std::vector<std::shared_ptr<const RunTrace>> &runs() const {
    return Runs;
  }

  /// Heap bytes of this journal's handle vector and sig map, plus every
  /// referenced trace whose address is new to \p Seen. Traces are shared
  /// across journals by handle; threading one seen-set through a group of
  /// journals counts each trace object exactly once.
  size_t bytesUsed(std::unordered_set<const RunTrace *> &Seen) const {
    size_t B = Runs.capacity() * sizeof(std::shared_ptr<const RunTrace>) +
               Sigs.size() * (sizeof(int32_t) + sizeof(PredSig));
    for (const std::shared_ptr<const RunTrace> &T : Runs)
      if (Seen.insert(T.get()).second)
        B += traceHeapBytes(*T);
    return B;
  }

  /// PredId -> (name, arity) for every id appearing in stored traces.
  const std::unordered_map<int32_t, PredSig> &sigs() const { return Sigs; }

private:
  void rememberSig(int32_t Pid) {
    if (Pid < 0 || Sigs.count(Pid))
      return;
    const PredicateInfo &Info = Module->predicate(Pid);
    Sigs.emplace(Pid, PredSig{std::string(Module->symbols().name(Info.Name)),
                              Info.Arity});
  }

  const CodeModule *Module;
  std::vector<std::shared_ptr<const RunTrace>> Runs;
  std::shared_ptr<RunTrace> Open; ///< run currently being recorded
  int Depth = 0;                  ///< open frames (balance check)
  std::unordered_map<int32_t, PredSig> Sigs;
};

} // namespace awam

#endif // AWAM_ANALYZER_RUNJOURNAL_H
