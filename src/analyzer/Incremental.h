//===- analyzer/Incremental.h - Incremental re-analysis driver --*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental worklist driver behind AnalysisSession::reanalyze().
///
/// Strategy: *validated journal replay*. A from-scratch analysis under
/// AnalyzerOptions::Incremental records one RunTrace per activation run
/// (analyzer/RunJournal.h). reanalyze() re-drains the worklist over a
/// fresh table in exactly WorklistScheduler::run's order, but each popped
/// activation first tries to *replay* a matching recorded trace instead of
/// executing clause code:
///
///  1. Trace lookup. Traces are grouped by (root predicate, calling
///     pattern) — predicates matched by name/arity so a recompiled module
///     with shifted PredIds still resolves — and consumed FIFO per group,
///     mirroring the order in which runs with equal roots committed.
///  2. Validation. The trace is simulated against the live table plus a
///     clone of the live SchedulerCore, without writing anything. Every
///     observable input the recorded execution consumed must match what
///     execution would see now: the root's pre-run summary; each callee's
///     created-vs-found status; each memo-vs-explore decision (answered by
///     the core clone exactly as the machine's shouldReexplore query would
///     be); each memo'd or pre-exploration summary *value*; and the
///     cumulative step budget. Traces that executed an *edited*
///     predicate's clauses (as root or by inline exploration) are invalid
///     up front; memo reads of edited predicates are fine — the summary
///     value is what matters. Validation emits an apply plan with all
///     indices resolved.
///  3. Apply or execute. A validated plan is applied — entry creations,
///     beginActivation / noteRead / noteChanged transitions, summary
///     growth — and the recorded step/activation cost charged to the
///     machine, which is observationally identical to having executed the
///     run (the machine is deterministic between table interactions). An
///     invalid trace falls back to executing the activation on the
///     machine, which also records a fresh trace for the next reanalyze in
///     the chain.
///
/// Byte-identity with a from-scratch analyze() of the edited program
/// follows by induction over the drain: with equal core and table states
/// both drains pop the same activation; an executed run behaves
/// identically on equal state, and a replayed run applies exactly the
/// effects execution would have produced (which is what validation
/// established) — so the next states are equal too, and every quantity the
/// report prints (entry creation order, summaries, sweeps, runs,
/// instructions) matches. Only probe and interner statistics may drift
/// (replay probes the table less), and those are not part of the report.
///
/// The previous run's dependency edges still earn their keep as the
/// *invalidation cone*: ReanalyzeStats::ConeEntries is the reverse
/// dependency closure of the edited predicates' entries over the previous
/// SchedulerCore — the entries whose recorded reads could transitively
/// reach the edit. Validation is value-level and therefore finer: a cone
/// member whose inputs did not actually change still replays.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_INCREMENTAL_H
#define AWAM_ANALYZER_INCREMENTAL_H

#include "analyzer/RunJournal.h"
#include "analyzer/Scheduler.h"

#include <unordered_map>
#include <vector>

namespace awam {

struct CompiledProgram;

/// The predicates whose *clause code* differs between \p Old and \p New,
/// by name/arity: changed bodies, changed clause counts, additions, and
/// removals. Both modules should share one SymbolTable; with distinct
/// tables the comparison is meaningless (Symbols and hence patterns are
/// incomparable), so every predicate of both programs is reported — a
/// re-drain then (correctly) replays nothing and a persistent store
/// invalidates everything. Used by AnalysisSession::reanalyze and the
/// AnalysisStore's cone invalidation.
std::vector<PredSig> diffPrograms(const CompiledProgram &Old,
                                  const CompiledProgram &New);

/// Worklist driver that satisfies activations from a previous run's
/// journal where valid and executes the rest. One instance drives one
/// reanalyze() to its fixpoint.
class IncrementalScheduler final : public DependencySink {
public:
  using Status = WorklistScheduler::Status;

  /// How much of the drain was replayed vs re-executed (the bench and CI
  /// gate metrics; byte-identity of the result itself is the contract).
  struct ReanalyzeStats {
    uint64_t PrevEntries = 0; ///< previous run's table size
    uint64_t ConeEntries = 0; ///< entries in the reverse-dependency cone
    uint64_t ExecutedRuns = 0;  ///< queue pops that ran the machine
    uint64_t ReplayedRuns = 0;  ///< queue pops satisfied by trace replay
    uint64_t ExecutedActivations = 0; ///< clause-list explorations executed
    uint64_t ReplayedActivations = 0; ///< clause-list explorations replayed
  };

  /// \p Edited names the predicates whose clause code changed between
  /// \p Prev's module and \p Module (matched by name/arity; a deleted
  /// predicate simply never resolves). \p Out, when non-null, receives the
  /// new run's traces: replays carry their trace over (remapped to
  /// \p Module's ids), executed runs record fresh ones via the machine's
  /// attached journal.
  IncrementalScheduler(ExtensionTable &Table, AbstractMachine &Machine,
                       const CodeModule &Module, const RunJournal &Prev,
                       const std::vector<PredSig> &Edited, RunJournal *Out,
                       uint64_t MaxSteps);

  /// Drains the worklist from \p Root exactly like WorklistScheduler::run.
  Status run(ETEntry &Root, int MaxSweeps);

  const SchedulerCore::Stats &stats() const { return Core.stats(); }
  const SchedulerCore &core() const { return Core; }
  ReanalyzeStats &reanalyzeStats() { return RStats; }
  const ReanalyzeStats &reanalyzeStats() const { return RStats; }

  // --- DependencySink (live fallback runs on the machine) ---
  bool shouldReexplore(const ETEntry &E) override {
    return Core.shouldReexplore(E.Idx);
  }
  void beginActivation(const ETEntry &E) override {
    Core.beginActivation(E.Idx);
  }
  void noteRead(const ETEntry &Reader, const ETEntry &Dep,
                uint32_t VersionSeen) override {
    Core.noteRead(Reader.Idx, Dep.Idx, VersionSeen);
  }
  void noteChanged(const ETEntry &E) override {
    Core.noteChanged(E.Idx, E.SuccessVersion);
  }

private:
  /// Traces sharing one (root pid, calling pattern), consumed in FIFO
  /// order. Call points into the first trace (traces are shared-owned by
  /// the journal and outlive the scheduler).
  struct RootGroup {
    int32_t Pid = -1;
    const Pattern *Call = nullptr;
    std::vector<size_t> TraceIdx;
    size_t Cursor = 0;
  };

  int32_t resolvePid(int32_t OldPid) const {
    return static_cast<size_t>(OldPid) < PidMap.size() ? PidMap[OldPid] : -1;
  }

  /// Consumes the next recorded trace for \p Root's key, if any.
  const RunTrace *takeTrace(const ETEntry &Root, size_t &TraceIdxOut);

  /// Validates the next trace for \p Root and applies it; false means the
  /// caller must execute the activation on the machine.
  bool tryReplay(ETEntry &Root);

  ExtensionTable &Table;
  AbstractMachine &Machine;
  const CodeModule &Module;
  const RunJournal &Prev;
  RunJournal *OutJournal;
  uint64_t MaxSteps;
  SchedulerCore Core;
  ReanalyzeStats RStats;
  std::vector<int32_t> PidMap; ///< prev-module pid -> new pid (-1 = gone)
  std::vector<char> EditedNew; ///< new pid -> clause code changed?
  std::vector<char> Usable;    ///< per trace: structurally replayable
  std::unordered_map<uint64_t, std::vector<RootGroup>> Groups;
};

} // namespace awam

#endif // AWAM_ANALYZER_INCREMENTAL_H
