//===- analyzer/Incremental.h - Incremental re-analysis driver --*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental worklist driver behind AnalysisSession::reanalyze().
///
/// Strategy: *validated journal replay*. A from-scratch analysis under
/// AnalyzerOptions::Incremental records one RunTrace per activation run
/// (analyzer/RunJournal.h). reanalyze() re-drains the worklist over a
/// fresh table in exactly WorklistScheduler::run's order, but each popped
/// activation first tries to *replay* a matching recorded trace instead of
/// executing clause code:
///
///  1. Trace lookup. Traces are grouped by (root predicate, calling
///     pattern) — predicates matched by name/arity so a recompiled module
///     with shifted PredIds still resolves — and consumed FIFO per group,
///     mirroring the order in which runs with equal roots committed.
///  2. Validation. The trace is simulated against the live table plus a
///     clone of the live SchedulerCore, without writing anything. Every
///     observable input the recorded execution consumed must match what
///     execution would see now: the root's pre-run summary; each callee's
///     created-vs-found status; each memo-vs-explore decision (answered by
///     the core clone exactly as the machine's shouldReexplore query would
///     be); each memo'd or pre-exploration summary *value*; and the
///     cumulative step budget. Traces that executed an *edited*
///     predicate's clauses (as root or by inline exploration) are invalid
///     up front; memo reads of edited predicates are fine — the summary
///     value is what matters. Validation emits an apply plan with all
///     indices resolved.
///  3. Apply or execute. A validated plan is applied — entry creations,
///     beginActivation / noteRead / noteChanged transitions, summary
///     growth — and the recorded step/activation cost charged to the
///     machine, which is observationally identical to having executed the
///     run (the machine is deterministic between table interactions). An
///     invalid trace falls back to executing the activation on the
///     machine, which also records a fresh trace for the next reanalyze in
///     the chain.
///
/// Parallel warm drains: validation (step 2) is a pure read of the live
/// table and core, so with a SpecPool attached the driver fans it out
/// speculatively — on a pop with no cached simulation it collects the
/// ready set, peeks each root's next recorded trace, and simulates them
/// all concurrently against the frozen live state. Each simulation
/// records, besides its apply plan, the (version, explored) state of
/// every live entry it consulted and every schedule-query answer it
/// observed. At the root's actual pop the master *revalidates* cheaply —
/// cursor position, step budget, table size (when the trace creates
/// entries), touched versions, and the query answers against a clone of
/// the now-live core — and applies the plan on success. Every check a
/// passing revalidation makes is implied by what a from-scratch
/// validation at that pop would establish, so a committed speculative
/// replay is indistinguishable from a sequential one; a failing
/// revalidation falls back to the sequential path verbatim. Replay /
/// execute decisions — and hence every reported statistic — are
/// therefore thread-count invariant, like the parallel analysis driver.
///
/// Byte-identity with a from-scratch analyze() of the edited program
/// follows by induction over the drain: with equal core and table states
/// both drains pop the same activation; an executed run behaves
/// identically on equal state, and a replayed run applies exactly the
/// effects execution would have produced (which is what validation
/// established) — so the next states are equal too, and every quantity the
/// report prints (entry creation order, summaries, sweeps, runs,
/// instructions) matches. Only probe and interner statistics may drift
/// (replay probes the table less), and those are not part of the report.
///
/// The previous run's dependency edges still earn their keep as the
/// *invalidation cone*: ReanalyzeStats::ConeEntries is the reverse
/// dependency closure of the edited predicates' entries over the previous
/// SchedulerCore — the entries whose recorded reads could transitively
/// reach the edit. Validation is value-level and therefore finer: a cone
/// member whose inputs did not actually change still replays.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_INCREMENTAL_H
#define AWAM_ANALYZER_INCREMENTAL_H

#include "analyzer/ExtensionTable.h"
#include "analyzer/RunJournal.h"
#include "analyzer/Scheduler.h"

#include <unordered_map>
#include <vector>

namespace awam {

struct CompiledProgram;
class SpecPool;

/// The predicates whose *clause code* differs between \p Old and \p New,
/// by name/arity: changed bodies, changed clause counts, additions, and
/// removals. Both modules should share one SymbolTable; with distinct
/// tables the comparison is meaningless (Symbols and hence patterns are
/// incomparable), so every predicate of both programs is reported — a
/// re-drain then (correctly) replays nothing and a persistent store
/// invalidates everything. Used by AnalysisSession::reanalyze and the
/// AnalysisStore's cone invalidation.
std::vector<PredSig> diffPrograms(const CompiledProgram &Old,
                                  const CompiledProgram &New);

/// Worklist driver that satisfies activations from a previous run's
/// journal where valid and executes the rest. One instance drives one
/// reanalyze() to its fixpoint.
class IncrementalScheduler final : public DependencySink {
public:
  using Status = WorklistScheduler::Status;

  /// How much of the drain was replayed vs re-executed (the bench and CI
  /// gate metrics; byte-identity of the result itself is the contract).
  struct ReanalyzeStats {
    uint64_t PrevEntries = 0; ///< previous run's table size
    uint64_t ConeEntries = 0; ///< entries in the reverse-dependency cone
    uint64_t ExecutedRuns = 0;  ///< queue pops that ran the machine
    uint64_t ReplayedRuns = 0;  ///< queue pops satisfied by trace replay
    uint64_t ExecutedActivations = 0; ///< clause-list explorations executed
    uint64_t ReplayedActivations = 0; ///< clause-list explorations replayed
    // Parallel warm-drain effectiveness (thread-count dependent; the
    // replay/execute split above is not). CriticalUnits counts the
    // validation work units on the fan-out critical path — one unit per
    // ceil(batch size / threads) — the machine-independent denominator of
    // the warm-drain parallel-efficiency metric.
    uint64_t ReplayBatches = 0;  ///< speculative validation fan-outs
    uint64_t SpecReplays = 0;    ///< trace simulations run on the pool
    uint64_t SpecCommitted = 0;  ///< simulations committed at their pop
    uint64_t SpecDiscarded = 0;  ///< simulations invalidated or orphaned
    uint64_t CriticalUnits = 0;  ///< sum of per-batch critical-path units
  };

  /// \p Edited names the predicates whose clause code changed between
  /// \p Prev's module and \p Module (matched by name/arity; a deleted
  /// predicate simply never resolves). \p Out, when non-null, receives the
  /// new run's traces: replays carry their trace over (remapped to
  /// \p Module's ids), executed runs record fresh ones via the machine's
  /// attached journal.
  /// \p Pool, when non-null with more than one thread, enables parallel
  /// warm drains (see file comment): replay validation is fanned out
  /// speculatively and revalidated at each pop. Output is byte-identical
  /// at every thread count; only the Spec* statistics vary.
  IncrementalScheduler(ExtensionTable &Table, AbstractMachine &Machine,
                       const CodeModule &Module, const RunJournal &Prev,
                       const std::vector<PredSig> &Edited, RunJournal *Out,
                       uint64_t MaxSteps, SpecPool *Pool = nullptr);
  ~IncrementalScheduler() override;

  /// Drains the worklist from \p Root exactly like WorklistScheduler::run.
  Status run(ETEntry &Root, int MaxSweeps);

  const SchedulerCore::Stats &stats() const { return Core.stats(); }
  const SchedulerCore &core() const { return Core; }
  ReanalyzeStats &reanalyzeStats() { return RStats; }
  const ReanalyzeStats &reanalyzeStats() const { return RStats; }

  // --- DependencySink (live fallback runs on the machine) ---
  bool shouldReexplore(const ETEntry &E) override {
    return Core.shouldReexplore(E.Idx);
  }
  void beginActivation(const ETEntry &E) override {
    Core.beginActivation(E.Idx);
  }
  void noteRead(const ETEntry &Reader, const ETEntry &Dep,
                uint32_t VersionSeen) override {
    Core.noteRead(Reader.Idx, Dep.Idx, VersionSeen);
  }
  void noteChanged(const ETEntry &E) override {
    Core.noteChanged(E.Idx, E.SuccessVersion);
  }

private:
  /// Traces sharing one (root pid, calling pattern), consumed in FIFO
  /// order. Call points into the first trace (traces are shared-owned by
  /// the journal and outlive the scheduler).
  struct RootGroup {
    int32_t Pid = -1;
    const Pattern *Call = nullptr;
    std::vector<size_t> TraceIdx;
    size_t Cursor = 0;
  };

  int32_t resolvePid(int32_t OldPid) const {
    return static_cast<size_t>(OldPid) < PidMap.size() ? PidMap[OldPid] : -1;
  }

  /// Consumes the next recorded trace for \p Root's key, if any.
  const RunTrace *takeTrace(const ETEntry &Root, size_t &TraceIdxOut);

  /// Reads the next recorded trace for \p Root's key without consuming it
  /// (the speculative fan-out peeks; only a pop advances the cursor).
  const RunTrace *peekTrace(const ETEntry &Root, size_t &TraceIdxOut,
                            size_t &CursorAtOut, RootGroup *&GroupOut);

  struct ReplayOp;   ///< one validated transition of an apply plan
  struct ReplaySpec; ///< a simulated replay awaiting its pop

  /// Pass 1 of a replay: simulates \p T against the live table and a clone
  /// of the live core (set to \p TargetSweep), writing the apply plan,
  /// touched-entry versions and query answers into \p Out. Pure read of
  /// shared state — safe to run concurrently on the pool while the master
  /// is quiescent. Returns false when execution would diverge from the
  /// trace (the spec is then unusable).
  bool simulate(const ETEntry &Root, const RunTrace &T, uint64_t TargetSweep,
                ReplaySpec &Out) const;

  /// Re-checks a frozen-state simulation against the live state at its
  /// pop: cursor position, step budget, table size (creations), touched
  /// versions, and query answers against a live-core clone. A pass implies
  /// a from-scratch simulation at this pop would succeed identically.
  bool revalidate(const ReplaySpec &S) const;

  /// Pass 2: applies \p S's validated plan to the live table and core and
  /// charges the recorded cost (shared by sequential and speculative
  /// replays; the caller has already consumed the trace cursor).
  void applySpec(const ReplaySpec &S);

  /// Fans replay simulation of the ready set (headed by \p PoppedIdx) out
  /// to the pool, filling SpecCache.
  void speculateReady(int32_t PoppedIdx);

  bool takeCachedSpec(int32_t RootIdx, ReplaySpec &Out);
  void purgeDeadSpecs();

  /// Validates the next trace for \p Root and applies it; false means the
  /// caller must execute the activation on the machine.
  bool tryReplay(ETEntry &Root);

  ExtensionTable &Table;
  AbstractMachine &Machine;
  const CodeModule &Module;
  const RunJournal &Prev;
  RunJournal *OutJournal;
  uint64_t MaxSteps;
  SpecPool *Pool; ///< warm-drain fan-out threads (nullptr = sequential)
  SchedulerCore Core;
  ReanalyzeStats RStats;
  std::vector<int32_t> PidMap; ///< prev-module pid -> new pid (-1 = gone)
  std::vector<char> EditedNew; ///< new pid -> clause code changed?
  std::vector<char> Usable;    ///< per trace: structurally replayable
  std::unordered_map<uint64_t, std::vector<RootGroup>> Groups;
  std::vector<ReplaySpec> SpecCache; ///< simulations awaiting their pop
};

} // namespace awam

#endif // AWAM_ANALYZER_INCREMENTAL_H
