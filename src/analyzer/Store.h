//===- analyzer/Store.h - Persistent multi-root analysis store --*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived half of the analyzer: an AnalysisStore owns one
/// PatternInterner, one multi-root ExtensionTable and one accumulated
/// SchedulerCore dependency-edge set that survive across entry queries of
/// the same compiled module. The extension table is monotone — every
/// (pred, calling-pattern) summary a converged query derives is the least
/// fixpoint at that key and therefore a sound, reusable memo for any later
/// query — which is what makes a shared store consistent at all.
///
/// Query protocol (*build-aside-and-merge*):
///
///  1. Repeat query: a root already merged answers from the per-root
///     result cache — the second query of an entry is a table lookup.
///  2. New query: the drain runs over a *fresh* per-query table that
///     shares only the store's interner. Cold (no journals banked yet) it
///     is the ordinary worklist / parallel driver with trace recording on;
///     warm it is the IncrementalScheduler replaying the store's banked
///     run journals with an empty edit set — every recorded trace whose
///     value-level validation holds is applied instead of executed, and
///     the rest fall back to real execution. Replay validation makes the
///     drain byte-identical to a scratch analyze() of that entry (see
///     analyzer/Incremental.h for the induction), so the per-root
///     projection equals the scratch report at every thread count.
///  3. Merge: only a *converged* query merges. Each query-table entry is
///     installed into the store table under its interned key (or found —
///     converged summaries of a shared key are equal, both being the least
///     fixpoint at that key), tagged with the query's root ordinal
///     (ETEntry::Roots), and the query core's dependency edges join the
///     store's accumulated graph. Failing queries — unknown entry,
///     machine error, budget hit — leave the store untouched by
///     construction: nothing is written until the merge (the strong
///     guarantee).
///
/// The determinism contract is deliberately *per-root projection*, not
/// whole-table identity: which entries the store holds depends on which
/// queries ran (the union of their scratch tables), but each root's
/// projection — entry set, creation order, summaries, counters — is the
/// scratch run of that entry alone and hence independent of every other
/// query and of query order. canonicalDump() exposes the order-free view
/// of the whole store (sorted entries with sorted root tags), which *is*
/// permutation-invariant.
///
/// reanalyze() confines an edit to its reverse-dependency cone: roots
/// whose projection intersects the cone lose cache, projection and
/// journal; everything else survives warm (their drains, by the cone
/// argument, cannot observe the edit), and the next query of an
/// invalidated root re-drains by warm replay of the surviving journals.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_STORE_H
#define AWAM_ANALYZER_STORE_H

#include "analyzer/Analyzer.h"
#include "analyzer/Incremental.h"
#include "analyzer/ParallelScheduler.h"
#include "analyzer/Scheduler.h"
#include "analyzer/SummaryBundle.h"

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace awam {

/// Persistent analysis state of one compiled module. AnalysisSession wraps
/// one behind AnalyzerOptions::Persistent; services that manage module
/// lifetimes themselves (examples/analyze_server.cpp) hold stores directly,
/// keyed by CodeModule::fingerprint().
class AnalysisStore {
public:
  /// Cumulative store statistics (reporting; not part of any determinism
  /// contract).
  struct Stats {
    uint64_t Queries = 0;       ///< queries that resolved their entry
    uint64_t CacheHits = 0;     ///< answered from the per-root result cache
    uint64_t ColdQueries = 0;   ///< drained with an empty journal bank
    uint64_t WarmQueries = 0;   ///< drained by validated journal replay
    uint64_t ReplayedRuns = 0;  ///< warm drains: queue pops replayed
    uint64_t ExecutedRuns = 0;  ///< warm drains: queue pops executed
    uint64_t ReplayedActivations = 0;
    uint64_t ExecutedActivations = 0;
    // Parallel warm drains (thread-count dependent; the replay/execute
    // split above is not — see Incremental.h).
    uint64_t WarmReplayBatches = 0; ///< speculative validation fan-outs
    uint64_t WarmSpecReplays = 0;   ///< trace simulations run on the pool
    uint64_t WarmSpecCommitted = 0; ///< simulations committed at their pop
    uint64_t WarmSpecDiscarded = 0; ///< simulations invalidated or orphaned
    uint64_t WarmCriticalUnits = 0; ///< per-batch critical-path units
    uint64_t MergedRoots = 0;   ///< converged queries merged into the store
    uint64_t NewEntries = 0;    ///< merged entries new to the store
    uint64_t SharedEntries = 0; ///< merged entries another root already owned
    uint64_t Reanalyses = 0;
    uint64_t InvalidatedRoots = 0;
    uint64_t InvalidatedEntries = 0;
    uint64_t LastConeEntries = 0; ///< invalidation cone of the last reanalyze
    // Journal-bank hygiene (long-lived stores; see compactJournals).
    uint64_t Compactions = 0;      ///< compaction passes run
    uint64_t CompactedTraces = 0;  ///< trace handles dropped by compaction
    // Cross-module summary sharing (see exportSummaries/importSummaries).
    uint64_t BundlesImported = 0;  ///< importSummaries calls that banked
    uint64_t ImportedTraces = 0;   ///< foreign traces currently banked
  };

  /// What one importSummaries call did with the bundle's traces.
  struct ImportStats {
    uint64_t BundleTraces = 0;     ///< traces the bundle carried
    uint64_t Banked = 0;           ///< imported into the replay bank
    uint64_t DroppedUnresolved = 0; ///< referenced a predicate this module
                                    ///< does not define
    uint64_t DroppedStale = 0;     ///< clause-code fingerprint mismatch
    uint64_t Summaries = 0;        ///< summary pairs carried (reporting)
  };

  /// \p Program must outlive the store. The store always runs the worklist
  /// driver over an interned table (its reuse machinery is defined in
  /// those terms); AnalysisSession reports a descriptive error for other
  /// configurations before constructing one.
  AnalysisStore(const CompiledProgram &Program, AnalyzerOptions Options);
  AnalysisStore(const AnalysisStore &) = delete;
  AnalysisStore &operator=(const AnalysisStore &) = delete;
  ~AnalysisStore();

  /// Analyzes entry \p Name with calling pattern \p Entry against the
  /// store. The result is byte-identical (per formatAnalysis) to a scratch
  /// analyze() of the same entry at every thread count; converged results
  /// are merged and cached, failing queries leave the store untouched.
  Result<AnalysisResult> query(std::string_view Name, const Pattern &Entry);

  /// Spec-string form (see parseEntrySpec).
  Result<AnalysisResult> query(std::string_view EntrySpec);

  /// The clauses of \p EditedPreds changed (in place — the module object
  /// is unchanged): invalidates exactly the cone of the edit inside the
  /// store, then re-answers the most recent query warm.
  Result<AnalysisResult> reanalyze(const std::vector<PredSig> &EditedPreds);

  /// Like the above, but re-answers (\p Name, \p Entry) instead of the
  /// store's most recent query. The multi-tenant server routes edits
  /// through this form: with several clients sharing one store, "the most
  /// recent query" depends on request interleaving, while each client's
  /// own last entry does not.
  Result<AnalysisResult> reanalyze(const std::vector<PredSig> &EditedPreds,
                                   std::string_view Name,
                                   const Pattern &Entry);

  /// The program was recompiled as \p Edited (diffed clause-by-clause;
  /// should share the store's SymbolTable — with a distinct table every
  /// predicate is conservatively treated as edited and the store resets).
  /// \p Edited replaces the store's program and must outlive it.
  Result<AnalysisResult> reanalyze(const CompiledProgram &Edited);

  /// Adjusts the driver budgets for subsequent queries. Cached projections
  /// keep the budgets they were computed under.
  void setBudgets(int MaxIterations, uint64_t MaxSteps) {
    Options.MaxIterations = MaxIterations;
    Options.MaxSteps = MaxSteps;
  }

  const AnalyzerOptions &options() const { return Options; }
  const CompiledProgram &program() const { return *Program; }

  /// The multi-root table: the union of every merged query's scratch
  /// table, each entry tagged with the roots that reached it.
  const ExtensionTable &table() const { return *Table; }

  const Stats &stats() const { return St; }

  /// Roots currently merged and valid (invalidated roots don't count).
  size_t numRoots() const;

  /// Approximate heap bytes of the store's long-lived state: interner
  /// arenas + multi-root table + banked journals (trace objects counted
  /// once — they are shared across journals by handle) + cached per-root
  /// projections. The unit the server's LRU-by-bytes eviction policy
  /// meters (--max-store-bytes).
  uint64_t bytesUsed() const;

  /// Journal-bank hygiene for long-lived stores: drops error traces and
  /// deduplicates shared trace handles across the valid roots' banks (a
  /// trace stays in the first root, in root order, that banked it). The
  /// bank is a replay *hint* — every banked trace is revalidated against
  /// the live query state before it is applied (Incremental.h), so
  /// dropping handles can cost warmth but never changes any answer.
  /// Returns the number of handles dropped. query() triggers this
  /// automatically once the bank's duplication factor crosses
  /// kCompactionFactor (observable through Stats::Compactions).
  uint64_t compactJournals();

  /// Packages the store's derived knowledge — every valid entry's
  /// call/success summary plus the banked activation traces, with
  /// per-predicate clause-code fingerprints — into a module-independent
  /// bundle another store can import (analyzer/SummaryBundle.h). A store
  /// with no merged roots exports an empty (but valid) bundle.
  SummaryBundle exportBundle() const;

  /// serialize() of exportBundle() — the byte string services persist and
  /// ship between stores.
  std::string exportSummaries() const;

  /// Imports \p B: resolves its traces against this store's module, drops
  /// the ones that reference missing predicates or predicates whose clause
  /// code hashes differently (the staleness guard), and banks the rest as
  /// replay hints the next queries warm-start from. Rejects bundles from a
  /// different abstract domain or depth limit (their patterns mean
  /// different things). Banked traces are validated on first use — the
  /// warm drain stays byte-identical to scratch whatever is imported.
  Result<ImportStats> importBundle(const SummaryBundle &B);

  /// deserialize + importBundle.
  Result<ImportStats> importSummaries(std::string_view Bytes);

  /// The cached per-root projection of a previously merged query, or
  /// nullptr if that root was never merged (or was invalidated). Non-const
  /// because the entry pattern is normalized through the shared interner.
  const AnalysisResult *projection(std::string_view Name,
                                   const Pattern &Entry);

  /// Order-free rendering of the whole store: one line per valid entry —
  /// predicate, calling pattern, summary, sorted root tags — sorted
  /// lexicographically. Two stores that answered the same query set in any
  /// order dump identically (the order-independence contract).
  std::string canonicalDump(const SymbolTable &Syms) const;

private:
  /// One merged query root: its identity, cached scratch-identical result,
  /// projection (store entry indices in the query's creation order), and
  /// the run journal later queries warm-start from.
  struct RootInfo {
    std::string Name;
    int32_t Arity = 0;
    Pattern Call; ///< normalized entry pattern
    int32_t Pid = -1;
    PatternId CallId = kInvalidPatternId;
    bool Valid = false;
    AnalysisResult Cached;
    std::vector<int32_t> EntryIdxs;
    std::unique_ptr<RunJournal> Journal;
  };

  int findRootSlot(std::string_view Name, PatternId CallId) const;
  void mergeQuery(std::string_view Name, int32_t Pid, PatternId CallId,
                  const ExtensionTable &QTable, const SchedulerCore &QCore,
                  std::unique_ptr<RunJournal> Journal,
                  const AnalysisResult &R);
  /// Cone invalidation + rebuild of the physical table/graph from the
  /// surviving roots, with predicate ids re-resolved against \p NewP's
  /// module. Installs \p NewP as the store's program.
  void invalidate(const CompiledProgram &NewP,
                  const std::vector<PredSig> &Edited);
  void resetState();

  const CompiledProgram *Program;
  AnalyzerOptions Options;
  /// The abstract domain Options.DomainName resolved to (falls back to the
  /// default domain on unknown names — AnalysisSession validates the name
  /// with a descriptive error before constructing a store).
  const Domain *Dom = nullptr;
  std::unique_ptr<PatternInterner> Interner;
  std::unique_ptr<ExtensionTable> Table;
  /// Accumulated dependency edges of every merged query, on store entry
  /// indices — reverseClosure over it is the invalidation cone.
  SchedulerCore Core;
  std::unordered_set<uint64_t> EdgeSeen; ///< (dep, reader) pairs present
  std::vector<RootInfo> Roots;
  /// Foreign traces banked by importBundle, pooled into every query's
  /// replay source alongside the roots' own journals. Pure warmth: replay
  /// validation re-derives everything it applies.
  std::unique_ptr<RunJournal> Imported;
  /// Worker threads for cold parallel queries, created on first use.
  std::unique_ptr<SpecPool> Pool;
  std::string LastName;
  Pattern LastEntry;
  bool HaveLast = false;
  Stats St;
};

/// Per-root projection rendering: formatAnalysis of the store's cached
/// result for (\p Name, \p Entry) — byte-identical to formatAnalysis of a
/// scratch analyze() of that entry. Returns the empty string when the root
/// was never merged or was invalidated.
std::string formatAnalysis(AnalysisStore &Store, std::string_view Name,
                           const Pattern &Entry, const SymbolTable &Syms);

} // namespace awam

#endif // AWAM_ANALYZER_STORE_H
