//===- analyzer/AbstractMachine.cpp - Reinterpreted WAM dispatch ----------===//

#include "analyzer/AbstractMachine.h"

#include "analyzer/Domain.h"
#include "analyzer/RunJournal.h"

#include "absdom/AbsBuiltins.h"
#include "absdom/AbsOps.h"
#include "compiler/Builtins.h"

#include <algorithm>
#include <span>

using namespace awam;

AbstractMachine::AbstractMachine(const CompiledProgram &Program,
                                 ExtensionTable &Table,
                                 AbsMachineOptions Options)
    : Program(Program), Module(*Program.Module), Table(Table),
      Interner(Table.interner()), Options(Options),
      X(std::max(Program.MaxXReg, 8)) {
  Dom = this->Options.Dom ? this->Options.Dom : &defaultDomain();
  DomState = Dom->makeRunState();
}

void AbstractMachine::machineError(std::string Message) {
  ErrorMsg = std::move(Message);
  HasError = true;
  Running = false;
}

/// Appends a control-scheme trace line when tracing is enabled.
#define AWAM_TRACE(Text)                                                     \
  do {                                                                       \
    if (Options.TraceLog)                                                    \
      Options.TraceLog->push_back(Text);                                     \
  } while (false)

void AbstractMachine::resetRun() {
  St.reset();
  if (DomState)
    DomState->rewindTo(0);
  Envs.clear();
  Frames.clear();
  std::fill(X.begin(), X.end(), Cell());
  P = kHaltAddress;
  CP = kHaltAddress;
  E = -1;
  S = 0;
  WriteMode = false;
  Changed = false;
  HasError = false;
  ErrorMsg.clear();
}

AbsRunStatus AbstractMachine::driveToCompletion() {
  Running = true;
  enterClause();
  while (Running && !HasError)
    if (!step())
      break;
  return HasError ? AbsRunStatus::Error : AbsRunStatus::Completed;
}

AbsRunStatus AbstractMachine::runIteration(int32_t PredId,
                                           const Pattern &Entry) {
  assert(!Deps && "runIteration is the naive protocol; use runActivation "
                  "with a dependency sink");
  resetRun();
  Table.beginIteration();

  bool Created = false;
  // Entry patterns are hand-built (makeEntryPattern / parseEntrySpec), so
  // the interned id comes from the normalizing intern.
  ETEntry &TopEntry =
      Interner ? Table.findOrCreate(PredId, Interner->internNormalized(Entry),
                                    Created)
               : Table.findOrCreate(PredId, Entry, Created);
  if (Created)
    Changed = true;
  TopEntry.Explored = true;
  ++Activations;

  AnalysisFrame F;
  F.Entry = &TopEntry;
  F.PredId = PredId;
  for (int64_t Addr : instantiate(St, Entry))
    F.CallerArgs.push_back(Cell::ref(Addr));
  F.SavedCP = kHaltAddress;
  F.SavedE = -1;
  // Fast path: the calling pattern is instantiated once per exploration,
  // below the frame's marks; each clause attempt's unwind restores the
  // cells to this pristine state (the trail records old values
  // unconditionally), instead of re-instantiating per clause.
  if (Interner)
    instantiate(St, TopEntry.Call, CellOfBuf, F.CalleeArgs);
  F.TrailMark = St.trailMark();
  F.HeapMark = St.heapTop();
  F.EnvMark = 0;
  F.DomMark = DomState ? DomState->mark() : 0;
  Frames.push_back(std::move(F));

  return driveToCompletion();
}

AbsRunStatus AbstractMachine::runActivation(ETEntry &Root) {
  assert(Deps && "runActivation needs a dependency sink (worklist mode)");
  resetRun();

  // Journal recording brackets the run: beginRun snapshots the root's
  // pre-run summary (before any updateET can grow it), endRun stores the
  // run's own step/activation cost.
  uint64_t Steps0 = Steps;
  uint64_t Acts0 = Activations;
  if (Journal)
    Journal->beginRun(Root);

  Deps->beginActivation(Root);
  Root.EverExplored = true;
  ++Activations;

  AnalysisFrame F;
  F.Entry = &Root;
  F.PredId = Root.PredId;
  for (int64_t Addr : instantiate(St, Root.Call))
    F.CallerArgs.push_back(Cell::ref(Addr));
  F.SavedCP = kHaltAddress;
  F.SavedE = -1;
  if (Interner)
    instantiate(St, Root.Call, CellOfBuf, F.CalleeArgs);
  F.TrailMark = St.trailMark();
  F.HeapMark = St.heapTop();
  F.EnvMark = 0;
  F.DomMark = DomState ? DomState->mark() : 0;
  Frames.push_back(std::move(F));

  AbsRunStatus Status = driveToCompletion();
  if (Journal)
    Journal->endRun(Steps - Steps0, Activations - Acts0,
                    Status == AbsRunStatus::Error);
  return Status;
}

void AbstractMachine::enterClause() {
  AnalysisFrame &F = Frames.back();
  const PredicateInfo &Pred = Module.predicate(F.PredId);
  if (F.ClauseIdx >= Pred.Clauses.size()) {
    returnFromFrame();
    return;
  }
  // Fresh attempt: discard the previous clause's bindings and allocations
  // (domain run state backtracks in lockstep with the trail).
  St.unwind(F.TrailMark);
  St.truncate(F.HeapMark);
  if (DomState)
    DomState->rewindTo(F.DomMark);
  Envs.resize(F.EnvMark);
  E = F.SavedE;
  WriteMode = false;

  // Interned path: F.CalleeArgs was instantiated once at frame setup and
  // the unwind above just restored those cells to their pristine state.
  if (!Interner)
    F.CalleeArgs = instantiate(St, F.Entry->Call);
  for (size_t I = 0; I != F.CalleeArgs.size(); ++I)
    X[I] = Cell::ref(F.CalleeArgs[I]);
  P = Pred.Clauses[F.ClauseIdx].Entry;
  AWAM_TRACE("explore " + Module.predicateLabel(F.PredId) + " clause " +
             std::to_string(F.ClauseIdx + 1) + " with " +
             F.Entry->Call.str(Module.symbols()));
}

void AbstractMachine::failCurrent() {
  assert(!Frames.empty() && "failure with no analysis frame");
  ++Frames.back().ClauseIdx;
  enterClause();
}

/// updateET grew \p Entry's summary: bump its version (readers compare
/// against it) and tell the scheduler, which re-enqueues stale readers.
void AbstractMachine::summaryGrew(ETEntry &Entry) {
  Table.noteSuccessChanged(Entry);
  Changed = true;
  if (Deps) {
    if (Journal)
      Journal->noteGrow(Entry);
    Deps->noteChanged(Entry);
  }
}

void AbstractMachine::clauseSucceeded() {
  AnalysisFrame &F = Frames.back();

  // updateET: summarize success patterns with lub. The common case at the
  // fixpoint is re-deriving an already-summarized pattern; with interning
  // that is one id comparison, and re-deriving a pattern already folded in
  // hits the lub memo instead of re-running the instantiate/lub/
  // re-canonicalize dance.
  if (Interner) {
    ArgsBuf.clear();
    ArgsBuf.reserve(F.CalleeArgs.size());
    for (int64_t Addr : F.CalleeArgs)
      ArgsBuf.push_back(Cell::ref(Addr));
    Dom->abstractSuccess(St, ArgsBuf, CanonCtx, SPatBuf, Options.DepthLimit,
                         DomState.get());
    // Re-deriving the already-summarized success pattern is the common
    // case at the fixpoint: detect it with one structural compare and
    // skip the intern (hash + bucket probe) entirely.
    if (F.Entry->SuccessId != kInvalidPatternId &&
        SPatBuf == Interner->pattern(F.Entry->SuccessId)) {
      // Summary unchanged; nothing to record.
    } else {
      PatternId SId = Interner->intern(SPatBuf);
      if (F.Entry->SuccessId == kInvalidPatternId) {
        F.Entry->SuccessId = SId;
        F.Entry->Success.emplace(Interner->pattern(SId));
        summaryGrew(*F.Entry);
      } else if (SId != F.Entry->SuccessId) {
        PatternId Merged = Interner->lub(F.Entry->SuccessId, SId);
        if (Merged != F.Entry->SuccessId) {
          F.Entry->SuccessId = Merged;
          F.Entry->Success.emplace(Interner->pattern(Merged));
          summaryGrew(*F.Entry);
        }
      }
    }
  } else {
    std::vector<Cell> Cells;
    Cells.reserve(F.CalleeArgs.size());
    for (int64_t Addr : F.CalleeArgs)
      Cells.push_back(Cell::ref(Addr));
    Pattern SPat = canonicalize(St, Cells, Options.DepthLimit);
    if (F.Entry->Success) {
      if (!(SPat == *F.Entry->Success)) {
        Pattern Merged =
            lubPatterns(*F.Entry->Success, SPat, Options.DepthLimit);
        if (!(Merged == *F.Entry->Success)) {
          F.Entry->Success = std::move(Merged);
          summaryGrew(*F.Entry);
        }
      }
    } else {
      F.Entry->Success = std::move(SPat);
      summaryGrew(*F.Entry);
    }
  }

  AWAM_TRACE("proceed => updateET(" + Module.predicateLabel(F.PredId) +
             " " + F.Entry->Success->str(Module.symbols()) +
             "), fail to next clause");

  // Artificial failure: explore the next clause.
  ++F.ClauseIdx;
  enterClause();
}

void AbstractMachine::returnFromFrame() {
  AnalysisFrame F = std::move(Frames.back());
  Frames.pop_back();

  // Discard the callee's working state. Domain run state rewinds to the
  // caller's scope; applySuccess below may append to it there.
  St.unwind(F.TrailMark);
  St.truncate(F.HeapMark);
  if (DomState)
    DomState->rewindTo(F.DomMark);
  Envs.resize(F.EnvMark);
  E = F.SavedE;

  AWAM_TRACE("clauses of " + Module.predicateLabel(F.PredId) +
             " exhausted => lookupET -> " +
             (F.Entry->Success ? F.Entry->Success->str(Module.symbols())
                               : std::string("no success pattern")));

  // The caller's continuation reads this entry's final summary: that read
  // is a dependency of the caller's activation.
  if (Deps && Journal)
    Journal->exitCall();
  if (Deps && !Frames.empty())
    Deps->noteRead(*Frames.back().Entry, *F.Entry, F.Entry->SuccessVersion);

  // lookupET: return the summarized success pattern, if any.
  if (F.Entry->Success) {
    bool Ok;
    if (Interner) {
      Ok = Dom->applySuccess(St, F.CallerArgs, *F.Entry->Success, CellOfBuf,
                             RootsBuf, DomState.get());
    } else {
      RootsBuf = instantiate(St, *F.Entry->Success);
      Ok = true;
      for (size_t I = 0; I != RootsBuf.size() && Ok; ++I)
        Ok = absUnify(St, F.CallerArgs[I], Cell::ref(RootsBuf[I]));
    }
    if (Ok) {
      P = F.SavedCP;
      return;
    }
  }
  // No (compatible) success pattern: the call fails.
  if (Frames.empty()) {
    Running = false; // top-level goal finitely failed this iteration
    return;
  }
  failCurrent();
}

void AbstractMachine::doCall(int32_t PredId, int32_t ContinueAt) {
  const PredicateInfo &Pred = Module.predicate(PredId);
  ArgsBuf.assign(X.begin(), X.begin() + Pred.Arity);

  bool Created = false;
  ETEntry *Found;
  if (Interner) {
    // Hash-consed path: abstract into the pooled scratch pattern and
    // probe the table with one fused structural lookup; only a miss (a
    // previously unseen calling pattern) pays for interning.
    Dom->abstractCall(St, ArgsBuf, CanonCtx, CPatBuf, Options.DepthLimit,
                      DomState.get());
    Found = &Table.findOrCreateByPattern(PredId, CPatBuf, Created);
  } else {
    Pattern CPat = canonicalize(St, ArgsBuf, Options.DepthLimit,
                                /*WidenConstants=*/true);
    Found = &Table.findOrCreate(PredId, CPat, Created);
  }
  ETEntry &Entry = *Found;
  if (Created)
    Changed = true;

  // Memo-vs-explore decision. Naive protocol: explore each entry once per
  // iteration (the Explored flag, reset by beginIteration). Activation
  // protocol: explore a new entry inline; an already-explored entry
  // answers from the memo unless the scheduler has a pending run for it,
  // in which case it is re-explored inline (mirroring where the naive
  // driver's DFS would re-explore it, which keeps the two drivers'
  // intermediate tables — and hence their fixpoints — identical).
  bool Memo = Deps ? (Entry.EverExplored && !Deps->shouldReexplore(Entry))
                   : Entry.Explored;

  AWAM_TRACE("call " + Module.predicateLabel(PredId) + " with " +
             Entry.Call.str(Module.symbols()) +
             (Memo ? " [explored: consult table]"
                   : " [unexplored: explore clauses]"));

  if (Memo) {
    if (Deps) {
      if (Journal)
        Journal->noteMemo(Entry);
      Deps->noteRead(*Frames.back().Entry, Entry, Entry.SuccessVersion);
    }
    // Memoized deterministic return (or failure if nothing is known yet —
    // the driver will come back).
    if (!Entry.Success) {
      failCurrent();
      return;
    }
    if (Interner) {
      if (!Dom->applySuccess(St, ArgsBuf, *Entry.Success, CellOfBuf,
                             RootsBuf, DomState.get())) {
        failCurrent();
        return;
      }
    } else {
      RootsBuf = instantiate(St, *Entry.Success);
      for (size_t I = 0; I != RootsBuf.size(); ++I)
        if (!absUnify(St, ArgsBuf[I], Cell::ref(RootsBuf[I]))) {
          failCurrent();
          return;
        }
    }
    P = ContinueAt;
    return;
  }

  // Exploration mutates the entry (EverExplored now, Success as clauses
  // succeed) and stores a pointer to it in the frame; on an overlay table
  // that requires privatizing the entry first (a no-op elsewhere).
  ETEntry &WEntry = Table.writable(Entry);
  if (Deps) {
    if (Journal)
      Journal->enterCall(WEntry, Created);
    Deps->beginActivation(WEntry);
    WEntry.EverExplored = true;
  } else {
    WEntry.Explored = true;
  }
  ++Activations;
  AnalysisFrame F;
  F.Entry = &WEntry;
  F.PredId = PredId;
  F.CallerArgs = ArgsBuf;
  F.SavedCP = ContinueAt;
  F.SavedE = E;
  // See runIteration: instantiate the calling pattern once, below the
  // marks, so every clause attempt reuses the restored cells.
  if (Interner)
    instantiate(St, WEntry.Call, CellOfBuf, F.CalleeArgs);
  F.TrailMark = St.trailMark();
  F.HeapMark = St.heapTop();
  F.EnvMark = Envs.size();
  F.DomMark = DomState ? DomState->mark() : 0;
  Frames.push_back(std::move(F));
  enterClause();
}

bool AbstractMachine::step() {
  if (++Steps > Options.MaxSteps) {
    machineError("abstract instruction budget exceeded");
    return false;
  }
  Instruction I = Module.at(P++);
  switch (I.Op) {
  case Opcode::Halt:
    Running = false;
    return false;

  // ---- Get instructions ----------------------------------------------
  case Opcode::GetVariableX:
    X[I.A] = X[I.B];
    break;
  case Opcode::GetVariableY:
    ySlot(I.A) = X[I.B];
    break;
  case Opcode::GetValueX:
    if (!absUnify(St, X[I.A], X[I.B]))
      failCurrent();
    break;
  case Opcode::GetValueY:
    if (!absUnify(St, ySlot(I.A), X[I.B]))
      failCurrent();
    break;
  case Opcode::GetConst: {
    const ConstOperand &C = Module.constAt(I.A);
    Cell K = C.K == ConstOperand::IntK ? Cell::integer(C.Int)
                                       : Cell::atom(C.Name);
    if (!absUnify(St, X[I.B], K))
      failCurrent();
    break;
  }
  case Opcode::GetList: {
    DerefResult D = St.deref(X[I.A]);
    switch (D.C.T) {
    case Tag::Ref: // concrete write mode
      St.bind(D.Addr, Cell::lis(St.heapTop()));
      WriteMode = true;
      break;
    case Tag::Lis: // concrete read mode
      S = D.C.V;
      WriteMode = false;
      break;
    case Tag::Abs: {
      // ComplexTermInst (Figure 4): generate a [.|.] instance of the
      // abstract term and proceed in read mode over its subterm cells.
      int64_t Base;
      switch (D.C.absKind()) {
      case AbsKind::Any:
      case AbsKind::NV:
        Base = St.push(Cell::abs(AbsKind::Any));
        St.push(Cell::abs(AbsKind::Any));
        break;
      case AbsKind::Ground:
        Base = St.push(Cell::abs(AbsKind::Ground));
        St.push(Cell::abs(AbsKind::Ground));
        break;
      case AbsKind::List: {
        int64_t ElemInst = copyAbs(St, Cell::ref(D.C.V));
        Base = St.push(Cell::ref(ElemInst));
        St.push(Cell::abs(AbsKind::List, D.C.V));
        break;
      }
      default:
        failCurrent(); // const/atom/int have no list instances
        return true;
      }
      St.bind(D.Addr, Cell::lis(Base));
      S = Base;
      WriteMode = false;
      break;
    }
    default:
      failCurrent();
      break;
    }
    break;
  }
  case Opcode::GetStructure: {
    const FunctorArity &Fn = Module.functorAt(I.A);
    DerefResult D = St.deref(X[I.B]);
    switch (D.C.T) {
    case Tag::Ref: {
      int64_t FunAddr = St.push(Cell::fun(Fn.Name, Fn.Arity));
      St.bind(D.Addr, Cell::str(FunAddr));
      WriteMode = true;
      break;
    }
    case Tag::Str: {
      const Cell FC = St.at(D.C.V);
      if (FC.V != Fn.Name || FC.funArity() != Fn.Arity) {
        failCurrent();
        break;
      }
      S = D.C.V + 1;
      WriteMode = false;
      break;
    }
    case Tag::Abs: {
      AbsKind K = D.C.absKind();
      if (K != AbsKind::Any && K != AbsKind::NV && K != AbsKind::Ground) {
        failCurrent(); // lists/constants have no f/n instances
        break;
      }
      AbsKind ArgKind =
          K == AbsKind::Ground ? AbsKind::Ground : AbsKind::Any;
      int64_t FunAddr = St.push(Cell::fun(Fn.Name, Fn.Arity));
      for (int32_t N = 0; N != Fn.Arity; ++N)
        St.push(Cell::abs(ArgKind));
      St.bind(D.Addr, Cell::str(FunAddr));
      S = FunAddr + 1;
      WriteMode = false;
      break;
    }
    default:
      failCurrent();
      break;
    }
    break;
  }

  // ---- Put instructions (identical to the concrete machine) -----------
  case Opcode::PutVariableX: {
    int64_t A = St.pushVar();
    X[I.A] = Cell::ref(A);
    X[I.B] = Cell::ref(A);
    break;
  }
  case Opcode::PutVariableY: {
    int64_t A = St.pushVar();
    ySlot(I.A) = Cell::ref(A);
    X[I.B] = Cell::ref(A);
    break;
  }
  case Opcode::PutValueX:
    X[I.B] = X[I.A];
    break;
  case Opcode::PutValueY:
    X[I.B] = ySlot(I.A);
    break;
  case Opcode::PutConst: {
    const ConstOperand &C = Module.constAt(I.A);
    X[I.B] = C.K == ConstOperand::IntK ? Cell::integer(C.Int)
                                       : Cell::atom(C.Name);
    break;
  }
  case Opcode::PutList:
    X[I.A] = Cell::lis(St.heapTop());
    WriteMode = true;
    break;
  case Opcode::PutStructure: {
    const FunctorArity &Fn = Module.functorAt(I.A);
    int64_t FunAddr = St.push(Cell::fun(Fn.Name, Fn.Arity));
    X[I.B] = Cell::str(FunAddr);
    WriteMode = true;
    break;
  }

  // ---- Unify instructions ---------------------------------------------
  case Opcode::UnifyVariableX:
    X[I.A] = Cell::ref(WriteMode ? St.pushVar() : S++);
    break;
  case Opcode::UnifyVariableY:
    ySlot(I.A) = Cell::ref(WriteMode ? St.pushVar() : S++);
    break;
  case Opcode::UnifyValueX:
    if (WriteMode)
      St.push(X[I.A]);
    else if (!absUnify(St, X[I.A], Cell::ref(S++)))
      failCurrent();
    break;
  case Opcode::UnifyValueY:
    if (WriteMode)
      St.push(ySlot(I.A));
    else if (!absUnify(St, ySlot(I.A), Cell::ref(S++)))
      failCurrent();
    break;
  case Opcode::UnifyConst: {
    const ConstOperand &C = Module.constAt(I.A);
    Cell K = C.K == ConstOperand::IntK ? Cell::integer(C.Int)
                                       : Cell::atom(C.Name);
    if (WriteMode)
      St.push(K);
    else if (!absUnify(St, Cell::ref(S++), K))
      failCurrent();
    break;
  }
  case Opcode::UnifyVoid:
    if (WriteMode)
      for (int32_t N = 0; N != I.A; ++N)
        St.pushVar();
    else
      S += I.A;
    break;

  // ---- Procedural / control -------------------------------------------
  case Opcode::Allocate: {
    EnvFrame Env;
    Env.PrevE = E;
    Env.SavedCP = CP;
    Env.Y.resize(I.A);
    Envs.push_back(std::move(Env));
    E = static_cast<int64_t>(Envs.size()) - 1;
    break;
  }
  case Opcode::Deallocate:
    CP = Envs[E].SavedCP;
    E = Envs[E].PrevE;
    break;
  case Opcode::Call:
    doCall(I.A, P);
    break;
  case Opcode::Execute:
    // Reverted to call followed by proceed (paper Section 5): the
    // continuation is the module's synthetic Proceed instruction.
    doCall(I.A, kProceedAddress);
    break;
  case Opcode::Proceed:
    clauseSucceeded();
    break;
  case Opcode::Fail:
    failCurrent();
    break;

  // Cut is ignored during analysis (sound over-approximation).
  case Opcode::NeckCut:
  case Opcode::GetLevel:
  case Opcode::CutY:
    break;

  case Opcode::Builtin:
    if (!runAbsBuiltin(I.A, I.B))
      failCurrent();
    break;

  // Clause selection lives in call/proceed; the indexing block is never
  // entered by the abstract machine.
  case Opcode::Try:
  case Opcode::Retry:
  case Opcode::Trust:
  case Opcode::Jump:
  case Opcode::SwitchOnTerm:
  case Opcode::SwitchOnConstant:
  case Opcode::SwitchOnStructure:
  // Specializer output is only ever run on the concrete machine; the
  // analyzer always reads the unspecialized module.
  case Opcode::GetListFused:
  case Opcode::GetStructureFused:
    machineError("indexing instruction reached the abstract machine");
    return false;
  }
  return true;
}

bool AbstractMachine::runAbsBuiltin(int Id, int Arity) {
  return applyAbsBuiltin(St, static_cast<BuiltinId>(Id),
                         std::span<const Cell>(X.data(), Arity));
}
