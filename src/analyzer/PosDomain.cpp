//===- analyzer/PosDomain.cpp - Groundness-dependency domain --------------===//
//
// See PosDomain.h for the encoding. The inference scheme, in one line:
// a value is ground exactly when its nonground-leaf set is empty, so
// "grounding arguments I forces argument j ground" is leaf-set inclusion —
// computed against the machine heap at clause success, strengthened by the
// truth tables of the summaries applied along the current path (the
// constraint stack), and over-approximated into a truth table of achievable
// groundness valuations.
//
// Soundness: for a valuation v, the seeded set (the leaves of the v-ground
// arguments) is a subset of the real ground-leaf set of any concrete
// success instance matching v, and the closure rule only adds leaves every
// such instance also grounds (a summary's truth table over-approximates its
// callee's achievable valuations, by induction over the fixpoint). So a
// valuation is only rejected when some argument claimed nonground is
// provably forced ground — achievable valuations are never dropped.
//
//===----------------------------------------------------------------------===//

#include "analyzer/PosDomain.h"

#include "absdom/AbsOps.h"

#include <algorithm>
#include <bit>

using namespace awam;

bool awam::posPatternHasTT(const PatternRef &P) {
  if (P.NumRoots < 1 || P.NumNodes != P.NumRoots + 1)
    return false;
  // Pos encodings have roots 0..n-1 in order with the marker node last.
  for (size_t I = 0; I != P.NumRoots; ++I)
    if (P.Roots[I] != static_cast<int32_t>(I))
      return false;
  const PatNode &M = P.Nodes[P.NumRoots];
  return M.K == PatKind::IntP && M.ChildCount == 0;
}

uint64_t awam::posPatternTT(const PatternRef &P) {
  return posPatternHasTT(P)
             ? static_cast<uint64_t>(P.Nodes[P.NumRoots].Num)
             : 0;
}

namespace {

/// The constraint stack: one record per summary applied (and still live)
/// on the current machine path. Marked/rewound in lockstep with the trail,
/// so a constraint never outlives the bindings it described.
class PosRunState final : public DomainRunState {
public:
  struct Constraint {
    std::vector<Cell> Args; ///< the call site's argument cells
    uint64_t TT = 0;        ///< the applied summary's truth table
  };
  std::vector<Constraint> Cons;

  size_t mark() const override { return Cons.size(); }
  void rewindTo(size_t Mark) override {
    if (Cons.size() > Mark)
      Cons.resize(Mark);
  }
};

bool leafSubset(const std::vector<int64_t> &A,
                const std::vector<int64_t> &Sigma) {
  for (int64_t L : A)
    if (std::find(Sigma.begin(), Sigma.end(), L) == Sigma.end())
      return false;
  return true;
}

void leafUnion(std::vector<int64_t> &Sigma, const std::vector<int64_t> &A) {
  for (int64_t L : A)
    if (std::find(Sigma.begin(), Sigma.end(), L) == Sigma.end())
      Sigma.push_back(L);
}

/// A constraint with its argument leaf sets re-derived against the current
/// heap (cells only narrow after the constraint was pushed, so
/// re-derivation only sharpens). Free marks arguments whose leaf walk
/// overflowed — excluded from both sides of the closure rule.
struct EvalCons {
  std::vector<std::vector<int64_t>> L;
  std::vector<char> Free;
  uint64_t TT = 0;
};

/// Closes \p Sigma under the constraints: whenever every achievable
/// valuation of a constraint consistent with the currently-ground
/// arguments (Known) has argument j ground, j's leaves join Sigma.
void closeUnder(std::vector<int64_t> &Sigma,
                const std::vector<EvalCons> &Cs) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const EvalCons &C : Cs) {
      size_t M = C.L.size();
      if (M == 0 || M > static_cast<size_t>(kPosMaxTTArity))
        continue;
      uint64_t Known = 0;
      for (size_t K = 0; K != M; ++K)
        if (!C.Free[K] && leafSubset(C.L[K], Sigma))
          Known |= 1ull << K;
      for (size_t J = 0; J != M; ++J) {
        if (C.Free[J] || leafSubset(C.L[J], Sigma))
          continue;
        bool Forced = true, Any = false;
        for (uint32_t W = 0; W != (1u << M); ++W) {
          if (!((C.TT >> W) & 1))
            continue;
          if ((W & Known) != Known)
            continue;
          Any = true;
          if (!((W >> J) & 1)) {
            Forced = false;
            break;
          }
        }
        if (Forced && Any) {
          leafUnion(Sigma, C.L[J]);
          Changed = true;
        }
      }
    }
  }
}

/// True if every term described by node \p Id of the (hand-built) entry
/// pattern \p P is ground.
bool entryNodeGround(const Pattern &P, int32_t Id, int Fuel = 64) {
  if (Fuel <= 0)
    return false;
  const PatNode &N = P.Nodes[Id];
  switch (N.K) {
  case PatKind::GroundP:
  case PatKind::ConstP:
  case PatKind::AtomTP:
  case PatKind::IntTP:
  case PatKind::ConP:
  case PatKind::IntP:
    return true;
  case PatKind::VarP:
  case PatKind::AnyP:
  case PatKind::NVP:
    return false;
  case PatKind::ListP:
  case PatKind::ConsP:
  case PatKind::StrP:
    for (int32_t C = 0; C != N.ChildCount; ++C)
      if (!entryNodeGround(P, P.child(N, C), Fuel - 1))
        return false;
    return true;
  }
  return false;
}

/// Appends a g/any root node to \p Out.
void pushRoot(Pattern &Out, bool Ground) {
  PatNode N;
  N.K = Ground ? PatKind::GroundP : PatKind::AnyP;
  Out.Roots.push_back(static_cast<int32_t>(Out.Nodes.size()));
  Out.Nodes.push_back(N);
}

/// Appends the truth-table marker node to \p Out.
void pushTT(Pattern &Out, uint64_t TT) {
  PatNode M;
  M.K = PatKind::IntP;
  M.Num = static_cast<int64_t>(TT);
  Out.Nodes.push_back(M);
}

/// Renders the minimal groundness implications of \p TT: for each
/// not-unconditionally-ground argument j, the minimal antecedent sets S
/// with "every achievable valuation grounding S grounds j" — e.g.
/// "x3<-x1&x2". Implications the root tuple already states (j marked g)
/// are suppressed.
std::string implicationText(const Pattern &P, size_t N, uint64_t TT) {
  std::string Out;
  for (size_t J = 0; J != N; ++J) {
    if (P.Nodes[P.Roots[J]].K == PatKind::GroundP)
      continue;
    uint32_t Others = ((1u << N) - 1) & ~(1u << J);
    std::vector<uint32_t> Subs;
    for (uint32_t S = 0; S != (1u << N); ++S)
      if ((S & ~Others) == 0)
        Subs.push_back(S);
    std::stable_sort(Subs.begin(), Subs.end(),
                     [](uint32_t A, uint32_t B) {
                       return std::popcount(A) < std::popcount(B);
                     });
    std::vector<uint32_t> Found;
    for (uint32_t S : Subs) {
      bool Dominated = false;
      for (uint32_t F : Found)
        if ((S & F) == F) {
          Dominated = true;
          break;
        }
      if (Dominated)
        continue;
      bool Any = false, Forced = true;
      for (uint32_t W = 0; W != (1u << N); ++W) {
        if (!((TT >> W) & 1))
          continue;
        if ((W & S) != S)
          continue;
        Any = true;
        if (!((W >> J) & 1)) {
          Forced = false;
          break;
        }
      }
      if (!Any || !Forced)
        continue;
      Found.push_back(S);
      if (!Out.empty())
        Out += ", ";
      Out += "x" + std::to_string(J + 1) + "<-";
      if (S == 0) {
        Out += "true";
        continue;
      }
      bool First = true;
      for (size_t I = 0; I != N; ++I)
        if ((S >> I) & 1) {
          if (!First)
            Out += "&";
          First = false;
          Out += "x" + std::to_string(I + 1);
        }
    }
  }
  return Out;
}

class PosDomain final : public Domain {
public:
  std::string_view name() const override { return "pos"; }
  std::string_view description() const override {
    return "groundness dependencies (Pos-style truth tables)";
  }

  void abstractCall(const Store &St, const std::vector<Cell> &Args,
                    CanonicalizeContext &, Pattern &Out, int,
                    DomainRunState *) const override {
    Out.Nodes.clear();
    Out.ChildStore.clear();
    Out.Roots.clear();
    for (const Cell &A : Args)
      pushRoot(Out, isGroundCell(St, A));
  }

  void abstractSuccess(const Store &St, const std::vector<Cell> &Args,
                       CanonicalizeContext &, Pattern &Out, int,
                       DomainRunState *RS) const override {
    size_t N = Args.size();
    std::vector<std::vector<int64_t>> L(N);
    std::vector<char> Free(N, 0);
    std::vector<int64_t> Visited;
    for (size_t I = 0; I != N; ++I) {
      Visited.clear();
      if (!collectNongroundLeaves(St, Args[I], L[I], Visited)) {
        Free[I] = 1; // overflow: groundness unknown, claim nothing
        L[I].clear();
      }
    }
    Out.Nodes.clear();
    Out.ChildStore.clear();
    Out.Roots.clear();
    for (size_t I = 0; I != N; ++I)
      pushRoot(Out, !Free[I] && L[I].empty());
    if (N == 0 || N > static_cast<size_t>(kPosMaxTTArity))
      return;

    std::vector<EvalCons> Cs;
    if (const auto *PS = static_cast<const PosRunState *>(RS)) {
      Cs.reserve(PS->Cons.size());
      for (const PosRunState::Constraint &C : PS->Cons) {
        EvalCons E;
        E.TT = C.TT;
        size_t M = C.Args.size();
        E.L.resize(M);
        E.Free.assign(M, 0);
        for (size_t K = 0; K != M; ++K) {
          Visited.clear();
          if (!collectNongroundLeaves(St, C.Args[K], E.L[K], Visited)) {
            E.Free[K] = 1;
            E.L[K].clear();
          }
        }
        Cs.push_back(std::move(E));
      }
    }

    // One truth-table bit per valuation: seed sigma with the leaves of the
    // arguments the valuation grounds, close under the path's constraints,
    // and reject only if some argument claimed nonground ends up covered.
    uint64_t TT = 0;
    std::vector<int64_t> Sigma;
    for (uint32_t V = 0; V != (1u << N); ++V) {
      Sigma.clear();
      for (size_t I = 0; I != N; ++I)
        if (((V >> I) & 1) && !Free[I])
          leafUnion(Sigma, L[I]);
      closeUnder(Sigma, Cs);
      bool Accept = true;
      for (size_t I = 0; I != N && Accept; ++I) {
        if (Free[I])
          continue; // both values allowed
        if ((((V >> I) & 1) != 0) != leafSubset(L[I], Sigma))
          Accept = false;
      }
      if (Accept)
        TT |= 1ull << V;
    }
    pushTT(Out, TT);
  }

  bool applySuccess(Store &St, const std::vector<Cell> &CallerArgs,
                    const PatternRef &Success, std::vector<int64_t> &CellOf,
                    std::vector<int64_t> &Roots,
                    DomainRunState *RS) const override {
    // Unconditional groundness flows through the cells (g roots narrow the
    // caller's arguments); the truth table becomes a path constraint.
    if (!Domain::applySuccess(St, CallerArgs, Success, CellOf, Roots,
                              nullptr))
      return false;
    if (RS && posPatternHasTT(Success)) {
      auto *PS = static_cast<PosRunState *>(RS);
      PosRunState::Constraint C;
      C.Args = CallerArgs;
      C.TT = posPatternTT(Success);
      PS->Cons.push_back(std::move(C));
    }
    return true;
  }

  void lubInto(const PatternRef &A, const PatternRef &B, int, LubScratch &,
               Pattern &Out) const override {
    Out.Nodes.clear();
    Out.ChildStore.clear();
    Out.Roots.clear();
    for (size_t I = 0; I != A.NumRoots; ++I)
      pushRoot(Out, A.Nodes[A.Roots[I]].K == PatKind::GroundP &&
                        B.Nodes[B.Roots[I]].K == PatKind::GroundP);
    // Bitwise OR is the exact join of valuation sets. A side without a
    // table claims every valuation, so the join drops the table then.
    if (posPatternHasTT(A) && posPatternHasTT(B))
      pushTT(Out, posPatternTT(A) | posPatternTT(B));
  }

  void normalizeEntry(const Pattern &P, int, LubScratch &,
                      Pattern &Out) const override {
    Out.Nodes.clear();
    Out.ChildStore.clear();
    Out.Roots.clear();
    for (int32_t Root : P.Roots)
      pushRoot(Out, entryNodeGround(P, Root));
  }

  std::unique_ptr<DomainRunState> makeRunState() const override {
    return std::make_unique<PosRunState>();
  }

  std::string formatPattern(const Pattern &P,
                            const SymbolTable &Syms) const override {
    size_t N = P.Roots.size();
    for (size_t I = 0; I != N; ++I) {
      PatKind K = P.Nodes[P.Roots[I]].K;
      if (K != PatKind::GroundP && K != PatKind::AnyP)
        return P.str(Syms); // not a pos encoding (e.g. trace fallback)
    }
    std::string Out = "(";
    for (size_t I = 0; I != N; ++I) {
      if (I)
        Out += ", ";
      Out += P.Nodes[P.Roots[I]].K == PatKind::GroundP ? "g" : "any";
    }
    Out += ")";
    PatternRef R(P);
    if (posPatternHasTT(R)) {
      std::string Imp = implicationText(P, N, posPatternTT(R));
      if (!Imp.empty())
        Out += " [" + Imp + "]";
    }
    return Out;
  }

  void samplePatterns(std::vector<Pattern> &Out,
                      SymbolTable &) const override {
    auto Mk = [](std::vector<PatKind> Ks, bool HasTT, uint64_t TT) {
      Pattern P;
      for (PatKind K : Ks)
        pushRoot(P, K == PatKind::GroundP);
      if (HasTT)
        pushTT(P, TT);
      return P;
    };
    using K = PatKind;
    const K G = K::GroundP, A = K::AnyP;
    // Root-only tuples (call patterns).
    for (K X : {G, A})
      for (K Y : {G, A})
        for (K Z : {G, A})
          Out.push_back(Mk({X, Y, Z}, false, 0));
    // Success patterns with assorted truth tables (bit v = valuation v
    // achievable; bit i of v = argument i+1 ground).
    Out.push_back(Mk({G, A, A}, true, 0x82)); // append-like: x2 <-> x3
    Out.push_back(Mk({A, A, A}, true, 0xF7)); // x3 <- x1 & x2
    Out.push_back(Mk({A, A, A}, true, 0xFF)); // no dependency
    Out.push_back(Mk({G, G, G}, true, 0x80)); // all ground
    Out.push_back(Mk({A, G, A}, true, 0xCC)); // x2 unconditionally ground
  }
};

} // namespace

const Domain &awam::posDomain() {
  static const PosDomain D;
  return D;
}
