//===- analyzer/Analyzer.h - Analysis options and results -------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared vocabulary of the analysis drivers: configuration
/// (AnalyzerOptions), results (AnalysisResult, PerfCounters), entry-goal
/// specs (parseEntrySpec), and report formatting. The drivers themselves
/// live behind the AnalysisSession façade (analyzer/Session.h) — the naive
/// restart loop of the paper and the dependency-driven worklist scheduler
/// (analyzer/Scheduler.h).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_ANALYZER_H
#define AWAM_ANALYZER_ANALYZER_H

#include "analyzer/ExtensionTable.h"
#include "compiler/ModuleLink.h"
#include "compiler/ProgramCompiler.h"

#include <string>
#include <vector>

namespace awam {

class Domain;

/// Which fixpoint driver runs the abstract machine.
enum class DriverKind {
  /// The paper's loop (Section 2.2): restart the entry goal, re-exploring
  /// every reachable activation, until an iteration changes nothing.
  Naive,
  /// Semi-naive worklist (analyzer/Scheduler.h): re-run exactly the
  /// activations whose recorded table reads changed. Identical fixpoint,
  /// far fewer activation replays.
  Worklist,
};

/// Analyzer configuration.
struct AnalyzerOptions {
  int DepthLimit = kDefaultDepthLimit;
  /// Fixpoint driver. Naive is the paper-faithful ablation baseline.
  DriverKind Driver = DriverKind::Worklist;
  /// Lookup structure for the extension table. The hashed variant is the
  /// default; the paper's linear list remains available for the ablation
  /// benches (bench/ablation_et, bench/ablation_interning).
  ExtensionTable::Impl TableImpl = ExtensionTable::Impl::HashMap;
  /// Hash-cons patterns and memoize lub/leq by PatternId (the fast path).
  /// Turning this off reproduces the seed analyzer byte-for-byte — the
  /// "no interning" ablation baseline. The computed fixpoint table is
  /// identical either way.
  bool UseInterning = true;
  /// Driver budget: naive iterations, or worklist sweeps (the worklist
  /// analogue of an iteration — see Scheduler.h). Exceeding it yields a
  /// sound partial table with Converged = false.
  int MaxIterations = 1000;
  uint64_t MaxSteps = 200'000'000;
  /// Worklist driver only: total threads running activations (the calling
  /// thread included). 1 = the sequential WorklistScheduler; > 1 = the
  /// deterministic speculative ParallelScheduler, which computes the
  /// byte-identical table (see analyzer/ParallelScheduler.h). Values < 1
  /// behave like 1 (the pool clamps); the CLI rejects them up front.
  int NumThreads = 1;
  /// Parallel driver only: bounds of the adaptive speculation batch size.
  /// The batch doubles after a full batch of clean commits and halves on
  /// any discard, staying within [SpecBatchMin, SpecBatchMax]. The
  /// computed result is identical for any bounds; only speculation
  /// effectiveness (and hence wall-clock) varies.
  int SpecBatchMin = 2;
  int SpecBatchMax = 32;
  /// Warm-drain threads for reanalyze() and the persistent store's warm
  /// batch queries (parallel replay validation; see Incremental.h).
  /// 0 = follow NumThreads; 1 = sequential warm drains. Byte-identical
  /// output at every value.
  int WarmThreads = 0;
  /// Record a replayable trace of every activation run (worklist driver
  /// only), enabling AnalysisSession::reanalyze() afterwards. Off by
  /// default: recording copies calling/success patterns per table event,
  /// which perturbs the timing benches. The computed result is identical
  /// either way.
  bool Incremental = false;
  /// Keep a long-lived AnalysisStore behind the session (analyzer/Store.h):
  /// repeated analyze() calls share one interner + multi-root table +
  /// dependency graph, repeat queries are answered from the store's result
  /// cache, and new entries warm-start from the accumulated run journals —
  /// with each query's per-root projection byte-identical to a scratch
  /// analyze() of that entry at every thread count. reanalyze() then
  /// invalidates only the edit's reverse-dependency cone inside the store.
  /// Requires the worklist driver with interning on the compiled backend.
  bool Persistent = false;
  /// Abstract domain to analyze under (see analyzer/Domain.h): "modes"
  /// (the paper's mode/type/aliasing domain, default), "pos" (groundness
  /// dependencies), or "det" (determinism facts). Unknown names are
  /// rejected with the registered list; non-default domains require the
  /// interned fast path (UseInterning).
  std::string DomainName = "modes";
};

/// The paper-faithful seed configuration — naive restart loop over a
/// LinearList table without interning — kept as the ablation baseline.
inline AnalyzerOptions seedAnalyzerOptions() {
  AnalyzerOptions O;
  O.Driver = DriverKind::Naive;
  O.TableImpl = ExtensionTable::Impl::LinearList;
  O.UseInterning = false;
  return O;
}

/// Hot-path statistics of one analysis run (see DESIGN.md, "Performance
/// architecture"). The interner counters are zero when interning is
/// disabled; the scheduler counters are zero under the naive driver.
struct PerfCounters {
  uint64_t InternHits = 0;
  uint64_t InternMisses = 0;      ///< == distinct patterns interned
  uint64_t LubCacheHits = 0;
  uint64_t LubCacheMisses = 0;    ///< lubs actually computed
  uint64_t LeqCacheHits = 0;
  uint64_t LeqCacheMisses = 0;
  uint64_t ETProbes = 0;          ///< extension-table lookup probes
  uint64_t Instructions = 0;      ///< abstract WAM instructions executed
  uint64_t DistinctPatterns = 0;  ///< interner size at the fixpoint
  /// Activation replays: explorations of some entry's clause list, over
  /// the whole analysis. The driver-comparison metric (the worklist
  /// scheduler exists to shrink it).
  uint64_t ActivationRuns = 0;
  uint64_t SchedulerRuns = 0;     ///< activations launched from the queue
  uint64_t DepEdges = 0;          ///< dependency edges recorded
  // Parallel driver only (zero otherwise). Unlike everything above, these
  // depend on the thread count — they measure speculation effectiveness,
  // not the (thread-count-invariant) committed schedule.
  uint64_t SpecBatches = 0;   ///< speculation fan-outs
  uint64_t SpecRuns = 0;      ///< activation runs executed speculatively
  uint64_t SpecCommitted = 0; ///< speculations committed by replay
  uint64_t SpecDiscarded = 0; ///< speculations invalidated or orphaned
  uint64_t SpecBypassed = 0;  ///< pops that skipped speculation (batch of 1)
  uint64_t SpecPagesCopied = 0; ///< overlay pages privatized (COW clones)
  uint64_t SpecBaseTouches = 0; ///< base entries touched by speculations
};

/// Final analysis output: the extension table plus statistics.
struct AnalysisResult {
  struct Item {
    int32_t PredId;
    std::string PredLabel;
    Pattern Call;
    std::optional<Pattern> Success;
  };
  std::vector<Item> Items;
  /// Naive driver: restart iterations run. Worklist driver: sweeps run.
  int Iterations = 0;
  bool Converged = false;
  uint64_t Instructions = 0; ///< abstract WAM instructions executed (Exec)
  uint64_t TableProbes = 0;
  PerfCounters Counters;
  /// The domain the analysis ran under (a static registry singleton;
  /// always valid to keep). Null on results built outside the session
  /// drivers (trace mode, baseline backend) — formatting falls back to
  /// the default rendering then.
  const Domain *Dom = nullptr;
};

/// Builds an entry calling pattern from per-argument simple kinds.
Pattern makeEntryPattern(const std::vector<PatKind> &ArgKinds);

/// Parses an entry goal specification into (name, pattern). Accepted
/// forms (whitespace is insignificant around the name and arguments):
///  * "main"                     — arity 0;
///  * "qsort/3"                  — name/arity shorthand, all-any arguments;
///  * "qsort(glist, var, var)"   — one form per argument: any, nv,
///    g/ground, const, atom, int/integer, var, a Klist (e.g. glist,
///    anylist), or an integer literal.
/// Errors name the offending argument.
Result<std::pair<std::string, Pattern>>
parseEntrySpec(std::string_view Spec);

/// Renders the analysis result as a table of calling / success patterns.
std::string formatAnalysis(const AnalysisResult &R,
                           const SymbolTable &Syms);

/// Renders inferred modes: for each calling pattern, one line per argument
/// with its input mode (++ ground, + nonvar, - free, ? unknown) and
/// success type.
std::string formatModes(const AnalysisResult &R, const SymbolTable &Syms);

/// Reachability report derived from the extension table: predicates of
/// \p Program that the analysis never called from the entry goal (dead
/// code with respect to that entry), and calls that can never succeed.
std::string formatReachability(const AnalysisResult &R,
                               const CompiledProgram &Program);

// undefinedPredicateMessage (the near-miss diagnostic the analyzers and
// the module linker share) moved to compiler/ModuleLink.h, included above.

} // namespace awam

#endif // AWAM_ANALYZER_ANALYZER_H
