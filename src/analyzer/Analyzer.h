//===- analyzer/Analyzer.h - Fixpoint driver and results --------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level dataflow analyzer: drives the abstract machine to the
/// least fixpoint by iterating the entry goal until the extension table
/// stops changing (the paper's "iterative deepening" over iterations,
/// Section 2.2), and packages the result for reporting.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_ANALYZER_H
#define AWAM_ANALYZER_ANALYZER_H

#include "analyzer/AbstractMachine.h"

#include <string>
#include <vector>

namespace awam {

/// Analyzer configuration.
struct AnalyzerOptions {
  int DepthLimit = kDefaultDepthLimit;
  /// Lookup structure for the extension table. The hashed variant is the
  /// default; the paper's linear list remains available for the ablation
  /// benches (bench/ablation_et, bench/ablation_interning).
  ExtensionTable::Impl TableImpl = ExtensionTable::Impl::HashMap;
  /// Hash-cons patterns and memoize lub/leq by PatternId (the fast path).
  /// Turning this off reproduces the seed analyzer byte-for-byte — the
  /// "no interning" ablation baseline. The computed fixpoint (table and
  /// iteration count) is identical either way.
  bool UseInterning = true;
  int MaxIterations = 1000;
  uint64_t MaxSteps = 200'000'000;
};

/// Hot-path statistics of one analysis run (see DESIGN.md, "Performance
/// architecture"). All counters are zero when interning is disabled except
/// ETProbes and Instructions.
struct PerfCounters {
  uint64_t InternHits = 0;
  uint64_t InternMisses = 0;      ///< == distinct patterns interned
  uint64_t LubCacheHits = 0;
  uint64_t LubCacheMisses = 0;    ///< lubs actually computed
  uint64_t LeqCacheHits = 0;
  uint64_t LeqCacheMisses = 0;
  uint64_t ETProbes = 0;          ///< extension-table lookup probes
  uint64_t Instructions = 0;      ///< abstract WAM instructions executed
  uint64_t DistinctPatterns = 0;  ///< interner size at the fixpoint
};

/// Final analysis output: the extension table plus statistics.
struct AnalysisResult {
  struct Item {
    int32_t PredId;
    std::string PredLabel;
    Pattern Call;
    std::optional<Pattern> Success;
  };
  std::vector<Item> Items;
  int Iterations = 0;
  bool Converged = false;
  uint64_t Instructions = 0; ///< abstract WAM instructions executed (Exec)
  uint64_t TableProbes = 0;
  PerfCounters Counters;
};

/// Builds an entry calling pattern from per-argument simple kinds.
Pattern makeEntryPattern(const std::vector<PatKind> &ArgKinds);

/// Parses an entry goal specification like "qsort(glist, var, var)" or
/// "main" into (name, pattern). Recognized argument forms: any, nv, g,
/// ground, const, atom, int, var, Klist (e.g. glist, anylist), and
/// integers/atoms as themselves.
Result<std::pair<std::string, Pattern>>
parseEntrySpec(std::string_view Spec);

/// The compiled dataflow analyzer (the paper's system).
class Analyzer {
public:
  Analyzer(const CompiledProgram &Program, AnalyzerOptions Options = {});

  /// Analyzes the program from entry predicate \p Name / arity implied by
  /// \p Entry. Returns the fixpoint table.
  Result<AnalysisResult> analyze(std::string_view Name,
                                 const Pattern &Entry);

  /// Convenience: analyze from a spec string (see parseEntrySpec).
  Result<AnalysisResult> analyze(std::string_view EntrySpec);

private:
  const CompiledProgram &Program;
  AnalyzerOptions Options;
};

/// Renders the analysis result as a table of calling / success patterns.
std::string formatAnalysis(const AnalysisResult &R,
                           const SymbolTable &Syms);

/// Renders inferred modes: for each calling pattern, one line per argument
/// with its input mode (++ ground, + nonvar, - free, ? unknown) and
/// success type.
std::string formatModes(const AnalysisResult &R, const SymbolTable &Syms);

/// Reachability report derived from the extension table: predicates of
/// \p Program that the analysis never called from the entry goal (dead
/// code with respect to that entry), and calls that can never succeed.
std::string formatReachability(const AnalysisResult &R,
                               const CompiledProgram &Program);

} // namespace awam

#endif // AWAM_ANALYZER_ANALYZER_H
