//===- analyzer/Analyzer.h - Fixpoint driver and results --------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level dataflow analyzer: drives the abstract machine to the
/// least fixpoint by iterating the entry goal until the extension table
/// stops changing (the paper's "iterative deepening" over iterations,
/// Section 2.2), and packages the result for reporting.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_ANALYZER_H
#define AWAM_ANALYZER_ANALYZER_H

#include "analyzer/AbstractMachine.h"

#include <string>
#include <vector>

namespace awam {

/// Analyzer configuration.
struct AnalyzerOptions {
  int DepthLimit = kDefaultDepthLimit;
  ExtensionTable::Impl TableImpl = ExtensionTable::Impl::LinearList;
  int MaxIterations = 1000;
  uint64_t MaxSteps = 200'000'000;
};

/// Final analysis output: the extension table plus statistics.
struct AnalysisResult {
  struct Item {
    int32_t PredId;
    std::string PredLabel;
    Pattern Call;
    std::optional<Pattern> Success;
  };
  std::vector<Item> Items;
  int Iterations = 0;
  bool Converged = false;
  uint64_t Instructions = 0; ///< abstract WAM instructions executed (Exec)
  uint64_t TableProbes = 0;
};

/// Builds an entry calling pattern from per-argument simple kinds.
Pattern makeEntryPattern(const std::vector<PatKind> &ArgKinds);

/// Parses an entry goal specification like "qsort(glist, var, var)" or
/// "main" into (name, pattern). Recognized argument forms: any, nv, g,
/// ground, const, atom, int, var, Klist (e.g. glist, anylist), and
/// integers/atoms as themselves.
Result<std::pair<std::string, Pattern>>
parseEntrySpec(std::string_view Spec);

/// The compiled dataflow analyzer (the paper's system).
class Analyzer {
public:
  Analyzer(const CompiledProgram &Program, AnalyzerOptions Options = {});

  /// Analyzes the program from entry predicate \p Name / arity implied by
  /// \p Entry. Returns the fixpoint table.
  Result<AnalysisResult> analyze(std::string_view Name,
                                 const Pattern &Entry);

  /// Convenience: analyze from a spec string (see parseEntrySpec).
  Result<AnalysisResult> analyze(std::string_view EntrySpec);

private:
  const CompiledProgram &Program;
  AnalyzerOptions Options;
};

/// Renders the analysis result as a table of calling / success patterns.
std::string formatAnalysis(const AnalysisResult &R,
                           const SymbolTable &Syms);

/// Renders inferred modes: for each calling pattern, one line per argument
/// with its input mode (++ ground, + nonvar, - free, ? unknown) and
/// success type.
std::string formatModes(const AnalysisResult &R, const SymbolTable &Syms);

/// Reachability report derived from the extension table: predicates of
/// \p Program that the analysis never called from the entry goal (dead
/// code with respect to that entry), and calls that can never succeed.
std::string formatReachability(const AnalysisResult &R,
                               const CompiledProgram &Program);

} // namespace awam

#endif // AWAM_ANALYZER_ANALYZER_H
