//===- analyzer/Scheduler.h - Dependency-driven worklist driver -*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worklist fixpoint driver. Where the paper's naive loop (and our
/// DriverKind::Naive) restarts the entry goal and re-explores every
/// reachable activation each iteration, this scheduler owns an explicit
/// reverse-dependency graph over extension-table entries and re-runs only
/// the activations whose recorded table reads changed — semi-naive
/// evaluation in the style of generic Prolog abstract-interpretation
/// fixpoint engines (Le Charlier / Van Hentenryck).
///
/// The scheduler is the machine's DependencySink: every memo read is
/// recorded as an edge (Reader, RunSeq, VersionSeen) on the dependency's
/// reader list, and every summary change scans that list, re-enqueueing
/// readers whose recorded version went stale. Edges are invalidated
/// lazily: an edge whose RunSeq no longer matches its reader's current
/// run sequence belongs to a superseded run of the reader (which re-reads
/// and re-records everything when it re-runs) and is retired on sight.
///
/// Scheduling order deliberately mirrors the naive driver so both compute
/// not just the same least fixpoint of the summaries but the *identical
/// table* (the same set of calling patterns — chaotic iteration makes the
/// summaries order-insensitive, but which intermediate calling patterns
/// arise is order-sensitive):
///
///  * runs are grouped into sweeps, the worklist analogue of the naive
///    iterations, and drained in creation order (ETEntry::Idx) within a
///    sweep — the naive DFS's first-call order;
///  * a call to an entry with a pending run in the current sweep
///    re-explores it inline at the call site (shouldReexplore), exactly
///    where the naive DFS would, so nested update visibility matches;
///  * a reader invalidated "behind the cursor" (its sweep position is at
///    or before the change, or it already ran this sweep) is deferred to
///    the next sweep, matching the naive driver, which only re-reads on
///    the next restart of the entry goal.
///
/// Invariants:
///  * an activation runs at most once per sweep;
///  * every run of an activation bumps its RunSeq, retiring all edges its
///    previous run recorded;
///  * an edge's VersionSeen equals the dependency's SuccessVersion at
///    read time; a mismatch at change time means the reader consumed a
///    summary that has since grown and must re-run;
///  * an entry is enqueued for at most one sweep at a time (the earliest).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_SCHEDULER_H
#define AWAM_ANALYZER_SCHEDULER_H

#include "analyzer/AbstractMachine.h"

#include <cstdint>
#include <queue>
#include <vector>

namespace awam {

/// Semi-naive worklist driver over the extension table (DriverKind::
/// Worklist). One instance drives one analysis run to its fixpoint.
class WorklistScheduler final : public DependencySink {
public:
  struct Stats {
    uint64_t Sweeps = 0;       ///< sweeps executed (naive-iteration analogue)
    uint64_t Runs = 0;         ///< activations launched from the queue
    uint64_t Enqueues = 0;     ///< re-enqueue requests accepted
    uint64_t EdgesRecorded = 0;///< dependency edges recorded
    uint64_t EdgesRetired = 0; ///< edges dropped as superseded or consumed
  };

  enum class Status {
    Converged, ///< worklist drained: least fixpoint reached
    BudgetHit, ///< sweep budget exhausted; table is a sound partial result
    Error,     ///< the machine reported an error (message on the machine)
  };

  WorklistScheduler(ExtensionTable &Table, AbstractMachine &Machine)
      : Table(Table), Machine(Machine) {}

  /// Drains the worklist starting from \p Root's activation, running at
  /// most \p MaxSweeps sweeps. Installs itself as the machine's
  /// dependency sink for the duration.
  Status run(ETEntry &Root, int MaxSweeps);

  const Stats &stats() const { return S; }

  // --- DependencySink (called by the machine during activation runs) ---
  bool shouldReexplore(const ETEntry &E) override;
  void beginActivation(const ETEntry &E) override;
  void noteRead(const ETEntry &Reader, const ETEntry &Dep,
                uint32_t VersionSeen) override;
  void noteChanged(const ETEntry &E) override;

private:
  /// One recorded memo read of a dependency's summary.
  struct Edge {
    int32_t Reader;      ///< reading entry (ETEntry::Idx)
    uint32_t ReaderRun;  ///< reader's RunSeq when the edge was recorded
    uint32_t VersionSeen;///< dependency's SuccessVersion at read time
  };

  /// Grows the per-entry side tables to cover \p N entries.
  void ensure(size_t N);
  /// Schedules entry \p Idx to run in \p Sweep (keeps the earliest if
  /// already queued).
  void enqueue(int32_t Idx, uint64_t Sweep);

  ExtensionTable &Table;
  AbstractMachine &Machine;

  // Per-entry state, indexed by ETEntry::Idx.
  std::vector<std::vector<Edge>> Readers; ///< reverse-dependency edges
  std::vector<uint32_t> RunSeq;           ///< bumped per run (edge validity)
  std::vector<uint64_t> QueuedSweep;      ///< target sweep while InQueue
  std::vector<char> InQueue;
  std::vector<uint64_t> LastRunSweep;     ///< sweep of the last run (0 = never)

  /// Min-heap of (sweep, Idx) with lazy deletion: a popped node is live
  /// only if the entry is still queued for exactly that sweep.
  using QNode = std::pair<uint64_t, int32_t>;
  std::priority_queue<QNode, std::vector<QNode>, std::greater<QNode>> Heap;

  uint64_t CurSweep = 1;
  Stats S;
};

} // namespace awam

#endif // AWAM_ANALYZER_SCHEDULER_H
