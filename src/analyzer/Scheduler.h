//===- analyzer/Scheduler.h - Dependency-driven worklist driver -*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worklist fixpoint driver. Where the paper's naive loop (and our
/// DriverKind::Naive) restarts the entry goal and re-explores every
/// reachable activation each iteration, this scheduler owns an explicit
/// reverse-dependency graph over extension-table entries and re-runs only
/// the activations whose recorded table reads changed — semi-naive
/// evaluation in the style of generic Prolog abstract-interpretation
/// fixpoint engines (Le Charlier / Van Hentenryck).
///
/// The scheduler is the machine's DependencySink: every memo read is
/// recorded as an edge (Reader, RunSeq, VersionSeen) on the dependency's
/// reader list, and every summary change scans that list, re-enqueueing
/// readers whose recorded version went stale. Edges are invalidated
/// lazily: an edge whose RunSeq no longer matches its reader's current
/// run sequence belongs to a superseded run of the reader (which re-reads
/// and re-records everything when it re-runs) and is retired on sight.
///
/// Scheduling order deliberately mirrors the naive driver so both compute
/// not just the same least fixpoint of the summaries but the *identical
/// table* (the same set of calling patterns — chaotic iteration makes the
/// summaries order-insensitive, but which intermediate calling patterns
/// arise is order-sensitive):
///
///  * runs are grouped into sweeps, the worklist analogue of the naive
///    iterations, and drained in creation order (ETEntry::Idx) within a
///    sweep — the naive DFS's first-call order;
///  * a call to an entry with a pending run in the current sweep
///    re-explores it inline at the call site (shouldReexplore), exactly
///    where the naive DFS would, so nested update visibility matches;
///  * a reader invalidated "behind the cursor" (its sweep position is at
///    or before the change, or it already ran this sweep) is deferred to
///    the next sweep, matching the naive driver, which only re-reads on
///    the next restart of the entry goal.
///
/// Invariants:
///  * an activation runs at most once per sweep;
///  * every run of an activation bumps its RunSeq, retiring all edges its
///    previous run recorded;
///  * an edge's VersionSeen equals the dependency's SuccessVersion at
///    read time; a mismatch at change time means the reader consumed a
///    summary that has since grown and must re-run;
///  * an entry is enqueued for at most one sweep at a time (the earliest).
///
/// The queue/edge state machine lives in SchedulerCore, a plain value
/// type keyed on ETEntry::Idx. WorklistScheduler drives one core
/// sequentially; the parallel driver (analyzer/ParallelScheduler.h)
/// clones cores so speculative activation runs can emulate — and later
/// validate against — the exact transitions the sequential drain would
/// perform. Every behavioural decision (inline re-exploration, dirty
/// targeting, edge retirement) is a core method, so both drivers share
/// one definition of the schedule.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_SCHEDULER_H
#define AWAM_ANALYZER_SCHEDULER_H

#include "analyzer/AbstractMachine.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace awam {

/// The worklist state machine: per-entry scheduling state, the reverse
/// dependency edges, and the ready heap, with one method per transition.
/// Copyable by design — a copy is an independent simulation of the same
/// schedule, which is what speculative execution validates against.
class SchedulerCore {
public:
  struct Stats {
    uint64_t Sweeps = 0;       ///< sweeps executed (naive-iteration analogue)
    uint64_t Runs = 0;         ///< activations launched from the queue
    uint64_t Enqueues = 0;     ///< re-enqueue requests accepted
    uint64_t EdgesRecorded = 0;///< dependency edges recorded
    uint64_t EdgesRetired = 0; ///< edges dropped as superseded or consumed
  };

  /// A ready-heap node: (sweep, entry Idx).
  using QNode = std::pair<uint64_t, int32_t>;

  /// Grows the per-entry side tables to cover \p N entries.
  void ensure(size_t N);

  /// Schedules entry \p Idx to run in \p Sweep (keeps the earliest if
  /// already queued).
  void enqueue(int32_t Idx, uint64_t Sweep);

  /// Pops the next live ready node in (sweep, Idx) order, skipping nodes
  /// retired by lazy deletion (consumed inline or re-queued). The entry
  /// stays marked queued — the run's beginActivation consumes it.
  std::optional<QNode> popLive();

  /// True when a call to explored entry \p Idx must re-explore it inline:
  /// a run is pending for the current sweep, which is where the naive
  /// driver's DFS would re-explore the entry this iteration. A run queued
  /// for a later sweep stays queued — the naive driver would answer this
  /// call from the memo too.
  bool shouldReexplore(int32_t Idx) const {
    return static_cast<size_t>(Idx) < InQueue.size() && InQueue[Idx] &&
           QueuedSweep[Idx] <= CurSweep;
  }

  /// True while entry \p Idx has a pending queued run (for any sweep).
  bool isQueued(int32_t Idx) const {
    return static_cast<size_t>(Idx) < InQueue.size() && InQueue[Idx];
  }

  /// Entry \p Idx's clauses are about to be (re)explored: consumes any
  /// pending queued run and supersedes the previous run's recorded reads.
  void beginActivation(int32_t Idx);

  /// Entry \p Reader consumed \p Dep's summary, observing \p VersionSeen.
  void noteRead(int32_t Reader, int32_t Dep, uint32_t VersionSeen);

  /// Entry \p Idx's summary changed; \p SuccessVersion is its new (already
  /// bumped) version. Re-enqueues readers whose recorded version went
  /// stale, targeting the current sweep only for readers the naive DFS
  /// would still reach after the update.
  void noteChanged(int32_t Idx, uint32_t SuccessVersion);

  /// Transitive reverse closure over the recorded reader edges: marks
  /// every entry that (transitively) read a seed entry's summary, seeds
  /// included. Conservative — edges of superseded runs still count, since
  /// such a reader re-reads everything when it next runs anyway. This is
  /// the incremental driver's invalidation cone (analyzer/Incremental.h):
  /// the entries whose recorded inputs could reach an edited predicate.
  std::vector<char> reverseClosure(const std::vector<int32_t> &Seeds) const;

  /// True if entry \p Reader has a recorded read of \p Dep's summary
  /// (edges of superseded runs included — a reader re-reads everything
  /// when it next runs, so an old edge still predicts the next one). The
  /// parallel driver uses this to keep doomed speculations out of a
  /// batch: when an earlier batch member's commit grows \p Dep, a
  /// speculation of one of its readers cannot validate.
  bool hasReaderEdge(int32_t Dep, int32_t Reader) const;

  /// All recorded reader edges, as (Dep, Reader) pairs in no particular
  /// order. Superseded runs' edges are included, matching reverseClosure's
  /// conservative semantics — this is what the persistent AnalysisStore
  /// merges into its long-lived dependency graph after each query drain.
  std::vector<std::pair<int32_t, int32_t>> edgePairs() const;

  /// Collects the live ready set of \p Sweep in ascending Idx order —
  /// the prefix of the drain order the sequential driver would execute
  /// next, which is exactly what the parallel driver speculates on.
  /// Duplicate heap nodes are deduplicated; at most \p Max are returned.
  std::vector<int32_t> collectReady(uint64_t Sweep, size_t Max) const;

  uint64_t currentSweep() const { return CurSweep; }
  void setCurrentSweep(uint64_t S) { CurSweep = S; }

  const Stats &stats() const { return S; }
  Stats &statsMut() { return S; }

private:
  /// One recorded memo read of a dependency's summary.
  struct Edge {
    int32_t Reader;      ///< reading entry (ETEntry::Idx)
    uint32_t ReaderRun;  ///< reader's RunSeq when the edge was recorded
    uint32_t VersionSeen;///< dependency's SuccessVersion at read time
  };

  // Per-entry state, indexed by ETEntry::Idx.
  std::vector<std::vector<Edge>> Readers; ///< reverse-dependency edges
  std::vector<uint32_t> RunSeq;           ///< bumped per run (edge validity)
  std::vector<uint64_t> QueuedSweep;      ///< target sweep while InQueue
  std::vector<char> InQueue;
  std::vector<uint64_t> LastRunSweep;     ///< sweep of the last run (0 = never)

  /// Min-heap on (sweep, Idx) with lazy deletion, kept as a raw vector
  /// (std::push_heap/pop_heap with std::greater) so collectReady can scan
  /// the pending nodes without draining them.
  std::vector<QNode> Heap;

  uint64_t CurSweep = 1;
  Stats S;

public:
  /// A sparse copy-on-write view of a core: behaves like a private copy
  /// for the transitions a replay simulation performs, at cost
  /// proportional to the entries the simulation touches instead of the
  /// size of the base core. A true copy is O(edges), and the incremental
  /// drain simulates once per replayed trace while the base accumulates
  /// every committed trace's edges — copying made warm replay quadratic
  /// in program size. The divergences from a true copy are limited to
  /// bookkeeping a simulation cannot observe: consumed base edges are
  /// skipped by the same liveness checks that would have retired them
  /// (re-processing one only re-issues an enqueue that keep-earliest
  /// already absorbs), duplicate-edge collapse may differ (multiplicity
  /// never changes an answer), there is no heap (simulations never pop),
  /// and stats are not kept (both cloning call sites discarded them).
  /// shouldReexplore — the only output a simulation reads — matches a
  /// true copy exactly.
  class Overlay {
  public:
    explicit Overlay(const SchedulerCore &Base)
        : Base(Base), CurSweep(Base.CurSweep) {}

    void setCurrentSweep(uint64_t Sw) { CurSweep = Sw; }

    bool shouldReexplore(int32_t Idx) const {
      auto It = Over.find(Idx);
      if (It != Over.end())
        return It->second.InQueue && It->second.QueuedSweep <= CurSweep;
      return static_cast<size_t>(Idx) < Base.InQueue.size() &&
             Base.InQueue[Idx] && Base.QueuedSweep[Idx] <= CurSweep;
    }

    void beginActivation(int32_t Idx);
    void noteRead(int32_t Reader, int32_t Dep, uint32_t VersionSeen);
    void noteChanged(int32_t Idx, uint32_t SuccessVersion);

  private:
    /// The queue/run state of one touched entry, materialized from the
    /// base on first write.
    struct EntryState {
      bool InQueue;
      uint64_t QueuedSweep;
      uint64_t LastRunSweep;
      uint32_t RunSeq;
    };

    EntryState &touch(int32_t Idx);
    uint32_t runSeq(int32_t Idx) const;
    uint64_t lastRunSweep(int32_t Idx) const;
    void enqueue(int32_t Idx, uint64_t Sweep);

    const SchedulerCore &Base;
    uint64_t CurSweep;
    std::unordered_map<int32_t, EntryState> Over;
    /// Edges recorded by this simulation, keyed by dependency. Base edge
    /// lists are never copied or written; noteChanged scans base + added.
    std::unordered_map<int32_t, std::vector<Edge>> AddedEdges;
  };
};

/// Semi-naive worklist driver over the extension table (DriverKind::
/// Worklist). One instance drives one analysis run to its fixpoint.
class WorklistScheduler final : public DependencySink {
public:
  using Stats = SchedulerCore::Stats;

  enum class Status {
    Converged, ///< worklist drained: least fixpoint reached
    BudgetHit, ///< sweep budget exhausted; table is a sound partial result
    Error,     ///< the machine reported an error (message on the machine)
  };

  WorklistScheduler(ExtensionTable &Table, AbstractMachine &Machine)
      : Table(Table), Machine(Machine) {}

  /// Drains the worklist starting from \p Root's activation, running at
  /// most \p MaxSweeps sweeps. Installs itself as the machine's
  /// dependency sink for the duration.
  Status run(ETEntry &Root, int MaxSweeps);

  const Stats &stats() const { return Core.stats(); }

  /// The core after the drain — the dependency-edge set an incremental
  /// session snapshots for its invalidation cone.
  const SchedulerCore &core() const { return Core; }

  // --- DependencySink (called by the machine during activation runs) ---
  bool shouldReexplore(const ETEntry &E) override {
    return Core.shouldReexplore(E.Idx);
  }
  void beginActivation(const ETEntry &E) override {
    Core.beginActivation(E.Idx);
  }
  void noteRead(const ETEntry &Reader, const ETEntry &Dep,
                uint32_t VersionSeen) override {
    Core.noteRead(Reader.Idx, Dep.Idx, VersionSeen);
  }
  void noteChanged(const ETEntry &E) override {
    Core.noteChanged(E.Idx, E.SuccessVersion);
  }

private:
  ExtensionTable &Table;
  AbstractMachine &Machine;
  SchedulerCore Core;
};

} // namespace awam

#endif // AWAM_ANALYZER_SCHEDULER_H
