//===- analyzer/DetFacts.cpp - Determinism fact computation ---------------===//
//
// The determinism computation formerly private to DetDomain.cpp: clause
// first-argument classes recovered from head code, pairwise mutual
// exclusion under the calling pattern, and a monotone body fixpoint. The
// det domain renders these facts; the specializer adapter consumes them.
// Everything over-approximates — an unclassifiable head argument is
// "matches anything", an overflowed scan keeps conservative defaults, and
// builtins count as can-fail.
//
//===----------------------------------------------------------------------===//

#include "analyzer/DetFacts.h"

#include "compiler/CodeModule.h"
#include "compiler/ProgramCompiler.h"

#include <algorithm>

using namespace awam;

namespace {

/// The first-argument indexing class of one clause head.
struct ArgClass {
  enum Kind : uint8_t {
    Var,       ///< head takes anything in argument 0
    ConstAtom, ///< a specific atom (Sym)
    ConstInt,  ///< a specific integer (Int)
    List,      ///< a cons cell
    Struct,    ///< a specific functor (Sym/Arity)
  };
  Kind K = Var;
  Symbol Sym = 0;
  int64_t Int = 0;
  int32_t Arity = 0;
};

/// Static facts of one clause: its first-argument class, whether its head
/// unification can fail, and what its body calls.
struct ClauseFacts {
  ArgClass Class;
  bool HeadCanFail = false;
  bool HasBuiltin = false;
  bool HasCut = false;
  std::vector<int32_t> Callees;
};

/// True if no concrete first argument can match both classes (the mutual-
/// exclusion test). Var matches everything; two List heads both match any
/// cons; otherwise classes are distinct across categories and distinct
/// within a category when their payloads differ.
bool distinctClasses(const ArgClass &A, const ArgClass &B) {
  if (A.K == ArgClass::Var || B.K == ArgClass::Var)
    return false;
  if (A.K != B.K)
    return true;
  switch (A.K) {
  case ArgClass::ConstAtom:
    return A.Sym != B.Sym;
  case ArgClass::ConstInt:
    return A.Int != B.Int;
  case ArgClass::Struct:
    return A.Sym != B.Sym || A.Arity != B.Arity;
  case ArgClass::List:
  case ArgClass::Var:
    return false;
  }
  return false;
}

/// Scans one clause's code: the get instruction on argument register 0
/// decides the class, head-section failure opcodes decide HeadCanFail, and
/// Call/Execute/Builtin record the body. The head section ends at the
/// first body-construction or control instruction.
ClauseFacts clauseFacts(const CodeModule &M, const ClauseInfo &C,
                        int32_t Arity) {
  ClauseFacts F;
  bool InHead = true;
  bool ClassDone = Arity == 0;
  for (int32_t A = C.Entry; A != C.Entry + C.NumInstr; ++A) {
    const Instruction &I = M.at(A);
    switch (I.Op) {
    case Opcode::GetConst:
      if (InHead) {
        F.HeadCanFail = true;
        if (!ClassDone && I.B == 0) {
          const ConstOperand &CO = M.constAt(I.A);
          if (CO.K == ConstOperand::AtomK) {
            F.Class.K = ArgClass::ConstAtom;
            F.Class.Sym = CO.Name;
          } else {
            F.Class.K = ArgClass::ConstInt;
            F.Class.Int = CO.Int;
          }
          ClassDone = true;
        }
      }
      break;
    case Opcode::GetList: // NB: the argument register is field A
      if (InHead) {
        F.HeadCanFail = true;
        if (!ClassDone && I.A == 0) {
          F.Class.K = ArgClass::List;
          ClassDone = true;
        }
      }
      break;
    case Opcode::GetStructure:
      if (InHead) {
        F.HeadCanFail = true;
        if (!ClassDone && I.B == 0) {
          const FunctorArity &FA = M.functorAt(I.A);
          F.Class.K = ArgClass::Struct;
          F.Class.Sym = FA.Name;
          F.Class.Arity = FA.Arity;
          ClassDone = true;
        }
      }
      break;
    case Opcode::GetValueX:
    case Opcode::GetValueY:
      if (InHead) {
        F.HeadCanFail = true;
        if (!ClassDone && I.B == 0)
          ClassDone = true; // an already-seen variable: class stays Var
      }
      break;
    case Opcode::GetVariableX:
    case Opcode::GetVariableY:
      if (InHead && !ClassDone && I.B == 0)
        ClassDone = true; // fresh variable: class stays Var
      break;
    case Opcode::UnifyConst:
    case Opcode::UnifyValueX:
    case Opcode::UnifyValueY:
      if (InHead)
        F.HeadCanFail = true;
      break;
    case Opcode::PutVariableX:
    case Opcode::PutVariableY:
    case Opcode::PutValueX:
    case Opcode::PutValueY:
    case Opcode::PutConst:
    case Opcode::PutList:
    case Opcode::PutStructure:
      InHead = false;
      break;
    case Opcode::Call:
    case Opcode::Execute:
      InHead = false;
      F.Callees.push_back(I.A);
      break;
    case Opcode::Builtin:
      InHead = false;
      F.HasBuiltin = true;
      break;
    case Opcode::NeckCut:
    case Opcode::CutY:
      F.HasCut = true;
      break;
    default:
      break; // allocate / unify_variable / cut / proceed: neutral
    }
  }
  return F;
}

/// True if a first argument abstracted as \p Root can reach a clause of
/// class \p C at runtime.
bool classMatches(const PatNode &Root, const ArgClass &C,
                  const SymbolTable &Syms) {
  if (C.K == ArgClass::Var)
    return true;
  switch (Root.K) {
  case PatKind::VarP:
  case PatKind::AnyP:
  case PatKind::GroundP:
  case PatKind::NVP:
    return true; // shape unknown: every head is reachable
  case PatKind::ConP:
    return C.K == ArgClass::ConstAtom && C.Sym == Root.Sym;
  case PatKind::IntP:
    return C.K == ArgClass::ConstInt && C.Int == Root.Num;
  case PatKind::AtomTP:
    return C.K == ArgClass::ConstAtom;
  case PatKind::IntTP:
    return C.K == ArgClass::ConstInt;
  case PatKind::ConstP:
    return C.K == ArgClass::ConstAtom || C.K == ArgClass::ConstInt;
  case PatKind::ListP: // an alpha-list is [] or a cons
    return C.K == ArgClass::List ||
           (C.K == ArgClass::ConstAtom && Syms.name(C.Sym) == "[]");
  case PatKind::ConsP:
    return C.K == ArgClass::List;
  case PatKind::StrP:
    return C.K == ArgClass::Struct && C.Sym == Root.Sym &&
           C.Arity == Root.ChildCount;
  }
  return true;
}

} // namespace

const char *awam::detItemClassName(DetItemClass C) {
  static const char *const Names[] = {"det", "semidet", "nondet", "fails"};
  return Names[static_cast<size_t>(C)];
}

std::vector<DetItemFacts>
awam::computeDetFacts(const AnalysisResult &R,
                      const CompiledProgram &Program) {
  if (!Program.Module || R.Items.empty())
    return {};
  const CodeModule &M = *Program.Module;
  const SymbolTable &Syms = M.symbols();

  // Clause facts, computed once per predicate that the table mentions.
  std::vector<std::vector<ClauseFacts>> Facts(
      static_cast<size_t>(M.numPredicates()));
  std::vector<char> FactsDone(static_cast<size_t>(M.numPredicates()), 0);
  auto factsOf = [&](int32_t Pid) -> const std::vector<ClauseFacts> & {
    auto P = static_cast<size_t>(Pid);
    if (!FactsDone[P]) {
      const PredicateInfo &PI = M.predicate(Pid);
      Facts[P].reserve(PI.Clauses.size());
      for (const ClauseInfo &C : PI.Clauses)
        Facts[P].push_back(clauseFacts(M, C, PI.Arity));
      FactsDone[P] = 1;
    }
    return Facts[P];
  };

  struct ItemInfo {
    bool Mutex = false;
    bool SingleNoFail = false; ///< one matching clause, head cannot fail
    bool Builtin = false;
    std::vector<int32_t> Callees;
    int Class = static_cast<int>(DetItemClass::Det);
  };
  size_t NI = R.Items.size();
  std::vector<ItemInfo> Info(NI);
  std::vector<DetItemFacts> Out(NI);

  constexpr int Det = static_cast<int>(DetItemClass::Det);
  constexpr int Semidet = static_cast<int>(DetItemClass::Semidet);
  constexpr int Nondet = static_cast<int>(DetItemClass::Nondet);
  constexpr int Fails = static_cast<int>(DetItemClass::Fails);

  for (size_t I = 0; I != NI; ++I) {
    const AnalysisResult::Item &It = R.Items[I];
    const std::vector<ClauseFacts> &CF = factsOf(It.PredId);
    ItemInfo &N = Info[I];
    N.Class = It.Success ? Det : Fails;

    const PatNode *Root = It.Call.Roots.empty()
                              ? nullptr
                              : &It.Call.Nodes[It.Call.Roots[0]];
    std::vector<size_t> &Matching = Out[I].Matching;
    for (size_t C = 0; C != CF.size(); ++C)
      if (!Root || classMatches(*Root, CF[C].Class, Syms))
        Matching.push_back(C);
    // An item that succeeded must have entered some clause; if the class
    // test disagrees (it is approximate), fall back to all clauses.
    if (Matching.empty() && It.Success)
      for (size_t C = 0; C != CF.size(); ++C)
        Matching.push_back(C);

    bool Instantiated =
        Root && Root->K != PatKind::VarP && Root->K != PatKind::AnyP;
    // Two matching clauses are exclusive when no first argument reaches
    // both heads (distinct classes — only meaningful on an instantiated
    // argument, an unbound one unifies with any head), or when the earlier
    // clause cuts: once its cut runs, the later clause is pruned, and if
    // its guard fails it contributes no solution — either way at most one
    // of the pair yields answers.
    N.Mutex = true;
    for (size_t A = 0; A != Matching.size() && N.Mutex; ++A)
      for (size_t B = A + 1; B != Matching.size(); ++B) {
        bool Exclusive =
            CF[Matching[A]].HasCut ||
            (Instantiated && distinctClasses(CF[Matching[A]].Class,
                                             CF[Matching[B]].Class));
        if (!Exclusive) {
          N.Mutex = false;
          break;
        }
      }
    N.SingleNoFail = Matching.size() == 1 && !CF[Matching[0]].HeadCanFail;
    for (size_t C : Matching) {
      N.Builtin = N.Builtin || CF[C].HasBuiltin;
      for (int32_t Callee : CF[C].Callees)
        if (std::find(N.Callees.begin(), N.Callees.end(), Callee) ==
            N.Callees.end())
          N.Callees.push_back(Callee);
    }
  }

  // A body call's contribution: the worst class among the callee's table
  // items (the calling pattern at the body site is not tracked here). A
  // callee that can fail — or has no item at all — contributes semidet.
  auto contribution = [&](int32_t Pid) {
    int Best = -1;
    for (size_t J = 0; J != NI; ++J)
      if (R.Items[J].PredId == Pid)
        Best = std::max(Best, R.Items[J].Success ? Info[J].Class : Semidet);
    return Best < 0 ? Semidet : Best;
  };

  // Monotone fixpoint: classes only increase, so this terminates.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I != NI; ++I) {
      if (!R.Items[I].Success)
        continue; // stays Fails
      ItemInfo &N = Info[I];
      int Body = N.Builtin ? Semidet : Det;
      for (int32_t Pid : N.Callees)
        Body = std::max(Body, contribution(Pid));
      int C;
      if (!N.Mutex)
        C = Nondet;
      else if (N.SingleNoFail && Body == Det)
        C = Det;
      else
        C = std::max(Semidet, std::min(Body, Nondet));
      if (C > N.Class) {
        N.Class = C;
        Changed = true;
      }
    }
  }
  (void)Fails;

  for (size_t I = 0; I != NI; ++I)
    Out[I].Class = static_cast<DetItemClass>(Info[I].Class);
  return Out;
}
