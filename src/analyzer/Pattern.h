//===- analyzer/Pattern.h - Calling and success patterns --------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical abstract descriptions of argument-register tuples: the
/// "calling patterns" and "success patterns" of the paper's extension-table
/// control scheme (Sections 2.2 and 5).
///
/// A Pattern is a term DAG cut at the paper's term-depth limit (k = 4 by
/// default). Node ids are assigned in first-visit order from the roots, so
/// structural equality of two Patterns is equality up to renaming, and
/// shared nodes represent aliasing (a variable or abstract term reachable
/// from two argument positions).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_PATTERN_H
#define AWAM_ANALYZER_PATTERN_H

#include "wam/Store.h"

#include <cstdint>
#include <string>
#include <vector>

namespace awam {

/// Node kinds of pattern DAGs.
enum class PatKind : uint8_t {
  VarP,    ///< a free variable
  AnyP,    ///< any
  NVP,     ///< nv
  GroundP, ///< g
  ConstP,  ///< const
  AtomTP,  ///< atom (the set)
  IntTP,   ///< integer (the set)
  ListP,   ///< alpha-list; one child: the element type
  ConP,    ///< a specific atom; Sym is its symbol
  IntP,    ///< a specific integer; Num is its value
  ConsP,   ///< a list cell; two children
  StrP,    ///< a structure; Sym/children
};

/// One pattern node. Child ids live in the owning Pattern's flat
/// ChildStore (a [ChildBegin, ChildBegin+ChildCount) slice), so a node is
/// a small POD and walking a pattern touches two contiguous arrays instead
/// of one heap vector per node.
struct PatNode {
  PatKind K = PatKind::AnyP;
  Symbol Sym = 0;
  int64_t Num = 0;
  int32_t ChildBegin = 0;
  int32_t ChildCount = 0;
};

struct PatternRef;

/// A canonical pattern: nodes in first-visit order plus one root per
/// argument position.
struct Pattern {
  std::vector<PatNode> Nodes;
  /// Flat storage for all nodes' child-id slices.
  std::vector<int32_t> ChildStore;
  std::vector<int32_t> Roots;

  Pattern() = default;
  /// Materializes a copy of a (possibly arena-backed) pattern view.
  explicit Pattern(const PatternRef &R);
  Pattern &operator=(const PatternRef &R);

  /// Id of \p N's \p I-th child.
  int32_t child(const PatNode &N, int32_t I) const {
    return ChildStore[N.ChildBegin + I];
  }
  /// Pointer to \p N's child-id slice (ChildCount entries).
  const int32_t *childrenOf(const PatNode &N) const {
    return ChildStore.data() + N.ChildBegin;
  }

  /// Structural equality. Child slices are compared by value, not by
  /// ChildBegin, so patterns built with different ChildStore layouts (hand
  /// construction vs canonicalization) still compare equal.
  friend bool operator==(const Pattern &A, const Pattern &B);

  /// Stable hash for table lookup.
  size_t hash() const;

  /// Renders like the paper: "(atom, glist)" with aliased nodes shown as
  /// "_S<n>" markers on repeated visits.
  std::string str(const SymbolTable &Syms) const;
};

/// Heap bytes held by \p P's three vectors (capacity, not size — what the
/// allocator actually carved out). The memory-accounting unit of the
/// store/server eviction machinery; excludes sizeof(Pattern) itself, which
/// the owning aggregate counts.
inline size_t patternHeapBytes(const Pattern &P) {
  return P.Nodes.capacity() * sizeof(PatNode) +
         P.ChildStore.capacity() * sizeof(int32_t) +
         P.Roots.capacity() * sizeof(int32_t);
}

/// A non-owning view of a pattern: the interner hands these out for its
/// arena-backed storage, and the structural algorithms (equality, hash,
/// instantiate) run on views so Pattern and arena storage share one
/// implementation. A Pattern converts implicitly. Views are transient —
/// interning can reallocate the arena, so never hold one across an
/// intern/lub call; materialize with Pattern(ref) instead.
struct PatternRef {
  const PatNode *Nodes = nullptr;
  size_t NumNodes = 0;
  const int32_t *ChildStore = nullptr;
  const int32_t *Roots = nullptr;
  size_t NumRoots = 0;

  PatternRef() = default;
  PatternRef(const Pattern &P)
      : Nodes(P.Nodes.data()), NumNodes(P.Nodes.size()),
        ChildStore(P.ChildStore.data()), Roots(P.Roots.data()),
        NumRoots(P.Roots.size()) {}
  PatternRef(const PatNode *Nodes, size_t NumNodes,
             const int32_t *ChildStore, const int32_t *Roots,
             size_t NumRoots)
      : Nodes(Nodes), NumNodes(NumNodes), ChildStore(ChildStore),
        Roots(Roots), NumRoots(NumRoots) {}

  /// Id of \p N's \p I-th child.
  int32_t child(const PatNode &N, int32_t I) const {
    return ChildStore[N.ChildBegin + I];
  }

  /// Structural equality with the same layout-independent semantics as
  /// Pattern's operator==.
  friend bool operator==(const PatternRef &A, const PatternRef &B) {
    if (A.NumNodes != B.NumNodes || A.NumRoots != B.NumRoots)
      return false;
    for (size_t I = 0; I != A.NumRoots; ++I)
      if (A.Roots[I] != B.Roots[I])
        return false;
    for (size_t I = 0; I != A.NumNodes; ++I) {
      const PatNode &NA = A.Nodes[I], &NB = B.Nodes[I];
      if (NA.K != NB.K || NA.Sym != NB.Sym || NA.Num != NB.Num ||
          NA.ChildCount != NB.ChildCount)
        return false;
      for (int32_t C = 0; C != NA.ChildCount; ++C)
        if (A.ChildStore[NA.ChildBegin + C] !=
            B.ChildStore[NB.ChildBegin + C])
          return false;
    }
    return true;
  }

  /// Same hash as Pattern::hash on an equal pattern.
  size_t hash() const;
};

inline bool operator==(const Pattern &A, const Pattern &B) {
  return PatternRef(A) == PatternRef(B);
}

/// Number of ChildStore slots a view spans (its slices start at offset 0).
inline size_t childSlotsOf(const PatternRef &R) {
  size_t N = 0;
  for (size_t I = 0; I != R.NumNodes; ++I) {
    size_t End = static_cast<size_t>(R.Nodes[I].ChildBegin) +
                 static_cast<size_t>(R.Nodes[I].ChildCount);
    if (End > N)
      N = End;
  }
  return N;
}

inline Pattern::Pattern(const PatternRef &R)
    : Nodes(R.Nodes, R.Nodes + R.NumNodes),
      ChildStore(R.ChildStore, R.ChildStore + childSlotsOf(R)),
      Roots(R.Roots, R.Roots + R.NumRoots) {}

inline Pattern &Pattern::operator=(const PatternRef &R) {
  Nodes.assign(R.Nodes, R.Nodes + R.NumNodes);
  ChildStore.assign(R.ChildStore, R.ChildStore + childSlotsOf(R));
  Roots.assign(R.Roots, R.Roots + R.NumRoots);
  return *this;
}

/// Default term-depth restriction (the paper and Taylor's analyzer use 4).
inline constexpr int kDefaultDepthLimit = 4;

/// Abstracts the cells \p Args (argument registers) into a canonical
/// Pattern, applying the term-depth cut at \p DepthLimit.
///
/// With \p WidenConstants set, specific constants are widened to their
/// types (a -> atom, 3 -> integer; '[]' is kept, it carries list
/// information). The paper applies this widening when abstracting a call
/// — its example call pattern for p(a, ...) is p(atom, ...) — which keeps
/// the number of calling patterns per predicate small; success patterns
/// keep specific constants.
Pattern canonicalize(const Store &St, const std::vector<Cell> &Args,
                     int DepthLimit = kDefaultDepthLimit,
                     bool WidenConstants = false);

/// Allocation-poolable variant of canonicalize: writes the result into
/// \p Out, reusing its node slots (and ChildStore capacity) from a
/// previous call. The fixpoint loop canonicalizes on every call and every
/// clause success, so reusing one scratch Pattern removes the dominant
/// allocation on that path.
void canonicalizeInto(const Store &St, const std::vector<Cell> &Args,
                      Pattern &Out, int DepthLimit = kDefaultDepthLimit,
                      bool WidenConstants = false);

/// Reusable canonicalization scratch: owns the visitor's working vectors
/// (sharing table, cycle stack, child staging), so a loop holding one
/// context canonicalizes with zero steady-state allocation. The free
/// canonicalize/canonicalizeInto functions build a fresh context per call.
class CanonicalizeContext {
public:
  void canonicalizeInto(const Store &St, const std::vector<Cell> &Args,
                        Pattern &Out, int DepthLimit = kDefaultDepthLimit,
                        bool WidenConstants = false);

private:
  std::vector<std::pair<int64_t, int32_t>> Seen;
  std::vector<int64_t> InProgress;
  std::vector<int32_t> ChildTmp;
};

/// Builds fresh cells denoting \p P in \p St; returns one root address per
/// argument position. Shared nodes become shared cells (aliasing).
std::vector<int64_t> instantiate(Store &St, const PatternRef &P);

/// Pooled variant of instantiate: \p CellOf is scratch (resized and reused
/// across calls), \p Roots receives one root address per argument position.
void instantiate(Store &St, const PatternRef &P,
                 std::vector<int64_t> &CellOf, std::vector<int64_t> &Roots);

/// Least upper bound of two patterns with the same arity, computed by
/// instantiating both into a scratch store, lubbing cell-wise and
/// re-canonicalizing.
Pattern lubPatterns(const Pattern &A, const Pattern &B,
                    int DepthLimit = kDefaultDepthLimit);

/// Pooled variant: \p Scratch is reset and reused as the working store, so
/// repeated lubs do not construct (and re-grow) a fresh heap per call.
Pattern lubPatterns(const Pattern &A, const Pattern &B, int DepthLimit,
                    Store &Scratch);

/// Partial order: A is at or below B (gamma(A) subset of gamma(B)),
/// decided as lub(A, B) == B.
bool patternLeq(const Pattern &A, const Pattern &B,
                int DepthLimit = kDefaultDepthLimit);

} // namespace awam

#endif // AWAM_ANALYZER_PATTERN_H
