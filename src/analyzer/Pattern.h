//===- analyzer/Pattern.h - Calling and success patterns --------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical abstract descriptions of argument-register tuples: the
/// "calling patterns" and "success patterns" of the paper's extension-table
/// control scheme (Sections 2.2 and 5).
///
/// A Pattern is a term DAG cut at the paper's term-depth limit (k = 4 by
/// default). Node ids are assigned in first-visit order from the roots, so
/// structural equality of two Patterns is equality up to renaming, and
/// shared nodes represent aliasing (a variable or abstract term reachable
/// from two argument positions).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_PATTERN_H
#define AWAM_ANALYZER_PATTERN_H

#include "wam/Store.h"

#include <cstdint>
#include <string>
#include <vector>

namespace awam {

/// Node kinds of pattern DAGs.
enum class PatKind : uint8_t {
  VarP,    ///< a free variable
  AnyP,    ///< any
  NVP,     ///< nv
  GroundP, ///< g
  ConstP,  ///< const
  AtomTP,  ///< atom (the set)
  IntTP,   ///< integer (the set)
  ListP,   ///< alpha-list; one child: the element type
  ConP,    ///< a specific atom; Sym is its symbol
  IntP,    ///< a specific integer; Num is its value
  ConsP,   ///< a list cell; two children
  StrP,    ///< a structure; Sym/children
};

/// One pattern node.
struct PatNode {
  PatKind K = PatKind::AnyP;
  Symbol Sym = 0;
  int64_t Num = 0;
  std::vector<int32_t> Children;

  friend bool operator==(const PatNode &, const PatNode &) = default;
};

/// A canonical pattern: nodes in first-visit order plus one root per
/// argument position.
struct Pattern {
  std::vector<PatNode> Nodes;
  std::vector<int32_t> Roots;

  friend bool operator==(const Pattern &, const Pattern &) = default;

  /// Stable hash for table lookup.
  size_t hash() const;

  /// Renders like the paper: "(atom, glist)" with aliased nodes shown as
  /// "_S<n>" markers on repeated visits.
  std::string str(const SymbolTable &Syms) const;
};

/// Default term-depth restriction (the paper and Taylor's analyzer use 4).
inline constexpr int kDefaultDepthLimit = 4;

/// Abstracts the cells \p Args (argument registers) into a canonical
/// Pattern, applying the term-depth cut at \p DepthLimit.
///
/// With \p WidenConstants set, specific constants are widened to their
/// types (a -> atom, 3 -> integer; '[]' is kept, it carries list
/// information). The paper applies this widening when abstracting a call
/// — its example call pattern for p(a, ...) is p(atom, ...) — which keeps
/// the number of calling patterns per predicate small; success patterns
/// keep specific constants.
Pattern canonicalize(const Store &St, const std::vector<Cell> &Args,
                     int DepthLimit = kDefaultDepthLimit,
                     bool WidenConstants = false);

/// Builds fresh cells denoting \p P in \p St; returns one root address per
/// argument position. Shared nodes become shared cells (aliasing).
std::vector<int64_t> instantiate(Store &St, const Pattern &P);

/// Least upper bound of two patterns with the same arity, computed by
/// instantiating both into a scratch store, lubbing cell-wise and
/// re-canonicalizing.
Pattern lubPatterns(const Pattern &A, const Pattern &B,
                    int DepthLimit = kDefaultDepthLimit);

/// Partial order: A is at or below B (gamma(A) subset of gamma(B)),
/// decided as lub(A, B) == B.
bool patternLeq(const Pattern &A, const Pattern &B,
                int DepthLimit = kDefaultDepthLimit);

} // namespace awam

#endif // AWAM_ANALYZER_PATTERN_H
