//===- analyzer/Specialize.cpp - Analysis facts for the specializer -------===//
//
// Joins per-item abstract information into per-predicate facts:
//
//   KnownFree    every call's argument is a VarP root no other position
//                aliases (node referenced exactly once across the
//                pattern's roots and child store) — an unbound, unaliased
//                variable at runtime.
//   KnownNonvar  every call's argument root is neither VarP nor AnyP.
//   KnownGround  every call's argument is ground (recursive walk; depth-
//                cut nodes without definite kinds count as not ground).
//   Shapes       the distinct first-argument shapes across all items,
//                with exact constants / functors preserved.
//   Det          the det machinery's class, joined over the predicate's
//                items (a failing item degrades the join to semidet
//                unless every item fails).
//
//===----------------------------------------------------------------------===//

#include "analyzer/Specialize.h"

#include "analyzer/DetFacts.h"

using namespace awam;

namespace {

/// True when the abstract value rooted at \p Node is definitely ground.
/// Patterns are DAGs (no cycles), so plain recursion terminates.
bool nodeGround(const Pattern &P, int32_t Node) {
  const PatNode &N = P.Nodes[Node];
  switch (N.K) {
  case PatKind::GroundP:
  case PatKind::ConstP:
  case PatKind::AtomTP:
  case PatKind::IntTP:
  case PatKind::ConP:
  case PatKind::IntP:
    return true;
  case PatKind::VarP:
  case PatKind::AnyP:
  case PatKind::NVP:
    return false;
  case PatKind::ListP: // a list of ground elements is ground
  case PatKind::ConsP:
  case PatKind::StrP:
    for (int32_t I = 0; I != N.ChildCount; ++I)
      if (!nodeGround(P, P.child(N, I)))
        return false;
    return N.ChildCount > 0; // a depth-cut node proves nothing
  }
  return false;
}

/// True when root \p RootIdx's node is referenced exactly once in the
/// whole pattern — no other argument position or subterm aliases it.
bool rootUnaliased(const Pattern &P, size_t RootIdx) {
  int32_t Node = P.Roots[RootIdx];
  int Count = 0;
  for (int32_t R : P.Roots)
    Count += R == Node;
  for (int32_t C : P.ChildStore)
    Count += C == Node;
  return Count == 1;
}

CallShape shapeOfRoot(const Pattern &P, int32_t Node) {
  const PatNode &N = P.Nodes[Node];
  CallShape S;
  switch (N.K) {
  case PatKind::VarP:
    S.K = CallShape::VarShape;
    break;
  case PatKind::AnyP:
    S.K = CallShape::AnyShape;
    break;
  case PatKind::NVP:
  case PatKind::GroundP:
    S.K = CallShape::NonvarShape;
    break;
  case PatKind::ConP:
    S.K = CallShape::ConstShape;
    S.Exact = true;
    S.Const = ConstOperand::atom(N.Sym);
    break;
  case PatKind::IntP:
    S.K = CallShape::ConstShape;
    S.Exact = true;
    S.Const = ConstOperand::integer(N.Num);
    break;
  case PatKind::ConstP:
  case PatKind::AtomTP:
  case PatKind::IntTP:
    S.K = CallShape::ConstShape;
    break;
  case PatKind::ListP: // may be [] at runtime — not a definite cons
    S.K = CallShape::ListShape;
    break;
  case PatKind::ConsP:
    S.K = CallShape::ConsShape;
    break;
  case PatKind::StrP:
    S.K = CallShape::StructShape;
    S.Exact = true;
    S.Functor = {N.Sym, N.ChildCount};
    break;
  }
  return S;
}

bool sameShape(const CallShape &A, const CallShape &B) {
  return A.K == B.K && A.Exact == B.Exact && A.Const == B.Const &&
         A.Functor == B.Functor;
}

DetSpecClass joinDet(DetSpecClass Acc, DetItemClass C) {
  // Map a failing item to semidet for the predicate-level join (the call
  // runs and yields nothing) unless *every* item fails.
  DetSpecClass V = C == DetItemClass::Det       ? DetSpecClass::Det
                   : C == DetItemClass::Semidet ? DetSpecClass::Semidet
                   : C == DetItemClass::Nondet  ? DetSpecClass::Nondet
                                                : DetSpecClass::Fails;
  if (Acc == DetSpecClass::Unknown)
    return V;
  if (Acc == V)
    return Acc;
  auto Rank = [](DetSpecClass D) {
    switch (D) {
    case DetSpecClass::Det: return 0;
    case DetSpecClass::Fails: // mixed with non-fails: at worst semidet
    case DetSpecClass::Semidet: return 1;
    case DetSpecClass::Nondet: return 2;
    case DetSpecClass::Unknown: return 2;
    }
    return 2;
  };
  int R = std::max(Rank(Acc), Rank(V));
  return R == 0   ? DetSpecClass::Det
         : R == 1 ? DetSpecClass::Semidet
                  : DetSpecClass::Nondet;
}

} // namespace

SpecializationFacts
awam::buildSpecializationFacts(const AnalysisResult &R,
                               const CompiledProgram &Program) {
  SpecializationFacts F;
  if (!Program.Module)
    return F;
  const CodeModule &M = *Program.Module;
  F.Preds.resize(static_cast<size_t>(M.numPredicates()));
  std::vector<DetItemFacts> Det = computeDetFacts(R, Program);

  for (size_t I = 0; I != R.Items.size(); ++I) {
    const AnalysisResult::Item &It = R.Items[I];
    if (It.PredId < 0 ||
        static_cast<size_t>(It.PredId) >= F.Preds.size())
      continue;
    PredSpecFacts &P = F.Preds[It.PredId];
    const Pattern &Call = It.Call;
    size_t Arity = Call.Roots.size();

    if (!P.Analyzed) {
      P.Analyzed = true;
      P.Args.assign(Arity, {true, true, true}); // join identity: all hold
    }
    if (P.Args.size() != Arity)
      P.Args.clear(); // arity mismatch: trust nothing

    for (size_t A = 0; A != P.Args.size(); ++A) {
      const PatNode &Root = Call.Nodes[Call.Roots[A]];
      ArgSpecFacts &AF = P.Args[A];
      AF.KnownFree = AF.KnownFree && Root.K == PatKind::VarP &&
                     rootUnaliased(Call, A);
      AF.KnownNonvar = AF.KnownNonvar && Root.K != PatKind::VarP &&
                       Root.K != PatKind::AnyP;
      AF.KnownGround = AF.KnownGround && nodeGround(Call, Call.Roots[A]);
    }

    if (Arity > 0) {
      CallShape S = shapeOfRoot(Call, Call.Roots[0]);
      bool Seen = false;
      for (const CallShape &Old : P.Shapes)
        if (sameShape(Old, S)) {
          Seen = true;
          break;
        }
      if (!Seen)
        P.Shapes.push_back(S);
    }

    if (!Det.empty())
      P.Det = joinDet(P.Det, Det[I].Class);
  }
  return F;
}
