//===- analyzer/Analyzer.cpp ----------------------------------------------===//

#include "analyzer/Analyzer.h"

#include "support/StringUtil.h"

#include <cctype>
#include <memory>
#include <set>

using namespace awam;

Pattern awam::makeEntryPattern(const std::vector<PatKind> &ArgKinds) {
  Pattern P;
  for (PatKind K : ArgKinds) {
    int32_t Id = static_cast<int32_t>(P.Nodes.size());
    PatNode N;
    N.K = K;
    if (K == PatKind::ListP) {
      PatNode Elem;
      Elem.K = PatKind::AnyP;
      N.ChildBegin = static_cast<int32_t>(P.ChildStore.size());
      N.ChildCount = 1;
      P.ChildStore.push_back(Id + 1);
      P.Nodes.push_back(N);
      P.Nodes.push_back(Elem);
      P.Roots.push_back(Id);
      continue;
    }
    P.Nodes.push_back(N);
    P.Roots.push_back(Id);
  }
  return P;
}

Result<std::pair<std::string, Pattern>>
awam::parseEntrySpec(std::string_view Spec) {
  auto Fail = [&](std::string Msg) {
    return makeError("bad entry spec '" + std::string(Spec) + "': " + Msg);
  };
  size_t Paren = Spec.find('(');
  std::string Name(Spec.substr(0, Paren));
  while (!Name.empty() && std::isspace(static_cast<unsigned char>(
                              Name.back())))
    Name.pop_back();
  if (Name.empty())
    return Fail("missing predicate name");

  Pattern P;
  if (Paren == std::string_view::npos)
    return std::make_pair(Name, P);
  if (Spec.back() != ')')
    return Fail("missing ')'");

  std::string_view ArgText = Spec.substr(Paren + 1, Spec.size() - Paren - 2);
  size_t Pos = 0;
  auto nextArg = [&]() -> std::string {
    std::string Out;
    while (Pos < ArgText.size() && ArgText[Pos] != ',')
      Out.push_back(ArgText[Pos++]);
    if (Pos < ArgText.size())
      ++Pos; // skip ','
    // trim
    size_t B = Out.find_first_not_of(" \t");
    size_t End = Out.find_last_not_of(" \t");
    return B == std::string::npos ? "" : Out.substr(B, End - B + 1);
  };

  while (Pos < ArgText.size()) {
    std::string Arg = nextArg();
    if (Arg.empty())
      return Fail("empty argument");
    int32_t Id = static_cast<int32_t>(P.Nodes.size());
    PatNode N;
    auto simpleKind = [](const std::string &S) -> std::optional<PatKind> {
      if (S == "any") return PatKind::AnyP;
      if (S == "nv") return PatKind::NVP;
      if (S == "g" || S == "ground") return PatKind::GroundP;
      if (S == "const") return PatKind::ConstP;
      if (S == "atom") return PatKind::AtomTP;
      if (S == "int" || S == "integer") return PatKind::IntTP;
      if (S == "var") return PatKind::VarP;
      return std::nullopt;
    };
    if (auto K = simpleKind(Arg)) {
      N.K = *K;
      P.Nodes.push_back(N);
      P.Roots.push_back(Id);
      continue;
    }
    if (Arg.size() > 4 && Arg.ends_with("list")) {
      auto EK = simpleKind(Arg.substr(0, Arg.size() - 4));
      if (!EK)
        return Fail("unknown list element type in '" + Arg + "'");
      N.K = PatKind::ListP;
      N.ChildBegin = static_cast<int32_t>(P.ChildStore.size());
      N.ChildCount = 1;
      P.ChildStore.push_back(Id + 1);
      PatNode Elem;
      Elem.K = *EK;
      P.Nodes.push_back(N);
      P.Nodes.push_back(Elem);
      P.Roots.push_back(Id);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(Arg[0])) ||
        (Arg[0] == '-' && Arg.size() > 1)) {
      N.K = PatKind::IntP;
      N.Num = std::stoll(Arg);
      P.Nodes.push_back(N);
      P.Roots.push_back(Id);
      continue;
    }
    return Fail("unknown argument form '" + Arg +
                "' (atoms need interning; use kinds)");
  }
  return std::make_pair(Name, P);
}

Analyzer::Analyzer(const CompiledProgram &Program, AnalyzerOptions Options)
    : Program(Program), Options(Options) {}

Result<AnalysisResult> Analyzer::analyze(std::string_view Name,
                                         const Pattern &Entry) {
  CodeModule &M = *Program.Module;
  Symbol S = M.symbols().lookup(Name);
  int Arity = static_cast<int>(Entry.Roots.size());
  int32_t Pid = S == ~0u ? -1 : M.findPredicate(S, Arity);
  if (Pid < 0)
    return makeError("entry predicate " + std::string(Name) + "/" +
                     std::to_string(Arity) + " is not defined");

  std::unique_ptr<PatternInterner> Interner;
  if (Options.UseInterning)
    Interner = std::make_unique<PatternInterner>(Options.DepthLimit);
  ExtensionTable Table(Options.TableImpl, Interner.get());
  AbsMachineOptions MachineOptions;
  MachineOptions.DepthLimit = Options.DepthLimit;
  MachineOptions.MaxSteps = Options.MaxSteps;
  AbstractMachine Machine(Program, Table, MachineOptions);

  AnalysisResult R;
  for (int Iter = 0; Iter != Options.MaxIterations; ++Iter) {
    AbsRunStatus Status = Machine.runIteration(Pid, Entry);
    ++R.Iterations;
    if (Status == AbsRunStatus::Error)
      return makeError("abstract machine error: " + Machine.errorMessage());
    if (!Machine.changedSinceLastRun()) {
      R.Converged = true;
      break;
    }
  }
  R.Instructions = Machine.stepsExecuted();
  R.TableProbes = Table.probeCount();
  R.Counters.Instructions = R.Instructions;
  R.Counters.ETProbes = R.TableProbes;
  if (Interner) {
    const InternerStats &S = Interner->stats();
    R.Counters.InternHits = S.InternHits;
    R.Counters.InternMisses = S.InternMisses;
    R.Counters.LubCacheHits = S.LubCacheHits;
    R.Counters.LubCacheMisses = S.LubCacheMisses;
    R.Counters.LeqCacheHits = S.LeqCacheHits;
    R.Counters.LeqCacheMisses = S.LeqCacheMisses;
    R.Counters.DistinctPatterns = Interner->size();
  }
  for (const ETEntry &E : Table.entries())
    R.Items.push_back(
        {E.PredId, M.predicateLabel(E.PredId), E.Call, E.Success});
  return R;
}

Result<AnalysisResult> Analyzer::analyze(std::string_view EntrySpec) {
  Result<std::pair<std::string, Pattern>> Parsed = parseEntrySpec(EntrySpec);
  if (!Parsed)
    return Parsed.diag();
  return analyze(Parsed->first, Parsed->second);
}

std::string awam::formatAnalysis(const AnalysisResult &R,
                                 const SymbolTable &Syms) {
  TextTable T({"predicate", "calling pattern", "success pattern"});
  for (const AnalysisResult::Item &I : R.Items)
    T.addRow({I.PredLabel, I.Call.str(Syms),
              I.Success ? I.Success->str(Syms) : "(fails)"});
  std::string Out = T.str();
  Out += "iterations: " + std::to_string(R.Iterations) +
         (R.Converged ? " (fixpoint)" : " (budget hit)") +
         ", abstract instructions: " + std::to_string(R.Instructions) +
         "\n";
  return Out;
}

namespace {
/// True if every term described by node \p Id is ground.
bool isGroundNode(const Pattern &P, int32_t Id, int Fuel = 64) {
  if (Fuel <= 0)
    return false;
  const PatNode &N = P.Nodes[Id];
  switch (N.K) {
  case PatKind::GroundP:
  case PatKind::ConstP:
  case PatKind::AtomTP:
  case PatKind::IntTP:
  case PatKind::ConP:
  case PatKind::IntP:
    return true;
  case PatKind::VarP:
  case PatKind::AnyP:
  case PatKind::NVP:
    return false;
  case PatKind::ListP:
  case PatKind::ConsP:
  case PatKind::StrP:
    for (int32_t C = 0; C != N.ChildCount; ++C)
      if (!isGroundNode(P, P.child(N, C), Fuel - 1))
        return false;
    return true;
  }
  return false;
}

/// Classifies one root node of a calling pattern as an input mode.
std::string modeOf(const Pattern &P, int32_t Root) {
  if (isGroundNode(P, Root))
    return "++";
  switch (P.Nodes[Root].K) {
  case PatKind::VarP:
    return "-";
  case PatKind::AnyP:
    return "?";
  default:
    return "+"; // nonvar
  }
}

/// Renders one root of a pattern in isolation.
std::string rootText(const Pattern &P, size_t ArgIdx,
                     const SymbolTable &Syms) {
  // Reuse Pattern::str by printing the whole tuple and splitting is
  // fragile; print a single-root sub-pattern instead.
  Pattern Sub;
  Sub.Nodes = P.Nodes;
  Sub.ChildStore = P.ChildStore;
  Sub.Roots = {P.Roots[ArgIdx]};
  std::string S = Sub.str(Syms);
  // Strip the surrounding "( ... )".
  return S.substr(1, S.size() - 2);
}
} // namespace

std::string awam::formatModes(const AnalysisResult &R,
                              const SymbolTable &Syms) {
  TextTable T({"predicate", "arg", "mode", "call type", "success type"});
  for (const AnalysisResult::Item &I : R.Items) {
    for (size_t A = 0; A != I.Call.Roots.size(); ++A) {
      T.addRow({A == 0 ? I.PredLabel : "", std::to_string(A + 1),
                modeOf(I.Call, I.Call.Roots[A]), rootText(I.Call, A, Syms),
                I.Success ? rootText(*I.Success, A, Syms) : "(fails)"});
    }
    if (I.Call.Roots.empty())
      T.addRow({I.PredLabel, "-", "", "",
                I.Success ? "succeeds" : "(fails)"});
  }
  return T.str();
}

std::string awam::formatReachability(const AnalysisResult &R,
                                     const CompiledProgram &Program) {
  const CodeModule &M = *Program.Module;
  std::set<int32_t> Reached;
  std::vector<std::string> NeverSucceeds;
  for (const AnalysisResult::Item &I : R.Items) {
    Reached.insert(I.PredId);
    if (!I.Success)
      NeverSucceeds.push_back(I.PredLabel + " " +
                              I.Call.str(M.symbols()));
  }
  std::string Out;
  Out += "Reachability from the analyzed entry goal:\n";
  bool AnyDead = false;
  for (int32_t Pid = 0; Pid != M.numPredicates(); ++Pid) {
    if (M.predicate(Pid).Clauses.empty())
      continue; // undefined predicates are reported by the compiler
    if (!Reached.count(Pid)) {
      Out += "  unreachable: " + M.predicateLabel(Pid) + "\n";
      AnyDead = true;
    }
  }
  if (!AnyDead)
    Out += "  every defined predicate is reachable\n";
  for (const std::string &S : NeverSucceeds)
    Out += "  never succeeds: " + S + "\n";
  return Out;
}
