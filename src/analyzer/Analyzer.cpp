//===- analyzer/Analyzer.cpp ----------------------------------------------===//

#include "analyzer/Analyzer.h"

#include "analyzer/Domain.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <memory>
#include <set>
#include <tuple>

using namespace awam;

Pattern awam::makeEntryPattern(const std::vector<PatKind> &ArgKinds) {
  Pattern P;
  for (PatKind K : ArgKinds) {
    int32_t Id = static_cast<int32_t>(P.Nodes.size());
    PatNode N;
    N.K = K;
    if (K == PatKind::ListP) {
      PatNode Elem;
      Elem.K = PatKind::AnyP;
      N.ChildBegin = static_cast<int32_t>(P.ChildStore.size());
      N.ChildCount = 1;
      P.ChildStore.push_back(Id + 1);
      P.Nodes.push_back(N);
      P.Nodes.push_back(Elem);
      P.Roots.push_back(Id);
      continue;
    }
    P.Nodes.push_back(N);
    P.Roots.push_back(Id);
  }
  return P;
}

namespace {

std::string_view trimSpaces(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

std::optional<PatKind> simpleKind(std::string_view S) {
  if (S == "any") return PatKind::AnyP;
  if (S == "nv") return PatKind::NVP;
  if (S == "g" || S == "ground") return PatKind::GroundP;
  if (S == "const") return PatKind::ConstP;
  if (S == "atom") return PatKind::AtomTP;
  if (S == "int" || S == "integer") return PatKind::IntTP;
  if (S == "var") return PatKind::VarP;
  return std::nullopt;
}

/// Parses a decimal literal without stoll's exception/overflow hazards.
/// 18 digits keep the value well inside int64.
bool parseIntLiteral(std::string_view S, int64_t &Out) {
  bool Neg = !S.empty() && S.front() == '-';
  std::string_view Digits = Neg ? S.substr(1) : S;
  if (Digits.empty() || Digits.size() > 18)
    return false;
  int64_t V = 0;
  for (char C : Digits) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    V = V * 10 + (C - '0');
  }
  Out = Neg ? -V : V;
  return true;
}

/// Validates a predicate name from a spec; returns an error message or
/// nothing.
std::optional<std::string> checkSpecName(std::string_view Name) {
  if (Name.empty())
    return "missing predicate name";
  for (char C : Name)
    if (std::isspace(static_cast<unsigned char>(C)))
      return "predicate name '" + std::string(Name) +
             "' contains whitespace";
  if (Name.find(',') != std::string_view::npos ||
      Name.find('/') != std::string_view::npos)
    return "unexpected '" +
           std::string(1, Name[Name.find_first_of(",/")]) +
           "' in predicate name '" + std::string(Name) + "'";
  return std::nullopt;
}

/// Appends one parsed argument to \p P; returns an error message or
/// nothing.
std::optional<std::string> appendSpecArg(Pattern &P, std::string_view Arg,
                                         int ArgNo) {
  auto Err = [&](std::string Msg) {
    return "argument " + std::to_string(ArgNo) + ": " + Msg;
  };
  if (Arg.empty())
    return Err("is empty (doubled or trailing comma?)");
  int32_t Id = static_cast<int32_t>(P.Nodes.size());
  PatNode N;
  if (std::optional<PatKind> K = simpleKind(Arg)) {
    N.K = *K;
    P.Nodes.push_back(N);
    P.Roots.push_back(Id);
    return std::nullopt;
  }
  if (Arg.size() > 4 && Arg.ends_with("list")) {
    std::optional<PatKind> EK = simpleKind(Arg.substr(0, Arg.size() - 4));
    if (!EK)
      return Err("unknown list element type in '" + std::string(Arg) + "'");
    N.K = PatKind::ListP;
    N.ChildBegin = static_cast<int32_t>(P.ChildStore.size());
    N.ChildCount = 1;
    P.ChildStore.push_back(Id + 1);
    PatNode Elem;
    Elem.K = *EK;
    P.Nodes.push_back(N);
    P.Nodes.push_back(Elem);
    P.Roots.push_back(Id);
    return std::nullopt;
  }
  int64_t Num = 0;
  if (parseIntLiteral(Arg, Num)) {
    N.K = PatKind::IntP;
    N.Num = Num;
    P.Nodes.push_back(N);
    P.Roots.push_back(Id);
    return std::nullopt;
  }
  return Err("unknown form '" + std::string(Arg) +
             "' (expected any, nv, g, ground, const, atom, int, integer, "
             "var, a <kind>list, or an integer literal; named atoms are "
             "not supported in entry specs)");
}

} // namespace

Result<std::pair<std::string, Pattern>>
awam::parseEntrySpec(std::string_view Spec) {
  auto Fail = [&](std::string Msg) {
    return makeError("bad entry spec '" + std::string(Spec) + "': " + Msg);
  };
  std::string_view Text = trimSpaces(Spec);
  if (Text.empty())
    return Fail("empty spec");

  size_t Paren = Text.find('(');
  if (Paren == std::string_view::npos) {
    // "name" (arity 0) or the "name/arity" shorthand (all-any arguments).
    std::string_view NameView = Text;
    size_t Slash = NameView.rfind('/');
    int64_t Arity = 0;
    if (Slash != std::string_view::npos) {
      std::string_view ArityText = trimSpaces(NameView.substr(Slash + 1));
      NameView = trimSpaces(NameView.substr(0, Slash));
      if (!parseIntLiteral(ArityText, Arity) || Arity < 0 || Arity > 255)
        return Fail("arity in '" + std::string(Text) +
                    "' must be an integer in [0, 255]");
    }
    if (std::optional<std::string> Err = checkSpecName(NameView))
      return Fail(*Err);
    return std::make_pair(
        std::string(NameView),
        makeEntryPattern(std::vector<PatKind>(static_cast<size_t>(Arity),
                                              PatKind::AnyP)));
  }

  std::string_view NameView = trimSpaces(Text.substr(0, Paren));
  if (std::optional<std::string> Err = checkSpecName(NameView))
    return Fail(*Err);
  if (Text.back() != ')')
    return Fail("missing ')' at the end");
  std::string_view ArgText = Text.substr(Paren + 1, Text.size() - Paren - 2);
  if (ArgText.find('(') != std::string_view::npos ||
      ArgText.find(')') != std::string_view::npos)
    return Fail("nested terms are not supported in entry specs");

  Pattern P;
  if (!trimSpaces(ArgText).empty()) {
    size_t Start = 0;
    int ArgNo = 1;
    for (;;) {
      size_t Comma = ArgText.find(',', Start);
      std::string_view Arg =
          trimSpaces(Comma == std::string_view::npos
                         ? ArgText.substr(Start)
                         : ArgText.substr(Start, Comma - Start));
      if (std::optional<std::string> Err = appendSpecArg(P, Arg, ArgNo))
        return Fail(*Err);
      if (Comma == std::string_view::npos)
        break;
      Start = Comma + 1;
      ++ArgNo;
    }
  }
  return std::make_pair(std::string(NameView), std::move(P));
}

std::string awam::formatAnalysis(const AnalysisResult &R,
                                 const SymbolTable &Syms) {
  // Pattern text routes through the result's domain; the default domain's
  // formatPattern is Pattern::str, so default-domain reports are
  // byte-identical to the pre-domain formatter (and to the null-domain
  // fallback used by trace/baseline results).
  auto Fmt = [&](const Pattern &P) {
    return R.Dom ? R.Dom->formatPattern(P, Syms) : P.str(Syms);
  };
  TextTable T({"predicate", "calling pattern", "success pattern"});
  for (const AnalysisResult::Item &I : R.Items)
    T.addRow({I.PredLabel, Fmt(I.Call),
              I.Success ? Fmt(*I.Success) : "(fails)"});
  std::string Out = T.str();
  Out += "iterations: " + std::to_string(R.Iterations) +
         (R.Converged ? " (fixpoint)" : " (budget hit)") +
         ", abstract instructions: " + std::to_string(R.Instructions) +
         "\n";
  return Out;
}

namespace {
/// True if every term described by node \p Id is ground.
bool isGroundNode(const Pattern &P, int32_t Id, int Fuel = 64) {
  if (Fuel <= 0)
    return false;
  const PatNode &N = P.Nodes[Id];
  switch (N.K) {
  case PatKind::GroundP:
  case PatKind::ConstP:
  case PatKind::AtomTP:
  case PatKind::IntTP:
  case PatKind::ConP:
  case PatKind::IntP:
    return true;
  case PatKind::VarP:
  case PatKind::AnyP:
  case PatKind::NVP:
    return false;
  case PatKind::ListP:
  case PatKind::ConsP:
  case PatKind::StrP:
    for (int32_t C = 0; C != N.ChildCount; ++C)
      if (!isGroundNode(P, P.child(N, C), Fuel - 1))
        return false;
    return true;
  }
  return false;
}

/// Classifies one root node of a calling pattern as an input mode.
std::string modeOf(const Pattern &P, int32_t Root) {
  if (isGroundNode(P, Root))
    return "++";
  switch (P.Nodes[Root].K) {
  case PatKind::VarP:
    return "-";
  case PatKind::AnyP:
    return "?";
  default:
    return "+"; // nonvar
  }
}

/// Renders one root of a pattern in isolation.
std::string rootText(const Pattern &P, size_t ArgIdx,
                     const SymbolTable &Syms) {
  // Reuse Pattern::str by printing the whole tuple and splitting is
  // fragile; print a single-root sub-pattern instead.
  Pattern Sub;
  Sub.Nodes = P.Nodes;
  Sub.ChildStore = P.ChildStore;
  Sub.Roots = {P.Roots[ArgIdx]};
  std::string S = Sub.str(Syms);
  // Strip the surrounding "( ... )".
  return S.substr(1, S.size() - 2);
}
} // namespace

std::string awam::formatModes(const AnalysisResult &R,
                              const SymbolTable &Syms) {
  TextTable T({"predicate", "arg", "mode", "call type", "success type"});
  for (const AnalysisResult::Item &I : R.Items) {
    for (size_t A = 0; A != I.Call.Roots.size(); ++A) {
      T.addRow({A == 0 ? I.PredLabel : "", std::to_string(A + 1),
                modeOf(I.Call, I.Call.Roots[A]), rootText(I.Call, A, Syms),
                I.Success ? rootText(*I.Success, A, Syms) : "(fails)"});
    }
    if (I.Call.Roots.empty())
      T.addRow({I.PredLabel, "-", "", "",
                I.Success ? "succeeds" : "(fails)"});
  }
  return T.str();
}

std::string awam::formatReachability(const AnalysisResult &R,
                                     const CompiledProgram &Program) {
  const CodeModule &M = *Program.Module;
  std::set<int32_t> Reached;
  std::vector<std::string> NeverSucceeds;
  for (const AnalysisResult::Item &I : R.Items) {
    Reached.insert(I.PredId);
    if (!I.Success)
      NeverSucceeds.push_back(I.PredLabel + " " +
                              I.Call.str(M.symbols()));
  }
  std::string Out;
  Out += "Reachability from the analyzed entry goal:\n";
  bool AnyDead = false;
  for (int32_t Pid = 0; Pid != M.numPredicates(); ++Pid) {
    if (M.predicate(Pid).Clauses.empty())
      continue; // undefined predicates are reported by the compiler
    if (!Reached.count(Pid)) {
      Out += "  unreachable: " + M.predicateLabel(Pid) + "\n";
      AnyDead = true;
    }
  }
  if (!AnyDead)
    Out += "  every defined predicate is reachable\n";
  for (const std::string &S : NeverSucceeds)
    Out += "  never succeeds: " + S + "\n";
  return Out;
}

// undefinedPredicateMessage and its edit-distance ranking moved to
// compiler/ModuleLink.cpp (the linker shares the near-miss machinery).
