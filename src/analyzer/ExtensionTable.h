//===- analyzer/ExtensionTable.h - OLDT-style memo table --------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension table of the paper's control scheme (Sections 2.2 and 5):
/// a memo mapping (predicate, calling pattern) to the lub of the success
/// patterns found so far. Multiple calling patterns are kept per predicate;
/// the success patterns of one calling pattern are summarized by lub.
///
/// The paper implements the table as a linear list of pairs (Section 6);
/// we provide that implementation plus a hashed variant. When a
/// PatternInterner is attached, entries are additionally keyed on
/// (PredId, PatternId) and the HashMap variant becomes a single exact-key
/// O(1) map lookup — the default fast path of the analyzer. The
/// structural (pattern-compared) API remains as the ablation baseline.
///
/// Entry storage is paged: positions map to entries through a vector of
/// shared, fixed-size pages of entry pointers, while the entries
/// themselves live in a stable-address deque. On an ordinary table the
/// pages are an implementation detail (position == ETEntry::Idx, exactly
/// as before); they exist so overlays can snapshot a table by copying the
/// page-pointer vector — O(entries / kPageSize) — instead of touching any
/// entry, and privatize individual pages copy-on-write.
///
/// The table itself is a passive memo. Scheduling state lives elsewhere:
/// the naive driver uses the per-iteration Explored flags (reset by
/// beginIteration), the worklist driver (analyzer/Scheduler.h) keys its
/// dependency graph on each entry's dense Idx and watches SuccessVersion
/// to detect stale reads.
///
/// Probe accounting (the ablation metric) is defined uniformly across both
/// variants so their counts are comparable:
///  * LinearList: one probe per entry examined by a lookup;
///  * HashMap: one probe for the index consultation itself (counted even
///    when it finds nothing — previously misses were invisible), plus one
///    per additional candidate compared in the bucket.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_EXTENSIONTABLE_H
#define AWAM_ANALYZER_EXTENSIONTABLE_H

#include "analyzer/PatternInterner.h"

#include <array>
#include <cassert>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace awam {

/// One (calling pattern, success pattern) pair. The Pattern fields are
/// always populated (reporting, tracing and clause re-entry read them);
/// the id fields are valid only when the owning table has an interner and
/// are the hot-path handles.
struct ETEntry {
  int32_t PredId = -1;
  Pattern Call;
  std::optional<Pattern> Success;
  PatternId CallId = kInvalidPatternId;
  PatternId SuccessId = kInvalidPatternId;
  /// Creation position: a dense key for per-entry side tables (the
  /// worklist scheduler's dependency graph) and the creation order (which
  /// for the naive driver is the DFS first-call order). Equal to the
  /// entry's table position on ordinary tables *and* overlays (an overlay
  /// creation continues past the base size, i.e. gets exactly the index
  /// the live table would assign if the speculation committed first).
  int32_t Idx = -1;
  /// Naive driver: set while / after the entry was explored in the current
  /// iteration (reset by beginIteration).
  bool Explored = false;
  /// Worklist driver: true once the entry's clauses have been explored by
  /// some activation run. Such entries answer calls from the memo unless
  /// the scheduler asks for an inline re-exploration.
  bool EverExplored = false;
  /// Bumped every time Success changes (the first set included). Readers
  /// record the version they observed; the scheduler re-enqueues a reader
  /// when a recorded version is no longer current.
  uint32_t SuccessVersion = 0;
  /// Multi-root tables only (analyzer/Store.h): ordinals of the store
  /// roots whose query drains introduced or reached this entry, in merge
  /// order. Maintained by the AnalysisStore; always empty in the per-query
  /// scratch tables the drivers operate on.
  std::vector<int32_t> Roots;
};

/// The memo table.
///
/// Overlay mode (the parallel driver's snapshot-read discipline): a table
/// may be attached to a frozen base table with attachBase. resetOverlay
/// re-snapshots the base by copying its page-pointer vector; lookups
/// resolve base positions through the shared pages *read-only* and record
/// every first touch (Idx, SuccessVersion, EverExplored as observed) so a
/// speculative run can later be validated against the live table. Writes
/// go through writableAt/writable, which clones the containing page
/// (copy-on-write, counted in pagesCopied) and privatizes the one entry —
/// sibling overlays and the base never observe the mutation. Entries
/// created by the overlay live past the base size in a separate slot
/// vector (never forcing a page clone), at exactly the indices the live
/// table would assign if the speculation committed first. The base table
/// is never written through — concurrent overlay readers over one frozen
/// base are safe by construction.
class ExtensionTable {
public:
  /// Lookup structure used to find entries.
  enum class Impl {
    LinearList, ///< the paper's implementation: scan a list of pairs
    HashMap,    ///< hash on (predicate, pattern) or exact (PredId, PatternId)
  };

  explicit ExtensionTable(Impl I = Impl::LinearList,
                          PatternInterner *In = nullptr)
      : WhichImpl(I), Interner(In) {}

  /// The attached interner (nullptr when the table runs the structural
  /// baseline path).
  PatternInterner *interner() const { return Interner; }

  /// The lookup structure this table was built with.
  Impl impl() const { return WhichImpl; }

  /// A base-entry access recorded by an overlay (see class comment): the
  /// summary state the speculation observed when it first touched Idx.
  struct BaseTouch {
    int32_t Idx;
    uint32_t SuccessVersion;
    bool EverExplored;
  };

  /// Turns this (empty) table into an overlay of \p B. The base must use
  /// the same Impl. The base must not be mutated while the overlay reads
  /// it (the parallel driver guarantees this temporally: overlays run only
  /// between master mutations).
  void attachBase(const ExtensionTable &B);

  /// Re-snapshots the base: re-shares its pages (dropping any privatized
  /// copies), drops locally created entries and the touch log. O(base
  /// pages + local entries dropped), not O(base entries). Called between
  /// speculations; the attached base and interner are kept.
  void resetOverlay();

  const ExtensionTable *base() const { return Base; }
  size_t baseSize() const { return BaseSize; }
  const std::vector<BaseTouch> &touchLog() const { return TouchLog; }

  /// Pages privatized by copy-on-write since construction (overlay
  /// effectiveness metric; never exceeds the number of entries touched).
  uint64_t pagesCopied() const { return PagesCopiedCount; }

  /// A mutable reference to the entry at \p Pos. On an ordinary table this
  /// is entryAt. On an overlay, a base-owned entry is privatized first:
  /// the containing page is cloned if still shared, the entry copied into
  /// local storage, and the touch recorded — callers must privatize before
  /// storing a mutable entry pointer (AnalysisFrame::Entry) or writing any
  /// field. Overlay-created entries are returned as-is.
  ETEntry &writableAt(size_t Pos);
  ETEntry &writable(ETEntry &E) {
    assert(E.Idx >= 0);
    return writableAt(static_cast<size_t>(E.Idx));
  }

  /// Structural lookup that neither creates, privatizes, records touches,
  /// nor counts probes. On overlays it resolves through the overlay's
  /// pages (seeing privatized copies); on ordinary tables it is the plain
  /// read-only lookup the incremental driver's simulation uses.
  const ETEntry *findExisting(int32_t PredId, const Pattern &Call) const;

  /// Returns the entry for (\p PredId, \p Call), creating it if missing;
  /// sets \p Created accordingly. Entry references are stable. Structural
  /// comparison — the seed/ablation path.
  ETEntry &findOrCreate(int32_t PredId, const Pattern &Call, bool &Created);

  /// Returns the entry if present (structural comparison).
  ETEntry *find(int32_t PredId, const Pattern &Call);

  /// Id-keyed variants; require an attached interner. In HashMap mode the
  /// lookup is one exact-key map probe.
  ETEntry &findOrCreate(int32_t PredId, PatternId CallId, bool &Created);
  ETEntry *find(int32_t PredId, PatternId CallId);

  /// Fused lookup for the hot call path (requires an attached interner):
  /// probes by (PredId, structural hash) directly, so a hit — the common
  /// case after the first iteration — needs neither an interner probe nor
  /// a second id-keyed probe. Only a miss interns \p Call (which is where
  /// the entry's CallId comes from). Probe accounting matches the
  /// structural HashMap path: one probe for the consultation plus one per
  /// additional candidate compared.
  ETEntry &findOrCreateByPattern(int32_t PredId, const Pattern &Call,
                                 bool &Created);

  /// Clears the per-iteration Explored flags (naive driver only).
  void beginIteration() {
    assert(!Base && "the naive driver never runs on an overlay");
    for (ETEntry &E : Owned)
      E.Explored = false;
  }

  /// Records that \p E's success pattern changed.
  void noteSuccessChanged(ETEntry &E) { ++E.SuccessVersion; }

  /// The entries of an ordinary table in creation (== Idx) order.
  /// Overlays expose entries through entryAt instead (their privatized
  /// copies and created entries interleave in the deque).
  const std::deque<ETEntry> &entries() const {
    assert(!Base && "overlay entries are position-keyed; use entryAt");
    return Owned;
  }
  size_t size() const { return Count; }

  /// The entry at position \p Pos (== ETEntry::Idx). On overlays this
  /// resolves through the shared pages: a privatized copy where one
  /// exists, the base's entry otherwise (read-only use only — mutation
  /// goes through writableAt).
  ETEntry &entryAt(size_t Pos) {
    assert(Pos < Count);
    return *slotAt(Pos);
  }
  const ETEntry &entryAt(size_t Pos) const {
    assert(Pos < Count);
    return *slotAt(Pos);
  }

  /// Approximate heap bytes this table holds: owned entries (including
  /// their pattern payloads and root tags), the page spine, and the lookup
  /// indexes. The table term of the store eviction accounting
  /// (analyzer/Server.h); shared base pages of an overlay are the base's
  /// to count.
  size_t bytesUsed() const {
    size_t B = Pages.capacity() * sizeof(std::shared_ptr<Page>) +
               CreatedSlots.capacity() * sizeof(ETEntry *) +
               IdIndex.bytesUsed() + StructIndex.bytesUsed();
    for (const ETEntry &E : Owned) {
      B += sizeof(ETEntry) + patternHeapBytes(E.Call) +
           (E.Success ? patternHeapBytes(*E.Success) : 0) +
           E.Roots.capacity() * sizeof(int32_t);
      // One page exists per kPageSize owned entries (plus clones, already
      // rare); charge it amortized per entry.
      B += sizeof(Page) / kPageSize;
    }
    for (const auto &[H, Cands] : Index)
      B += sizeof(H) + Cands.capacity() * sizeof(uint32_t);
    return B;
  }

  /// Number of lookup probes performed (ablation metric; see file comment
  /// for the per-variant definition). Under the parallel driver the count
  /// is approximate: committed speculations charge their overlay probes
  /// here, whose bucket layout need not match the live table's.
  uint64_t probeCount() const { return Probes; }

  /// Adds externally performed probes (overlay commit accounting).
  void chargeProbes(uint64_t N) { Probes += N; }

private:
  /// Entries-per-page; positions split into (page, offset) by shift/mask.
  static constexpr size_t kPageShift = 6;
  static constexpr size_t kPageSize = size_t(1) << kPageShift;
  static constexpr size_t kPageMask = kPageSize - 1;

  /// One page of entry-pointer slots. Owner tags which table last wrote
  /// the page: an overlay writes only pages it owns (cloning shared ones
  /// first), so sibling overlays and the base never see its mutations.
  struct Page {
    const ExtensionTable *Owner = nullptr;
    std::array<ETEntry *, kPageSize> Slots{};
  };

  ETEntry *slotAt(size_t Pos) const {
    if (Base && Pos >= BaseSize)
      return CreatedSlots[Pos - BaseSize];
    return Pages[Pos >> kPageShift]->Slots[Pos & kPageMask];
  }

  /// Appends a fresh entry at position size(), growing the page spine (or,
  /// on overlays, the created-slot vector — creations never clone a base
  /// page). Returns it with Idx/position assigned; the caller fills the
  /// key fields and indexes it.
  ETEntry &appendEntry();

  /// Records the first touch of base position \p Pos this speculation
  /// (subsequent touches are deduplicated by generation mark). Must run
  /// before any mutation — the log captures the state the run observed.
  void recordTouch(size_t Pos);

  /// Resolution of a lookup that hit base position \p Pos: records the
  /// touch and returns the overlay view (privatized copy if one exists).
  ETEntry &resolveBaseHit(size_t Pos) {
    recordTouch(Pos);
    return *slotAt(Pos);
  }

  static uint64_t idKey(int32_t PredId, PatternId CallId) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(PredId)) << 32) |
           CallId;
  }

  static uint64_t structKey(int32_t PredId, uint64_t Hash) {
    return Hash ^ (static_cast<uint64_t>(static_cast<uint32_t>(PredId)) *
                   0x9e3779b97f4a7c15ull);
  }

  Impl WhichImpl;
  PatternInterner *Interner;
  /// Entry storage (stable addresses): an ordinary table's entries in
  /// creation order; an overlay's privatized copies and created entries
  /// in touch/creation order.
  std::deque<ETEntry> Owned;
  /// Position spine: page P covers positions [P << kPageShift, ...). An
  /// overlay starts each speculation sharing the base's pages and clones
  /// on first write (see writableAt).
  std::vector<std::shared_ptr<Page>> Pages;
  /// Overlay mode: slots of locally created entries, position BaseSize+I.
  std::vector<ETEntry *> CreatedSlots;
  size_t Count = 0; ///< total positions (base snapshot + created)
  /// HashMap impl, structural path: pattern hash -> candidate positions.
  std::unordered_map<uint64_t, std::vector<uint32_t>> Index;
  /// HashMap impl, interned path: exact (PredId, PatternId) -> position.
  detail::FlatMap64 IdIndex;
  /// HashMap impl, interned path: (PredId, structural hash) -> position
  /// for the fused one-probe call lookup. On overlays the local index
  /// covers created entries only; base positions resolve through the
  /// base's own (frozen) index.
  detail::FlatMap64 StructIndex;
  uint64_t Probes = 0;

  // Overlay state (see class comment); null/empty on ordinary tables.
  const ExtensionTable *Base = nullptr;
  size_t BaseSize = 0;             ///< base size at the last resetOverlay
  std::vector<BaseTouch> TouchLog; ///< base entries touched, in touch order
  /// Generation marks per base position, reset in O(1) by bumping TouchGen
  /// (a mark is live iff it equals the current generation).
  std::vector<uint64_t> TouchMark; ///< touch recorded this speculation
  std::vector<uint64_t> PrivMark;  ///< privatized this speculation
  uint64_t TouchGen = 1;
  uint64_t PagesCopiedCount = 0;
};

} // namespace awam

#endif // AWAM_ANALYZER_EXTENSIONTABLE_H
