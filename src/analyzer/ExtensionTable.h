//===- analyzer/ExtensionTable.h - OLDT-style memo table --------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension table of the paper's control scheme (Sections 2.2 and 5):
/// a memo mapping (predicate, calling pattern) to the lub of the success
/// patterns found so far. Multiple calling patterns are kept per predicate;
/// the success patterns of one calling pattern are summarized by lub.
///
/// The paper implements the table as a linear list of pairs (Section 6);
/// we provide that implementation plus a hashed variant for the ablation
/// bench (bench/ablation_et).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_EXTENSIONTABLE_H
#define AWAM_ANALYZER_EXTENSIONTABLE_H

#include "analyzer/Pattern.h"

#include <deque>
#include <optional>
#include <unordered_map>

namespace awam {

/// One (calling pattern, success pattern) pair.
struct ETEntry {
  int32_t PredId = -1;
  Pattern Call;
  std::optional<Pattern> Success;
  /// Set while / after the entry was explored in the current iteration.
  bool Explored = false;
};

/// The memo table.
class ExtensionTable {
public:
  /// Lookup structure used to find entries.
  enum class Impl {
    LinearList, ///< the paper's implementation: scan a list of pairs
    HashMap,    ///< hash on (predicate, pattern)
  };

  explicit ExtensionTable(Impl I = Impl::LinearList) : WhichImpl(I) {}

  /// Returns the entry for (\p PredId, \p Call), creating it if missing;
  /// sets \p Created accordingly. Entry references are stable.
  ETEntry &findOrCreate(int32_t PredId, const Pattern &Call, bool &Created);

  /// Returns the entry if present.
  ETEntry *find(int32_t PredId, const Pattern &Call);

  /// Clears the per-iteration Explored flags.
  void beginIteration() {
    for (ETEntry &E : Entries)
      E.Explored = false;
  }

  const std::deque<ETEntry> &entries() const { return Entries; }
  size_t size() const { return Entries.size(); }

  /// Number of pattern comparisons performed by lookups (ablation metric).
  uint64_t probeCount() const { return Probes; }

private:
  Impl WhichImpl;
  std::deque<ETEntry> Entries; // stable addresses
  std::unordered_map<uint64_t, std::vector<ETEntry *>> Index; // HashMap impl
  uint64_t Probes = 0;
};

} // namespace awam

#endif // AWAM_ANALYZER_EXTENSIONTABLE_H
