//===- analyzer/ExtensionTable.h - OLDT-style memo table --------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension table of the paper's control scheme (Sections 2.2 and 5):
/// a memo mapping (predicate, calling pattern) to the lub of the success
/// patterns found so far. Multiple calling patterns are kept per predicate;
/// the success patterns of one calling pattern are summarized by lub.
///
/// The paper implements the table as a linear list of pairs (Section 6);
/// we provide that implementation plus a hashed variant. When a
/// PatternInterner is attached, entries are additionally keyed on
/// (PredId, PatternId) and the HashMap variant becomes a single exact-key
/// O(1) map lookup — the default fast path of the analyzer. The
/// structural (pattern-compared) API remains as the ablation baseline.
///
/// The table itself is a passive memo. Scheduling state lives elsewhere:
/// the naive driver uses the per-iteration Explored flags (reset by
/// beginIteration), the worklist driver (analyzer/Scheduler.h) keys its
/// dependency graph on each entry's dense Idx and watches SuccessVersion
/// to detect stale reads.
///
/// Probe accounting (the ablation metric) is defined uniformly across both
/// variants so their counts are comparable:
///  * LinearList: one probe per entry examined by a lookup;
///  * HashMap: one probe for the index consultation itself (counted even
///    when it finds nothing — previously misses were invisible), plus one
///    per additional candidate compared in the bucket.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_EXTENSIONTABLE_H
#define AWAM_ANALYZER_EXTENSIONTABLE_H

#include "analyzer/PatternInterner.h"

#include <cassert>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

namespace awam {

/// One (calling pattern, success pattern) pair. The Pattern fields are
/// always populated (reporting, tracing and clause re-entry read them);
/// the id fields are valid only when the owning table has an interner and
/// are the hot-path handles.
struct ETEntry {
  int32_t PredId = -1;
  Pattern Call;
  std::optional<Pattern> Success;
  PatternId CallId = kInvalidPatternId;
  PatternId SuccessId = kInvalidPatternId;
  /// Position in the entries deque: a dense key for per-entry side tables
  /// (the worklist scheduler's dependency graph) and the creation order
  /// (which for the naive driver is the DFS first-call order).
  int32_t Idx = -1;
  /// Naive driver: set while / after the entry was explored in the current
  /// iteration (reset by beginIteration).
  bool Explored = false;
  /// Worklist driver: true once the entry's clauses have been explored by
  /// some activation run. Such entries answer calls from the memo unless
  /// the scheduler asks for an inline re-exploration.
  bool EverExplored = false;
  /// Bumped every time Success changes (the first set included). Readers
  /// record the version they observed; the scheduler re-enqueues a reader
  /// when a recorded version is no longer current.
  uint32_t SuccessVersion = 0;
  /// Multi-root tables only (analyzer/Store.h): ordinals of the store
  /// roots whose query drains introduced or reached this entry, in merge
  /// order. Maintained by the AnalysisStore; always empty in the per-query
  /// scratch tables the drivers operate on.
  std::vector<int32_t> Roots;
};

/// The memo table.
///
/// Overlay mode (the parallel driver's snapshot-read discipline): a table
/// may be attached to a frozen base table with attachBase. Lookups that
/// miss locally fall through to the base *read-only*; the first touch of a
/// base entry installs a local mutable shadow copy that keeps the base
/// entry's Idx, and every touch is recorded (Idx, SuccessVersion,
/// EverExplored at copy time) so a speculative run can later be validated
/// against the live table. Entries created by the overlay get Idx values
/// continuing past the base size, i.e. exactly the indices the live table
/// would assign if the speculation committed first. The base table is
/// never written through — concurrent overlay readers over one frozen
/// base are safe by construction.
class ExtensionTable {
public:
  /// Lookup structure used to find entries.
  enum class Impl {
    LinearList, ///< the paper's implementation: scan a list of pairs
    HashMap,    ///< hash on (predicate, pattern) or exact (PredId, PatternId)
  };

  explicit ExtensionTable(Impl I = Impl::LinearList,
                          PatternInterner *In = nullptr)
      : WhichImpl(I), Interner(In) {}

  /// The attached interner (nullptr when the table runs the structural
  /// baseline path).
  PatternInterner *interner() const { return Interner; }

  /// The lookup structure this table was built with.
  Impl impl() const { return WhichImpl; }

  /// A base-entry access recorded by an overlay (see class comment): the
  /// summary state the speculation observed when it first touched Idx.
  struct BaseTouch {
    int32_t Idx;
    uint32_t SuccessVersion;
    bool EverExplored;
  };

  /// Turns this (empty) table into an overlay of \p B. The base must use
  /// the same Impl; pattern ids are remapped into this table's own
  /// interner, so base and overlay interners are independent (which is
  /// what makes concurrent overlays over one base thread-safe without
  /// sharding the interner). The base must not be mutated while the
  /// overlay reads it.
  void attachBase(const ExtensionTable &B);

  /// Drops all local entries, shadows and touch records and re-snapshots
  /// the base size. Called between speculations; the attached base and
  /// interner are kept.
  void resetOverlay();

  const ExtensionTable *base() const { return Base; }
  size_t baseSize() const { return BaseSize; }
  const std::vector<BaseTouch> &touchLog() const { return TouchLog; }

  /// The local shadow of base entry \p BaseIdx, installing it on first
  /// use. Overlay mode only — the parallel driver uses this to hand a
  /// speculative activation its root entry.
  ETEntry &shadowForBase(int32_t BaseIdx);

  /// Structural lookup that neither creates, installs shadows, nor counts
  /// probes. This is the read-only path overlays use to consult their
  /// frozen base from worker threads.
  const ETEntry *findExisting(int32_t PredId, const Pattern &Call) const;

  /// Returns the entry for (\p PredId, \p Call), creating it if missing;
  /// sets \p Created accordingly. Entry references are stable. Structural
  /// comparison — the seed/ablation path.
  ETEntry &findOrCreate(int32_t PredId, const Pattern &Call, bool &Created);

  /// Returns the entry if present (structural comparison).
  ETEntry *find(int32_t PredId, const Pattern &Call);

  /// Id-keyed variants; require an attached interner. In HashMap mode the
  /// lookup is one exact-key map probe.
  ETEntry &findOrCreate(int32_t PredId, PatternId CallId, bool &Created);
  ETEntry *find(int32_t PredId, PatternId CallId);

  /// Fused lookup for the hot call path (requires an attached interner):
  /// probes by (PredId, structural hash) directly, so a hit — the common
  /// case after the first iteration — needs neither an interner probe nor
  /// a second id-keyed probe. Only a miss interns \p Call (which is where
  /// the entry's CallId comes from). Probe accounting matches the
  /// structural HashMap path: one probe for the consultation plus one per
  /// additional candidate compared.
  ETEntry &findOrCreateByPattern(int32_t PredId, const Pattern &Call,
                                 bool &Created);

  /// Clears the per-iteration Explored flags (naive driver only).
  void beginIteration() {
    for (ETEntry &E : Entries)
      E.Explored = false;
  }

  /// Records that \p E's success pattern changed.
  void noteSuccessChanged(ETEntry &E) { ++E.SuccessVersion; }

  const std::deque<ETEntry> &entries() const { return Entries; }
  size_t size() const { return Entries.size(); }

  /// The entry with dense index \p Idx (scheduler handle -> entry). Not
  /// meaningful on overlays, whose deque positions are decoupled from Idx.
  ETEntry &entryAt(size_t Idx) {
    assert(!Base && "entryAt is position-keyed; overlays decouple Idx");
    return Entries[Idx];
  }

  /// Number of lookup probes performed (ablation metric; see file comment
  /// for the per-variant definition). Under the parallel driver the count
  /// is approximate: committed speculations charge their overlay probes
  /// here, whose bucket layout need not match the live table's.
  uint64_t probeCount() const { return Probes; }

  /// Adds externally performed probes (overlay commit accounting).
  void chargeProbes(uint64_t N) { Probes += N; }

private:
  /// Copies base entry \p BaseE into the overlay (first touch): remaps its
  /// pattern ids into the local interner, records the touch, and indexes
  /// the shadow locally under its original Idx.
  ETEntry &installShadow(const ETEntry &BaseE);
  static uint64_t idKey(int32_t PredId, PatternId CallId) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(PredId)) << 32) |
           CallId;
  }

  static uint64_t structKey(int32_t PredId, uint64_t Hash) {
    return Hash ^ (static_cast<uint64_t>(static_cast<uint32_t>(PredId)) *
                   0x9e3779b97f4a7c15ull);
  }

  Impl WhichImpl;
  PatternInterner *Interner;
  std::deque<ETEntry> Entries; // stable addresses
  /// HashMap impl, structural path: pattern hash -> candidates.
  std::unordered_map<uint64_t, std::vector<ETEntry *>> Index;
  /// HashMap impl, interned path: exact (PredId, PatternId) -> entry index.
  detail::FlatMap64 IdIndex;
  /// HashMap impl, interned path: (PredId, structural hash) -> entry index
  /// for the fused one-probe call lookup.
  detail::FlatMap64 StructIndex;
  uint64_t Probes = 0;

  // Overlay state (see class comment); null/empty on ordinary tables.
  const ExtensionTable *Base = nullptr;
  size_t BaseSize = 0;             ///< base size at the last resetOverlay
  uint32_t NewCount = 0;           ///< entries created by this overlay
  std::vector<BaseTouch> TouchLog; ///< base entries shadowed, in touch order
};

} // namespace awam

#endif // AWAM_ANALYZER_EXTENSIONTABLE_H
