//===- analyzer/ExtensionTable.h - OLDT-style memo table --------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension table of the paper's control scheme (Sections 2.2 and 5):
/// a memo mapping (predicate, calling pattern) to the lub of the success
/// patterns found so far. Multiple calling patterns are kept per predicate;
/// the success patterns of one calling pattern are summarized by lub.
///
/// The paper implements the table as a linear list of pairs (Section 6);
/// we provide that implementation plus a hashed variant. When a
/// PatternInterner is attached, entries are additionally keyed on
/// (PredId, PatternId) and the HashMap variant becomes a single exact-key
/// O(1) map lookup — the default fast path of the analyzer. The
/// structural (pattern-compared) API remains as the ablation baseline.
///
/// Probe accounting (the ablation metric) is defined uniformly across both
/// variants so their counts are comparable:
///  * LinearList: one probe per entry examined by a lookup;
///  * HashMap: one probe for the index consultation itself (counted even
///    when it finds nothing — previously misses were invisible), plus one
///    per additional candidate compared in the bucket.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_EXTENSIONTABLE_H
#define AWAM_ANALYZER_EXTENSIONTABLE_H

#include "analyzer/PatternInterner.h"

#include <deque>
#include <optional>
#include <unordered_map>

namespace awam {

/// One (calling pattern, success pattern) pair. The Pattern fields are
/// always populated (reporting, tracing and clause re-entry read them);
/// the id fields are valid only when the owning table has an interner and
/// are the hot-path handles.
struct ETEntry {
  int32_t PredId = -1;
  Pattern Call;
  std::optional<Pattern> Success;
  PatternId CallId = kInvalidPatternId;
  PatternId SuccessId = kInvalidPatternId;
  /// Set while / after the entry was explored in the current iteration.
  bool Explored = false;

  // --- Stable-subtree reuse (interned path only; see subtreeStable) ----
  /// Position in the entries deque (reverse-edge construction).
  int32_t Idx = -1;
  /// Bumped every time Success changes (first set included).
  uint32_t SuccessVersion = 0;
  /// True once the entry's clauses have been explored in some iteration.
  bool EverExplored = false;
  /// Cached result of the last stability recomputation.
  bool Stable = false;
  /// Table reads performed during one clause's last run under this entry:
  /// each callee entry consulted (memoized or explored inline) with the
  /// SuccessVersion observed. Re-running the clause is a pure replay
  /// while every recorded version is current.
  struct ClauseDeps {
    bool EverRun = false;
    std::vector<std::pair<ETEntry *, uint32_t>> Deps;
  };
  /// One record per clause of the predicate (sized on first exploration).
  std::vector<ClauseDeps> Clauses;
};

/// The memo table.
class ExtensionTable {
public:
  /// Lookup structure used to find entries.
  enum class Impl {
    LinearList, ///< the paper's implementation: scan a list of pairs
    HashMap,    ///< hash on (predicate, pattern) or exact (PredId, PatternId)
  };

  explicit ExtensionTable(Impl I = Impl::LinearList,
                          PatternInterner *In = nullptr)
      : WhichImpl(I), Interner(In) {}

  /// The attached interner (nullptr when the table runs the structural
  /// baseline path).
  PatternInterner *interner() const { return Interner; }

  /// Returns the entry for (\p PredId, \p Call), creating it if missing;
  /// sets \p Created accordingly. Entry references are stable. Structural
  /// comparison — the seed/ablation path.
  ETEntry &findOrCreate(int32_t PredId, const Pattern &Call, bool &Created);

  /// Returns the entry if present (structural comparison).
  ETEntry *find(int32_t PredId, const Pattern &Call);

  /// Id-keyed variants; require an attached interner. In HashMap mode the
  /// lookup is one exact-key map probe.
  ETEntry &findOrCreate(int32_t PredId, PatternId CallId, bool &Created);
  ETEntry *find(int32_t PredId, PatternId CallId);

  /// Fused lookup for the hot call path (requires an attached interner):
  /// probes by (PredId, structural hash) directly, so a hit — the common
  /// case after the first iteration — needs neither an interner probe nor
  /// a second id-keyed probe. Only a miss interns \p Call (which is where
  /// the entry's CallId comes from). Probe accounting matches the
  /// structural HashMap path: one probe for the consultation plus one per
  /// additional candidate compared.
  ETEntry &findOrCreateByPattern(int32_t PredId, const Pattern &Call,
                                 bool &Created);

  /// Clears the per-iteration Explored flags. Also invalidates the
  /// stability cache: dependency records rewritten during the previous
  /// iteration can turn entries stable again, and the version-bump epoch
  /// alone never notices that (it only tracks the unstable direction).
  void beginIteration() {
    for (ETEntry &E : Entries)
      E.Explored = false;
  }

  /// Records that \p E's success pattern changed (invalidates stability).
  void noteSuccessChanged(ETEntry &E) {
    ++E.SuccessVersion;
    ++VersionEpoch;
  }

  /// True if re-exploring \p E's clauses right now is guaranteed to be an
  /// exact replay of its last exploration: every entry in E's transitive
  /// dependency closure still has the success version that exploration
  /// observed. Such an exploration cannot change the table, so the
  /// abstract machine answers the call from the memo instead (identical
  /// fixpoint and iteration count, far less work on late iterations).
  bool subtreeStable(const ETEntry &E) {
    if (StableComputedAt != VersionEpoch)
      recomputeStable();
    return E.Stable;
  }

  /// True if re-running the clause described by \p CR is guaranteed to be
  /// an exact replay of its last run: every summary it read still has the
  /// recorded version, and that version cannot silently move during the
  /// replay. The latter holds when the dependency was already explored
  /// this iteration (a call then takes the memo path and its summary is
  /// frozen until its own exploration's clause completes — impossible
  /// while the replayed clause is nested inside it), or when it is
  /// subtree-stable (an inline exploration would itself be a no-op
  /// replay). Such a clause run reads exactly what the seed machine would
  /// read at this program point, so its success contribution is already
  /// folded into the summary (lub is monotone) and skipping it changes
  /// nothing — including the iteration count.
  bool clauseReplayIsNoOp(const ETEntry::ClauseDeps &CR) {
    if (!CR.EverRun)
      return false;
    for (const auto &[Dep, Version] : CR.Deps)
      if (Dep->SuccessVersion != Version ||
          !(Dep->Explored || subtreeStable(*Dep)))
        return false;
    return true;
  }

  const std::deque<ETEntry> &entries() const { return Entries; }
  size_t size() const { return Entries.size(); }

  /// Number of lookup probes performed (ablation metric; see file comment
  /// for the per-variant definition).
  uint64_t probeCount() const { return Probes; }

private:
  static uint64_t idKey(int32_t PredId, PatternId CallId) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(PredId)) << 32) |
           CallId;
  }

  static uint64_t structKey(int32_t PredId, uint64_t Hash) {
    return Hash ^ (static_cast<uint64_t>(static_cast<uint32_t>(PredId)) *
                   0x9e3779b97f4a7c15ull);
  }

  /// Recomputes every entry's Stable flag: an entry is unstable if it was
  /// never explored or any recorded dependency version is outdated, and
  /// instability propagates to every (transitive) reader.
  void recomputeStable();

  Impl WhichImpl;
  PatternInterner *Interner;
  std::deque<ETEntry> Entries; // stable addresses
  /// HashMap impl, structural path: pattern hash -> candidates.
  std::unordered_map<uint64_t, std::vector<ETEntry *>> Index;
  /// HashMap impl, interned path: exact (PredId, PatternId) -> entry index.
  detail::FlatMap64 IdIndex;
  /// HashMap impl, interned path: (PredId, structural hash) -> entry index
  /// for the fused one-probe call lookup.
  detail::FlatMap64 StructIndex;
  uint64_t Probes = 0;
  /// Bumped on every success-pattern change; stability caches key on it.
  uint64_t VersionEpoch = 1;
  uint64_t StableComputedAt = 0;
  // Scratch for recomputeStable (kept to avoid per-call allocation).
  std::vector<std::vector<int32_t>> Readers;
  std::vector<char> Dirty;
  std::vector<int32_t> Work;
};

} // namespace awam

#endif // AWAM_ANALYZER_EXTENSIONTABLE_H
