//===- analyzer/Domain.h - Pluggable abstract domains -----------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract-domain interface: everything the engine (abstract machine,
/// pattern interner, worklist / parallel / incremental schedulers, the
/// persistent store) needs from an analysis, factored behind one virtual
/// class so new analyses reuse the whole driver stack.
///
/// A Domain owns:
///
///  * **abstraction** — how argument-register tuples become calling
///    patterns (abstractCall) and success patterns (abstractSuccess);
///  * **the lattice** — lub over interned patterns (lubInto; leq is
///    derived as lub(A, B) == B, which every domain here satisfies
///    because its patterns form a finite join-semilattice) and the
///    normalization of hand-built entry patterns (normalizeEntry);
///  * **transfer of summaries** — how a memoized success pattern is
///    applied back to a call site's argument cells (applySuccess);
///  * **presentation** — formatPattern for the report table and
///    formatFacts for derived per-predicate facts (e.g. determinism).
///
/// The default implementation (name "modes") is the paper's mode/type/
/// aliasing domain: its hook bodies are exactly the code the engine ran
/// before the interface existed, so analyses under the default domain are
/// byte-identical to the pre-refactor analyzer at every thread count — the
/// contract the CI determinism gates enforce.
///
/// Domains that need per-run bookkeeping beyond the machine's cell store
/// (the Pos domain's groundness-dependency constraints) return a
/// DomainRunState from makeRunState(); the machine marks/rewinds it in
/// lockstep with its trail so domain state backtracks with the analysis.
///
/// All Domain instances are stateless singletons (makeRunState carries the
/// mutable part), so one `const Domain *` is shared freely across threads,
/// sessions and stores.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_DOMAIN_H
#define AWAM_ANALYZER_DOMAIN_H

#include "analyzer/Analyzer.h"
#include "analyzer/Pattern.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace awam {

/// Per-machine-run mutable domain state (e.g. the Pos domain's constraint
/// stack). The machine treats it like its trail: mark() at frame setup,
/// rewindTo(mark) whenever the corresponding store state unwinds. The
/// default domain has no run state (makeRunState returns null) and the
/// machine guards every touch with a null check, so the default path pays
/// nothing.
class DomainRunState {
public:
  virtual ~DomainRunState() = default;

  /// Current height of the state (a stack discipline is required).
  virtual size_t mark() const = 0;

  /// Discards everything recorded past \p Mark.
  virtual void rewindTo(size_t Mark) = 0;
};

/// Pooled scratch the interner lends to lubInto / normalizeEntry: one
/// working store, one canonicalization context and the instantiate working
/// vectors, reused across calls so lattice operations stay allocation-free
/// at the fixpoint.
struct LubScratch {
  Store &Scratch;
  CanonicalizeContext &Ctx;
  std::vector<int64_t> &CellOf;
  std::vector<int64_t> &RootsA;
  std::vector<int64_t> &RootsB;
  std::vector<Cell> &CellArgs;
};

struct CompiledProgram;

/// The abstract-domain interface. Every virtual has a default body that is
/// the paper's mode/type/aliasing domain — the concrete "modes" singleton
/// adds nothing — so a new domain overrides only what differs.
class Domain {
public:
  virtual ~Domain() = default;

  /// Registry key ("modes", "pos", "det").
  virtual std::string_view name() const = 0;

  /// One-line description for CLI help and error messages.
  virtual std::string_view description() const = 0;

  // --- Abstraction -----------------------------------------------------

  /// Abstracts the argument registers \p Args of a call into the calling
  /// pattern \p Out. Default: canonicalize with constant widening (the
  /// paper widens specific constants to their types when abstracting a
  /// call, keeping the calling-pattern space per predicate small).
  virtual void abstractCall(const Store &St, const std::vector<Cell> &Args,
                            CanonicalizeContext &Ctx, Pattern &Out,
                            int DepthLimit, DomainRunState *RS) const;

  /// Abstracts the (possibly narrowed) callee argument cells \p Args at a
  /// clause success into the success pattern \p Out. Default: canonicalize
  /// without widening (success patterns keep specific constants).
  virtual void abstractSuccess(const Store &St,
                               const std::vector<Cell> &Args,
                               CanonicalizeContext &Ctx, Pattern &Out,
                               int DepthLimit, DomainRunState *RS) const;

  // --- Transfer --------------------------------------------------------

  /// Applies the memoized success pattern \p Success to the call site's
  /// argument cells \p CallerArgs. Returns false if the application fails
  /// (the call cannot succeed under the summary); partial bindings are the
  /// caller's to unwind, exactly like abstract unification. \p CellOf and
  /// \p Roots are pooled instantiate scratch. Default: instantiate the
  /// pattern and set-unify each root with its argument.
  virtual bool applySuccess(Store &St, const std::vector<Cell> &CallerArgs,
                            const PatternRef &Success,
                            std::vector<int64_t> &CellOf,
                            std::vector<int64_t> &Roots,
                            DomainRunState *RS) const;

  // --- Lattice ---------------------------------------------------------

  /// Least upper bound of \p A and \p B (same arity) into \p Out, in
  /// canonical form ready to intern. Domains with infinite ascending
  /// chains must fold their widening in here — the engine iterates to a
  /// fixpoint of exactly this operation. Default: instantiate both sides
  /// into the scratch store, lub cell-wise, re-canonicalize.
  virtual void lubInto(const PatternRef &A, const PatternRef &B,
                       int DepthLimit, LubScratch &S, Pattern &Out) const;

  /// Normalizes a hand-built entry pattern (makeEntryPattern /
  /// parseEntrySpec) into this domain's canonical encoding. Default:
  /// instantiate and re-canonicalize.
  virtual void normalizeEntry(const Pattern &P, int DepthLimit,
                              LubScratch &S, Pattern &Out) const;

  // --- Run state -------------------------------------------------------

  /// Fresh per-machine-run state, or null if the domain needs none
  /// (default).
  virtual std::unique_ptr<DomainRunState> makeRunState() const;

  // --- Presentation ----------------------------------------------------

  /// Renders a pattern for the report table. Default: Pattern::str — the
  /// byte-identity contract for the default domain.
  virtual std::string formatPattern(const Pattern &P,
                                    const SymbolTable &Syms) const;

  /// Derived per-predicate facts appended after the pattern table (the
  /// determinism domain's det/semidet/nondet listing). Default: empty —
  /// nothing is printed.
  virtual std::string formatFacts(const AnalysisResult &R,
                                  const CompiledProgram &Program) const;

  /// Sample patterns (all of one arity) exercising this domain's lattice,
  /// for the domain-parametric lattice-law tests. Encodings must be
  /// canonical for this domain (ready to intern).
  virtual void samplePatterns(std::vector<Pattern> &Out,
                              SymbolTable &Syms) const;
};

/// The paper's mode/type/aliasing domain — the default. A pure singleton
/// over Domain's default hook bodies.
const Domain &defaultDomain();

/// The Pos-style groundness-dependency domain (analyzer/PosDomain.cpp).
const Domain &posDomain();

/// The determinism / mutual-exclusion domain (analyzer/DetDomain.cpp).
const Domain &detDomain();

/// Looks up a registered domain by name; null if unknown.
const Domain *findDomain(std::string_view Name);

/// Every registered domain, default first (stable order).
const std::vector<const Domain *> &registeredDomains();

/// Comma-separated registered names, for error messages.
std::string registeredDomainNames();

/// Resolves \p Name through the registry; unknown names produce an error
/// listing the registered domains.
Result<const Domain *> resolveDomain(std::string_view Name);

} // namespace awam

#endif // AWAM_ANALYZER_DOMAIN_H
