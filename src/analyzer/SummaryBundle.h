//===- analyzer/SummaryBundle.h - Exported analysis summaries ---*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of cross-module summary sharing: a SummaryBundle packages what
/// an AnalysisStore derived about a module — per-predicate call/success
/// pattern pairs plus the banked activation traces that derived them —
/// into a byte string another store can import, so user-module analysis
/// warm-starts against a library's summaries instead of re-deriving them.
///
/// Everything in a bundle is *module-independent*: predicates are keyed by
/// (name, arity), and patterns are serialized with symbol ids resolved to
/// their name strings and re-interned into the importing side's
/// SymbolTable. A header records the exporting domain, depth limit and
/// module fingerprint; each referenced predicate additionally carries its
/// CodeModule::predicateFingerprint, the staleness guard — an imported
/// trace only banks if every predicate whose clause code it replays hashes
/// identically in the importing module (the hash is relocation-invariant,
/// so a library predicate fingerprints the same inside any link).
///
/// Soundness does not rest on that guard: an imported trace is only a
/// *replay hint*. The incremental drain revalidates every recorded table
/// interaction against the live query state before applying a trace
/// (analyzer/Incremental.h), so a stale bundle costs warmth, never
/// correctness, and the warm result stays byte-identical to a scratch
/// analysis of the importing module. The fingerprint guard exists to drop
/// traces that *would replay wrongly despite validating* — validation
/// assumes unchanged clause code for the predicates a trace executes — and
/// to keep obviously-stale bundles from wasting validation work.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_SUMMARYBUNDLE_H
#define AWAM_ANALYZER_SUMMARYBUNDLE_H

#include "analyzer/RunJournal.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace awam {

/// In-memory form of an exported bundle. serialize/deserialize round-trip
/// it through the byte format (deterministic: equal bundles serialize to
/// equal bytes, whatever SymbolTable either side uses).
struct SummaryBundle {
  /// Format version written by serialize; deserialize rejects others.
  static constexpr uint32_t kVersion = 1;

  /// One (pred, calling pattern) -> success pattern summary, for
  /// reporting and tests; std::nullopt means the call never succeeds.
  struct Summary {
    PredSig Sig;
    Pattern Call;
    std::optional<Pattern> Success;
  };

  /// Per-predicate clause-code hash at export time
  /// (CodeModule::predicateFingerprint) for every predicate any trace
  /// references — the import-side staleness guard.
  struct PredCode {
    PredSig Sig;
    uint64_t CodeFp = 0;
  };

  std::string DomainName;        ///< exporting store's abstract domain
  int32_t DepthLimit = 0;        ///< pattern depth cut the store ran with
  uint64_t ModuleFingerprint = 0; ///< exporting CodeModule::fingerprint()

  std::vector<Summary> Summaries;
  std::vector<PredCode> PredCodes;
  /// Replayable activation traces, in bank order. Trace PredIds are
  /// indices into TraceSigs (the exporting module's ids, resolved).
  std::vector<std::shared_ptr<const RunTrace>> Traces;
  /// PredId -> signature for every id the traces reference.
  std::vector<std::pair<int32_t, PredSig>> TraceSigs;

  /// Serializes to the byte format. \p Syms must be the table the
  /// patterns' symbol ids refer to.
  std::string serialize(const SymbolTable &Syms) const;

  /// Parses \p Bytes, interning symbol names into \p Syms (pattern symbol
  /// ids in the result refer to \p Syms). Errors on a bad magic, version
  /// or truncation.
  static Result<SummaryBundle> deserialize(std::string_view Bytes,
                                           SymbolTable &Syms);
};

} // namespace awam

#endif // AWAM_ANALYZER_SUMMARYBUNDLE_H
